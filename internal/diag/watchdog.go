package diag

import (
	"slices"
	"sync"
	"time"
)

// watchdogWindow is the number of recent run durations the watchdog keeps.
// A rolling window (rather than a lifetime mean) makes the baseline adapt
// when a sweep moves between cheap and expensive configurations.
const watchdogWindow = 64

// Watchdog is the slow-run detector: it tracks a rolling window of recent
// run wall times and flags a run whose duration exceeds multiplier × the
// window's median. The median is robust to the very outliers the watchdog
// exists to catch — one slow run raises a mean but not a median, so a
// single straggler can't poison the baseline used to judge the next run.
//
// A nil *Watchdog is the disarmed state: Observe records nothing and
// never flags.
type Watchdog struct {
	mu         sync.Mutex
	mult       float64
	minSamples int
	samples    []time.Duration // ring of up to watchdogWindow entries
	next       int             // overwrite cursor once the ring is full
	scratch    []time.Duration // reused sort buffer for the median
}

// NewWatchdog returns a watchdog flagging runs slower than mult × the
// rolling median, once minSamples runs have been observed (≤0 selects the
// default of 8). mult ≤ 0 returns nil — the disarmed watchdog.
func NewWatchdog(mult float64, minSamples int) *Watchdog {
	if mult <= 0 {
		return nil
	}
	if minSamples <= 0 {
		minSamples = 8
	}
	return &Watchdog{mult: mult, minSamples: minSamples}
}

// Observe records one completed run's duration and reports whether it was
// slow relative to the runs before it, along with the prior window's
// median (0 until enough samples exist). The verdict compares d against
// the window as it stood before d is inserted, so a burst of slow runs
// flags immediately rather than dragging the baseline up first.
//
// Observe runs once per completed run on the harness worker path; after
// the ring and scratch buffer reach capacity it allocates nothing.
//
//sddsvet:hotpath
func (w *Watchdog) Observe(d time.Duration) (slow bool, median time.Duration) {
	if w == nil {
		return false, 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.samples) >= w.minSamples {
		median = w.medianLocked()
		slow = median > 0 && float64(d) > w.mult*float64(median)
	}
	if len(w.samples) < watchdogWindow {
		w.samples = append(w.samples, d)
	} else {
		w.samples[w.next] = d
		w.next = (w.next + 1) % watchdogWindow
	}
	return slow, median
}

// Median returns the current window's median (0 before minSamples).
func (w *Watchdog) Median() time.Duration {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.samples) < w.minSamples {
		return 0
	}
	return w.medianLocked()
}

// medianLocked computes the window median into a reused scratch buffer
// (slices.Sort, not sort.Slice: the latter's comparator closure would
// allocate on every call).
//
//sddsvet:hotpath
func (w *Watchdog) medianLocked() time.Duration {
	w.scratch = append(w.scratch[:0], w.samples...)
	slices.Sort(w.scratch)
	n := len(w.scratch)
	if n%2 == 1 {
		return w.scratch[n/2]
	}
	return (w.scratch[n/2-1] + w.scratch[n/2]) / 2
}
