package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sdds/internal/harness"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunUnknownExperimentSuggests(t *testing.T) {
	err := run([]string{"-experiment", "fig12e"})
	if err == nil || !strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("err = %v, want a did-you-mean suggestion", err)
	}
}

func TestRunUnknownAppFailsAtParseTime(t *testing.T) {
	// Validation must reject the bad app before any simulation starts —
	// even at full scale this returns immediately.
	err := run([]string{"-apps", "sar,madbench", "-experiment", "table3"})
	if err == nil {
		t.Fatal("unknown application accepted")
	}
	if !strings.Contains(err.Error(), "did you mean") || !strings.Contains(err.Error(), "madbench2") {
		t.Fatalf("err = %v, want a did-you-mean suggestion naming madbench2", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-zzz"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunTable2(t *testing.T) {
	if err := run([]string{"-experiment", "table2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := runCtx(ctx, []string{"-experiment", "table3", "-scale", "0.02", "-apps", "sar"})
	if err == nil {
		t.Fatal("cancelled context accepted")
	}
	if !strings.Contains(err.Error(), "interrupted") && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want interruption", err)
	}
}

func TestRunTinyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster runs")
	}
	if err := run([]string{"-experiment", "compile", "-scale", "0.02", "-apps", "sar"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTinyParallelWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster runs")
	}
	if err := run([]string{"-experiment", "fig12c", "-scale", "0.02", "-apps", "sar,madbench2", "-workers", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMetricsAndTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster runs")
	}
	path := filepath.Join(t.TempDir(), "session.json")
	if err := run([]string{"-experiment", "table3", "-scale", "0.02", "-apps", "sar",
		"-metrics", "-trace", path, "-progress=false"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("session trace is not valid JSON: %v", err)
	}
	var gotPlan, gotRun bool
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		switch {
		case ev.Name == "derive run plan":
			gotPlan = true
		case strings.HasPrefix(ev.Name, "simulate "):
			gotRun = true
		}
	}
	if !gotPlan || !gotRun {
		t.Fatalf("session trace missing phase spans: plan=%v simulate=%v", gotPlan, gotRun)
	}
}

func TestCombineProgress(t *testing.T) {
	if combineProgress(nil, nil) != nil {
		t.Fatal("all-nil observers should combine to nil")
	}
	var calls int
	fn := func(harness.Progress) { calls++ }
	combineProgress(fn, nil, fn)(harness.Progress{})
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestProgressLineETA(t *testing.T) {
	fn := progressLine(true, 2)
	if fn == nil {
		t.Fatal("enabled progress line is nil")
	}
	// Exercise the state machine: a simulated run then a hit; the function
	// writes to stderr, so correctness here is just "does not panic" plus
	// the internal averaging not dividing by zero.
	fn(harness.Progress{Done: 1, Total: 3, Key: "a", Elapsed: 10 * time.Millisecond})
	fn(harness.Progress{Done: 2, Total: 3, Hits: 1, Key: "b", Hit: true})
	fn(harness.Progress{Done: 3, Total: 3, Hits: 1, Key: "c", Elapsed: 5 * time.Millisecond})
}
