package harness

import (
	"encoding/json"
	"fmt"
	"log/slog"

	"sdds/internal/cluster"
	"sdds/internal/metrics"
	"sdds/internal/power"
	"sdds/internal/probe"
	"sdds/internal/sim"
	"sdds/internal/store"
)

// RunRecord is the portable, JSON-serializable mirror of cluster.Result:
// what the journal persists and the sddsd service returns. The compiler
// output is deliberately not recorded (it is large and no experiment
// reads it from cached runs); a restored result therefore carries
// Compile == nil.
type RunRecord struct {
	ExecTimeUS         int64                      `json:"exec_time_us"`
	EnergyJ            float64                    `json:"energy_j"`
	NodeEnergyJ        []float64                  `json:"node_energy_j,omitempty"`
	Idle               *metrics.HistogramSnapshot `json:"idle,omitempty"`
	BufferHits         int64                      `json:"buffer_hits"`
	BufferMisses       int64                      `json:"buffer_misses"`
	PrefetchIssued     int64                      `json:"prefetch_issued"`
	StorageCacheHits   int64                      `json:"storage_cache_hits"`
	StorageCacheMisses int64                      `json:"storage_cache_misses"`
	AgentMoved         int64                      `json:"agent_moved"`
	AgentIssued        int64                      `json:"agent_issued"`
	AgentBlocked       int64                      `json:"agent_blocked"`
	AgentDeferred      int64                      `json:"agent_deferred"`
	DiskRequests       int64                      `json:"disk_requests"`
	SpinUps            int64                      `json:"spin_ups"`
	RPMShifts          int64                      `json:"rpm_shifts"`
	Metrics            []probe.Metric             `json:"metrics,omitempty"`
	Faults             *cluster.FaultStats        `json:"faults,omitempty"`
}

// NewRunRecord converts a completed run's result to its portable form.
func NewRunRecord(res *cluster.Result) RunRecord {
	rr := RunRecord{
		ExecTimeUS:         int64(res.ExecTime),
		EnergyJ:            res.EnergyJ,
		NodeEnergyJ:        res.NodeEnergyJ,
		BufferHits:         res.BufferHits,
		BufferMisses:       res.BufferMisses,
		PrefetchIssued:     res.PrefetchIssued,
		StorageCacheHits:   res.StorageCacheHits,
		StorageCacheMisses: res.StorageCacheMisses,
		AgentMoved:         res.AgentMoved,
		AgentIssued:        res.AgentIssued,
		AgentBlocked:       res.AgentBlocked,
		AgentDeferred:      res.AgentDeferred,
		DiskRequests:       res.DiskRequests,
		SpinUps:            res.SpinUps,
		RPMShifts:          res.RPMShifts,
		Metrics:            res.Metrics,
		Faults:             res.Faults,
	}
	if res.Idle != nil {
		rr.Idle = res.Idle.Snapshot()
	}
	return rr
}

// Restore converts the record back into a full result under the request
// it was recorded for (the request supplies Program/Policy/Scheduling).
// The request must be normalized — records are only ever stored under
// canonical requests, so a journal round-trip preserves the invariant.
func (rr RunRecord) Restore(req Request) (*cluster.Result, error) {
	kind, err := power.ParseKind(req.Policy)
	if err != nil {
		return nil, err
	}
	res := &cluster.Result{
		Program:            req.App,
		Policy:             kind,
		Scheduling:         req.Scheduling,
		ExecTime:           sim.Duration(rr.ExecTimeUS),
		EnergyJ:            rr.EnergyJ,
		NodeEnergyJ:        rr.NodeEnergyJ,
		BufferHits:         rr.BufferHits,
		BufferMisses:       rr.BufferMisses,
		PrefetchIssued:     rr.PrefetchIssued,
		StorageCacheHits:   rr.StorageCacheHits,
		StorageCacheMisses: rr.StorageCacheMisses,
		AgentMoved:         rr.AgentMoved,
		AgentIssued:        rr.AgentIssued,
		AgentBlocked:       rr.AgentBlocked,
		AgentDeferred:      rr.AgentDeferred,
		DiskRequests:       rr.DiskRequests,
		SpinUps:            rr.SpinUps,
		RPMShifts:          rr.RPMShifts,
		Metrics:            rr.Metrics,
		Faults:             rr.Faults,
	}
	if rr.Idle != nil {
		h, err := metrics.FromSnapshot(rr.Idle)
		if err != nil {
			return nil, err
		}
		res.Idle = h
	}
	return res, nil
}

// storedRun is the store value under a request's content key: the full
// canonical request (so entries are self-describing and listable) plus
// the recorded result.
type storedRun struct {
	Request Request   `json:"request"`
	Result  RunRecord `json:"result"`
}

// Journal is the crash-safe record of completed cluster runs: a typed
// view over a content-addressed store, keyed by Request.ContentKey. Every
// append is fsynced, so a killed sweep loses at most the run being
// written. Opened in resume mode it reloads every intact entry — a torn
// trailing line (the kill point) is dropped — and NewSession preloads
// the entries into the run cache, so a re-run completes only the missing
// configurations. The same file backs the sddsd service's persistent
// result store.
type Journal struct {
	s *store.Store
}

// OpenJournal opens (or creates) the journal at path. With resume=false
// any existing journal is truncated; with resume=true its intact entries
// are loaded for NewSession to preload, and appends continue after them.
// A path naming a directory is rejected.
func OpenJournal(path string, resume bool) (*Journal, error) {
	return OpenJournalWith(path, resume, nil)
}

// OpenJournalWith is OpenJournal with structured logging: resume recovery
// (entries loaded, torn tail dropped) is reported on log when non-nil.
func OpenJournalWith(path string, resume bool, log *slog.Logger) (*Journal, error) {
	s, err := store.OpenWith(path, !resume, log)
	if err != nil {
		return nil, fmt.Errorf("harness: journal: %w", err)
	}
	return &Journal{s: s}, nil
}

// Len reports how many distinct runs the journal holds.
func (j *Journal) Len() int { return j.s.Len() }

// Appends reports how many runs this process has appended.
func (j *Journal) Appends() int64 { return j.s.Appends() }

// Path returns the journal file path.
func (j *Journal) Path() string { return j.s.Path() }

// Store exposes the backing content-addressed store (for integrity scans
// and raw listing; the service's /v1/doctor uses it).
func (j *Journal) Store() *store.Store { return j.s }

// append records one completed run under its content key and fsyncs,
// making it durable before the session reports the run finished. key
// must be canonical (session memo keys are).
func (j *Journal) append(key Request, res *cluster.Result) error {
	err := j.s.Put(key.ContentKey(), storedRun{Request: key.canonical(), Result: NewRunRecord(res)})
	if err != nil {
		return fmt.Errorf("harness: journal: %w", err)
	}
	return nil
}

// AppendRecord durably stores an externally-produced run record — one a
// sharded worker simulated and shipped back over the wire — under the
// request's content key, reporting whether it was newly added. False
// with a nil error is the dedup no-op: an identical record was already
// stored (the double-completion case). A record that differs from the
// stored bytes is an error, because identical requests must produce
// identical results — a mismatch here is the determinism invariant
// caught broken, not a conflict to resolve.
func (j *Journal) AppendRecord(req Request, rec RunRecord) (bool, error) {
	norm, err := req.Normalize()
	if err != nil {
		return false, err
	}
	added, err := j.s.Add(norm.ContentKey(), storedRun{Request: norm.canonical(), Result: rec})
	if err != nil {
		return false, fmt.Errorf("harness: journal: %w", err)
	}
	return added, nil
}

// Lookup returns the stored request and result under a content key
// (Request.ContentKey form), reporting whether it exists.
func (j *Journal) Lookup(key string) (Request, *cluster.Result, bool, error) {
	var sr storedRun
	ok, err := j.s.Get(key, &sr)
	if err != nil || !ok {
		return Request{}, nil, ok, err
	}
	res, err := sr.Result.Restore(sr.Request)
	if err != nil {
		return Request{}, nil, true, fmt.Errorf("harness: journal: key %s: %w", key, err)
	}
	return sr.Request, res, true, nil
}

// Tail returns the last n stored requests in append order.
func (j *Journal) Tail(n int) []Request {
	keys := j.s.Tail(n)
	out := make([]Request, 0, len(keys))
	for _, k := range keys {
		var sr storedRun
		if ok, err := j.s.Get(k, &sr); err == nil && ok {
			out = append(out, sr.Request)
		}
	}
	return out
}

// Close flushes and closes the journal file. Further appends fail.
func (j *Journal) Close() error { return j.s.Close() }

// preload seeds a session's memo with the journal's stored entries,
// returning how many were installed. Entries that fail to restore are
// skipped (they will simply be re-simulated).
func (j *Journal) preload(memo map[Request]*memoEntry) int {
	n := 0
	j.s.Each(func(key string, raw json.RawMessage) error {
		var sr storedRun
		if err := json.Unmarshal(raw, &sr); err != nil {
			return nil
		}
		res, err := sr.Result.Restore(sr.Request)
		if err != nil {
			return nil
		}
		if _, exists := memo[sr.Request]; exists {
			return nil
		}
		done := make(chan struct{})
		close(done)
		memo[sr.Request] = &memoEntry{done: done, res: res, preloaded: true}
		n++
		return nil
	})
	return n
}
