package analysis_test

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"sdds/internal/analysis"
	"sdds/internal/analysis/all"
	"sdds/internal/analysis/detflow"
	"sdds/internal/analysis/floatorder"
	"sdds/internal/analysis/locksafe"
	"sdds/internal/analysis/simdet"
)

// TestMulticheckerOnKnownBad runs the full analyzer suite — exactly as
// cmd/sddsvet does, suppression audit included — over two fixtures carrying
// one violation per analyzer plus one suppressed line and one stale
// suppression, and checks the count, the output format, and that every
// analyzer contributed.
func TestMulticheckerOnKnownBad(t *testing.T) {
	defer override(t, regexp.MustCompile(`knownbad$`), regexp.MustCompile(`knownbaddet$`))()

	mod, err := analysis.LoadModule("../..",
		"internal/analysis/testdata/src/knownbad",
		"internal/analysis/testdata/src/knownbaddet")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := all.RunSuite(mod, all.Analyzers, all.SuiteOptions{Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	analysis.WriteText(&buf, findings)
	out := buf.String()
	// knownbad: stamp (simdet), arm (hotalloc), keep (eventretain), reduce
	// (simdet and floatorder share the line); the suppressed function
	// contributes nothing. knownbaddet: stampDet (detflow), badHandler
	// (locksafe), and the deliberately stale directive (ignoreaudit).
	if len(findings) != 8 {
		t.Fatalf("got %d findings, want 8:\n%s", len(findings), out)
	}
	for _, a := range all.Analyzers {
		if !strings.Contains(out, ": "+a.Name+": ") {
			t.Errorf("no finding from %s in output:\n%s", a.Name, out)
		}
	}
	if !strings.Contains(out, ": "+all.AuditName+": ") {
		t.Errorf("no finding from the suppression audit in output:\n%s", out)
	}
	lineRE := regexp.MustCompile(`(?m)^internal/analysis/testdata/src/knownbad(det)?/knownbad(det)?\.go:\d+:\d+: \w+: .+$`)
	if got := len(lineRE.FindAllString(out, -1)); got != 8 {
		t.Errorf("%d lines match the file:line:col: analyzer: message format, want 8:\n%s", got, out)
	}
	if strings.Contains(out, "suppression") {
		t.Errorf("suppressed finding leaked into output:\n%s", out)
	}
	// The locksafe finding must name the lock, the critical root, and render
	// the blocking chain.
	if !strings.Contains(out, "knownbaddet.mu") || !strings.Contains(out, "criticalRoot") {
		t.Errorf("locksafe finding does not name the lock and critical root:\n%s", out)
	}
	if !strings.Contains(out, " → ") {
		t.Errorf("no rendered call chain in output:\n%s", out)
	}
	if !strings.Contains(out, "wall-clock") {
		t.Errorf("detflow finding does not name the wall-clock effect:\n%s", out)
	}
}

// TestLoadSkipsTestdata proves ./... never descends into analyzer fixtures:
// they are violation-dense by design and must not pollute real runs.
func TestLoadSkipsTestdata(t *testing.T) {
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load(./...) found no packages")
	}
	for _, p := range pkgs {
		if strings.Contains(p.PkgPath, "testdata") {
			t.Errorf("Load(./...) descended into %s", p.PkgPath)
		}
	}
}

// TestSuiteCleanOnRepo is the anchor the Makefile lint target relies on: the
// shipped analyzer suite, at its default scopes and with the committed
// baseline applied, reports nothing new on the repository itself — and the
// baseline contains no stale entries.
func TestSuiteCleanOnRepo(t *testing.T) {
	mod, err := analysis.LoadModule("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := all.RunSuite(mod, all.Analyzers, all.SuiteOptions{Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := analysis.LoadBaseline("../../sddsvet.baseline")
	if err != nil {
		t.Fatal(err)
	}
	newFindings, stale := base.Apply(findings)
	if len(newFindings) != 0 {
		var buf bytes.Buffer
		analysis.WriteText(&buf, newFindings)
		t.Errorf("analyzer suite reports %d new findings on the repo, want 0:\n%s", len(newFindings), buf.String())
	}
	for _, s := range stale {
		t.Errorf("stale baseline entry (no longer occurs): %s", s)
	}
}

func override(t *testing.T, simRE, detRE *regexp.Regexp) func() {
	t.Helper()
	oldSim, oldGold, oldDet := simdet.SimPackages, floatorder.GoldenPackages, detflow.DetPackages
	oldRoots := locksafe.CriticalRoots
	simdet.SimPackages, floatorder.GoldenPackages, detflow.DetPackages = simRE, simRE, detRE
	locksafe.CriticalRoots = []locksafe.Root{
		{PkgPath: "sdds/internal/analysis/testdata/src/knownbaddet", Name: "criticalRoot"},
	}
	return func() {
		simdet.SimPackages, floatorder.GoldenPackages, detflow.DetPackages = oldSim, oldGold, oldDet
		locksafe.CriticalRoots = oldRoots
	}
}
