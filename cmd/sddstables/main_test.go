package main

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunUnknownExperimentSuggests(t *testing.T) {
	err := run([]string{"-experiment", "fig12e"})
	if err == nil || !strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("err = %v, want a did-you-mean suggestion", err)
	}
}

func TestRunUnknownAppFailsAtParseTime(t *testing.T) {
	// Validation must reject the bad app before any simulation starts —
	// even at full scale this returns immediately.
	err := run([]string{"-apps", "sar,madbench", "-experiment", "table3"})
	if err == nil {
		t.Fatal("unknown application accepted")
	}
	if !strings.Contains(err.Error(), "did you mean") || !strings.Contains(err.Error(), "madbench2") {
		t.Fatalf("err = %v, want a did-you-mean suggestion naming madbench2", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-zzz"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunTable2(t *testing.T) {
	if err := run([]string{"-experiment", "table2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := runCtx(ctx, []string{"-experiment", "table3", "-scale", "0.02", "-apps", "sar"})
	if err == nil {
		t.Fatal("cancelled context accepted")
	}
	if !strings.Contains(err.Error(), "interrupted") && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want interruption", err)
	}
}

func TestRunTinyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster runs")
	}
	if err := run([]string{"-experiment", "compile", "-scale", "0.02", "-apps", "sar"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTinyParallelWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster runs")
	}
	if err := run([]string{"-experiment", "fig12c", "-scale", "0.02", "-apps", "sar,madbench2", "-workers", "4"}); err != nil {
		t.Fatal(err)
	}
}
