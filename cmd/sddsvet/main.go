// Command sddsvet is the project's multichecker: it statically enforces the
// simulator's determinism and hot-path contracts over the given package
// patterns (default ./...). It ships six analyzers:
//
//	simdet       nondeterminism in simulation packages, direct or via calls
//	detflow      nondeterminism reachable from the deterministic golden cone
//	hotalloc     per-event allocations on the annotated hot path, any depth
//	eventretain  retention of free-list-recycled *sim.Event values
//	floatorder   order-dependent float reductions feeding golden output
//	locksafe     handlers blocking while holding progress-critical locks
//
// plus a stale-suppression audit (ignoreaudit) reporting //sddsvet:ignore
// comments that no longer suppress anything. The audit runs only when the
// full suite does (no -run subset).
//
// Findings carrying an interprocedural call chain print it indented under
// the finding; -json and -sarif emit it structurally. A committed baseline
// (-baseline sddsvet.baseline) makes known findings informational: the
// exit code gates on new findings only. Regenerate with -write-baseline.
//
// Exit status is 1 when (new) findings are reported, 2 on load/usage
// errors, 0 otherwise. Suppress individual findings with
// //sddsvet:ignore <analyzer> -- <reason>; see DESIGN.md §9.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sdds/internal/analysis"
	"sdds/internal/analysis/all"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("sddsvet", flag.ContinueOnError)
	var (
		only          = fs.String("run", "", "comma-separated analyzer subset (default: all; disables the suppression audit)")
		list          = fs.Bool("list", false, "list analyzers and exit")
		jsonOut       = fs.Bool("json", false, "write the findings report as JSON to stdout")
		jsonFile      = fs.String("json-out", "", "also write the JSON report to this file (CI artifact)")
		sarifOut      = fs.Bool("sarif", false, "write the findings as SARIF 2.1.0 to stdout")
		baselinePath  = fs.String("baseline", "", "baseline file of tolerated findings; exit gates on new findings only")
		writeBaseline = fs.String("write-baseline", "", "write the current findings as a baseline to this file and exit 0")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: sddsvet [-run analyzer,...] [-json|-sarif] [-baseline file] [package pattern ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range all.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-12s reports stale //sddsvet:ignore directives (full-suite runs only)\n", all.AuditName)
		return 0
	}
	analyzers := all.Analyzers
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := all.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "sddsvet: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sddsvet:", err)
		return 2
	}
	mod, err := analysis.LoadModule(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sddsvet:", err)
		return 2
	}
	findings, err := all.RunSuite(mod, analyzers, all.SuiteOptions{Audit: *only == ""})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sddsvet:", err)
		return 2
	}

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err == nil {
			err = analysis.WriteBaseline(f, findings)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "sddsvet:", err)
			return 2
		}
		fmt.Printf("sddsvet: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return 0
	}

	var stale []string
	if *baselinePath != "" {
		base, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sddsvet:", err)
			return 2
		}
		_, stale = base.Apply(findings)
	}
	report := analysis.NewReport(mod, findings, stale)

	if *jsonFile != "" {
		if err := writeJSONFile(*jsonFile, report); err != nil {
			fmt.Fprintln(os.Stderr, "sddsvet:", err)
			return 2
		}
	}
	switch {
	case *jsonOut:
		if err := analysis.WriteJSON(os.Stdout, report); err != nil {
			fmt.Fprintln(os.Stderr, "sddsvet:", err)
			return 2
		}
	case *sarifOut:
		if err := analysis.WriteSARIF(os.Stdout, findings, analyzers); err != nil {
			fmt.Fprintln(os.Stderr, "sddsvet:", err)
			return 2
		}
	default:
		analysis.WriteText(os.Stdout, findings)
		for _, s := range stale {
			fmt.Printf("sddsvet: stale baseline entry (no longer occurs): %s\n", s)
		}
	}
	if report.NewCount > 0 {
		return 1
	}
	return 0
}

func writeJSONFile(path string, r *analysis.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = analysis.WriteJSON(io.Writer(f), r)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
