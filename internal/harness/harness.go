// Package harness regenerates every table and figure of the paper's
// evaluation (§V): the Table III application baseline, the idle-period CDFs
// of Fig. 12(a)/(b), the normalized-energy bars of Fig. 12(c)/(d), the
// performance-degradation bars of Fig. 13(a)/(b), and the sensitivity
// sweeps of Fig. 13(c)/(d), Fig. 14(a)/(b) and the storage-cache paragraph
// of §V-D. Each experiment is a named, self-contained function from a
// Config to printable rows, shared by cmd/sddstables and the benchmark
// harness in bench_test.go.
package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"sdds/internal/cluster"
	"sdds/internal/metrics"
	"sdds/internal/power"
	"sdds/internal/workloads"
)

// Config scopes a harness run.
type Config struct {
	// Scale multiplies workload trip counts (1.0 = full evaluation size;
	// benchmarks use smaller scales).
	Scale float64
	// Apps restricts the applications (nil = all six).
	Apps []string
	// Seed feeds the cluster simulations.
	Seed int64
}

// DefaultConfig runs everything at full scale.
func DefaultConfig() Config { return Config{Scale: 1.0, Seed: 1} }

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Apps) == 0 {
		c.Apps = workloads.Names()
	}
	return c
}

// Result of one experiment: a title, column headers and rows, pre-rendered
// by Render.
type Result struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	// Notes carries shape observations (e.g. averages) printed after the
	// table.
	Notes []string
	// Chart, when non-nil, renders the result as the paper's bar figure.
	Chart *metrics.BarChart
}

// Render returns the printable experiment output.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	b.WriteString(metrics.Table(r.Headers, r.Rows))
	if r.Chart != nil {
		b.WriteByte('\n')
		b.WriteString(r.Chart.Render())
	}
	for _, n := range r.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// Experiment is a runnable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*Result, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table2", Title: "Table II: main experimental parameters", Run: Table2},
		{ID: "table3", Title: "Table III: application programs (Default Scheme baseline)", Run: Table3},
		{ID: "fig12a", Title: "Fig. 12(a): CDF of idle periods without the scheme", Run: Fig12a},
		{ID: "fig12b", Title: "Fig. 12(b): CDF of idle periods with the scheme", Run: Fig12b},
		{ID: "fig12c", Title: "Fig. 12(c): normalized energy without the scheme", Run: Fig12c},
		{ID: "fig12d", Title: "Fig. 12(d): normalized energy with the scheme", Run: Fig12d},
		{ID: "fig13a", Title: "Fig. 13(a): performance degradation without the scheme", Run: Fig13a},
		{ID: "fig13b", Title: "Fig. 13(b): performance degradation with the scheme", Run: Fig13b},
		{ID: "fig13c", Title: "Fig. 13(c): energy reduction vs number of I/O nodes", Run: Fig13c},
		{ID: "fig13d", Title: "Fig. 13(d): energy reduction vs delta", Run: Fig13d},
		{ID: "fig14a", Title: "Fig. 14(a): energy reduction vs theta", Run: Fig14a},
		{ID: "fig14b", Title: "Fig. 14(b): performance improvement vs theta", Run: Fig14b},
		{ID: "cachesens", Title: "Sec. V-D: storage-cache capacity sensitivity", Run: CacheSens},
		{ID: "compile", Title: "Sec. V-A: compilation (scheduling pass) cost", Run: CompileCost},
		{ID: "oracle", Title: "Oracle prediction upper bound (ablation)", Run: Oracle},
		{ID: "palru", Title: "Power-aware storage-cache replacement (extension)", Run: PALRUCache},
		{ID: "ablations", Title: "Design ablations (ordering, weights, vertical range)", Run: Ablations},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %v)", id, ids)
}

// runKey memoizes default-configuration runs across experiments within one
// process: fig13a reuses fig12c's runs, every experiment reuses the
// baselines, and a full `sddstables` pass does each configuration once.
type runKey struct {
	app        string
	kind       power.Kind
	scheduling bool
	scale      float64
	seed       int64
}

var (
	runMu   sync.Mutex
	runMemo = map[runKey]*cluster.Result{}
)

// MemoSize reports how many distinct configurations have been simulated in
// this process (diagnostics for long sddstables runs).
func MemoSize() int {
	runMu.Lock()
	defer runMu.Unlock()
	return len(runMemo)
}

// runOne executes one (app × policy × scheme) configuration under the
// default cluster config, memoizing the result.
func runOne(c Config, app string, kind power.Kind, scheduling bool) (*cluster.Result, error) {
	key := runKey{app, kind, scheduling, c.Scale, c.Seed}
	runMu.Lock()
	if res, ok := runMemo[key]; ok {
		runMu.Unlock()
		return res, nil
	}
	runMu.Unlock()
	spec, err := workloads.ByName(app)
	if err != nil {
		return nil, err
	}
	prog := spec.Build(c.Scale)
	cfg := cluster.DefaultConfig()
	cfg.Seed = c.Seed
	cfg.Policy = power.Config{Kind: kind}
	cfg.Scheduling = scheduling
	res, err := cluster.Run(prog, cfg)
	if err != nil {
		return nil, err
	}
	runMu.Lock()
	runMemo[key] = res
	runMu.Unlock()
	return res, nil
}

// baselines runs the Default Scheme for every app once and caches the
// results within one harness invocation.
type baselineSet struct {
	byApp map[string]*cluster.Result
}

func runBaselines(c Config) (*baselineSet, error) {
	out := &baselineSet{byApp: make(map[string]*cluster.Result, len(c.Apps))}
	for _, app := range c.Apps {
		res, err := runOne(c, app, power.KindDefault, false)
		if err != nil {
			return nil, err
		}
		out.byApp[app] = res
	}
	return out, nil
}
