// Package service implements sddsd, the resident experiment service: a
// long-lived HTTP/JSON server wrapping harness.Session behind the
// canonical harness.Request submission model. Every run is
// content-addressed (Request.ContentKey) into a persistent store shared
// across process lifetimes, so identical submissions — from any client,
// before or after a restart — dedup onto one simulation. The endpoint
// surface is versioned under /v1: runs, sweeps, run lookup, an SSE
// progress stream, status, doctor, and Prometheus metrics.
package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"sdds/internal/compilecache"
	"sdds/internal/harness"
	"sdds/internal/probe"
	"sdds/internal/store"
)

// Options configures the service.
type Options struct {
	// StorePath is the persistent content-addressed result store (the
	// crash-safe JSONL journal). Required; the service always opens it in
	// resume mode so results survive restarts.
	StorePath string
	// Workers bounds concurrent cluster simulations; ≤0 means GOMAXPROCS.
	Workers int
	// RunTimeout, when positive, bounds each simulation's wall time (the
	// session-wide deadline; per-request TimeoutMS bounds individual calls).
	RunTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: inflight run handlers get this
	// long to finish before the listener is torn down (default 30s).
	DrainTimeout time.Duration
	// Tail is how many recent store entries /v1/doctor reports (default 8).
	Tail int
	// ArtifactPath is the persistent compile-artifact store backing the
	// session's compile cache, so scheduled runs skip recompilation across
	// restarts. Empty derives StorePath + ".artifacts"; "off" disables the
	// compile cache entirely.
	ArtifactPath string
}

// Server is the service state: one session, one persistent store, one
// event hub. Create with NewServer, serve with Serve (or mount Handler
// under an existing mux), and Close when done.
type Server struct {
	opts    Options
	journal *harness.Journal
	sess    *harness.Session
	hub     *hub
	start   time.Time

	// compile is the persistent compile-artifact cache shared by every
	// scheduled run the session executes; nil when disabled.
	compile *compilecache.Cache

	// reg holds the service's own counters. probe.Registry is single-owner
	// by contract, so every access goes through regMu.
	regMu     sync.Mutex
	reg       *probe.Registry
	submitted probe.Counter
	simulated probe.Counter
	cached    probe.Counter
	failed    probe.Counter
	sweeps    probe.Counter
	// Compile-cache gauges, refreshed from the cache's counters each time
	// the registry is rendered (/v1/metrics, /v1/doctor).
	ccHits     probe.Gauge
	ccMisses   probe.Gauge
	ccRestores probe.Gauge
	ccBytes    probe.Gauge
	ccEntries  probe.Gauge

	mu       sync.Mutex
	seen     map[string]harness.Request // content key → request, for GET /v1/runs/{key}
	inflight map[string]int             // content key → active submissions
}

// NewServer opens the store and builds the service around a fresh
// session preloaded with every stored result.
func NewServer(o Options) (*Server, error) {
	if o.StorePath == "" {
		return nil, errors.New("service: Options.StorePath is required")
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 30 * time.Second
	}
	if o.Tail <= 0 {
		o.Tail = 8
	}
	if o.ArtifactPath == "" {
		o.ArtifactPath = o.StorePath + ".artifacts"
	}
	j, err := harness.OpenJournal(o.StorePath, true)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:     o,
		journal:  j,
		hub:      newHub(),
		reg:      probe.NewRegistry(),
		seen:     make(map[string]harness.Request),
		inflight: make(map[string]int),
	}
	if o.ArtifactPath != "off" {
		s.compile, err = compilecache.Open(o.ArtifactPath)
		if err != nil {
			j.Close()
			return nil, err
		}
	}
	s.submitted = s.reg.Counter("sddsd.runs.submitted")
	s.simulated = s.reg.Counter("sddsd.runs.simulated")
	s.cached = s.reg.Counter("sddsd.runs.cached")
	s.failed = s.reg.Counter("sddsd.runs.failed")
	s.sweeps = s.reg.Counter("sddsd.sweeps.submitted")
	s.ccHits = s.reg.Gauge("compile_cache.hits")
	s.ccMisses = s.reg.Gauge("compile_cache.misses")
	s.ccRestores = s.reg.Gauge("compile_cache.restores")
	s.ccBytes = s.reg.Gauge("compile_cache.bytes")
	s.ccEntries = s.reg.Gauge("compile_cache.entries")
	s.sess = harness.NewSession(harness.SessionOptions{
		Workers:             o.Workers,
		RunTimeout:          o.RunTimeout,
		Journal:             j,
		Progress:            s.onProgress,
		CompileCache:        s.compile,
		DisableCompileCache: s.compile == nil,
	})
	s.start = time.Now() //sddsvet:ignore simdet -- wall-clock service uptime, not simulated time
	return s, nil
}

// onProgress fans session run events into the SSE hub and the service
// counters. The session serializes calls.
func (s *Server) onProgress(p harness.Progress) {
	ev := Event{
		Key:         p.Key,
		Done:        p.Done,
		Total:       p.Total,
		Hits:        p.Hits,
		Hit:         p.Hit,
		FromJournal: p.FromJournal,
		CompileProv: p.CompileProv,
		ElapsedMS:   p.Elapsed.Milliseconds(),
	}
	if p.Err != nil {
		ev.Err = p.Err.Error()
	}
	s.hub.broadcast(ev)
}

// runOne resolves one normalized request through the session, tracking
// it as inflight for GET /v1/runs/{key} and counting the outcome.
func (s *Server) runOne(ctx context.Context, req harness.Request) RunResponse {
	key := req.ContentKey()
	s.mu.Lock()
	s.seen[key] = req
	s.inflight[key]++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		if s.inflight[key]--; s.inflight[key] <= 0 {
			delete(s.inflight, key)
		}
		s.mu.Unlock()
	}()

	s.regMu.Lock()
	s.submitted.Inc()
	s.regMu.Unlock()

	start := time.Now() //sddsvet:ignore simdet -- wall-clock request latency, not simulated time
	res, hit, err := s.sess.RunRequest(ctx, req)
	resp := RunResponse{
		Key:       key,
		Request:   req,
		Cached:    hit,
		ElapsedMS: time.Since(start).Milliseconds(),
	}
	s.regMu.Lock()
	switch {
	case err != nil:
		s.failed.Inc()
	case hit:
		s.cached.Inc()
	default:
		s.simulated.Inc()
	}
	s.regMu.Unlock()
	if err != nil {
		resp.Error = err.Error()
		return resp
	}
	rec := harness.NewRunRecord(res)
	resp.Result = &rec
	return resp
}

// Status snapshots the service health surface behind GET /v1/status.
func (s *Server) Status() StatusResponse {
	simulated, hits := s.sess.Stats()
	s.mu.Lock()
	keys := make([]string, 0, len(s.inflight))
	for k := range s.inflight {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	resp := StatusResponse{
		UptimeMS:     time.Since(s.start).Milliseconds(),
		Workers:      s.sess.Workers(),
		InFlight:     s.sess.InFlight(),
		InFlightKeys: keys,
		CacheEntries: s.sess.MemoSize(),
		Preloaded:    s.sess.Preloaded(),
		Simulated:    simulated,
		CacheHits:    hits,
		StoreEntries: s.journal.Len(),
		StoreAppends: s.journal.Appends(),
		StorePath:    s.journal.Path(),
		Subscribers:  s.hub.count(),
		SetupGroups:  s.sess.SetupGroups(),
	}
	if s.compile != nil {
		st := s.sess.CompileCacheStats()
		resp.CompileCache = &st
		resp.ArtifactPath = s.compile.Store().Path()
	}
	return resp
}

// Doctor runs the diagnostic checks behind GET /v1/doctor: a store
// integrity scan, worker-pool sanity, store↔cache consistency, the
// journal tail, and the service metrics in Prometheus text form.
func (s *Server) Doctor() DoctorResponse {
	var checks []Check

	rep, err := store.Verify(s.journal.Path())
	switch {
	case err != nil:
		checks = append(checks, Check{Name: "store-integrity", Status: "fail", Detail: err.Error()})
	case rep.TornBytes > 0:
		checks = append(checks, Check{Name: "store-integrity", Status: "warn",
			Detail: fmt.Sprintf("%d torn trailing bytes (recoverable: truncated on next open)", rep.TornBytes)})
	case rep.DupKeys > 0:
		checks = append(checks, Check{Name: "store-integrity", Status: "warn",
			Detail: fmt.Sprintf("%d duplicate keys", rep.DupKeys)})
	default:
		checks = append(checks, Check{Name: "store-integrity", Status: "ok",
			Detail: fmt.Sprintf("%d entries, %d bytes intact", rep.Entries, rep.ValidBytes)})
	}

	inflight, workers := s.sess.InFlight(), s.sess.Workers()
	if inflight > workers {
		checks = append(checks, Check{Name: "worker-pool", Status: "fail",
			Detail: fmt.Sprintf("%d runs in flight exceeds the %d-worker pool", inflight, workers)})
	} else {
		checks = append(checks, Check{Name: "worker-pool", Status: "ok",
			Detail: fmt.Sprintf("%d/%d workers busy", inflight, workers)})
	}

	// Every stored result is either preloaded at startup or appended after
	// a run this process executed, so the cache must cover the store.
	if sl, cl := s.journal.Len(), s.sess.MemoSize(); sl > cl {
		checks = append(checks, Check{Name: "store-cache-consistency", Status: "warn",
			Detail: fmt.Sprintf("store holds %d entries but cache only %d", sl, cl)})
	} else {
		checks = append(checks, Check{Name: "store-cache-consistency", Status: "ok",
			Detail: fmt.Sprintf("cache (%d) covers store (%d)", cl, sl)})
	}

	// Compile-artifact store integrity plus the cache's live counters.
	if s.compile == nil {
		checks = append(checks, Check{Name: "compile-cache", Status: "ok", Detail: "disabled"})
	} else {
		st := s.sess.CompileCacheStats()
		detail := fmt.Sprintf("%d entries, %d hits, %d misses, %d restores, %d artifact bytes",
			st.Entries, st.Hits, st.Misses, st.Restores, st.Bytes)
		arep, err := store.Verify(s.compile.Store().Path())
		switch {
		case err != nil:
			checks = append(checks, Check{Name: "compile-cache", Status: "fail", Detail: err.Error()})
		case arep.TornBytes > 0:
			checks = append(checks, Check{Name: "compile-cache", Status: "warn",
				Detail: fmt.Sprintf("%s; %d torn trailing bytes", detail, arep.TornBytes)})
		default:
			checks = append(checks, Check{Name: "compile-cache", Status: "ok", Detail: detail})
		}
	}

	status := "ok"
	for _, c := range checks {
		if c.Status == "fail" {
			status = "fail"
			break
		}
		if c.Status == "warn" {
			status = "warn"
		}
	}

	tailReqs := s.journal.Tail(s.opts.Tail)
	tail := make([]TailRun, 0, len(tailReqs))
	for _, r := range tailReqs {
		tail = append(tail, TailRun{Key: r.ContentKey(), Request: r})
	}

	return DoctorResponse{
		Status:  status,
		Checks:  checks,
		Store:   rep,
		Tail:    tail,
		Metrics: s.metricsText(),
	}
}

// metricsText renders the service registry in Prometheus text form,
// refreshing the compile-cache gauges from the cache's live counters
// first so scrapes always see current values.
func (s *Server) metricsText() string {
	st := s.sess.CompileCacheStats()
	var b strings.Builder
	s.regMu.Lock()
	s.ccHits.Set(float64(st.Hits))
	s.ccMisses.Set(float64(st.Misses))
	s.ccRestores.Set(float64(st.Restores))
	s.ccBytes.Set(float64(st.Bytes))
	s.ccEntries.Set(float64(st.Entries))
	s.reg.WritePrometheus(&b)
	s.regMu.Unlock()
	return b.String()
}

// Serve runs the HTTP server on ln until ctx is cancelled, then shuts
// down gracefully: the SSE stream is ended (so drain isn't held open by
// long-lived subscribers), inflight run handlers get DrainTimeout to
// finish through the session's context plumbing, and the store is closed
// last so every drained run is durably journaled.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	s.hub.shutdown()
	drainCtx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(drainCtx)
	if cerr := s.closeStores(); err == nil {
		err = cerr
	}
	return err
}

// closeStores closes the result journal and the compile-artifact store.
func (s *Server) closeStores() error {
	err := s.journal.Close()
	if s.compile != nil {
		if cerr := s.compile.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Close ends the event stream and closes the stores. Serve does this
// itself; Close is for servers mounted via Handler.
func (s *Server) Close() error {
	s.hub.shutdown()
	return s.closeStores()
}
