package compilecache

import (
	"context"
	"encoding/json"
	"path/filepath"
	"sync"
	"testing"

	"sdds/internal/compiler"
	"sdds/internal/loop"
	"sdds/internal/sim"
)

func testProgram() *loop.Program {
	return &loop.Program{
		Name:  "t",
		Files: []loop.File{{ID: 0, Name: "a", Size: 1 << 26}, {ID: 1, Name: "b", Size: 1 << 26}},
		Nests: []loop.Nest{
			{Name: "produce", Trips: 32, Parallel: true, IterCost: sim.MilliToTime(2),
				Body: []loop.Stmt{{Kind: loop.StmtWrite, File: 0, Region: loop.Affine{IterCoef: 64 << 10, Len: 64 << 10}}}},
			{Name: "consume", Trips: 32, Parallel: true, IterCost: sim.MilliToTime(2),
				Body: []loop.Stmt{
					{Kind: loop.StmtRead, File: 0, Region: loop.Affine{IterCoef: 64 << 10, Len: 64 << 10}},
					{Kind: loop.StmtRead, File: 1, Region: loop.Affine{IterCoef: 32 << 10, Len: 32 << 10}},
				}},
		},
	}
}

func TestCacheMemoHit(t *testing.T) {
	c := New()
	ctx := context.Background()
	opts := compiler.DefaultOptions(4)
	r1, prov, err := c.CompileContext(ctx, testProgram(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if prov != compiler.ProvCompiled {
		t.Fatalf("first compile provenance = %v", prov)
	}
	r2, prov, err := c.CompileContext(ctx, testProgram(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if prov != compiler.ProvMemory {
		t.Fatalf("second compile provenance = %v", prov)
	}
	if r1 != r2 {
		t.Fatal("memo hit returned a different result pointer")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// Concurrent callers with equal keys share exactly one compile.
func TestCacheSingleflight(t *testing.T) {
	c := New()
	opts := compiler.DefaultOptions(4)
	const n = 16
	var wg sync.WaitGroup
	results := make([]*compiler.Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := c.CompileContext(context.Background(), testProgram(), opts)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (singleflight)", st.Misses)
	}
	if st.Hits != n-1 {
		t.Fatalf("hits = %d, want %d", st.Hits, n-1)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent callers got different result pointers")
		}
	}
}

// Distinct options compile separately.
func TestCacheDistinctKeys(t *testing.T) {
	c := New()
	ctx := context.Background()
	a := compiler.DefaultOptions(4)
	b := a
	b.Theta = 8
	if _, _, err := c.CompileContext(ctx, testProgram(), a); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.CompileContext(ctx, testProgram(), b); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheUncacheable(t *testing.T) {
	c := New()
	opts := compiler.DefaultOptions(4)
	opts.RandomTies = func(n int) int { return 0 }
	_, prov, err := c.CompileContext(context.Background(), testProgram(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if prov != compiler.ProvUncacheable {
		t.Fatalf("provenance = %v, want uncacheable", prov)
	}
	if st := c.Stats(); st.Uncacheable != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// A store-backed cache persists artifacts and a fresh cache restores them
// with ProvStore, producing an equivalent result.
func TestCachePersistAndRestore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifacts.jsonl")
	opts := compiler.DefaultOptions(4)

	c1, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	live, prov, err := c1.CompileContext(context.Background(), testProgram(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if prov != compiler.ProvCompiled {
		t.Fatalf("provenance = %v", prov)
	}
	if c1.Store().Len() != 1 {
		t.Fatalf("store entries = %d, want 1", c1.Store().Len())
	}
	if st := c1.Stats(); st.Bytes == 0 {
		t.Fatal("persist did not count bytes")
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	restored, prov, err := c2.CompileContext(context.Background(), testProgram(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if prov != compiler.ProvStore {
		t.Fatalf("provenance = %v, want restored", prov)
	}
	if err := compiler.EquivalentResults(live, restored); err != nil {
		t.Fatalf("restored result not equivalent: %v", err)
	}
	st := c2.Stats()
	if st.Restores != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// And the restore is memoized: the next lookup is a memory hit.
	if _, prov, _ := c2.CompileContext(context.Background(), testProgram(), opts); prov != compiler.ProvMemory {
		t.Fatalf("post-restore provenance = %v, want memo", prov)
	}
}

// A corrupt stored artifact must fall back to a fresh compile, never fail
// the run.
func TestCacheCorruptArtifactFallsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifacts.jsonl")
	opts := compiler.DefaultOptions(4)
	key, ok := compiler.KeyFor(testProgram(), opts)
	if !ok {
		t.Fatal("uncacheable")
	}

	c1, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Store().Put(key, json.RawMessage(`{"version":999}`)); err != nil {
		t.Fatal(err)
	}
	res, prov, err := c1.CompileContext(context.Background(), testProgram(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || prov != compiler.ProvCompiled {
		t.Fatalf("corrupt artifact: prov = %v, want fresh compile", prov)
	}
	if st := c1.Stats(); st.Restores != 0 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	c1.Close()
}

// A cancelled owner must not poison the cell: the next caller compiles.
func TestCacheCancelledOwnerAbandons(t *testing.T) {
	c := New()
	opts := compiler.DefaultOptions(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.CompileContext(ctx, testProgram(), opts); err == nil {
		t.Fatal("cancelled compile succeeded")
	}
	res, prov, err := c.CompileContext(context.Background(), testProgram(), opts)
	if err != nil || res == nil {
		t.Fatalf("post-cancel compile: %v", err)
	}
	if prov != compiler.ProvCompiled {
		t.Fatalf("post-cancel provenance = %v", prov)
	}
}
