package sim

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAndRunOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, d := range []Duration{30, 10, 20} {
		d := d
		e.Schedule(d, "t", func(now Time) { got = append(got, now) })
	}
	end := e.Run()
	want := []Time{10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
	if end != 30 {
		t.Errorf("Run() = %v, want 30", end)
	}
}

func TestSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		e.Schedule(100, "same", func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO at equal time)", i, v, i)
		}
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(10, "c", func(Time) { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(1, "x", func(Time) {})
	e.Run()
	ev.Cancel() // must not panic or corrupt state
	if e.EventsFired() != 1 {
		t.Fatalf("EventsFired = %d, want 1", e.EventsFired())
	}
}

func TestScheduleAtPastReturnsError(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(100, "advance", func(Time) {})
	e.Run()
	if _, err := e.ScheduleAt(50, "past", func(Time) {}); err == nil {
		t.Fatal("ScheduleAt in the past succeeded, want error")
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine(1)
	var at Time = -1
	e.Schedule(100, "outer", func(now Time) {
		e.Schedule(-5, "inner", func(t2 Time) { at = t2 })
	})
	e.Run()
	if at != 100 {
		t.Fatalf("negative-delay event fired at %v, want 100", at)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var trace []Time
	e.Schedule(10, "a", func(now Time) {
		trace = append(trace, now)
		e.Schedule(5, "b", func(now Time) {
			trace = append(trace, now)
		})
	})
	e.Run()
	if len(trace) != 2 || trace[0] != 10 || trace[1] != 15 {
		t.Fatalf("trace = %v, want [10 15]", trace)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, d := range []Duration{10, 20, 30, 40} {
		e.Schedule(d, "t", func(now Time) { fired = append(fired, now) })
	}
	now := e.RunUntil(25)
	if now != 25 {
		t.Fatalf("RunUntil = %v, want 25", now)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events before deadline, want 2", len(fired))
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
}

func TestRunUntilAdvancesClockWhenQueueEmpty(t *testing.T) {
	e := NewEngine(1)
	if got := e.RunUntil(1000); got != 1000 {
		t.Fatalf("RunUntil on empty queue = %v, want 1000", got)
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Duration(i+1), "t", func(Time) {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []Time {
		e := NewEngine(seed)
		var fired []Time
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 200; i++ {
			e.Schedule(Duration(rng.Intn(1000)), "t", func(now Time) {
				fired = append(fired, now)
				if e.Rand().Intn(4) == 0 {
					e.Schedule(Duration(e.Rand().Intn(50)), "n", func(now Time) {
						fired = append(fired, now)
					})
				}
			})
		}
		e.Run()
		return fired
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("runs fired %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: events always fire in nondecreasing time order, regardless of
// insertion order.
func TestPropertyMonotonicFiring(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(1)
		var fired []Time
		for _, d := range delays {
			e.Schedule(Duration(d), "p", func(now Time) { fired = append(fired, now) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the set of firing times equals the multiset of scheduled times.
func TestPropertyAllEventsFireExactlyOnce(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(1)
		want := make(map[Time]int)
		got := make(map[Time]int)
		for _, d := range delays {
			want[Duration(d)]++
			e.Schedule(Duration(d), "p", func(now Time) { got[now]++ })
		}
		e.Run()
		if len(want) != len(got) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	if Second != 1_000_000 {
		t.Fatalf("Second = %d µs, want 1e6", Second)
	}
	if got := MilliToTime(2.5); got != 2500 {
		t.Fatalf("MilliToTime(2.5) = %d, want 2500", got)
	}
	if s := Time(1_500_000).Seconds(); s != 1.5 {
		t.Fatalf("Seconds = %v, want 1.5", s)
	}
	if ms := Time(2500).Milliseconds(); ms != 2.5 {
		t.Fatalf("Milliseconds = %v, want 2.5", ms)
	}
	if str := Time(1_000_000).String(); str != "1.000000s" {
		t.Fatalf("String = %q", str)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine(1)
		for j := 0; j < 1000; j++ {
			e.Schedule(Duration(j%97), "b", func(Time) {})
		}
		e.Run()
	}
}

func TestPendingExcludesCancelled(t *testing.T) {
	e := NewEngine(1)
	evs := make([]*Event, 5)
	for i := range evs {
		evs[i] = e.Schedule(Duration(10+i), "p", func(Time) {})
	}
	if e.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", e.Pending())
	}
	evs[1].Cancel()
	evs[3].Cancel()
	if e.Pending() != 3 {
		t.Fatalf("Pending after 2 cancels = %d, want 3", e.Pending())
	}
	// Double-cancel must not double-count.
	evs[1].Cancel()
	if e.Pending() != 3 {
		t.Fatalf("Pending after re-cancel = %d, want 3", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", e.Pending())
	}
	if e.EventsFired() != 3 {
		t.Fatalf("fired %d events, want 3", e.EventsFired())
	}
	// Cancelling after the run (handles outlive firing) stays a no-op.
	evs[0].Cancel()
	if e.Pending() != 0 {
		t.Fatalf("Pending after post-run cancel = %d, want 0", e.Pending())
	}
}

func TestRunUntilCancelledHead(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	head := e.Schedule(5, "head", func(now Time) { fired = append(fired, now) })
	e.Schedule(10, "live", func(now Time) { fired = append(fired, now) })
	e.Schedule(30, "late", func(now Time) { fired = append(fired, now) })
	head.Cancel()
	if now := e.RunUntil(20); now != 20 {
		t.Fatalf("RunUntil = %v, want 20", now)
	}
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("fired = %v, want [10] (cancelled head skipped)", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if len(fired) != 2 || fired[1] != 30 {
		t.Fatalf("fired = %v, want [10 30]", fired)
	}
}

func TestScheduleAtExactlyNowTieBreak(t *testing.T) {
	// An event scheduled at exactly the current time from inside a handler
	// must fire after the in-flight handler returns and interleave with
	// other same-time events in scheduling order.
	e := NewEngine(1)
	var order []string
	e.Schedule(10, "outer", func(now Time) {
		order = append(order, "outer")
		if _, err := e.ScheduleAt(now, "at-now-1", func(Time) { order = append(order, "at-now-1") }); err != nil {
			t.Fatalf("ScheduleAt(now): %v", err)
		}
		e.Schedule(0, "zero-delay", func(Time) { order = append(order, "zero-delay") })
		if _, err := e.ScheduleAt(now, "at-now-2", func(Time) { order = append(order, "at-now-2") }); err != nil {
			t.Fatalf("ScheduleAt(now): %v", err)
		}
	})
	end := e.Run()
	want := []string{"outer", "at-now-1", "zero-delay", "at-now-2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if end != 10 {
		t.Fatalf("Run = %v, want 10 (at-now events must not advance the clock)", end)
	}
}

func TestScheduleFuncAndArgFire(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.ScheduleFunc(20, "f", func(now Time) { got = append(got, "func") })
	cb := func(now Time, arg any) { got = append(got, arg.(string)) }
	e.ScheduleArg(10, "a", cb, "arg")
	e.Run()
	if len(got) != 2 || got[0] != "arg" || got[1] != "func" {
		t.Fatalf("got = %v, want [arg func]", got)
	}
	if e.EventsFired() != 2 || e.EventsScheduled() != 2 {
		t.Fatalf("fired=%d scheduled=%d", e.EventsFired(), e.EventsScheduled())
	}
}

func TestFreeListRecyclesFiredEvents(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tick ArgHandler
	tick = func(now Time, arg any) {
		n++
		if n < 100 {
			e.ScheduleArg(1, "tick", tick, arg)
		}
	}
	e.ScheduleArg(1, "tick", tick, &n)
	e.Run()
	if n != 100 {
		t.Fatalf("fired %d, want 100", n)
	}
	// A self-perpetuating chain needs exactly one event object: each fire
	// recycles into the free list and the reschedule takes it back out.
	if e.FreeListLen() != 1 {
		t.Fatalf("free list holds %d events, want 1", e.FreeListLen())
	}
}

func TestSteadyStateScheduleFireDoesNotAllocate(t *testing.T) {
	e := NewEngine(1)
	var cb ArgHandler
	cb = func(now Time, arg any) {}
	// Prime: first pass may grow the heap slice and seed the free list.
	e.ScheduleArg(1, "prime", cb, e)
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.ScheduleArg(1, "steady", cb, e)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+fire allocates %v objects/op, want 0", allocs)
	}
}

func TestLazyCancelCompaction(t *testing.T) {
	e := NewEngine(1)
	var live []*Event
	var cancelled []*Event
	for i := 0; i < 400; i++ {
		ev := e.Schedule(Duration(1000+i), "c", func(Time) {})
		if i%4 == 0 {
			live = append(live, ev)
		} else {
			cancelled = append(cancelled, ev)
		}
	}
	for _, ev := range cancelled {
		ev.Cancel()
	}
	// Compaction must have dropped the bulk of the dead entries from the
	// queue itself (cancels after the last compaction may linger below the
	// half-queue threshold), not just fixed the Pending accounting.
	if len(e.queue) > len(live)+len(cancelled)/2 {
		t.Fatalf("queue holds %d events after cancelling %d of %d — compaction never ran",
			len(e.queue), len(cancelled), len(live)+len(cancelled))
	}
	if e.Pending() != len(live) {
		t.Fatalf("Pending = %d, want %d", e.Pending(), len(live))
	}
	var fired []Time
	e.Schedule(2000, "end", func(now Time) { fired = append(fired, now) })
	prev := Time(-1)
	count := 0
	for e.Step() {
		if e.Now() < prev {
			t.Fatalf("time went backwards after compaction: %v < %v", e.Now(), prev)
		}
		prev = e.Now()
		count++
	}
	if count != len(live)+1 {
		t.Fatalf("fired %d events, want %d", count, len(live)+1)
	}
}

func TestEventAccessors(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(42, "x", func(Time) {})
	if ev.At() != 42 {
		t.Fatalf("At = %v", ev.At())
	}
	if e.EventsScheduled() != 1 || e.EventsFired() != 0 || e.Pending() != 1 {
		t.Fatalf("counters: sched=%d fired=%d pending=%d",
			e.EventsScheduled(), e.EventsFired(), e.Pending())
	}
	e.Run()
	if e.EventsFired() != 1 || e.Pending() != 0 {
		t.Fatalf("after run: fired=%d pending=%d", e.EventsFired(), e.Pending())
	}
}

func TestRandDeterministicPerSeed(t *testing.T) {
	a, b := NewEngine(7), NewEngine(7)
	for i := 0; i < 10; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same-seed engines diverge")
		}
	}
	c := NewEngine(8)
	same := true
	x := NewEngine(7)
	for i := 0; i < 10; i++ {
		if x.Rand().Int63() != c.Rand().Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRunContextCancellation(t *testing.T) {
	// A self-perpetuating event chain never drains the queue; only the
	// context check can stop it.
	e := NewEngine(1)
	var reschedule Handler
	reschedule = func(now Time) { e.Schedule(1, "tick", reschedule) }
	e.Schedule(0, "tick", reschedule)
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	if _, err := e.RunContext(ctx); err == nil {
		t.Fatal("RunContext returned nil error under cancellation")
	}
	if e.EventsFired() == 0 {
		t.Fatal("no events fired before cancellation check")
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(0, "x", func(now Time) { fired = true })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunContext(ctx); err == nil {
		t.Fatal("pre-cancelled context accepted")
	}
	if fired {
		t.Fatal("event fired despite pre-cancelled context")
	}
}

func TestRunContextDrainsWithBackground(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.Schedule(5, "x", func(now Time) { n++ })
	end, err := e.RunContext(context.Background())
	if err != nil || n != 1 || end != 5 {
		t.Fatalf("RunContext = %v, %v (n=%d)", end, err, n)
	}
}
