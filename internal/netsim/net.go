// Package netsim models the client↔I/O-node interconnect of Fig. 1 at the
// fidelity the evaluation needs: a fixed per-message latency plus serialized
// bandwidth occupancy on each I/O node's link (the server NIC is the shared
// bottleneck in the cluster the paper simulates).
package netsim

import (
	"fmt"

	"sdds/internal/fault"
	"sdds/internal/probe"
	"sdds/internal/sim"
)

// Config describes the interconnect.
type Config struct {
	// LatencyOneWay is the propagation + protocol latency per message.
	LatencyOneWay sim.Duration
	// LinkMBps is the bandwidth of each I/O node's link.
	LinkMBps float64
	// NumNodes is the number of I/O-node links.
	NumNodes int
}

// DefaultConfig returns a gigabit-class cluster interconnect.
func DefaultConfig(numNodes int) Config {
	return Config{
		LatencyOneWay: sim.MilliToTime(0.1),
		LinkMBps:      125, // ~1 Gb/s
		NumNodes:      numNodes,
	}
}

// Validate reports the first configuration problem, or nil.
func (c Config) Validate() error {
	switch {
	case c.LatencyOneWay < 0:
		return fmt.Errorf("netsim: negative latency")
	case c.LinkMBps <= 0:
		return fmt.Errorf("netsim: link bandwidth %.1f must be positive", c.LinkMBps)
	case c.NumNodes <= 0:
		return fmt.Errorf("netsim: node count %d must be positive", c.NumNodes)
	}
	return nil
}

// Network simulates the set of I/O-node links. All methods must run on the
// engine goroutine.
type Network struct {
	eng  *sim.Engine
	cfg  Config
	busy []sim.Time // per-node link free time

	// flt/pr are the engine's fault injector and flight recorder, cached at
	// construction; both are nil-safe.
	flt *fault.Injector
	pr  *probe.Probe

	transfers int64
	bytes     int64
	drops     int64
	dups      int64
}

// New builds a network.
func New(eng *sim.Engine, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Network{
		eng:  eng,
		cfg:  cfg,
		busy: make([]sim.Time, cfg.NumNodes),
		flt:  eng.Faults(),
		pr:   eng.Probe(),
	}, nil
}

// MustNew is New, panicking on error.
func MustNew(eng *sim.Engine, cfg Config) *Network {
	n, err := New(eng, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Transfer schedules the delivery of bytes over node's link and invokes
// done at the delivery time. Transfers on one link serialize; latency
// overlaps occupancy of other messages but each message pays bandwidth
// occupancy once.
//
//sddsvet:hotpath
func (n *Network) Transfer(node int, bytes int64, done func(now sim.Time)) error {
	if node < 0 || node >= n.cfg.NumNodes {
		return fmt.Errorf("netsim: node %d out of range [0,%d)", node, n.cfg.NumNodes)
	}
	if bytes < 0 {
		return fmt.Errorf("netsim: negative transfer size %d", bytes)
	}
	now := n.eng.Now()
	start := now
	if n.busy[node] > start {
		start = n.busy[node]
	}
	occupancy := sim.Duration(float64(bytes) / n.cfg.LinkMBps) // bytes/µs = MBps
	n.busy[node] = start + occupancy
	delivery := n.busy[node] + n.cfg.LatencyOneWay
	// Injected drops: each lost copy burned its link occupancy, and the
	// retransmission waits out an exponential backoff before re-occupying
	// the link. Bounded by MaxRetries, then the transfer goes through — the
	// transport is reliable, faults only cost time and bandwidth.
	if n.flt.Enabled() {
		backoff := sim.Duration(n.flt.NetRetryDelayUS())
		for r := 0; r < n.flt.MaxRetries() && n.flt.Hit(fault.SiteNetDrop); r++ {
			n.drops++
			n.pr.Emit(probe.KindFault, int32(fault.SiteNetDrop), int64(n.eng.Now()), int64(node))
			n.busy[node] += backoff + occupancy
			delivery = n.busy[node] + n.cfg.LatencyOneWay
			backoff <<= 1
		}
		// Injected duplicate: a spurious copy serializes on the link after
		// the real delivery is already computed, so it wastes bandwidth for
		// later transfers without delaying this one.
		if n.flt.Hit(fault.SiteNetDup) {
			n.dups++
			n.pr.Emit(probe.KindFault, int32(fault.SiteNetDup), int64(n.eng.Now()), int64(node))
			n.busy[node] += occupancy
		}
	}
	n.transfers++
	n.bytes += bytes
	n.eng.ScheduleFunc(delivery-now, "net.deliver", done)
	return nil
}

// Stats returns cumulative transfer count and bytes.
func (n *Network) Stats() (transfers, bytes int64) { return n.transfers, n.bytes }

// FaultStats returns the injected drop and duplicate counts.
func (n *Network) FaultStats() (drops, dups int64) { return n.drops, n.dups }
