package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goodTrace = `{"traceEvents":[
 {"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"disks"}},
 {"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"disk 0"}},
 {"name":"idle","ph":"X","pid":0,"tid":0,"ts":0,"dur":1500},
 {"name":"io issue","ph":"i","pid":0,"tid":0,"ts":200,"s":"t","args":{"bytes":4096}}
],"displayTimeUnit":"ms"}`

func TestCheckGood(t *testing.T) {
	problems, stats, err := check([]byte(goodTrace))
	if err != nil || len(problems) != 0 {
		t.Fatalf("good trace rejected: %v %v", problems, err)
	}
	if !strings.Contains(stats, "1 spans, 1 instants") {
		t.Fatalf("stats = %q", stats)
	}
}

func TestCheckViolations(t *testing.T) {
	cases := []struct {
		name, json, want string
	}{
		{"not json", `[]`, "not a trace-event"},
		{"no array", `{}`, "no traceEvents"},
		{"empty", `{"traceEvents":[]}`, ""}, // caught via problems below
		{"bad phase", `{"traceEvents":[{"name":"x","ph":"B","pid":0,"tid":0,"ts":1}]}`, ""},
		{"negative dur", `{"traceEvents":[{"name":"x","ph":"X","pid":0,"tid":0,"ts":1,"dur":-5}]}`, ""},
		{"missing ts", `{"traceEvents":[{"name":"x","ph":"i","pid":0,"tid":0}]}`, ""},
		{"anonymous thread", `{"traceEvents":[{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{}}]}`, ""},
	}
	for _, c := range cases {
		problems, _, err := check([]byte(c.json))
		if c.want != "" {
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("%s: err = %v, want %q", c.name, err, c.want)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: hard error %v, want problem list", c.name, err)
		}
		if len(problems) == 0 {
			t.Fatalf("%s: no problems reported", c.name)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(goodTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{good}); err != nil {
		t.Fatalf("run(good) = %v", err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"traceEvents":[{"name":"x","ph":"Z","pid":0,"tid":0}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}); err == nil {
		t.Fatal("run(bad) accepted an invalid trace")
	}
	if err := run(nil); err == nil {
		t.Fatal("run with no args must fail with usage")
	}
}
