package cluster

import (
	"context"
	"strings"
	"sync"
	"testing"

	"sdds/internal/compilecache"
	"sdds/internal/compiler"
	"sdds/internal/fault"
	"sdds/internal/power"
	"sdds/internal/workloads"
)

// A Setup built once must be shareable across concurrent RunPrepared calls
// without perturbing determinism: every run over the same config must match
// a plain Run, and runs over different configs must not interfere.
func TestRunPreparedSharedSetup(t *testing.T) {
	prog := workloads.HF(0.02)
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.Scheduling = true

	baseline, err := Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join(goldenFingerprint(baseline), "\n")

	setup, err := NewSetup(prog, cfg.Procs)
	if err != nil {
		t.Fatal(err)
	}
	cache := compilecache.New()

	const n = 8
	var wg sync.WaitGroup
	results := make([]*Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cfg
			c.CompileCache = cache
			results[i], errs[i] = RunPrepared(context.Background(), setup, c)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		got := strings.Join(goldenFingerprint(results[i]), "\n")
		if got != want {
			t.Errorf("run %d diverged from plain Run:\n%s\nwant:\n%s", i, got, want)
		}
	}
	if st := cache.Stats(); st.Misses != 1 || st.Hits != n-1 {
		t.Errorf("cache stats = %+v, want 1 miss / %d hits", st, n-1)
	}
}

// RunPrepared must reject a config whose Procs disagrees with the Setup —
// the IO index and slot metadata are functions of Procs.
func TestRunPreparedProcsMismatch(t *testing.T) {
	prog := workloads.HF(0.02)
	cfg := DefaultConfig()
	setup, err := NewSetup(prog, cfg.Procs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Procs = cfg.Procs * 2
	if _, err := RunPrepared(context.Background(), setup, cfg); err == nil {
		t.Fatal("procs mismatch accepted")
	}
}

// Runtime knobs — seed, power policy, buffer capacity, fault injection —
// must not move the compile key: a sweep over them shares one artifact.
// The key is computed from the normalized config, which is what the run
// path hands to the cache.
func TestCompileKeyExcludesRuntimeKnobs(t *testing.T) {
	prog := workloads.HF(0.02)
	base := DefaultConfig()
	base.Scheduling = true
	baseKey, ok := compiler.KeyFor(prog, base.normalized().Compiler)
	if !ok {
		t.Fatal("workload uncacheable")
	}

	variants := map[string]func(*Config){
		"seed":    func(c *Config) { c.Seed = 999 },
		"policy":  func(c *Config) { c.Policy = power.Config{Kind: power.KindHistory} },
		"buffer":  func(c *Config) { c.BufferBytes = 32 << 20 },
		"faults":  func(c *Config) { fc := fault.DefaultConfig(); c.Faults = &fc },
		"hittime": func(c *Config) { c.BufferHitTime = base.BufferHitTime * 2 },
	}
	for name, mut := range variants {
		c := base
		mut(&c)
		k, ok := compiler.KeyFor(prog, c.normalized().Compiler)
		if !ok {
			t.Fatalf("%s: uncacheable", name)
		}
		if k != baseKey {
			t.Errorf("%s: runtime knob moved the compile key", name)
		}
	}

	// And a genuinely semantic knob does move it.
	c := base
	c.Compiler.Theta = 16
	if k, _ := compiler.KeyFor(prog, c.normalized().Compiler); k == baseKey {
		t.Error("theta change did not move the compile key")
	}
}
