package main

import "testing"

func TestRunDescribe(t *testing.T) {
	if err := run([]string{"-app", "sar", "-describe"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownApp(t *testing.T) {
	if err := run([]string{"-app", "doom"}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRunUnknownPolicy(t *testing.T) {
	if err := run([]string{"-app", "sar", "-policy", "psychic"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunTinySimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run")
	}
	if err := run([]string{"-app", "madbench2", "-scale", "0.02", "-procs", "8", "-policy", "history", "-scheduling", "-json"}); err != nil {
		t.Fatal(err)
	}
}
