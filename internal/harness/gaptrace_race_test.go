package harness

import (
	"context"
	"sync"
	"testing"
)

// TestGapTraceNotSharedAcrossRuns backs the lock-free contract documented
// on metrics.GapTrace: RecordIdle runs without a mutex because every
// Oracle ablation builds a private trace for its own record/replay pass
// pair. The oracle experiment is the only production GapTrace user, so we
// run it from several goroutines at once — each through its own session so
// nothing is deduplicated away — and let the race detector prove that no
// trace ever crosses between concurrently executing runs. A regression
// that hoisted the trace into shared state (or replayed one while another
// run still records into it) shows up here as a data race.
func TestGapTraceNotSharedAcrossRuns(t *testing.T) {
	e, err := ByID("oracle")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Scale: 0.02, Apps: []string{"sar"}, Seed: 1}

	const goroutines = 3
	outs := make([]string, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A fresh session per goroutine: a shared session would serve
			// repeats from cache and the trace would only be built once.
			res, err := NewSession(SessionOptions{Workers: 2}).Run(context.Background(), e, cfg)
			if err != nil {
				errs[g] = err
				return
			}
			outs[g] = res.Render()
		}()
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if outs[g] != outs[0] {
			t.Fatalf("goroutine %d rendered a different oracle table than goroutine 0", g)
		}
	}
}
