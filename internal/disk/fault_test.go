package disk

import (
	"errors"
	"testing"

	"sdds/internal/fault"
	"sdds/internal/sim"
)

// faultDisk builds a disk whose engine carries an injector over cfg.
func faultDisk(t *testing.T, cfg fault.Config) (*sim.Engine, *Disk) {
	t.Helper()
	eng := sim.NewEngine(1)
	eng.SetFaults(fault.NewInjector(&cfg, 1))
	d, err := New(eng, 0, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return eng, d
}

func TestTransientReadErrorSurfaces(t *testing.T) {
	cfg := fault.DefaultConfig()
	cfg.Rates[fault.SiteDiskRead] = 1.0
	eng, d := faultDisk(t, cfg)
	var gotErr error
	r := &Request{Op: OpRead, Sector: 0, Bytes: 4096,
		Done: func(_ sim.Time, r *Request) { gotErr = r.Err }}
	if err := d.Submit(r); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !errors.Is(gotErr, ErrTransient) {
		t.Fatalf("r.Err = %v, want ErrTransient", gotErr)
	}
	st := d.Stats()
	if st.TransientErrors != 1 {
		t.Fatalf("TransientErrors = %d", st.TransientErrors)
	}
	// A failed read transfers no payload bytes.
	if st.BytesRead != 0 {
		t.Fatalf("BytesRead = %d after a failed read", st.BytesRead)
	}
	// Submit clears Err, so a recycled request starts clean.
	cfg2 := fault.DefaultConfig()
	eng2, d2 := faultDisk(t, cfg2)
	r.Done = func(_ sim.Time, r *Request) { gotErr = r.Err }
	if err := d2.Submit(r); err != nil {
		t.Fatal(err)
	}
	eng2.Run()
	if gotErr != nil {
		t.Fatalf("recycled request kept stale Err: %v", gotErr)
	}
}

func TestBadSectorRemapAddsLatency(t *testing.T) {
	base := func(remap bool) sim.Time {
		cfg := fault.DefaultConfig()
		if remap {
			cfg.Rates[fault.SiteBadSector] = 1.0
		}
		eng, d := faultDisk(t, cfg)
		var done sim.Time
		r := &Request{Op: OpRead, Sector: 100, Bytes: 4096,
			Done: func(now sim.Time, _ *Request) { done = now }}
		if err := d.Submit(r); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if remap && d.Stats().BadSectorRemaps != 1 {
			t.Fatalf("BadSectorRemaps = %d", d.Stats().BadSectorRemaps)
		}
		return done
	}
	clean, remapped := base(false), base(true)
	want := sim.Duration(fault.DefaultConfig().RemapLatencyUS)
	if remapped-clean != want {
		t.Fatalf("remap added %v, want %v", remapped-clean, want)
	}
}

func TestSpinUpFailureReissuesBounded(t *testing.T) {
	cfg := fault.DefaultConfig()
	cfg.Rates[fault.SiteSpinUpFail] = 1.0 // every attempt fails until the bound
	eng, d := faultDisk(t, cfg)
	// Spin the disk down, then wake it with a request: the spin-up must
	// fail MaxRetries times, then succeed (the bound forces completion).
	if err := d.SpinDown(); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	var done bool
	r := &Request{Op: OpRead, Sector: 0, Bytes: 4096,
		Done: func(sim.Time, *Request) { done = true }}
	if err := d.Submit(r); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !done {
		t.Fatal("request never completed after spin-up failures")
	}
	st := d.Stats()
	if st.SpinUpFailures != int64(cfg.MaxRetries) {
		t.Fatalf("SpinUpFailures = %d, want %d (bounded)", st.SpinUpFailures, cfg.MaxRetries)
	}
}

func TestSpinUpDelayExtendsWake(t *testing.T) {
	wake := func(delay bool) sim.Time {
		cfg := fault.DefaultConfig()
		if delay {
			cfg.Rates[fault.SiteSpinUpDelay] = 1.0
		}
		eng, d := faultDisk(t, cfg)
		if err := d.SpinDown(); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		var done sim.Time
		r := &Request{Op: OpRead, Sector: 0, Bytes: 4096,
			Done: func(now sim.Time, _ *Request) { done = now }}
		if err := d.Submit(r); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if delay && d.Stats().SpinUpDelays == 0 {
			t.Fatal("no delayed spin-up recorded")
		}
		return done
	}
	clean, delayed := wake(false), wake(true)
	if delayed-clean != sim.Duration(fault.DefaultConfig().SpinUpDelayUS) {
		t.Fatalf("spin-up delay added %v, want %v", delayed-clean, sim.Duration(fault.DefaultConfig().SpinUpDelayUS))
	}
}
