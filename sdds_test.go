package sdds_test

import (
	"context"
	"sync"
	"testing"

	"sdds"
	"sdds/internal/sim"
)

// TestPublicFacadeScheduling drives the paper's core contribution through
// the public API only.
func TestPublicFacadeScheduling(t *testing.T) {
	layout := sdds.DefaultLayout()
	s, err := sdds.NewScheduler(sdds.DefaultSchedulerParams(50, layout.NumNodes))
	if err != nil {
		t.Fatal(err)
	}
	var accs []*sdds.Access
	for i := 0; i < 12; i++ {
		accs = append(accs, &sdds.Access{
			ID: i, Proc: i % 3, Begin: 0, End: 40, Length: 1,
			Sig:  layout.SignatureFor(int64(i)*(64<<10), 256<<10),
			Orig: 40,
		})
	}
	schedule, err := s.Schedule(accs)
	if err != nil {
		t.Fatal(err)
	}
	if schedule.Len() != 12 {
		t.Fatalf("scheduled %d of 12", schedule.Len())
	}
	if _, err := schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, proc := range schedule.Procs() {
		if len(schedule.Table(proc)) == 0 {
			t.Fatalf("process %d has an empty table", proc)
		}
	}
}

// TestPublicFacadeCompileAndRun compiles and executes a small program
// through the facade.
func TestPublicFacadeCompileAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run")
	}
	w, err := sdds.WorkloadByName("madbench2")
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build(0.02)
	res, err := sdds.Compile(p, sdds.DefaultCompileOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accesses) == 0 {
		t.Fatal("no accesses")
	}
	cfg := sdds.DefaultClusterConfig()
	cfg.Procs = 8
	cfg.Policy = sdds.PolicyConfig{Kind: sdds.PolicyHistory}
	cfg.Scheduling = true
	out, err := sdds.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.EnergyJ <= 0 || out.ExecTime <= sim.Duration(0) {
		t.Fatal("degenerate run")
	}
}

func TestPublicFacadeRegistries(t *testing.T) {
	if len(sdds.Workloads()) != 6 {
		t.Fatalf("workloads = %d", len(sdds.Workloads()))
	}
	if len(sdds.Experiments()) == 0 {
		t.Fatal("no experiments")
	}
	if _, err := sdds.ExperimentByID("fig12c"); err != nil {
		t.Fatal(err)
	}
	if _, err := sdds.ExperimentByID("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	kinds := []sdds.PolicyKind{sdds.PolicyDefault, sdds.PolicySimple,
		sdds.PolicyPredictive, sdds.PolicyHistory, sdds.PolicyStaggered}
	seen := map[sdds.PolicyKind]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Fatalf("duplicate policy kind %v", k)
		}
		seen[k] = true
	}
}

// TestPublicFacadeSession exercises the parallel experiment engine through
// the public API: an explicit session, a worker bound, a progress stream,
// and context-aware cancellation.
func TestPublicFacadeSession(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster runs")
	}
	var events int
	var mu sync.Mutex
	s := sdds.NewSession(sdds.SessionOptions{Workers: 2, Progress: func(p sdds.Progress) {
		mu.Lock()
		events++
		mu.Unlock()
	}})
	e, err := sdds.ExperimentByID("table3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sdds.HarnessConfig{Scale: 0.02, Apps: []string{"sar", "madbench2"}, Seed: 1}
	res, err := s.Run(context.Background(), e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if s.MemoSize() == 0 || events == 0 {
		t.Fatalf("memo = %d, events = %d; want both positive", s.MemoSize(), events)
	}

	// Cancellation through the facade.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Run(ctx, e, cfg); err == nil {
		t.Fatal("cancelled context accepted")
	}
	w, err := sdds.WorkloadByName("madbench2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sdds.RunContext(ctx, w.Build(0.02), sdds.DefaultClusterConfig()); err == nil {
		t.Fatal("RunContext accepted a cancelled context")
	}
	if _, err := sdds.CompileContext(ctx, w.Build(0.02), sdds.DefaultCompileOptions(8)); err == nil {
		t.Fatal("CompileContext accepted a cancelled context")
	}
}

// TestPublicFacadeExperimentRunContext checks the compatibility surface:
// Experiment.Run and Experiment.RunContext share the default session.
func TestPublicFacadeExperimentRunContext(t *testing.T) {
	e, err := sdds.ExperimentByID("table2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(sdds.HarnessConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunContext(context.Background(), sdds.HarnessConfig{}); err != nil {
		t.Fatal(err)
	}
}
