// Package locksafe implements the summary-driven analyzer guarding the
// service's liveness contract: an HTTP/SSE handler must never block while
// holding a lock that Session.RunRequest's progress emission (or the SSE
// hub's broadcast) needs. PR 6 made RunRequest emit progress under
// Session.progMu and broadcast fan out under hub.mu with non-blocking
// select-with-default sends; a handler that parks on a channel or Wait
// while transitively holding one of those locks stalls every in-flight
// run's progress stream.
//
// The check is assembled from callsum summaries: the critical lock set is
// everything the configured root functions may acquire (transitively), and
// a handler is any declared function or method with the
// func(http.ResponseWriter, *http.Request) signature. A handler whose
// summary says "may block while holding L" for a critical L is reported
// with the full acquire-then-block call chain. Handlers wrapped in
// function literals have no summary and are not checked — the repo's
// handlers are methods.
package locksafe

import (
	"go/ast"
	"go/types"
	"sort"

	"sdds/internal/analysis"
	"sdds/internal/analysis/callsum"
)

// Root names one function whose lock needs define the critical set.
type Root struct {
	PkgPath, Recv, Name string
}

// CriticalRoots are the progress-critical functions: every lock they can
// transitively acquire must never be held across a blocking operation in a
// handler. Roots that don't resolve in the loaded module are skipped, so
// fixture tests override this with fixture-local roots.
var CriticalRoots = []Root{
	{"sdds/internal/harness", "Session", "RunRequest"},
	{"sdds/internal/service", "hub", "broadcast"},
	// The shard coordinator's lease traffic must never stall behind a
	// blocking operation under its mutex: every worker heartbeat funnels
	// through these.
	{"sdds/internal/shard", "Coordinator", "Lease"},
	{"sdds/internal/shard", "Coordinator", "Complete"},
}

// Analyzer reports handlers that can block while holding a critical lock.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "flags HTTP/SSE handlers that may block while holding a lock that " +
		"Session.RunRequest progress emission or the SSE hub needs, " +
		"stalling every in-flight run's event stream",
	Run: run,
}

func run(pass *analysis.Pass) error {
	sums := callsum.Of(pass.Mod)
	critical := criticalLocks(sums)
	if len(critical) == 0 {
		return nil
	}
	ids := make([]string, 0, len(critical))
	for id := range critical {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || !isHandler(fn) {
				continue
			}
			sum := sums.ForFunc(fn)
			if sum == nil {
				continue
			}
			for _, id := range ids {
				c := sum.HeldBlocks[id]
				if c == nil {
					continue
				}
				chain := sums.HeldBlockChain(fn, id)
				pass.ReportChain(c.Pos, chain,
					"handler %s may block while holding %s, which %s needs to make progress: %s",
					fn.Name(), id, callsum.FuncDisplay(critical[id]), callsum.Render(chain))
			}
		}
	}
	return nil
}

// criticalLocks unions the transitive lock sets of every resolvable root,
// mapping each lock identity to the root that needs it.
func criticalLocks(sums *callsum.Summaries) map[string]*types.Func {
	critical := make(map[string]*types.Func)
	for _, r := range CriticalRoots {
		fn := sums.LookupFunc(r.PkgPath, r.Recv, r.Name)
		if fn == nil {
			continue
		}
		sum := sums.ForFunc(fn)
		if sum == nil {
			continue
		}
		for id := range sum.Locks {
			if critical[id] == nil {
				critical[id] = fn
			}
		}
	}
	return critical
}

// isHandler matches the net/http handler signature on a declared function
// or method.
func isHandler(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	return analysis.IsNamedType(sig.Params().At(0).Type(), "net/http", "ResponseWriter") &&
		analysis.IsPointerTo(sig.Params().At(1).Type(), "net/http", "Request")
}
