package diag

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdds/internal/probe"
)

// fullCapture builds a representative capture with every evidence kind.
func fullCapture(trigger string) Capture {
	return Capture{
		Trigger:    trigger,
		Key:        "table3|sar|scale=0.05|seed=42",
		ContentKey: "abc123",
		Err:        errors.New("simulate: context deadline exceeded"),
		Request:    map[string]any{"experiment": "table3", "apps": []string{"sar"}},
		Metrics:    []probe.Metric{{Name: "disk.spin_ups", Value: 3}},
		Faults:     map[string]int{"injected": 2},
		JournalTail: []map[string]string{
			{"key": "table3|sar|scale=0.05|seed=41"},
		},
		Trace: func(w io.Writer) error {
			_, err := io.WriteString(w, `{"traceEvents":[]}`)
			return err
		},
		ElapsedMS: 1234,
		MedianMS:  100,
	}
}

// TestCaptureAndValidate: a capture produces a bundle whose files match
// its manifest, whose ID matches its content, and Validate agrees.
func TestCaptureAndValidate(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRecorder(Options{Dir: dir, TarGz: true})
	if err != nil {
		t.Fatal(err)
	}
	info, err := r.Capture(fullCapture(TriggerTimeout))
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || len(info.ID) != 12 {
		t.Fatalf("bundle id = %q", info.ID)
	}
	if info.Manifest.Trigger != TriggerTimeout {
		t.Errorf("trigger = %q", info.Manifest.Trigger)
	}
	for _, want := range []string{"request.json", "error.txt", "metrics.json", "faults.json",
		"journal_tail.json", "trace.json", "heap.pprof", "goroutine.pprof", "buildinfo.txt"} {
		if _, err := os.Stat(filepath.Join(info.Path, want)); err != nil {
			t.Errorf("bundle missing %s: %v", want, err)
		}
	}
	if _, err := os.Stat(filepath.Join(info.Path, "cpu.pprof")); err == nil {
		t.Error("cpu.pprof present without CPUProfile configured")
	}

	for _, path := range []string{info.Path, info.Archive} {
		rep, err := Validate(path)
		if err != nil {
			t.Fatalf("Validate(%s): %v", path, err)
		}
		if !rep.OK() {
			t.Errorf("Validate(%s) problems: %v", path, rep.Problems)
		}
		if rep.Manifest.ID != info.ID {
			t.Errorf("Validate(%s) id = %s, want %s", path, rep.Manifest.ID, info.ID)
		}
	}
	if captured, failures := r.Stats(); captured != 1 || failures != 0 {
		t.Errorf("Stats() = %d, %d", captured, failures)
	}
}

// TestValidateDetectsTampering: flipping a byte in a payload file is
// reported as a hash mismatch; an extra file is reported as unlisted.
func TestValidateDetectsTampering(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRecorder(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	info, err := r.Capture(fullCapture(TriggerError))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(info.Path, "error.txt"), []byte("rewritten\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(info.Path, "extra.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Validate(info.Path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("tampered bundle validated clean")
	}
	joined := strings.Join(rep.Problems, "\n")
	if !strings.Contains(joined, "error.txt") || !strings.Contains(joined, "sha256") {
		t.Errorf("no hash mismatch reported: %v", rep.Problems)
	}
	if !strings.Contains(joined, "extra.txt") {
		t.Errorf("unlisted file not reported: %v", rep.Problems)
	}
}

// TestCaptureDedup: capturing identical content twice yields one bundle.
func TestCaptureDedup(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRecorder(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c := Capture{Trigger: TriggerManual, Request: map[string]string{"experiment": "table3"}}
	// Drop the profiles' run-to-run variance from the test by comparing IDs
	// of two captures with identical JSON payloads: the pprof files differ
	// between captures, so dedup is exercised via the bundle directory
	// rename path instead — second capture with same content must not fail.
	a, err := r.Capture(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Capture(c)
	if err != nil {
		t.Fatal(err)
	}
	infos, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{a.ID: true, b.ID: true}
	if len(infos) != len(ids) {
		t.Errorf("List() = %d bundles, want %d (%v)", len(infos), len(ids), ids)
	}
}

// TestRetention: bundles beyond MaxBundles are pruned oldest-first.
func TestRetention(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRecorder(Options{Dir: dir, MaxBundles: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := r.Capture(Capture{
			Trigger: TriggerManual,
			Request: map[string]int{"i": i},
		}); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) > 2 {
		t.Errorf("retention kept %d bundles, want <= 2", len(infos))
	}
}

// TestFind: bundles resolve by full ID and unique prefix; ambiguous and
// unknown IDs error.
func TestFind(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRecorder(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	info, err := r.Capture(Capture{Trigger: TriggerManual, Request: map[string]string{"k": "v"}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Find(info.ID)
	if err != nil || got.ID != info.ID {
		t.Fatalf("Find(full) = %v, %v", got, err)
	}
	got, err = r.Find(info.ID[:4])
	if err != nil || got.ID != info.ID {
		t.Fatalf("Find(prefix) = %v, %v", got, err)
	}
	if _, err := r.Find("zzzz"); err == nil {
		t.Error("Find(unknown) succeeded")
	}
}

// TestNilRecorder: every method on a nil recorder is a safe no-op.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	if info, err := r.Capture(Capture{Trigger: TriggerError}); info != nil || err != nil {
		t.Errorf("nil Capture = %v, %v", info, err)
	}
	if infos, err := r.List(); infos != nil || err != nil {
		t.Errorf("nil List = %v, %v", infos, err)
	}
	if r.Dir() != "" || r.Watchdog() != nil {
		t.Error("nil recorder leaked state")
	}
	if c, f := r.Stats(); c != 0 || f != 0 {
		t.Error("nil Stats nonzero")
	}
}

// TestListSkipsPartial: a stray temp directory or non-bundle entry never
// surfaces in listings.
func TestListSkipsPartial(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRecorder(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, ".capture-half"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "bundle-nomanifest"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Capture(Capture{Trigger: TriggerManual, Request: map[string]int{"x": 1}}); err != nil {
		t.Fatal(err)
	}
	infos, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Errorf("List() = %d entries, want 1: %+v", len(infos), infos)
	}
}

// TestCaptureErrorPropagates: a trace writer failure fails the capture
// cleanly, leaving no partial bundle behind.
func TestCaptureErrorPropagates(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRecorder(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Capture(Capture{
		Trigger: TriggerError,
		Trace:   func(io.Writer) error { return fmt.Errorf("ring unavailable") },
	})
	if err == nil {
		t.Fatal("capture with failing trace writer succeeded")
	}
	if _, failures := r.Stats(); failures != 1 {
		t.Errorf("failures = %d, want 1", failures)
	}
	infos, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Errorf("partial bundle surfaced: %+v", infos)
	}
}
