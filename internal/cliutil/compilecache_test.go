package cliutil

import (
	"path/filepath"
	"testing"
)

func TestOpenCompileCacheModes(t *testing.T) {
	if c, off, err := OpenCompileCache(""); err != nil || off || c == nil {
		t.Fatalf("default mode: cache=%v off=%v err=%v", c, off, err)
	}
	if c, off, err := OpenCompileCache("on"); err != nil || off || c == nil {
		t.Fatalf("on: cache=%v off=%v err=%v", c, off, err)
	}
	if c, off, err := OpenCompileCache("off"); err != nil || !off || c != nil {
		t.Fatalf("off: cache=%v off=%v err=%v", c, off, err)
	}
	path := filepath.Join(t.TempDir(), "artifacts.jsonl")
	c, off, err := OpenCompileCache(path)
	if err != nil || off || c == nil {
		t.Fatalf("path mode: cache=%v off=%v err=%v", c, off, err)
	}
	if got := c.Store().Path(); got != path {
		t.Fatalf("store path = %q, want %q", got, path)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// A directory path is a store-open error, not a silent in-process cache.
	if _, _, err := OpenCompileCache(t.TempDir()); err == nil {
		t.Fatal("directory path accepted")
	}
}
