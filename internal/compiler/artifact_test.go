package compiler

import (
	"encoding/json"
	"testing"

	"sdds/internal/core"
)

// roundTrip compiles, serializes the artifact through JSON, restores it,
// and asserts the restored result is equivalent to the live compile.
func roundTrip(t *testing.T, opts Options) (*Result, *Result) {
	t.Helper()
	p := testProgram()
	res, err := Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res.Artifact())
	if err != nil {
		t.Fatal(err)
	}
	var art Artifact
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatal(err)
	}
	restored, err := art.Restore(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := EquivalentResults(res, restored); err != nil {
		t.Fatalf("restored result not equivalent: %v", err)
	}
	return res, restored
}

func TestArtifactRoundTrip(t *testing.T) {
	roundTrip(t, DefaultOptions(4))
}

// The coalesced path is the subtle one: schedule points live in
// full-resolution slots while the scheduler ran over coalesced slots, and
// table entries are re-anchored access copies.
func TestArtifactRoundTripCoalesced(t *testing.T) {
	opts := DefaultOptions(4)
	opts.CoalesceD = 3
	roundTrip(t, opts)
}

func TestArtifactRoundTripProfiler(t *testing.T) {
	opts := DefaultOptions(4)
	opts.ForceProfile = true
	res, restored := roundTrip(t, opts)
	if !res.UsedProfiler || !restored.UsedProfiler {
		t.Fatal("UsedProfiler lost in round trip")
	}
}

// Restored results must serve the executor-facing lookups identically.
func TestArtifactRestoreLookups(t *testing.T) {
	res, restored := roundTrip(t, DefaultOptions(4))
	for _, s := range res.Slacks {
		a, okA := res.AccessFor(s.Inst)
		b, okB := restored.AccessFor(s.Inst)
		if okA != okB || a != b {
			t.Fatalf("AccessFor(%+v): %d,%v vs %d,%v", s.Inst, a, okA, b, okB)
		}
	}
	for id := range res.Accesses {
		if res.WriterSlotOf(id) != restored.WriterSlotOf(id) {
			t.Fatalf("WriterSlotOf(%d) differs", id)
		}
		ia, okA := res.InstanceOf(id)
		ib, okB := restored.InstanceOf(id)
		if okA != okB || ia != ib {
			t.Fatalf("InstanceOf(%d) differs", id)
		}
	}
}

// Artifact bytes must be deterministic: two equal compiles marshal to the
// same bytes (the property the content-addressed store's immutability
// check relies on across processes).
func TestArtifactBytesDeterministic(t *testing.T) {
	opts := DefaultOptions(4)
	a, err := Compile(testProgram(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(testProgram(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := json.Marshal(a.Artifact())
	rb, _ := json.Marshal(b.Artifact())
	if string(ra) != string(rb) {
		t.Fatal("equal compiles produced different artifact bytes")
	}
}

// Restore must defend against artifacts for a different compilation.
func TestArtifactRestoreMismatch(t *testing.T) {
	opts := DefaultOptions(4)
	res, err := Compile(testProgram(), opts)
	if err != nil {
		t.Fatal(err)
	}
	art := res.Artifact()

	wrongProcs := opts
	wrongProcs.Procs = 8
	if _, err := art.Restore(testProgram(), wrongProcs); err == nil {
		t.Fatal("restore accepted wrong procs")
	}
	p := testProgram()
	p.Name = "other"
	if _, err := art.Restore(p, opts); err == nil {
		t.Fatal("restore accepted wrong program")
	}
	bad := *art
	bad.Version = ArtifactVersion + 1
	if _, err := bad.Restore(testProgram(), opts); err == nil {
		t.Fatal("restore accepted wrong version")
	}
	corrupt := *art
	corrupt.Points = append([]core.Assignment(nil), art.Points...)
	corrupt.Points[0].ID = len(art.Slacks) + 5
	if _, err := corrupt.Restore(testProgram(), opts); err == nil {
		t.Fatal("restore accepted out-of-range access reference")
	}
}

func TestProvenanceStrings(t *testing.T) {
	cases := map[Provenance]string{
		ProvNone:        "",
		ProvCompiled:    "compiled",
		ProvMemory:      "memo",
		ProvStore:       "restored",
		ProvUncacheable: "uncacheable",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}
