// Package ignoreedge exercises IgnoreIndex edge cases: stacked directives
// covering one line, one multi-analyzer directive covering a
// multi-diagnostic line, file-level directives, and staleness tracking.
// The analyzer suite never runs here; ignore_test drives the index
// directly using the declared names below as position anchors.
package ignoreedge

//sddsvet:ignore-file hotalloc -- file-level: everything here is cold setup

//sddsvet:ignore simdet -- stacked: above-line form
var stamp = now() //sddsvet:ignore simdet -- stacked: trailing form

//sddsvet:ignore simdet,floatorder -- one comment, two analyzers, same line
var reduce = 0.0

//sddsvet:ignore detflow -- deliberately stale: nothing here trips detflow
var answer = 42

func now() int64 { return 1 }
