package trace

import (
	"testing"
	"testing/quick"

	"sdds/internal/loop"
)

func producerConsumer(trips int) *loop.Program {
	return &loop.Program{
		Name:  "pc",
		Files: []loop.File{{ID: 0, Name: "data", Size: 1 << 20}},
		Nests: []loop.Nest{
			{Name: "produce", Trips: trips, Parallel: true,
				Body: []loop.Stmt{{Kind: loop.StmtWrite, File: 0, Region: loop.Affine{IterCoef: 1024, Len: 1024}}}},
			{Name: "consume", Trips: trips, Parallel: true,
				Body: []loop.Stmt{{Kind: loop.StmtRead, File: 0, Region: loop.Affine{IterCoef: 1024, Len: 1024}}}},
		},
	}
}

func TestProfileProducerConsumer(t *testing.T) {
	p := producerConsumer(16)
	slacks, err := Profile(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(slacks) != 16 {
		t.Fatalf("slacks = %d, want 16 reads", len(slacks))
	}
	// Iteration i is written by proc i/4 at slot i%4 and read by the same
	// proc at slot 4 + i%4 (two nests of 4 slots each). So the writer slot
	// equals the read's local index and the slack begins right after it.
	for _, s := range slacks {
		local := s.End - 4
		if s.WriterSlot != local {
			t.Fatalf("read at slot %d: writer %d, want %d", s.End, s.WriterSlot, local)
		}
		if s.Begin != s.WriterSlot+1 {
			t.Fatalf("Begin = %d, want writer+1", s.Begin)
		}
	}
}

func TestProfileInputFileFullSlack(t *testing.T) {
	// No writer at all: slack starts at slot 0.
	p := &loop.Program{
		Files: []loop.File{{ID: 0, Name: "in", Size: 1 << 20}},
		Nests: []loop.Nest{
			{Trips: 8, Parallel: true,
				Body: []loop.Stmt{{Kind: loop.StmtRead, File: 0, Region: loop.Affine{IterCoef: 4096, Len: 4096}}}},
		},
	}
	slacks, err := Profile(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range slacks {
		if s.WriterSlot != -1 || s.Begin != 0 {
			t.Fatalf("input-file slack = %+v, want writer -1, begin 0", s)
		}
	}
}

func TestProfileSameSlotWriteNotVisible(t *testing.T) {
	// Write and read of the same region in the same slot (different
	// processes): the write is concurrent, not preceding → negative slack
	// becomes a window of length 1 at the read's slot.
	p := &loop.Program{
		Files: []loop.File{{ID: 0, Name: "f", Size: 1 << 20}},
		Nests: []loop.Nest{
			{Trips: 2, Parallel: true, Body: []loop.Stmt{
				{Kind: loop.StmtWrite, File: 0, Region: loop.Affine{Len: 512, ProcCoef: 0}},
				{Kind: loop.StmtRead, File: 0, Region: loop.Affine{Len: 512}},
			}},
		},
	}
	slacks, err := Profile(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	first := slacks[0]
	if first.End != 0 {
		t.Fatalf("first read slot = %d", first.End)
	}
	if first.WriterSlot != -1 {
		t.Fatalf("same-slot write counted as preceding: writer = %d", first.WriterSlot)
	}
	if first.Begin != 0 || first.Len() != 1 {
		t.Fatalf("slack = [%d,%d], want length-1 window", first.Begin, first.End)
	}
}

func TestProfileRewriteTracksLatest(t *testing.T) {
	// The same region is written in nest 0 and again in nest 1; a read in
	// nest 2 must see the nest-1 writer.
	stmtW := loop.Stmt{Kind: loop.StmtWrite, File: 0, Region: loop.Affine{Len: 4096}}
	stmtR := loop.Stmt{Kind: loop.StmtRead, File: 0, Region: loop.Affine{Len: 4096}}
	p := &loop.Program{
		Files: []loop.File{{ID: 0, Name: "f", Size: 1 << 20}},
		Nests: []loop.Nest{
			{Trips: 2, Parallel: false, Body: []loop.Stmt{stmtW}},
			{Trips: 2, Parallel: false, Body: []loop.Stmt{stmtW}},
			{Trips: 1, Parallel: false, Body: []loop.Stmt{stmtR}},
		},
	}
	slacks, err := Profile(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(slacks) != 1 {
		t.Fatalf("%d slacks", len(slacks))
	}
	// Nest 1 occupies slots 2..3; its last write is slot 3.
	if slacks[0].WriterSlot != 3 {
		t.Fatalf("writer slot = %d, want 3 (latest rewrite)", slacks[0].WriterSlot)
	}
}

func TestProfilePartialOverlap(t *testing.T) {
	// Writer covers bytes [0,512); reader reads [256,768): overlap counts.
	p := &loop.Program{
		Files: []loop.File{{ID: 0, Name: "f", Size: 1 << 20}},
		Nests: []loop.Nest{
			{Trips: 1, Parallel: false,
				Body: []loop.Stmt{{Kind: loop.StmtWrite, File: 0, Region: loop.Affine{Len: 512}}}},
			{Trips: 1, Parallel: false,
				Body: []loop.Stmt{{Kind: loop.StmtRead, File: 0, Region: loop.Affine{Base: 256, Len: 512}}}},
		},
	}
	slacks, err := Profile(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if slacks[0].WriterSlot != 0 {
		t.Fatalf("partial overlap missed: writer = %d", slacks[0].WriterSlot)
	}
}

func TestProfileRejectsInvalidProgram(t *testing.T) {
	p := &loop.Program{}
	if _, err := Profile(p, 1); err == nil {
		t.Fatal("empty program accepted")
	}
}

func TestIntervalMapInsertQuery(t *testing.T) {
	m := &intervalMap{}
	m.insert(0, 100, 1)
	m.insert(200, 300, 2)
	if s, ok := m.maxSlot(50, 60); !ok || s != 1 {
		t.Fatalf("maxSlot = %d, %v", s, ok)
	}
	if s, ok := m.maxSlot(0, 300); !ok || s != 2 {
		t.Fatalf("spanning maxSlot = %d, %v", s, ok)
	}
	if _, ok := m.maxSlot(100, 200); ok {
		t.Fatal("gap query returned a writer")
	}
	// Overwrite the middle of interval 1.
	m.insert(25, 75, 5)
	if s, _ := m.maxSlot(0, 25); s != 1 {
		t.Fatal("left fringe lost")
	}
	if s, _ := m.maxSlot(25, 75); s != 5 {
		t.Fatal("overwrite lost")
	}
	if s, _ := m.maxSlot(75, 100); s != 1 {
		t.Fatal("right fringe lost")
	}
}

// Property: the interval map agrees with a naive per-byte map under random
// operations.
func TestPropertyIntervalMapMatchesNaive(t *testing.T) {
	type op struct {
		Start, Len uint8
		Slot       uint8
		Query      bool
	}
	f := func(ops []op) bool {
		m := &intervalMap{}
		naive := map[int64]int{}
		for _, o := range ops {
			start := int64(o.Start % 64)
			end := start + int64(o.Len%16) + 1
			if o.Query {
				want, wantOK := -1, false
				for b := start; b < end; b++ {
					if s, ok := naive[b]; ok {
						wantOK = true
						if s > want {
							want = s
						}
					}
				}
				got, ok := m.maxSlot(start, end)
				if ok != wantOK {
					return false
				}
				if ok && got != want {
					return false
				}
			} else {
				m.insert(start, end, int(o.Slot))
				for b := start; b < end; b++ {
					naive[b] = int(o.Slot)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
