// Package trace implements the profiling tool of §IV-A: when a program's
// loop nests are non-affine (or on demand), it derives access slacks by
// executing the program representation symbolically, tracking the last
// writer of every byte range with an exact interval map. For affine
// programs its output matches the polyhedral analyzer exactly — a property
// the integration tests rely on.
package trace

import (
	"sort"

	"sdds/internal/loop"
)

// Profile computes the slack of every read instance of the program for the
// given process count: WriterSlot is the largest slot strictly before the
// read's slot at which any process wrote an overlapping byte range, and the
// slack window is [WriterSlot+1, readSlot] (clamped to length ≥ 1), with
// Begin = 0 for data that pre-exists on disk (§IV-A).
func Profile(p *loop.Program, procs int) ([]loop.Slack, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	instances := p.Instances(procs)
	// Group by slot so reads of slot s only see writes of slots < s (writes
	// within a slot are concurrent with its reads across processes).
	sort.SliceStable(instances, func(i, j int) bool { return instances[i].Slot < instances[j].Slot })

	writers := make(map[int]*intervalMap) // file → last-writer map
	var out []loop.Slack

	i := 0
	for i < len(instances) {
		slot := instances[i].Slot
		j := i
		for j < len(instances) && instances[j].Slot == slot {
			j++
		}
		batch := instances[i:j]
		// Phase 1: resolve reads against state from earlier slots.
		for _, inst := range batch {
			if inst.Kind != loop.StmtRead {
				continue
			}
			w := -1
			if m := writers[inst.File]; m != nil {
				if ws, ok := m.maxSlot(inst.Offset, inst.Offset+inst.Length); ok {
					w = ws
				}
			}
			begin := 0
			if w >= 0 {
				begin = w + 1
			}
			if begin > inst.Slot {
				begin = inst.Slot // negative slack → window of length 1
			}
			out = append(out, loop.Slack{Inst: inst, Begin: begin, End: inst.Slot, WriterSlot: w})
		}
		// Phase 2: apply this slot's writes.
		for _, inst := range batch {
			if inst.Kind != loop.StmtWrite {
				continue
			}
			m := writers[inst.File]
			if m == nil {
				m = &intervalMap{}
				writers[inst.File] = m
			}
			m.insert(inst.Offset, inst.Offset+inst.Length, slot)
		}
		i = j
	}
	// Deterministic output order: by (slot, proc, nest, stmt).
	sort.SliceStable(out, func(a, b int) bool {
		x, y := out[a].Inst, out[b].Inst
		if x.Slot != y.Slot {
			return x.Slot < y.Slot
		}
		if x.Proc != y.Proc {
			return x.Proc < y.Proc
		}
		if x.Nest != y.Nest {
			return x.Nest < y.Nest
		}
		return x.Stmt < y.Stmt
	})
	return out, nil
}

// iv is a half-open byte interval [start, end) last written at slot.
type iv struct {
	start, end int64
	slot       int
}

// intervalMap stores disjoint intervals sorted by start.
type intervalMap struct {
	ivs []iv
}

// insert records that [start, end) was written at slot, overwriting any
// overlapped portions of older intervals (splitting them as needed).
func (m *intervalMap) insert(start, end int64, slot int) {
	if start >= end {
		return
	}
	// Find the first interval that could overlap.
	i := sort.Search(len(m.ivs), func(i int) bool { return m.ivs[i].end > start })
	var out []iv
	out = append(out, m.ivs[:i]...)
	inserted := iv{start: start, end: end, slot: slot}
	for ; i < len(m.ivs); i++ {
		cur := m.ivs[i]
		if cur.start >= end {
			break
		}
		// cur overlaps [start, end): keep the non-overlapped fringes.
		if cur.start < start {
			out = append(out, iv{start: cur.start, end: start, slot: cur.slot})
		}
		if cur.end > end {
			// Right fringe survives; insert new interval before it.
			out = append(out, inserted)
			inserted = iv{}
			out = append(out, iv{start: end, end: cur.end, slot: cur.slot})
			i++
			break
		}
	}
	if inserted.end > inserted.start {
		out = append(out, inserted)
	}
	out = append(out, m.ivs[i:]...)
	m.ivs = out
}

// maxSlot returns the maximum writer slot over [start, end), and whether
// any byte of the range has a writer.
func (m *intervalMap) maxSlot(start, end int64) (int, bool) {
	if start >= end {
		return 0, false
	}
	i := sort.Search(len(m.ivs), func(i int) bool { return m.ivs[i].end > start })
	best := -1
	for ; i < len(m.ivs); i++ {
		cur := m.ivs[i]
		if cur.start >= end {
			break
		}
		if cur.slot > best {
			best = cur.slot
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}
