GO ?= go

# staticcheck is pinned and run via `go run`, so no tool install is needed —
# but fetching it does need the module proxy. Offline environments (CI
# sandboxes, air-gapped machines) skip it with a notice instead of failing.
STATICCHECK_VERSION ?= 2025.1

.PHONY: ci lint vet sddsvet staticcheck build test race smoke trace-smoke fault-smoke service-smoke diag-smoke shard-smoke bench bench-check

# CI runs the lint tier strictly: silently skipping a linter there would
# let findings land unreviewed.
ci: LINT_STRICT = 1
ci: lint build race smoke trace-smoke fault-smoke service-smoke diag-smoke shard-smoke bench-check

# Fast static tier: runs in seconds, ahead of the (90-minute) race tier.
# LINT_STRICT=1 turns the offline staticcheck skip into a hard failure.
LINT_STRICT ?= 0
lint: vet sddsvet staticcheck

vet:
	$(GO) vet ./...

# The project's own analyzer suite (determinism + hot-path contracts); see
# DESIGN.md §9 and `go run ./cmd/sddsvet -list`. The committed baseline
# makes known findings informational — the exit gates on new findings —
# and sddsvet.json is the machine-readable report CI publishes as an
# artifact (use -sarif for code-review ingestion).
sddsvet:
	$(GO) run ./cmd/sddsvet -baseline sddsvet.baseline -json-out sddsvet.json ./...

staticcheck:
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./... 2>/dev/null; then \
		echo "staticcheck: clean"; \
	else \
		status=$$?; \
		if $(GO) list -m honnef.co/go/tools@$(STATICCHECK_VERSION) >/dev/null 2>&1; then \
			echo "staticcheck: findings (exit $$status)"; exit $$status; \
		elif [ "$(LINT_STRICT)" = "1" ]; then \
			echo "staticcheck: module unavailable and LINT_STRICT=1; failing"; exit 1; \
		else \
			echo "staticcheck: module unavailable (offline?); skipping"; \
		fi; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race instrumentation slows the full-scale cluster simulations well past
# the default 10m per-package test timeout; give them room.
race:
	$(GO) test -race -timeout 90m ./...

# A tiny end-to-end sddstables run: plans, simulates and renders every
# experiment at 5% scale on two apps through the parallel session engine.
smoke:
	$(GO) run ./cmd/sddstables -scale 0.05 -apps sar,madbench2 -progress=false

# Tracing end to end: a small traced run through sddsim, then tracecheck
# validates the emitted bytes against the trace-event shape.
trace-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/sddsim -app madbench2 -policy history -scheduling \
		-scale 0.05 -procs 8 -trace "$$tmp/trace.json" >/dev/null && \
	$(GO) run ./cmd/tracecheck "$$tmp/trace.json"

# Fault injection end to end: a short injected sweep writes a crash-safe
# journal, then a -resume rerun reloads every completed run and simulates
# nothing new — the round-trip that makes killed sweeps restartable.
fault-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/sddstables -experiment table3 -scale 0.05 -apps sar,hf \
		-faults 'read=0.02,net-drop=0.01,stall=0.01,seed=7' \
		-journal "$$tmp/sweep.journal" -progress=false >/dev/null && \
	$(GO) run ./cmd/sddstables -experiment table3 -scale 0.05 -apps sar,hf \
		-faults 'read=0.02,net-drop=0.01,stall=0.01,seed=7' \
		-journal "$$tmp/sweep.journal" -resume -progress=false >/dev/null

# Diagnostics capture end to end: a 1ms per-run deadline forces a timeout
# failure under -capture-dir, then sddsdiag validates the captured bundle
# (manifest hashes, trace shape, replayable request); a second pass runs the
# same sweep with capture enabled but no deadline and succeeds — capture on
# the success path must never perturb or fail a run.
diag-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	! $(GO) run ./cmd/sddsim -app sar -scale 0.05 -timeout 1ms \
		-capture-dir "$$tmp/diag" >/dev/null 2>&1 && \
	$(GO) run ./cmd/sddsdiag -dir "$$tmp/diag" && \
	id=$$(ls "$$tmp/diag" | sed -n 's/^bundle-//p' | head -n 1) && \
	$(GO) run ./cmd/sddsdiag -dir "$$tmp/diag" "$$id" && \
	$(GO) run ./cmd/sddstables -experiment table2 -scale 0.05 -apps sar \
		-capture-dir "$$tmp/diag2" -watchdog 1000000 -log "$$tmp/run.log" \
		-progress=false >/dev/null

# Service end to end: builds the real sddsd binary, starts it against a
# fresh store, submits a run over HTTP, polls /v1/status, checks
# /v1/doctor, and SIGTERMs for a clean drained exit.
service-smoke:
	$(GO) test -run TestServiceSmokeBinary -count=1 -v ./internal/service

# Sharded sweep end to end: builds the real sddsd and sddsworker binaries,
# starts a coordinator with a short lease TTL, leases a shard to a worker
# and SIGKILLs it mid-shard, then verifies a second worker picks up the
# requeued lease and the merged store is byte-identical to a direct
# single-process run of the same plan.
shard-smoke:
	$(GO) test -run TestShardSmokeBinary -count=1 -v ./internal/service

# Perf trajectory: engine microbenchmarks (steady-state schedule+fire, the
# container/heap baseline they are measured against) plus a fig12c-shape
# experiment, a full scheduled cluster run, and the compile-cache θ-sweep
# pair (cold inline compiles vs a warmed artifact cache), all with
# -benchmem, written as BENCH_sim.json (benchmark name → ns/op, B/op,
# allocs/op, custom virtual_* metrics) so future PRs can diff ns/event and
# allocs/event. BENCH_CMD is shared with bench-check so the recorded and
# checked runs cannot drift.
BENCH_CMD = { $(GO) test -bench . -benchmem -run '^$$' ./internal/sim && \
	  $(GO) test -bench '^(BenchmarkFig12c|BenchmarkEndToEndScheduledRun|BenchmarkThetaSweepCold|BenchmarkThetaSweepWarm)$$' \
	    -benchmem -benchtime 1x -run '^$$' . ; }

bench:
	$(BENCH_CMD) | $(GO) run ./cmd/benchjson > BENCH_sim.json
	@cat BENCH_sim.json

# Regression gate: re-run the recorded benchmarks and compare against the
# committed BENCH_sim.json — ns/op may drift ±25%, allocs/op must stay
# exact on zero-alloc baselines (and within 2% otherwise). Fails the build
# on regression; refresh the baseline with `make bench` after intentional
# perf changes.
bench-check:
	$(BENCH_CMD) | $(GO) run ./cmd/benchcheck -baseline BENCH_sim.json
