// Package sim provides the discrete-event simulation engine underlying the
// whole reproduction: a virtual clock in microseconds, a 4-ary min-heap
// event queue with deterministic tie-breaking, cancellable timers, and a
// seeded RNG. Every device model (disks, network links, client processes)
// advances exclusively through this engine, so a run with a fixed seed is
// exactly reproducible.
//
// The hot path is allocation-free in steady state: events scheduled through
// ScheduleFunc/ScheduleArg are drawn from a per-engine free list and
// recycled the moment they fire (or are compacted away after cancellation),
// and the heap is specialized to *Event so no interface boxing occurs.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"sdds/internal/fault"
	"sdds/internal/probe"
)

// Time is a point in virtual time, measured in microseconds since the start
// of the simulation.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration = Time

// Common duration units, all expressed in the engine's microsecond base.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
)

// Seconds converts a virtual duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts a virtual duration to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String renders the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// MilliToTime converts floating-point milliseconds into a Duration.
func MilliToTime(ms float64) Duration { return Duration(ms * float64(Millisecond)) }

// Handler is a callback invoked when an event fires. The engine passes the
// current virtual time.
type Handler func(now Time)

// ArgHandler is the de-closured callback form: a reusable function bound
// once (typically a field initialized at construction) that receives the
// argument it was scheduled with. Converting a hot call site from a
// per-schedule closure to (ArgHandler, arg) removes the closure allocation;
// combined with the event free list the whole schedule→fire cycle is
// allocation-free.
type ArgHandler func(now Time, arg any)

// Event is a scheduled callback. It is returned by Schedule so callers can
// cancel pending events (e.g. a power-policy timeout that a new request
// obsoletes).
//
// Handle-returning schedule calls (Schedule, ScheduleAt) produce retained
// events that are never recycled, so a stale handle held after the event
// fired stays inert forever — Cancel on it remains a no-op. Events from the
// fire-and-forget paths (ScheduleFunc, ScheduleArg) never escape to callers
// and are returned to the engine's free list on fire/compaction.
type Event struct {
	at        Time
	seq       uint64
	fn        Handler
	afn       ArgHandler
	arg       any
	eng       *Engine
	queued    bool // still in the heap (cleared on pop/compaction)
	cancelled bool
	retained  bool
	label     string
}

// At reports the virtual time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancelled }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired (or was already cancelled) is a harmless no-op. The event
// stays in the queue and is dropped lazily — either when it reaches the
// heap root or when the engine compacts the queue.
func (e *Event) Cancel() {
	if e.cancelled {
		return
	}
	e.cancelled = true
	if e.queued && e.eng != nil {
		e.eng.cancelledPending++
		e.eng.maybeCompact()
	}
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all model code runs inside event handlers on one goroutine.
type Engine struct {
	now     Time
	queue   []heapEntry
	free    []*Event
	seq     uint64
	rng     *rand.Rand
	stopped bool

	// cancelledPending counts cancelled events still sitting in the queue;
	// Pending subtracts it so callers see live events only, and compaction
	// triggers when it dominates the queue.
	cancelledPending int

	// Stats for observability and tests.
	fired     uint64
	scheduled uint64

	// probe is the optional flight recorder. The engine itself never emits
	// (Step's budget is sacred); it only carries the pointer so models can
	// fetch it once at construction and emit from their own call sites.
	probe *probe.Probe

	// faults is the optional fault injector, carried exactly like the probe:
	// the engine never draws from it, models cache the pointer at New time
	// and consult it at their own decision points.
	faults *fault.Injector
}

// NewEngine returns an engine with the clock at zero and the given RNG seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic RNG. Model code must use this (and
// never the global rand) so runs are reproducible from the seed.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// SetProbe attaches a flight recorder. Call before constructing models:
// they cache the pointer at New time, so a probe set later is invisible to
// them. A nil probe (the default) disables tracing.
func (e *Engine) SetProbe(p *probe.Probe) { e.probe = p }

// Probe returns the attached flight recorder, or nil when tracing is off.
// Model emit sites call through the returned pointer; probe.Emit is
// nil-safe, so callers need no guard of their own.
func (e *Engine) Probe() *probe.Probe { return e.probe }

// SetFaults attaches a fault injector. Like SetProbe, call before
// constructing models: they cache the pointer at New time. A nil injector
// (the default) disables fault injection.
func (e *Engine) SetFaults(f *fault.Injector) { e.faults = f }

// Faults returns the attached fault injector, or nil when injection is off.
// fault.Injector methods are nil-safe, so model decision points need no
// guard of their own.
func (e *Engine) Faults() *fault.Injector { return e.faults }

// EventsFired reports how many events have executed so far.
func (e *Engine) EventsFired() uint64 { return e.fired }

// EventsScheduled reports how many events have been enqueued so far.
func (e *Engine) EventsScheduled() uint64 { return e.scheduled }

// Pending reports the number of live (non-cancelled) events currently
// queued. Cancelled-but-unpopped events are excluded.
func (e *Engine) Pending() int { return len(e.queue) - e.cancelledPending }

// FreeListLen reports the number of recycled events available for reuse
// (observability for the allocation tests).
func (e *Engine) FreeListLen() int { return len(e.free) }

// ErrPastEvent is returned by ScheduleAt when the requested time is before
// the current clock.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// alloc returns an event from the free list (or a fresh one), initialized
// for the given firing time.
func (e *Engine) alloc(at Time, label string, retained bool) *Event {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{} //sddsvet:ignore hotalloc -- free-list warm-up: allocates only until the pool reaches steady state
	}
	e.seq++
	e.scheduled++
	ev.at = at
	ev.seq = e.seq
	ev.eng = e
	ev.label = label
	ev.retained = retained
	ev.cancelled = false
	return ev
}

// recycle returns a popped, non-retained event to the free list. Retained
// events (whose handles may still be held by callers) are left alone.
func (e *Engine) recycle(ev *Event) {
	if ev.retained {
		return
	}
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	ev.label = ""
	e.free = append(e.free, ev)
}

// Schedule enqueues fn to run after delay. A negative delay is clamped to
// zero (fires at the current time, after currently-running handlers). The
// returned handle can be cancelled; it is never recycled, so keeping it
// around after the event fires is safe.
func (e *Engine) Schedule(delay Duration, label string, fn Handler) *Event {
	if delay < 0 {
		delay = 0
	}
	ev := e.alloc(e.now+delay, label, true)
	ev.fn = fn
	e.push(ev)
	return ev
}

// ScheduleAt enqueues fn to run at absolute time at. It returns ErrPastEvent
// if at precedes the current clock. Scheduling exactly at the current time is
// allowed: the event fires after currently-running handlers, ordered by
// schedule sequence among same-time events.
func (e *Engine) ScheduleAt(at Time, label string, fn Handler) (*Event, error) {
	if at < e.now {
		return nil, fmt.Errorf("%w: at=%v now=%v (%s)", ErrPastEvent, at, e.now, label)
	}
	ev := e.alloc(at, label, true)
	ev.fn = fn
	e.push(ev)
	return ev, nil
}

// ScheduleFunc enqueues fn to run after delay without returning a handle.
// The backing event is recycled when it fires, so steady-state scheduling
// through this path does not allocate. Use it for fire-and-forget work that
// never needs Cancel.
func (e *Engine) ScheduleFunc(delay Duration, label string, fn Handler) {
	if delay < 0 {
		delay = 0
	}
	ev := e.alloc(e.now+delay, label, false)
	ev.fn = fn
	e.push(ev)
}

// ScheduleArg enqueues fn(now, arg) to run after delay. fn is typically a
// callback bound once at construction time and arg a long-lived pointer, so
// the call allocates nothing: no closure is created and the backing event is
// recycled when it fires. This is the hot-path scheduling primitive used by
// the disk service pipeline, the network link, and the cluster executor.
func (e *Engine) ScheduleArg(delay Duration, label string, fn ArgHandler, arg any) {
	if delay < 0 {
		delay = 0
	}
	ev := e.alloc(e.now+delay, label, false)
	ev.afn = fn
	ev.arg = arg
	e.push(ev)
}

// Stop makes Run return after the currently-executing handler completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single next event, advancing the clock to its timestamp.
// It returns false when the queue is empty or the engine was stopped.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		if e.stopped {
			return false
		}
		at := e.queue[0].at
		ev := e.pop()
		if ev.cancelled {
			e.cancelledPending--
			e.recycle(ev)
			continue
		}
		e.now = at
		e.fired++
		// Copy what the fire needs, then recycle *before* calling: the
		// handler may schedule, and reusing this event for that schedule is
		// exactly the steady-state the free list exists for.
		fn, afn, arg := ev.fn, ev.afn, ev.arg
		e.recycle(ev)
		if afn != nil {
			afn(e.now, arg)
		} else {
			fn(e.now)
		}
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called. It returns
// the final clock value.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// interruptStride is how many events fire between context checks in
// RunContext. Large enough that the check is free relative to handler work,
// small enough that cancellation lands within microseconds of wall time.
const interruptStride = 1024

// RunContext executes events like Run but polls ctx every interruptStride
// events, returning ctx's error (and the clock at the abort point) if the
// context is cancelled before the queue drains. A run that drains its queue
// returns a nil error even if ctx was cancelled concurrently.
func (e *Engine) RunContext(ctx context.Context) (Time, error) {
	if ctx == nil || ctx.Done() == nil {
		return e.Run(), nil
	}
	if err := ctx.Err(); err != nil {
		return e.now, err
	}
	n := 0
	for e.Step() {
		n++
		if n%interruptStride == 0 {
			if err := ctx.Err(); err != nil {
				return e.now, err
			}
		}
	}
	return e.now, nil
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline (if the queue drained earlier) and returns it.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.ev.cancelled {
			e.cancelledPending--
			e.recycle(e.pop())
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// ---------------------------------------------------------------------------
// Event queue: an inlined 4-ary min-heap ordered by (time, sequence) so that
// simultaneous events fire in scheduling order — the property the
// determinism tests rely on. Heap entries carry the (at, seq) key inline
// next to the event pointer, so sift comparisons read the contiguous entry
// array and never dereference an Event; together with specializing away
// container/heap's any-boxed Push/Pop this removes both the boxing
// allocation and the cache misses that dominated the seed queue. The 4-ary
// shape halves sift-down depth, which matters because pops (root
// replacement, full-depth sift) outnumber pushes' short sift-ups.

// heapEntry is one heap slot: the ordering key plus the scheduled event.
type heapEntry struct {
	at  Time
	seq uint64
	ev  *Event
}

// before orders entries by (at, seq); seq is unique so the order is total.
func (a heapEntry) before(b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends ev and sifts it up.
func (e *Engine) push(ev *Event) {
	ev.queued = true
	ent := heapEntry{at: ev.at, seq: ev.seq, ev: ev}
	q := append(e.queue, ent)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !ent.before(q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = ent
	e.queue = q
}

// pop removes and returns the minimum event.
func (e *Engine) pop() *Event {
	q := e.queue
	top := q[0].ev
	top.queued = false
	n := len(q) - 1
	last := q[n]
	q[n] = heapEntry{}
	e.queue = q[:n]
	if n > 0 {
		e.popSift(last)
	}
	return top
}

// popSift re-seats the displaced last entry after a root pop, bottom-up:
// descend the min-child path unconditionally to a leaf (3 comparisons per
// level instead of 4 — no moving-element check), then sift the entry up
// from the hole. The displaced entry came from the deepest level, so the
// up-phase almost always stops immediately.
func (e *Engine) popSift(ent heapEntry) {
	q := e.queue
	n := len(q)
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		if first+3 < n {
			c := q[first : first+4 : first+4]
			if c[1].before(c[0]) {
				min = first + 1
				if c[2].before(c[1]) {
					min = first + 2
				}
			} else if c[2].before(c[0]) {
				min = first + 2
			}
			if c[3].before(q[min]) {
				min = first + 3
			}
		} else {
			for c := first + 1; c < n; c++ {
				if q[c].before(q[min]) {
					min = c
				}
			}
		}
		q[i] = q[min]
		i = min
	}
	for i > 0 {
		parent := (i - 1) >> 2
		if !ent.before(q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = ent
}

// siftDown places ent at position i, pushing it below smaller children. The
// four-child min scan is unrolled for the full-fanout case so the compiler
// drops the slice bounds checks on the hot interior levels.
func (e *Engine) siftDown(ent heapEntry, i int) {
	q := e.queue
	n := len(q)
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		if first+3 < n {
			c := q[first : first+4 : first+4]
			if c[1].before(c[0]) {
				min = first + 1
				if c[2].before(c[1]) {
					min = first + 2
				}
			} else if c[2].before(c[0]) {
				min = first + 2
			}
			if c[3].before(q[min]) {
				min = first + 3
			}
		} else {
			for c := first + 1; c < n; c++ {
				if q[c].before(q[min]) {
					min = c
				}
			}
		}
		if !q[min].before(ent) {
			break
		}
		q[i] = q[min]
		i = min
	}
	q[i] = ent
}

// compactFloor is the minimum queue length before lazy-cancel compaction is
// considered; below it the dead entries cost nothing.
const compactFloor = 64

// maybeCompact removes cancelled events in bulk once they outnumber half the
// queue, rebuilding the heap in O(n). Firing order is unchanged: cancelled
// events never fire, and the rebuilt heap pops live events in the same total
// (time, seq) order.
func (e *Engine) maybeCompact() {
	if len(e.queue) < compactFloor || e.cancelledPending <= len(e.queue)/2 {
		return
	}
	q := e.queue
	live := q[:0]
	for _, ent := range q {
		if ent.ev.cancelled {
			ent.ev.queued = false
			e.recycle(ent.ev)
			continue
		}
		live = append(live, ent)
	}
	for i := len(live); i < len(q); i++ {
		q[i] = heapEntry{}
	}
	e.queue = live
	e.cancelledPending = 0
	// Floyd heapify over the surviving entries.
	for i := (len(live) - 2) >> 2; i >= 0; i-- {
		e.siftDown(live[i], i)
	}
}
