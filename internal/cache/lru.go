// Package cache provides the byte-budgeted block LRU used in two places in
// the reproduction: the per-I/O-node storage cache (Table II: 64 MB, with
// prefetch insertion) and the client-side global buffer the runtime data
// access scheduler manages (§III, built on the collective caching library of
// Liao et al.).
package cache

import (
	"container/list"
	"fmt"
)

// Key identifies a cached block: a file id plus a block index within the
// file (the block granularity is chosen by the owner — stripe units for the
// storage cache, access ids for the client buffer).
type Key struct {
	File  int
	Block int64
}

// String renders "file:block".
func (k Key) String() string { return fmt.Sprintf("%d:%d", k.File, k.Block) }

type entry struct {
	key  Key
	size int64
}

// Store is the block-cache behaviour shared by LRU and PALRU, which the
// I/O node's storage cache is written against.
type Store interface {
	Get(k Key) (size int64, ok bool)
	Put(k Key, size int64) (evicted []Key, ok bool)
	Contains(k Key) bool
	Remove(k Key) bool
	Used() int64
	Capacity() int64
	Len() int
	Stats() (hits, misses, evictions int64)
}

var (
	_ Store = (*LRU)(nil)
	_ Store = (*PALRU)(nil)
)

// LRU is a least-recently-used cache with a byte capacity. It stores block
// sizes, not payloads — the simulation tracks residency, not data. The zero
// value is not usable; use New.
type LRU struct {
	capacity int64
	used     int64
	order    *list.List // front = most recent
	items    map[Key]*list.Element

	hits, misses, evictions int64
}

// New returns an empty cache holding at most capacity bytes. Capacity must
// be positive.
func New(capacity int64) (*LRU, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: capacity %d must be positive", capacity)
	}
	return &LRU{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[Key]*list.Element),
	}, nil
}

// MustNew is New, panicking on error.
func MustNew(capacity int64) *LRU {
	c, err := New(capacity)
	if err != nil {
		panic(err)
	}
	return c
}

// Capacity returns the byte budget.
func (c *LRU) Capacity() int64 { return c.capacity }

// Used returns the bytes currently resident.
func (c *LRU) Used() int64 { return c.used }

// Len returns the number of resident blocks.
func (c *LRU) Len() int { return len(c.items) }

// Stats returns cumulative hit/miss/eviction counters.
func (c *LRU) Stats() (hits, misses, evictions int64) { return c.hits, c.misses, c.evictions }

// Contains reports residency without affecting recency or hit counters.
func (c *LRU) Contains(k Key) bool {
	_, ok := c.items[k]
	return ok
}

// Get probes the cache, promoting and counting a hit when resident.
func (c *LRU) Get(k Key) (size int64, ok bool) {
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return 0, false
	}
	c.hits++
	c.order.MoveToFront(el)
	e, _ := el.Value.(*entry)
	if e == nil {
		return 0, false
	}
	return e.size, true
}

// Put inserts or refreshes a block, evicting LRU blocks to fit. It returns
// the evicted keys (oldest first). Blocks larger than the whole capacity
// are rejected with ok = false.
func (c *LRU) Put(k Key, size int64) (evicted []Key, ok bool) {
	if size <= 0 || size > c.capacity {
		return nil, false
	}
	if el, exists := c.items[k]; exists {
		e, _ := el.Value.(*entry)
		if e != nil {
			c.used += size - e.size
			e.size = size
		}
		c.order.MoveToFront(el)
	} else {
		c.items[k] = c.order.PushFront(&entry{key: k, size: size})
		c.used += size
	}
	for c.used > c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		e, _ := back.Value.(*entry)
		if e == nil {
			break
		}
		if e.key == k {
			// Don't evict what we just inserted unless it alone overflows
			// (excluded above), but guard against pathological loops.
			c.order.MoveToFront(back)
			break
		}
		c.removeElement(back)
		c.evictions++
		evicted = append(evicted, e.key)
	}
	return evicted, true
}

// Remove invalidates a block (the client buffer's hit-then-invalidate
// semantics). It reports whether the block was resident.
func (c *LRU) Remove(k Key) bool {
	el, ok := c.items[k]
	if !ok {
		return false
	}
	c.removeElement(el)
	return true
}

func (c *LRU) removeElement(el *list.Element) {
	e, _ := el.Value.(*entry)
	if e == nil {
		return
	}
	c.order.Remove(el)
	delete(c.items, e.key)
	c.used -= e.size
}

// Keys returns resident keys from most to least recently used (diagnostics
// and tests).
func (c *LRU) Keys() []Key {
	out := make([]Key, 0, len(c.items))
	for el := c.order.Front(); el != nil; el = el.Next() {
		if e, ok := el.Value.(*entry); ok {
			out = append(out, e.key)
		}
	}
	return out
}
