// Package strutil provides small string helpers shared by the CLIs and the
// harness: edit distance and "did you mean" suggestion lists for
// user-supplied names (application names, experiment ids, flag values).
package strutil

import "sort"

// Levenshtein returns the edit distance between a and b (unit-cost
// insert/delete/substitute), computed with a rolling single-row table.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur := prev[0]
		prev[0] = i
		for j := 1; j <= len(rb); j++ {
			sub := cur
			if ra[i-1] != rb[j-1] {
				sub++
			}
			cur = prev[j]
			del := prev[j] + 1
			ins := prev[j-1] + 1
			m := sub
			if del < m {
				m = del
			}
			if ins < m {
				m = ins
			}
			prev[j] = m
		}
	}
	return prev[len(rb)]
}

// suggestMaxDistance bounds how far a candidate may be from the input to
// count as a plausible typo.
const suggestMaxDistance = 2

// suggestMaxResults caps the list: past a few names a suggestion stops
// being a correction and becomes a listing (e.g. "fig12e" is within
// distance 2 of ten experiment ids).
const suggestMaxResults = 3

// Suggest returns the candidates that plausibly correct name — within edit
// distance 2, or sharing name as a strict prefix — ordered closest first
// (ties alphabetical), at most three of them. It returns nil when nothing
// is close, so callers can fall back to listing everything.
func Suggest(name string, candidates []string) []string {
	type scored struct {
		s string
		d int
	}
	var hits []scored
	for _, c := range candidates {
		if c == name {
			continue
		}
		d := Levenshtein(name, c)
		if d > suggestMaxDistance && !(len(name) >= 2 && len(c) > len(name) && c[:len(name)] == name) {
			continue
		}
		hits = append(hits, scored{c, d})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].d != hits[j].d {
			return hits[i].d < hits[j].d
		}
		return hits[i].s < hits[j].s
	})
	if len(hits) == 0 {
		return nil
	}
	if len(hits) > suggestMaxResults {
		hits = hits[:suggestMaxResults]
	}
	out := make([]string, 0, len(hits))
	for _, h := range hits {
		out = append(out, h.s)
	}
	return out
}
