package shard

import (
	"context"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sdds/internal/backoff"
	"sdds/internal/harness"
	"sdds/internal/store"
)

// fakeClock is an injectable manual clock: lease-expiry tests advance it
// explicitly, so no test sleeps on real time.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// testRequests builds n distinct canonical requests.
func testRequests(t *testing.T, n int) []harness.Request {
	t.Helper()
	apps := []string{"hf", "sar", "astro", "apsi", "madbench2", "wupwise"}
	out := make([]harness.Request, 0, n)
	for i := 0; i < n; i++ {
		r := harness.Request{App: apps[i%len(apps)], Scale: 0.05, Seed: int64(1 + i/len(apps))}
		norm, err := r.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, norm)
	}
	return out
}

// recordFor derives a deterministic fake result for a request.
func recordFor(req harness.Request) harness.RunRecord {
	return harness.RunRecord{
		ExecTimeUS: int64(len(req.Key())),
		EnergyJ:    float64(len(req.App)),
	}
}

// entriesFor renders a shard's completion payload.
func entriesFor(sh Shard) []RunEntry {
	out := make([]RunEntry, 0, len(sh.Requests))
	for _, r := range sh.Requests {
		out = append(out, RunEntry{Request: r, Result: recordFor(r)})
	}
	return out
}

// storeCommit builds a Commit function over a real content-addressed
// store file, so dedup and mismatch semantics are the production ones.
func storeCommit(t *testing.T) (*store.Store, func(harness.Request, harness.RunRecord) (bool, error)) {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "merged.jsonl"), true)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, func(req harness.Request, rec harness.RunRecord) (bool, error) {
		return st.Add(req.ContentKey(), rec)
	}
}

// zeroJitter is a deterministic backoff policy for clock-stepped tests.
var zeroJitter = backoff.Policy{Base: 100 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: 0}

// TestPartitionContentKeyed pins shard derivation: stable IDs for the
// same plan, plan order preserved, IDs sensitive to content.
func TestPartitionContentKeyed(t *testing.T) {
	reqs := testRequests(t, 7)
	a := Partition(reqs, 3)
	b := Partition(reqs, 3)
	if len(a) != 3 || len(a[0].Requests) != 3 || len(a[2].Requests) != 1 {
		t.Fatalf("partition shape wrong: %d shards", len(a))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Errorf("shard %d ID not stable: %s vs %s", i, a[i].ID, b[i].ID)
		}
	}
	if a[0].ID == a[1].ID {
		t.Error("different content produced equal shard IDs")
	}
	// Order is preserved end to end.
	i := 0
	for _, sh := range a {
		for _, r := range sh.Requests {
			if r != reqs[i] {
				t.Fatalf("request %d out of order", i)
			}
			i++
		}
	}
}

// TestLeaseExpiryRequeueAndBackoff pins the crash-recovery path: an
// expired lease requeues the shard behind a backoff gate, and a second
// worker gets it once the gate opens.
func TestLeaseExpiryRequeueAndBackoff(t *testing.T) {
	clock := newFakeClock()
	_, commit := storeCommit(t)
	shards := Partition(testRequests(t, 2), 2)
	c := NewCoordinator(shards, Options{
		LeaseTTL: time.Second, MaxAttempts: 5, Backoff: zeroJitter,
		Clock: clock.Now, Commit: commit,
	})

	la := c.Lease("worker-a")
	if la.Status != StatusGranted {
		t.Fatalf("worker-a lease: %s", la.Status)
	}
	// Unexpired: worker-b has nothing to lease.
	if lb := c.Lease("worker-b"); lb.Status != StatusWait {
		t.Fatalf("worker-b premature lease: %s", lb.Status)
	}
	// Expire the lease; the backoff gate (attempt 0 → 100ms) holds first.
	clock.Advance(time.Second + time.Millisecond)
	if lb := c.Lease("worker-b"); lb.Status != StatusWait {
		t.Fatalf("backoff gate did not hold: %s", lb.Status)
	}
	snap := c.Snapshot()
	if snap.Requeues != 1 || snap.Pending != 1 {
		t.Fatalf("after expiry: %+v", snap)
	}
	clock.Advance(101 * time.Millisecond)
	lb := c.Lease("worker-b")
	if lb.Status != StatusGranted || lb.Shard.ID != la.Shard.ID {
		t.Fatalf("worker-b lease after gate: %+v", lb)
	}
	if lb.LeaseID == la.LeaseID {
		t.Fatal("re-grant reused the lease ID")
	}
	// The original lease is dead: renewing it reports lost.
	if r := c.Renew("worker-a", la.Shard.ID, la.LeaseID); r.Status != StatusLost {
		t.Fatalf("stale renew: %s", r.Status)
	}
	// The live lease renews fine.
	if r := c.Renew("worker-b", lb.Shard.ID, lb.LeaseID); r.Status != StatusOK {
		t.Fatalf("live renew: %s", r.Status)
	}
}

// TestLeaseExpiryDoubleCompletion is the satellite edge case: worker A
// completes a shard exactly as its lease expires, while worker B already
// holds a fresh lease on it. Exactly one result per request lands in the
// store, A's completion is accepted (first wins), B's is deduped as a
// duplicate, and B's renewal tells it to stop — both workers exit
// cleanly.
func TestLeaseExpiryDoubleCompletion(t *testing.T) {
	clock := newFakeClock()
	st, commit := storeCommit(t)
	reqs := testRequests(t, 3)
	shards := Partition(reqs, 3)
	var events []Event
	var evMu sync.Mutex
	c := NewCoordinator(shards, Options{
		LeaseTTL: time.Second, MaxAttempts: 5, Backoff: zeroJitter,
		Clock: clock.Now, Commit: commit,
		OnEvent: func(e Event) { evMu.Lock(); events = append(events, e); evMu.Unlock() },
	})

	la := c.Lease("worker-a")
	if la.Status != StatusGranted {
		t.Fatalf("worker-a lease: %s", la.Status)
	}
	// A's lease expires (Snapshot evaluates it lazily), and once the
	// requeue's backoff gate opens B picks the shard up.
	clock.Advance(time.Second + time.Millisecond)
	c.Snapshot()
	clock.Advance(200 * time.Millisecond)
	lb := c.Lease("worker-b")
	if lb.Status != StatusGranted || lb.Shard.ID != la.Shard.ID {
		t.Fatalf("worker-b lease: %+v", lb)
	}

	// A's completion lands first, under its dead lease: accepted.
	respA, err := c.Complete(CompleteRequest{
		Worker: "worker-a", ShardID: la.Shard.ID, LeaseID: la.LeaseID,
		Results: entriesFor(*la.Shard),
	})
	if err != nil || respA.Status != StatusAccepted || respA.Stored != len(reqs) {
		t.Fatalf("worker-a completion: %+v, %v", respA, err)
	}
	if st.Len() != len(reqs) {
		t.Fatalf("store holds %d results, want %d", st.Len(), len(reqs))
	}

	// B's renewal now reports the shard done: B aborts cleanly.
	if r := c.Renew("worker-b", lb.Shard.ID, lb.LeaseID); r.Status != StatusDone {
		t.Fatalf("worker-b renew after A completed: %s", r.Status)
	}
	// And if B completes anyway, it dedups: nothing new stored.
	respB, err := c.Complete(CompleteRequest{
		Worker: "worker-b", ShardID: lb.Shard.ID, LeaseID: lb.LeaseID,
		Results: entriesFor(*lb.Shard),
	})
	if err != nil || respB.Status != StatusDuplicate || respB.Stored != 0 {
		t.Fatalf("worker-b completion: %+v, %v", respB, err)
	}
	if st.Len() != len(reqs) {
		t.Fatalf("store holds %d results after duplicate, want exactly %d", st.Len(), len(reqs))
	}

	select {
	case <-c.Done():
	default:
		t.Fatal("coordinator not done after completion")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("coordinator error: %v", err)
	}
	snap := c.Snapshot()
	if snap.Completed != 1 || snap.Requeues != 1 || snap.Duplicates != 1 || snap.Stored != len(reqs) {
		t.Fatalf("final snapshot: %+v", snap)
	}
	// The lifecycle events tell the story in order for this shard:
	// leased → requeued → leased → completed → duplicate.
	var kinds []string
	evMu.Lock()
	for _, e := range events {
		kinds = append(kinds, e.Kind)
	}
	evMu.Unlock()
	want := []string{EventLeased, EventRequeued, EventLeased, EventCompleted, EventDuplicate}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Errorf("event order %v, want %v", kinds, want)
	}
}

// TestPoisonedShardAfterMaxAttempts pins retry exhaustion: a shard that
// keeps failing is requeued with backoff until MaxAttempts, then
// poisoned, and the coordinator finishes with an error naming it.
func TestPoisonedShardAfterMaxAttempts(t *testing.T) {
	clock := newFakeClock()
	_, commit := storeCommit(t)
	shards := Partition(testRequests(t, 1), 1)
	var poisoned []Event
	var evMu sync.Mutex
	c := NewCoordinator(shards, Options{
		LeaseTTL: time.Second, MaxAttempts: 2, Backoff: zeroJitter,
		Clock: clock.Now, Commit: commit,
		OnEvent: func(e Event) {
			if e.Kind == EventPoisoned {
				evMu.Lock()
				poisoned = append(poisoned, e)
				evMu.Unlock()
			}
		},
	})
	for attempt := 0; attempt < 2; attempt++ {
		clock.Advance(2 * time.Second) // clear any backoff gate
		l := c.Lease("worker")
		if l.Status != StatusGranted {
			t.Fatalf("attempt %d lease: %s", attempt, l.Status)
		}
		resp, err := c.Complete(CompleteRequest{
			Worker: "worker", ShardID: l.Shard.ID, LeaseID: l.LeaseID,
			Error: "simulated panic",
		})
		if err != nil || resp.Status != StatusAccepted {
			t.Fatalf("attempt %d completion: %+v, %v", attempt, resp, err)
		}
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("coordinator not done after poisoning")
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), shards[0].ID) {
		t.Fatalf("terminal error %v does not name the poisoned shard", err)
	}
	evMu.Lock()
	n := len(poisoned)
	evMu.Unlock()
	if n != 1 {
		t.Fatalf("%d poisoned events, want 1", n)
	}
	snap := c.Snapshot()
	if snap.Failed != 1 || !snap.Done {
		t.Fatalf("final snapshot: %+v", snap)
	}
	// A poisoned sweep still reports done to workers.
	if l := c.Lease("worker"); l.Status != StatusAllDone {
		t.Fatalf("lease after poisoning: %s", l.Status)
	}
}

// TestCommitMismatchIsTheDeterminismTripwire pins that a worker shipping
// a result differing from the stored bytes fails its completion — the
// invariant violation is surfaced, never silently merged.
func TestCommitMismatchIsTheDeterminismTripwire(t *testing.T) {
	clock := newFakeClock()
	st, commit := storeCommit(t)
	reqs := testRequests(t, 1)
	shards := Partition(reqs, 1)
	c := NewCoordinator(shards, Options{
		LeaseTTL: time.Second, MaxAttempts: 2, Backoff: zeroJitter,
		Clock: clock.Now, Commit: commit,
	})
	if err := st.Put(reqs[0].ContentKey(), harness.RunRecord{EnergyJ: 42}); err != nil {
		t.Fatal(err)
	}
	l := c.Lease("worker")
	resp, err := c.Complete(CompleteRequest{
		Worker: "worker", ShardID: l.Shard.ID, LeaseID: l.LeaseID,
		Results: entriesFor(*l.Shard), // EnergyJ differs from the stored 42
	})
	if err != nil {
		t.Fatalf("Complete transport error: %v", err)
	}
	if resp.Status != StatusAccepted || resp.Stored != 0 {
		t.Fatalf("mismatch completion: %+v", resp)
	}
	snap := c.Snapshot()
	if snap.Pending != 1 {
		t.Fatalf("shard not requeued after commit mismatch: %+v", snap)
	}
	if len(snap.Shards) != 1 || !strings.Contains(snap.Shards[0].Error, "different value") {
		t.Fatalf("shard error does not surface the mismatch: %+v", snap.Shards)
	}
}

// TestWorkersEndToEndLocal drives two real Workers against an in-process
// coordinator over the Local adapter: all shards complete, the store
// holds every result exactly once, and both workers exit cleanly on
// done.
func TestWorkersEndToEndLocal(t *testing.T) {
	st, commit := storeCommit(t)
	reqs := testRequests(t, 10)
	shards := Partition(reqs, 2)
	c := NewCoordinator(shards, Options{
		LeaseTTL: 2 * time.Second, Commit: commit,
	})
	exec := func(_ context.Context, req harness.Request) (harness.RunRecord, error) {
		return recordFor(req), nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, name := range []string{"w1", "w2"} {
		w := &Worker{
			API: Local(c), Exec: exec, Name: name,
			Poll: 10 * time.Millisecond, ExitWhenDone: true,
		}
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d exited with %v", i, err)
		}
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if st.Len() != len(reqs) {
		t.Fatalf("store holds %d results, want %d", st.Len(), len(reqs))
	}
	if c.WorkerCount() != 2 {
		t.Errorf("WorkerCount = %d, want 2", c.WorkerCount())
	}
}

// TestWorkerShardJournalResume pins the crash-surviving worker path: a
// worker killed mid-shard leaves a per-shard journal; a restarted worker
// re-leasing the shard resumes from it, re-simulating only the missing
// requests.
func TestWorkerShardJournalResume(t *testing.T) {
	st, commit := storeCommit(t)
	reqs := testRequests(t, 4)
	shards := Partition(reqs, 4)
	dir := t.TempDir()

	// First lifetime: execute two requests, journal them, then "crash"
	// (simulated by a worker that abandons the shard after journaling).
	c1 := NewCoordinator(shards, Options{LeaseTTL: time.Hour, Commit: commit})
	l := c1.Lease("w")
	j, err := harness.OpenJournal(filepath.Join(dir, "shard-"+l.Shard.ID+".jsonl"), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range l.Shard.Requests[:2] {
		if _, err := j.AppendRecord(req, recordFor(req)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Second lifetime: a fresh coordinator (the sweep resubmitted) and a
	// worker with the journal dir; only the two missing requests execute.
	c2 := NewCoordinator(shards, Options{LeaseTTL: 2 * time.Second, Commit: commit})
	var executed []string
	var execMu sync.Mutex
	w := &Worker{
		API: Local(c2), Name: "w", JournalDir: dir,
		Poll: 10 * time.Millisecond, ExitWhenDone: true,
		Exec: func(_ context.Context, req harness.Request) (harness.RunRecord, error) {
			execMu.Lock()
			executed = append(executed, req.ContentKey())
			execMu.Unlock()
			return recordFor(req), nil
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := w.Run(ctx); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if err := c2.Wait(ctx); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	execMu.Lock()
	n := len(executed)
	execMu.Unlock()
	if n != 2 {
		t.Fatalf("restarted worker executed %d requests, want only the 2 missing", n)
	}
	if st.Len() != len(reqs) {
		t.Fatalf("store holds %d results, want %d", st.Len(), len(reqs))
	}
}
