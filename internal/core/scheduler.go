package core

import (
	"fmt"
	"sort"

	"sdds/internal/stripe"
)

// Scheduler runs the data access scheduling algorithms of §IV-B. One
// Scheduler instance handles one scheduling problem; it is not safe for
// concurrent use.
type Scheduler struct {
	params Params

	group  []stripe.Signature // G_t: group active signature per slot
	counts [][]int32          // per-slot per-node scheduled access counts (θ)
	busy   map[procSlot]bool  // (proc, slot) occupancy
}

type procSlot struct{ proc, slot int }

// NewScheduler validates params and returns a scheduler.
func NewScheduler(p Params) (*Scheduler, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Scheduler{
		params: p,
		group:  make([]stripe.Signature, p.NumSlots),
		busy:   make(map[procSlot]bool),
	}
	for i := range s.group {
		s.group[i] = stripe.NewSignature(p.NumNodes)
	}
	if p.Theta > 0 {
		s.counts = make([][]int32, p.NumSlots)
		for i := range s.counts {
			s.counts[i] = make([]int32, p.NumNodes)
		}
	}
	return s, nil
}

// Schedule assigns a scheduling point to every access and returns the
// resulting schedule. The input slice is not modified; accesses are
// processed in the configured order (shortest slack first by default).
func (s *Scheduler) Schedule(accesses []*Access) (*Schedule, error) {
	for _, a := range accesses {
		if err := a.Validate(s.params.NumSlots, s.params.NumNodes); err != nil {
			return nil, err
		}
	}
	order := make([]*Access, len(accesses))
	copy(order, accesses)
	switch s.params.Order {
	case OrderSlack:
		sort.SliceStable(order, func(i, j int) bool {
			if li, lj := order[i].SlackLen(), order[j].SlackLen(); li != lj {
				return li < lj
			}
			return order[i].ID < order[j].ID
		})
	case OrderLongestSlack:
		sort.SliceStable(order, func(i, j int) bool {
			if li, lj := order[i].SlackLen(), order[j].SlackLen(); li != lj {
				return li > lj
			}
			return order[i].ID < order[j].ID
		})
	case OrderInput:
		// keep as-is
	default:
		return nil, fmt.Errorf("core: unknown order %d", s.params.Order)
	}

	sched := newSchedule(s.params, len(accesses))
	for _, a := range order {
		point := s.place(a)
		s.commit(a, point)
		sched.assign(a, point)
	}
	sched.finalize()
	return sched, nil
}

// place selects the scheduling point for one access given everything
// committed so far.
func (s *Scheduler) place(a *Access) int {
	type cand struct {
		slot  int
		reuse float64
	}
	var cands []cand
	bestReuse := -1.0
	latest := a.LatestStart()
	for t := a.Begin; t <= latest; t++ {
		if s.occupied(a, t) {
			continue // Fig. 11 line 8: slot unavailable
		}
		r := s.reuseFactor(a, t)
		switch {
		case r > bestReuse:
			bestReuse = r
			cands = cands[:0]
			cands = append(cands, cand{t, r})
		case r == bestReuse:
			cands = append(cands, cand{t, r})
		}
	}
	if len(cands) == 0 {
		// Every start violates per-process availability (extremely dense
		// schedule): fall back to the slack start, best effort.
		return a.Begin
	}

	if s.params.Theta > 0 {
		// §IV-B3: walk candidates in non-increasing reuse order (all
		// collected slots share the max reuse; extend the walk to every
		// available slot sorted by reuse) and pick the first that meets
		// the θ constraint over the access's whole span.
		all := s.availableByReuse(a)
		for _, c := range all {
			if s.thetaOK(a, c.slot) {
				return c.slot
			}
		}
		// No slot satisfies θ: choose the one with minimum average number
		// of additional accesses E_t.
		best := all[0].slot
		bestE := s.averageExcess(a, all[0].slot)
		for _, c := range all[1:] {
			if e := s.averageExcess(a, c.slot); e < bestE {
				bestE, best = e, c.slot
			}
		}
		return best
	}

	if s.params.RandomTies != nil && len(cands) > 1 {
		return cands[s.params.RandomTies(len(cands))].slot
	}
	return cands[0].slot
}

type reuseSlot struct {
	slot  int
	reuse float64
}

// availableByReuse lists every available start slot sorted by reuse factor,
// non-increasing (ties by slot for determinism).
func (s *Scheduler) availableByReuse(a *Access) []reuseSlot {
	latest := a.LatestStart()
	out := make([]reuseSlot, 0, latest-a.Begin+1)
	for t := a.Begin; t <= latest; t++ {
		if s.occupied(a, t) {
			continue
		}
		out = append(out, reuseSlot{t, s.reuseFactor(a, t)})
	}
	if len(out) == 0 {
		out = append(out, reuseSlot{a.Begin, 0})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].reuse != out[j].reuse {
			return out[i].reuse > out[j].reuse
		}
		return out[i].slot < out[j].slot
	})
	return out
}

// occupied reports whether starting a at slot t would overlap another
// access already scheduled for the same process.
func (s *Scheduler) occupied(a *Access, t int) bool {
	for k := 0; k < a.Length; k++ {
		slot := t + k
		if slot >= s.params.NumSlots {
			break
		}
		if s.busy[procSlot{a.Proc, slot}] {
			return true
		}
	}
	return false
}

// reuseFactor computes R_t (Eq. 2 extended per §IV-B2): unit sub-accesses
// of a starting at t occupy [t, t+len−1] with weight 1; slots up to δ
// before/after the span contribute with linearly decaying weight σ.
func (s *Scheduler) reuseFactor(a *Access, t int) float64 {
	lo := t - s.params.Delta
	hi := t + a.Length - 1 + s.params.Delta
	if lo < 0 {
		lo = 0
	}
	if hi >= s.params.NumSlots {
		hi = s.params.NumSlots - 1
	}
	spanEnd := t + a.Length - 1
	var r float64
	for slot := lo; slot <= hi; slot++ {
		w := 1.0
		if !s.params.NoWeights {
			switch {
			case slot < t:
				w = Weight(t-slot, s.params.Delta)
			case slot > spanEnd:
				w = Weight(slot-spanEnd, s.params.Delta)
			}
		}
		if w == 0 {
			continue
		}
		r += w * a.Sig.InverseDistance(s.group[slot])
	}
	return r
}

// thetaOK reports whether starting a at slot t keeps every I/O node the
// access touches within θ concurrent accesses across the whole span.
func (s *Scheduler) thetaOK(a *Access, t int) bool {
	nodes := a.Sig.Nodes()
	for k := 0; k < a.Length; k++ {
		slot := t + k
		if slot >= s.params.NumSlots {
			break
		}
		for _, n := range nodes {
			if s.counts[slot][n]+1 > int32(s.params.Theta) {
				return false
			}
		}
	}
	return true
}

// averageExcess computes E_t: the average number of accesses beyond θ per
// over-subscribed node, averaged over the slots of the span, assuming a is
// placed at t.
func (s *Scheduler) averageExcess(a *Access, t int) float64 {
	nodes := a.Sig.Nodes()
	var excess float64
	var overNodes int
	for k := 0; k < a.Length; k++ {
		slot := t + k
		if slot >= s.params.NumSlots {
			break
		}
		for _, n := range nodes {
			m := s.counts[slot][n] + 1
			if int(m) > s.params.Theta {
				excess += float64(int(m) - s.params.Theta)
				overNodes++
			}
		}
	}
	if overNodes == 0 {
		return 0
	}
	return excess / float64(overNodes)
}

// commit records a's placement at slot point: per-process occupancy, group
// active signatures, and θ counters.
func (s *Scheduler) commit(a *Access, point int) {
	nodes := a.Sig.Nodes()
	for k := 0; k < a.Length; k++ {
		slot := point + k
		if slot >= s.params.NumSlots {
			break
		}
		s.busy[procSlot{a.Proc, slot}] = true
		s.group[slot].OrInPlace(a.Sig)
		if s.counts != nil {
			for _, n := range nodes {
				s.counts[slot][n]++
			}
		}
	}
}

// GroupSignature exposes the committed group active signature of a slot
// (diagnostics and tests).
func (s *Scheduler) GroupSignature(slot int) stripe.Signature {
	if slot < 0 || slot >= len(s.group) {
		return stripe.NewSignature(s.params.NumNodes)
	}
	return s.group[slot].Clone()
}
