// Quickstart: schedule a handful of I/O accesses with the paper's basic
// algorithm and print the resulting per-process scheduling tables.
//
// This is the smallest possible use of the library: build accesses (slack
// window + I/O-node signature + process id), run the scheduler, inspect
// where each access landed. Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sdds/internal/core"
	"sdds/internal/stripe"
)

func main() {
	// A 16-I/O-node storage system, as in the paper's worked example.
	const numNodes = 16
	layout := stripe.Layout{NumNodes: numNodes, StripeSize: 64 << 10}

	// Ten data accesses from three processes. Signatures derive from the
	// byte ranges each access touches.
	type spec struct {
		proc         int
		begin, end   int
		offset, size int64
	}
	specs := []spec{
		{proc: 0, begin: 0, end: 5, offset: 2 * 64 << 10, size: 64 << 10},
		{proc: 0, begin: 2, end: 9, offset: 10 * 64 << 10, size: 64 << 10},
		{proc: 1, begin: 0, end: 3, offset: 2 * 64 << 10, size: 64 << 10},
		{proc: 1, begin: 1, end: 11, offset: 1 * 64 << 10, size: 2 * 64 << 10},
		{proc: 1, begin: 4, end: 8, offset: 10 * 64 << 10, size: 64 << 10},
		{proc: 2, begin: 0, end: 12, offset: 9 * 64 << 10, size: 64 << 10},
		{proc: 2, begin: 3, end: 10, offset: 2 * 64 << 10, size: 64 << 10},
		{proc: 2, begin: 5, end: 12, offset: 1 * 64 << 10, size: 64 << 10},
		{proc: 0, begin: 6, end: 12, offset: 9 * 64 << 10, size: 2 * 64 << 10},
		{proc: 1, begin: 7, end: 12, offset: 2 * 64 << 10, size: 64 << 10},
	}
	accesses := make([]*core.Access, 0, len(specs))
	for i, s := range specs {
		accesses = append(accesses, &core.Access{
			ID:     i + 1,
			Proc:   s.proc,
			Begin:  s.begin,
			End:    s.end,
			Length: 1,
			Sig:    layout.SignatureFor(s.offset, s.size),
			Orig:   s.end,
		})
	}

	// δ = 2 as in §IV-B1's example; θ = 2 caps per-node concurrency.
	sched, err := core.NewScheduler(core.Params{
		NumSlots: 13, NumNodes: numNodes, Delta: 2, Theta: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	schedule, err := sched.Schedule(accesses)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("access  proc  slack      signature          scheduled")
	for _, a := range accesses {
		point, _ := schedule.PointOf(a.ID)
		moved := ""
		if point < a.Orig {
			moved = fmt.Sprintf("  (moved %d slots earlier)", a.Orig-point)
		}
		fmt.Printf("A%-6d P%-4d [%2d,%2d]  %s  t%-3d%s\n",
			a.ID, a.Proc, a.Begin, a.End, a.Sig.String(), point, moved)
	}

	rep, err := schedule.Validate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvalid schedule: max %d concurrent accesses per I/O node, %d forced overlaps\n",
		rep.MaxPerNode, rep.ProcOverlaps)
	fmt.Printf("active slots: %d, node-slot activations: %d\n",
		schedule.ActiveSlotCount(), schedule.NodeActivations())

	for _, proc := range schedule.Procs() {
		fmt.Printf("\nscheduling table for process %d:\n", proc)
		for _, e := range schedule.Table(proc) {
			fmt.Printf("  slot t%-3d → access A%d (original point t%d)\n", e.Slot, e.AccessID, e.Orig)
		}
	}
}
