package cluster

import (
	"encoding/json"
	"io"

	"sdds/internal/metrics"
)

// Summary is the JSON-serializable digest of a run, for piping results into
// external analysis (plotting, regression tracking).
type Summary struct {
	Program    string `json:"program"`
	Policy     string `json:"policy"`
	Scheduling bool   `json:"scheduling"`

	ExecSeconds float64   `json:"execSeconds"`
	EnergyJoule float64   `json:"energyJoule"`
	NodeEnergy  []float64 `json:"nodeEnergyJoule"`

	IdleGaps    int64      `json:"idleGaps"`
	IdleMeanMs  float64    `json:"idleMeanMs"`
	IdleCDF     []CDFPoint `json:"idleCdf"`
	DiskReqs    int64      `json:"diskRequests"`
	SpinUps     int64      `json:"spinUps"`
	RPMShifts   int64      `json:"rpmShifts"`
	CacheHits   int64      `json:"storageCacheHits"`
	CacheMisses int64      `json:"storageCacheMisses"`

	BufferHits   int64 `json:"bufferHits,omitempty"`
	BufferMisses int64 `json:"bufferMisses,omitempty"`
	AgentMoved   int64 `json:"agentMoved,omitempty"`
	AgentIssued  int64 `json:"agentIssued,omitempty"`
}

// CDFPoint mirrors metrics.CDFPoint with JSON tags.
type CDFPoint struct {
	BoundMs float64 `json:"boundMs"`
	Frac    float64 `json:"frac"`
}

// Summary digests the result.
func (r *Result) Summary() Summary {
	cdf := make([]CDFPoint, 0, len(metrics.PaperBucketsMs))
	for _, p := range r.Idle.CDF() {
		cdf = append(cdf, CDFPoint{BoundMs: p.BoundMs, Frac: p.Frac})
	}
	return Summary{
		Program:      r.Program,
		Policy:       r.Policy.String(),
		Scheduling:   r.Scheduling,
		ExecSeconds:  r.ExecTime.Seconds(),
		EnergyJoule:  r.EnergyJ,
		NodeEnergy:   append([]float64(nil), r.NodeEnergyJ...),
		IdleGaps:     r.Idle.Count(),
		IdleMeanMs:   r.Idle.Mean().Milliseconds(),
		IdleCDF:      cdf,
		DiskReqs:     r.DiskRequests,
		SpinUps:      r.SpinUps,
		RPMShifts:    r.RPMShifts,
		CacheHits:    r.StorageCacheHits,
		CacheMisses:  r.StorageCacheMisses,
		BufferHits:   r.BufferHits,
		BufferMisses: r.BufferMisses,
		AgentMoved:   r.AgentMoved,
		AgentIssued:  r.AgentIssued,
	}
}

// WriteJSON writes the indented summary to w.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Summary())
}
