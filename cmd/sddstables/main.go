// Command sddstables regenerates the tables and figures of the paper's
// evaluation section. With no flags it runs every experiment at full scale;
// use --experiment to run one (table2, table3, fig12a..fig14b, cachesens,
// compile, ablations) and --scale to shrink the workloads for a quick pass.
//
// The cluster simulations an experiment needs are planned up front and
// fanned out over a bounded worker pool (--workers, default GOMAXPROCS);
// distinct configurations are simulated once and cached for the whole
// invocation. A live status line on stderr (--progress) reports runs
// completed/planned, cache hits, and per-run timing. SIGINT cancels queued
// and in-flight simulations promptly, keeping whatever output had already
// been rendered.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"sdds/internal/cliutil"
	"sdds/internal/harness"
	"sdds/internal/probe"
	"sdds/internal/shard"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sddstables:", err)
		os.Exit(1)
	}
}

// run is the signal-free entry point used by tests.
func run(args []string) error { return runCtx(context.Background(), args) }

func runCtx(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sddstables", flag.ContinueOnError)
	var sf cliutil.SweepFlags
	sf.Register(fs)
	var df cliutil.DiagFlags
	df.Register(fs)
	var (
		experiment = fs.String("experiment", "", "experiment id to run (default: all)")
		progress   = fs.Bool("progress", stderrIsTerminal(), "render a live run-progress line on stderr")
		list       = fs.Bool("list", false, "list experiment ids and exit")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write an allocation profile to this file at exit")
		showMetric = fs.Bool("metrics", false, "print each simulated run's counter/gauge registry as a '# metrics' line on stdout")
		tracePath  = fs.String("trace", "", "write a Chrome trace of the session's phases (plan, per-worker runs, compile/simulate) to this file")
		coord      = fs.String("coordinator", "", "run the sweep sharded through this sddsd coordinator URL; results merge back before rendering")
		shardSize  = fs.Int("shard-size", 0, "with -coordinator: requests per shard (0 = the coordinator's default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sddstables: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "sddstables: memprofile:", err)
			}
		}()
	}
	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return nil
	}

	// Validate every name-shaped flag before simulating anything: an
	// unknown app or experiment must fail here, not minutes into a run.
	cfg, err := sf.Config()
	if err != nil {
		return err
	}
	experiments := harness.All()
	if *experiment != "" {
		e, err := harness.ByID(*experiment)
		if err != nil {
			return err
		}
		experiments = []harness.Experiment{e}
	}

	resolvedWorkers := sf.Workers
	if resolvedWorkers <= 0 {
		resolvedWorkers = runtime.GOMAXPROCS(0)
	}
	log, closeLog, err := df.NewLogger()
	if err != nil {
		return err
	}
	defer closeLog()
	recorder, err := df.NewRecorder(log)
	if err != nil {
		return err
	}
	// The session probe is span-only: the concurrent worker pool may not
	// share a record ring, but mutex-guarded spans are safe. Diagnostics
	// capture wants the session trace in its bundles, so a capture dir
	// arms the probe even without -trace.
	var sessProbe *probe.Probe
	if *tracePath != "" || recorder != nil {
		sessProbe = probe.NewSpanProbe()
	}
	jrn, err := sf.OpenJournalWith(log)
	if err != nil {
		return err
	}
	if jrn != nil {
		defer jrn.Close()
	}
	cache, cacheOff, err := sf.OpenCompileCache()
	if err != nil {
		return err
	}
	if cache != nil {
		defer cache.Close()
	}
	sess := harness.NewSession(harness.SessionOptions{
		Workers:             sf.Workers,
		Progress:            combineProgress(metricsPrinter(*showMetric), progressLine(*progress, resolvedWorkers)),
		Probe:               sessProbe,
		RunTimeout:          sf.Timeout,
		Journal:             jrn,
		CompileCache:        cache,
		DisableCompileCache: cacheOff,
		Diag:                recorder,
		Log:                 log,
	})
	if jrn != nil && sf.Resume {
		fmt.Fprintf(os.Stderr, "journal %s: resumed %d completed runs\n", jrn.Path(), sess.Preloaded())
	}
	if *coord != "" {
		// Sharded mode: the coordinator's worker fleet executes the plan,
		// the merged results are installed into the session cache, and the
		// experiments below render entirely from hits.
		if err := runSharded(ctx, *coord, *shardSize, experiments, cfg, sess); err != nil {
			return err
		}
	}
	for i, e := range experiments {
		start := time.Now()
		res, err := sess.Run(ctx, e, cfg)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return fmt.Errorf("interrupted after %d/%d experiments (partial output above)",
					i, len(experiments))
			}
			return err
		}
		// The rendered tables are the deliverable: surface a failed stdout
		// write (closed pipe, full disk) instead of exiting 0 with output
		// missing.
		if _, err := fmt.Print(res.Render()); err != nil {
			return fmt.Errorf("writing %s: %w", e.ID, err)
		}
		if _, err := fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond)); err != nil {
			return fmt.Errorf("writing %s: %w", e.ID, err)
		}
	}
	simulated, hits := sess.Stats()
	if *progress {
		fmt.Fprintf(os.Stderr, "%d distinct configurations simulated, %d reads served from cache, %d workers\n",
			simulated, hits, sess.Workers())
		if cc := sess.CompileCacheStats(); !cacheOff {
			fmt.Fprintf(os.Stderr, "compile cache: %d compiled, %d memo hits, %d restored (%d artifact bytes); %d setup groups shared\n",
				cc.Misses, cc.Hits, cc.Restores, cc.Bytes, sess.SetupGroups())
		}
	}
	if jrn != nil {
		fmt.Fprintf(os.Stderr, "journal %s: %d runs appended (%d resumed)\n",
			jrn.Path(), jrn.Appends(), sess.Preloaded())
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := probe.WriteChromeTrace(f, sessProbe, probe.ChromeOptions{}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d session spans to %s\n", sessProbe.SpanCount(), *tracePath)
	}
	return nil
}

// runSharded executes the experiments' full run plan through a sddsd
// coordinator: submit the deterministically ordered canonical plan,
// wait for the worker fleet (or the coordinator's local fallback) to
// drain it, then fetch every merged result and install it into the
// session cache — the experiments afterwards resolve from hits and
// render byte-identical output to a single-process run.
func runSharded(ctx context.Context, baseURL string, shardSize int, exps []harness.Experiment, cfg harness.Config, sess *harness.Session) error {
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	plan := harness.PlanRequests(exps, cfg)
	cl := &shard.Client{BaseURL: baseURL}
	sub, err := cl.Submit(ctx, shard.SubmitRequest{Requests: plan, ShardSize: shardSize})
	if err != nil {
		return fmt.Errorf("submitting sharded sweep: %w", err)
	}
	fmt.Fprintf(os.Stderr, "sharded sweep: %d requests (%d already stored) across %d shards via %s\n",
		sub.Requests, sub.Resumed, sub.Shards, baseURL)
	snap, err := cl.WaitDone(ctx, 500*time.Millisecond)
	if err != nil {
		return err
	}
	if snap.Requeues > 0 || snap.Duplicates > 0 {
		fmt.Fprintf(os.Stderr, "sharded sweep survived %d lease expiries and deduped %d duplicate completions\n",
			snap.Requeues, snap.Duplicates)
	}
	installed := 0
	for _, req := range plan {
		r, rec, err := cl.Run(ctx, req.ContentKey())
		if err != nil {
			return fmt.Errorf("collecting %s: %w", req.Key(), err)
		}
		res, err := rec.Restore(r)
		if err != nil {
			return fmt.Errorf("restoring %s: %w", req.Key(), err)
		}
		if ok, err := sess.Install(req, res); err != nil {
			return err
		} else if ok {
			installed++
		}
	}
	fmt.Fprintf(os.Stderr, "sharded sweep merged: %d results installed from %d workers\n",
		installed, len(snap.Workers))
	return nil
}

// combineProgress fans one progress stream out to several observers,
// skipping nil ones. Returns nil when none are active.
func combineProgress(fns ...harness.ProgressFunc) harness.ProgressFunc {
	active := fns[:0]
	for _, fn := range fns {
		if fn != nil {
			active = append(active, fn)
		}
	}
	switch len(active) {
	case 0:
		return nil
	case 1:
		return active[0]
	}
	return func(p harness.Progress) {
		for _, fn := range active {
			fn(p)
		}
	}
}

// metricsPrinter emits each simulated run's registry snapshot as one
// greppable stdout line: "# metrics <key>: name=value ...". Cache hits are
// skipped — their metrics already printed when the run executed.
func metricsPrinter(enabled bool) harness.ProgressFunc {
	if !enabled {
		return nil
	}
	return func(p harness.Progress) {
		if p.Err != nil || p.Hit || len(p.Metrics) == 0 {
			return
		}
		var b strings.Builder
		fmt.Fprintf(&b, "# metrics %s:", p.Key)
		for _, m := range p.Metrics {
			fmt.Fprintf(&b, " %s=%g", m.Name, m.Value)
		}
		fmt.Println(b.String())
	}
}

// progressLine renders session progress as a single rewritten stderr line
// with throughput and an ETA. The rate is overall completed runs (hits
// included) per wall second; the ETA scales the mean wall time of completed
// simulations by the runs remaining, spread over the worker pool. Progress
// callbacks are serialized by the session, so the state needs no lock.
func progressLine(enabled bool, workers int) harness.ProgressFunc {
	if !enabled {
		return nil
	}
	var (
		start   time.Time     // first event's arrival, minus its run time
		simTime time.Duration // summed wall time of completed simulations
		simRuns int
		memo    int // hits on runs this session executed
		journal int // hits preloaded from a resumed journal
		ccReuse int // simulated runs whose compile came from the cache
	)
	return func(p harness.Progress) {
		if p.Err != nil {
			return // the run loop reports errors
		}
		if start.IsZero() {
			start = time.Now().Add(-p.Elapsed)
		}
		switch {
		case p.FromJournal:
			journal++
		case p.Hit:
			memo++
		default:
			simTime += p.Elapsed
			simRuns++
			if p.CompileProv == "memo" || p.CompileProv == "restored" {
				ccReuse++
			}
		}
		line := fmt.Sprintf("\r\x1b[K[%d/%d] %d sim / %d memo / %d journal",
			p.Done, p.Total, simRuns, memo, journal)
		if ccReuse > 0 {
			line += fmt.Sprintf(" / %d compile-cached", ccReuse)
		}
		if wall := time.Since(start); wall > 0 {
			line += fmt.Sprintf(" | %.1f runs/s", float64(p.Done)/wall.Seconds())
		}
		if remaining := p.Total - p.Done; remaining > 0 && simRuns > 0 {
			avg := simTime / time.Duration(simRuns)
			eta := avg * time.Duration(remaining) / time.Duration(workers)
			line += fmt.Sprintf(" | ETA %v", eta.Round(time.Second))
		}
		line += fmt.Sprintf(" | %s (%v)", p.Key, p.Elapsed.Round(time.Millisecond))
		fmt.Fprint(os.Stderr, line)
		if p.Done == p.Total {
			fmt.Fprint(os.Stderr, "\r\x1b[K")
		}
	}
}

// stderrIsTerminal reports whether stderr looks like an interactive
// terminal (the default for showing the progress line).
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
