// Package callsum builds module-wide, per-function effect summaries: which
// contract-relevant effects (allocation, wall-clock reads, global-RNG draws,
// order-sensitive map iteration, *sim.Event retention) and which locking
// behaviour (locks acquired, may-block, may-block-while-holding) a function
// has, directly or through any chain of calls. The per-function syntactic
// analyzers of PR 3 see one body at a time; the summaries let them follow a
// violation through helpers and across package boundaries and report the
// full call chain ("hotpath disk.transfer → ionode.flushBatch →
// fmt.Sprintf allocates").
//
// Summaries are computed bottom-up: a package's module-local dependencies
// are summarized before the package itself (Go package imports are acyclic,
// so cross-package recursion is impossible), and within a package the call
// graph is condensed into strongly connected components (Tarjan) processed
// callee-first, iterating each multi-function or self-recursive SCC to a
// fixpoint. The result is memoized per package on the shared engine, which
// itself lives on the analysis.Module (see Of), so every analyzer in a run
// shares one set of summaries.
//
// Precision notes, deliberate and documented:
//
//   - Calls through function values and interface methods have no summary
//     and contribute nothing. This keeps pre-bound sim.Handler dispatch and
//     callback invocation from smearing every caller with the callee set's
//     worst effects; direct per-function analyzers still see the bodies.
//   - An intrinsic effect whose site carries a matching //sddsvet:ignore is
//     dropped from the summary (and the directive counts as used for the
//     stale-suppression audit): a justified wall-clock read or warm-up
//     allocation does not taint every transitive caller.
//   - Lock identities are "pkgpath.Type.field" for struct mutex fields and
//     "pkgpath.var" for package-level mutexes; function-local locks are
//     ignored (nothing else can contend on them). Held-lock tracking is a
//     linear source-order approximation: a deferred Unlock keeps the lock
//     held to the end of the function.
//   - A `go` statement runs its body in a separate held-lock context: its
//     blocking does not block the spawning function (Blocks is not
//     propagated), but blocking while holding a lock inside the goroutine is
//     still recorded (the lock is just as stuck), as are determinism and
//     allocation effects.
package callsum

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sdds/internal/analysis"
)

// EffectKind enumerates the summarized effects.
type EffectKind int

const (
	// Alloc: performs a per-call heap allocation (closure, new, make,
	// composite literal, or a call into allocating stdlib like fmt).
	Alloc EffectKind = iota
	// WallClock: reads the wall clock (time.Now/Since/Until/Sleep/After).
	WallClock
	// GlobalRand: draws from the globally-seeded math/rand source.
	GlobalRand
	// MapOrder: ranges over a map mutating order-sensitive outer state.
	MapOrder
	// RetainEvent: stores a non-retained *sim.Event past its handler scope.
	RetainEvent

	numEffects
)

var kindNames = [numEffects]string{
	Alloc:       "alloc",
	WallClock:   "wall-clock",
	GlobalRand:  "global-rand",
	MapOrder:    "map-order",
	RetainEvent: "retain-event",
}

func (k EffectKind) String() string {
	if k < 0 || k >= numEffects {
		return "effect?"
	}
	return kindNames[k]
}

// suppressors maps each effect to the analyzer names whose //sddsvet:ignore
// directives justify it at the intrinsic site: an ignored site is dropped
// from the summary so the effect never taints transitive callers.
var suppressors = [numEffects][]string{
	Alloc:       {"hotalloc"},
	WallClock:   {"simdet", "detflow"},
	GlobalRand:  {"simdet", "detflow"},
	MapOrder:    {"simdet", "detflow"},
	RetainEvent: {"eventretain"},
}

// Cause records why a summary has an effect: either an intrinsic operation
// (Detail set, Callee nil) or a call to a function whose own summary has it
// (Callee set). Following Callee links reconstructs the full chain.
type Cause struct {
	Pos    token.Pos
	Detail string      // intrinsic leaf: "fmt.Sprintf allocates"
	Callee *types.Func // via-call: the callee carrying the effect
}

// Summary is one function's effect summary. The first cause found (in
// source order, with callees' summaries merged bottom-up) wins per effect;
// richer structure isn't needed to produce one good diagnostic chain.
type Summary struct {
	Fn *types.Func
	// Hotpath records the //sddsvet:hotpath directive on the declaration.
	Hotpath bool

	effects [numEffects]*Cause

	// Locks maps lock identity → first cause acquiring it (directly or via
	// a call).
	Locks map[string]*Cause
	// Blocks is set when the function may block the calling goroutine
	// (channel ops, select without default, WaitGroup/Cond Wait,
	// time.Sleep, or a call to a blocking function).
	Blocks *Cause
	// HeldBlocks maps lock identity → first cause that may block while the
	// lock is held — the shape locksafe hunts for.
	HeldBlocks map[string]*Cause
}

// Effect returns the cause of effect k, or nil when the function (and
// everything it reaches) is free of it.
func (s *Summary) Effect(k EffectKind) *Cause { return s.effects[k] }

// Summaries is the module-wide summary engine. It is not safe for
// concurrent use; the driver runs packages sequentially.
type Summaries struct {
	mod    *analysis.Module
	byFunc map[*types.Func]*Summary
	done   map[string]bool // per-package memo, keyed by import path
}

// Of returns the module's shared summary engine, creating it on first use.
func Of(mod *analysis.Module) *Summaries {
	return mod.Fact("callsum", func(m *analysis.Module) any {
		return &Summaries{
			mod:    m,
			byFunc: make(map[*types.Func]*Summary),
			done:   make(map[string]bool),
		}
	}).(*Summaries)
}

// ForFunc returns fn's summary, summarizing its package (and every
// module-local dependency) on first use. It returns nil for functions
// without summaries: externals, interface methods, and function values.
func (s *Summaries) ForFunc(fn *types.Func) *Summary {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	s.ensurePackage(fn.Pkg().Path())
	return s.byFunc[fn]
}

// ForPackage summarizes pkg (once) and every module-local dependency.
func (s *Summaries) ForPackage(pkg *analysis.Package) {
	s.ensurePackage(pkg.PkgPath)
}

// LookupFunc resolves a function (recv == "") or method declared in a
// loaded package, for configuring analyzer roots. Nil when not loaded or
// not found.
func (s *Summaries) LookupFunc(pkgPath, recv, name string) *types.Func {
	pkg := s.mod.Package(pkgPath)
	if pkg == nil {
		return nil
	}
	scope := pkg.Types.Scope()
	if recv == "" {
		fn, _ := scope.Lookup(name).(*types.Func)
		return fn
	}
	tn, _ := scope.Lookup(recv).(*types.TypeName)
	if tn == nil {
		return nil
	}
	named, _ := tn.Type().(*types.Named)
	if named == nil {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

func (s *Summaries) ensurePackage(path string) {
	if s.done[path] {
		return
	}
	s.done[path] = true
	pkg := s.mod.Package(path)
	if pkg == nil {
		return // stdlib or unloaded: no summaries
	}
	for _, imp := range pkg.Types.Imports() {
		s.ensurePackage(imp.Path())
	}
	s.summarizePackage(pkg)
}

// summarizePackage walks every declared function body once collecting
// intrinsic effects and call sites, then propagates callee summaries
// bottom-up over the intra-package SCC condensation.
func (s *Summaries) summarizePackage(pkg *analysis.Package) {
	ign := s.mod.Ignores(pkg)
	var fns []*types.Func
	facts := make(map[*types.Func]*funcFacts)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ff := s.walkFunc(pkg, ign, fd, fn)
			facts[fn] = ff
			s.byFunc[fn] = ff.sum
			fns = append(fns, fn)
		}
	}
	for _, scc := range tarjan(fns, facts) {
		cyclic := len(scc) > 1
		if !cyclic {
			for _, cs := range facts[scc[0]].calls {
				if cs.callee == scc[0] {
					cyclic = true
					break
				}
			}
		}
		if !cyclic {
			s.propagate(facts[scc[0]])
			continue
		}
		for changed := true; changed; {
			changed = false
			for _, fn := range scc {
				if s.propagate(facts[fn]) {
					changed = true
				}
			}
		}
	}
}

// propagate merges each callee's summary into f's, returning whether
// anything new was learned (the SCC fixpoint condition).
func (s *Summaries) propagate(f *funcFacts) bool {
	changed := false
	sum := f.sum
	for _, cs := range f.calls {
		cal := s.byFunc[cs.callee]
		if cal == nil {
			continue
		}
		for k := EffectKind(0); k < numEffects; k++ {
			if sum.effects[k] == nil && cal.effects[k] != nil {
				sum.effects[k] = &Cause{Pos: cs.pos, Callee: cs.callee}
				changed = true
			}
		}
		for id := range cal.Locks {
			if sum.Locks[id] == nil {
				sum.setLock(id, &Cause{Pos: cs.pos, Callee: cs.callee})
				changed = true
			}
		}
		if !cs.async && sum.Blocks == nil && cal.Blocks != nil {
			sum.Blocks = &Cause{Pos: cs.pos, Callee: cs.callee}
			changed = true
		}
		for id := range cal.HeldBlocks {
			if sum.HeldBlocks[id] == nil {
				sum.setHeldBlock(id, &Cause{Pos: cs.pos, Callee: cs.callee})
				changed = true
			}
		}
		if cal.Blocks != nil {
			// Calling a blocking function while holding locks blocks
			// with them held.
			for _, id := range cs.held {
				if sum.HeldBlocks[id] == nil {
					sum.setHeldBlock(id, &Cause{Pos: cs.pos, Callee: cs.callee})
					changed = true
				}
			}
		}
	}
	return changed
}

func (s *Summary) setLock(id string, c *Cause) {
	if s.Locks == nil {
		s.Locks = make(map[string]*Cause)
	}
	s.Locks[id] = c
}

func (s *Summary) setHeldBlock(id string, c *Cause) {
	if s.HeldBlocks == nil {
		s.HeldBlocks = make(map[string]*Cause)
	}
	s.HeldBlocks[id] = c
}

// tarjan condenses the intra-package call graph into strongly connected
// components, emitted callee-first (reverse topological order of the
// condensation) — exactly the bottom-up processing order.
func tarjan(fns []*types.Func, facts map[*types.Func]*funcFacts) [][]*types.Func {
	index := make(map[*types.Func]int, len(fns))
	low := make(map[*types.Func]int, len(fns))
	onStack := make(map[*types.Func]bool, len(fns))
	var stack []*types.Func
	var sccs [][]*types.Func
	next := 0
	var strong func(fn *types.Func)
	strong = func(fn *types.Func) {
		index[fn] = next
		low[fn] = next
		next++
		stack = append(stack, fn)
		onStack[fn] = true
		for _, cs := range facts[fn].calls {
			cal := cs.callee
			if facts[cal] == nil {
				continue // cross-package: already summarized bottom-up
			}
			if _, seen := index[cal]; !seen {
				strong(cal)
				if low[cal] < low[fn] {
					low[fn] = low[cal]
				}
			} else if onStack[cal] {
				if index[cal] < low[fn] {
					low[fn] = index[cal]
				}
			}
		}
		if low[fn] == index[fn] {
			var scc []*types.Func
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				scc = append(scc, top)
				if top == fn {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, fn := range fns {
		if _, seen := index[fn]; !seen {
			strong(fn)
		}
	}
	return sccs
}

// ---------------------------------------------------------------------------
// Chain reconstruction.

// EffectChain returns the call chain from fn down to the intrinsic cause of
// effect k: one step per function, the leaf step carrying the intrinsic
// detail as its Note.
func (s *Summaries) EffectChain(fn *types.Func, k EffectKind) []analysis.ChainStep {
	return s.chain(fn, func(sum *Summary) *Cause { return sum.effects[k] })
}

// LockChain traces how fn comes to acquire the identified lock.
func (s *Summaries) LockChain(fn *types.Func, id string) []analysis.ChainStep {
	return s.chain(fn, func(sum *Summary) *Cause { return sum.Locks[id] })
}

// HeldBlockChain traces how fn comes to block while holding the identified
// lock. Inner frames may carry plain Blocks causes: the lock was acquired
// higher up and the blocking callee need not know about it.
func (s *Summaries) HeldBlockChain(fn *types.Func, id string) []analysis.ChainStep {
	return s.chain(fn, func(sum *Summary) *Cause {
		if c := sum.HeldBlocks[id]; c != nil {
			return c
		}
		return sum.Blocks
	})
}

// CallChain prefixes an EffectChain of callee with the call site in caller:
// the shape every transitive diagnostic uses.
func (s *Summaries) CallChain(caller *types.Func, pos token.Pos, callee *types.Func, k EffectKind) []analysis.ChainStep {
	head := analysis.ChainStep{Func: FuncDisplay(caller), Pos: pos}
	return append([]analysis.ChainStep{head}, s.EffectChain(callee, k)...)
}

func (s *Summaries) chain(fn *types.Func, sel func(*Summary) *Cause) []analysis.ChainStep {
	var steps []analysis.ChainStep
	for depth := 0; fn != nil && depth < 32; depth++ {
		sum := s.ForFunc(fn)
		if sum == nil {
			break
		}
		c := sel(sum)
		if c == nil {
			break
		}
		step := analysis.ChainStep{Func: FuncDisplay(fn), Pos: c.Pos}
		if c.Callee == nil {
			step.Note = c.Detail
			steps = append(steps, step)
			break
		}
		steps = append(steps, step)
		fn = c.Callee
	}
	return steps
}

// Render formats a chain for embedding in a diagnostic message:
// "disk.Disk.transfer → ionode.Node.flushBatch → fmt.Sprintf allocates".
// Positions are deliberately left out — messages must stay stable across
// unrelated line churn so the committed baseline keys on them; positions
// travel in the structured Chain instead.
func Render(steps []analysis.ChainStep) string {
	parts := make([]string, 0, len(steps)+1)
	for _, st := range steps {
		parts = append(parts, st.Func)
	}
	if n := len(steps); n > 0 && steps[n-1].Note != "" {
		parts = append(parts, steps[n-1].Note)
	}
	return strings.Join(parts, " → ")
}

// FuncDisplay renders a function for chains: "pkg.Func" or
// "pkg.Type.Method".
func FuncDisplay(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	name := fn.Pkg().Name() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name += named.Obj().Name() + "."
		}
	}
	return name + fn.Name()
}
