package probe

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func decodeTrace(t *testing.T, buf *bytes.Buffer) chromeTrace {
	t.Helper()
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	return tr
}

func TestWriteChromeTraceNil(t *testing.T) {
	if err := WriteChromeTrace(&bytes.Buffer{}, nil, ChromeOptions{}); err == nil {
		t.Fatal("want error exporting a nil probe")
	}
}

func TestWriteChromeTraceDiskTracks(t *testing.T) {
	p := NewProbe(1024)
	// Disk 0: standby -> active at t=100 -> (open until maxT).
	p.Emit(KindDiskState, 0, 0, 1)
	p.Emit(KindDiskState, 0, 100, 2)
	p.Emit(KindIOIssue, 0, 100, 4096)
	p.Emit(KindIOComplete, 0, 150, 4096)
	// Disk 3 appears only via a spin-up instant.
	p.Emit(KindSpinUp, 3, 200, 1)
	p.Emit(KindCacheMiss, 7, 90, 12)
	p.Emit(KindBufferHit, 42, 95, 0)

	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, p, ChromeOptions{
		StateName: func(arg int64) string { return "S" + string(rune('0'+arg)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := decodeTrace(t, &buf)
	if tr.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}

	threadNames := map[string]bool{}
	var spans, instants int
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				threadNames[ev.Args["name"].(string)] = true
			}
		case "X":
			spans++
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("X event %q has bad dur", ev.Name)
			}
		case "i":
			instants++
			if ev.S != "t" {
				t.Fatalf("instant %q scope = %q, want t", ev.Name, ev.S)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	for _, want := range []string{"disk 0", "disk 3", "ionode 7", "global buffer"} {
		if !threadNames[want] {
			t.Errorf("missing thread_name %q (have %v)", want, threadNames)
		}
	}
	// Two state spans: S1 [0,100) and trailing S2 closed at maxT=200.
	if spans != 2 {
		t.Fatalf("spans = %d, want 2", spans)
	}
	// io issue, io complete, spin-up, cache miss, buffer hit.
	if instants != 5 {
		t.Fatalf("instants = %d, want 5", instants)
	}
	if !strings.Contains(buf.String(), `"aborted spin-down":true`) {
		t.Error("spin-up with arg=1 should carry the aborted marker")
	}
}

func TestWriteChromeTracePhaseSpans(t *testing.T) {
	p := NewSpanProbe()
	p.StartSpan(TrackPlan, "plan").End()
	p.StartSpan(TrackRun, "compile").End()
	open := p.StartSpan(TrackWorkerBase+1, "app=btio") // left open: truncated
	_ = open

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, p, ChromeOptions{}); err != nil {
		t.Fatal(err)
	}
	tr := decodeTrace(t, &buf)
	names := map[string]bool{}
	spanNames := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			names[ev.Args["name"].(string)] = true
		}
		if ev.Ph == "X" {
			spanNames[ev.Name] = true
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("span %q has bad dur", ev.Name)
			}
		}
	}
	for _, want := range []string{"plan", "run", "worker 1"} {
		if !names[want] {
			t.Errorf("missing phase track %q (have %v)", want, names)
		}
	}
	for _, want := range []string{"plan", "compile", "app=btio"} {
		if !spanNames[want] {
			t.Errorf("missing span %q (have %v)", want, spanNames)
		}
	}
}

func TestWriteChromeTraceDefaultStateName(t *testing.T) {
	p := NewProbe(1024)
	p.Emit(KindDiskState, 0, 0, 5)
	p.Emit(KindDiskState, 0, 10, 6)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, p, ChromeOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"state 5"`) {
		t.Error("default state namer should render 'state 5'")
	}
}
