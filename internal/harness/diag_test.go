package harness

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sdds/internal/cluster"
	"sdds/internal/diag"
	"sdds/internal/power"
	"sdds/internal/probe"
	"sdds/internal/workloads"
)

// loadClusterGolden reads the committed 24-config golden fingerprints the
// cluster package maintains.
func loadClusterGolden(t *testing.T) map[string][]string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "cluster", "testdata", "golden.json"))
	if err != nil {
		t.Fatalf("reading cluster golden file: %v", err)
	}
	want := make(map[string][]string)
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	return want
}

// quietLogger discards structured log output while still exercising the
// logging path.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewJSONHandler(io.Discard, nil))
}

// TestGoldenCaptureNeutral is the capture-neutrality contract: a session
// with diagnostics capture armed — watchdog tuned so aggressively that
// nearly every run triggers a "slow" bundle, structured logging on, and a
// span probe attached — must produce bit-identical golden fingerprints on
// all 24 golden configurations. Capture happens strictly after a run's
// result is collected, and this test is what keeps it that way.
func TestGoldenCaptureNeutral(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix")
	}
	want := loadClusterGolden(t)
	rec, err := diag.NewRecorder(diag.Options{
		Dir:            filepath.Join(t.TempDir(), "diag"),
		SlowMultiplier: 0.01, // any run slower than 1% of the median → "slow"
		MinSamples:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(SessionOptions{
		Probe: probe.NewSpanProbe(),
		Diag:  rec,
		Log:   quietLogger(),
	})
	for _, spec := range workloads.All() {
		for _, kind := range []power.Kind{power.KindDefault, power.KindHistory} {
			for _, scheduling := range []bool{false, true} {
				req := Request{
					App:        spec.Name,
					Policy:     kind.String(),
					Scheduling: scheduling,
					Scale:      0.05,
					Seed:       42,
				}
				res, _, err := s.RunRequest(context.Background(), req)
				if err != nil {
					t.Fatalf("%s/%s/sched=%v: %v", spec.Name, kind, scheduling, err)
				}
				key := cluster.FingerprintKey(spec.Name, kind, scheduling)
				fp := cluster.Fingerprint(res)
				w, ok := want[key]
				if !ok {
					t.Fatalf("%s: missing from golden file", key)
				}
				if len(fp) != len(w) {
					t.Fatalf("%s: %d fields vs golden %d", key, len(fp), len(w))
				}
				for i := range w {
					if fp[i] != w[i] {
						t.Errorf("%s: with capture armed: field %q, golden %q", key, fp[i], w[i])
					}
				}
			}
		}
	}
	// The watchdog must actually have fired — neutrality of a capture that
	// never happened proves nothing — and every bundle must validate.
	captured, failures := rec.Stats()
	if captured == 0 {
		t.Fatal("aggressive watchdog captured no bundles")
	}
	if failures != 0 {
		t.Errorf("capture failures = %d", failures)
	}
	infos, err := rec.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) == 0 {
		t.Fatal("no bundles on disk")
	}
	for _, b := range infos {
		rep, err := diag.Validate(b.Path)
		if err != nil {
			t.Fatalf("Validate(%s): %v", b.Path, err)
		}
		if !rep.OK() {
			t.Errorf("bundle %s invalid: %v", b.ID, rep.Problems)
		}
		if rep.Manifest.Trigger != diag.TriggerSlow {
			t.Errorf("bundle %s trigger = %q, want slow", b.ID, rep.Manifest.Trigger)
		}
	}
}

// TestTimeoutCaptureReproduces is the black-box round trip: a run killed
// by the per-run deadline yields a bundle whose embedded request, loaded
// back from request.json and resubmitted to a fresh session under the
// same deadline, reproduces the same failure.
func TestTimeoutCaptureReproduces(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "diag")
	newSession := func(t *testing.T) *Session {
		rec, err := diag.NewRecorder(diag.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return NewSession(SessionOptions{
			RunTimeout: time.Millisecond,
			Probe:      probe.NewSpanProbe(),
			Diag:       rec,
			Log:        quietLogger(),
		})
	}
	req := Request{App: "sar", Policy: "history", Scheduling: true, Scale: 0.05, Seed: 42}
	_, _, err := newSession(t).RunRequest(context.Background(), req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("run under 1ms deadline returned %v, want deadline exceeded", err)
	}

	infos, err := diag.ListDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("captured %d bundles, want 1", len(infos))
	}
	b := infos[0]
	if b.Manifest.Trigger != diag.TriggerTimeout {
		t.Errorf("trigger = %q, want timeout", b.Manifest.Trigger)
	}
	rep, err := diag.Validate(b.Path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("bundle invalid: %v", rep.Problems)
	}
	var captured Request
	if err := json.Unmarshal(rep.Files["request.json"], &captured); err != nil {
		t.Fatalf("request.json: %v", err)
	}
	if captured.Key() != req.MustKey(t) {
		t.Errorf("captured request key %q, want %q", captured.Key(), req.MustKey(t))
	}
	// Fresh session, same deadline: the captured request must fail the
	// same way (not via this session's cache — it is empty).
	_, hit, err := newSession(t).RunRequest(context.Background(), captured)
	if hit {
		t.Error("resubmission was a cache hit; reproduction proves nothing")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("resubmitted request returned %v, want deadline exceeded", err)
	}
}

// MustKey renders the request's canonical key, failing the test on an
// invalid request.
func (r Request) MustKey(t *testing.T) string {
	t.Helper()
	n, err := r.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return n.Key()
}

// TestPanicErrorClassification: a panic surfaced through safeSimulate is
// addressable as a panicError (the diag layer's classification hook) and
// keeps its legacy message shape.
func TestPanicErrorClassification(t *testing.T) {
	err := error(&panicError{tag: "sar/history", value: "boom", stack: []byte("stack")})
	var pe *panicError
	if !errors.As(err, &pe) {
		t.Fatal("panicError not addressable with errors.As")
	}
	want := "harness: run sar/history panicked: boom\nstack"
	if err.Error() != want {
		t.Errorf("Error() = %q, want %q", err.Error(), want)
	}
}
