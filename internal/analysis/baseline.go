package analysis

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Baseline is the committed set of tolerated findings (sddsvet.baseline at
// the repo root). CI fails only on findings not in it, so the analyzer
// suite can grow stricter without blocking on a full clean-up, while every
// tolerated finding stays visible in the file under review.
//
// Format: one Finding.Key per line ("file: analyzer: message"), '#'
// comments and blank lines ignored. Duplicate lines tolerate that many
// identical findings in the file (a multiset): if the file has two
// baselined hotalloc findings and a third appears, it is new.
type Baseline struct {
	counts map[string]int
}

// LoadBaseline reads a baseline file; a missing file is an empty baseline
// (every finding is new), so a repo without one behaves like pre-baseline
// sddsvet.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{counts: make(map[string]int)}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return b, nil
		}
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		b.counts[line]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// Apply matches findings against the baseline, marking matched ones
// Baselined in place. It returns the new (unmatched) findings and the
// stale baseline entries — lines whose finding no longer occurs, which
// deserve deletion just like stale ignore directives.
func (b *Baseline) Apply(findings []Finding) (newFindings []Finding, stale []string) {
	remaining := make(map[string]int, len(b.counts))
	for k, n := range b.counts {
		remaining[k] = n
	}
	for i := range findings {
		k := findings[i].Key()
		if remaining[k] > 0 {
			remaining[k]--
			findings[i].Baselined = true
		} else {
			newFindings = append(newFindings, findings[i])
		}
	}
	for k, n := range remaining {
		for ; n > 0; n-- {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return newFindings, stale
}

// WriteBaseline writes the canonical baseline for the given findings:
// sorted keys, one per line, with a header comment. Used by
// `sddsvet -write-baseline` to (re)generate sddsvet.baseline.
func WriteBaseline(w io.Writer, findings []Finding) error {
	keys := make([]string, 0, len(findings))
	for _, f := range findings {
		keys = append(keys, f.Key())
	}
	sort.Strings(keys)
	if _, err := fmt.Fprintf(w, "# sddsvet baseline: tolerated findings, one \"file: analyzer: message\" per line.\n# Regenerate with: go run ./cmd/sddsvet -write-baseline sddsvet.baseline ./...\n"); err != nil {
		return err
	}
	for _, k := range keys {
		if _, err := fmt.Fprintln(w, k); err != nil {
			return err
		}
	}
	return nil
}
