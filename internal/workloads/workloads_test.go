package workloads

import (
	"testing"

	"sdds/internal/compiler"
	"sdds/internal/loop"
)

func TestAllSpecsValid(t *testing.T) {
	specs := All()
	if len(specs) != 6 {
		t.Fatalf("have %d applications, want 6", len(specs))
	}
	for _, s := range specs {
		for _, scale := range []float64{0.05, 0.5, 1.0} {
			p := s.Build(scale)
			if err := p.Validate(); err != nil {
				t.Errorf("%s@%.2f: %v", s.Name, scale, err)
			}
			if p.Name != s.Name {
				t.Errorf("program name %q != spec name %q", p.Name, s.Name)
			}
		}
	}
}

func TestNamesOrder(t *testing.T) {
	want := []string{"hf", "sar", "astro", "apsi", "madbench2", "wupwise"}
	got := Names()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want Table III order %v", got, want)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("wupwise")
	if err != nil || s.Name != "wupwise" {
		t.Fatalf("ByName = %+v, %v", s, err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestAllProgramsAffine(t *testing.T) {
	// All six use affine regions, so the polyhedral path applies (§IV-A).
	for _, s := range All() {
		if !s.Build(0.1).IsAffine() {
			t.Errorf("%s is not affine", s.Name)
		}
	}
}

func TestAllProgramsCompile(t *testing.T) {
	for _, s := range All() {
		p := s.Build(0.05)
		res, err := compiler.Compile(p, compiler.DefaultOptions(8))
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if len(res.Accesses) == 0 {
			t.Fatalf("%s: no read accesses", s.Name)
		}
		if _, err := res.Schedule.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
}

func TestTripsScalingAligned(t *testing.T) {
	for _, base := range []int{64, 1000, 25600} {
		for _, scale := range []float64{0.01, 0.3, 1, 2} {
			got := trips(base, scale)
			if got < 64 || got%64 != 0 {
				t.Fatalf("trips(%d, %v) = %d, want ≥64 and 64-aligned", base, scale, got)
			}
		}
	}
}

func TestIntraRunSlacksExist(t *testing.T) {
	// apsi's time steps read what the previous step wrote: there must be
	// reads whose WriterSlot ≥ 0.
	p := APSI(0.05)
	res, err := compiler.Compile(p, compiler.DefaultOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	withWriter := 0
	for _, s := range res.Slacks {
		if s.WriterSlot >= 0 {
			withWriter++
		}
	}
	if withWriter == 0 {
		t.Fatal("apsi has no producer-consumer slacks")
	}
}

func TestFileSizesExceedStorageCache(t *testing.T) {
	// The data sets must not fit in the aggregate storage cache (8 nodes ×
	// 64 MB), or the disks go silent after the first pass.
	const aggregateCache = 8 * 64 << 20
	for _, s := range All() {
		var total int64
		for _, f := range s.Build(1.0).Files {
			total += f.Size
		}
		if total < 2*aggregateCache {
			t.Errorf("%s: total data %d B too small vs aggregate cache %d B", s.Name, total, aggregateCache)
		}
	}
}

func TestIOIsSparseInSlotSpace(t *testing.T) {
	// The scheduler needs room: on average well under one read per process
	// per slot (the dense limit admits no reordering).
	for _, s := range All() {
		p := s.Build(0.1)
		procs := 8
		slots := p.Slots(procs)
		reads := 0
		for _, inst := range p.Instances(procs) {
			if inst.Kind == loop.StmtRead {
				reads++
			}
		}
		density := float64(reads) / float64(slots*procs)
		if density > 0.6 {
			t.Errorf("%s: read density %.2f per proc-slot too high for scheduling", s.Name, density)
		}
	}
}
