package cluster

import (
	"fmt"
	"testing"
	"time"

	"sdds/internal/power"
	"sdds/internal/workloads"
)

func TestPerfProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	start := time.Now()
	avg := map[string][]float64{}
	for _, spec := range workloads.All() {
		prog := spec.Build(1.0)
		var baseE, baseT float64
		for _, sched := range []bool{false, true} {
			line := fmt.Sprintf("%-10s sched=%-5v", spec.Name, sched)
			for _, kind := range power.AllKinds() {
				cfg := DefaultConfig()
				cfg.Scheduling = sched
				cfg.Policy = power.Config{Kind: kind}
				res, err := Run(prog, cfg)
				if err != nil {
					t.Fatalf("%s/%v: %v", spec.Name, kind, err)
				}
				if kind == power.KindDefault && !sched {
					baseE = res.EnergyJ
					baseT = res.ExecTime.Seconds()
				}
				save := 100 * (1 - res.EnergyJ/baseE)
				deg := 100 * (res.ExecTime.Seconds() - baseT) / baseT
				line += fmt.Sprintf("  %s:%6.1f/%5.1f", kind.String()[:4], save, deg)
				key := fmt.Sprintf("%v/%s", sched, kind)
				avg[key] = append(avg[key], save)
			}
			fmt.Println(line)
		}
	}
	for _, sched := range []bool{false, true} {
		line := fmt.Sprintf("AVG sched=%-5v", sched)
		for _, kind := range power.AllKinds() {
			xs := avg[fmt.Sprintf("%v/%s", sched, kind)]
			var s float64
			for _, x := range xs {
				s += x
			}
			line += fmt.Sprintf("  %s:%6.1f", kind.String()[:4], s/float64(len(xs)))
		}
		fmt.Println(line)
	}
	fmt.Println("total wall:", time.Since(start).Round(time.Millisecond))
}
