// Sweep runs the δ and θ sensitivity analyses of §V-D on one application
// and emits CSV, mirroring Fig. 13(d) and Fig. 14(a)/(b) for custom
// parameter ranges. The sweep points are independent cluster runs, so they
// are fanned out over a bounded worker pool; rows are still emitted in
// sweep order, and Ctrl-C cancels the remaining runs.
//
//	go run ./examples/sweep -app sar -scale 0.25 -workers 4
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"

	"sdds/internal/cluster"
	"sdds/internal/power"
	"sdds/internal/workloads"
)

type point struct {
	param        string
	value        int
	delta, theta int
}

func main() {
	app := flag.String("app", "sar", "application to sweep")
	scale := flag.Float64("scale", 0.25, "workload scale")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent cluster runs")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	spec, err := workloads.ByName(*app)
	if err != nil {
		log.Fatal(err)
	}

	run := func(scheduling bool, delta, theta int) (*cluster.Result, error) {
		cfg := cluster.DefaultConfig()
		cfg.Policy = power.Config{Kind: power.KindHistory}
		cfg.Scheduling = scheduling
		cfg.Compiler.Delta = delta
		cfg.Compiler.Theta = theta
		return cluster.RunContext(ctx, spec.Build(*scale), cfg)
	}

	base, err := run(false, 20, 4)
	if err != nil {
		log.Fatal(err)
	}

	var points []point
	for _, d := range []int{5, 10, 20, 40, 80} {
		points = append(points, point{"delta", d, d, 4})
	}
	for _, th := range []int{2, 4, 6, 8} {
		points = append(points, point{"theta", th, 20, th})
	}

	// Fan the sweep points out over the worker pool; results land in their
	// slot so the CSV stays in sweep order regardless of completion order.
	results := make([]*cluster.Result, len(points))
	errs := make([]error, len(points))
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(1, *workers))
	for i, p := range points {
		wg.Add(1)
		go func(i int, p point) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = run(true, p.delta, p.theta)
		}(i, p)
	}
	wg.Wait()

	w := os.Stdout
	fmt.Fprintf(w, "# %s at scale %.2f: history-based policy, scheme on, vs scheme off\n", *app, *scale)
	fmt.Fprintln(w, "param,value,energy_joule,exec_seconds,energy_saving_pct,degradation_pct")
	for i, p := range points {
		if errs[i] != nil {
			log.Fatal(errs[i])
		}
		r := results[i]
		fmt.Fprintf(w, "%s,%d,%.1f,%.2f,%.2f,%.2f\n",
			p.param, p.value, r.EnergyJ, r.ExecTime.Seconds(),
			100*(1-r.EnergyJ/base.EnergyJ),
			100*(r.ExecTime.Seconds()-base.ExecTime.Seconds())/base.ExecTime.Seconds())
	}
}
