// Package fault is the simulator's deterministic fault injector: a seeded
// source of transient disk errors, bad-sector remaps, spin-up failures and
// delays, dropped or duplicated network transfers, and I/O-node stalls.
//
// Determinism is the whole design. Every fault site draws from its own
// splitmix64 stream, seeded from (config seed, run seed, site), and the
// streams advance only in simulation-event order on the engine goroutine —
// never from math/rand's global source and never from wall-clock state — so
// a run with a fixed seed and a fixed fault config reproduces the exact
// same fault pattern regardless of host, wall time, or harness worker
// count. A zero-rate injector takes every hook path but never fires,
// keeping the golden results bit-identical.
//
// The package depends only on the standard library (and only on strconv/
// strings/fmt/math at that), so the event core can carry an injector the
// same way it carries a probe without an import cycle. Durations are plain
// int64 microseconds — the engine's native unit — for the same reason.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Site identifies one fault injection point in the simulated stack.
type Site uint8

// Fault sites. Each has its own rate, its own deterministic stream, and its
// own injected-fault counter.
const (
	// SiteDiskRead is a transient media error on a completing disk read.
	SiteDiskRead Site = iota
	// SiteDiskWrite is a transient media error on a completing disk write.
	SiteDiskWrite
	// SiteBadSector is a bad-sector remap: the request succeeds but pays
	// RemapLatency of extra service time.
	SiteBadSector
	// SiteSpinUpFail is a spin-up attempt that aborts and must be re-issued.
	SiteSpinUpFail
	// SiteSpinUpDelay is a spin-up that succeeds but takes SpinUpDelay
	// longer than nominal.
	SiteSpinUpDelay
	// SiteNetDrop is a dropped network transfer, retransmitted after
	// exponential backoff.
	SiteNetDrop
	// SiteNetDup is a duplicated network transfer: the copy burns link
	// bandwidth but the payload is delivered once.
	SiteNetDup
	// SiteNodeStall is a transient I/O-node stall: the node accepts the
	// request only after NodeStallTime.
	SiteNodeStall

	numSites
)

// siteNames double as the canonical spec keys parsed by ParseSpec.
var siteNames = [numSites]string{
	SiteDiskRead:    "read",
	SiteDiskWrite:   "write",
	SiteBadSector:   "badsector",
	SiteSpinUpFail:  "spinup-fail",
	SiteSpinUpDelay: "spinup-delay",
	SiteNetDrop:     "net-drop",
	SiteNetDup:      "net-dup",
	SiteNodeStall:   "stall",
}

// String returns the site's canonical spec key.
func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return "invalid"
}

// NumSites reports the number of defined fault sites.
func NumSites() int { return int(numSites) }

// Config describes a fault model: per-site rates plus the latency knobs the
// degradation paths use. The zero value (all rates zero) is valid and
// injects nothing while still exercising every hook.
type Config struct {
	// Rates holds the per-site fault probability in [0, 1], indexed by
	// Site. A rate applies per decision point: per completing disk request
	// (read/write/bad sector), per spin-up attempt, per network transfer,
	// per I/O-node request.
	Rates [numSites]float64

	// RetryLatencyUS is the base backoff (µs) of the bounded retries in
	// ionode and mpiio; attempt k waits RetryLatencyUS << (k-1).
	RetryLatencyUS int64
	// RemapLatencyUS is the extra service time (µs) of a bad-sector remap.
	RemapLatencyUS int64
	// SpinUpDelayUS is the extra spin-up time (µs) of a delayed spin-up.
	SpinUpDelayUS int64
	// NetRetryDelayUS is the base retransmission backoff (µs) after a
	// dropped transfer; retry k waits NetRetryDelayUS << (k-1).
	NetRetryDelayUS int64
	// NodeStallUS is the length (µs) of an I/O-node stall.
	NodeStallUS int64
	// MaxRetries bounds every retry loop (disk resubmission, chunk retry,
	// retransmission, spin-up re-issue).
	MaxRetries int
	// Seed is mixed with the run seed so one cluster seed can be swept
	// across fault patterns (and vice versa).
	Seed int64
}

// DefaultConfig returns a config with all rates zero and the latency knobs
// at their documented defaults: 2 ms retry base, 8 ms remap, 500 ms spin-up
// delay, 1 ms retransmission base, 5 ms stall, 3 retries.
func DefaultConfig() Config {
	return Config{
		RetryLatencyUS:  2_000,
		RemapLatencyUS:  8_000,
		SpinUpDelayUS:   500_000,
		NetRetryDelayUS: 1_000,
		NodeStallUS:     5_000,
		MaxRetries:      3,
	}
}

// Validate reports the first configuration problem, or nil.
func (c *Config) Validate() error {
	for s, r := range c.Rates {
		if r < 0 || r > 1 || math.IsNaN(r) {
			return fmt.Errorf("fault: %s rate %v must be in [0, 1]", Site(s), r)
		}
	}
	for _, l := range []struct {
		name string
		v    int64
	}{
		{"retry latency", c.RetryLatencyUS},
		{"remap latency", c.RemapLatencyUS},
		{"spin-up delay", c.SpinUpDelayUS},
		{"net retry delay", c.NetRetryDelayUS},
		{"node stall", c.NodeStallUS},
	} {
		if l.v < 0 {
			return fmt.Errorf("fault: negative %s %d", l.name, l.v)
		}
	}
	if c.MaxRetries < 1 {
		return fmt.Errorf("fault: max retries %d must be >= 1", c.MaxRetries)
	}
	return nil
}

// Canon renders the config in a canonical single-line form: sorted keys,
// shortest float representation, defaults omitted only when the whole
// config is nil. Equal configs render equally, which is what lets the
// harness use the string as a cache-key component. A nil receiver renders
// as "" (no fault injection).
func (c *Config) Canon() string {
	if c == nil {
		return ""
	}
	parts := make([]string, 0, int(numSites)+7)
	for s := Site(0); s < numSites; s++ {
		if r := c.Rates[s]; r != 0 {
			parts = append(parts, s.String()+"="+strconv.FormatFloat(r, 'g', -1, 64))
		}
	}
	parts = append(parts,
		"retry-lat="+strconv.FormatInt(c.RetryLatencyUS, 10),
		"remap-lat="+strconv.FormatInt(c.RemapLatencyUS, 10),
		"spinup-lat="+strconv.FormatInt(c.SpinUpDelayUS, 10),
		"net-lat="+strconv.FormatInt(c.NetRetryDelayUS, 10),
		"stall-lat="+strconv.FormatInt(c.NodeStallUS, 10),
		"retries="+strconv.Itoa(c.MaxRetries),
		"seed="+strconv.FormatInt(c.Seed, 10),
	)
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// specLatencies maps the optional latency/retry spec keys onto config
// fields (values in µs except retries and seed).
func (c *Config) setKnob(key string, val string) (bool, error) {
	var dst *int64
	switch key {
	case "retry-lat":
		dst = &c.RetryLatencyUS
	case "remap-lat":
		dst = &c.RemapLatencyUS
	case "spinup-lat":
		dst = &c.SpinUpDelayUS
	case "net-lat":
		dst = &c.NetRetryDelayUS
	case "stall-lat":
		dst = &c.NodeStallUS
	case "seed":
		dst = &c.Seed
	case "retries":
		n, err := strconv.Atoi(val)
		if err != nil {
			return true, fmt.Errorf("fault: retries %q: %v", val, err)
		}
		c.MaxRetries = n
		return true, nil
	default:
		return false, nil
	}
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return true, fmt.Errorf("fault: %s %q: %v", key, val, err)
	}
	*dst = n
	return true, nil
}

// ParseSpec parses a comma-separated fault spec into a config over the
// defaults, e.g. "read=0.001,net-drop=0.01,stall=0.005,seed=7". Rate keys
// are the Site names (read, write, badsector, spinup-fail, spinup-delay,
// net-drop, net-dup, stall); knob keys are retry-lat, remap-lat,
// spinup-lat, net-lat, stall-lat (all µs), retries, and seed. An empty
// spec returns nil (no injection).
func ParseSpec(spec string) (*Config, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	cfg := DefaultConfig()
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("fault: spec field %q is not key=value", field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if handled, err := cfg.setKnob(key, val); handled {
			if err != nil {
				return nil, err
			}
			continue
		}
		site := numSites
		for s := Site(0); s < numSites; s++ {
			if s.String() == key {
				site = s
				break
			}
		}
		if site == numSites {
			return nil, fmt.Errorf("fault: unknown spec key %q (sites: %s)", key, strings.Join(siteNames[:], ", "))
		}
		rate, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: %s rate %q: %v", key, val, err)
		}
		cfg.Rates[site] = rate
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// Stats is the injector's per-site fired-fault counters.
type Stats struct {
	Injected [numSites]int64
}

// Count returns the number of injected faults at a site.
func (st Stats) Count(s Site) int64 {
	if int(s) >= len(st.Injected) {
		return 0
	}
	return st.Injected[s]
}

// Total sums the injected faults over all sites.
func (st Stats) Total() int64 {
	var t int64
	for _, n := range st.Injected {
		t += n
	}
	return t
}

// Injector is the per-run fault source. Construct one per cluster run with
// NewInjector; all methods are nil-safe, so models cache the pointer
// unconditionally (exactly like the probe) and a nil injector costs one
// branch per decision point. Not safe for concurrent use — decisions are
// drawn on the engine goroutine in event order, which is what makes the
// fault pattern reproducible.
type Injector struct {
	cfg Config
	// threshold[s] is Rates[s] scaled to the uint64 range so Hit is a
	// single hash and compare, no float math on the hot path.
	threshold [numSites]uint64
	state     [numSites]uint64
	stats     Stats
}

// NewInjector builds an injector for one run. cfg nil returns nil (faults
// disabled); a non-nil cfg with all-zero rates returns a live injector
// whose Hit never fires — the configuration the golden suite uses to prove
// the hooks are free. runSeed is the cluster run's seed.
func NewInjector(cfg *Config, runSeed int64) *Injector {
	if cfg == nil {
		return nil
	}
	in := &Injector{cfg: *cfg}
	for s := Site(0); s < numSites; s++ {
		switch r := cfg.Rates[s]; {
		case r >= 1:
			in.threshold[s] = math.MaxUint64
		case r > 0:
			in.threshold[s] = uint64(r * float64(1<<63) * 2)
		}
		// Distinct, deterministic stream per site: finalize the mixed seed
		// once so adjacent sites land far apart in the sequence.
		in.state[s] = mix64(uint64(cfg.Seed) ^ uint64(runSeed)*0x9E3779B97F4A7C15 ^ (uint64(s)+1)<<56)
	}
	return in
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Hit draws the site's next decision: true injects a fault. Nil-safe and
// allocation-free; a zero-rate site returns false without advancing its
// stream, so disabled sites cost two predictable branches.
//
//sddsvet:hotpath
func (in *Injector) Hit(s Site) bool {
	if in == nil {
		return false
	}
	th := in.threshold[s]
	if th == 0 {
		return false
	}
	in.state[s] += 0x9E3779B97F4A7C15
	if mix64(in.state[s]) >= th {
		return false
	}
	in.stats.Injected[s]++
	return true
}

// Enabled reports whether an injector is attached (even one with all-zero
// rates).
func (in *Injector) Enabled() bool { return in != nil }

// Stats returns a copy of the per-site injected-fault counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

// Config returns the injector's fault model (zero value when nil).
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// MaxRetries returns the retry bound (0 when nil, so loops degrade to
// no-retry).
func (in *Injector) MaxRetries() int {
	if in == nil {
		return 0
	}
	return in.cfg.MaxRetries
}

// RetryLatencyUS returns the disk/middleware retry backoff base in µs.
func (in *Injector) RetryLatencyUS() int64 {
	if in == nil {
		return 0
	}
	return in.cfg.RetryLatencyUS
}

// RemapLatencyUS returns the bad-sector remap penalty in µs.
func (in *Injector) RemapLatencyUS() int64 {
	if in == nil {
		return 0
	}
	return in.cfg.RemapLatencyUS
}

// SpinUpDelayUS returns the delayed-spin-up penalty in µs.
func (in *Injector) SpinUpDelayUS() int64 {
	if in == nil {
		return 0
	}
	return in.cfg.SpinUpDelayUS
}

// NetRetryDelayUS returns the retransmission backoff base in µs.
func (in *Injector) NetRetryDelayUS() int64 {
	if in == nil {
		return 0
	}
	return in.cfg.NetRetryDelayUS
}

// NodeStallUS returns the I/O-node stall length in µs.
func (in *Injector) NodeStallUS() int64 {
	if in == nil {
		return 0
	}
	return in.cfg.NodeStallUS
}
