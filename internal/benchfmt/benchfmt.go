// Package benchfmt parses `go test -bench` output lines and renders
// benchmark result sets as deterministic JSON. It is the shared format
// layer of cmd/benchjson (which records BENCH_sim.json) and
// cmd/benchcheck (which compares a fresh run against it), so the two
// tools cannot drift on what a benchmark line or the committed baseline
// means.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Results maps benchmark name to its measured values by unit ("ns/op",
// "allocs/op", "iterations", custom b.ReportMetric units).
type Results map[string]map[string]float64

// ParseLine extracts one benchmark result. The format is the fixed
// testing package shape: name, iteration count, then (value, unit) pairs.
// The -GOMAXPROCS suffix is dropped so names are stable across machines.
func ParseLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	iters, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return "", nil, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	vals := map[string]float64{"iterations": iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		vals[fields[i+1]] = v
	}
	return name, vals, true
}

// Parse reads a full `go test -bench` stream, collecting every benchmark
// line and ignoring everything else (PASS/ok trailers, test logs), so the
// unfiltered stream can be piped in.
func Parse(r io.Reader) (Results, error) {
	results := make(Results)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, vals, ok := ParseLine(sc.Text())
		if !ok {
			continue
		}
		results[name] = vals
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// MarshalSorted renders the results with deterministic key order so the
// committed BENCH_sim.json diffs cleanly between runs.
func MarshalSorted(results Results) ([]byte, error) {
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, n := range names {
		keys := make([]string, 0, len(results[n]))
		for k := range results[n] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		nameJSON, err := json.Marshal(n)
		if err != nil {
			return nil, err
		}
		b.WriteString("  ")
		b.Write(nameJSON)
		b.WriteString(": {")
		for j, k := range keys {
			kJSON, err := json.Marshal(k)
			if err != nil {
				return nil, err
			}
			if j > 0 {
				b.WriteString(", ")
			}
			b.Write(kJSON)
			fmt.Fprintf(&b, ": %g", results[n][k])
		}
		if i+1 < len(names) {
			b.WriteString("},\n")
		} else {
			b.WriteString("}\n")
		}
	}
	b.WriteString("}\n")
	return []byte(b.String()), nil
}

// UnmarshalBaseline parses a committed BENCH_sim.json.
func UnmarshalBaseline(data []byte) (Results, error) {
	var r Results
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return r, nil
}
