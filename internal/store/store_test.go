package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type payload struct {
	N int    `json:"n"`
	S string `json:"s"`
}

// TestStorePutGetRoundTrip pins the basic contract: Put then Get returns
// the same value, and Len/Keys/Appends account for it.
func TestStorePutGetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	s, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("b", payload{N: 2, S: "two"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", payload{N: 1, S: "one"}); err != nil {
		t.Fatal(err)
	}
	var p payload
	ok, err := s.Get("b", &p)
	if err != nil || !ok || p.N != 2 || p.S != "two" {
		t.Fatalf("Get(b) = %+v, %v, %v", p, ok, err)
	}
	if ok, _ := s.Get("absent", nil); ok {
		t.Fatal("absent key reported present")
	}
	if s.Len() != 2 || s.Appends() != 2 {
		t.Fatalf("Len=%d Appends=%d, want 2/2", s.Len(), s.Appends())
	}
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys() = %v, want sorted [a b]", keys)
	}
	tail := s.Tail(1)
	if len(tail) != 1 || tail[0] != "a" {
		t.Fatalf("Tail(1) = %v, want [a] (append order)", tail)
	}
}

// TestStoreDedupAndConflict pins the content-addressing rules: identical
// re-puts are silent no-ops, conflicting values are errors.
func TestStoreDedupAndConflict(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	s, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("k", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", payload{N: 1}); err != nil {
		t.Fatalf("identical re-put errored: %v", err)
	}
	if s.Appends() != 1 {
		t.Fatalf("identical re-put appended (Appends=%d)", s.Appends())
	}
	if err := s.Put("k", payload{N: 2}); err == nil {
		t.Fatal("conflicting put accepted")
	}
}

// TestStoreSurvivesRestart asserts a reopened store serves everything the
// previous process stored.
func TestStoreSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	s, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	s2, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 10 {
		t.Fatalf("reopened Len=%d, want 10", s2.Len())
	}
	var p payload
	if ok, err := s2.Get("k7", &p); err != nil || !ok || p.N != 7 {
		t.Fatalf("Get(k7) after reopen = %+v, %v, %v", p, ok, err)
	}
	// And appends continue.
	if err := s2.Put("k10", payload{N: 10}); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 11 {
		t.Fatalf("after append+reopen Len=%d, want 11", s3.Len())
	}
}

// TestStoreTruncatesTornTail asserts a crash mid-append (simulated by
// chopping bytes off the end) loses only the torn line.
func TestStoreTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	s, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf[:len(buf)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 4 || rep.TornBytes == 0 {
		t.Fatalf("Verify = %+v, want 4 intact entries and a torn tail", rep)
	}
	s2, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 4 {
		t.Fatalf("reopened torn store Len=%d, want 4", s2.Len())
	}
	// The torn line is gone from disk: re-putting the lost key works and
	// the file verifies clean afterwards.
	if err := s2.Put("k4", payload{N: 4}); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	rep2, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Entries != 5 || rep2.TornBytes != 0 || rep2.DupKeys != 0 {
		t.Fatalf("post-repair Verify = %+v", rep2)
	}
}

// TestStoreRejectsDirectory pins the clear error for a directory path.
func TestStoreRejectsDirectory(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, false); err == nil {
		t.Fatal("Open accepted a directory")
	} else if want := "is a directory"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
	if _, err := Verify(dir); err == nil {
		t.Fatal("Verify accepted a directory")
	}
}

// TestStoreVerifyMissingFile pins Verify on an absent store: no error,
// Exists=false.
func TestStoreVerifyMissingFile(t *testing.T) {
	rep, err := Verify(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exists || rep.Entries != 0 {
		t.Fatalf("Verify(absent) = %+v", rep)
	}
}

// TestStoreEachOrder asserts Each visits entries in append order with the
// raw stored bytes.
func TestStoreEachOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	s, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, k := range []string{"z", "m", "a"} {
		if err := s.Put(k, payload{S: k}); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err = s.Each(func(key string, raw json.RawMessage) error {
		var p payload
		if err := json.Unmarshal(raw, &p); err != nil {
			return err
		}
		if p.S != key {
			return fmt.Errorf("key %s holds %+v", key, p)
		}
		got = append(got, key)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "z" || got[1] != "m" || got[2] != "a" {
		t.Fatalf("Each order = %v, want [z m a]", got)
	}
}

// TestStoreConcurrentPuts exercises the mutex under -race: concurrent
// writers on distinct and identical keys.
func TestStoreConcurrentPuts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	s, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("k%d", i) // all goroutines contend per key
				if err := s.Put(key, payload{N: i}); err != nil {
					t.Error(err)
					return
				}
				if ok, err := s.Get(key, nil); err != nil || !ok {
					t.Errorf("Get(%s) = %v, %v", key, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 20 {
		t.Fatalf("Len=%d, want 20", s.Len())
	}
	if s.Appends() != 20 {
		t.Fatalf("Appends=%d, want 20 (dedup must not re-append)", s.Appends())
	}
}
