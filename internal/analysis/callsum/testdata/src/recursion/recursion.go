// Package recursion exercises the summary engine's SCC handling: mutual
// recursion (a multi-node cycle needing fixpoint iteration), self
// recursion, and an effect-free function that must stay clean through the
// same pass.
package recursion

import "time"

// pingPong and pong form one SCC. The wall-clock effect enters through
// base at the recursion floor and must propagate to every member.
func pingPong(n int) int64 {
	if n <= 0 {
		return base()
	}
	return pong(n - 1)
}

func pong(n int) int64 { return pingPong(n - 1) }

func base() int64 { return time.Now().UnixNano() }

// grow is self-recursive with an allocation at the floor.
func grow(n int) []int {
	if n <= 1 {
		return make([]int, 1)
	}
	return grow(n - 1)
}

// pure is effect-free and mutually recursive with pureTwin: the fixpoint
// must converge without inventing effects.
func pure(n int) int {
	if n <= 0 {
		return 0
	}
	return pureTwin(n - 1)
}

func pureTwin(n int) int { return pure(n) }
