// Package eventretainbad is the eventretain analyzer fixture. Events arrive
// as parameters (the analyzer cannot prove they are retained handles), and
// the allowed paths show every shape of provably-retained storage.
package eventretainbad

import "sdds/internal/sim"

var globalEv *sim.Event

type holder struct {
	timer *sim.Event
	evs   []*sim.Event
	byID  map[int]*sim.Event
}

func retainParam(h *holder, ev *sim.Event) {
	h.timer = ev              // want `storing a possibly-recycled \*sim\.Event in a struct field`
	globalEv = ev             // want `storing a possibly-recycled \*sim\.Event in a package-level variable`
	h.byID[0] = ev            // want `storing a possibly-recycled \*sim\.Event in a container element`
	h.evs = append(h.evs, ev) // want `appending a possibly-recycled \*sim\.Event to a slice`
}

func retainedHandles(h *holder, eng *sim.Engine) {
	// Direct handle-returning calls and locals fed only by them are safe.
	h.timer = eng.Schedule(1, "t", func(now sim.Time) {})
	ev := eng.Schedule(2, "t", func(now sim.Time) {})
	h.timer = ev
	ev2, err := eng.ScheduleAt(3, "t", func(now sim.Time) {})
	_ = err
	h.timer = ev2
	h.evs = append(h.evs, ev2)
	h.timer = nil // clearing a field: allowed
}

func localCopy(ev *sim.Event) {
	// Plain locals die with the handler; copying is not retention.
	tmp := ev
	tmp2 := tmp
	_ = tmp2
}

func taintedLocal(h *holder, eng *sim.Engine, ev *sim.Event) {
	t := eng.Schedule(1, "t", func(now sim.Time) {})
	t = ev      // reassignment from a parameter taints the local
	h.timer = t // want `storing a possibly-recycled \*sim\.Event in a struct field`
}

func ignoredRetention(h *holder, ev *sim.Event) {
	//sddsvet:ignore eventretain -- fixture: holder provably outlives the event here
	h.timer = ev
}
