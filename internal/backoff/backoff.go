// Package backoff implements jittered, capped exponential backoff: the
// one retry-delay policy shared by sddsworker reconnects, shard-completion
// retries, and the coordinator's poisoned-shard requeue gates. Delays grow
// geometrically from Base, saturate at Cap, and are spread by a jitter
// fraction so a fleet of workers losing the same coordinator does not
// reconnect in lockstep (the thundering-herd failure mode).
//
// The randomness source is injectable and defaults to a per-Policy seeded
// PRNG, so tests can pin exact delay sequences; the jitter bounds
// themselves ([1-Jitter, 1] × the pre-jitter delay) hold for any source.
package backoff

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"time"
)

// Policy describes one backoff schedule. The zero value is not useful;
// construct with New (or fill the fields and call WithSource).
type Policy struct {
	// Base is the attempt-0 delay.
	Base time.Duration
	// Cap saturates the pre-jitter delay; it is the worst-case sleep.
	Cap time.Duration
	// Factor is the per-attempt growth multiplier (default 2).
	Factor float64
	// Jitter is the randomized fraction of each delay, in [0, 1]: the
	// delay is drawn uniformly from [(1-Jitter)·d, d] where d is the
	// capped exponential value. 0 means fully deterministic delays.
	Jitter float64

	mu  *sync.Mutex
	rnd func() float64 // uniform [0,1); guarded by mu
}

// New returns a policy growing from base to cap with factor 2 and 0.5
// jitter, seeded from the base/cap pair (deterministic construction; use
// WithSource to pin a seed explicitly).
func New(base, cap time.Duration) Policy {
	p := Policy{Base: base, Cap: cap, Factor: 2, Jitter: 0.5}
	return p.WithSource(int64(base) ^ int64(cap)<<1 ^ 0x7f4a7c15)
}

// WithSource returns a copy of the policy drawing jitter from a PRNG
// seeded with seed. Tests use it to make delay sequences reproducible.
func (p Policy) WithSource(seed int64) Policy {
	rnd := rand.New(rand.NewSource(seed)) // retry-delay jitter; never feeds simulated state
	p.mu = &sync.Mutex{}
	p.rnd = rnd.Float64
	return p
}

// Delay returns the sleep before retry number attempt (attempt 0 is the
// first retry). The pre-jitter value is min(Cap, Base·Factor^attempt);
// the returned value is uniform in [(1-Jitter)·d, d] and never below
// zero. Safe for concurrent use.
func (p Policy) Delay(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	factor := p.Factor
	if factor <= 1 {
		factor = 2
	}
	d := float64(p.Base) * math.Pow(factor, float64(attempt))
	if cap := float64(p.Cap); p.Cap > 0 && (d > cap || math.IsInf(d, 1)) {
		d = cap
	}
	if d <= 0 {
		return 0
	}
	j := p.Jitter
	if j < 0 {
		j = 0
	}
	if j > 1 {
		j = 1
	}
	if j > 0 && p.rnd != nil {
		p.mu.Lock()
		u := p.rnd()
		p.mu.Unlock()
		d *= 1 - j*u
	}
	return time.Duration(d)
}

// Sleep blocks for Delay(attempt) or until ctx is done, returning
// ctx.Err() in the latter case. A zero delay returns immediately.
func (p Policy) Sleep(ctx context.Context, attempt int) error {
	d := p.Delay(attempt)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
