package metrics

import (
	"fmt"
	"strings"

	"sdds/internal/sim"
)

// NormalizedEnergy returns energy/baseline — the y axis of Figs. 12(c)/(d).
// A baseline of zero yields 0.
func NormalizedEnergy(energyJ, baselineJ float64) float64 {
	if baselineJ <= 0 {
		return 0
	}
	return energyJ / baselineJ
}

// EnergySaving returns 1 − energy/baseline (the "savings" the paper quotes
// in §V-B/§V-C).
func EnergySaving(energyJ, baselineJ float64) float64 {
	if baselineJ <= 0 {
		return 0
	}
	return 1 - energyJ/baselineJ
}

// Degradation returns (t − baseline)/baseline — the performance-degradation
// y axis of Fig. 13(a)/(b). Negative values mean the run got faster.
func Degradation(t, baseline sim.Duration) float64 {
	if baseline <= 0 {
		return 0
	}
	return float64(t-baseline) / float64(baseline)
}

// Improvement returns (baseline − t)/baseline (Fig. 14(b)'s y axis).
func Improvement(t, baseline sim.Duration) float64 { return -Degradation(t, baseline) }

// Mean returns the arithmetic mean of xs, or 0 when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Pct renders a fraction as a percentage with one decimal, e.g. "12.7%".
func Pct(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }

// Table renders rows as an aligned plain-text table with a header rule, the
// format cmd/sddstables prints.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
