// Package stripe implements the parallel-file-system data layout the paper
// assumes (§II, Fig. 1): files are divided into fixed-size stripe units and
// distributed round-robin across I/O nodes. It also provides the I/O-node
// Signature bitset of §IV-B together with the similarity / difference /
// distance metrics the scheduling algorithms optimize.
package stripe

import (
	"fmt"
	"math/bits"
	"strings"
)

// Signature marks the set of I/O nodes touched by a data access: bit i is 1
// iff I/O node i is used (the η vector of §IV-B).
type Signature struct {
	n     int
	words []uint64
}

// NewSignature returns an empty signature over n I/O nodes.
func NewSignature(n int) Signature {
	if n < 0 {
		n = 0
	}
	return Signature{n: n, words: make([]uint64, (n+63)/64)}
}

// SignatureOf returns a signature over n nodes with the given bits set.
func SignatureOf(n int, nodes ...int) Signature {
	s := NewSignature(n)
	for _, i := range nodes {
		s.Set(i)
	}
	return s
}

// Len returns the number of I/O nodes the signature covers.
func (s Signature) Len() int { return s.n }

// Set marks node i as used. Out-of-range indices are ignored.
func (s Signature) Set(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i/64] |= 1 << (uint(i) % 64)
}

// Get reports whether node i is used.
func (s Signature) Get(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Clone returns an independent copy.
func (s Signature) Clone() Signature {
	c := Signature{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// OrInPlace merges o into s (the group-active-signature update G ← G | g).
// Signatures must cover the same node count.
func (s Signature) OrInPlace(o Signature) {
	for i := range s.words {
		if i < len(o.words) {
			s.words[i] |= o.words[i]
		}
	}
}

// Or returns the union of two signatures.
func (s Signature) Or(o Signature) Signature {
	c := s.Clone()
	c.OrInPlace(o)
	return c
}

// Count returns the number of used nodes.
func (s Signature) Count() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Empty reports whether no node is used.
func (s Signature) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports exact equality (same node count and same bits).
func (s Signature) Equal(o Signature) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Nodes returns the indices of the used nodes in ascending order.
func (s Signature) Nodes() []int {
	out := make([]int, 0, s.Count())
	for i := 0; i < s.n; i++ {
		if s.Get(i) {
			out = append(out, i)
		}
	}
	return out
}

// Similarity returns the number of positions where both signatures have a 1
// — the count of active I/O nodes that will be reused (§IV-B).
func (s Signature) Similarity(o Signature) int {
	total := 0
	for i := range s.words {
		var w uint64
		if i < len(o.words) {
			w = o.words[i]
		}
		total += bits.OnesCount64(s.words[i] & w)
	}
	return total
}

// Difference returns the number of positions where the signatures differ —
// the count of additional I/O nodes that would have to be turned on (§IV-B).
func (s Signature) Difference(o Signature) int {
	total := 0
	for i := range s.words {
		var w uint64
		if i < len(o.words) {
			w = o.words[i]
		}
		total += bits.OnesCount64(s.words[i] ^ w)
	}
	return total
}

// Distance implements the paper's metric:
//
//	distance(g1, g2) = n − similarity(g1, g2) + difference(g1, g2)
//
// which simultaneously rewards reuse of already-active nodes and penalizes
// activating additional ones.
func (s Signature) Distance(o Signature) int {
	return s.n - s.Similarity(o) + s.Difference(o)
}

// InverseDistance returns 1/distance, with the paper's special case that a
// zero distance yields 2.
func (s Signature) InverseDistance(o Signature) float64 {
	d := s.Distance(o)
	if d == 0 {
		return 2
	}
	return 1 / float64(d)
}

// String renders the bit vector as in Fig. 9, e.g. "0010000000100000".
func (s Signature) String() string {
	var b strings.Builder
	b.Grow(s.n)
	for i := 0; i < s.n; i++ {
		if s.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// ParseSignature parses a string of 0s and 1s (the Fig. 9 format).
func ParseSignature(bitstr string) (Signature, error) {
	s := NewSignature(len(bitstr))
	for i, c := range bitstr {
		switch c {
		case '1':
			s.Set(i)
		case '0':
		default:
			return Signature{}, fmt.Errorf("stripe: invalid signature char %q at %d", c, i)
		}
	}
	return s, nil
}
