// Package analysis is a small, dependency-free analogue of
// golang.org/x/tools/go/analysis: it loads packages from source with full
// type information and runs analyzer passes over them. It exists because the
// simulator's two load-bearing contracts — bit-identical virtual results
// from a fixed seed, and an allocation-free event hot path — are enforced at
// runtime only by slow tests (the 24-config golden test, the -benchmem
// allocation assertions). The analyzers in the subdirectories check the
// whole *class* of regressions at compile time, before the 90-minute race
// tier ever runs.
//
// Two source-comment conventions drive the suite (see DESIGN.md §9):
//
//	//sddsvet:hotpath
//	    on a function declaration marks it as part of the steady-state
//	    event path; the hotalloc analyzer reports per-call allocations
//	    (capturing closures, new, make, composite literals) inside it.
//
//	//sddsvet:ignore <analyzer>[,<analyzer>...] -- <reason>
//	    suppresses diagnostics of the named analyzers on the comment's
//	    line and the line below it. The reason is mandatory by
//	    convention and should say why the flagged pattern is safe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check. Run is invoked once per loaded package and
// reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //sddsvet:ignore comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's parsed syntax (non-test files).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// PkgPath is the package's import path ("sdds/internal/disk").
	PkgPath string
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// Mod is the whole loaded module: the summary-driven analyzers reach
	// through it (via callsum.Of) to see effects across package
	// boundaries.
	Mod *Module

	report func(Diagnostic)
}

// ChainStep is one frame of an interprocedural call chain attached to a
// diagnostic: the function, where in it the effect enters (a call site, or
// the intrinsic operation itself at the leaf), and a note ("allocates",
// "time.Now") on the leaf.
type ChainStep struct {
	// Func is the displayed function name ("disk.(*Disk).transfer" or
	// "fmt.Sprintf").
	Func string
	// Pos locates the call site (or the leaf operation); NoPos for
	// external leaves whose source isn't loaded.
	Pos token.Pos
	// Note annotates the leaf step with the intrinsic effect.
	Note string
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
	// Chain, when non-empty, is the call chain from the reported site down
	// to the intrinsic effect (summary-driven analyzers only).
	Chain []ChainStep
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// ReportChain records a finding at pos carrying an interprocedural call
// chain.
func (p *Pass) ReportChain(pos token.Pos, chain []ChainStep, format string, args ...any) {
	p.report(Diagnostic{
		Pos: pos, Analyzer: p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...), Chain: chain,
	})
}

// ---------------------------------------------------------------------------
// Shared type/AST helpers used by several analyzers.

// CalleeFunc resolves the *types.Func a call expression invokes, or nil for
// builtins, conversions, and calls of function-typed values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsMethodOn reports whether fn is a method with the named receiver type
// (possibly behind a pointer) declared in the package with import path
// pkgPath.
func IsMethodOn(fn *types.Func, pkgPath, typeName string) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsNamedType reports whether t (possibly behind a pointer) is the named
// type pkgPath.typeName.
func IsNamedType(t types.Type, pkgPath, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsPointerTo reports whether t is *pkgPath.typeName exactly (not the bare
// named type).
func IsPointerTo(t types.Type, pkgPath, typeName string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return IsNamedType(ptr.Elem(), pkgPath, typeName)
}

// ObjOf returns the object an identifier denotes (use or definition).
func ObjOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// RootIdent walks to the base identifier of an lvalue expression:
// x, x.f.g, x[i], *x all root at x. It returns nil for rootless
// expressions (calls, literals).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// DeclaredOutside reports whether the object behind id is a variable
// declared outside the [lo, hi] position interval (a closure capture, or a
// loop-external accumulator). Package-level variables are reported too —
// callers that only care about closure captures should additionally check
// the object's parent scope.
func DeclaredOutside(info *types.Info, id *ast.Ident, lo, hi token.Pos) bool {
	obj := ObjOf(info, id)
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pos() < lo || v.Pos() > hi
}

// Captures reports whether the function literal references at least one
// variable declared outside it (excluding package-level variables, which do
// not force a closure allocation on their own).
func Captures(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level: not a capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = true
			return false
		}
		return true
	})
	return found
}

// HotpathDirective is the doc-comment marker for hot-path functions.
const HotpathDirective = "//sddsvet:hotpath"

// IsHotpath reports whether the function declaration carries the
// //sddsvet:hotpath directive in its doc comment.
func IsHotpath(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if c.Text == HotpathDirective || len(c.Text) > len(HotpathDirective) &&
			c.Text[:len(HotpathDirective)+1] == HotpathDirective+" " {
			return true
		}
	}
	return false
}
