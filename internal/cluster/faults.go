package cluster

import (
	"sdds/internal/fault"
	"sdds/internal/ionode"
	"sdds/internal/netsim"
	"sdds/internal/probe"
)

// FaultStats aggregates one run's injected faults and the graceful
// degradation they triggered, layer by layer. It is attached to Result
// only when Config.Faults was set; a fault-free run carries nil.
type FaultStats struct {
	// Injected counts fired faults per site, indexed by fault.Site.
	Injected []int64

	// Disk layer.
	DiskTransientErrors int64 // completions that surfaced ErrTransient
	BadSectorRemaps     int64 // transfers that paid the remap penalty
	SpinUpFailures      int64 // spin-up attempts that aborted and re-issued
	SpinUpDelays        int64 // spin-ups that paid the extra delay

	// I/O-node layer.
	NodeRetries          int64 // member-disk resubmissions with backoff
	NodeRetriesExhausted int64 // member requests failed after MaxRetries
	NodeStalls           int64 // injected node stalls
	NodeFailedUnits      int64 // unit fetches abandoned (not cached)

	// Middleware layer.
	MWRetries      int64 // chunk re-reads/re-writes
	MWFailedReads  int64 // chunks failed after every retry
	MWFailedWrites int64

	// Network layer.
	NetDrops int64 // dropped transfers (retransmitted)
	NetDups  int64 // duplicated transfers (bandwidth wasted)

	// Scheduler layer.
	PrefetchAborts int64 // prefetches that completed ok=false and released

	// Executor layer.
	IORetries   int64 // whole-instance re-issues after a failed read/write
	IOAbandoned int64 // instances advanced despite failure (bounded retry)
	Fallbacks   int64 // aborted prefetches degraded to on-demand reads
}

// Total returns the number of injected faults across all sites.
func (fs *FaultStats) Total() int64 {
	if fs == nil {
		return 0
	}
	var t int64
	for _, n := range fs.Injected {
		t += n
	}
	return t
}

// collectFaultStats assembles the per-layer degradation counters at end of
// run. Cold path: runs once, after the event loop drains.
func collectFaultStats(inj *fault.Injector, nodes []*ionode.Node, net *netsim.Network, ex *executor) *FaultStats {
	st := inj.Stats()
	fs := &FaultStats{Injected: make([]int64, fault.NumSites())}
	copy(fs.Injected, st.Injected[:])
	for _, n := range nodes {
		ns := n.Stats()
		fs.NodeRetries += ns.Retries
		fs.NodeRetriesExhausted += ns.RetriesExhausted
		fs.NodeStalls += ns.Stalls
		fs.NodeFailedUnits += ns.FailedUnits
		for _, d := range n.Disks() {
			ds := d.Stats()
			fs.DiskTransientErrors += ds.TransientErrors
			fs.BadSectorRemaps += ds.BadSectorRemaps
			fs.SpinUpFailures += ds.SpinUpFailures
			fs.SpinUpDelays += ds.SpinUpDelays
		}
	}
	fs.MWRetries, fs.MWFailedReads, fs.MWFailedWrites = ex.mw.FaultStats()
	fs.NetDrops, fs.NetDups = net.FaultStats()
	for _, a := range ex.agents {
		fs.PrefetchAborts += a.FetchAborts()
	}
	fs.IORetries = ex.ioRetries
	fs.IOAbandoned = ex.ioAbandoned
	fs.Fallbacks = ex.fetchFallbacks
	return fs
}

// addFaultMetrics folds the fault block into the run's metric registry.
// Metrics are excluded from the golden fingerprint, so a zero-rate
// injector adding all-zero counters cannot perturb the golden suite.
func addFaultMetrics(reg *probe.Registry, fs *FaultStats) {
	var injected int64
	for _, n := range fs.Injected {
		injected += n
	}
	reg.Counter("fault.injected_total").Add(float64(injected))
	for s := 0; s < fault.NumSites(); s++ {
		reg.Counter("fault.injected." + fault.Site(s).String()).Add(float64(fs.Injected[s]))
	}
	reg.Counter("fault.disk.transient_errors").Add(float64(fs.DiskTransientErrors))
	reg.Counter("fault.disk.bad_sector_remaps").Add(float64(fs.BadSectorRemaps))
	reg.Counter("fault.disk.spinup_failures").Add(float64(fs.SpinUpFailures))
	reg.Counter("fault.disk.spinup_delays").Add(float64(fs.SpinUpDelays))
	reg.Counter("fault.node.retries").Add(float64(fs.NodeRetries))
	reg.Counter("fault.node.retries_exhausted").Add(float64(fs.NodeRetriesExhausted))
	reg.Counter("fault.node.stalls").Add(float64(fs.NodeStalls))
	reg.Counter("fault.node.failed_units").Add(float64(fs.NodeFailedUnits))
	reg.Counter("fault.mw.retries").Add(float64(fs.MWRetries))
	reg.Counter("fault.mw.failed_reads").Add(float64(fs.MWFailedReads))
	reg.Counter("fault.mw.failed_writes").Add(float64(fs.MWFailedWrites))
	reg.Counter("fault.net.drops").Add(float64(fs.NetDrops))
	reg.Counter("fault.net.dups").Add(float64(fs.NetDups))
	reg.Counter("fault.sched.prefetch_aborts").Add(float64(fs.PrefetchAborts))
	reg.Counter("fault.exec.io_retries").Add(float64(fs.IORetries))
	reg.Counter("fault.exec.io_abandoned").Add(float64(fs.IOAbandoned))
	reg.Counter("fault.exec.fallbacks").Add(float64(fs.Fallbacks))
}
