// Command benchcheck compares a fresh `go test -bench` stream on stdin
// against the committed baseline (BENCH_sim.json, written by benchjson)
// and fails on regressions:
//
//	go test -bench . -benchmem ./internal/sim | benchcheck -baseline BENCH_sim.json
//
// Rules:
//   - Every benchmark in the baseline must appear on stdin (a silently
//     dropped benchmark would hide its regression forever).
//   - ns/op may grow by at most -tol (default 0.25, i.e. +25%) over the
//     baseline. Shrinking is never an error; an improvement beyond the
//     tolerance prints a note suggesting a baseline refresh.
//   - allocs/op is exact when the baseline is 0 (a zero-alloc hot path
//     must stay zero-alloc) and may otherwise grow by at most 2% — enough
//     to absorb iteration-count rounding, not enough to hide a new
//     per-event allocation.
//   - B/op, iterations, and custom b.ReportMetric units are informational
//     and not checked (virtual_J etc. are asserted by the test suite).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"sdds/internal/benchfmt"
)

// allocTol absorbs iteration-count rounding on nonzero alloc baselines.
const allocTol = 0.02

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_sim.json", "committed benchmark baseline (benchjson output)")
		tol          = flag.Float64("tol", 0.25, "allowed fractional ns/op growth over the baseline")
	)
	flag.Parse()
	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	baseline, err := benchfmt.UnmarshalBaseline(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", *baselinePath, err)
		os.Exit(1)
	}
	current, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	failures, notes := compare(baseline, current, *tol)
	for _, n := range notes {
		fmt.Println("note:", n)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		fmt.Fprintf(os.Stderr, "benchcheck: %d regression(s) vs %s\n", len(failures), *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d benchmarks within tolerance of %s\n", len(baseline), *baselinePath)
}

// compare applies the regression rules, returning failures and
// informational notes in deterministic name order.
func compare(baseline, current benchfmt.Results, tol float64) (failures, notes []string) {
	names := make([]string, 0, len(baseline))
	for n := range baseline {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		base, cur := baseline[name], current[name]
		if cur == nil {
			failures = append(failures, fmt.Sprintf("%s: in baseline but missing from this run", name))
			continue
		}
		if baseNS, ok := base["ns/op"]; ok {
			curNS, ok := cur["ns/op"]
			switch {
			case !ok:
				failures = append(failures, fmt.Sprintf("%s: baseline has ns/op but this run does not", name))
			case curNS > baseNS*(1+tol):
				failures = append(failures, fmt.Sprintf("%s: ns/op %.4g exceeds baseline %.4g by more than %.0f%%",
					name, curNS, baseNS, tol*100))
			case curNS < baseNS*(1-tol):
				notes = append(notes, fmt.Sprintf("%s: ns/op %.4g improved more than %.0f%% over baseline %.4g; consider `make bench` to refresh",
					name, curNS, tol*100, baseNS))
			}
		}
		if baseAllocs, ok := base["allocs/op"]; ok {
			curAllocs, ok := cur["allocs/op"]
			switch {
			case !ok:
				failures = append(failures, fmt.Sprintf("%s: baseline has allocs/op but this run does not", name))
			case baseAllocs == 0 && curAllocs != 0:
				failures = append(failures, fmt.Sprintf("%s: allocs/op %g on a zero-alloc baseline", name, curAllocs))
			case baseAllocs > 0 && curAllocs > baseAllocs*(1+allocTol):
				failures = append(failures, fmt.Sprintf("%s: allocs/op %g exceeds baseline %g by more than %.0f%%",
					name, curAllocs, baseAllocs, allocTol*100))
			}
		}
	}
	return failures, notes
}
