package power

import (
	"math"
	"testing"
	"testing/quick"

	"sdds/internal/disk"
	"sdds/internal/sim"
)

func newRig(t *testing.T, kind Kind) (*sim.Engine, *disk.Disk, Policy) {
	t.Helper()
	eng := sim.NewEngine(1)
	d := disk.MustNew(eng, 0, disk.DefaultParams())
	p, err := New(eng, Config{Kind: kind})
	if err != nil {
		t.Fatal(err)
	}
	p.Attach(d)
	return eng, d, p
}

// fire submits a tiny read and drains the engine (including any policy
// timers that follow the completion).
func fire(t *testing.T, eng *sim.Engine, d *disk.Disk) {
	t.Helper()
	if err := d.Submit(&disk.Request{Op: disk.OpRead, Sector: 0, Bytes: 4096}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
}

// fireStep submits a tiny read and steps the engine only until the request
// completes, leaving policy timers pending. Use it to observe the state the
// policy establishes *at* idle start.
func fireStep(t *testing.T, eng *sim.Engine, d *disk.Disk) {
	t.Helper()
	done := false
	r := &disk.Request{Op: disk.OpRead, Sector: 0, Bytes: 4096, Done: func(sim.Time, *disk.Request) { done = true }}
	if err := d.Submit(r); err != nil {
		t.Fatal(err)
	}
	for !done {
		if !eng.Step() {
			t.Fatal("engine drained before request completion")
		}
	}
}

func TestKindString(t *testing.T) {
	for _, k := range AllKinds() {
		if k.String() == "invalid" {
			t.Errorf("kind %d has no name", k)
		}
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted bogus name")
	}
	if Kind(99).String() != "invalid" {
		t.Error("unknown kind must stringify as invalid")
	}
}

func TestNewRejectsInvalidKind(t *testing.T) {
	if _, err := New(sim.NewEngine(1), Config{Kind: Kind(42)}); err == nil {
		t.Fatal("New accepted invalid kind")
	}
}

func TestManagedKindsExcludesDefault(t *testing.T) {
	for _, k := range ManagedKinds() {
		if k == KindDefault {
			t.Fatal("ManagedKinds contains default")
		}
	}
	if len(ManagedKinds()) != 4 {
		t.Fatalf("len(ManagedKinds()) = %d, want 4", len(ManagedKinds()))
	}
}

func TestBreakEvenIdle(t *testing.T) {
	p := disk.DefaultParams()
	be := BreakEvenIdle(p)
	// Hand computation with Table II numbers:
	// (14·10 + 44.8·16 − 7.2·26) / (17.1 − 7.2) ≈ 67.6 s.
	want := (14.0*10 + 44.8*16 - 7.2*26) / (17.1 - 7.2)
	if math.Abs(be.Seconds()-want) > 0.01 {
		t.Fatalf("BreakEvenIdle = %v s, want %.2f s", be.Seconds(), want)
	}
	// Degenerate: standby draws as much as idle → never worth it.
	p.StandbyPowerW = p.IdlePowerW
	if BreakEvenIdle(p) < sim.Duration(1)<<61 {
		t.Fatal("break-even with no standby saving should be effectively infinite")
	}
}

func TestDefaultPolicyNeverTouchesDisk(t *testing.T) {
	eng, d, _ := newRig(t, KindDefault)
	fire(t, eng, d)
	eng.RunUntil(eng.Now() + 10*sim.Minute)
	if d.State() != disk.StateIdle || d.RPM() != d.Params().MaxRPM {
		t.Fatalf("default policy changed disk state: %v @%d RPM", d.State(), d.RPM())
	}
	if s := d.Stats(); s.SpinDowns != 0 || s.RPMShifts != 0 {
		t.Fatalf("default policy issued transitions: %+v", s)
	}
}

func TestSimpleSpinsDownAfterTimeout(t *testing.T) {
	eng, d, _ := newRig(t, KindSimple)
	fire(t, eng, d) // completion starts the idle timer
	eng.RunUntil(eng.Now() + sim.Minute)
	if d.State() != disk.StateStandby {
		t.Fatalf("state = %v, want standby after timeout", d.State())
	}
	if d.Stats().SpinDowns != 1 {
		t.Fatalf("SpinDowns = %d", d.Stats().SpinDowns)
	}
}

func TestSimpleTimerCancelledByArrival(t *testing.T) {
	eng, d, _ := newRig(t, KindSimple)
	fireStep(t, eng, d)
	idleStart := eng.Now()
	// New request 10 ms after completion: inside the 50 ms timeout. It
	// cancels the armed timer and re-arms a fresh one at its own completion.
	eng.Schedule(sim.MilliToTime(10), "again", func(sim.Time) {
		_ = d.Submit(&disk.Request{Op: disk.OpRead, Sector: 0, Bytes: 4096})
	})
	// At +45 ms the original timer would have fired (at +50 ms it would be
	// due); the re-armed one is not yet due.
	eng.RunUntil(idleStart + sim.MilliToTime(45))
	if d.Stats().SpinDowns != 0 {
		t.Fatal("cancelled timeout still spun the disk down")
	}
	eng.RunUntil(eng.Now() + 2*sim.Minute)
	if d.State() != disk.StateStandby {
		t.Fatal("re-armed timer never spun the disk down")
	}
}

func TestPredictiveNoSpinDownWithoutHistory(t *testing.T) {
	eng, d, _ := newRig(t, KindPredictive)
	fire(t, eng, d)
	eng.RunUntil(eng.Now() + sim.Minute)
	if d.Stats().SpinDowns != 0 {
		t.Fatal("predictive policy spun down with no observed idle periods")
	}
}

func TestPredictiveSpinsDownOnLongPrediction(t *testing.T) {
	eng, d, _ := newRig(t, KindPredictive)
	be := BreakEvenIdle(d.Params())
	// Teach it one long idle period (2× break-even), then go idle again.
	fireStep(t, eng, d)
	eng.RunUntil(eng.Now() + 2*be)
	fireStep(t, eng, d) // observes the 2×be gap; disk idles again now
	if d.State() == disk.StateIdle {
		// The policy should have initiated a spin-down immediately at idle
		// start (no timeout wait).
		t.Fatalf("predictive policy did not spin down at idle start")
	}
	eng.RunUntil(eng.Now() + d.Params().SpinDownTime + sim.Second)
	if d.Stats().SpinDowns != 1 {
		t.Fatalf("SpinDowns = %d, want 1", d.Stats().SpinDowns)
	}
}

func TestPredictiveWakesAheadOfTime(t *testing.T) {
	eng, d, _ := newRig(t, KindPredictive)
	be := BreakEvenIdle(d.Params())
	gap := 2 * be
	fireStep(t, eng, d)
	eng.RunUntil(eng.Now() + gap)
	fireStep(t, eng, d) // gap observed; spin-down begins
	idleStart := eng.Now()
	// No request ever arrives; the wake timer should spin the disk back up
	// around idleStart + gap − spinUpTime.
	eng.RunUntil(idleStart + gap + sim.Second)
	if d.Stats().SpinUps == 0 {
		t.Fatal("predictive policy never proactively spun up")
	}
	if d.State() != disk.StateIdle && d.State() != disk.StateSpinningUp {
		t.Fatalf("state = %v at predicted idle end", d.State())
	}
}

func TestPredictiveShortPredictionNoSpinDown(t *testing.T) {
	eng, d, _ := newRig(t, KindPredictive)
	// Teach it a short gap (1 ms).
	fire(t, eng, d)
	eng.RunUntil(eng.Now() + sim.Millisecond)
	fire(t, eng, d)
	eng.RunUntil(eng.Now() + sim.Minute)
	if d.Stats().SpinDowns != 0 {
		t.Fatal("spun down despite short predicted idleness")
	}
}

func TestHistoryDropsRPMAndRecoversOnRequest(t *testing.T) {
	eng, d, _ := newRig(t, KindHistory)
	// Teach a 30 s idle period.
	fireStep(t, eng, d)
	eng.RunUntil(eng.Now() + 30*sim.Second)
	fireStep(t, eng, d) // observe; disk idles again
	// Immediately after idle start the policy should command a lower speed.
	if d.TargetRPM() >= d.Params().MaxRPM {
		t.Fatalf("target RPM = %d, want below max", d.TargetRPM())
	}
	// The disk stays low while idleness persists (revision, not ramp-up);
	// the next request restores full speed as the target.
	eng.RunUntil(eng.Now() + 31*sim.Second)
	if d.RPM() >= d.Params().MaxRPM {
		t.Fatalf("RPM = %d during continued idleness, want below max", d.RPM())
	}
	fireStep(t, eng, d)
	if d.Stats().RPMShifts < 1 {
		t.Fatalf("RPMShifts = %d, want ≥1", d.Stats().RPMShifts)
	}
	// The request restored the full-speed target; the policy may re-park
	// afterwards, but the drop itself must have engaged.
	if d.TargetRPM() >= d.Params().MaxRPM {
		t.Fatalf("policy did not re-engage after service: target %d", d.TargetRPM())
	}
}

func TestHistoryChooseRPMMonotone(t *testing.T) {
	p := &historyPolicy{cfg: Config{}.withDefaults()}
	params := disk.DefaultParams()
	prev := params.MaxRPM + 1
	for _, idleSec := range []float64{0.1, 1, 5, 20, 60, 300} {
		rpm := p.chooseRPM(params, sim.Duration(idleSec*float64(sim.Second)))
		if rpm > prev {
			t.Fatalf("chooseRPM not monotone: idle %.1fs → %d RPM after %d", idleSec, rpm, prev)
		}
		prev = rpm
	}
	// Tiny idleness → full speed; huge idleness → minimum speed.
	if got := p.chooseRPM(params, sim.Millisecond); got != params.MaxRPM {
		t.Fatalf("chooseRPM(1ms) = %d, want max", got)
	}
	if got := p.chooseRPM(params, 10*sim.Minute); got != params.MinRPM {
		t.Fatalf("chooseRPM(10min) = %d, want min", got)
	}
}

func TestHistoryWrongPredictionServesPromptly(t *testing.T) {
	eng, d, _ := newRig(t, KindHistory)
	fireStep(t, eng, d)
	eng.RunUntil(eng.Now() + 60*sim.Second)
	fireStep(t, eng, d) // predicts 60 s, drops speed
	if d.TargetRPM() >= d.Params().MaxRPM {
		t.Fatal("setup: speed not dropped")
	}
	// Request arrives way early (after 2 s): wrong prediction. Multi-speed
	// disks serve at the current speed, so the penalty is bounded by the
	// slower mechanics, not by a spin-up.
	eng.RunUntil(eng.Now() + 2*sim.Second)
	var lat sim.Duration
	r := &disk.Request{Op: disk.OpRead, Sector: 0, Bytes: 4096, Done: func(_ sim.Time, rq *disk.Request) { lat = rq.Latency() }}
	if err := d.Submit(r); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now() + sim.Second)
	if lat == 0 || lat > 200*sim.Millisecond {
		t.Fatalf("wrong-prediction request latency = %v, want prompt low-speed service", lat)
	}
}

func TestStaggeredStepsThroughSpeeds(t *testing.T) {
	eng, d, _ := newRig(t, KindStaggered)
	fireStep(t, eng, d)
	// The first step fires once idleness persists for the detection
	// timeout; before that the disk stays at full speed.
	if d.TargetRPM() != d.Params().MaxRPM {
		t.Fatalf("stepped down before the detection timeout: %d", d.TargetRPM())
	}
	eng.RunUntil(eng.Now() + sim.MilliToTime(80))
	if want := d.Params().MaxRPM - d.Params().RPMStep; d.TargetRPM() > want {
		t.Fatalf("first step target = %d, want ≤ %d", d.TargetRPM(), want)
	}
	eng.RunUntil(eng.Now() + 10*sim.Second)
	if d.RPM() != d.Params().MinRPM {
		t.Fatalf("RPM = %d after long idleness, want min %d", d.RPM(), d.Params().MinRPM)
	}
}

func TestStaggeredRampsToMaxOnArrival(t *testing.T) {
	eng, d, _ := newRig(t, KindStaggered)
	fire(t, eng, d)
	eng.RunUntil(eng.Now() + 10*sim.Second) // bottom out at min RPM
	if d.RPM() != d.Params().MinRPM {
		t.Fatal("setup: did not bottom out")
	}
	var served *disk.Request
	r := &disk.Request{Op: disk.OpRead, Sector: 0, Bytes: 4096, Done: func(_ sim.Time, rq *disk.Request) { served = rq }}
	if err := d.Submit(r); err != nil {
		t.Fatal(err)
	}
	// The arrival restores the full-speed target; the request itself is
	// served at the current (low) speed.
	if d.TargetRPM() != d.Params().MaxRPM {
		t.Fatalf("target = %d after arrival, want max", d.TargetRPM())
	}
	for served == nil {
		if !eng.Step() {
			t.Fatal("drained before service")
		}
	}
	if lat := served.Latency(); lat > 200*sim.Millisecond {
		t.Fatalf("low-speed service latency = %v, want prompt", lat)
	}
	// With the queue empty the recovery ramp begins at once; with no
	// further requests the staircase then legitimately walks back down, so
	// we only check that the recovery started.
	if d.State() != disk.StateShiftingRPM && d.RPM() == d.Params().MinRPM {
		t.Fatalf("recovery did not engage: state=%v rpm=%d", d.State(), d.RPM())
	}
}

func TestStaggeredSavesEnergyWhenIdle(t *testing.T) {
	energy := func(kind Kind) float64 {
		eng := sim.NewEngine(1)
		d := disk.MustNew(eng, 0, disk.DefaultParams())
		MustNew(eng, Config{Kind: kind}).Attach(d)
		_ = d.Submit(&disk.Request{Op: disk.OpRead, Sector: 0, Bytes: 4096})
		eng.Run()
		eng.RunUntil(eng.Now() + 5*sim.Minute)
		return d.Energy().TotalJoules(eng.Now())
	}
	if st, def := energy(KindStaggered), energy(KindDefault); st >= def {
		t.Fatalf("staggered energy %v J not below default %v J over a long idle", st, def)
	}
}

func TestSimpleSavesEnergyOnVeryLongIdle(t *testing.T) {
	energy := func(kind Kind) float64 {
		eng := sim.NewEngine(1)
		d := disk.MustNew(eng, 0, disk.DefaultParams())
		MustNew(eng, Config{Kind: kind}).Attach(d)
		_ = d.Submit(&disk.Request{Op: disk.OpRead, Sector: 0, Bytes: 4096})
		eng.Run()
		eng.RunUntil(eng.Now() + 30*sim.Minute)
		return d.Energy().TotalJoules(eng.Now())
	}
	if s, def := energy(KindSimple), energy(KindDefault); s >= def {
		t.Fatalf("simple energy %v J not below default %v J over 30 min idle", s, def)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if _, ok := e.Predict(); ok {
		t.Fatal("fresh EWMA claims a prediction")
	}
	e.Observe(100)
	if v, ok := e.Predict(); !ok || v != 100 {
		t.Fatalf("after first observation: %v, %v", v, ok)
	}
	e.Observe(200)
	if v, _ := e.Predict(); v != 150 {
		t.Fatalf("EWMA(0.5) after 100,200 = %v, want 150", v)
	}
	e.Reset()
	if _, ok := e.Predict(); ok {
		t.Fatal("Reset did not clear history")
	}
}

func TestEWMAInvalidAlphaFallsBack(t *testing.T) {
	for _, a := range []float64{-1, 0, 1.5} {
		e := NewEWMA(a)
		if e.alpha != 0.5 {
			t.Fatalf("NewEWMA(%v).alpha = %v, want 0.5", a, e.alpha)
		}
	}
}

// Property: EWMA prediction always lies within [min, max] of observations.
func TestPropertyEWMABounded(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		e := NewEWMA(0.5)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			x := float64(v)
			e.Observe(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		got, ok := e.Predict()
		return ok && got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

type fixedHints struct{ gap sim.Duration }

func (h fixedHints) NextIdle(int, sim.Time) (sim.Duration, bool) { return h.gap, true }

func TestOracleUsesHints(t *testing.T) {
	eng := sim.NewEngine(1)
	d := disk.MustNew(eng, 0, disk.DefaultParams())
	o := NewOracle(eng, Config{}, fixedHints{gap: 60 * sim.Second})
	o.Attach(d)
	fireStep(t, eng, d)
	if d.TargetRPM() != d.Params().MinRPM {
		t.Fatalf("oracle with 60 s hint targeted %d RPM, want min", d.TargetRPM())
	}
	if o.Kind() != KindHistory {
		t.Fatalf("oracle Kind = %v", o.Kind())
	}
}

func TestPredictiveCooldownAfterAbort(t *testing.T) {
	eng, d, _ := newRig(t, KindPredictive)
	be := BreakEvenIdle(d.Params())
	// Teach a long gap so the policy spins down at idle start.
	fireStep(t, eng, d)
	eng.RunUntil(eng.Now() + 2*be)
	fireStep(t, eng, d) // spin-down begins now
	if d.State() != disk.StateSpinningDown {
		t.Fatalf("state = %v, want spinning down", d.State())
	}
	// A request lands mid-transition (misprediction): abort + cooldown.
	eng.RunUntil(eng.Now() + sim.Second)
	fireStep(t, eng, d)
	downs := d.Stats().SpinDowns
	// The next idle start must NOT trigger another spin-down while the
	// cooldown is active, even though the EWMA still predicts long.
	eng.RunUntil(eng.Now() + 30*sim.Second)
	if d.Stats().SpinDowns != downs {
		t.Fatalf("spin-down during cooldown: %d → %d", downs, d.Stats().SpinDowns)
	}
}

func TestPredictiveWakeNotBeforeBreakEven(t *testing.T) {
	eng, d, _ := newRig(t, KindPredictive)
	be := BreakEvenIdle(d.Params())
	// Teach a gap just above threshold (0.6×be > 0.5×be) whose EWMA-based
	// wake would have fired long before break-even.
	fireStep(t, eng, d)
	eng.RunUntil(eng.Now() + 8*be/10)
	fireStep(t, eng, d)
	if d.State() == disk.StateIdle {
		t.Skip("prediction below threshold on this parameterization")
	}
	idleStart := eng.Now()
	// Before break-even the disk must not have proactively spun up.
	eng.RunUntil(idleStart + be - sim.Second)
	if d.State() == disk.StateIdle && d.RPM() == d.Params().MaxRPM {
		t.Fatal("woke before the energy break-even point")
	}
}

func TestEngageIfIdleSkipsBusyDisk(t *testing.T) {
	eng := sim.NewEngine(1)
	d := disk.MustNew(eng, 0, disk.DefaultParams())
	// Make the disk busy before attaching.
	_ = d.Submit(&disk.Request{Op: disk.OpRead, Sector: 0, Bytes: 1 << 20})
	eng.Step()
	p := MustNew(eng, Config{Kind: KindStaggered})
	p.Attach(d) // must not step a busy disk down
	if d.TargetRPM() != d.Params().MaxRPM {
		t.Fatal("engageIfIdle acted on a busy disk")
	}
}
