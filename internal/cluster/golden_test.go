package cluster

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"sdds/internal/compilecache"
	"sdds/internal/compiler"
	"sdds/internal/power"
	"sdds/internal/probe"
	"sdds/internal/workloads"
)

// goldenUpdate regenerates testdata/golden.json from the current simulator.
// The committed file was produced by the pre-refactor (container/heap,
// closure-scheduling, O(Procs)-scan) executor; the event-core rewrite must
// reproduce it bit for bit.
var goldenUpdate = flag.Bool("update", false, "rewrite cluster golden results")

// goldenScale keeps the 24-run matrix (six apps × {Default,History} ×
// {scheduling off,on}) fast enough for every `go test` invocation while
// still exercising barriers, prefetch agents, RPM shifts and spin-downs.
const goldenScale = 0.05

const goldenSeed = 42

// goldenFingerprint is the exported bit-exact Fingerprint (fingerprint.go);
// the local name survives so the golden tests read as before.
func goldenFingerprint(res *Result) []string { return Fingerprint(res) }

func goldenKey(app string, kind power.Kind, scheduling bool) string {
	return FingerprintKey(app, kind, scheduling)
}

// TestGoldenResultsStable asserts same-seed bit-identical Results across
// the event-core refactor for all six apps × {Default, History} ×
// {scheduling off, on}.
func TestGoldenResultsStable(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix")
	}
	path := filepath.Join("testdata", "golden.json")
	got := make(map[string][]string)
	for _, spec := range workloads.All() {
		prog := spec.Build(goldenScale)
		for _, kind := range []power.Kind{power.KindDefault, power.KindHistory} {
			for _, scheduling := range []bool{false, true} {
				cfg := DefaultConfig()
				cfg.Seed = goldenSeed
				cfg.Policy = power.Config{Kind: kind}
				cfg.Scheduling = scheduling
				res, err := Run(prog, cfg)
				if err != nil {
					t.Fatalf("%s/%v/sched=%v: %v", spec.Name, kind, scheduling, err)
				}
				fp := goldenFingerprint(res)
				got[goldenKey(spec.Name, kind, scheduling)] = fp

				// Tracing must be pure observation: re-run with a probe
				// attached and demand a bit-identical fingerprint.
				traced := cfg
				traced.Probe = probe.NewProbe(1 << 16)
				tres, err := Run(prog, traced)
				if err != nil {
					t.Fatalf("%s/%v/sched=%v traced: %v", spec.Name, kind, scheduling, err)
				}
				tfp := goldenFingerprint(tres)
				for i := range fp {
					if tfp[i] != fp[i] {
						t.Errorf("%s/%v/sched=%v: tracing changed field %q -> %q",
							spec.Name, kind, scheduling, fp[i], tfp[i])
					}
				}
				if traced.Probe.Emitted() == 0 {
					t.Errorf("%s/%v/sched=%v: traced run emitted no records", spec.Name, kind, scheduling)
				}
			}
		}
	}
	if *goldenUpdate {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden fingerprints to %s", len(got), path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	want := make(map[string][]string)
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(got) != len(want) {
		t.Errorf("have %d configurations, golden file has %d", len(got), len(want))
	}
	for _, k := range keys {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s: missing from this run", k)
			continue
		}
		w := want[k]
		if len(g) != len(w) {
			t.Errorf("%s: %d fields vs golden %d", k, len(g), len(w))
			continue
		}
		for i := range w {
			if g[i] != w[i] {
				t.Errorf("%s: field %q, golden %q", k, g[i], w[i])
			}
		}
	}
}

// loadGolden reads the committed golden fingerprints.
func loadGolden(t *testing.T) map[string][]string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	want := make(map[string][]string)
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestGoldenCacheModes runs the full 24-config matrix under the compile
// cache in its three modes — cold store-backed cache (compiling and
// persisting artifacts), warm in-process cache (memo hits), and a fresh
// cache restoring artifacts from the persisted store — and demands every
// fingerprint stay bit-identical to the committed golden file. This is
// the contract that makes artifact reuse safe: a restored compile must be
// indistinguishable from a live one.
func TestGoldenCacheModes(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix")
	}
	if *goldenUpdate {
		t.Skip("golden file being regenerated")
	}
	want := loadGolden(t)
	artifacts := filepath.Join(t.TempDir(), "artifacts.jsonl")

	type mode struct {
		name string
		// wantProv is the acceptable provenance set for scheduled runs.
		// The cold pass compiles once per distinct compile key; runs that
		// share a key (same app, different power policy) legitimately hit
		// the memo even on the first pass.
		wantProv map[compiler.Provenance]bool
	}
	runMatrix := func(t *testing.T, cache *compilecache.Cache, m mode) {
		for _, spec := range workloads.All() {
			prog := spec.Build(goldenScale)
			for _, kind := range []power.Kind{power.KindDefault, power.KindHistory} {
				for _, scheduling := range []bool{false, true} {
					cfg := DefaultConfig()
					cfg.Seed = goldenSeed
					cfg.Policy = power.Config{Kind: kind}
					cfg.Scheduling = scheduling
					cfg.CompileCache = cache
					res, err := RunContext(context.Background(), prog, cfg)
					if err != nil {
						t.Fatalf("%s/%v/sched=%v: %v", spec.Name, kind, scheduling, err)
					}
					key := goldenKey(spec.Name, kind, scheduling)
					if scheduling {
						if !m.wantProv[res.CompileProvenance] {
							t.Errorf("%s: provenance %q unexpected in mode %s",
								key, res.CompileProvenance, m.name)
						}
					} else if res.CompileProvenance != compiler.ProvNone {
						t.Errorf("%s: scheduling-off run has provenance %q", key, res.CompileProvenance)
					}
					fp := goldenFingerprint(res)
					w, ok := want[key]
					if !ok {
						t.Fatalf("%s: missing from golden file", key)
					}
					if len(fp) != len(w) {
						t.Fatalf("%s: %d fields vs golden %d", key, len(fp), len(w))
					}
					for i := range w {
						if fp[i] != w[i] {
							t.Errorf("%s: mode %s: field %q, golden %q", key, m.name, fp[i], w[i])
						}
					}
				}
			}
		}
	}

	cold, err := compilecache.Open(artifacts)
	if err != nil {
		t.Fatal(err)
	}
	runMatrix(t, cold, mode{name: "cold", wantProv: map[compiler.Provenance]bool{
		compiler.ProvCompiled: true, compiler.ProvMemory: true,
	}})
	apps := len(workloads.All())
	if st := cold.Stats(); int(st.Misses) != apps {
		t.Errorf("cold pass misses = %d, want %d (one compile per app)", st.Misses, apps)
	}
	if n := cold.Store().Len(); n != apps {
		t.Errorf("persisted artifacts = %d, want %d", n, apps)
	}

	// Warm pass: every scheduled run is now an in-process memo hit.
	runMatrix(t, cold, mode{name: "warm", wantProv: map[compiler.Provenance]bool{
		compiler.ProvMemory: true,
	}})
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	// Restored pass: a fresh cache over the persisted store must serve
	// every compile from disk without compiling anything.
	restored, err := compilecache.Open(artifacts)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	runMatrix(t, restored, mode{name: "restored", wantProv: map[compiler.Provenance]bool{
		compiler.ProvStore: true, compiler.ProvMemory: true,
	}})
	if st := restored.Stats(); st.Misses != 0 || int(st.Restores) != apps {
		t.Errorf("restored pass stats = %+v, want 0 misses and %d restores", st, apps)
	}
}
