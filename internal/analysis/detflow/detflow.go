// Package detflow implements the interprocedural determinism analyzer for
// the golden-fingerprint cone outside the simulation packages proper:
// harness orchestration, core schedule math, metrics, workload generators,
// and the benchmark/CLI plumbing whose output is compared byte-for-byte.
// simdet checks the simulation packages themselves (syntactically and
// transitively); detflow closes the remaining hole where deterministic
// code reaches time.Now, the global math/rand source, or order-sensitive
// map iteration through a helper in another package.
//
// detflow is purely summary-driven: each function's callsum summary either
// is clean, carries an intrinsic cause inside the function (reported
// directly), or carries the effect via a call whose callee lies outside
// every determinism-checked scope (reported with the full call chain).
// Effects reaching through an in-scope callee are deliberately not
// reported — that callee's own package report covers them — so each root
// cause surfaces exactly once, at the boundary where it enters checked
// code. One finding per function per effect kind: the first cause in
// source order wins, matching the summary lattice.
package detflow

import (
	"go/ast"
	"go/types"
	"regexp"

	"sdds/internal/analysis"
	"sdds/internal/analysis/callsum"
	"sdds/internal/analysis/simdet"
)

// DetPackages selects the deterministic, golden-feeding packages checked
// by this analyzer. internal/probe is deliberately absent: its whole job
// is wall-clock observability spans, and its intrinsic sites carry
// //sddsvet:ignore detflow so they never taint callers' summaries. Tests
// may override it.
var DetPackages = regexp.MustCompile(`^sdds/(internal/(core|metrics|harness|stripe|workloads|loop|polyhedral|cache|trace|benchfmt|cliutil|strutil)|cmd/benchcheck)$`)

// checkedKinds are the nondeterminism effects detflow gates on.
var checkedKinds = []callsum.EffectKind{callsum.WallClock, callsum.GlobalRand, callsum.MapOrder}

// Analyzer reports nondeterminism reachable from deterministic packages.
var Analyzer = &analysis.Analyzer{
	Name: "detflow",
	Doc: "flags wall-clock reads, global math/rand draws, and order-sensitive " +
		"map iteration reachable (through any call chain) from the " +
		"deterministic golden-fingerprint packages outside the sim core",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !DetPackages.MatchString(pass.PkgPath) {
		return nil
	}
	sums := callsum.Of(pass.Mod)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			checkFunc(pass, sums, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, sums *callsum.Summaries, fn *types.Func) {
	sum := sums.ForFunc(fn)
	if sum == nil {
		return
	}
	for _, k := range checkedKinds {
		c := sum.Effect(k)
		if c == nil {
			continue
		}
		if c.Callee == nil {
			pass.Reportf(c.Pos, "%s (%s) in deterministic package %s: results must not depend on it",
				c.Detail, k, pass.Pkg.Name())
			continue
		}
		// Reported only at the boundary where the effect leaves checked
		// code; in-scope callees get their own report.
		calleePath := c.Callee.Pkg().Path()
		if DetPackages.MatchString(calleePath) || simdet.SimPackages.MatchString(calleePath) {
			continue
		}
		chain := sums.EffectChain(fn, k)
		pass.ReportChain(c.Pos, chain, "%s reached from deterministic code: %s", k, callsum.Render(chain))
	}
}
