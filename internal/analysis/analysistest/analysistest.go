// Package analysistest runs an analyzer over a fixture package and checks
// its diagnostics against // want comments in the fixture source, mirroring
// golang.org/x/tools/go/analysis/analysistest:
//
//	rand.Intn(6) // want `global math/rand`
//
// Each `// want "regexp"` (quoted or backquoted) on a line demands at least
// one diagnostic on that line matching the regexp; diagnostics on lines
// without a want, and wants without a diagnostic, fail the test.
// Suppression is part of what is under test: a fixture line carrying
// //sddsvet:ignore for the analyzer must produce no diagnostic (so it must
// carry no want either).
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sdds/internal/analysis"
)

var wantRe = regexp.MustCompile("//\\s*want\\s+(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// moduleRoot walks up from the current directory to the directory holding
// go.mod, so fixtures can import real module packages (sdds/internal/sim).
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("analysistest: no go.mod above test directory")
		}
		dir = parent
	}
}

// Run loads the single package in dir (relative to the calling test's
// directory), applies the analyzer with //sddsvet:ignore filtering, and
// matches the findings against the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	root := moduleRoot(t)
	mod, err := analysis.LoadModule(root, abs)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(mod.Selected) != 1 {
		t.Fatalf("loaded %d packages from %s, want 1", len(mod.Selected), dir)
	}
	pkg := mod.Selected[0]
	diags, err := analysis.RunAnalyzers(mod, pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(filename)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pat := m[1]
			if pat == "" {
				pat = m[2]
			} else {
				pat = strings.ReplaceAll(pat, `\"`, `"`)
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", filename, i+1, pat, err)
			}
			wants[key{filename, i + 1}] = append(wants[key{filename, i + 1}], re)
		}
	}

	matched := make(map[key][]bool)
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		found := false
		for i, re := range wants[k] {
			if !matched[k][i] && re.MatchString(d.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", relName(root, pos.Filename), pos.Line, d.Message)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: no diagnostic matching %q", relName(root, k.file), k.line, re)
			}
		}
	}
}

func relName(root, name string) string {
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}
