// Package mpiio is the I/O middleware of the simulated stack (§V-A: MPI-IO
// on top of PVFS): it exposes file-level read/write calls, fans each byte
// range out into stripe-unit chunks across the I/O nodes (Fig. 1), moves
// the bytes over the network model and completes when the last chunk lands.
// Both the application processes and the runtime data access scheduler
// issue their accesses through this layer.
package mpiio

import (
	"fmt"

	"sdds/internal/ionode"
	"sdds/internal/netsim"
	"sdds/internal/sim"
	"sdds/internal/stripe"
)

// FileInfo describes an open file.
type FileInfo struct {
	ID   int
	Name string
	Size int64
}

// Middleware routes file I/O to the I/O nodes.
type Middleware struct {
	eng    *sim.Engine
	layout stripe.Layout
	nodes  []*ionode.Node
	net    *netsim.Network
	files  map[int]FileInfo

	reads, writes int64
}

// New wires the middleware. The node slice length must equal the layout's
// NumNodes.
func New(eng *sim.Engine, layout stripe.Layout, nodes []*ionode.Node, net *netsim.Network) (*Middleware, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	if len(nodes) != layout.NumNodes {
		return nil, fmt.Errorf("mpiio: %d nodes for a %d-node layout", len(nodes), layout.NumNodes)
	}
	return &Middleware{
		eng:    eng,
		layout: layout,
		nodes:  nodes,
		net:    net,
		files:  make(map[int]FileInfo),
	}, nil
}

// Open registers a file (MPI_File_open). Re-opening the same id is allowed
// and idempotent.
func (m *Middleware) Open(id int, name string, size int64) (FileInfo, error) {
	if size <= 0 {
		return FileInfo{}, fmt.Errorf("mpiio: file %q size %d must be positive", name, size)
	}
	fi := FileInfo{ID: id, Name: name, Size: size}
	m.files[id] = fi
	return fi, nil
}

// Layout returns the striping layout.
func (m *Middleware) Layout() stripe.Layout { return m.layout }

// Stats returns cumulative read/write call counts.
func (m *Middleware) Stats() (reads, writes int64) { return m.reads, m.writes }

// wrap keeps scaled-down file sizes addressable: offsets beyond the file
// wrap around, preserving the node-visit pattern of the original trace.
func (m *Middleware) wrap(file int, offset int64) int64 {
	fi, ok := m.files[file]
	if !ok || fi.Size <= 0 {
		return offset
	}
	if offset < 0 {
		offset = -offset
	}
	return offset % fi.Size
}

// Read fetches [offset, offset+length) of file, invoking done when every
// chunk has been read on its I/O node and transferred back over the
// network (MPI_File_read).
func (m *Middleware) Read(file int, offset, length int64, done func(now sim.Time)) error {
	if length <= 0 {
		return fmt.Errorf("mpiio: read length %d must be positive", length)
	}
	m.reads++
	return m.forEachChunk(file, offset, length, func(c stripe.Chunk, chunkDone func(sim.Time)) error {
		node := m.nodes[c.Node]
		return node.Read(file, c.Unit, c.Offset, c.Length, func(sim.Time) {
			// Ship the chunk back to the client.
			if err := m.net.Transfer(c.Node, c.Length, chunkDone); err != nil {
				// Transfer setup errors are programming errors; complete
				// the chunk so callers don't hang.
				m.eng.ScheduleFunc(0, "mpiio.read-err", chunkDone)
			}
		})
	}, done)
}

// Write stores [offset, offset+length) of file: data moves to each node
// over the network, then the node writes it (MPI_File_write).
func (m *Middleware) Write(file int, offset, length int64, done func(now sim.Time)) error {
	if length <= 0 {
		return fmt.Errorf("mpiio: write length %d must be positive", length)
	}
	m.writes++
	return m.forEachChunk(file, offset, length, func(c stripe.Chunk, chunkDone func(sim.Time)) error {
		node := m.nodes[c.Node]
		return m.net.Transfer(c.Node, c.Length, func(sim.Time) {
			if err := node.Write(file, c.Unit, c.Offset, c.Length, chunkDone); err != nil {
				m.eng.ScheduleFunc(0, "mpiio.write-err", chunkDone)
			}
		})
	}, done)
}

// SignatureFor returns the I/O-node signature of a byte range of a file
// (after wrap normalization) — what the compiler attaches to accesses.
func (m *Middleware) SignatureFor(file int, offset, length int64) stripe.Signature {
	return m.layout.SignatureFor(m.wrap(file, offset), length)
}

// forEachChunk splits the range, dispatches fn per chunk and calls done
// when all chunks complete.
func (m *Middleware) forEachChunk(file int, offset, length int64, fn func(stripe.Chunk, func(sim.Time)) error, done func(now sim.Time)) error {
	offset = m.wrap(file, offset)
	chunks := m.layout.Chunks(offset, length)
	if len(chunks) == 0 {
		return fmt.Errorf("mpiio: empty chunk set for off=%d len=%d", offset, length)
	}
	remaining := len(chunks)
	chunkDone := func(now sim.Time) {
		remaining--
		if remaining == 0 && done != nil {
			done(now)
		}
	}
	for _, c := range chunks {
		if c.Node < 0 || c.Node >= len(m.nodes) {
			return fmt.Errorf("mpiio: chunk mapped to invalid node %d", c.Node)
		}
		if err := fn(c, chunkDone); err != nil {
			return err
		}
	}
	return nil
}
