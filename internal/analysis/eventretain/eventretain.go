// Package eventretain implements the sddsvet analyzer guarding the event
// free list. Events scheduled through the fire-and-forget paths
// (ScheduleFunc/ScheduleArg) are recycled the moment they fire, so a
// *sim.Event that escapes into longer-lived storage can be reinitialized
// under the holder's feet — the use-after-recycle bug class the free list
// introduced. Only the handles returned by Schedule/ScheduleAt are marked
// retained (never recycled) and are safe to keep.
//
// The analyzer flags any store of a *sim.Event into a struct field, slice
// or map element, or package-level variable whose source is not provably a
// retained handle: nil, a direct Schedule/ScheduleAt call, or a local
// variable assigned only from such calls.
package eventretain

import (
	"go/ast"
	"go/token"
	"go/types"

	"sdds/internal/analysis"
)

const simPkg = "sdds/internal/sim"

// retainedMethods return handles that the engine never recycles.
var retainedMethods = map[string]bool{"Schedule": true, "ScheduleAt": true}

// Analyzer reports retention of possibly-recycled *sim.Event values.
var Analyzer = &analysis.Analyzer{
	Name: "eventretain",
	Doc: "flags storing *sim.Event into fields, elements, or globals unless the " +
		"value is a retained handle from Schedule/ScheduleAt — anything else may " +
		"be recycled by the engine's free list while still referenced",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.PkgPath == simPkg {
		return nil // the engine's own queue/free list legitimately holds events
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc flags event-retaining stores in one function, allowing values
// that provably trace back to handle-returning schedule calls.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	safe := safeLocals(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break // multi-value assignment from one call
				}
				checkStore(pass, safe, lhs, n.Rhs[i], n.Tok)
			}
		case *ast.CallExpr:
			// append(retainer, ev): storing into a slice that outlives the
			// handler is retention all the same.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" &&
				analysis.CalleeFunc(pass.TypesInfo, n) == nil {
				for _, arg := range n.Args[1:] {
					if isEvent(pass, arg) && !isSafeSource(pass, safe, arg) {
						pass.Reportf(arg.Pos(), "appending a possibly-recycled *sim.Event to a slice retains it past handler scope; only handles from Schedule/ScheduleAt are safe to hold")
					}
				}
			}
		}
		return true
	})
}

// checkStore flags `x.f = ev`, `s[i] = ev`, and `global = ev` when ev is
// not a provably retained handle.
func checkStore(pass *analysis.Pass, safe map[types.Object]bool, lhs, rhs ast.Expr, tok token.Token) {
	if !isEvent(pass, rhs) || isSafeSource(pass, safe, rhs) {
		return
	}
	var kind string
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		kind = "struct field"
	case *ast.IndexExpr:
		kind = "container element"
	case *ast.Ident:
		if tok == token.DEFINE {
			return
		}
		obj := analysis.ObjOf(pass.TypesInfo, l)
		if v, ok := obj.(*types.Var); ok && v.Parent() != nil && v.Parent().Parent() == types.Universe {
			kind = "package-level variable"
		} else {
			return // plain local copy: dies with the handler
		}
	default:
		return
	}
	pass.Reportf(lhs.Pos(), "storing a possibly-recycled *sim.Event in a %s retains it past handler scope; only handles from Schedule/ScheduleAt are safe to hold", kind)
}

// isEvent reports whether e has type *sim.Event.
func isEvent(pass *analysis.Pass, e ast.Expr) bool {
	t, ok := pass.TypesInfo.Types[e]
	if !ok || t.IsNil() {
		return false
	}
	return analysis.IsPointerTo(t.Type, simPkg, "Event")
}

// isSafeSource reports whether e is a retained handle: a direct
// Schedule/ScheduleAt call or a local known to hold one.
func isSafeSource(pass *analysis.Pass, safe map[types.Object]bool, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return isRetainedCall(pass, e)
	case *ast.Ident:
		return safe[analysis.ObjOf(pass.TypesInfo, e)]
	}
	return false
}

func isRetainedCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	return fn != nil && retainedMethods[fn.Name()] && analysis.IsMethodOn(fn, simPkg, "Engine")
}

// safeLocals collects local variables every assignment of which is a
// handle-returning schedule call, so `ev := eng.Schedule(...); p.t = ev`
// passes without an ignore.
func safeLocals(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	safe := make(map[types.Object]bool)
	unsafe := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := analysis.ObjOf(pass.TypesInfo, id)
			if obj == nil || !analysis.IsPointerTo(obj.Type(), simPkg, "Event") {
				continue
			}
			ok = false
			if len(as.Rhs) == len(as.Lhs) {
				if call, isCall := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); isCall && isRetainedCall(pass, call) {
					ok = true
				}
			} else if len(as.Rhs) == 1 {
				// ev, err := eng.ScheduleAt(...)
				if call, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); isCall && isRetainedCall(pass, call) {
					ok = true
				}
			}
			if ok {
				safe[obj] = true
			} else {
				unsafe[obj] = true
			}
		}
		return true
	})
	for obj := range unsafe {
		delete(safe, obj)
	}
	return safe
}
