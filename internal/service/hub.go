package service

import (
	"encoding/json"
	"sync"
)

// hub fans run-progress events out to SSE subscribers. Subscribers get a
// buffered channel; a subscriber that falls behind loses events rather
// than blocking the session's progress callback (SSE is a best-effort
// monitor — the store is the source of truth).
type hub struct {
	mu     sync.Mutex
	subs   map[chan []byte]struct{}
	closed bool
	done   chan struct{} // closed at shutdown, ending every subscriber
}

func newHub() *hub {
	return &hub{
		subs: make(map[chan []byte]struct{}),
		done: make(chan struct{}),
	}
}

// subscribe registers a new event channel; cancel deregisters it.
// Subscribing to a shut-down hub returns a channel that never delivers
// (the caller's select on h.done exits immediately).
func (h *hub) subscribe() (ch chan []byte, cancel func()) {
	ch = make(chan []byte, 64)
	h.mu.Lock()
	if !h.closed {
		h.subs[ch] = struct{}{}
	}
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		delete(h.subs, ch)
		h.mu.Unlock()
	}
}

// broadcast marshals v once and offers it to every subscriber,
// non-blocking.
func (h *hub) broadcast(v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		select {
		case ch <- buf:
		default: // slow subscriber: drop rather than stall the session
		}
	}
}

// count reports the live subscriber count.
func (h *hub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// shutdown ends every subscriber stream and refuses new ones.
// Idempotent.
func (h *hub) shutdown() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	close(h.done)
	clear(h.subs)
}
