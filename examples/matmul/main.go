// Matmul runs the paper's motivating example (Fig. 5): an out-of-core
// blocked matrix multiplication W = U × V written against the MPI-IO-style
// middleware, end-to-end through the whole stack — slack analysis,
// scheduling, the runtime prefetcher and the simulated cluster — comparing
// the history-based multi-speed policy with and without the framework.
//
//	go run ./examples/matmul
package main

import (
	"fmt"
	"log"

	"sdds/internal/cluster"
	"sdds/internal/loop"
	"sdds/internal/power"
	"sdds/internal/sim"
)

// matmul builds the Fig. 5 program: each file is divided into R×R blocks of
// N×N elements. The m-loop reads a row block of U, the n-loop reads a
// column block of V, computes the block product and writes a block of W.
func matmul(r int, blockBytes int64) *loop.Program {
	total := int64(r) * int64(r) * blockBytes
	return &loop.Program{
		Name: "matmul",
		Files: []loop.File{
			{ID: 0, Name: "U", Size: total},
			{ID: 1, Name: "V", Size: total},
			{ID: 2, Name: "W", Size: total},
		},
		Nests: []loop.Nest{{
			// The flattened (m, n) loop: iteration i = m·R + n. U's row
			// block changes every R iterations; V's column block every
			// iteration.
			Name: "product", Trips: r * r, Parallel: true,
			IterCost: sim.MilliToTime(120), // the i,j,k block product
			Body: []loop.Stmt{
				{Kind: loop.StmtRead, File: 0, Region: loop.Affine{IterCoef: blockBytes, Len: blockBytes}, Every: r},
				{Kind: loop.StmtRead, File: 1, Region: loop.Affine{IterCoef: blockBytes, Len: blockBytes}, Every: 2},
				{Kind: loop.StmtWrite, File: 2, Region: loop.Affine{IterCoef: blockBytes, Len: blockBytes}, Every: 2},
			},
		}},
	}
}

func main() {
	prog := matmul(64, 256<<10) // 64×64 blocks of 256 KB: 1 GB per matrix
	if err := prog.Validate(); err != nil {
		log.Fatal(err)
	}

	run := func(scheduling bool) *cluster.Result {
		cfg := cluster.DefaultConfig()
		cfg.Policy = power.Config{Kind: power.KindHistory}
		cfg.Scheduling = scheduling
		res, err := cluster.Run(prog, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("out-of-core matrix multiplication (Fig. 5), history-based multi-speed disks")
	base := run(false)
	fmt.Printf("\nwithout the framework:\n")
	report(base)
	sched := run(true)
	fmt.Printf("\nwith compiler-directed data access scheduling:\n")
	report(sched)

	fmt.Printf("\nenergy saved by the framework: %.1f%% (exec time %+.1f%%)\n",
		100*(1-sched.EnergyJ/base.EnergyJ),
		100*(sched.ExecTime.Seconds()-base.ExecTime.Seconds())/base.ExecTime.Seconds())
}

func report(r *cluster.Result) {
	fmt.Printf("  execution time %.1f s, disk energy %.1f J\n", r.ExecTime.Seconds(), r.EnergyJ)
	fmt.Printf("  idle periods: %d, ≤50ms %.1f%%, ≤500ms %.1f%%, mean %.0f ms\n",
		r.Idle.Count(), 100*r.Idle.FracAtMost(50), 100*r.Idle.FracAtMost(500),
		r.Idle.Mean().Milliseconds())
	if r.Scheduling {
		fmt.Printf("  prefetch: %d entries moved earlier, %d issued, buffer %d hits / %d misses\n",
			r.AgentMoved, r.AgentIssued, r.BufferHits, r.BufferMisses)
	}
}
