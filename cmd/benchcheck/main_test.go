package main

import (
	"strings"
	"testing"

	"sdds/internal/benchfmt"
)

func results(t *testing.T, stream string) benchfmt.Results {
	t.Helper()
	r, err := benchfmt.Parse(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCompareRules(t *testing.T) {
	baseline := results(t, `
BenchmarkHot-8    1000  100 ns/op  0 allocs/op
BenchmarkWarm-8   100   1000 ns/op  50 allocs/op
BenchmarkOther-8  10    500 ns/op
`)
	cases := []struct {
		name      string
		stream    string
		failures  int
		notes     int
		wantInMsg string
	}{
		{"clean", `
BenchmarkHot-8    1000  110 ns/op  0 allocs/op
BenchmarkWarm-8   100   900 ns/op  51 allocs/op
BenchmarkOther-8  10    500 ns/op
`, 0, 0, ""},
		{"ns regression", `
BenchmarkHot-8    1000  126 ns/op  0 allocs/op
BenchmarkWarm-8   100   1000 ns/op  50 allocs/op
BenchmarkOther-8  10    500 ns/op
`, 1, 0, "ns/op"},
		{"zero-alloc baseline broken", `
BenchmarkHot-8    1000  100 ns/op  1 allocs/op
BenchmarkWarm-8   100   1000 ns/op  50 allocs/op
BenchmarkOther-8  10    500 ns/op
`, 1, 0, "zero-alloc"},
		{"alloc growth", `
BenchmarkHot-8    1000  100 ns/op  0 allocs/op
BenchmarkWarm-8   100   1000 ns/op  60 allocs/op
BenchmarkOther-8  10    500 ns/op
`, 1, 0, "allocs/op"},
		{"missing benchmark", `
BenchmarkHot-8    1000  100 ns/op  0 allocs/op
BenchmarkWarm-8   100   1000 ns/op  50 allocs/op
`, 1, 0, "missing"},
		{"improvement notes only", `
BenchmarkHot-8    1000  50 ns/op  0 allocs/op
BenchmarkWarm-8   100   1000 ns/op  50 allocs/op
BenchmarkOther-8  10    500 ns/op
`, 0, 1, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			failures, notes := compare(baseline, results(t, tc.stream), 0.25)
			if len(failures) != tc.failures {
				t.Fatalf("failures = %v, want %d", failures, tc.failures)
			}
			if len(notes) != tc.notes {
				t.Fatalf("notes = %v, want %d", notes, tc.notes)
			}
			if tc.wantInMsg != "" && !strings.Contains(strings.Join(failures, "\n"), tc.wantInMsg) {
				t.Fatalf("failures %v missing %q", failures, tc.wantInMsg)
			}
		})
	}
}

// Extra benchmarks in the current run (new, not yet recorded) are not an
// error — only baseline coverage is enforced.
func TestCompareIgnoresNewBenchmarks(t *testing.T) {
	baseline := results(t, "BenchmarkA-8 10 100 ns/op")
	cur := results(t, "BenchmarkA-8 10 100 ns/op\nBenchmarkNew-8 10 5 ns/op")
	if failures, _ := compare(baseline, cur, 0.25); len(failures) != 0 {
		t.Fatalf("failures = %v", failures)
	}
}
