// Package harness regenerates every table and figure of the paper's
// evaluation (§V): the Table III application baseline, the idle-period CDFs
// of Fig. 12(a)/(b), the normalized-energy bars of Fig. 12(c)/(d), the
// performance-degradation bars of Fig. 13(a)/(b), and the sensitivity
// sweeps of Fig. 13(c)/(d), Fig. 14(a)/(b) and the storage-cache paragraph
// of §V-D. Each experiment is a named, self-contained artifact shared by
// cmd/sddstables and the benchmark harness in bench_test.go.
//
// Execution goes through a Session: the session derives the complete set
// of distinct cluster configurations an experiment batch needs (its run
// plan), fans the simulations out over a bounded worker pool, and caches
// every result so overlapping experiments never simulate the same
// configuration twice. Experiment.Run and the exported per-experiment
// functions (Table3, Fig12a, ...) are thin wrappers over a process-wide
// DefaultSession.
package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"sdds/internal/cluster"
	"sdds/internal/fault"
	"sdds/internal/metrics"
	"sdds/internal/power"
	"sdds/internal/strutil"
	"sdds/internal/workloads"
)

// Config scopes a harness run.
type Config struct {
	// Scale multiplies workload trip counts (1.0 = full evaluation size;
	// benchmarks use smaller scales).
	Scale float64
	// Apps restricts the applications (nil = all six).
	Apps []string
	// Seed feeds the cluster simulations.
	Seed int64
	// Faults, when non-nil, attaches the deterministic fault injector to
	// every cluster run. The canonical spec is part of the run cache key,
	// so fault-free and injected runs never alias.
	Faults *fault.Config
}

// DefaultConfig runs everything at full scale.
func DefaultConfig() Config { return Config{Scale: 1.0, Seed: 1} }

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Apps) == 0 {
		c.Apps = workloads.Names()
	}
	return c
}

// Validate reports the first problem with the config (unknown application
// names, with suggestions), or nil. The zero value is valid (defaults
// apply).
func (c Config) Validate() error {
	if c.Scale < 0 {
		return fmt.Errorf("harness: scale %v must be positive", c.Scale)
	}
	for _, app := range c.Apps {
		if _, err := workloads.ByName(app); err != nil {
			return err
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Result of one experiment: a title, column headers and rows, pre-rendered
// by Render.
type Result struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	// Notes carries shape observations (e.g. averages) printed after the
	// table.
	Notes []string
	// Chart, when non-nil, renders the result as the paper's bar figure.
	Chart *metrics.BarChart
}

// Render returns the printable experiment output.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	b.WriteString(metrics.Table(r.Headers, r.Rows))
	if r.Chart != nil {
		b.WriteByte('\n')
		b.WriteString(r.Chart.Render())
	}
	for _, n := range r.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// Experiment is a runnable paper artifact. Its run function renders the
// result from a Session's cache; its plan function enumerates the cluster
// configurations the run needs, letting the session execute them in
// parallel before rendering.
type Experiment struct {
	ID    string
	Title string
	run   func(ctx context.Context, s *Session, c Config) (*Result, error)
	plan  func(c Config) []runSpec
}

// Run executes the experiment on the process-wide default session.
// It is a compatibility wrapper around RunContext.
func (e Experiment) Run(c Config) (*Result, error) {
	return e.RunContext(context.Background(), c)
}

// RunContext executes the experiment on the process-wide default session,
// honouring cancellation. For an isolated cache or a custom worker bound
// use Session.Run instead.
func (e Experiment) RunContext(ctx context.Context, c Config) (*Result, error) {
	return DefaultSession().Run(ctx, e, c)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table2", Title: "Table II: main experimental parameters", run: table2},
		{ID: "table3", Title: "Table III: application programs (Default Scheme baseline)", run: table3, plan: planBaselines},
		{ID: "fig12a", Title: "Fig. 12(a): CDF of idle periods without the scheme", run: fig12a, plan: planCDF(false)},
		{ID: "fig12b", Title: "Fig. 12(b): CDF of idle periods with the scheme", run: fig12b, plan: planCDF(true)},
		{ID: "fig12c", Title: "Fig. 12(c): normalized energy without the scheme", run: fig12c, plan: planPolicies(false)},
		{ID: "fig12d", Title: "Fig. 12(d): normalized energy with the scheme", run: fig12d, plan: planPolicies(true)},
		{ID: "fig13a", Title: "Fig. 13(a): performance degradation without the scheme", run: fig13a, plan: planPolicies(false)},
		{ID: "fig13b", Title: "Fig. 13(b): performance degradation with the scheme", run: fig13b, plan: planPolicies(true)},
		{ID: "fig13c", Title: "Fig. 13(c): energy reduction vs number of I/O nodes", run: fig13cDef.run, plan: fig13cDef.specs},
		{ID: "fig13d", Title: "Fig. 13(d): energy reduction vs delta", run: fig13dDef.run, plan: fig13dDef.specs},
		{ID: "fig14a", Title: "Fig. 14(a): energy reduction vs theta", run: fig14aDef.run, plan: fig14aDef.specs},
		{ID: "fig14b", Title: "Fig. 14(b): performance improvement vs theta", run: fig14b, plan: planFig14b},
		{ID: "cachesens", Title: "Sec. V-D: storage-cache capacity sensitivity", run: cacheSensDef.run, plan: cacheSensDef.specs},
		{ID: "compile", Title: "Sec. V-A: compilation (scheduling pass) cost", run: compileCost},
		{ID: "oracle", Title: "Oracle prediction upper bound (ablation)", run: oracle, plan: planOracle},
		{ID: "palru", Title: "Power-aware storage-cache replacement (extension)", run: palruCache, plan: planPALRU},
		{ID: "ablations", Title: "Design ablations (ordering, weights, vertical range)", run: ablations},
	}
}

// IDs returns every experiment id in paper order.
func IDs() []string {
	exps := All()
	out := make([]string, len(exps))
	for i, e := range exps {
		out[i] = e.ID
	}
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := IDs()
	sort.Strings(ids)
	if sug := strutil.Suggest(id, ids); len(sug) > 0 {
		return Experiment{}, fmt.Errorf("harness: unknown experiment %q (did you mean %s?)",
			id, strings.Join(sug, " or "))
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %v)", id, ids)
}

// MemoSize reports how many distinct configurations the default session
// has simulated in this process.
//
// Deprecated: use Session.MemoSize on an explicit session.
func MemoSize() int { return DefaultSession().MemoSize() }

// runOne resolves one (app × policy × scheme) configuration under the
// default cluster config through the session cache.
func runOne(ctx context.Context, s *Session, c Config, app string, kind power.Kind, scheduling bool) (*cluster.Result, error) {
	res, _, err := s.run(ctx, c, defaultSpec(app, kind, scheduling))
	return res, err
}

// baselineSet caches the Default Scheme run for every app.
type baselineSet struct {
	byApp map[string]*cluster.Result
}

func runBaselines(ctx context.Context, s *Session, c Config) (*baselineSet, error) {
	out := &baselineSet{byApp: make(map[string]*cluster.Result, len(c.Apps))}
	for _, app := range c.Apps {
		res, err := runOne(ctx, s, c, app, power.KindDefault, false)
		if err != nil {
			return nil, err
		}
		out.byApp[app] = res
	}
	return out, nil
}

// planBaselines plans the Default Scheme run for every app.
func planBaselines(c Config) []runSpec {
	out := make([]runSpec, 0, len(c.Apps))
	for _, app := range c.Apps {
		out = append(out, defaultSpec(app, power.KindDefault, false))
	}
	return out
}

// planCDF plans the default-policy runs of the idle CDFs.
func planCDF(scheduling bool) func(Config) []runSpec {
	return func(c Config) []runSpec {
		out := make([]runSpec, 0, len(c.Apps))
		for _, app := range c.Apps {
			out = append(out, defaultSpec(app, power.KindDefault, scheduling))
		}
		return out
	}
}

// planPolicies plans the baselines plus every managed policy at the given
// scheduling mode (the energy and degradation figures).
func planPolicies(scheduling bool) func(Config) []runSpec {
	return func(c Config) []runSpec {
		out := planBaselines(c)
		for _, app := range c.Apps {
			for _, k := range power.ManagedKinds() {
				out = append(out, defaultSpec(app, k, scheduling))
			}
		}
		return out
	}
}

// Compatibility wrappers: each exported experiment function delegates to
// the default session (parallel execution included).

func runCompat(id string, c Config) (*Result, error) {
	e, err := ByID(id)
	if err != nil {
		return nil, err
	}
	return DefaultSession().Run(context.Background(), e, c)
}

// Table2 dumps the default configuration, mirroring Table II.
func Table2(c Config) (*Result, error) { return runCompat("table2", c) }

// Table3 reports the per-application Default Scheme baseline.
func Table3(c Config) (*Result, error) { return runCompat("table3", c) }

// Fig12a is the idle-period CDF without the scheme.
func Fig12a(c Config) (*Result, error) { return runCompat("fig12a", c) }

// Fig12b is the idle-period CDF with the scheme.
func Fig12b(c Config) (*Result, error) { return runCompat("fig12b", c) }

// Fig12c is normalized energy per policy without the scheme.
func Fig12c(c Config) (*Result, error) { return runCompat("fig12c", c) }

// Fig12d is normalized energy per policy with the scheme.
func Fig12d(c Config) (*Result, error) { return runCompat("fig12d", c) }

// Fig13a is performance degradation without the scheme.
func Fig13a(c Config) (*Result, error) { return runCompat("fig13a", c) }

// Fig13b is performance degradation with the scheme.
func Fig13b(c Config) (*Result, error) { return runCompat("fig13b", c) }

// Fig13c sweeps the number of I/O nodes.
func Fig13c(c Config) (*Result, error) { return runCompat("fig13c", c) }

// Fig13d sweeps the vertical reuse range δ.
func Fig13d(c Config) (*Result, error) { return runCompat("fig13d", c) }

// Fig14a sweeps θ for energy.
func Fig14a(c Config) (*Result, error) { return runCompat("fig14a", c) }

// Fig14b sweeps θ for performance improvement over θ=2.
func Fig14b(c Config) (*Result, error) { return runCompat("fig14b", c) }

// CacheSens varies the per-node storage-cache capacity (§V-D).
func CacheSens(c Config) (*Result, error) { return runCompat("cachesens", c) }

// CompileCost measures the wall-clock cost of the compiler pass per app.
func CompileCost(c Config) (*Result, error) { return runCompat("compile", c) }

// Oracle compares history-based prediction against an oracle fed true idle
// lengths (ablation).
func Oracle(c Config) (*Result, error) { return runCompat("oracle", c) }

// PALRUCache compares plain LRU against the power-aware PA-LRU variant.
func PALRUCache(c Config) (*Result, error) { return runCompat("palru", c) }

// Ablations quantifies the §IV-B design choices on the scheduler itself.
func Ablations(c Config) (*Result, error) { return runCompat("ablations", c) }
