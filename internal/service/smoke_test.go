package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServiceSmokeBinary is the end-to-end daemon smoke test behind
// `make service-smoke`: build the real sddsd binary, start it, submit a
// run over HTTP, poll /v1/status until it resolves, hit /v1/doctor, then
// SIGTERM and require a clean drained exit.
func TestServiceSmokeBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon; skipped in -short")
	}
	if runtime.GOOS == "windows" {
		t.Skip("signal-driven shutdown test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "sddsd")
	build := exec.Command("go", "build", "-o", bin, "sdds/cmd/sddsd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building sddsd: %v\n%s", err, out)
	}

	storePath := filepath.Join(dir, "store.jsonl")
	addrFile := filepath.Join(dir, "addr")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-store", storePath,
		"-workers", "2",
		"-drain", "30s")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var waitErr error
	exited := make(chan struct{})
	go func() { waitErr = cmd.Wait(); close(exited) }()
	defer func() {
		select {
		case <-exited:
		default:
			cmd.Process.Kill()
			<-exited
		}
	}()

	// The daemon writes its resolved address once the listener is up.
	var base string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(20 * time.Millisecond) {
		if buf, err := os.ReadFile(addrFile); err == nil && len(buf) > 0 {
			base = "http://" + strings.TrimSpace(string(buf))
			break
		}
		select {
		case <-exited:
			t.Fatalf("daemon exited during startup: %v\n%s", waitErr, stderr.String())
		default:
		}
	}
	if base == "" {
		t.Fatalf("daemon never wrote %s\n%s", addrFile, stderr.String())
	}

	// Submit one small run.
	body, _ := json.Marshal(map[string]any{"app": "sar", "scale": 0.02, "seed": 7})
	resp, err := http.Post(base+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/runs: %v\n%s", err, stderr.String())
	}
	var run struct {
		Key    string          `json:"key"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	err = json.NewDecoder(resp.Body).Decode(&run)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || len(run.Result) == 0 {
		t.Fatalf("run: status %d err %v body %+v", resp.StatusCode, err, run)
	}

	// Poll /v1/status until the run is accounted for.
	var st struct {
		Simulated    int64 `json:"simulated"`
		InFlight     int   `json:"inflight"`
		StoreEntries int   `json:"store_entries"`
	}
	for deadline := time.Now().Add(10 * time.Second); ; time.Sleep(50 * time.Millisecond) {
		resp, err := http.Get(base + "/v1/status")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Simulated == 1 && st.InFlight == 0 && st.StoreEntries == 1 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("status never settled: %+v", st)
		}
	}

	// Doctor must report ok on a healthy store.
	resp, err = http.Get(base + "/v1/doctor")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Status string `json:"status"`
	}
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil || doc.Status != "ok" {
		t.Fatalf("doctor: %+v (err %v)", doc, err)
	}

	// Clean shutdown on SIGTERM.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-exited:
		if waitErr != nil {
			t.Fatalf("daemon exited uncleanly: %v\n%s", waitErr, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit within 30s of SIGTERM\n%s", stderr.String())
	}
}
