package metrics

import (
	"strings"
	"testing"

	"sdds/internal/sim"
)

// Zero-duration runs: every normalization helper must degrade to 0 rather
// than divide by zero when the baseline run finished instantly (a 0-scale
// workload) or is missing entirely.
func TestReportZeroBaseline(t *testing.T) {
	if got := NormalizedEnergy(120, 0); got != 0 {
		t.Fatalf("NormalizedEnergy(_, 0) = %v, want 0", got)
	}
	if got := NormalizedEnergy(120, -3); got != 0 {
		t.Fatalf("NormalizedEnergy(_, -3) = %v, want 0", got)
	}
	if got := EnergySaving(120, 0); got != 0 {
		t.Fatalf("EnergySaving(_, 0) = %v, want 0", got)
	}
	if got := Degradation(5*sim.Second, 0); got != 0 {
		t.Fatalf("Degradation(_, 0) = %v, want 0", got)
	}
	if got := Improvement(5*sim.Second, 0); got != 0 {
		t.Fatalf("Improvement(_, 0) = %v, want 0", got)
	}
	// Both runs zero-duration: still 0, not NaN.
	if got := Degradation(0, 0); got != 0 {
		t.Fatalf("Degradation(0, 0) = %v, want 0", got)
	}
}

// A disk that never idles produces an empty histogram; every accessor must
// stay well-defined (the report path renders these unconditionally).
func TestIdleHistogramNeverIdles(t *testing.T) {
	h := NewIdleHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram: count=%d mean=%v max=%v, want zeros", h.Count(), h.Mean(), h.Max())
	}
	cdf := h.CDF()
	if len(cdf) != len(PaperBucketsMs) {
		t.Fatalf("CDF has %d points, want %d", len(cdf), len(PaperBucketsMs))
	}
	for _, p := range cdf {
		if p.Frac != 0 {
			t.Fatalf("empty histogram CDF at %gms = %v, want 0", p.BoundMs, p.Frac)
		}
	}
	if got := h.FracAtMost(1000); got != 0 {
		t.Fatalf("FracAtMost on empty histogram = %v, want 0", got)
	}
	if s := h.String(); !strings.Contains(s, "0 gaps") {
		t.Fatalf("String() = %q, want it to report 0 gaps", s)
	}
	// Negative gaps (clock skew artifacts) must be ignored, not recorded.
	h.Record(-sim.Second)
	if h.Count() != 0 {
		t.Fatal("negative gap was recorded")
	}
	// Merging two empties stays empty and error-free.
	if err := h.Merge(NewIdleHistogram()); err != nil || h.Count() != 0 {
		t.Fatalf("Merge of empties: err=%v count=%d", err, h.Count())
	}
	// Mismatched bucket layouts are an error, not silent corruption.
	if err := h.Merge(NewIdleHistogramWith([]float64{1, 2})); err == nil {
		t.Fatal("Merge accepted a histogram with different buckets")
	}
}

// Single-sample series: one gap still yields a monotone CDF ending at 1.
func TestIdleHistogramSingleSample(t *testing.T) {
	h := NewIdleHistogram()
	h.Record(30 * sim.Millisecond)
	if h.Count() != 1 || h.Mean() != 30*sim.Millisecond || h.Max() != 30*sim.Millisecond {
		t.Fatalf("count=%d mean=%v max=%v", h.Count(), h.Mean(), h.Max())
	}
	cdf := h.CDF()
	prev := 0.0
	for _, p := range cdf {
		if p.Frac < prev {
			t.Fatalf("CDF not monotone at %gms: %v < %v", p.BoundMs, p.Frac, prev)
		}
		prev = p.Frac
	}
	if last := cdf[len(cdf)-1]; last.Frac != 1 {
		t.Fatalf("final CDF point = %v, want 1", last.Frac)
	}
	if got := h.FracAtMost(10); got != 0 {
		t.Fatalf("FracAtMost(10) = %v, want 0 for a 30ms gap", got)
	}
	if got := h.FracAtMost(50); got != 1 {
		t.Fatalf("FracAtMost(50) = %v, want 1", got)
	}
}

func TestMeanEdgeCases(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{0.7}); got != 0.7 {
		t.Fatalf("Mean of single sample = %v, want 0.7", got)
	}
}

// Sparkline on single-sample and out-of-range inputs: one rune per sample,
// values clamped into [0, 1] instead of indexing out of bounds.
func TestSparklineEdgeCases(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Fatalf("Sparkline(nil) = %q, want empty", got)
	}
	single := Sparkline([]float64{1})
	if n := len([]rune(single)); n != 1 {
		t.Fatalf("single-sample sparkline has %d runes, want 1", n)
	}
	if single != "█" {
		t.Fatalf("Sparkline([1]) = %q, want full block", single)
	}
	clamped := Sparkline([]float64{-5, 7})
	if clamped != "▁█" {
		t.Fatalf("Sparkline([-5, 7]) = %q, want clamped to %q", clamped, "▁█")
	}
}

// BarChart with a single group/series cell, an over-full value, and a
// negative one: exactly one row, bars clamped to the frame.
func TestBarChartSingleCellAndClamp(t *testing.T) {
	c := &BarChart{
		Groups: []string{"sar"},
		Series: []string{"history"},
		Values: [][]float64{{2.5}}, // over full scale
		Width:  10,
	}
	out := c.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("single-cell chart rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], strings.Repeat("#", 10)) {
		t.Fatalf("over-full bar not clamped to width 10: %q", lines[0])
	}
	c.Values = [][]float64{{-0.2}}
	out = c.Render()
	if strings.Contains(out, "#") {
		t.Fatalf("negative value drew a bar: %q", out)
	}
	// Ragged Values (fewer rows than groups) must truncate, not panic.
	c.Groups = []string{"sar", "madbench2"}
	c.Series = []string{"history"}
	c.Values = [][]float64{{0.5}}
	if out := c.Render(); !strings.Contains(out, "sar/history") || strings.Contains(out, "madbench2") {
		t.Fatalf("ragged chart render:\n%s", out)
	}
}

// Table with no rows still renders a header and rule; a single short row
// pads to the header width.
func TestTableEdgeCases(t *testing.T) {
	out := Table([]string{"Metric", "Value"}, nil)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("empty table rendered %d lines, want header+rule:\n%s", len(lines), out)
	}
	out = Table([]string{"Metric", "Value"}, [][]string{{"x", "1"}})
	if !strings.Contains(out, "x") || !strings.Contains(out, "1") {
		t.Fatalf("single-row table:\n%s", out)
	}
}
