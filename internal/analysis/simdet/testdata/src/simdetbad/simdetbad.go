// Package simdetbad is the simdet analyzer fixture: each flagged line
// carries a want comment; the allowed patterns (seeded RNG, per-key map
// updates, integer counters) and the ignore path carry none.
package simdetbad

import (
	"math/rand"
	"time"
)

type engine struct{}

func (e *engine) ScheduleFunc(d int64, label string, fn func()) {}

type state struct {
	total float64
	order []int
	last  int64
}

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now in a simulation package`
}

func globalRand() int {
	return rand.Intn(6) // want `global math/rand\.Intn is randomly seeded`
}

func seededRand(r *rand.Rand) int {
	return r.Intn(6) // engine-style seeded RNG: allowed
}

func deterministicSource() *rand.Rand {
	return rand.New(rand.NewSource(42)) // fixed-seed constructor: allowed
}

func scheduleInMapOrder(e *engine, pending map[int]int64) {
	for _, d := range pending {
		e.ScheduleFunc(d, "bad", func() {}) // want `call to ScheduleFunc inside map iteration`
	}
}

func mutateInMapOrder(s *state, m map[int]float64) {
	for _, v := range m {
		s.total += v // want `float accumulation into outer state inside map iteration`
	}
	for k := range m {
		s.last = int64(k) // want `assignment to outer state inside map iteration`
	}
	for k := range m {
		s.order = append(s.order, k) // want `append to s inside map iteration`
	}
}

func commutativeMapUpdates(m map[int]float64) (int, float64) {
	count := 0
	copied := make(map[int]float64, len(m))
	perKey := make(map[int]float64, len(m))
	for k, v := range m {
		copied[k] = v  // per-key copy: order-free, allowed
		perKey[k] += v // per-key accumulate: order-free, allowed
		count++        // integer counter: exact, allowed
	}
	var sum float64
	for _, v := range m {
		sum += v //sddsvet:ignore simdet -- fixture: order drift documented as acceptable here
	}
	return count, sum
}

func sliceRangeIsFine(s *state, xs []float64) {
	for _, v := range xs {
		s.total += v // slice order is deterministic: allowed
	}
}
