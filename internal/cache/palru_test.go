package cache

import (
	"testing"
	"testing/quick"
)

func TestPALRUValidation(t *testing.T) {
	if _, err := NewPALRU(0, nil, 4); err == nil {
		t.Fatal("zero capacity accepted")
	}
	c, err := NewPALRU(100, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.lookahead != 8 {
		t.Fatalf("default lookahead = %d, want 8", c.lookahead)
	}
}

func TestPALRUBehavesAsLRUWithoutCallback(t *testing.T) {
	c, _ := NewPALRU(100, nil, 4)
	for i := int64(0); i < 4; i++ {
		c.Put(Key{Block: i}, 25)
	}
	evicted, ok := c.Put(Key{Block: 9}, 25)
	if !ok || len(evicted) != 1 || evicted[0] != (Key{Block: 0}) {
		t.Fatalf("evicted = %v, %v; want strict LRU victim", evicted, ok)
	}
	if _, ok := c.Get(Key{Block: 9}); !ok {
		t.Fatal("inserted block missing")
	}
	hits, misses, evictions := c.Stats()
	if hits != 1 || misses != 0 || evictions != 1 {
		t.Fatalf("stats = %d %d %d", hits, misses, evictions)
	}
}

func TestPALRUProtectsSleepingDisks(t *testing.T) {
	// Blocks on even block numbers live on a sleeping disk; odd are awake.
	active := func(k Key) bool { return k.Block%2 == 1 }
	c, _ := NewPALRU(100, active, 8)
	// LRU order (oldest first): 0 (sleeping), 1 (awake), 2 (sleeping), 3.
	for i := int64(0); i < 4; i++ {
		c.Put(Key{Block: i}, 25)
	}
	evicted, _ := c.Put(Key{Block: 11}, 25)
	if len(evicted) != 1 || evicted[0] != (Key{Block: 1}) {
		t.Fatalf("evicted = %v, want block 1 (oldest awake-disk block)", evicted)
	}
	if c.Protections() != 1 {
		t.Fatalf("protections = %d", c.Protections())
	}
	// Block 0 (sleeping disk) survived despite being strictly LRU.
	if !c.Contains(Key{Block: 0}) {
		t.Fatal("sleeping-disk block evicted")
	}
}

func TestPALRUFallsBackWhenAllSleeping(t *testing.T) {
	c, _ := NewPALRU(100, func(Key) bool { return false }, 4)
	for i := int64(0); i < 4; i++ {
		c.Put(Key{Block: i}, 25)
	}
	evicted, _ := c.Put(Key{Block: 9}, 25)
	if len(evicted) != 1 || evicted[0] != (Key{Block: 0}) {
		t.Fatalf("evicted = %v, want strict LRU fallback", evicted)
	}
}

func TestPALRURemoveAndUsed(t *testing.T) {
	c, _ := NewPALRU(100, nil, 4)
	c.Put(Key{Block: 1}, 40)
	if !c.Remove(Key{Block: 1}) || c.Used() != 0 || c.Len() != 0 {
		t.Fatalf("remove bookkeeping: used=%d len=%d", c.Used(), c.Len())
	}
	if c.Remove(Key{Block: 1}) {
		t.Fatal("double remove succeeded")
	}
}

// Property: PALRU never exceeds capacity and Used matches the sum of
// resident entries, regardless of the activity pattern.
func TestPropertyPALRUCapacity(t *testing.T) {
	type op struct {
		Block  int8
		Size   uint8
		Active bool
	}
	f := func(ops []op) bool {
		flags := map[int64]bool{}
		c, err := NewPALRU(200, func(k Key) bool { return flags[k.Block] }, 4)
		if err != nil {
			return false
		}
		for _, o := range ops {
			b := int64(o.Block % 16)
			if b < 0 {
				b = -b
			}
			flags[b] = o.Active
			c.Put(Key{Block: b}, int64(o.Size%60)+1)
			if c.Used() > c.Capacity() || c.Used() < 0 {
				return false
			}
		}
		var sum int64
		for b := int64(0); b < 16; b++ {
			if s, ok := c.Get(Key{Block: b}); ok {
				sum += s
			}
		}
		return sum == c.Used()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
