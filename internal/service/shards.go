package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"sdds/internal/diag"
	"sdds/internal/harness"
	"sdds/internal/shard"
)

// Sharded sweeps: the /v1/shards endpoint family turns sddsd into a
// lease-based coordinator. A submitter posts the deterministically
// ordered run plan; the coordinator partitions it into content-keyed
// shards and hands them to sddsworker processes under expiring leases.
// Every completed run is committed to the same content-addressed store
// that local runs use, so exactly-once semantics fall out of store
// immutability rather than coordination: late double-completions dedup
// byte-identically, and a mismatch surfaces as the determinism
// invariant broken. If no worker ever registers within LocalGrace, the
// sweep degrades gracefully to local single-process execution through
// the very same lease machinery.

// handleSubmitShards answers POST /v1/shards/sweeps: normalize and
// dedup the submitted plan, resolve already-stored requests without
// sharding them, partition the rest, and start the coordinator. One
// sharded sweep runs at a time; submitting while one is active is a
// conflict.
func (s *Server) handleSubmitShards(w http.ResponseWriter, r *http.Request) {
	var sub shard.SubmitRequest
	if err := decodeJSON(r, &sub); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if len(sub.Requests) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty request plan"})
		return
	}
	seen := make(map[string]bool)
	var all, pending []harness.Request
	resumed := 0
	for i, r := range sub.Requests {
		norm, err := r.Normalize()
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: fmt.Sprintf("request %d (%s): %v", i, r.App, err)})
			return
		}
		key := norm.ContentKey()
		if seen[key] {
			continue
		}
		seen[key] = true
		all = append(all, norm)
		s.mu.Lock()
		s.seen[key] = norm
		s.mu.Unlock()
		// A request the session already resolved (this lifetime or loaded
		// from the store) never reaches a shard.
		if _, rerr, ok := s.sess.Cached(norm); ok && rerr == nil {
			resumed++
			continue
		}
		pending = append(pending, norm)
	}
	size := sub.ShardSize
	if size <= 0 {
		size = s.opts.ShardSize
	}
	shards := shard.Partition(pending, size)

	s.shardMu.Lock()
	if c := s.coord; c != nil {
		select {
		case <-c.Done():
			// Finished: the new sweep replaces it.
		default:
			s.shardMu.Unlock()
			writeJSON(w, http.StatusConflict,
				errorResponse{Error: "a sharded sweep is already active"})
			return
		}
	}
	coord := shard.NewCoordinator(shards, shard.Options{
		LeaseTTL:    s.opts.LeaseTTL,
		MaxAttempts: s.opts.MaxShardAttempts,
		Commit:      s.commitShardResult,
		OnEvent:     s.onShardEvent,
		Requests:    len(all),
		Resumed:     resumed,
	})
	s.coord = coord
	s.shardMu.Unlock()

	s.regMu.Lock()
	s.shardSweeps.Inc()
	s.regMu.Unlock()
	if s.log != nil {
		s.log.Info("shard sweep submitted", "requests", len(all),
			"resumed", resumed, "shards", len(shards), "shard_size", size)
	}
	if s.opts.LocalGrace >= 0 {
		go s.localFallback(coord)
	}
	writeJSON(w, http.StatusOK, shard.SubmitResponse{
		Requests: len(all), Resumed: resumed, Shards: len(shards),
	})
}

// localFallback degrades a sharded sweep to local single-process
// execution when no worker registers within the grace period: an
// in-process shard.Worker drains the coordinator through the same lease
// machinery remote workers use, so a worker arriving late simply shares
// the sweep — the store dedups any overlap.
func (s *Server) localFallback(coord *shard.Coordinator) {
	t := time.NewTimer(s.opts.LocalGrace)
	defer t.Stop()
	select {
	case <-s.life.Done():
		return
	case <-coord.Done():
		return
	case <-t.C:
	}
	if coord.WorkerCount() > 0 {
		return
	}
	if s.log != nil {
		s.log.Info("no worker registered; degrading shard sweep to local execution",
			"grace", s.opts.LocalGrace.String())
	}
	w := &shard.Worker{
		API:          shard.Local(coord),
		Exec:         s.execRequest,
		Name:         "local-fallback",
		ExitWhenDone: true,
		Log:          s.log,
	}
	if err := w.Run(s.life); err != nil && !errors.Is(err, context.Canceled) {
		if s.log != nil {
			s.log.Error("local fallback worker failed", "err", err.Error())
		}
	}
}

// execRequest runs one request through the session (pool-bounded,
// compile cache and fault plumbing intact) for the local fallback
// worker.
func (s *Server) execRequest(ctx context.Context, req harness.Request) (harness.RunRecord, error) {
	res, _, err := s.sess.RunRequest(ctx, req)
	if err != nil {
		return harness.RunRecord{}, err
	}
	return harness.NewRunRecord(res), nil
}

// commitShardResult persists one worker-produced run: durably into the
// journal (first write wins; identical re-commits dedup; mismatches are
// the determinism invariant broken) and into the session cache so
// GET /v1/runs and later local sweeps serve it as a hit.
func (s *Server) commitShardResult(req harness.Request, rec harness.RunRecord) (bool, error) {
	added, err := s.journal.AppendRecord(req, rec)
	if err != nil {
		return false, err
	}
	res, err := rec.Restore(req)
	if err != nil {
		return added, err
	}
	if _, err := s.sess.Install(req, res); err != nil {
		return added, err
	}
	s.mu.Lock()
	s.seen[req.ContentKey()] = req
	s.mu.Unlock()
	return added, nil
}

// onShardEvent fans coordinator lifecycle transitions into the service
// counters, the SSE stream, the structured log, and — for a poisoned
// shard — a diagnostics bundle. The coordinator serializes calls and
// never holds its mutex here.
func (s *Server) onShardEvent(e shard.Event) {
	s.regMu.Lock()
	switch e.Kind {
	case shard.EventLeased:
		s.shardsLeased.Inc()
	case shard.EventCompleted:
		s.shardsCompleted.Inc()
	case shard.EventRequeued:
		s.shardsRequeued.Inc()
	case shard.EventDuplicate:
		s.shardsDuplicate.Inc()
	case shard.EventPoisoned:
		s.shardsPoisoned.Inc()
	}
	s.regMu.Unlock()
	s.hub.broadcast(Event{
		Shard: e.ShardID, ShardEvent: e.Kind,
		Worker: e.Worker, Attempts: e.Attempts, Err: e.Err,
	})
	if s.log != nil {
		s.log.Info("shard "+e.Kind, "shard", e.ShardID,
			"worker", e.Worker, "attempts", e.Attempts, "err", e.Err)
	}
	if e.Kind == shard.EventPoisoned && s.diag != nil {
		if _, err := s.diag.Capture(diag.Capture{
			Trigger:      diag.TriggerShard,
			Key:          "shard " + e.ShardID,
			Err:          errors.New(e.Err),
			CompileCache: s.sess.CompileCacheStats(),
			JournalTail:  s.journal.Tail(s.opts.Tail),
		}); err != nil && s.log != nil {
			s.log.Error("shard poison capture failed", "shard", e.ShardID, "err", err.Error())
		}
	}
}

// activeCoord returns the current sweep coordinator, nil when none was
// ever submitted this lifetime.
func (s *Server) activeCoord() *shard.Coordinator {
	s.shardMu.Lock()
	defer s.shardMu.Unlock()
	return s.coord
}

// handleShardLease answers POST /v1/shards/lease. With no active sweep,
// workers are told to wait — a worker may outlive the sweep that
// spawned it and poll for the next one.
func (s *Server) handleShardLease(w http.ResponseWriter, r *http.Request) {
	var req shard.LeaseRequest
	if err := decodeJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	coord := s.activeCoord()
	if coord == nil {
		writeJSON(w, http.StatusOK, shard.LeaseResponse{Status: shard.StatusWait})
		return
	}
	writeJSON(w, http.StatusOK, coord.Lease(req.Worker))
}

// handleShardRenew answers POST /v1/shards/renew. With no active sweep
// the lease is trivially gone: done tells the worker to drop the shard.
func (s *Server) handleShardRenew(w http.ResponseWriter, r *http.Request) {
	var req shard.RenewRequest
	if err := decodeJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	coord := s.activeCoord()
	if coord == nil {
		writeJSON(w, http.StatusOK, shard.RenewResponse{Status: shard.StatusDone})
		return
	}
	writeJSON(w, http.StatusOK, coord.Renew(req.Worker, req.ShardID, req.LeaseID))
}

// handleShardComplete answers POST /v1/shards/complete. A completion
// arriving after the coordinator is gone (service restarted mid-sweep)
// is still committed straight to the store — the work is never thrown
// away, and the resubmitted sweep resumes past it.
func (s *Server) handleShardComplete(w http.ResponseWriter, r *http.Request) {
	var req shard.CompleteRequest
	if err := decodeJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	coord := s.activeCoord()
	if coord == nil {
		stored := 0
		for _, e := range req.Results {
			added, err := s.commitShardResult(e.Request, e.Result)
			if err != nil {
				writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
				return
			}
			if added {
				stored++
			}
		}
		writeJSON(w, http.StatusOK, shard.CompleteResponse{Status: shard.StatusDuplicate, Stored: stored})
		return
	}
	resp, err := coord.Complete(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleShardStatus answers GET /v1/shards/status: the coordinator
// snapshot, or an inactive zero snapshot when no sweep was submitted.
func (s *Server) handleShardStatus(w http.ResponseWriter, r *http.Request) {
	coord := s.activeCoord()
	if coord == nil {
		writeJSON(w, http.StatusOK, shard.Snapshot{})
		return
	}
	writeJSON(w, http.StatusOK, coord.Snapshot())
}
