package core

import (
	"fmt"
	"sort"

	"sdds/internal/stripe"
)

// Entry is one row of a process's scheduling table: at slot Slot, issue the
// access identified by AccessID (whose original program point was Orig).
type Entry struct {
	Slot     int
	AccessID int
	Orig     int
	Length   int
	Sig      stripe.Signature
}

// Schedule is the output of the scheduler: the scheduling point of every
// access plus the per-process tables the runtime scheduler loads.
type Schedule struct {
	params Params
	points map[int]int     // access ID → slot
	access map[int]*Access // access ID → access
	tables map[int][]Entry // proc → entries sorted by slot
}

func newSchedule(p Params, capHint int) *Schedule {
	return &Schedule{
		params: p,
		points: make(map[int]int, capHint),
		access: make(map[int]*Access, capHint),
		tables: make(map[int][]Entry),
	}
}

func (s *Schedule) assign(a *Access, point int) {
	s.points[a.ID] = point
	s.access[a.ID] = a
	s.tables[a.Proc] = append(s.tables[a.Proc], Entry{
		Slot:     point,
		AccessID: a.ID,
		Orig:     a.Orig,
		Length:   a.Length,
		Sig:      a.Sig,
	})
}

func (s *Schedule) finalize() {
	for proc := range s.tables {
		t := s.tables[proc]
		sort.Slice(t, func(i, j int) bool {
			if t[i].Slot != t[j].Slot {
				return t[i].Slot < t[j].Slot
			}
			return t[i].AccessID < t[j].AccessID
		})
	}
}

// PointOf returns the scheduling point of an access, and whether the access
// was scheduled.
func (s *Schedule) PointOf(accessID int) (int, bool) {
	p, ok := s.points[accessID]
	return p, ok
}

// Len returns the number of scheduled accesses.
func (s *Schedule) Len() int { return len(s.points) }

// Procs returns the process ids that have table entries, ascending.
func (s *Schedule) Procs() []int {
	out := make([]int, 0, len(s.tables))
	for p := range s.tables {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Table returns process proc's scheduling table sorted by slot. The caller
// must not modify the returned slice.
func (s *Schedule) Table(proc int) []Entry { return s.tables[proc] }

// MovedEarlier returns the entries of proc whose scheduling point precedes
// their original point — exactly the accesses the runtime scheduler
// prefetches ("the scheduler only performs data accesses scheduled at much
// earlier iterations than their original points", §III).
func (s *Schedule) MovedEarlier(proc int) []Entry {
	var out []Entry
	for _, e := range s.tables[proc] {
		if e.Slot < e.Orig {
			out = append(out, e)
		}
	}
	return out
}

// ValidationReport summarizes the soft properties of a schedule.
type ValidationReport struct {
	// MaxPerNode is the worst per-I/O-node concurrency observed in any slot
	// (what θ bounds; the θ constraint is best-effort, falling back to
	// minimum-excess placement when unsatisfiable, so callers assert it).
	MaxPerNode int
	// ProcOverlaps counts (process, slot) pairs carrying more than one
	// access. Overlap only happens when a process's accesses are so
	// constrained that no conflict-free slot exists (e.g. two unavoidable
	// reads in one iteration); it is 0 for schedulable inputs.
	ProcOverlaps int
}

// Validate checks the hard invariant — every access is scheduled inside its
// slack — and reports the soft properties (per-node concurrency, forced
// same-process overlaps).
func (s *Schedule) Validate() (ValidationReport, error) {
	var rep ValidationReport
	type ps struct{ proc, slot int }
	seen := make(map[ps]bool)
	counts := make(map[int]map[int]int) // slot → node → count
	for id, point := range s.points {
		a := s.access[id]
		if point < a.Begin || point > a.End {
			return rep, fmt.Errorf("core: access %d scheduled at %d outside slack [%d,%d]", id, point, a.Begin, a.End)
		}
		if point+a.Length-1 > a.End && a.Length <= a.SlackLen() {
			return rep, fmt.Errorf("core: access %d (len %d) at %d overruns slack end %d", id, a.Length, point, a.End)
		}
		for k := 0; k < a.Length; k++ {
			slot := point + k
			if slot >= s.params.NumSlots {
				break
			}
			key := ps{a.Proc, slot}
			if _, dup := seen[key]; dup {
				rep.ProcOverlaps++
			}
			seen[key] = true
			m := counts[slot]
			if m == nil {
				m = make(map[int]int)
				counts[slot] = m //sddsvet:ignore detflow -- insert-once: stored only when absent; per-node counts update per-key
			}
			for _, n := range a.Sig.Nodes() {
				m[n]++
				if m[n] > rep.MaxPerNode {
					rep.MaxPerNode = m[n] //sddsvet:ignore detflow -- max reduction: result independent of visit order
				}
			}
		}
	}
	return rep, nil
}

// NodeActivations sums, over all slots, the number of distinct I/O nodes
// active in the slot. Packing accesses that share nodes into common slots
// lowers this total — the quantity the scheduling algorithm implicitly
// minimizes to lengthen idle periods.
func (s *Schedule) NodeActivations() int {
	active := make(map[int]stripe.Signature)
	for id, point := range s.points {
		a := s.access[id]
		for k := 0; k < a.Length; k++ {
			slot := point + k
			if slot >= s.params.NumSlots {
				break
			}
			g, ok := active[slot]
			if !ok {
				g = stripe.NewSignature(s.params.NumNodes)
				active[slot] = g //sddsvet:ignore detflow -- insert-once: stored only when absent; updates OR in place (commutative)
			}
			g.OrInPlace(a.Sig)
		}
	}
	total := 0
	for _, g := range active {
		total += g.Count()
	}
	return total
}

// ActiveSlotCount returns the number of slots with at least one scheduled
// access — fewer active slots means accesses were packed more tightly.
func (s *Schedule) ActiveSlotCount() int {
	active := make(map[int]bool)
	for id, point := range s.points {
		a := s.access[id]
		for k := 0; k < a.Length; k++ {
			slot := point + k
			if slot >= s.params.NumSlots {
				break
			}
			active[slot] = true
		}
	}
	return len(active)
}

// Assignment couples an access ID with its scheduling point — the minimal
// serializable form of one scheduling decision. The full Schedule (tables,
// access windows) is reconstructed from assignments plus the accesses
// themselves, which are a pure function of (program, options).
type Assignment struct {
	ID    int `json:"id"`
	Point int `json:"point"`
}

// Assignments returns every (access ID, point) pair sorted by access ID:
// the canonical order-independent rendering of the schedule used by the
// compile-artifact store.
func (s *Schedule) Assignments() []Assignment {
	out := make([]Assignment, 0, len(s.points))
	for id, p := range s.points {
		out = append(out, Assignment{ID: id, Point: p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ScheduledAccess pairs a (possibly re-anchored) access with its scheduling
// point when rebuilding a schedule from serialized assignments.
type ScheduledAccess struct {
	Access *Access
	Point  int
}

// NewScheduleFromAssignments rebuilds a schedule from serialized
// assignments. Each element must carry the access re-anchored into the
// same slot space the points are expressed in (full resolution after
// Rescale). The rebuild uses the same assign+finalize path as the
// scheduler itself, so a rebuilt schedule is bit-identical to the
// original — the property the artifact round-trip pin asserts.
func NewScheduleFromAssignments(p Params, assigns []ScheduledAccess) (*Schedule, error) {
	s := newSchedule(p, len(assigns))
	for _, sa := range assigns {
		if sa.Access == nil {
			return nil, fmt.Errorf("core: assignment with nil access")
		}
		if _, dup := s.points[sa.Access.ID]; dup {
			return nil, fmt.Errorf("core: duplicate assignment for access %d", sa.Access.ID)
		}
		s.assign(sa.Access, sa.Point)
	}
	s.finalize()
	return s, nil
}

// Rescale maps a schedule computed over coalesced slots (d iterations per
// unit, §IV-A) back to full-resolution slots: each scheduling point p
// becomes p·d, clamped into the access's full-resolution slack window
// supplied by slackOf. The returned schedule's tables and points are in
// full-resolution slots over numSlots total.
func (s *Schedule) Rescale(d, numSlots int, slackOf func(accessID int) (begin, end int)) *Schedule {
	if d <= 1 {
		return s
	}
	params := s.params
	params.NumSlots = numSlots
	out := newSchedule(params, len(s.points))
	for id, point := range s.points {
		a := s.access[id]
		begin, end := slackOf(id)
		full := point * d
		if full < begin {
			full = begin
		}
		if full > end {
			full = end
		}
		// Re-anchor the access to full resolution so Validate and
		// MovedEarlier reason in the same slot space.
		fa := *a
		fa.Begin = begin
		fa.End = end
		fa.Orig = end
		out.assign(&fa, full)
	}
	out.finalize()
	return out
}
