package diag

import (
	"testing"
	"time"
)

// TestWatchdogFlagsOutlier: after the warm-up window, a run far beyond
// the median is flagged; typical runs are not.
func TestWatchdogFlagsOutlier(t *testing.T) {
	w := NewWatchdog(4, 8)
	for i := 0; i < 8; i++ {
		if slow, _ := w.Observe(100 * time.Millisecond); slow {
			t.Fatalf("run %d flagged during warm-up", i)
		}
	}
	if slow, _ := w.Observe(120 * time.Millisecond); slow {
		t.Error("typical run flagged")
	}
	slow, median := w.Observe(1 * time.Second)
	if !slow {
		t.Error("10x-median run not flagged")
	}
	if median != 100*time.Millisecond {
		t.Errorf("median = %v, want 100ms", median)
	}
}

// TestWatchdogMedianRobustToOutliers: one slow run does not drag the
// baseline up — the next slow run is still flagged.
func TestWatchdogMedianRobustToOutliers(t *testing.T) {
	w := NewWatchdog(4, 8)
	for i := 0; i < 10; i++ {
		w.Observe(100 * time.Millisecond)
	}
	w.Observe(10 * time.Second) // straggler enters the window
	if slow, _ := w.Observe(1 * time.Second); !slow {
		t.Error("outlier poisoned the median baseline")
	}
}

// TestWatchdogWindowRolls: the window is bounded and adapts when the
// workload shifts to a uniformly slower regime.
func TestWatchdogWindowRolls(t *testing.T) {
	w := NewWatchdog(4, 8)
	for i := 0; i < watchdogWindow; i++ {
		w.Observe(10 * time.Millisecond)
	}
	// New regime: every run is 100ms. After the window fully rolls over,
	// 100ms is the median and must no longer be flagged.
	for i := 0; i < watchdogWindow; i++ {
		w.Observe(100 * time.Millisecond)
	}
	if slow, median := w.Observe(100 * time.Millisecond); slow {
		t.Errorf("watchdog did not adapt: median %v", median)
	}
}

// TestWatchdogDisarmed: nil watchdogs (including mult <= 0) never flag.
func TestWatchdogDisarmed(t *testing.T) {
	if w := NewWatchdog(0, 8); w != nil {
		t.Fatal("mult=0 returned an armed watchdog")
	}
	var w *Watchdog
	for i := 0; i < 100; i++ {
		if slow, median := w.Observe(time.Duration(i) * time.Hour); slow || median != 0 {
			t.Fatal("nil watchdog flagged")
		}
	}
	if w.Median() != 0 {
		t.Error("nil Median nonzero")
	}
}

// TestWatchdogMinSamples: no verdicts before the warm-up threshold.
func TestWatchdogMinSamples(t *testing.T) {
	w := NewWatchdog(2, 5)
	for i := 0; i < 4; i++ {
		w.Observe(time.Millisecond)
	}
	if slow, _ := w.Observe(time.Hour); slow {
		t.Error("flagged before minSamples observations existed")
	}
	if slow, _ := w.Observe(time.Hour); !slow {
		t.Error("not flagged after warm-up")
	}
}
