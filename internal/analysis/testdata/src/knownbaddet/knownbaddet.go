// Package knownbaddet extends the multichecker integration fixture into the
// summary-driven analyzers' territory: one detflow violation, one locksafe
// violation, and one deliberately stale suppression for the audit. The
// driver test points detflow's DetPackages and locksafe's CriticalRoots at
// this package.
package knownbaddet

import (
	"net/http"
	"sync"
	"time"
)

var mu sync.Mutex

var ch = make(chan int)

// criticalRoot stands in for Session.RunRequest: the locks it transitively
// acquires define locksafe's critical set.
func criticalRoot() int {
	mu.Lock()
	defer mu.Unlock()
	return 1
}

// detflow: wall clock directly in (test-scoped) deterministic code.
func stampDet() int64 {
	return time.Now().UnixNano()
}

// locksafe: parks on a channel receive while holding the critical lock.
func badHandler(w http.ResponseWriter, r *http.Request) {
	mu.Lock()
	defer mu.Unlock()
	<-ch
}

// ignoreaudit: nothing on this line or the next can trip hotalloc, so the
// audit must report the directive as stale.
//
//sddsvet:ignore hotalloc -- fixture: deliberately stale for the audit test
var answer = 42
