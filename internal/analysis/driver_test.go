package analysis_test

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"sdds/internal/analysis"
	"sdds/internal/analysis/all"
	"sdds/internal/analysis/floatorder"
	"sdds/internal/analysis/simdet"
)

// TestMulticheckerOnKnownBad runs the full analyzer suite — exactly as
// cmd/sddsvet does — over a fixture carrying one violation per analyzer plus
// one suppressed line, and checks the count, the output format, and that
// every analyzer contributed.
func TestMulticheckerOnKnownBad(t *testing.T) {
	defer override(t, regexp.MustCompile(`.`))()

	var buf bytes.Buffer
	n, err := analysis.Run(&buf, "../..", []string{"internal/analysis/testdata/src/knownbad"}, all.Analyzers)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// stamp (simdet), arm (hotalloc), keep (eventretain), reduce (simdet and
	// floatorder share the line); the suppressed function contributes nothing.
	if n != 5 {
		t.Fatalf("got %d findings, want 5:\n%s", n, out)
	}
	for _, a := range all.Analyzers {
		if !strings.Contains(out, ": "+a.Name+": ") {
			t.Errorf("no finding from %s in output:\n%s", a.Name, out)
		}
	}
	lineRE := regexp.MustCompile(`(?m)^internal/analysis/testdata/src/knownbad/knownbad\.go:\d+:\d+: \w+: .+$`)
	if got := len(lineRE.FindAllString(out, -1)); got != 5 {
		t.Errorf("%d lines match the file:line:col: analyzer: message format, want 5:\n%s", got, out)
	}
	if strings.Contains(out, "suppression") {
		t.Errorf("suppressed finding leaked into output:\n%s", out)
	}
}

// TestLoadSkipsTestdata proves ./... never descends into analyzer fixtures:
// they are violation-dense by design and must not pollute real runs.
func TestLoadSkipsTestdata(t *testing.T) {
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load(./...) found no packages")
	}
	for _, p := range pkgs {
		if strings.Contains(p.PkgPath, "testdata") {
			t.Errorf("Load(./...) descended into %s", p.PkgPath)
		}
	}
}

// TestSuiteCleanOnRepo is the self-test the Makefile lint target relies on:
// the shipped analyzer suite, at its default scopes, reports nothing on the
// repository itself.
func TestSuiteCleanOnRepo(t *testing.T) {
	var buf bytes.Buffer
	n, err := analysis.Run(&buf, "../..", []string{"./..."}, all.Analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("analyzer suite reports %d findings on the repo, want 0:\n%s", n, buf.String())
	}
}

func override(t *testing.T, re *regexp.Regexp) func() {
	t.Helper()
	oldSim, oldGold := simdet.SimPackages, floatorder.GoldenPackages
	simdet.SimPackages, floatorder.GoldenPackages = re, re
	return func() { simdet.SimPackages, floatorder.GoldenPackages = oldSim, oldGold }
}
