package loop

import (
	"strings"
	"testing"

	"sdds/internal/sim"
)

// twoNestProgram: nest 0 writes file 0 in parallel; nest 1 reads it back.
func twoNestProgram() *Program {
	return &Program{
		Name:  "test",
		Files: []File{{ID: 0, Name: "data", Size: 1 << 20}},
		Nests: []Nest{
			{
				Name: "produce", Trips: 16, Parallel: true,
				Body: []Stmt{
					{Kind: StmtWrite, File: 0, Region: Affine{IterCoef: 1024, Len: 1024}},
					{Kind: StmtCompute, Cost: sim.MilliToTime(1)},
				},
			},
			{
				Name: "consume", Trips: 16, Parallel: true,
				Body: []Stmt{
					{Kind: StmtRead, File: 0, Region: Affine{IterCoef: 1024, Len: 1024}},
				},
			},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := twoNestProgram().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Program){
		func(p *Program) { p.Nests = nil },
		func(p *Program) { p.Files[0].Size = 0 },
		func(p *Program) { p.Files = append(p.Files, File{ID: 0, Size: 1}) },
		func(p *Program) { p.Nests[0].Trips = 0 },
		func(p *Program) { p.Nests[0].Body[0].File = 99 },
		func(p *Program) { p.Nests[0].Body[0].Region.Len = 0 },
		func(p *Program) { p.Nests[0].Body[1].Cost = -1 },
		func(p *Program) { p.Nests[0].Body[0].Kind = StmtKind(9) },
	}
	for i, mutate := range cases {
		p := twoNestProgram()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestIsAffine(t *testing.T) {
	p := twoNestProgram()
	if !p.IsAffine() {
		t.Fatal("affine program reported non-affine")
	}
	p.Nests[0].Body[0].Custom = func(i, proc int) (int64, int64) { return 0, 1 }
	if p.IsAffine() {
		t.Fatal("custom region reported affine")
	}
}

func TestSlotsAndOffsets(t *testing.T) {
	p := twoNestProgram()
	// 16 trips over 4 procs → 4 slots per nest.
	if got := p.Slots(4); got != 8 {
		t.Fatalf("Slots(4) = %d, want 8", got)
	}
	if got := p.NestSlotOffset(4, 1); got != 4 {
		t.Fatalf("NestSlotOffset(4,1) = %d, want 4", got)
	}
	// Serial nest contributes full trips.
	p.Nests[0].Parallel = false
	if got := p.Slots(4); got != 20 {
		t.Fatalf("Slots with serial nest = %d, want 20", got)
	}
}

func TestIterOfBlockDecomposition(t *testing.T) {
	p := twoNestProgram()
	// Proc 2 of 4, nest 0: block = iterations 8..11.
	for k := 0; k < 4; k++ {
		iter, ok := p.IterOf(4, 0, 2, k)
		if !ok || iter != 8+k {
			t.Fatalf("IterOf(proc2,k=%d) = %d, %v", k, iter, ok)
		}
	}
	if _, ok := p.IterOf(4, 0, 2, 4); ok {
		t.Fatal("out-of-chunk slot executed")
	}
	// Ragged tail: 10 trips over 4 procs → chunk 3; proc 3 runs only iter 9.
	p.Nests[0].Trips = 10
	if iter, ok := p.IterOf(4, 0, 3, 0); !ok || iter != 9 {
		t.Fatalf("ragged IterOf = %d, %v", iter, ok)
	}
	if _, ok := p.IterOf(4, 0, 3, 1); ok {
		t.Fatal("phantom iteration past trip count")
	}
}

func TestInstancesEnumeration(t *testing.T) {
	p := twoNestProgram()
	insts := p.Instances(4)
	// 16 writes + 16 reads.
	var reads, writes int
	for _, in := range insts {
		switch in.Kind {
		case StmtRead:
			reads++
		case StmtWrite:
			writes++
		}
		if in.Length != 1024 {
			t.Fatalf("instance length %d", in.Length)
		}
	}
	if reads != 16 || writes != 16 {
		t.Fatalf("reads=%d writes=%d", reads, writes)
	}
	// Offsets cover the full 16 KB region uniquely per kind.
	seen := map[int64]int{}
	for _, in := range insts {
		if in.Kind == StmtWrite {
			seen[in.Offset]++
		}
	}
	if len(seen) != 16 {
		t.Fatalf("distinct write offsets = %d", len(seen))
	}
}

func TestEveryStride(t *testing.T) {
	p := &Program{
		Files: []File{{ID: 0, Name: "f", Size: 1 << 20}},
		Nests: []Nest{{
			Trips: 12, Parallel: false,
			Body: []Stmt{{Kind: StmtRead, File: 0, Region: Affine{Len: 64}, Every: 4}},
		}},
	}
	insts := p.Instances(1)
	if len(insts) != 3 { // iterations 0, 4, 8
		t.Fatalf("Every=4 over 12 trips → %d instances, want 3", len(insts))
	}
}

func TestSerialNestReplicated(t *testing.T) {
	p := &Program{
		Files: []File{{ID: 0, Name: "f", Size: 1 << 20}},
		Nests: []Nest{{
			Trips: 2, Parallel: false,
			Body: []Stmt{{Kind: StmtRead, File: 0, Region: Affine{Len: 64}}},
		}},
	}
	insts := p.Instances(4)
	if len(insts) != 8 { // every proc executes both iterations
		t.Fatalf("serial nest instances = %d, want 8", len(insts))
	}
}

func TestAffineAt(t *testing.T) {
	a := Affine{Base: 100, IterCoef: 10, ProcCoef: 1000, Len: 7}
	off, l := a.At(3, 2)
	if off != 2130 || l != 7 {
		t.Fatalf("At = %d, %d", off, l)
	}
}

func TestSlackLen(t *testing.T) {
	s := Slack{Begin: 4, End: 9}
	if s.Len() != 6 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestFileByID(t *testing.T) {
	p := twoNestProgram()
	if f, ok := p.FileByID(0); !ok || f.Name != "data" {
		t.Fatalf("FileByID = %+v, %v", f, ok)
	}
	if _, ok := p.FileByID(42); ok {
		t.Fatal("phantom file found")
	}
}

func TestStmtKindString(t *testing.T) {
	if StmtRead.String() != "read" || StmtWrite.String() != "write" || StmtCompute.String() != "compute" {
		t.Fatal("kind names wrong")
	}
	if StmtKind(0).String() != "invalid" {
		t.Fatal("zero kind must be invalid")
	}
}

func TestRenderProgram(t *testing.T) {
	p := twoNestProgram()
	out := p.Render()
	for _, want := range []string{
		"program test",
		`MPI_File_open(..., "data", &fh_data, ...)`,
		"for i = 1, 16, 1",
		"MPI_File_read(fh_data",
		"MPI_File_write(fh_data",
		"MPI_File_close(&fh_data)",
		"block-distributed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderNonAffineNote(t *testing.T) {
	p := twoNestProgram()
	p.Nests[1].Body[0].Custom = func(i, proc int) (int64, int64) { return 0, 64 }
	if !strings.Contains(p.Render(), "non-affine") {
		t.Fatal("non-affine statement not flagged")
	}
	if !strings.Contains(p.Render(), "custom(i, p)") {
		t.Fatal("custom region not rendered")
	}
}

func TestByteSize(t *testing.T) {
	cases := map[int64]string{
		512:      "512B",
		64 << 10: "64KB",
		3 << 20:  "3MB",
		2 << 30:  "2GB",
		1500:     "1500B",
	}
	for in, want := range cases {
		if got := byteSize(in); got != want {
			t.Errorf("byteSize(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestRenderEveryGuardAndStride(t *testing.T) {
	p := &Program{
		Name:  "g",
		Files: []File{{ID: 0, Name: "f", Size: 1 << 20}},
		Nests: []Nest{{Trips: 8, Body: []Stmt{
			{Kind: StmtRead, File: 0, Region: Affine{Base: 64 << 10, IterCoef: 128 << 10, ProcCoef: 1 << 20, Len: 64 << 10}, Every: 4},
		}}},
	}
	out := p.Render()
	for _, want := range []string{"if (i % 4 == 0)", "64KB + 128KB*i + 1MB*p", "len=64KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %s", want, out)
		}
	}
}
