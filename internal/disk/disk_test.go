package disk

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"sdds/internal/sim"
)

func testDisk(t *testing.T) (*sim.Engine, *Disk) {
	t.Helper()
	eng := sim.NewEngine(1)
	d, err := New(eng, 0, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return eng, d
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.CapacityGB = 0 },
		func(p *Params) { p.SectorSize = -1 },
		func(p *Params) { p.SectorsPerCylinder = 0 },
		func(p *Params) { p.MaxRPM = 0 },
		func(p *Params) { p.MinRPM = 0 },
		func(p *Params) { p.MinRPM = p.MaxRPM + 1 },
		func(p *Params) { p.RPMStep = 0 },
		func(p *Params) { p.RPMStep = 999 },
		func(p *Params) { p.MaxTransferMBps = 0 },
		func(p *Params) { p.SpinUpTime = 0 },
		func(p *Params) { p.IdlePowerW = 0 },
		func(p *Params) { p.SpinDownPowerW = 0 },
		func(p *Params) { p.BusMBps = 0 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: Validate() = nil, want error", i)
		}
	}
}

func TestLevels(t *testing.T) {
	p := DefaultParams()
	levels := p.Levels()
	if len(levels) != 8 {
		t.Fatalf("len(levels) = %d, want 8 (12000..3600 step 1200)", len(levels))
	}
	if levels[0] != 12000 || levels[len(levels)-1] != 3600 {
		t.Fatalf("levels = %v", levels)
	}
	for i := 1; i < len(levels); i++ {
		if levels[i-1]-levels[i] != 1200 {
			t.Fatalf("level gap %d→%d", levels[i-1], levels[i])
		}
	}
}

func TestQuadraticPowerModel(t *testing.T) {
	p := DefaultParams()
	// Eq. 1: halving RPM quarters the power.
	half := p.IdlePowerAt(6000)
	if math.Abs(half-p.IdlePowerW/4) > 1e-9 {
		t.Fatalf("IdlePowerAt(6000) = %v, want %v", half, p.IdlePowerW/4)
	}
	if p.ActivePowerAt(12000) != p.ActivePowerW {
		t.Fatal("full-speed active power mismatch")
	}
	if p.SeekPowerAt(3600) >= p.SeekPowerAt(12000) {
		t.Fatal("seek power must decrease with RPM")
	}
}

func TestClampRPM(t *testing.T) {
	p := DefaultParams()
	cases := []struct{ in, want int }{
		{15000, 12000}, {12000, 12000}, {11900, 12000}, {11000, 10800},
		{3600, 3600}, {100, 3600}, {4100, 3600}, {4300, 4800},
	}
	for _, c := range cases {
		if got := p.ClampRPM(c.in); got != c.want {
			t.Errorf("ClampRPM(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFullRotation(t *testing.T) {
	p := DefaultParams()
	if got := p.FullRotation(12000); got != 5000 {
		t.Fatalf("FullRotation(12000) = %v µs, want 5000", got)
	}
	if got := p.FullRotation(6000); got != 10000 {
		t.Fatalf("FullRotation(6000) = %v µs, want 10000", got)
	}
	if got := p.FullRotation(0); got != 0 {
		t.Fatalf("FullRotation(0) = %v, want 0", got)
	}
}

func TestSeekTimeMonotone(t *testing.T) {
	p := DefaultParams()
	if p.SeekTime(0) != 0 {
		t.Fatal("zero-distance seek must be free")
	}
	prev := sim.Duration(0)
	for _, d := range []int64{1, 10, 100, 1000, 10000} {
		s := p.SeekTime(d)
		if s <= prev {
			t.Fatalf("SeekTime(%d) = %v not > %v", d, s, prev)
		}
		prev = s
	}
}

func TestSqrtInt(t *testing.T) {
	for _, v := range []int64{0, 1, 4, 9, 100, 10000, 123456789} {
		got := sqrtInt(v)
		want := math.Sqrt(float64(v))
		if math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Errorf("sqrtInt(%d) = %v, want %v", v, got, want)
		}
	}
}

func TestSubmitAndComplete(t *testing.T) {
	eng, d := testDisk(t)
	var done *Request
	r := &Request{Op: OpRead, Sector: 5000, Bytes: 64 << 10, Done: func(_ sim.Time, r *Request) { done = r }}
	if err := d.Submit(r); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if done == nil {
		t.Fatal("request never completed")
	}
	if done.Finish <= done.Start || done.Start < done.Arrival {
		t.Fatalf("bad timestamps: arrival=%v start=%v finish=%v", done.Arrival, done.Start, done.Finish)
	}
	st := d.Stats()
	if st.Completed != 1 || st.BytesRead != 64<<10 {
		t.Fatalf("stats = %+v", st)
	}
	if d.State() != StateIdle {
		t.Fatalf("state after completion = %v, want idle", d.State())
	}
}

func TestSubmitValidation(t *testing.T) {
	_, d := testDisk(t)
	if err := d.Submit(&Request{Op: OpRead, Sector: 0, Bytes: 0}); err == nil {
		t.Fatal("zero-byte request accepted")
	}
	if err := d.Submit(&Request{Op: OpRead, Sector: -1, Bytes: 1}); err == nil {
		t.Fatal("negative sector accepted")
	}
	if err := d.Submit(&Request{Op: OpRead, Sector: 1 << 62, Bytes: 1}); err == nil {
		t.Fatal("out-of-range sector accepted")
	}
}

func TestWriteAccounting(t *testing.T) {
	eng, d := testDisk(t)
	if err := d.Submit(&Request{Op: OpWrite, Sector: 0, Bytes: 4096}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if d.Stats().BytesWritten != 4096 {
		t.Fatalf("BytesWritten = %d", d.Stats().BytesWritten)
	}
}

func TestLowerRPMSlowerService(t *testing.T) {
	serviceTime := func(rpm int) sim.Duration {
		eng := sim.NewEngine(1)
		d := MustNew(eng, 0, DefaultParams())
		if rpm != d.Params().MaxRPM {
			if err := d.SetTargetRPM(rpm, true); err != nil {
				t.Fatal(err)
			}
			eng.Run() // let the shift finish
		}
		var lat sim.Duration
		r := &Request{Op: OpRead, Sector: 100000, Bytes: 1 << 20, Done: func(_ sim.Time, r *Request) { lat = r.Finish - r.Start }}
		if err := d.Submit(r); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return lat
	}
	fast := serviceTime(12000)
	slow := serviceTime(3600)
	if slow <= fast {
		t.Fatalf("service at 3600 RPM (%v) not slower than 12000 RPM (%v)", slow, fast)
	}
	// Media transfer scales ~linearly: expect at least 2.5× on a 1 MB read.
	if float64(slow) < 2.5*float64(fast) {
		t.Fatalf("slowdown only %.2f×, want ≥2.5×", float64(slow)/float64(fast))
	}
}

func TestSpinDownUpCycle(t *testing.T) {
	eng, d := testDisk(t)
	if err := d.SpinDown(); err != nil {
		t.Fatal(err)
	}
	if d.State() != StateSpinningDown {
		t.Fatalf("state = %v, want spin-down", d.State())
	}
	eng.Run()
	if d.State() != StateStandby {
		t.Fatalf("state = %v, want standby", d.State())
	}
	// A request in standby triggers spin-up and is served afterwards.
	var finished sim.Time
	r := &Request{Op: OpRead, Sector: 0, Bytes: 4096, Done: func(now sim.Time, _ *Request) { finished = now }}
	if err := d.Submit(r); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if finished < d.Params().SpinUpTime {
		t.Fatalf("request finished at %v, before spin-up time %v", finished, d.Params().SpinUpTime)
	}
	st := d.Stats()
	if st.SpinUps != 1 || st.SpinDowns != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSpinDownWhileBusyFails(t *testing.T) {
	eng, d := testDisk(t)
	if err := d.Submit(&Request{Op: OpRead, Sector: 0, Bytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	eng.Step() // begin service but don't finish
	if err := d.SpinDown(); !errors.Is(err, ErrNotIdle) {
		t.Fatalf("SpinDown while busy = %v, want ErrNotIdle", err)
	}
}

func TestSpinUpDuringSpinDownAborts(t *testing.T) {
	eng, d := testDisk(t)
	if err := d.SpinDown(); err != nil {
		t.Fatal(err)
	}
	// Half-way through the spin-down, command a spin-up: the spindle
	// coasts, so recovery costs the head reload plus the quadratic share
	// of the spin-up time (0.5² = 25%).
	eng.RunUntil(d.Params().SpinDownTime / 2)
	if err := d.SpinUp(); err != nil {
		t.Fatal(err)
	}
	end := eng.Run()
	if d.State() != StateIdle || d.RPM() != d.Params().MaxRPM {
		t.Fatalf("state=%v rpm=%d after abort spin-up", d.State(), d.RPM())
	}
	want := d.Params().SpinDownTime/2 + 300*sim.Millisecond + d.Params().SpinUpTime/4
	if end != want {
		t.Fatalf("recovered at %v, want %v (quadratic abort)", end, want)
	}
	if d.Stats().SpinUps != 1 {
		t.Fatalf("SpinUps = %d", d.Stats().SpinUps)
	}
}

func TestSpinUpWhenIdleFails(t *testing.T) {
	_, d := testDisk(t)
	if err := d.SpinUp(); !errors.Is(err, ErrNotStandby) {
		t.Fatalf("SpinUp while idle = %v, want ErrNotStandby", err)
	}
}

func TestRequestDuringSpinDownAbortsAndServes(t *testing.T) {
	eng, d := testDisk(t)
	if err := d.SpinDown(); err != nil {
		t.Fatal(err)
	}
	var finished sim.Time
	// Arrives 1 s into the 10 s spin-down: the spindle reverses from 10%
	// progress, paying the head reload plus ~1% of the spin-up time rather
	// than the full 26 s cycle.
	eng.Schedule(sim.Second, "inject", func(sim.Time) {
		_ = d.Submit(&Request{Op: OpRead, Sector: 0, Bytes: 4096, Done: func(now sim.Time, _ *Request) { finished = now }})
	})
	eng.Run()
	p := d.Params()
	partialUp := 300*sim.Millisecond + sim.Duration(0.01*float64(p.SpinUpTime))
	if finished < sim.Second+partialUp {
		t.Fatalf("finished at %v, before partial recovery %v", finished, sim.Second+partialUp)
	}
	if finished >= p.SpinDownTime+p.SpinUpTime {
		t.Fatalf("finished at %v — paid the full down+up cycle despite the abort", finished)
	}
}

func TestSetTargetRPMShiftsWhenIdle(t *testing.T) {
	eng, d := testDisk(t)
	if err := d.SetTargetRPM(3600, false); err != nil {
		t.Fatal(err)
	}
	if d.State() != StateShiftingRPM {
		t.Fatalf("state = %v, want rpm-shift", d.State())
	}
	end := eng.Run()
	if d.RPM() != 3600 {
		t.Fatalf("RPM = %d, want 3600", d.RPM())
	}
	wantShift := d.Params().RPMShiftTime(12000, 3600)
	if end != wantShift {
		t.Fatalf("shift took %v, want %v", end, wantShift)
	}
}

func TestSetTargetRPMInStandbyFails(t *testing.T) {
	eng, d := testDisk(t)
	_ = d.SpinDown()
	eng.Run()
	if err := d.SetTargetRPM(3600, false); !errors.Is(err, ErrNotStandby) {
		t.Fatalf("SetTargetRPM in standby = %v, want ErrNotStandby", err)
	}
}

// rampOnArrival mimics the staggered policy: on request arrival it commands
// a ramp to full speed that must complete before service.
type rampOnArrival struct{}

func (rampOnArrival) RequestArrived(d *Disk, _ sim.Time) {
	if d.RPM() != d.Params().MaxRPM {
		_ = d.SetTargetRPM(d.Params().MaxRPM, true)
	}
}
func (rampOnArrival) IdleStarted(*Disk, sim.Time) {}

func TestRampFirstDelaysService(t *testing.T) {
	// A disk parked at 3600 RPM whose policy ramps-first on arrival: the
	// request must wait for the full ramp before being served at max speed.
	eng, d := testDisk(t)
	_ = d.SetTargetRPM(3600, false)
	eng.Run()
	d.SetListener(rampOnArrival{})
	var started sim.Time
	r := &Request{Op: OpRead, Sector: 0, Bytes: 4096, Done: func(_ sim.Time, r *Request) { started = r.Start }}
	base := eng.Now()
	if err := d.Submit(r); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	shift := d.Params().RPMShiftTime(3600, 12000)
	if started < base+shift {
		t.Fatalf("service started at %v, before ramp completion %v", started, base+shift)
	}
	if d.RPM() != 12000 {
		t.Fatalf("RPM after ramp = %d", d.RPM())
	}
}

func TestServeAtLowSpeedWithoutRampFirst(t *testing.T) {
	eng, d := testDisk(t)
	_ = d.SetTargetRPM(3600, false)
	eng.Run()
	if d.RPM() != 3600 {
		t.Fatal("setup failed")
	}
	var lat sim.Duration
	r := &Request{Op: OpRead, Sector: 0, Bytes: 4096, Done: func(_ sim.Time, r *Request) { lat = r.Latency() }}
	if err := d.Submit(r); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Served without waiting for any ramp: latency well under a shift time.
	if lat >= d.Params().RPMShiftTime(3600, 12000) {
		t.Fatalf("latency %v suggests the disk ramped first", lat)
	}
}

func TestIdleGapRecording(t *testing.T) {
	eng, d := testDisk(t)
	rec := &gapCollector{}
	d.SetIdleRecorder(rec)
	// First request at t=0 closes the initial gap (length 0), then a second
	// arrives 100 ms after the first completes.
	var firstDone sim.Time
	_ = d.Submit(&Request{Op: OpRead, Sector: 0, Bytes: 4096, Done: func(now sim.Time, _ *Request) { firstDone = now }})
	eng.Run()
	eng.Schedule(sim.MilliToTime(100), "second", func(sim.Time) {
		_ = d.Submit(&Request{Op: OpRead, Sector: 0, Bytes: 4096})
	})
	eng.Run()
	if len(rec.gaps) != 2 {
		t.Fatalf("recorded %d gaps, want 2", len(rec.gaps))
	}
	if rec.gaps[0] != 0 {
		t.Fatalf("initial gap = %v, want 0", rec.gaps[0])
	}
	want := firstDone + sim.MilliToTime(100) - firstDone
	if rec.gaps[1] != want {
		t.Fatalf("gap = %v, want %v", rec.gaps[1], want)
	}
}

type gapCollector struct{ gaps []sim.Duration }

func (g *gapCollector) RecordIdle(_ *Disk, gap sim.Duration) { g.gaps = append(g.gaps, gap) }

func TestFlushIdleGap(t *testing.T) {
	eng, d := testDisk(t)
	rec := &gapCollector{}
	d.SetIdleRecorder(rec)
	eng.RunUntil(sim.Second)
	d.FlushIdleGap(eng.Now())
	if len(rec.gaps) != 1 || rec.gaps[0] != sim.Second {
		t.Fatalf("gaps = %v, want [1s]", rec.gaps)
	}
	// Double flush must not record twice.
	d.FlushIdleGap(eng.Now())
	if len(rec.gaps) != 1 {
		t.Fatal("flush recorded a closed gap again")
	}
}

func TestEnergyConservation(t *testing.T) {
	eng, d := testDisk(t)
	for i := 0; i < 20; i++ {
		i := i
		eng.Schedule(sim.Duration(i)*sim.MilliToTime(37), "req", func(sim.Time) {
			_ = d.Submit(&Request{Op: OpRead, Sector: int64(i) * 100000, Bytes: 64 << 10})
		})
	}
	end := eng.Run()
	// Total accounted time equals elapsed time.
	var total sim.Duration
	for _, s := range AllStates() {
		total += d.Energy().TimeIn(end, s)
	}
	if total != end {
		t.Fatalf("accounted %v of %v elapsed", total, end)
	}
	// Energy is bounded by elapsed × max power and ≥ elapsed × min power.
	j := d.Energy().TotalJoules(end)
	maxJ := d.Params().SpinUpPowerW * end.Seconds()
	minJ := d.Params().StandbyPowerW * end.Seconds()
	if j <= minJ || j > maxJ+1e-9 {
		t.Fatalf("energy %v J outside [%v, %v]", j, minJ, maxJ)
	}
}

func TestEnergyLowerAtLowRPM(t *testing.T) {
	run := func(rpm int) float64 {
		eng := sim.NewEngine(1)
		d := MustNew(eng, 0, DefaultParams())
		if rpm != 12000 {
			_ = d.SetTargetRPM(rpm, false)
		}
		eng.RunUntil(10 * sim.Second)
		return d.Energy().TotalJoules(eng.Now())
	}
	if lo, hi := run(3600), run(12000); lo >= hi {
		t.Fatalf("idle energy at 3600 RPM (%v J) not below 12000 RPM (%v J)", lo, hi)
	}
}

func TestElevatorSCANOrder(t *testing.T) {
	eng, d := testDisk(t)
	var order []int64
	mk := func(cyl int64) *Request {
		return &Request{Op: OpRead, Sector: cyl * int64(d.Params().SectorsPerCylinder), Bytes: 4096,
			Done: func(_ sim.Time, r *Request) { order = append(order, r.cylinder) }}
	}
	// A blocker at cylinder 0 is served first; the rest queue up while it is
	// in service and are then swept upward from head 0: 10, 50, 90.
	for _, c := range []int64{0, 90, 10, 50} {
		if err := d.Submit(mk(c)); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	want := []int64{0, 10, 50, 90}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("SCAN order = %v, want %v", order, want)
		}
	}
}

func TestElevatorReversesDirection(t *testing.T) {
	q := newElevator()
	mk := func(cyl int64) *Request { return &Request{cylinder: cyl} }
	for _, c := range []int64{10, 60, 40} {
		q.Push(mk(c))
	}
	// Head at 50, sweeping up: 60 first, then reverse: 40, 10.
	var got []int64
	head := int64(50)
	for q.Len() > 0 {
		r := q.Pop(head)
		got = append(got, r.cylinder)
		head = r.cylinder
	}
	want := []int64{60, 40, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// Property: the elevator always returns every pushed request exactly once.
func TestPropertyElevatorCompleteness(t *testing.T) {
	f := func(cyls []uint16, start uint16) bool {
		q := newElevator()
		want := make(map[int64]int)
		for _, c := range cyls {
			q.Push(&Request{cylinder: int64(c)})
			want[int64(c)]++
		}
		head := int64(start)
		got := make(map[int64]int)
		for i := 0; i <= len(cyls); i++ {
			r := q.Pop(head)
			if r == nil {
				break
			}
			got[r.cylinder]++
			head = r.cylinder
		}
		if q.Len() != 0 {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return len(got) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: energy account never decreases and per-state sums equal total.
func TestPropertyEnergyAccountConsistency(t *testing.T) {
	f := func(steps []uint8) bool {
		a := NewEnergyAccount(0, StateIdle, 10)
		now := sim.Time(0)
		states := AllStates()
		prev := 0.0
		for i, s := range steps {
			now += sim.Duration(s) + 1
			st := states[i%len(states)]
			a.SetDraw(now, st, float64(1+i%40))
			tot := a.TotalJoules(now)
			if tot < prev-1e-9 {
				return false
			}
			prev = tot
		}
		var sum float64
		for _, s := range states {
			sum += a.JoulesIn(now, s)
		}
		return math.Abs(sum-a.TotalJoules(now)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueDelayAccumulates(t *testing.T) {
	eng, d := testDisk(t)
	for i := 0; i < 5; i++ {
		_ = d.Submit(&Request{Op: OpRead, Sector: int64(i) * 1000000, Bytes: 1 << 20})
	}
	eng.Run()
	if d.Stats().QueueDelay <= 0 {
		t.Fatal("five back-to-back requests produced no queueing delay")
	}
}

func BenchmarkDiskService(b *testing.B) {
	eng := sim.NewEngine(1)
	d := MustNew(eng, 0, DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Submit(&Request{Op: OpRead, Sector: int64(i%1000) * 4096, Bytes: 64 << 10})
		eng.Run()
	}
}

func TestAccessorsAndStateHelpers(t *testing.T) {
	eng, d := testDisk(t)
	if OpRead.String() != "read" || OpWrite.String() != "write" || Op(0).String() != "invalid" {
		t.Fatal("Op names wrong")
	}
	if d.TargetRPM() != d.Params().MaxRPM || d.QueueLen() != 0 || d.Busy() {
		t.Fatal("fresh disk accessors wrong")
	}
	if !StateSeeking.Serving() || !StateTransferring.Serving() || StateIdle.Serving() {
		t.Fatal("Serving() wrong")
	}
	if got := d.Params().Cylinders(); got <= 0 {
		t.Fatalf("Cylinders = %d", got)
	}
	tiny := DefaultParams()
	tiny.CapacityGB = 1e-9
	if tiny.Cylinders() != 1 {
		t.Fatal("Cylinders floor missing")
	}
	_ = d.Submit(&Request{Op: OpRead, Sector: 0, Bytes: 1 << 20})
	_ = d.Submit(&Request{Op: OpRead, Sector: 0, Bytes: 1 << 20})
	eng.Step()
	if !d.Busy() && d.QueueLen() == 0 {
		t.Fatal("busy state not visible")
	}
	eng.Run()
	end := eng.Now()
	if d.Energy().Elapsed(end) != end {
		t.Fatal("Elapsed mismatch")
	}
	br := d.Energy().Breakdown(end)
	var sum float64
	for _, v := range br {
		sum += v
	}
	if diff := sum - d.Energy().TotalJoules(end); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Breakdown sum %v != total %v", sum, d.Energy().TotalJoules(end))
	}
}

func TestUpShiftSlowerThanDown(t *testing.T) {
	p := DefaultParams()
	down := p.RPMShiftTime(12000, 3600)
	up := p.RPMShiftTime(3600, 12000)
	if up != down*UpShiftFactor {
		t.Fatalf("up %v, down %v: want %d× asymmetry", up, down, UpShiftFactor)
	}
}

func TestDeferredUpShiftBreaksSaturation(t *testing.T) {
	// A disk parked at min RPM receiving a steady stream faster than its
	// low-speed service rate must still reach full speed within the defer
	// bound rather than being trapped.
	eng, d := testDisk(t)
	_ = d.SetTargetRPM(d.Params().MinRPM, false)
	eng.Run()
	if d.RPM() != d.Params().MinRPM {
		t.Fatal("setup failed")
	}
	_ = d.SetTargetRPM(d.Params().MaxRPM, false)
	// Saturating arrivals: a 1 MB read every 10 ms.
	for i := 0; i < 400; i++ {
		at := sim.Duration(i) * sim.MilliToTime(10)
		eng.Schedule(at, "sat", func(sim.Time) {
			_ = d.Submit(&Request{Op: OpRead, Sector: 0, Bytes: 1 << 20})
		})
	}
	eng.RunUntil(eng.Now() + 4*sim.Second)
	if d.RPM() != d.Params().MaxRPM {
		t.Fatalf("disk trapped at %d RPM under saturation", d.RPM())
	}
}
