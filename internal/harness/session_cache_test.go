package harness

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"sdds/internal/compilecache"
)

// TestSessionCompileCacheShared asserts a policy sweep shares one compile:
// two scheduled requests differing only in power policy resolve to one
// compile-cache miss plus one hit, one setup group, and results identical
// to a cache-disabled session.
func TestSessionCompileCacheShared(t *testing.T) {
	reqs := []Request{
		{App: "sar", Policy: "default", Scheduling: true, Scale: 0.02, Seed: 7},
		{App: "sar", Policy: "history", Scheduling: true, Scale: 0.02, Seed: 7},
	}

	cached := NewSession(SessionOptions{Workers: 2})
	plain := NewSession(SessionOptions{Workers: 2, DisableCompileCache: true})
	for _, req := range reqs {
		cres, _, err := cached.RunRequest(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		pres, _, err := plain.RunRequest(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := json.Marshal(NewRunRecord(cres))
		b, _ := json.Marshal(NewRunRecord(pres))
		if string(a) != string(b) {
			t.Errorf("%s/%s: cached run diverged from inline compile:\n%s\n%s",
				req.App, req.Policy, a, b)
		}
	}

	st := cached.CompileCacheStats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("compile cache stats = %+v, want 1 miss / 1 hit", st)
	}
	if g := cached.SetupGroups(); g != 1 {
		t.Errorf("setup groups = %d, want 1 (same app/scale/procs)", g)
	}
	if st := plain.CompileCacheStats(); st != (compilecache.Stats{}) {
		t.Errorf("disabled session reported cache stats %+v", st)
	}
}

// TestSessionCompileProvProgress asserts progress events carry compile
// provenance: "compiled" on the first scheduled run, "memo" via a shared
// store-backed cache, "restored" in a fresh session over the same store,
// and "" for scheduling-off runs.
func TestSessionCompileProvProgress(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifacts.jsonl")
	cache, err := compilecache.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var provs []string
	s := NewSession(SessionOptions{
		Workers:      1,
		CompileCache: cache,
		Progress:     func(p Progress) { provs = append(provs, p.CompileProv) },
	})
	sched := Request{App: "sar", Scheduling: true, Scale: 0.02, Seed: 7}
	plain := Request{App: "sar", Scheduling: false, Scale: 0.02, Seed: 7}
	if _, _, err := s.RunRequest(context.Background(), sched); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.RunRequest(context.Background(), plain); err != nil {
		t.Fatal(err)
	}
	// Different seed: a distinct simulation whose compile memo-hits.
	memoReq := sched
	memoReq.Seed = 8
	if _, _, err := s.RunRequest(context.Background(), memoReq); err != nil {
		t.Fatal(err)
	}
	if want := []string{"compiled", "", "memo"}; len(provs) != 3 ||
		provs[0] != want[0] || provs[1] != want[1] || provs[2] != want[2] {
		t.Fatalf("progress provenance = %v, want %v", provs, want)
	}
	if err := cache.Close(); err != nil {
		t.Fatal(err)
	}

	cache2, err := compilecache.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cache2.Close()
	var prov2 []string
	s2 := NewSession(SessionOptions{
		Workers:      1,
		CompileCache: cache2,
		Progress:     func(p Progress) { prov2 = append(prov2, p.CompileProv) },
	})
	if _, _, err := s2.RunRequest(context.Background(), sched); err != nil {
		t.Fatal(err)
	}
	if len(prov2) != 1 || prov2[0] != "restored" {
		t.Fatalf("fresh-session provenance = %v, want [restored]", prov2)
	}
}

// TestSessionJournalProgressProvenance asserts a resumed-journal hit is
// distinguishable in progress events: FromJournal is true and CompileProv
// is empty (the journal does not record compiler output), while an
// in-session repeat of a live run reports FromJournal false.
func TestSessionJournalProgressProvenance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	req := Request{App: "sar", Scheduling: true, Scale: 0.02, Seed: 7}

	j1, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewSession(SessionOptions{Workers: 1, Journal: j1})
	if _, _, err := s1.RunRequest(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var events []Progress
	s2 := NewSession(SessionOptions{
		Workers:  1,
		Journal:  j2,
		Progress: func(p Progress) { events = append(events, p) },
	})
	if s2.Preloaded() != 1 {
		t.Fatalf("preloaded = %d, want 1", s2.Preloaded())
	}
	if _, hit, err := s2.RunRequest(context.Background(), req); err != nil || !hit {
		t.Fatalf("journal-preloaded run: hit=%v err=%v", hit, err)
	}
	// A live run of a different seed, then its in-session repeat.
	live := req
	live.Seed = 8
	if _, _, err := s2.RunRequest(context.Background(), live); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := s2.RunRequest(context.Background(), live); err != nil || !hit {
		t.Fatalf("in-session repeat: hit=%v err=%v", hit, err)
	}
	if len(events) != 3 {
		t.Fatalf("progress events = %d, want 3", len(events))
	}
	if !events[0].Hit || !events[0].FromJournal || events[0].CompileProv != "" {
		t.Errorf("journal hit event = %+v, want Hit+FromJournal with empty CompileProv", events[0])
	}
	if events[1].Hit || events[1].FromJournal {
		t.Errorf("live run event = %+v, want miss", events[1])
	}
	if !events[2].Hit || events[2].FromJournal {
		t.Errorf("in-session repeat event = %+v, want Hit without FromJournal", events[2])
	}
}
