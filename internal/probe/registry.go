package probe

import "sort"

// Metric is one named value in a registry snapshot.
type Metric struct {
	Name  string
	Value float64
}

// Registry is a per-run set of named counters, gauges, and fixed-bucket
// histograms. Registration allocates (setup or end-of-run); Add/Inc/Observe
// on the returned handles do not, so handles may be used from hot paths.
// Like the ring, a registry is owned by one goroutine at a time — the
// cluster runner builds one per run and snapshots it into the Result.
type Registry struct {
	index   map[string]int
	names   []string
	values  []float64
	isGauge []bool

	histIndex map[string]int
	hists     []histState
}

// histState is one registered fixed-bucket histogram: counts[i] covers
// observations ≤ bounds[i]; the final slot is the +Inf overflow bucket.
type histState struct {
	name   string
	bounds []float64
	counts []uint64
	sum    float64
	count  uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

// slot returns the value index for name, registering it on first use.
func (r *Registry) slot(name string, gauge bool) int {
	if i, ok := r.index[name]; ok {
		return i
	}
	i := len(r.values)
	r.index[name] = i
	r.names = append(r.names, name)
	r.values = append(r.values, 0)
	r.isGauge = append(r.isGauge, gauge)
	return i
}

// Counter is a monotonically increasing metric handle.
type Counter struct {
	r *Registry
	i int
}

// Counter registers (or finds) a counter named name.
func (r *Registry) Counter(name string) Counter {
	if r == nil {
		return Counter{}
	}
	return Counter{r: r, i: r.slot(name, false)}
}

// Add increases the counter by delta. Nil-safe.
func (c Counter) Add(delta float64) {
	if c.r == nil {
		return
	}
	c.r.values[c.i] += delta
}

// Inc increases the counter by one. Nil-safe.
func (c Counter) Inc() { c.Add(1) }

// Gauge is a high-water-mark metric handle: Observe keeps the maximum, Set
// overwrites.
type Gauge struct {
	r *Registry
	i int
}

// Gauge registers (or finds) a gauge named name.
func (r *Registry) Gauge(name string) Gauge {
	if r == nil {
		return Gauge{}
	}
	return Gauge{r: r, i: r.slot(name, true)}
}

// Observe raises the gauge to v if v exceeds the current value. Nil-safe.
func (g Gauge) Observe(v float64) {
	if g.r == nil {
		return
	}
	if v > g.r.values[g.i] {
		g.r.values[g.i] = v
	}
}

// Set overwrites the gauge. Nil-safe.
func (g Gauge) Set(v float64) {
	if g.r == nil {
		return
	}
	g.r.values[g.i] = v
}

// Histogram is a fixed-bucket distribution handle. Observe is
// allocation-free, so a histogram may be fed from per-run (though not
// per-event) paths.
type Histogram struct {
	r *Registry
	i int
}

// Histogram registers (or finds) a fixed-bucket histogram named name.
// bounds are ascending upper bucket bounds; an implicit +Inf bucket
// catches everything above the last bound. Re-registering an existing
// name returns the original histogram; the new bounds are ignored.
func (r *Registry) Histogram(name string, bounds []float64) Histogram {
	if r == nil {
		return Histogram{}
	}
	if r.histIndex == nil {
		r.histIndex = make(map[string]int)
	}
	if i, ok := r.histIndex[name]; ok {
		return Histogram{r: r, i: i}
	}
	i := len(r.hists)
	r.histIndex[name] = i
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	r.hists = append(r.hists, histState{
		name:   name,
		bounds: b,
		counts: make([]uint64, len(b)+1),
	})
	return Histogram{r: r, i: i}
}

// Observe records one value. Nil-safe.
func (h Histogram) Observe(v float64) {
	if h.r == nil {
		return
	}
	st := &h.r.hists[h.i]
	idx := len(st.bounds) // +Inf overflow
	for i, b := range st.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	st.counts[idx]++
	st.sum += v
	st.count++
}

// HistogramSnapshot is one histogram's state in a registry snapshot.
type HistogramSnapshot struct {
	Name string
	// Bounds are the upper bucket bounds; Counts has one extra trailing
	// slot for the +Inf bucket. Counts are per-bucket, not cumulative.
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Histograms returns every registered histogram sorted by name.
func (r *Registry) Histograms() []HistogramSnapshot {
	if r == nil || len(r.hists) == 0 {
		return nil
	}
	out := make([]HistogramSnapshot, 0, len(r.hists))
	for _, st := range r.hists {
		out = append(out, HistogramSnapshot{
			Name:   st.name,
			Bounds: append([]float64(nil), st.bounds...),
			Counts: append([]uint64(nil), st.counts...),
			Sum:    st.sum,
			Count:  st.count,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Value returns the current value of the named metric (0 if unregistered).
func (r *Registry) Value(name string) float64 {
	if r == nil {
		return 0
	}
	if i, ok := r.index[name]; ok {
		return r.values[i]
	}
	return 0
}

// Len reports how many metrics are registered.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.values)
}

// Snapshot returns every metric sorted by name — a deterministic order
// regardless of registration interleaving, so snapshots are directly
// comparable and printable.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	out := make([]Metric, len(r.values))
	for i, n := range r.names {
		out[i] = Metric{Name: n, Value: r.values[i]}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
