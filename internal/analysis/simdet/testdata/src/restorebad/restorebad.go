// Package restorebad is the simdet fixture for artifact-restore-shaped
// code. A compile artifact deserialized from disk must rebuild the exact
// schedule the original compile produced: if the restore path keeps its
// points in a map and ranges it while appending assignments (or while
// picking each slot's winner), Go's randomized iteration order leaks into
// the rebuilt tables and the restored run is no longer bit-identical to
// the compiled one. The real restore keeps points in a slice; the allowed
// shapes below mirror it.
package restorebad

import "sort"

type point struct {
	slot int
	cost float64
}

type schedule struct {
	assigns []point
	bySlot  map[int]point
	total   float64
}

// restoreFromMap is the bug this fixture pins: ranging a deserialized
// points map while appending to the schedule under construction.
func restoreFromMap(points map[int]point) *schedule {
	s := &schedule{bySlot: map[int]point{}}
	for _, pt := range points {
		s.assigns = append(s.assigns, pt) // want `append to s inside map iteration`
	}
	return s
}

// restoreWinners is last-writer-wins in random order: whichever map entry
// is visited last claims the slot.
func restoreWinners(points map[int]point, winner *point) {
	for _, pt := range points {
		*winner = pt // want `assignment to outer state inside map iteration`
	}
}

// restoreCost accumulates floats in iteration order; rounding makes the
// total depend on the visit sequence.
func restoreCost(s *schedule, points map[int]point) {
	for _, pt := range points {
		s.total += pt.cost // want `float accumulation into outer state inside map iteration`
	}
}

// restoreSorted is the deterministic shape: collect keys, sort, then walk
// in fixed order. The analyzer recognizes collect-then-sort natively — no
// ignore needed: the sort.Ints below fixes the order before it is observed.
func restoreSorted(points map[int]point) *schedule {
	keys := make([]int, 0, len(points))
	for k := range points {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	s := &schedule{bySlot: map[int]point{}}
	for _, k := range keys {
		s.assigns = append(s.assigns, points[k])
	}
	return s
}

// restoreFromSlice is the real restore's shape: artifact points live in a
// slice whose order was fixed at serialization time. Allowed.
func restoreFromSlice(points []point) *schedule {
	s := &schedule{bySlot: map[int]point{}}
	for _, pt := range points {
		s.assigns = append(s.assigns, pt)
	}
	return s
}

// restorePerKey copies a map per-key: each slot is written exactly once,
// so iteration order cannot change the result. Allowed.
func restorePerKey(points map[int]point) *schedule {
	s := &schedule{bySlot: make(map[int]point, len(points))}
	for k, pt := range points {
		s.bySlot[k] = pt
	}
	return s
}

// restoreMarks stores a constant under a derived (non-loop-key) index:
// every iteration writes the same value, so order cannot be observed.
// Allowed without an ignore.
func restoreMarks(points map[int]point, used map[int]bool) {
	for _, pt := range points {
		used[pt.slot] = true
	}
}
