// Package probe is the simulator's flight recorder: an optional,
// nil-checked tracing layer that device models thread through the event
// core. When enabled it records fixed-size binary records — (kind, time,
// id, arg) — into a preallocated ring buffer with zero allocations per
// event; when disabled (a nil *Probe) every emit site costs a single
// predictable branch. On top of the ring sit a Chrome trace-event exporter
// (chrome.go), a per-run counter/gauge registry (registry.go), and a
// coarse wall-clock span API for phase-level timing (plan, compile,
// simulate).
//
// Concurrency contract: Emit is called from the single engine goroutine
// only and is deliberately unsynchronized — exactly the contract the rest
// of the event core already lives by. The span API is mutex-guarded and
// safe for concurrent use (the harness records spans from its worker
// pool); a span-only probe (NewSpanProbe) has no ring, so it can be shared
// across concurrent cluster runs without racing on record storage.
package probe

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind tags one ring record. Values are stable within a run; the exporter
// maps them to track/event names.
type Kind uint16

// Record kinds. The emitting model decides id and arg:
//
//	kind          id        arg
//	DiskState     disk ID   the new disk state (disk.State as int64)
//	IOIssue       disk ID   request bytes
//	IOComplete    disk ID   request bytes
//	SpinUp        disk ID   1 when reversing an aborted spin-down, else 0
//	SpinDown      disk ID   0
//	RPMShift      disk ID   target RPM
//	CacheHit      node ID   stripe unit
//	CacheMiss     node ID   stripe unit
//	Prefetch      node ID   stripe unit fetched ahead
//	BufferHit     access ID 0
//	BufferMiss    access ID 0
//	PreActivation disk ID   0 (ahead-of-time wake/ramp timer fired)
//	WrongPredict  disk ID   0 (request found the disk mid-transition/slow)
//	Fault         fault site (fault.Site as int32)   emitting entity ID (disk/node)
//	Retry         node ID   retry attempt number (1-based)
const (
	KindInvalid Kind = iota
	KindDiskState
	KindIOIssue
	KindIOComplete
	KindSpinUp
	KindSpinDown
	KindRPMShift
	KindCacheHit
	KindCacheMiss
	KindPrefetch
	KindBufferHit
	KindBufferMiss
	KindPreActivation
	KindWrongPredict
	KindFault
	KindRetry
)

var kindNames = [...]string{
	KindInvalid:       "invalid",
	KindDiskState:     "state",
	KindIOIssue:       "io issue",
	KindIOComplete:    "io complete",
	KindSpinUp:        "spin-up",
	KindSpinDown:      "spin-down",
	KindRPMShift:      "rpm shift",
	KindCacheHit:      "cache hit",
	KindCacheMiss:     "cache miss",
	KindPrefetch:      "prefetch",
	KindBufferHit:     "buffer hit",
	KindBufferMiss:    "buffer miss",
	KindPreActivation: "pre-activation",
	KindWrongPredict:  "wrong prediction",
	KindFault:         "fault",
	KindRetry:         "retry",
}

// String returns the exporter's event name for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "invalid"
}

// Record is one fixed-size ring entry: 24 bytes, no pointers, so the whole
// ring is a single flat allocation the GC never scans per-element.
type Record struct {
	// T is the record timestamp in microseconds. Ring records carry the
	// engine's virtual clock; span records (kept separately) carry wall
	// time — the exporter puts them on different tracks.
	T int64
	// Arg is kind-specific payload (state, bytes, RPM, unit).
	Arg int64
	// Kind tags the record.
	Kind Kind
	// ID is the emitting entity: disk ID, node ID, or access ID.
	ID int32
}

// spanRec is one coarse wall-clock phase span.
type spanRec struct {
	track      int32
	name       string
	start, end int64 // µs since the probe's wall epoch; end < 0 while open
}

// Probe is the recorder. The zero value is not usable; construct with
// NewProbe (ring + spans) or NewSpanProbe (spans only, shareable across
// goroutines). A nil *Probe is the disabled state: every method is a
// nil-safe no-op.
type Probe struct {
	ring []Record
	mask uint64
	next uint64 // total records emitted; ring index = next & mask

	epoch time.Time // wall-clock zero for span timestamps

	mu    sync.Mutex
	spans []spanRec
	// contention counts span-lock acquisitions that found the mutex held
	// by another goroutine — the signal that concurrent workers are
	// serializing on span recording.
	contention atomic.Int64
}

// NewProbe returns a probe whose ring holds at least capacity records
// (rounded up to a power of two, minimum 1024). When the ring fills, the
// oldest records are overwritten — flight-recorder semantics: the tail of
// a long run is always retained, and Dropped reports how much history was
// lost.
func NewProbe(capacity int) *Probe {
	n := 1024
	for n < capacity {
		n <<= 1
	}
	return &Probe{ring: make([]Record, n), mask: uint64(n - 1), epoch: time.Now()}
}

// NewSpanProbe returns a probe with no ring: Emit is a no-op, but spans
// are recorded. Because span recording is mutex-guarded, a span probe can
// be handed to concurrent cluster runs (the harness session does exactly
// this) without violating the ring's single-goroutine contract.
func NewSpanProbe() *Probe {
	return &Probe{epoch: time.Now()}
}

// Emit appends one record to the ring, overwriting the oldest once full.
// It is nil-safe: on a disabled (nil) probe the call is a single
// predictable branch, which is what lets every model emit unconditionally
// from its hot path. Must be called from the engine goroutine only.
//
//sddsvet:hotpath
func (p *Probe) Emit(k Kind, id int32, t int64, arg int64) {
	if p == nil || p.ring == nil {
		return
	}
	p.ring[p.next&p.mask] = Record{T: t, Arg: arg, Kind: k, ID: id}
	p.next++
}

// Len reports how many records are currently retained (≤ ring capacity).
func (p *Probe) Len() int {
	if p == nil || p.ring == nil {
		return 0
	}
	if p.next > uint64(len(p.ring)) {
		return len(p.ring)
	}
	return int(p.next)
}

// Emitted reports the total number of records ever emitted.
func (p *Probe) Emitted() uint64 {
	if p == nil {
		return 0
	}
	return p.next
}

// Dropped reports how many records were overwritten by ring wrap-around.
func (p *Probe) Dropped() uint64 {
	if p == nil || p.ring == nil || p.next <= uint64(len(p.ring)) {
		return 0
	}
	return p.next - uint64(len(p.ring))
}

// Capacity reports the ring size in records (0 for a span-only probe).
func (p *Probe) Capacity() int {
	if p == nil {
		return 0
	}
	return len(p.ring)
}

// Records returns the retained records oldest-first. The slice is freshly
// allocated (export/analysis path, not the hot path).
func (p *Probe) Records() []Record {
	if p == nil || p.ring == nil {
		return nil
	}
	if p.next <= uint64(len(p.ring)) {
		out := make([]Record, p.next)
		copy(out, p.ring[:p.next])
		return out
	}
	// Wrapped: oldest record sits at next&mask.
	out := make([]Record, 0, len(p.ring))
	start := p.next & p.mask
	out = append(out, p.ring[start:]...)
	out = append(out, p.ring[:start]...)
	return out
}

// Span is a handle to an open phase span; End closes it. The zero Span
// (from a nil probe) is inert.
type Span struct {
	p   *Probe
	idx int
}

// StartSpan opens a wall-clock span named name on the given track. Tracks
// group spans into rows in the exported trace: the harness uses track 0
// for plan derivation and track 1+i for worker i; the cluster runner uses
// TrackRun for its compile/simulate phases. Safe for concurrent use.
func (p *Probe) StartSpan(track int32, name string) Span {
	if p == nil {
		return Span{}
	}
	now := time.Since(p.epoch).Microseconds() //sddsvet:ignore simdet,detflow -- host-side telemetry: span timestamps never feed golden output
	p.lockSpans()
	defer p.mu.Unlock()
	p.spans = append(p.spans, spanRec{track: track, name: name, start: now, end: -1})
	return Span{p: p, idx: len(p.spans) - 1}
}

// End closes the span at the current wall time. Ending an already-ended or
// zero span is a no-op.
func (s Span) End() {
	if s.p == nil {
		return
	}
	now := time.Since(s.p.epoch).Microseconds() //sddsvet:ignore simdet,detflow -- host-side telemetry: span timestamps never feed golden output
	s.p.lockSpans()
	defer s.p.mu.Unlock()
	if s.p.spans[s.idx].end < 0 {
		s.p.spans[s.idx].end = now
	}
}

// TrackRun is the span track the cluster runner records its compile and
// simulate phases on. Harness workers use tracks ≥ TrackWorkerBase so the
// two never collide in the exported trace.
const (
	TrackPlan       int32 = 0
	TrackRun        int32 = 1
	TrackWorkerBase int32 = 2
)

// lockSpans takes the span mutex, counting acquisitions that had to wait.
// TryLock failing means another goroutine held the lock at that instant —
// an approximation of contention that costs nothing when uncontended.
func (p *Probe) lockSpans() {
	if p.mu.TryLock() {
		return
	}
	p.contention.Add(1)
	p.mu.Lock()
}

// SpanContention reports how many span-lock acquisitions found the mutex
// already held. A high value relative to SpanCount means concurrent
// workers are serializing on span recording.
func (p *Probe) SpanContention() int64 {
	if p == nil {
		return 0
	}
	return p.contention.Load()
}

// SpanCount reports how many spans have been recorded.
func (p *Probe) SpanCount() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.spans)
}
