package shard

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sdds/internal/backoff"
	"sdds/internal/harness"
)

// Shard lease states.
type State string

const (
	// Pending: unleased, waiting for a worker (possibly backoff-gated
	// after a failure or expiry).
	Pending State = "pending"
	// Leased: handed to a worker under an unexpired lease.
	Leased State = "leased"
	// Done: results committed to the canonical store.
	Done State = "done"
	// Failed: poisoned — retried MaxAttempts times without completing.
	Failed State = "failed"
)

// Event kinds, in shard lifecycle order.
const (
	EventLeased    = "leased"
	EventCompleted = "completed"
	EventDuplicate = "duplicate"
	EventRequeued  = "requeued"
	EventPoisoned  = "poisoned"
)

// Event is one shard lifecycle transition, emitted to Options.OnEvent
// strictly after the coordinator mutex is released (handlers may call
// back into the coordinator or take their own locks).
type Event struct {
	Kind     string
	ShardID  string
	Worker   string
	Attempts int
	Err      string
}

// Options configures a Coordinator.
type Options struct {
	// LeaseTTL is how long a granted lease lives without renewal
	// (default 15s). Workers renew at a fraction of this.
	LeaseTTL time.Duration
	// MaxAttempts bounds lease grants per shard before it is poisoned
	// (default 5).
	MaxAttempts int
	// Backoff gates a requeued shard's next grant (capped exponential
	// with jitter; the zero value defaults to backoff.New(250ms, 10s)).
	Backoff backoff.Policy
	// Clock is the time source; injectable so lease-expiry tests are
	// deterministic. Nil means wall clock.
	Clock func() time.Time
	// Commit persists one completed run into the canonical store,
	// reporting whether it was newly added (false = identical duplicate).
	// It must be idempotent and first-write-wins; a value mismatch is the
	// determinism invariant broken and must be an error. Required.
	Commit func(req harness.Request, rec harness.RunRecord) (bool, error)
	// OnEvent observes shard lifecycle transitions; may be nil. Called
	// outside the coordinator mutex, serialized in emission order.
	OnEvent func(Event)
	// Requests and Resumed annotate Snapshot with the submit summary.
	Requests, Resumed int
}

// shardState is one shard's lease-machine cell.
type shardState struct {
	shard     Shard
	state     State
	worker    string
	leaseID   string
	expiry    time.Time
	attempts  int
	notBefore time.Time // backoff gate for the next grant
	lastErr   string
}

// Coordinator runs the lease state machine over one sweep's shards:
// Pending → Leased → Done, with expiry and failure folding back to
// Pending (behind a backoff gate) until MaxAttempts poisons the shard to
// Failed. All methods are safe for concurrent use; expiry is evaluated
// lazily at every public call, so no background ticker is needed.
type Coordinator struct {
	opts Options

	mu       sync.Mutex
	shards   map[string]*shardState
	order    []string // shard IDs in plan order: deterministic grant order
	seq      int      // lease ID generator
	workers  map[string]bool
	requeues int
	dups     int
	stored   int
	finished bool
	err      error
	doneCh   chan struct{}

	evMu sync.Mutex // serializes OnEvent emission order
}

// NewCoordinator builds the coordinator for one sweep. Duplicate shard
// IDs (identical content) collapse onto one cell. An empty shard list is
// immediately done.
func NewCoordinator(shards []Shard, o Options) *Coordinator {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 15 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.Backoff.Base == 0 && o.Backoff.Cap == 0 {
		o.Backoff = backoff.New(250*time.Millisecond, 10*time.Second)
	}
	if o.Clock == nil {
		o.Clock = time.Now // wall-clock lease scheduling, not simulated time
	}
	c := &Coordinator{
		opts:    o,
		shards:  make(map[string]*shardState),
		workers: make(map[string]bool),
		doneCh:  make(chan struct{}),
	}
	for _, sh := range shards {
		if _, dup := c.shards[sh.ID]; dup {
			continue
		}
		c.shards[sh.ID] = &shardState{shard: sh, state: Pending}
		c.order = append(c.order, sh.ID)
	}
	c.maybeFinishLocked() // zero shards: born done
	return c
}

// expireLocked requeues every shard whose lease has lapsed. Iteration is
// over the plan-ordered ID slice, so transitions happen in a
// deterministic order. Caller holds c.mu.
func (c *Coordinator) expireLocked(now time.Time, events *[]Event) {
	for _, id := range c.order {
		sh := c.shards[id]
		if sh.state != Leased || now.Before(sh.expiry) {
			continue
		}
		c.requeues++
		worker := sh.worker
		c.requeueLocked(sh, now, "lease expired (worker "+worker+" crashed, stalled, or partitioned)", events)
	}
}

// requeueLocked folds a shard back to Pending behind its backoff gate,
// or poisons it once MaxAttempts lease grants have failed to complete
// it. Caller holds c.mu.
func (c *Coordinator) requeueLocked(sh *shardState, now time.Time, cause string, events *[]Event) {
	worker := sh.worker
	sh.worker, sh.leaseID = "", ""
	sh.lastErr = cause
	if sh.attempts >= c.opts.MaxAttempts {
		sh.state = Failed
		*events = append(*events, Event{Kind: EventPoisoned, ShardID: sh.shard.ID,
			Worker: worker, Attempts: sh.attempts, Err: cause})
		c.maybeFinishLocked()
		return
	}
	sh.state = Pending
	sh.notBefore = now.Add(c.opts.Backoff.Delay(sh.attempts - 1))
	*events = append(*events, Event{Kind: EventRequeued, ShardID: sh.shard.ID,
		Worker: worker, Attempts: sh.attempts, Err: cause})
}

// maybeFinishLocked closes the done channel once every shard is
// terminal, recording a summary error when any were poisoned. Caller
// holds c.mu.
func (c *Coordinator) maybeFinishLocked() {
	if c.finished {
		return
	}
	var failed []string
	for _, id := range c.order {
		switch c.shards[id].state {
		case Done:
		case Failed:
			failed = append(failed, id)
		default:
			return
		}
	}
	c.finished = true
	if len(failed) > 0 {
		c.err = fmt.Errorf("shard: %d of %d shards poisoned after %d attempts each: %s",
			len(failed), len(c.order), c.opts.MaxAttempts, strings.Join(failed, ", "))
	}
	close(c.doneCh)
}

// Lease grants the next available shard to worker, or reports wait/done.
func (c *Coordinator) Lease(worker string) LeaseResponse {
	var events []Event
	defer func() { c.emit(events) }()
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if worker != "" {
		c.workers[worker] = true
	}
	c.expireLocked(now, &events)
	for _, id := range c.order {
		sh := c.shards[id]
		if sh.state != Pending || now.Before(sh.notBefore) {
			continue
		}
		c.seq++
		sh.state = Leased
		sh.worker = worker
		sh.leaseID = fmt.Sprintf("%s#%d", sh.shard.ID, c.seq)
		sh.expiry = now.Add(c.opts.LeaseTTL)
		sh.attempts++
		events = append(events, Event{Kind: EventLeased, ShardID: sh.shard.ID,
			Worker: worker, Attempts: sh.attempts})
		shardCopy := sh.shard
		return LeaseResponse{
			Status:  StatusGranted,
			Shard:   &shardCopy,
			LeaseID: sh.leaseID,
			TTLMS:   c.opts.LeaseTTL.Milliseconds(),
		}
	}
	if c.finished {
		return LeaseResponse{Status: StatusAllDone}
	}
	return LeaseResponse{Status: StatusWait}
}

// Renew heartbeats a held lease, reporting whether it still stands.
func (c *Coordinator) Renew(worker, shardID, leaseID string) RenewResponse {
	var events []Event
	defer func() { c.emit(events) }()
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if worker != "" {
		c.workers[worker] = true
	}
	c.expireLocked(now, &events)
	sh, ok := c.shards[shardID]
	if !ok {
		return RenewResponse{Status: StatusDone} // not this sweep's shard: stop
	}
	switch sh.state {
	case Done, Failed:
		return RenewResponse{Status: StatusDone}
	case Leased:
		if sh.leaseID == leaseID {
			sh.expiry = now.Add(c.opts.LeaseTTL)
			return RenewResponse{Status: StatusOK}
		}
	}
	return RenewResponse{Status: StatusLost}
}

// Complete delivers a shard's outcome. Results are committed to the
// canonical store before any state changes — and regardless of lease
// ownership: the first completion to land wins even if its lease expired
// a heartbeat ago, and every later completion dedups byte-identically
// against the store (a mismatch is reported as the determinism invariant
// broken). A failure outcome requeues the shard only when it belongs to
// the current lease; stale failures are dropped.
func (c *Coordinator) Complete(req CompleteRequest) (CompleteResponse, error) {
	var events []Event
	defer func() { c.emit(events) }()

	// Commit outside the mutex: store fsyncs must not block lease/renew
	// traffic, and the content-addressed store is itself safe under
	// concurrent duplicate commits.
	stored := 0
	commitErr := ""
	if req.Error == "" {
		for _, e := range req.Results {
			added, err := c.opts.Commit(e.Request, e.Result)
			if err != nil {
				commitErr = fmt.Sprintf("commit %s: %v", e.Request.Key(), err)
				break
			}
			if added {
				stored++
			}
		}
	}

	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Worker != "" {
		c.workers[req.Worker] = true
	}
	c.stored += stored
	c.expireLocked(now, &events)
	sh, ok := c.shards[req.ShardID]
	if !ok {
		return CompleteResponse{}, fmt.Errorf("shard: unknown shard %s", req.ShardID)
	}

	failure := req.Error
	if failure == "" {
		failure = commitErr
	}
	if failure == "" {
		// Success: first completion wins, whatever happened to the lease.
		if sh.state == Done {
			c.dups++
			events = append(events, Event{Kind: EventDuplicate, ShardID: sh.shard.ID,
				Worker: req.Worker, Attempts: sh.attempts})
			return CompleteResponse{Status: StatusDuplicate, Stored: stored}, nil
		}
		sh.state = Done
		sh.worker, sh.leaseID, sh.lastErr = "", "", ""
		events = append(events, Event{Kind: EventCompleted, ShardID: sh.shard.ID,
			Worker: req.Worker, Attempts: sh.attempts})
		c.maybeFinishLocked()
		return CompleteResponse{Status: StatusAccepted, Stored: stored}, nil
	}

	// Failure: only the current lease holder's verdict counts — a stale
	// failure must not requeue a shard someone else is executing (or has
	// already completed).
	if sh.state != Leased || sh.leaseID != req.LeaseID {
		c.dups++
		events = append(events, Event{Kind: EventDuplicate, ShardID: sh.shard.ID,
			Worker: req.Worker, Attempts: sh.attempts, Err: failure})
		return CompleteResponse{Status: StatusDuplicate, Stored: stored}, nil
	}
	c.requeueLocked(sh, now, failure, &events)
	return CompleteResponse{Status: StatusAccepted, Stored: stored}, nil
}

// Done is closed once every shard is terminal.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Err reports the terminal error (poisoned shards), nil while running or
// when every shard completed.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Wait blocks until every shard is terminal or ctx ends, returning the
// coordinator's terminal error.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.doneCh:
		return c.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WorkerCount reports how many distinct workers have ever contacted the
// coordinator — the no-worker-ever-registered gate for local fallback.
func (c *Coordinator) WorkerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// Snapshot reports the coordinator's observable state. Lease expiry is
// evaluated first, so a snapshot taken long after a crash shows the
// requeue, not a stale lease.
func (c *Coordinator) Snapshot() Snapshot {
	var events []Event
	defer func() { c.emit(events) }()
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now, &events)
	s := Snapshot{
		Active:     true,
		Done:       c.finished,
		Total:      len(c.order),
		Requests:   c.opts.Requests,
		Resumed:    c.opts.Resumed,
		Requeues:   c.requeues,
		Duplicates: c.dups,
		Stored:     c.stored,
	}
	if c.err != nil {
		s.Err = c.err.Error()
	}
	for _, id := range c.order {
		sh := c.shards[id]
		switch sh.state {
		case Pending:
			s.Pending++
		case Leased:
			s.Leased++
		case Done:
			s.Completed++
		case Failed:
			s.Failed++
		}
		if sh.state != Done {
			s.Shards = append(s.Shards, ShardStatus{
				ID: id, State: string(sh.state), Worker: sh.worker,
				Attempts: sh.attempts, Error: sh.lastErr,
			})
		}
	}
	for w := range c.workers {
		s.Workers = append(s.Workers, w)
	}
	sort.Strings(s.Workers)
	return s
}

// emit delivers events to OnEvent outside the coordinator mutex,
// serialized so observers see transitions in order.
func (c *Coordinator) emit(events []Event) {
	if c.opts.OnEvent == nil || len(events) == 0 {
		return
	}
	c.evMu.Lock()
	defer c.evMu.Unlock()
	for _, e := range events {
		c.opts.OnEvent(e)
	}
}
