package core_test

import (
	"fmt"

	"sdds/internal/core"
	"sdds/internal/stripe"
)

// ExampleScheduler reproduces the flavor of the paper's §IV-B1 example:
// accesses from three processes are placed inside their slacks so that
// accesses sharing I/O nodes cluster.
func ExampleScheduler() {
	layout := stripe.Layout{NumNodes: 16, StripeSize: 64 << 10}
	s, _ := core.NewScheduler(core.Params{NumSlots: 13, NumNodes: 16, Delta: 2})

	// Two accesses from different processes touching the same I/O nodes
	// (byte range → nodes {2, 10}), one pinned, one free.
	pinned := &core.Access{
		ID: 1, Proc: 0, Begin: 5, End: 5, Length: 1,
		Sig: layout.SignatureFor(2*64<<10, 64<<10), Orig: 5,
	}
	free := &core.Access{
		ID: 2, Proc: 1, Begin: 0, End: 9, Length: 1,
		// One full stripe ring later: the same I/O node set as the pinned
		// access.
		Sig: layout.SignatureFor(18*64<<10, 64<<10), Orig: 9,
	}
	schedule, _ := s.Schedule([]*core.Access{pinned, free})

	p1, _ := schedule.PointOf(1)
	p2, _ := schedule.PointOf(2)
	fmt.Printf("pinned at t%d, free co-scheduled at t%d\n", p1, p2)
	// Output: pinned at t5, free co-scheduled at t5
}

// ExampleWeight shows the σ position weights of Eq. 3 for δ = 4 (the
// paper's Fig. 7 numbers).
func ExampleWeight() {
	for k := 0; k <= 4; k++ {
		fmt.Printf("σ%d=%.1f ", k, core.Weight(k, 4))
	}
	fmt.Println()
	// Output: σ0=1.0 σ1=0.8 σ2=0.6 σ3=0.4 σ4=0.2
}
