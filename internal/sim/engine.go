// Package sim provides the discrete-event simulation engine underlying the
// whole reproduction: a virtual clock in microseconds, a binary-heap event
// queue with deterministic tie-breaking, cancellable timers, and a seeded
// RNG. Every device model (disks, network links, client processes) advances
// exclusively through this engine, so a run with a fixed seed is exactly
// reproducible.
package sim

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, measured in microseconds since the start
// of the simulation.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration = Time

// Common duration units, all expressed in the engine's microsecond base.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
)

// Seconds converts a virtual duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts a virtual duration to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String renders the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// MilliToTime converts floating-point milliseconds into a Duration.
func MilliToTime(ms float64) Duration { return Duration(ms * float64(Millisecond)) }

// Handler is a callback invoked when an event fires. The engine passes the
// current virtual time.
type Handler func(now Time)

// Event is a scheduled callback. It is returned by Schedule so callers can
// cancel pending events (e.g. a power-policy timeout that a new request
// obsoletes).
type Event struct {
	at        Time
	seq       uint64
	fn        Handler
	cancelled bool
	index     int // heap index, -1 once popped
	label     string
}

// At reports the virtual time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancelled }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired (or was already cancelled) is a harmless no-op.
func (e *Event) Cancel() { e.cancelled = true }

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all model code runs inside event handlers on one goroutine.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool

	// Stats for observability and tests.
	fired     uint64
	scheduled uint64
}

// NewEngine returns an engine with the clock at zero and the given RNG seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic RNG. Model code must use this (and
// never the global rand) so runs are reproducible from the seed.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// EventsFired reports how many events have executed so far.
func (e *Engine) EventsFired() uint64 { return e.fired }

// EventsScheduled reports how many events have been enqueued so far.
func (e *Engine) EventsScheduled() uint64 { return e.scheduled }

// Pending reports the number of events currently queued (including
// cancelled-but-unpopped ones).
func (e *Engine) Pending() int { return len(e.queue) }

// ErrPastEvent is returned by ScheduleAt when the requested time is before
// the current clock.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// Schedule enqueues fn to run after delay. A negative delay is clamped to
// zero (fires at the current time, after currently-running handlers).
func (e *Engine) Schedule(delay Duration, label string, fn Handler) *Event {
	if delay < 0 {
		delay = 0
	}
	ev, err := e.ScheduleAt(e.now+delay, label, fn)
	if err != nil {
		// Unreachable: now+delay >= now by construction.
		panic(err)
	}
	return ev
}

// ScheduleAt enqueues fn to run at absolute time at. It returns ErrPastEvent
// if at precedes the current clock.
func (e *Engine) ScheduleAt(at Time, label string, fn Handler) (*Event, error) {
	if at < e.now {
		return nil, fmt.Errorf("%w: at=%v now=%v (%s)", ErrPastEvent, at, e.now, label)
	}
	e.seq++
	e.scheduled++
	ev := &Event{at: at, seq: e.seq, fn: fn, label: label}
	heap.Push(&e.queue, ev)
	return ev, nil
}

// Stop makes Run return after the currently-executing handler completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single next event, advancing the clock to its timestamp.
// It returns false when the queue is empty or the engine was stopped.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		if e.stopped {
			return false
		}
		ev, ok := heap.Pop(&e.queue).(*Event)
		if !ok {
			return false
		}
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn(e.now)
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called. It returns
// the final clock value.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// interruptStride is how many events fire between context checks in
// RunContext. Large enough that the check is free relative to handler work,
// small enough that cancellation lands within microseconds of wall time.
const interruptStride = 1024

// RunContext executes events like Run but polls ctx every interruptStride
// events, returning ctx's error (and the clock at the abort point) if the
// context is cancelled before the queue drains. A run that drains its queue
// returns a nil error even if ctx was cancelled concurrently.
func (e *Engine) RunContext(ctx context.Context) (Time, error) {
	if ctx == nil || ctx.Done() == nil {
		return e.Run(), nil
	}
	if err := ctx.Err(); err != nil {
		return e.now, err
	}
	n := 0
	for e.Step() {
		n++
		if n%interruptStride == 0 {
			if err := ctx.Err(); err != nil {
				return e.now, err
			}
		}
	}
	return e.now, nil
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline (if the queue drained earlier) and returns it.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.cancelled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// eventQueue is a min-heap ordered by (time, sequence) so that simultaneous
// events fire in scheduling order — the property the determinism tests rely
// on.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
