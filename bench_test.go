// Package sdds_bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks. Each benchmark runs the corresponding
// harness experiment at a reduced workload scale (the full-scale numbers
// are produced by cmd/sddstables and recorded in EXPERIMENTS.md) and
// reports the headline shape metrics via b.ReportMetric, so
// `go test -bench=. -benchmem` prints the reproduced series alongside the
// timing.
package sdds_test

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"sdds/internal/cluster"
	"sdds/internal/compilecache"
	"sdds/internal/harness"
	"sdds/internal/power"
	"sdds/internal/workloads"
)

// benchScale keeps each benchmark iteration around a second of wall time.
const benchScale = 0.1

// benchApps is the subset used by per-figure benchmarks to bound runtime;
// it pairs a short-idle application with a long-phase one.
var benchApps = []string{"sar", "madbench2"}

func benchConfig() harness.Config {
	return harness.Config{Scale: benchScale, Apps: benchApps, Seed: 1}
}

// pct parses the "12.3%" cells the harness renders.
func pct(s string) float64 {
	f, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0
	}
	return f
}

func runExperiment(b *testing.B, id string, report func(*testing.B, *harness.Result)) {
	b.Helper()
	exp, err := harness.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && report != nil {
			report(b, res)
		}
	}
}

// BenchmarkTable3 regenerates the per-application baseline (execution time
// and disk energy under the Default Scheme).
func BenchmarkTable3(b *testing.B) {
	runExperiment(b, "table3", func(b *testing.B, res *harness.Result) {
		for _, row := range res.Rows {
			if v, err := strconv.ParseFloat(row[3], 64); err == nil {
				b.ReportMetric(v, row[0]+"_J")
			}
		}
	})
}

// BenchmarkFig12a regenerates the idle-period CDF without the scheme and
// reports the fraction of gaps at most 100 ms (paper average: 86.4%).
func BenchmarkFig12a(b *testing.B) {
	runExperiment(b, "fig12a", func(b *testing.B, res *harness.Result) {
		for _, row := range res.Rows {
			if row[0] == "100" {
				b.ReportMetric(pct(row[1]), "pct_le100ms_"+res.Headers[1])
			}
		}
	})
}

// BenchmarkFig12b regenerates the idle-period CDF with the scheme (the CDF
// must shift right relative to Fig. 12(a)).
func BenchmarkFig12b(b *testing.B) {
	runExperiment(b, "fig12b", func(b *testing.B, res *harness.Result) {
		for _, row := range res.Rows {
			if row[0] == "100" {
				b.ReportMetric(pct(row[1]), "pct_le100ms_"+res.Headers[1])
			}
		}
	})
}

// BenchmarkFig12c regenerates normalized energy per policy without the
// scheme (paper averages: simple 95.3%, prediction 93.7%, history 84.4%,
// staggered 90.2%).
func BenchmarkFig12c(b *testing.B) {
	runExperiment(b, "fig12c", func(b *testing.B, res *harness.Result) {
		for _, row := range res.Rows {
			for ci := 1; ci < len(row); ci++ {
				b.ReportMetric(pct(row[ci]), row[0]+"_"+res.Headers[ci])
			}
		}
	})
}

// BenchmarkFig12d regenerates normalized energy per policy with the scheme
// (savings should roughly double Fig. 12(c)'s).
func BenchmarkFig12d(b *testing.B) {
	runExperiment(b, "fig12d", func(b *testing.B, res *harness.Result) {
		for _, row := range res.Rows {
			for ci := 1; ci < len(row); ci++ {
				b.ReportMetric(pct(row[ci]), row[0]+"_"+res.Headers[ci])
			}
		}
	})
}

// BenchmarkFig13a regenerates performance degradation without the scheme.
func BenchmarkFig13a(b *testing.B) { runExperiment(b, "fig13a", nil) }

// BenchmarkFig13b regenerates performance degradation with the scheme.
func BenchmarkFig13b(b *testing.B) { runExperiment(b, "fig13b", nil) }

// BenchmarkFig13c regenerates the I/O-node-count sweep.
func BenchmarkFig13c(b *testing.B) {
	cfg := benchConfig()
	cfg.Apps = []string{"sar"}
	exp, _ := harness.ByID("fig13c")
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13d regenerates the δ sweep (interior maximum around δ=20).
func BenchmarkFig13d(b *testing.B) {
	cfg := benchConfig()
	cfg.Apps = []string{"sar"}
	exp, _ := harness.ByID("fig13d")
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14a regenerates the θ energy sweep (savings grow with θ).
func BenchmarkFig14a(b *testing.B) {
	cfg := benchConfig()
	cfg.Apps = []string{"sar"}
	exp, _ := harness.ByID("fig14a")
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14b regenerates the θ performance sweep.
func BenchmarkFig14b(b *testing.B) {
	cfg := benchConfig()
	cfg.Apps = []string{"sar"}
	exp, _ := harness.ByID("fig14b")
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheSens regenerates the §V-D storage-cache sensitivity.
func BenchmarkCacheSens(b *testing.B) {
	cfg := benchConfig()
	cfg.Apps = []string{"sar"}
	exp, _ := harness.ByID("cachesens")
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileTime measures the scheduling pass itself (the paper
// reports ~1.4 s worst case on Phoenix).
func BenchmarkCompileTime(b *testing.B) {
	runExperiment(b, "compile", nil)
}

// BenchmarkAblations runs the scheduler design ablations (ordering, σ
// weights, vertical reuse range).
func BenchmarkAblations(b *testing.B) {
	cfg := benchConfig()
	cfg.Apps = []string{"sar"}
	exp, _ := harness.ByID("ablations")
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// sessionBenchIDs is the sddstables-equivalent batch the worker-scaling
// benchmarks regenerate: the four policy figures, 18 distinct cluster
// configurations over the two bench apps.
var sessionBenchIDs = []string{"fig12c", "fig12d", "fig13a", "fig13b"}

// sessionBenchRef pins the first rendered output of the batch; every later
// iteration — any worker count — must match it byte for byte, so the
// speedup benchmarks double as a parallel-determinism check.
var sessionBenchRef struct {
	sync.Mutex
	out string
}

// benchmarkSessionWorkers regenerates the batch on a fresh session per
// iteration (nothing cached across iterations) with the given worker
// bound. Comparing the workers=1 and workers=4 timings measures how the
// parallel experiment engine scales; the paper tables themselves are
// asserted identical across worker counts.
func benchmarkSessionWorkers(b *testing.B, workers int) {
	exps := make([]harness.Experiment, 0, len(sessionBenchIDs))
	for _, id := range sessionBenchIDs {
		e, err := harness.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		exps = append(exps, e)
	}
	cfg := harness.Config{Scale: benchScale, Apps: benchApps, Seed: 1}
	for i := 0; i < b.N; i++ {
		s := harness.NewSession(harness.SessionOptions{Workers: workers})
		results, err := s.RunAll(context.Background(), exps, cfg)
		if err != nil {
			b.Fatal(err)
		}
		var out strings.Builder
		for _, r := range results {
			out.WriteString(r.Render())
		}
		sessionBenchRef.Lock()
		if sessionBenchRef.out == "" {
			sessionBenchRef.out = out.String()
		} else if out.String() != sessionBenchRef.out {
			sessionBenchRef.Unlock()
			b.Fatalf("workers=%d produced different tables than the reference run", workers)
		}
		sessionBenchRef.Unlock()
		if i == b.N-1 {
			simulated, _ := s.Stats()
			b.ReportMetric(float64(simulated), "distinct_runs")
		}
	}
}

// BenchmarkSessionWorkers1 is the serial baseline of the batch.
func BenchmarkSessionWorkers1(b *testing.B) { benchmarkSessionWorkers(b, 1) }

// BenchmarkSessionWorkers4 is the same batch fanned out over four workers
// (expected ≥2× faster than BenchmarkSessionWorkers1 on ≥4 cores).
func BenchmarkSessionWorkers4(b *testing.B) { benchmarkSessionWorkers(b, 4) }

// thetaSweepScale sizes the sweep benchmarks: at 0.15 the hf compile pass
// is a large fraction of each scheduled run's wall time, which is the
// regime the compile cache targets.
const thetaSweepScale = 0.15

// thetaSweepRequests is a θ×policy sweep over hf: four θ values sharing
// their compile artifact across two power policies each — eight scheduled
// runs, four distinct compile keys.
func thetaSweepRequests() []harness.Request {
	var reqs []harness.Request
	for _, theta := range []int{2, 4, 8, 16} {
		for _, policy := range []string{"default", "history"} {
			reqs = append(reqs, harness.Request{
				App: "hf", Policy: policy, Scheduling: true,
				Scale: thetaSweepScale, Seed: 1,
				Variant: fmt.Sprintf("theta=%d", theta),
			})
		}
	}
	return reqs
}

// runThetaSweep resolves the sweep on a fresh session (nothing memoized
// across iterations except what opts carries in).
func runThetaSweep(b *testing.B, opts harness.SessionOptions) {
	b.Helper()
	opts.Workers = 1
	s := harness.NewSession(opts)
	for _, req := range thetaSweepRequests() {
		if _, _, err := s.RunRequest(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThetaSweepCold is the inline-compile baseline: every scheduled
// run of every iteration recompiles.
func BenchmarkThetaSweepCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runThetaSweep(b, harness.SessionOptions{DisableCompileCache: true})
	}
}

// BenchmarkThetaSweepWarm is the same sweep against a warmed shared
// compile cache: simulations re-run, compiles are all memo hits. The
// warm/cold ns/op ratio is the sweep-throughput gain the cache buys.
func BenchmarkThetaSweepWarm(b *testing.B) {
	cache := compilecache.New()
	runThetaSweep(b, harness.SessionOptions{CompileCache: cache}) // warm untimed
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runThetaSweep(b, harness.SessionOptions{CompileCache: cache})
	}
}

// BenchmarkEndToEndScheduledRun measures one full scheduled cluster run
// (compile + execute) — the system's overall throughput.
func BenchmarkEndToEndScheduledRun(b *testing.B) {
	spec, err := workloads.ByName("madbench2")
	if err != nil {
		b.Fatal(err)
	}
	prog := spec.Build(benchScale)
	for i := 0; i < b.N; i++ {
		cfg := cluster.DefaultConfig()
		cfg.Scheduling = true
		cfg.Policy = power.Config{Kind: power.KindHistory}
		res, err := cluster.Run(prog, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.EnergyJ, "virtual_J")
			b.ReportMetric(res.ExecTime.Seconds(), "virtual_s")
		}
	}
}
