package cache

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := New(-5); err == nil {
		t.Fatal("negative capacity accepted")
	}
	c, err := New(100)
	if err != nil || c.Capacity() != 100 {
		t.Fatalf("New(100) = %v, %v", c, err)
	}
}

func TestPutGetRemove(t *testing.T) {
	c := MustNew(100)
	k := Key{File: 1, Block: 7}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	if _, ok := c.Put(k, 40); !ok {
		t.Fatal("Put failed")
	}
	if size, ok := c.Get(k); !ok || size != 40 {
		t.Fatalf("Get = %d, %v", size, ok)
	}
	if c.Used() != 40 || c.Len() != 1 {
		t.Fatalf("Used=%d Len=%d", c.Used(), c.Len())
	}
	if !c.Remove(k) {
		t.Fatal("Remove missed")
	}
	if c.Remove(k) {
		t.Fatal("double Remove succeeded")
	}
	if c.Used() != 0 || c.Len() != 0 {
		t.Fatalf("after remove: Used=%d Len=%d", c.Used(), c.Len())
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestEvictionOrder(t *testing.T) {
	c := MustNew(100)
	for i := int64(0); i < 4; i++ {
		c.Put(Key{Block: i}, 25)
	}
	// Touch block 0 so block 1 becomes LRU.
	c.Get(Key{Block: 0})
	evicted, ok := c.Put(Key{Block: 9}, 30)
	if !ok {
		t.Fatal("Put failed")
	}
	if len(evicted) != 2 || evicted[0] != (Key{Block: 1}) || evicted[1] != (Key{Block: 2}) {
		t.Fatalf("evicted = %v, want blocks 1 then 2", evicted)
	}
	if c.Used() > c.Capacity() {
		t.Fatalf("over capacity: %d", c.Used())
	}
}

func TestPutUpdatesSize(t *testing.T) {
	c := MustNew(100)
	c.Put(Key{Block: 1}, 30)
	c.Put(Key{Block: 1}, 50)
	if c.Used() != 50 || c.Len() != 1 {
		t.Fatalf("Used=%d Len=%d after resize", c.Used(), c.Len())
	}
}

func TestOversizedRejected(t *testing.T) {
	c := MustNew(100)
	if _, ok := c.Put(Key{Block: 1}, 101); ok {
		t.Fatal("oversized block accepted")
	}
	if _, ok := c.Put(Key{Block: 1}, 0); ok {
		t.Fatal("zero-size block accepted")
	}
	if _, ok := c.Put(Key{Block: 1}, 100); !ok {
		t.Fatal("exact-capacity block rejected")
	}
}

func TestContainsDoesNotPromote(t *testing.T) {
	c := MustNew(50)
	c.Put(Key{Block: 1}, 25)
	c.Put(Key{Block: 2}, 25)
	if !c.Contains(Key{Block: 1}) {
		t.Fatal("Contains missed")
	}
	// Block 1 is still LRU: inserting evicts it despite Contains.
	evicted, _ := c.Put(Key{Block: 3}, 25)
	if len(evicted) != 1 || evicted[0] != (Key{Block: 1}) {
		t.Fatalf("evicted = %v", evicted)
	}
	hits, misses, _ := c.Stats()
	if hits != 0 || misses != 0 {
		t.Fatal("Contains affected stats")
	}
}

func TestKeysMRUFirst(t *testing.T) {
	c := MustNew(100)
	for i := int64(0); i < 3; i++ {
		c.Put(Key{Block: i}, 10)
	}
	c.Get(Key{Block: 0})
	keys := c.Keys()
	if len(keys) != 3 || keys[0] != (Key{Block: 0}) {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestKeyString(t *testing.T) {
	if got := (Key{File: 3, Block: 9}).String(); got != "3:9" {
		t.Fatalf("String = %q", got)
	}
}

// Property: Used never exceeds Capacity and always equals the sum of
// resident sizes, under any operation sequence.
func TestPropertyCapacityInvariant(t *testing.T) {
	type op struct {
		Put   bool
		Block int8
		Size  uint8
	}
	f := func(ops []op) bool {
		c := MustNew(200)
		for _, o := range ops {
			k := Key{Block: int64(o.Block % 16)}
			if o.Put {
				c.Put(k, int64(o.Size%60)+1)
			} else {
				c.Get(k)
			}
			if c.Used() > c.Capacity() || c.Used() < 0 {
				return false
			}
			var sum int64
			for _, key := range c.Keys() {
				if s, ok := c.Get(key); ok {
					sum += s
				}
			}
			if sum != c.Used() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLRUPutGet(b *testing.B) {
	c := MustNew(64 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := Key{Block: int64(i % 2000)}
		if _, ok := c.Get(k); !ok {
			c.Put(k, 64<<10)
		}
	}
}
