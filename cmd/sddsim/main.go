// Command sddsim runs one application on the simulated cluster under one
// power policy, with or without the compiler-directed data access
// scheduling framework, and prints the measurements: execution time, disk
// energy, idle-period CDF, cache/buffer behaviour.
//
// Flags translate (via internal/cliutil) into the same canonical
// harness.Request the sddsd HTTP service accepts, so a CLI invocation and
// a POST /v1/runs of the equivalent JSON body are byte-identical runs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"sdds/internal/cliutil"
	"sdds/internal/cluster"
	"sdds/internal/diag"
	"sdds/internal/disk"
	"sdds/internal/fault"
	"sdds/internal/harness"
	"sdds/internal/metrics"
	"sdds/internal/probe"
	"sdds/internal/workloads"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sddsim:", err)
		os.Exit(1)
	}
}

// run is the signal-free entry point used by tests.
func run(args []string) error { return runCtx(context.Background(), args) }

func runCtx(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sddsim", flag.ContinueOnError)
	var rf cliutil.RunFlags
	rf.Register(fs)
	var df cliutil.DiagFlags
	df.Register(fs)
	var (
		asJSON     = fs.Bool("json", false, "emit the run summary as JSON instead of text")
		describe   = fs.Bool("describe", false, "print the application's loop-nest pseudo-code and exit")
		tables     = fs.String("tables", "", "with -scheduling: write the per-process scheduling tables (JSON) to this file")
		trace      = fs.String("trace", "", "write a Chrome trace-event JSON of the run to this file (load in chrome://tracing or Perfetto)")
		traceRing  = fs.Int("trace-ring", 1<<20, "probe ring capacity in records (oldest overwritten on overflow)")
		showMetric = fs.Bool("metrics", false, "print the run's full counter/gauge registry")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	req, err := rf.Request()
	if err != nil {
		return err
	}
	prog, cfg, err := req.BuildRun()
	if err != nil {
		return err
	}
	if *describe {
		fmt.Print(prog.Render())
		return nil
	}
	log, closeLog, err := df.NewLogger()
	if err != nil {
		return err
	}
	defer closeLog()
	recorder, err := df.NewRecorder(log)
	if err != nil {
		return err
	}
	// A bundle wants the run's flight-recorder trace, so a capture dir
	// arms the probe ring even without -trace.
	if *trace != "" || recorder != nil {
		cfg.Probe = probe.NewProbe(*traceRing)
	}
	cache, _, err := cliutil.OpenCompileCache(rf.CompileCache)
	if err != nil {
		return err
	}
	if cache != nil {
		cfg.CompileCache = cache
		defer cache.Close()
	}

	if rf.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rf.Timeout)
		defer cancel()
	}
	res, err := cluster.RunContext(ctx, prog, cfg)
	if err != nil {
		captureRun(recorder, req, cfg, nil, err)
		return err
	}
	if info := captureRun(recorder, req, cfg, res, nil); info != nil {
		fmt.Fprintf(os.Stderr, "captured diagnostics bundle %s at %s\n", info.ID, info.Path)
	}
	if *trace != "" {
		if err := writeTrace(*trace, cfg.Probe); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace records (%d dropped) to %s\n",
			cfg.Probe.Len(), cfg.Probe.Dropped(), *trace)
	}
	if *tables != "" {
		if res.Compile == nil {
			return fmt.Errorf("-tables requires -scheduling")
		}
		f, err := os.Create(*tables)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Compile.WriteTables(f, cfg.Procs); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote scheduling tables to %s\n", *tables)
	}
	if *asJSON {
		return res.WriteJSON(os.Stdout)
	}

	spec, err := workloads.ByName(req.App)
	if err != nil {
		return err
	}
	fmt.Printf("application:      %s (%s)\n", spec.Name, spec.Description)
	fmt.Printf("policy:           %s, scheduling=%v\n", req.Policy, req.Scheduling)
	fmt.Printf("execution time:   %.1f s\n", res.ExecTime.Seconds())
	fmt.Printf("disk energy:      %.1f J\n", res.EnergyJ)
	fmt.Printf("disk requests:    %d (spin-ups %d, RPM shifts %d)\n",
		res.DiskRequests, res.SpinUps, res.RPMShifts)
	fmt.Printf("storage cache:    %d hits / %d misses\n", res.StorageCacheHits, res.StorageCacheMisses)
	if req.Scheduling {
		fmt.Printf("client buffer:    %d hits / %d misses (agents issued %d prefetches, %d moved entries)\n",
			res.BufferHits, res.BufferMisses, res.AgentIssued, res.AgentMoved)
		prov := ""
		if s := res.CompileProvenance.String(); s != "" {
			prov = ", " + s
		}
		fmt.Printf("compile:          %d accesses over %d slots in %v (profiler=%v%s)\n",
			len(res.Compile.Accesses), res.Compile.Program.Slots(cfg.Procs),
			res.Compile.CompileTime.Round(1e6), res.Compile.UsedProfiler, prov)
	}
	if fs := res.Faults; fs != nil {
		fmt.Printf("faults injected:  %d (disk errors %d, remaps %d, spin-up fail/delay %d/%d, net drop/dup %d/%d, stalls %d)\n",
			fs.Total(), fs.DiskTransientErrors, fs.BadSectorRemaps, fs.SpinUpFailures, fs.SpinUpDelays,
			fs.NetDrops, fs.NetDups, fs.NodeStalls)
		fmt.Printf("degradation:      node retries %d (exhausted %d), mw retries %d, io re-issues %d (abandoned %d), prefetch aborts %d (fallbacks %d)\n",
			fs.NodeRetries, fs.NodeRetriesExhausted, fs.MWRetries, fs.IORetries, fs.IOAbandoned,
			fs.PrefetchAborts, fs.Fallbacks)
	}
	fmt.Printf("idle periods:     %d recorded, mean %.0f ms\n", res.Idle.Count(), res.Idle.Mean().Milliseconds())
	fmt.Println()
	rows := make([][]string, 0, len(metrics.PaperBucketsMs))
	for _, p := range res.Idle.CDF() {
		rows = append(rows, []string{fmt.Sprintf("%.0f", p.BoundMs), metrics.Pct(p.Frac)})
	}
	fmt.Print(metrics.Table([]string{"Idleness (msec)", "CDF"}, rows))
	if *showMetric {
		fmt.Println()
		mrows := make([][]string, 0, len(res.Metrics))
		for _, m := range res.Metrics {
			mrows = append(mrows, []string{m.Name, fmt.Sprintf("%g", m.Value)})
		}
		fmt.Print(metrics.Table([]string{"Metric", "Value"}, mrows))
	}
	return nil
}

// captureRun assembles a diagnostics bundle for the finished (or failed)
// run when -capture-dir is set. Capture problems are reported on stderr
// but never mask the run's own outcome.
func captureRun(rec *diag.Recorder, req harness.Request, cfg cluster.Config, res *cluster.Result, runErr error) *diag.BundleInfo {
	if rec == nil {
		return nil
	}
	trigger := diag.TriggerManual
	if runErr != nil {
		trigger = diag.TriggerError
		if errors.Is(runErr, context.DeadlineExceeded) {
			trigger = diag.TriggerTimeout
		}
	}
	c := diag.Capture{
		Trigger:    trigger,
		Key:        req.Key(),
		ContentKey: req.ContentKey(),
		Err:        runErr,
		Request:    req,
	}
	if res != nil {
		c.Result = harness.NewRunRecord(res)
		c.Metrics = res.Metrics
		c.Faults = res.Faults
	}
	if cfg.Probe != nil {
		c.Trace = func(w io.Writer) error {
			return probe.WriteChromeTrace(w, cfg.Probe, chromeOptions())
		}
	}
	info, err := rec.Capture(c)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sddsim: capture:", err)
		return nil
	}
	return info
}

// chromeOptions names disk states and fault sites in exported traces.
func chromeOptions() probe.ChromeOptions {
	return probe.ChromeOptions{
		StateName:     func(arg int64) string { return disk.State(arg).String() },
		FaultSiteName: func(id int32) string { return fault.Site(id).String() },
	}
}

// writeTrace exports the probe as Chrome trace-event JSON.
func writeTrace(path string, p *probe.Probe) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := probe.WriteChromeTrace(f, p, chromeOptions()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
