// Package simtrans is the cross-package acceptance fixture: simulation
// code that reaches the wall clock only through another package. The
// direct syntactic checker sees nothing here — only the summary engine's
// transitive pass can flag it, and the diagnostic must carry the full
// call chain down to the time.Now leaf.
package simtrans

import helper "sdds/internal/analysis/simdet/testdata/src/simtranshelper"

// Stamp reaches time.Now one package away.
func Stamp() int64 {
	return helper.Wallclock() // want `wall-clock reached from a simulation package: simtrans\.Stamp → simtranshelper\.Wallclock → time\.Now`
}

// UsesPure calls an effect-free helper: allowed.
func UsesPure(n int) int {
	return helper.Pure(n)
}
