// Sweep runs the δ and θ sensitivity analyses of §V-D on one application
// and emits CSV, mirroring Fig. 13(d) and Fig. 14(a)/(b) for custom
// parameter ranges.
//
//	go run ./examples/sweep -app sar -scale 0.25
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sdds/internal/cluster"
	"sdds/internal/power"
	"sdds/internal/workloads"
)

func main() {
	app := flag.String("app", "sar", "application to sweep")
	scale := flag.Float64("scale", 0.25, "workload scale")
	flag.Parse()

	spec, err := workloads.ByName(*app)
	if err != nil {
		log.Fatal(err)
	}

	run := func(scheduling bool, delta, theta int) *cluster.Result {
		cfg := cluster.DefaultConfig()
		cfg.Policy = power.Config{Kind: power.KindHistory}
		cfg.Scheduling = scheduling
		cfg.Compiler.Delta = delta
		cfg.Compiler.Theta = theta
		res, err := cluster.Run(spec.Build(*scale), cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run(false, 20, 4)
	w := os.Stdout
	fmt.Fprintf(w, "# %s at scale %.2f: history-based policy, scheme on, vs scheme off\n", *app, *scale)
	fmt.Fprintln(w, "param,value,energy_joule,exec_seconds,energy_saving_pct,degradation_pct")
	emit := func(param string, value int, r *cluster.Result) {
		fmt.Fprintf(w, "%s,%d,%.1f,%.2f,%.2f,%.2f\n",
			param, value, r.EnergyJ, r.ExecTime.Seconds(),
			100*(1-r.EnergyJ/base.EnergyJ),
			100*(r.ExecTime.Seconds()-base.ExecTime.Seconds())/base.ExecTime.Seconds())
	}
	for _, d := range []int{5, 10, 20, 40, 80} {
		emit("delta", d, run(true, d, 4))
	}
	for _, th := range []int{2, 4, 6, 8} {
		emit("theta", th, run(true, 20, th))
	}
}
