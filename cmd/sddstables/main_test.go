package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-zzz"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunTable2(t *testing.T) {
	if err := run([]string{"-experiment", "table2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTinyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster runs")
	}
	if err := run([]string{"-experiment", "compile", "-scale", "0.02", "-apps", "sar"}); err != nil {
		t.Fatal(err)
	}
}
