package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report is the machine-readable result of a suite run (`sddsvet -json`):
// the complete finding list (baselined ones included and marked), the
// counts CI gates on, and any stale baseline entries.
type Report struct {
	Tool    string `json:"tool"`
	Module  string `json:"module"`
	Version string `json:"version"`
	// Findings holds every finding, baselined or new, in position order.
	Findings []Finding `json:"findings"`
	// NewCount is the number of non-baselined findings: the exit-code gate.
	NewCount       int `json:"new_count"`
	BaselinedCount int `json:"baselined_count"`
	// StaleBaseline lists baseline entries that matched nothing this run.
	StaleBaseline []string `json:"stale_baseline,omitempty"`
}

// NewReport assembles a Report from the suite outcome.
func NewReport(mod *Module, findings []Finding, stale []string) *Report {
	r := &Report{Tool: "sddsvet", Module: mod.Path, Version: "1", Findings: findings, StaleBaseline: stale}
	for _, f := range findings {
		if f.Baselined {
			r.BaselinedCount++
		} else {
			r.NewCount++
		}
	}
	return r
}

// WriteText prints findings in the classic one-line-per-finding form,
// with call chains indented underneath and baselined findings tagged.
func WriteText(w io.Writer, findings []Finding) {
	for _, f := range findings {
		tag := ""
		if f.Baselined {
			tag = " [baselined]"
		}
		fmt.Fprintf(w, "%s%s\n", f.String(), tag)
		for i, st := range f.Chain {
			if i == 0 {
				continue // the first step is the reported site itself
			}
			note := ""
			if st.Note != "" {
				note = " (" + st.Note + ")"
			}
			if st.File != "" {
				fmt.Fprintf(w, "\tvia %s at %s:%d:%d%s\n", st.Func, st.File, st.Line, st.Col, note)
			} else {
				fmt.Fprintf(w, "\tvia %s%s\n", st.Func, note)
			}
		}
	}
}

// WriteJSON emits the report as indented JSON.
func WriteJSON(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ---------------------------------------------------------------------------
// SARIF 2.1.0 (static analysis results interchange format), the minimal
// subset code-review tooling ingests: one run, one rule per analyzer, one
// result per finding with the call chain as relatedLocations. Baselined
// findings carry baselineState "unchanged" and level "note"; new ones are
// "error".

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID           string          `json:"ruleId"`
	Level            string          `json:"level"`
	BaselineState    string          `json:"baselineState,omitempty"`
	Message          sarifText       `json:"message"`
	Locations        []sarifLocation `json:"locations"`
	RelatedLocations []sarifLocation `json:"relatedLocations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
	Message          *sarifText    `json:"message,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits the findings as a SARIF 2.1.0 log. rules should cover
// every analyzer that ran (audit findings use the synthetic "ignoreaudit"
// rule added automatically when present).
func WriteSARIF(w io.Writer, findings []Finding, analyzers []*Analyzer) error {
	driver := sarifDriver{Name: "sddsvet"}
	seen := make(map[string]bool)
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
		seen[a.Name] = true
	}
	for _, f := range findings {
		if !seen[f.Analyzer] {
			seen[f.Analyzer] = true
			driver.Rules = append(driver.Rules, sarifRule{
				ID:               f.Analyzer,
				ShortDescription: sarifText{Text: "sddsvet " + f.Analyzer},
			})
		}
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		res := sarifResult{
			RuleID:        f.Analyzer,
			Level:         "error",
			BaselineState: "new",
			Message:       sarifText{Text: f.Message},
			Locations:     []sarifLocation{sarifLoc(f.File, f.Line, f.Col, "")},
		}
		if f.Baselined {
			res.Level = "note"
			res.BaselineState = "unchanged"
		}
		for _, st := range f.Chain {
			if st.File == "" {
				continue
			}
			label := st.Func
			if st.Note != "" {
				label += " — " + st.Note
			}
			res.RelatedLocations = append(res.RelatedLocations, sarifLoc(st.File, st.Line, st.Col, label))
		}
		results = append(results, res)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

func sarifLoc(file string, line, col int, label string) sarifLocation {
	loc := sarifLocation{PhysicalLocation: sarifPhysical{ArtifactLocation: sarifArtifact{URI: file}}}
	if line > 0 {
		loc.PhysicalLocation.Region = &sarifRegion{StartLine: line, StartColumn: col}
	}
	if label != "" {
		loc.Message = &sarifText{Text: label}
	}
	return loc
}
