// Package faultbad is the simdet fixture for the fault-injection layer:
// an injector that decides hits from the globally-seeded RNG or the wall
// clock would silently break run reproducibility, so both are flagged.
// The splitmix-style counter stream the real injector uses is allowed.
package faultbad

import (
	"math/rand"
	"time"
)

type injector struct {
	state     [4]uint64
	threshold [4]uint64
	injected  [4]int64
}

func (in *injector) hitFromGlobalRand(site int) bool {
	return rand.Uint64() < in.threshold[site] // want `global math/rand\.Uint64 is randomly seeded`
}

func (in *injector) hitFromWallClock(site int) bool {
	return time.Now().UnixNano()&1 == 0 // want `time\.Now in a simulation package`
}

func (in *injector) hitFromFloat(site int) bool {
	return rand.Float64() < 0.01 // want `global math/rand\.Float64 is randomly seeded`
}

// hit is the real injector's shape: a per-site splitmix64 counter stream,
// deterministic in the seed. Allowed.
func (in *injector) hit(site int) bool {
	th := in.threshold[site]
	if th == 0 {
		return false
	}
	in.state[site] += 0x9E3779B97F4A7C15
	x := in.state[site]
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	if x >= th {
		return false
	}
	in.injected[site]++
	return true
}

// seededStream is the engine-style seeded RNG constructor: allowed.
func seededStream(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
