// Package cliutil is the one flag→Request translation layer shared by the
// CLIs (sddsim, sddstables) and the sddsd service daemon. Flag names,
// defaults, and semantics (-faults specs, -timeout deadlines, -workers
// bounds, -journal/-resume) are defined here exactly once, so they cannot
// drift between the binaries or diverge from the HTTP API — every entry
// point funnels into the same canonical harness.Request / harness.Config.
package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"sdds/internal/cluster"
	"sdds/internal/compilecache"
	"sdds/internal/diag"
	"sdds/internal/fault"
	"sdds/internal/harness"
)

// OpenCompileCache resolves the shared -compile-cache flag value: "" or
// "on" builds an in-process cache, "off" disables caching entirely
// (disabled=true, the inline-compile baseline), and any other value is
// a path to a persistent artifact store shared across invocations.
func OpenCompileCache(mode string) (cache *compilecache.Cache, disabled bool, err error) {
	switch mode {
	case "", "on":
		return compilecache.New(), false, nil
	case "off":
		return nil, true, nil
	default:
		c, err := compilecache.Open(mode)
		if err != nil {
			return nil, false, err
		}
		return c, false, nil
	}
}

// RunFlags are the single-run flags (sddsim, and the service's defaults):
// one application under one policy on one cluster configuration.
type RunFlags struct {
	App        string
	Policy     string
	Scheduling bool
	Scale      float64
	Procs      int
	IONodes    int
	Delta      int
	Theta      int
	Seed       int64
	Faults     string
	Timeout    time.Duration
	// CompileCache is the -compile-cache mode: "on" (in-process), "off"
	// (inline compile), or a persistent artifact-store path.
	CompileCache string
}

// Register installs the run flags on fs with the Table II defaults.
func (f *RunFlags) Register(fs *flag.FlagSet) {
	def := cluster.DefaultConfig()
	fs.StringVar(&f.App, "app", "hf", "application (hf, sar, astro, apsi, madbench2, wupwise)")
	fs.StringVar(&f.Policy, "policy", "default", "power policy (default, simple, prediction, history, staggered)")
	fs.BoolVar(&f.Scheduling, "scheduling", false, "enable the compiler-directed scheduling framework")
	fs.Float64Var(&f.Scale, "scale", 1.0, "workload scale factor")
	fs.IntVar(&f.Procs, "procs", def.Procs, "client (compute) nodes")
	fs.IntVar(&f.IONodes, "ionodes", def.Layout.NumNodes, "I/O nodes")
	fs.IntVar(&f.Delta, "delta", def.Compiler.Delta, "vertical reuse range δ")
	fs.IntVar(&f.Theta, "theta", def.Compiler.Theta, "per-node concurrency cap θ (0 = unbounded)")
	fs.Int64Var(&f.Seed, "seed", 1, "simulation seed")
	fs.StringVar(&f.Faults, "faults", "", "deterministic fault-injection spec, e.g. 'read=0.01,spinup-fail=0.2,seed=7' (empty = no injection)")
	fs.DurationVar(&f.Timeout, "timeout", 0, "wall-clock deadline for the run (0 = none)")
	fs.StringVar(&f.CompileCache, "compile-cache", "on", "compile-artifact cache: on, off, or a persistent JSONL store path")
}

// Request translates the parsed flags into the canonical normalized
// harness.Request — the same struct the HTTP API accepts — with
// "did you mean" validation for app, policy, and fault-spec typos.
func (f *RunFlags) Request() (harness.Request, error) {
	theta := f.Theta
	if theta == 0 {
		theta = -1 // flag 0 means unbounded; the tag grammar spells it theta=0
	}
	ov := harness.VariantOverrides{
		Procs: f.Procs,
		Nodes: f.IONodes,
		Delta: f.Delta,
		Theta: theta,
	}
	req := harness.Request{
		App:        f.App,
		Policy:     f.Policy,
		Scheduling: f.Scheduling,
		Scale:      f.Scale,
		Seed:       f.Seed,
		Variant:    ov.Tag(),
		Faults:     f.Faults,
		TimeoutMS:  f.Timeout.Milliseconds(),
	}
	return req.Normalize()
}

// SweepFlags are the experiment-sweep flags (sddstables, sddsd): the
// harness config scope plus the worker pool and the crash-safe journal.
type SweepFlags struct {
	Scale   float64
	Seed    int64
	Apps    string
	Faults  string
	Workers int
	Timeout time.Duration
	Journal string
	Resume  bool
	// CompileCache is the -compile-cache mode: "on" (in-process), "off"
	// (inline compile), or a persistent artifact-store path.
	CompileCache string
}

// Register installs the sweep flags on fs.
func (f *SweepFlags) Register(fs *flag.FlagSet) {
	fs.Float64Var(&f.Scale, "scale", 1.0, "workload scale factor")
	fs.Int64Var(&f.Seed, "seed", 1, "simulation seed")
	fs.StringVar(&f.Apps, "apps", "", "comma-separated application subset (default: all six)")
	fs.StringVar(&f.Faults, "faults", "", "deterministic fault-injection spec, e.g. 'read=0.01,net-drop=0.005,seed=7' (empty = no injection)")
	fs.IntVar(&f.Workers, "workers", 0, "concurrent cluster simulations (0 = GOMAXPROCS)")
	fs.DurationVar(&f.Timeout, "timeout", 0, "per-run wall-clock deadline (0 = none); a run exceeding it fails with a deadline error")
	fs.StringVar(&f.Journal, "journal", "", "append every completed run to this crash-safe JSONL journal")
	fs.BoolVar(&f.Resume, "resume", false, "with -journal: reload its intact entries and simulate only the missing runs")
	fs.StringVar(&f.CompileCache, "compile-cache", "on", "compile-artifact cache: on, off, or a persistent JSONL store path")
}

// OpenCompileCache resolves the sweep's -compile-cache flag.
func (f *SweepFlags) OpenCompileCache() (*compilecache.Cache, bool, error) {
	return OpenCompileCache(f.CompileCache)
}

// Config validates the parsed flags and returns the harness config scope.
// Every name-shaped flag fails here, before anything simulates.
func (f *SweepFlags) Config() (harness.Config, error) {
	cfg := harness.Config{Scale: f.Scale, Seed: f.Seed}
	if f.Faults != "" {
		fc, err := fault.ParseSpec(f.Faults)
		if err != nil {
			return harness.Config{}, err
		}
		cfg.Faults = fc
	}
	if f.Apps != "" {
		cfg.Apps = strings.Split(f.Apps, ",")
		for i := range cfg.Apps {
			cfg.Apps[i] = strings.TrimSpace(cfg.Apps[i])
		}
	}
	if err := cfg.Validate(); err != nil {
		return harness.Config{}, err
	}
	return cfg, nil
}

// OpenJournal opens the journal the flags name (nil when -journal is
// unset). -resume without -journal is rejected here, and a journal path
// naming a directory is rejected by the store, each with a clear error —
// neither silently runs uncached.
func (f *SweepFlags) OpenJournal() (*harness.Journal, error) {
	return f.OpenJournalWith(nil)
}

// OpenJournalWith is OpenJournal with structured logging on the opened
// store (resume recovery, torn-tail truncation).
func (f *SweepFlags) OpenJournalWith(log *slog.Logger) (*harness.Journal, error) {
	if f.Resume && f.Journal == "" {
		return nil, errors.New("-resume requires -journal")
	}
	if f.Journal == "" {
		return nil, nil
	}
	return harness.OpenJournalWith(f.Journal, f.Resume, log)
}

// DiagFlags are the shared diagnostics flags (sddsim, sddstables, sddsd):
// the capture directory, the slow-run watchdog multiplier, and the
// structured-log destination. Defined once so the trigger semantics and
// flag spellings cannot drift between binaries.
type DiagFlags struct {
	CaptureDir string
	Watchdog   float64
	Log        string
}

// Register installs the diagnostics flags on fs.
func (f *DiagFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.CaptureDir, "capture-dir", "",
		"capture failing, timed-out, panicking, and watchdog-flagged runs as diagnostics bundles in this directory (empty = capture off)")
	fs.Float64Var(&f.Watchdog, "watchdog", 4,
		"with -capture-dir: capture runs slower than this multiple of the rolling median run time (<=0 disarms the watchdog)")
	fs.StringVar(&f.Log, "log", "",
		"structured JSON log destination: 'stderr' or a file path (empty = logging off)")
}

// NewLogger resolves the -log flag: a nil logger when unset, stderr or an
// append-mode file otherwise. The returned close function flushes the
// file destination (a no-op for stderr); call it on exit.
func (f *DiagFlags) NewLogger() (*slog.Logger, func() error, error) {
	noop := func() error { return nil }
	switch f.Log {
	case "":
		return nil, noop, nil
	case "stderr", "-":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), noop, nil
	default:
		file, err := os.OpenFile(f.Log, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, noop, fmt.Errorf("-log: %w", err)
		}
		return slog.New(slog.NewJSONHandler(file, nil)), file.Close, nil
	}
}

// NewRecorder resolves the capture flags: a nil recorder (capture off)
// when -capture-dir is unset.
func (f *DiagFlags) NewRecorder(log *slog.Logger) (*diag.Recorder, error) {
	if f.CaptureDir == "" {
		return nil, nil
	}
	return diag.NewRecorder(diag.Options{
		Dir:            f.CaptureDir,
		SlowMultiplier: f.Watchdog,
		Log:            log,
	})
}
