package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sdds/internal/stripe"
)

func sig16(nodes ...int) stripe.Signature { return stripe.SignatureOf(16, nodes...) }
func sig4(nodes ...int) stripe.Signature  { return stripe.SignatureOf(4, nodes...) }

// fixed returns an access pinned to a single slot (slack length 1).
func fixed(id, proc, slot int, sig stripe.Signature) *Access {
	return &Access{ID: id, Proc: proc, Begin: slot, End: slot, Length: 1, Sig: sig, Orig: slot}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams(100, 8).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{NumSlots: 0, NumNodes: 8},
		{NumSlots: 10, NumNodes: 0},
		{NumSlots: 10, NumNodes: 8, Delta: -1},
		{NumSlots: 10, NumNodes: 8, Theta: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %d validated", i)
		}
	}
}

func TestAccessValidate(t *testing.T) {
	ok := &Access{ID: 1, Proc: 0, Begin: 0, End: 5, Length: 1, Sig: sig16(1)}
	if err := ok.Validate(10, 16); err != nil {
		t.Fatal(err)
	}
	bad := []*Access{
		{ID: 1, Begin: 0, End: 5, Length: 0, Sig: sig16(1)},
		{ID: 1, Begin: -1, End: 5, Length: 1, Sig: sig16(1)},
		{ID: 1, Begin: 5, End: 4, Length: 1, Sig: sig16(1)},
		{ID: 1, Begin: 0, End: 10, Length: 1, Sig: sig16(1)},
		{ID: 1, Begin: 0, End: 5, Length: 1, Sig: sig4(1)},
		{ID: 1, Begin: 0, End: 5, Length: 1, Sig: sig16()},
	}
	for i, a := range bad {
		if err := a.Validate(10, 16); err == nil {
			t.Errorf("access %d validated", i)
		}
	}
}

func TestWeightFormula(t *testing.T) {
	// Eq. 3 with δ=4: σ0=1, σ1=0.8, σ2=0.6 (the paper's Fig. 7 example).
	for k, want := range map[int]float64{0: 1, 1: 0.8, 2: 0.6, 3: 0.4, 4: 0.2, 5: 0} {
		if got := Weight(k, 4); math.Abs(got-want) > 1e-12 {
			t.Errorf("Weight(%d,4) = %v, want %v", k, got, want)
		}
	}
	if Weight(-2, 4) != Weight(2, 4) {
		t.Error("Weight must be symmetric in k")
	}
	if Weight(100, 4) != 0 {
		t.Error("Weight beyond δ must be 0")
	}
}

func TestLatestStart(t *testing.T) {
	a := &Access{Begin: 3, End: 10, Length: 4}
	if got := a.LatestStart(); got != 7 {
		t.Fatalf("LatestStart = %d, want 7", got)
	}
	long := &Access{Begin: 3, End: 4, Length: 10}
	if got := long.LatestStart(); got != 3 {
		t.Fatalf("over-long access LatestStart = %d, want Begin", got)
	}
}

// TestPaperBasicExample reproduces the worked example of §IV-B1: with the
// group signatures around A4's slack set up as in Fig. 8/9 (δ=2, 16 I/O
// nodes), the algorithm must pick slot t8 for A4.
func TestPaperBasicExample(t *testing.T) {
	s, err := NewScheduler(Params{NumSlots: 14, NumNodes: 16, Delta: 2, Order: OrderInput})
	if err != nil {
		t.Fatal(err)
	}
	gA := sig16(2, 10)       // A1/A3/A5/A8's signature
	gB := sig16(1, 9)        // A2/A4/A9/A10's signature
	gC := sig16(1, 2, 9, 10) // A6
	gD := sig16(0, 8)        // A7

	// Pre-scheduled accesses (filled circles in Fig. 8). A4 shares process
	// 2 with A5@t4, A6@t7, A7@t10, making those slots unavailable.
	pre := []*Access{
		fixed(5, 2, 4, gA),  // A5 @ t4
		fixed(6, 2, 7, gC),  // A6 @ t7
		fixed(7, 2, 10, gD), // A7 @ t10
		fixed(8, 1, 5, gA),  // A8 @ t5  → G5 = {2,10}
		fixed(3, 1, 6, gA),  // A3 @ t6  \ G6 = {1,2,9,10}
		fixed(9, 3, 6, gB),  // A9 @ t6  /
		fixed(10, 3, 8, gB), // A10 @ t8 → G8 = {1,9}
	}
	a4 := &Access{ID: 4, Proc: 2, Begin: 3, End: 10, Length: 1, Sig: gB, Orig: 10}
	sched, err := s.Schedule(append(pre, a4))
	if err != nil {
		t.Fatal(err)
	}
	// Distances from the example: D(g4,G6)=16, D(g4,G5)=20, D(g4,G7)=16,
	// D(g4,G4)=20, D(g4,G8)=14.
	for slot, want := range map[int]int{4: 20, 5: 20, 6: 16, 7: 16, 8: 14} {
		if got := gB.Distance(s.GroupSignature(slot)); got != want {
			t.Errorf("D(g4, G%d) = %d, want %d", slot, got, want)
		}
	}
	got, ok := sched.PointOf(4)
	if !ok {
		t.Fatal("A4 not scheduled")
	}
	if got != 8 {
		t.Fatalf("A4 scheduled at t%d, want t8 (paper's answer)", got)
	}
	// Busy same-process slots must never be chosen even if better.
	for _, busy := range []int{4, 7, 10} {
		if got == busy {
			t.Fatalf("A4 placed on unavailable slot t%d", busy)
		}
	}
}

// TestPaperExtendedExample reproduces the §IV-B2 setting: accesses with
// lengths (Fig. 10, Table I signatures on a 4-node architecture). It checks
// the group signatures G5 = g1|g3|g4 and G6 = g1|g4 and that slot t5 meets
// the θ=2 constraint for A2 while tighter θ=1 rejects it.
func TestPaperExtendedExample(t *testing.T) {
	mk := func(theta int) (*Scheduler, *Access, *Schedule) {
		s, err := NewScheduler(Params{NumSlots: 16, NumNodes: 4, Delta: 2, Theta: theta, Order: OrderInput})
		if err != nil {
			t.Fatal(err)
		}
		g1 := sig4(1, 2)
		g3 := sig4(2)
		g4 := sig4(3)
		g5 := sig4(2)
		pre := []*Access{
			{ID: 1, Proc: 1, Begin: 1, End: 1, Length: 12, Sig: g1, Orig: 1},
			{ID: 3, Proc: 2, Begin: 2, End: 2, Length: 4, Sig: g3, Orig: 2},
			{ID: 4, Proc: 3, Begin: 3, End: 3, Length: 6, Sig: g4, Orig: 3},
			{ID: 5, Proc: 4, Begin: 7, End: 7, Length: 6, Sig: g5, Orig: 7},
		}
		a2 := &Access{ID: 2, Proc: 5, Begin: 3, End: 11, Length: 3, Sig: sig4(1), Orig: 11}
		sched, err := s.Schedule(append(pre, a2))
		if err != nil {
			t.Fatal(err)
		}
		return s, a2, sched
	}

	s, a2, _ := mk(0)
	// G5 = g1|g3|g4 = {1,2,3}; G6 = g1|g4 = {1,2,3} minus g3's {2}... g1
	// already covers 2, so both are {1,2,3}.
	if got := s.GroupSignature(5).String(); got != "0111" {
		t.Fatalf("G5 = %s, want 0111 (g1|g3|g4)", got)
	}
	if got := s.GroupSignature(6).String(); got != "0111" {
		t.Fatalf("G6 = %s, want 0111 (g1|g4, g1 covers node 2)", got)
	}
	// Verify the extended reuse factor at t5 by hand: span t5..t7 weight 1,
	// t4/t8 weight 2/3, t3/t9 weight 1/3 (δ=2).
	inv := func(slot int) float64 { return a2.Sig.InverseDistance(s.GroupSignature(slot)) }
	want := inv(5) + inv(6) + inv(7) + 2.0/3*(inv(4)+inv(8)) + 1.0/3*(inv(3)+inv(9))
	if got := s.reuseFactor(a2, 5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("extended reuse factor at t5 = %v, want %v", got, want)
	}

	// θ=2: t5 is an eligible point (every node ≤ 2 concurrent accesses over
	// A2's span), as the paper states.
	s2, a2b, _ := mk(2)
	// Re-derive eligibility on a fresh scheduler with the pre accesses only.
	if !s2.thetaOK(a2b, 5) {
		t.Fatal("t5 must satisfy θ=2 for A2 (paper's example)")
	}
	// θ=1: node 1 already carries A1 across t5..t7, so adding A2 violates.
	s1, a2c, _ := mk(1)
	if s1.thetaOK(a2c, 5) {
		t.Fatal("t5 must violate θ=1 for A2")
	}
}

func TestShortestSlackScheduledFirst(t *testing.T) {
	// Two accesses, same process, overlapping slacks. The short one must
	// claim its only slot; the long one goes elsewhere.
	s, _ := NewScheduler(Params{NumSlots: 10, NumNodes: 4, Delta: 2})
	short := &Access{ID: 1, Proc: 0, Begin: 3, End: 3, Length: 1, Sig: sig4(0), Orig: 3}
	long := &Access{ID: 2, Proc: 0, Begin: 0, End: 9, Length: 1, Sig: sig4(0), Orig: 9}
	sched, err := s.Schedule([]*Access{long, short})
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := sched.PointOf(1)
	p2, _ := sched.PointOf(2)
	if p1 != 3 {
		t.Fatalf("short access at %d, want 3", p1)
	}
	if p2 == 3 {
		t.Fatal("long access collided with short one on same process")
	}
}

func TestHorizontalReuseAttracts(t *testing.T) {
	// Process 0 pins an access at slot 5 on nodes {1,2}. Process 1's access
	// with identical signature and slack [0,9] should co-schedule at 5.
	s, _ := NewScheduler(Params{NumSlots: 10, NumNodes: 8, Delta: 0})
	pin := fixed(1, 0, 5, stripe.SignatureOf(8, 1, 2))
	free := &Access{ID: 2, Proc: 1, Begin: 0, End: 9, Length: 1, Sig: stripe.SignatureOf(8, 1, 2), Orig: 9}
	sched, err := s.Schedule([]*Access{pin, free})
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := sched.PointOf(2); p != 5 {
		t.Fatalf("free access at %d, want 5 (horizontal reuse)", p)
	}
}

func TestVerticalReuseAttracts(t *testing.T) {
	// Same process this time: slot 5 is unavailable for proc 0, but δ=3
	// vertical reuse should pull the second access adjacent to slot 5.
	s, _ := NewScheduler(Params{NumSlots: 20, NumNodes: 8, Delta: 3})
	pin := fixed(1, 0, 5, stripe.SignatureOf(8, 1, 2))
	free := &Access{ID: 2, Proc: 0, Begin: 0, End: 19, Length: 1, Sig: stripe.SignatureOf(8, 1, 2), Orig: 19}
	sched, err := s.Schedule([]*Access{pin, free})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := sched.PointOf(2)
	if p == 5 {
		t.Fatal("second access shares proc 0's occupied slot")
	}
	if p != 4 && p != 6 {
		t.Fatalf("second access at %d, want adjacent to 5 (vertical reuse)", p)
	}
}

func TestDisjointSignatureRepelled(t *testing.T) {
	// An access on disjoint nodes should avoid the slot where activity on
	// other nodes is concentrated, when an empty region is available.
	s, _ := NewScheduler(Params{NumSlots: 30, NumNodes: 8, Delta: 2})
	var pre []*Access
	for i := 0; i < 4; i++ {
		pre = append(pre, fixed(10+i, i, 15, stripe.SignatureOf(8, 0, 1)))
	}
	free := &Access{ID: 1, Proc: 9, Begin: 0, End: 29, Length: 1, Sig: stripe.SignatureOf(8, 6, 7), Orig: 29}
	sched, err := s.Schedule(append(pre, free))
	if err != nil {
		t.Fatal(err)
	}
	p, _ := sched.PointOf(1)
	if p >= 13 && p <= 17 {
		t.Fatalf("disjoint access at %d, inside the busy window around 15", p)
	}
}

func TestThetaCapsConcurrency(t *testing.T) {
	// 6 processes all wanting node 0 with full flexibility; θ=2 must spread
	// them so no slot has more than 2.
	s, _ := NewScheduler(Params{NumSlots: 10, NumNodes: 4, Delta: 1, Theta: 2})
	var accs []*Access
	for i := 0; i < 6; i++ {
		accs = append(accs, &Access{ID: i, Proc: i, Begin: 0, End: 9, Length: 1, Sig: sig4(0), Orig: 9})
	}
	sched, err := s.Schedule(accs)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sched.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxPerNode > 2 {
		t.Fatalf("θ=2 violated: %d concurrent accesses on one node", rep.MaxPerNode)
	}
	if rep.ProcOverlaps != 0 {
		t.Fatalf("unexpected process overlaps: %d", rep.ProcOverlaps)
	}
}

func TestThetaFallbackMinimumExcess(t *testing.T) {
	// More same-slot demand than θ can possibly satisfy (window of a single
	// slot): the scheduler must still place everything (best effort).
	s, _ := NewScheduler(Params{NumSlots: 3, NumNodes: 2, Delta: 0, Theta: 1})
	var accs []*Access
	for i := 0; i < 5; i++ {
		accs = append(accs, &Access{ID: i, Proc: i, Begin: 1, End: 1, Length: 1, Sig: stripe.SignatureOf(2, 0), Orig: 1})
	}
	sched, err := s.Schedule(accs)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Len() != 5 {
		t.Fatalf("scheduled %d of 5", sched.Len())
	}
}

func TestExtendedLengthsNoProcessOverlap(t *testing.T) {
	s, _ := NewScheduler(Params{NumSlots: 40, NumNodes: 4, Delta: 2})
	accs := []*Access{
		{ID: 1, Proc: 0, Begin: 0, End: 30, Length: 5, Sig: sig4(0), Orig: 30},
		{ID: 2, Proc: 0, Begin: 0, End: 30, Length: 7, Sig: sig4(0), Orig: 30},
		{ID: 3, Proc: 0, Begin: 0, End: 30, Length: 3, Sig: sig4(1), Orig: 30},
	}
	sched, err := s.Schedule(accs)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sched.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProcOverlaps != 0 {
		t.Fatalf("process overlaps: %d", rep.ProcOverlaps)
	}
}

func TestLengthFitsWithinSlack(t *testing.T) {
	s, _ := NewScheduler(Params{NumSlots: 20, NumNodes: 4, Delta: 2})
	a := &Access{ID: 1, Proc: 0, Begin: 5, End: 10, Length: 4, Sig: sig4(0), Orig: 10}
	sched, err := s.Schedule([]*Access{a})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := sched.PointOf(1)
	if p < 5 || p+4-1 > 10 {
		t.Fatalf("access of length 4 at %d overruns slack [5,10]", p)
	}
}

func TestRandomTiesStillValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, _ := NewScheduler(Params{NumSlots: 50, NumNodes: 8, Delta: 2, RandomTies: rng.Intn})
	var accs []*Access
	for i := 0; i < 30; i++ {
		accs = append(accs, &Access{
			ID: i, Proc: i % 4, Begin: 0, End: 49, Length: 1,
			Sig: stripe.SignatureOf(8, i%8), Orig: 49,
		})
	}
	sched, err := s.Schedule(accs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulingPacksAccesses(t *testing.T) {
	// The core claim: with scheduling, accesses sharing I/O nodes cluster
	// into fewer active slots than a spread-out baseline. Use accesses
	// originally spread across 200 slots with generous slacks.
	mk := func() []*Access {
		var accs []*Access
		for i := 0; i < 64; i++ {
			orig := 3 * i
			begin := orig - 40
			if begin < 0 {
				begin = 0
			}
			accs = append(accs, &Access{
				ID: i, Proc: i % 8, Begin: begin, End: orig, Length: 1,
				Sig: stripe.SignatureOf(8, i%4, 4+i%4), Orig: orig,
			})
		}
		return accs
	}
	s, _ := NewScheduler(Params{NumSlots: 200, NumNodes: 8, Delta: 20})
	sched, err := s.Schedule(mk())
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: every access at its original point.
	base := newSchedule(Params{NumSlots: 200, NumNodes: 8}, 64)
	for _, a := range mk() {
		base.assign(a, a.Orig)
	}
	base.finalize()
	if got, want := sched.ActiveSlotCount(), base.ActiveSlotCount(); got >= want {
		t.Fatalf("scheduled active slots %d not below baseline %d", got, want)
	}
	if got, want := sched.NodeActivations(), base.NodeActivations(); got >= want {
		t.Fatalf("node activations %d not below baseline %d", got, want)
	}
}

func TestMovedEarlier(t *testing.T) {
	s, _ := NewScheduler(Params{NumSlots: 20, NumNodes: 4, Delta: 2})
	pin := fixed(1, 0, 2, sig4(0))
	// Orig at 15, will be pulled toward 2 by reuse.
	free := &Access{ID: 2, Proc: 1, Begin: 0, End: 15, Length: 1, Sig: sig4(0), Orig: 15}
	sched, err := s.Schedule([]*Access{pin, free})
	if err != nil {
		t.Fatal(err)
	}
	moved := sched.MovedEarlier(1)
	if len(moved) != 1 || moved[0].AccessID != 2 {
		t.Fatalf("MovedEarlier = %+v", moved)
	}
	if len(sched.MovedEarlier(0)) != 0 {
		t.Fatal("pinned access reported as moved")
	}
}

func TestScheduleTablesSortedPerProcess(t *testing.T) {
	s, _ := NewScheduler(Params{NumSlots: 100, NumNodes: 8, Delta: 5})
	var accs []*Access
	for i := 0; i < 40; i++ {
		accs = append(accs, &Access{
			ID: i, Proc: i % 3, Begin: 0, End: 99, Length: 1,
			Sig: stripe.SignatureOf(8, i%8), Orig: 99,
		})
	}
	sched, err := s.Schedule(accs)
	if err != nil {
		t.Fatal(err)
	}
	procs := sched.Procs()
	if len(procs) != 3 {
		t.Fatalf("Procs = %v", procs)
	}
	total := 0
	for _, p := range procs {
		tab := sched.Table(p)
		total += len(tab)
		for i := 1; i < len(tab); i++ {
			if tab[i].Slot < tab[i-1].Slot {
				t.Fatalf("proc %d table unsorted at %d", p, i)
			}
		}
	}
	if total != 40 {
		t.Fatalf("tables hold %d entries, want 40", total)
	}
}

func TestScheduleRejectsInvalidAccess(t *testing.T) {
	s, _ := NewScheduler(Params{NumSlots: 10, NumNodes: 4, Delta: 1})
	if _, err := s.Schedule([]*Access{{ID: 1, Begin: 0, End: 20, Length: 1, Sig: sig4(0)}}); err == nil {
		t.Fatal("out-of-range slack accepted")
	}
}

func TestOrderAblations(t *testing.T) {
	mk := func(order OrderKind) *Schedule {
		s, _ := NewScheduler(Params{NumSlots: 60, NumNodes: 8, Delta: 10, Order: order})
		var accs []*Access
		for i := 0; i < 24; i++ {
			accs = append(accs, &Access{
				ID: i, Proc: i % 6, Begin: (i * 2) % 30, End: (i*2)%30 + 20 + i%9, Length: 1,
				Sig: stripe.SignatureOf(8, i%4, (i+4)%8), Orig: (i*2)%30 + 20 + i%9,
			})
		}
		sched, err := s.Schedule(accs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sched.Validate(); err != nil {
			t.Fatal(err)
		}
		return sched
	}
	// All three orders must produce structurally valid schedules.
	for _, o := range []OrderKind{OrderSlack, OrderInput, OrderLongestSlack} {
		mk(o)
	}
}

// Property: any mix of random accesses yields a schedule where every access
// sits inside its slack and no process double-books a slot.
func TestPropertyScheduleAlwaysValid(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		params := Params{NumSlots: 120, NumNodes: 8, Delta: rng.Intn(15), Theta: rng.Intn(4)}
		s, err := NewScheduler(params)
		if err != nil {
			return false
		}
		var accs []*Access
		for i := 0; i < n; i++ {
			b := rng.Intn(100)
			e := b + rng.Intn(119-b)
			length := 1 + rng.Intn(4)
			accs = append(accs, &Access{
				ID: i, Proc: rng.Intn(6), Begin: b, End: e, Length: length,
				Sig: stripe.SignatureOf(8, rng.Intn(8), rng.Intn(8)), Orig: e,
			})
		}
		sched, err := s.Schedule(accs)
		if err != nil {
			return false
		}
		if sched.Len() != n {
			return false
		}
		_, err = sched.Validate()
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: determinism — same input, same schedule (no RandomTies).
func TestPropertyDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		build := func() map[int]int {
			rng := rand.New(rand.NewSource(seed))
			s, _ := NewScheduler(Params{NumSlots: 80, NumNodes: 8, Delta: 8})
			var accs []*Access
			for i := 0; i < 25; i++ {
				b := rng.Intn(60)
				accs = append(accs, &Access{
					ID: i, Proc: rng.Intn(4), Begin: b, End: b + rng.Intn(79-b), Length: 1,
					Sig: stripe.SignatureOf(8, rng.Intn(8)), Orig: b,
				})
			}
			sched, err := s.Schedule(accs)
			if err != nil {
				return nil
			}
			out := make(map[int]int)
			for i := 0; i < 25; i++ {
				p, _ := sched.PointOf(i)
				out[i] = p
			}
			return out
		}
		a, b := build(), build()
		if a == nil || b == nil {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var accs []*Access
	for i := 0; i < 500; i++ {
		begin := rng.Intn(900)
		accs = append(accs, &Access{
			ID: i, Proc: i % 32, Begin: begin, End: begin + rng.Intn(999-begin), Length: 1 + rng.Intn(3),
			Sig: stripe.SignatureOf(8, rng.Intn(8), rng.Intn(8)), Orig: begin + 50,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := NewScheduler(Params{NumSlots: 1000, NumNodes: 8, Delta: 20, Theta: 4})
		if _, err := s.Schedule(accs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRescaleMapsPointsBack(t *testing.T) {
	s, _ := NewScheduler(Params{NumSlots: 10, NumNodes: 4, Delta: 1})
	accs := []*Access{
		{ID: 0, Proc: 0, Begin: 0, End: 9, Length: 1, Sig: sig4(0), Orig: 9},
		{ID: 1, Proc: 1, Begin: 2, End: 7, Length: 1, Sig: sig4(1), Orig: 7},
	}
	sched, err := s.Schedule(accs)
	if err != nil {
		t.Fatal(err)
	}
	full := sched.Rescale(4, 40, func(id int) (int, int) {
		if id == 0 {
			return 0, 39
		}
		return 8, 31
	})
	for _, id := range []int{0, 1} {
		pt, ok := full.PointOf(id)
		if !ok {
			t.Fatalf("access %d lost in rescale", id)
		}
		coarse, _ := sched.PointOf(id)
		want := coarse * 4
		lo, hi := 0, 39
		if id == 1 {
			lo, hi = 8, 31
		}
		if want < lo {
			want = lo
		}
		if want > hi {
			want = hi
		}
		if pt != want {
			t.Fatalf("access %d rescaled to %d, want %d", id, pt, want)
		}
	}
	if _, err := full.Validate(); err != nil {
		t.Fatal(err)
	}
	// d ≤ 1 is the identity.
	if sched.Rescale(1, 10, nil) != sched {
		t.Fatal("Rescale(1) must be identity")
	}
}
