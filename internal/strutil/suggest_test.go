package strutil

import (
	"reflect"
	"testing"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"", "xy", 2},
		{"kitten", "sitting", 3},
		{"sar", "sarr", 1},
		{"madbench", "madbench2", 1},
		{"fig12c", "fig12d", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSuggest(t *testing.T) {
	apps := []string{"hf", "sar", "astro", "apsi", "madbench2", "wupwise"}
	if got := Suggest("sarr", apps); len(got) == 0 || got[0] != "sar" {
		t.Fatalf("Suggest(sarr) = %v", got)
	}
	if got := Suggest("madbench", apps); len(got) == 0 || got[0] != "madbench2" {
		t.Fatalf("Suggest(madbench) = %v", got)
	}
	if got := Suggest("zzzzzz", apps); got != nil {
		t.Fatalf("Suggest(zzzzzz) = %v, want nil", got)
	}
	// Prefix match beyond distance 2.
	ids := []string{"fig12a", "fig12b", "cachesens"}
	if got := Suggest("cache", ids); len(got) == 0 || got[0] != "cachesens" {
		t.Fatalf("Suggest(cache) = %v", got)
	}
	// Exact match is not a suggestion.
	if got := Suggest("sar", apps); len(got) != 0 && got[0] == "sar" {
		t.Fatalf("Suggest(sar) includes the exact match: %v", got)
	}
}

func TestSuggestOrdersByDistance(t *testing.T) {
	got := Suggest("fig12c", []string{"fig13c", "fig12d", "fig12a"})
	want := []string{"fig12a", "fig12d", "fig13c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Suggest = %v, want %v", got, want)
	}
}

func TestSuggestCapsResults(t *testing.T) {
	ids := []string{"fig12a", "fig12b", "fig12c", "fig12d", "fig13a", "fig13b", "fig13c", "fig13d", "fig14a", "fig14b"}
	got := Suggest("fig12e", ids)
	if len(got) != suggestMaxResults {
		t.Fatalf("Suggest(fig12e) returned %d candidates (%v), want %d", len(got), got, suggestMaxResults)
	}
	if got[0] != "fig12a" {
		t.Fatalf("Suggest(fig12e) = %v, want fig12a first", got)
	}
}
