package cliutil

import (
	"flag"
	"path/filepath"
	"strings"
	"testing"

	"sdds/internal/harness"
)

func parseRun(t *testing.T, args ...string) RunFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var rf RunFlags
	rf.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return rf
}

// TestRunFlagsDefaultRequest asserts a flagless invocation translates to
// the canonical Table II request: empty variant, canonical policy.
func TestRunFlagsDefaultRequest(t *testing.T) {
	rf := parseRun(t)
	req, err := rf.Request()
	if err != nil {
		t.Fatal(err)
	}
	want := harness.Request{App: "hf", Policy: "default", Scale: 1.0, Seed: 1}
	if req != want {
		t.Fatalf("request %+v, want %+v", req, want)
	}
}

// TestRunFlagsVariantTranslation pins the flag→variant-tag mapping,
// including -theta=0 meaning unbounded (not "use the default").
func TestRunFlagsVariantTranslation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{nil, ""},
		{[]string{"-theta", "8"}, "theta=8"},
		{[]string{"-theta", "0"}, "theta=0"},
		{[]string{"-ionodes", "16", "-delta", "40"}, "delta=40,nodes=16"},
		{[]string{"-procs", "32"}, ""}, // restating the default
	}
	for _, tc := range cases {
		rf := parseRun(t, tc.args...)
		req, err := rf.Request()
		if err != nil {
			t.Fatalf("%v: %v", tc.args, err)
		}
		if req.Variant != tc.want {
			t.Errorf("%v → variant %q, want %q", tc.args, req.Variant, tc.want)
		}
	}
}

// TestRunFlagsSuggests asserts the did-you-mean validation reaches the
// CLI through the shared translation layer.
func TestRunFlagsSuggests(t *testing.T) {
	rf := parseRun(t, "-policy", "histroy")
	if _, err := rf.Request(); err == nil || !strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("want did-you-mean error, got %v", err)
	}
}

// TestSweepFlagsResumeRequiresJournal pins the satellite fix: -resume
// without -journal is a clear error, not a silent uncached run.
func TestSweepFlagsResumeRequiresJournal(t *testing.T) {
	sf := SweepFlags{Resume: true}
	if _, err := sf.OpenJournal(); err == nil || !strings.Contains(err.Error(), "-resume requires -journal") {
		t.Fatalf("want -resume error, got %v", err)
	}
}

// TestSweepFlagsRejectsDirectoryJournal pins the other half of the fix: a
// journal path naming a directory is rejected with a clear error.
func TestSweepFlagsRejectsDirectoryJournal(t *testing.T) {
	sf := SweepFlags{Journal: t.TempDir(), Resume: true}
	if _, err := sf.OpenJournal(); err == nil || !strings.Contains(err.Error(), "is a directory") {
		t.Fatalf("want directory error, got %v", err)
	}
}

// TestSweepFlagsNoJournal asserts the journal stays nil when unset.
func TestSweepFlagsNoJournal(t *testing.T) {
	var sf SweepFlags
	j, err := sf.OpenJournal()
	if err != nil || j != nil {
		t.Fatalf("OpenJournal() = %v, %v, want nil, nil", j, err)
	}
}

// TestSweepFlagsConfigValidates asserts app typos fail at flag time.
func TestSweepFlagsConfigValidates(t *testing.T) {
	sf := SweepFlags{Scale: 1, Seed: 1, Apps: "sarr"}
	if _, err := sf.Config(); err == nil {
		t.Fatal("unknown app validated")
	}
	sf = SweepFlags{Scale: 1, Seed: 1, Faults: "bogus=0.1"}
	if _, err := sf.Config(); err == nil {
		t.Fatal("bad fault spec validated")
	}
	j := SweepFlags{Scale: 0.05, Seed: 42, Apps: "sar, hf", Journal: filepath.Join(t.TempDir(), "j.jsonl")}
	cfg, err := j.Config()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Apps) != 2 || cfg.Apps[0] != "sar" || cfg.Apps[1] != "hf" {
		t.Fatalf("apps = %v", cfg.Apps)
	}
}
