package hotalloc_test

import (
	"testing"

	"sdds/internal/analysis/analysistest"
	"sdds/internal/analysis/hotalloc"
)

// TestHotalloc covers the schedule-closure check, every hotpath allocation
// kind, the allowed pre-bound/non-capturing/cold patterns, and the
// //sddsvet:ignore suppression path.
func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata/src/hotallocbad", hotalloc.Analyzer)
}
