// Package cluster wires the full simulated system of Fig. 1 and executes a
// program on it: client processes (one per client node) advancing through
// their scheduling slots, the MPI-IO middleware striping I/O over the I/O
// nodes, per-disk power policies, and — when the framework is enabled — the
// compiler pass plus the runtime data access scheduler with its global
// client buffer. It produces the measurements every figure of the paper is
// built from: execution time, disk energy, and the idle-period histogram.
package cluster

import (
	"context"
	"fmt"

	"sdds/internal/compiler"
	"sdds/internal/disk"
	"sdds/internal/fault"
	"sdds/internal/ionode"
	"sdds/internal/loop"
	"sdds/internal/netsim"
	"sdds/internal/power"
	"sdds/internal/probe"
	"sdds/internal/sim"
	"sdds/internal/stripe"
)

// Config describes one simulated run.
type Config struct {
	// Procs is the number of client (compute) nodes; Table II: 32.
	Procs int
	// Layout stripes files over the I/O nodes; Table II: 8 nodes, 64 KB.
	Layout stripe.Layout
	// Node configures each I/O node (disks, RAID, storage cache).
	Node ionode.Config
	// Net configures the interconnect.
	Net netsim.Config
	// Policy selects the disk power-management mechanism.
	Policy power.Config
	// PolicyFactory, when non-nil, overrides Policy: it is invoked once per
	// disk to build the power manager (used by the Oracle ablation, which
	// needs a policy wired to an external hint source).
	PolicyFactory func(eng *sim.Engine) (power.Policy, error)
	// ExtraIdleRecorder, when non-nil, additionally receives every idle gap
	// (the built-in histogram always records); used to capture gap traces
	// for the Oracle ablation's second pass.
	ExtraIdleRecorder disk.IdleRecorder
	// Scheduling enables the paper's framework (compiler pass + runtime
	// scheduler).
	Scheduling bool
	// Compiler parameterizes the pass when Scheduling is on.
	Compiler compiler.Options
	// BufferBytes is the client-side global buffer capacity.
	BufferBytes int64
	// BufferHitTime is the cost of consuming a prefetched block.
	BufferHitTime sim.Duration
	// ComputeJitter varies per-slot compute cost by ±Jitter (fraction),
	// deterministically per (seed, process, slot). It models the compute
	// variability that keeps client processes out of lock-step ("application
	// processes on different client nodes do not execute in a lock-step
	// fashion", §III).
	ComputeJitter float64
	// Seed drives all randomized choices; equal seeds → identical runs.
	Seed int64
	// Probe, when non-nil, is attached to the engine as the run's flight
	// recorder: device models emit power-state, I/O, cache, and buffer
	// records into its ring, and the runner wraps its compile and simulate
	// phases in spans. Tracing never perturbs the simulation — a traced run
	// is bit-identical to an untraced one. A ring-bearing probe must not be
	// shared across concurrent runs (use probe.NewSpanProbe for that).
	Probe *probe.Probe
	// Faults, when non-nil, attaches a deterministic fault injector to the
	// run: transient disk errors, bad-sector remaps, spin-up failures and
	// delays, network drops/duplicates, and I/O-node stalls, each drawn from
	// its own seeded stream (mixed with Seed). A nil config — or one with
	// all-zero rates — leaves the run bit-identical to a fault-free run.
	Faults *fault.Config
	// CompileCache, when non-nil, resolves the compile pass through a
	// shared artifact cache (internal/compilecache) instead of compiling
	// inline. Like Probe, it is a runtime knob rather than part of run
	// identity: cached artifacts are round-trip-pinned to the live compile,
	// so equal configs produce bit-identical results with the cache off,
	// warm, or restored from disk.
	CompileCache CompileService
}

// CompileService resolves a compile pass, possibly from a cache, and
// reports where the result came from. internal/compilecache implements it;
// cluster depends only on this interface so the cache can layer on
// internal/store without an import cycle.
type CompileService interface {
	CompileContext(ctx context.Context, p *loop.Program, opts compiler.Options) (*compiler.Result, compiler.Provenance, error)
}

// DefaultConfig returns the Table II system: 32 clients, 8 I/O nodes with
// 64 KB striping, RAID5 nodes with 64 MB caches, the Default power policy
// and the framework off.
func DefaultConfig() Config {
	layout := stripe.DefaultLayout()
	return Config{
		Procs:         32,
		Layout:        layout,
		Node:          ionode.DefaultConfig(),
		Net:           netsim.DefaultConfig(layout.NumNodes),
		Policy:        power.Config{Kind: power.KindDefault},
		Scheduling:    false,
		Compiler:      compiler.DefaultOptions(32),
		BufferBytes:   128 << 20,
		BufferHitTime: sim.MilliToTime(0.05),
		ComputeJitter: 0.15,
		Seed:          1,
	}
}

// Validate reports the first configuration problem, or nil. It also keeps
// the sub-configurations mutually consistent.
func (c Config) Validate() error {
	if c.Procs <= 0 {
		return fmt.Errorf("cluster: procs %d must be positive", c.Procs)
	}
	if err := c.Layout.Validate(); err != nil {
		return err
	}
	if err := c.Node.Validate(); err != nil {
		return err
	}
	if err := c.Net.Validate(); err != nil {
		return err
	}
	if c.Net.NumNodes != c.Layout.NumNodes {
		return fmt.Errorf("cluster: network has %d nodes, layout %d", c.Net.NumNodes, c.Layout.NumNodes)
	}
	if c.BufferBytes <= 0 {
		return fmt.Errorf("cluster: buffer %d bytes must be positive", c.BufferBytes)
	}
	if c.BufferHitTime < 0 {
		return fmt.Errorf("cluster: negative buffer hit time")
	}
	if c.ComputeJitter < 0 || c.ComputeJitter >= 1 {
		return fmt.Errorf("cluster: compute jitter %v must be in [0,1)", c.ComputeJitter)
	}
	if c.Scheduling {
		opts := c.Compiler
		opts.Procs = c.Procs
		opts.Layout = c.Layout
		if err := opts.Validate(); err != nil {
			return err
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// normalized returns a copy with derived fields made consistent.
func (c Config) normalized() Config {
	c.Net.NumNodes = c.Layout.NumNodes
	c.Compiler.Procs = c.Procs
	c.Compiler.Layout = c.Layout
	return c
}
