package compiler

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"sdds/internal/loop"
)

// keyVersion tags the canonical rendering; bump it whenever the rendering
// or the semantics of any rendered field change, so stale persisted
// artifacts are invalidated by key mismatch rather than misread.
const keyVersion = "sdds-compile-key-v1"

// KeyFor derives the canonical content-addressed compile key for
// (program, options): a SHA-256 over a fixed-order textual rendering of
// every input the compile pass is a function of — the program structure
// and the semantic options (procs, layout, δ, θ, slot bytes, max advance,
// coalescing, profile forcing, order, weights). Runtime-only knobs (seed,
// power policy, buffer size, fault spec, probes) are not compile inputs
// and never reach this function, so equal keys across such variants is
// structural. The rendering is independent of Options field order and
// treats zero-value defaults canonically (CoalesceD 0 and 1 render
// identically).
//
// ok=false marks the compilation uncacheable: a non-serializable input is
// present (a Stmt.Custom region function or an Options.RandomTies tie
// breaker), so no content key can capture it.
func KeyFor(p *loop.Program, opts Options) (string, bool) {
	if opts.RandomTies != nil {
		return "", false
	}
	for _, n := range p.Nests {
		for _, s := range n.Body {
			if s.Custom != nil {
				return "", false
			}
		}
	}
	h := sha256.New()
	writeKeyMaterial(h, p, opts)
	return hex.EncodeToString(h.Sum(nil)), true
}

// writeKeyMaterial renders the canonical key material. Every field is
// prefixed with a stable label and the variable-length sections carry
// explicit counts, so no two distinct inputs can render identically.
func writeKeyMaterial(w io.Writer, p *loop.Program, opts Options) {
	fmt.Fprintf(w, "%s\n", keyVersion)
	fmt.Fprintf(w, "procs=%d\n", opts.Procs)
	fmt.Fprintf(w, "layout=%d,%d,%d\n", opts.Layout.NumNodes, opts.Layout.StripeSize, opts.Layout.FirstNode)
	fmt.Fprintf(w, "delta=%d theta=%d slotbytes=%d maxadvance=%d\n",
		opts.Delta, opts.Theta, opts.SlotBytes, opts.MaxAdvance)
	fmt.Fprintf(w, "coalesce=%d\n", coalesceFactor(opts))
	fmt.Fprintf(w, "forceprofile=%t order=%d noweights=%t\n",
		opts.ForceProfile, int(opts.Order), opts.NoWeights)
	fmt.Fprintf(w, "program=%q files=%d nests=%d\n", p.Name, len(p.Files), len(p.Nests))
	for _, f := range p.Files {
		fmt.Fprintf(w, "file=%d,%q,%d\n", f.ID, f.Name, f.Size)
	}
	for _, n := range p.Nests {
		fmt.Fprintf(w, "nest=%q trips=%d parallel=%t itercost=%d body=%d\n",
			n.Name, n.Trips, n.Parallel, int64(n.IterCost), len(n.Body))
		for _, s := range n.Body {
			fmt.Fprintf(w, "stmt=%d file=%d region=%d,%d,%d,%d cost=%d every=%d\n",
				int(s.Kind), s.File,
				s.Region.Base, s.Region.IterCoef, s.Region.ProcCoef, s.Region.Len,
				int64(s.Cost), s.Every)
		}
	}
}
