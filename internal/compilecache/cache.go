// Package compilecache memoizes compile results across a session's worker
// pool and, optionally, across processes. The compile pass — slack
// analysis plus scheduling-table construction — is a pure function of
// (program, procs, compiler.Options), so sweep points that differ only in
// runtime knobs (seed, power policy, RPM set, buffer size, faults) share
// one artifact. Level one is an in-process singleflight memo keyed by the
// canonical compile key; level two is a persistent content-addressed
// JSONL artifact store (internal/store) holding the serializable
// compiler.Artifact mirror. Every artifact is round-trip-pinned before it
// is persisted: the store never holds an artifact whose restore is not
// provably equivalent to the live compile that produced it.
package compilecache

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"

	"sdds/internal/compiler"
	"sdds/internal/loop"
	"sdds/internal/store"
)

// errAbandoned marks a memo entry whose owner was cancelled before
// producing a result; waiters retry and one of them becomes the new owner.
var errAbandoned = errors.New("compilecache: compile abandoned")

// entry is one singleflight cell.
type entry struct {
	done chan struct{}
	res  *compiler.Result
	err  error
}

// Cache is a two-level compile-result cache, safe for concurrent use.
type Cache struct {
	mu   sync.Mutex
	memo map[string]*entry

	st     *store.Store // nil: in-process memo only
	ownSt  bool         // Close closes the store only if this cache opened it
	closed bool

	hits        atomic.Int64
	misses      atomic.Int64
	restores    atomic.Int64
	uncacheable atomic.Int64
	bytes       atomic.Int64
}

// New returns an in-process cache with no persistent backing.
func New() *Cache {
	return &Cache{memo: make(map[string]*entry)}
}

// Open returns a cache backed by the persistent artifact store at path,
// resuming any artifacts already on disk. The store file is append-only
// and content-addressed, so concurrent processes can share it.
func Open(path string) (*Cache, error) {
	st, err := store.Open(path, false)
	if err != nil {
		return nil, err
	}
	c := New()
	c.st = st
	c.ownSt = true
	return c, nil
}

// NewWithStore returns a cache backed by an externally managed artifact
// store; Close leaves the store open.
func NewWithStore(st *store.Store) *Cache {
	c := New()
	c.st = st
	return c
}

// Store exposes the backing artifact store (nil for in-process caches) —
// for integrity checks and status reporting.
func (c *Cache) Store() *store.Store { return c.st }

// Close releases the persistent store if this cache opened it. The
// in-process memo stays usable.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.st == nil || !c.ownSt {
		c.closed = true
		return nil
	}
	c.closed = true
	return c.st.Close()
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	// Hits counts compiles served from the in-process memo.
	Hits int64 `json:"hits"`
	// Misses counts compiles that ran fresh (no memo, no artifact).
	Misses int64 `json:"misses"`
	// Restores counts compiles rehydrated from the persistent store.
	Restores int64 `json:"restores"`
	// Uncacheable counts compiles that bypassed the cache because a
	// non-serializable input (custom region, random ties) defeats keying.
	Uncacheable int64 `json:"uncacheable"`
	// Bytes totals artifact bytes moved through the store: written on
	// persist plus read on restore.
	Bytes int64 `json:"bytes"`
	// Entries is the current in-process memo size.
	Entries int `json:"entries"`
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries := len(c.memo)
	c.mu.Unlock()
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Restores:    c.restores.Load(),
		Uncacheable: c.uncacheable.Load(),
		Bytes:       c.bytes.Load(),
		Entries:     entries,
	}
}

// CompileContext resolves the compile pass for (program, options) through
// the cache, reporting where the result came from. Concurrent callers
// with the same key share one compile (singleflight); a cancelled owner
// abandons its cell so waiters retry rather than inherit the
// cancellation. Deterministic compile errors are cached like results.
// It satisfies cluster.CompileService.
func (c *Cache) CompileContext(ctx context.Context, p *loop.Program, opts compiler.Options) (*compiler.Result, compiler.Provenance, error) {
	key, ok := compiler.KeyFor(p, opts)
	if !ok {
		c.uncacheable.Add(1)
		res, err := compiler.CompileContext(ctx, p, opts)
		return res, compiler.ProvUncacheable, err
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, compiler.ProvNone, err
		}
		c.mu.Lock()
		if e, ok := c.memo[key]; ok {
			c.mu.Unlock()
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, compiler.ProvNone, ctx.Err()
			}
			if errors.Is(e.err, errAbandoned) {
				continue // owner cancelled; race for the cell again
			}
			c.hits.Add(1)
			return e.res, compiler.ProvMemory, e.err
		}
		e := &entry{done: make(chan struct{})}
		c.memo[key] = e
		c.mu.Unlock()

		res, prov, err := c.fill(ctx, key, p, opts)
		if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// Cancellation reflects this caller's context, not the compile
			// input: never poison the cell with it.
			c.mu.Lock()
			delete(c.memo, key)
			c.mu.Unlock()
			e.err = errAbandoned
			close(e.done)
			return nil, compiler.ProvNone, err
		}
		e.res, e.err = res, err
		close(e.done)
		return res, prov, err
	}
}

// fill produces the value for a memo cell the caller owns: restore from
// the artifact store when possible, compile (and persist) otherwise.
func (c *Cache) fill(ctx context.Context, key string, p *loop.Program, opts compiler.Options) (*compiler.Result, compiler.Provenance, error) {
	if c.st != nil {
		var raw json.RawMessage
		if found, err := c.st.Get(key, &raw); err == nil && found {
			var art compiler.Artifact
			if err := json.Unmarshal(raw, &art); err == nil {
				if res, err := art.Restore(p, opts); err == nil {
					c.restores.Add(1)
					c.bytes.Add(int64(len(raw)))
					return res, compiler.ProvStore, nil
				}
			}
			// A corrupt or version-skewed artifact falls through to a fresh
			// compile; the run must never fail on cache damage.
		}
	}
	res, err := compiler.CompileContext(ctx, p, opts)
	if err != nil {
		return nil, compiler.ProvCompiled, err
	}
	c.misses.Add(1)
	if c.st != nil {
		c.persist(key, res, p, opts)
	}
	return res, compiler.ProvCompiled, nil
}

// persist writes the result's artifact to the store, but only after
// pinning the round trip: marshal, unmarshal, restore, and verify the
// restored result is equivalent to the live one. Persistence is
// best-effort — any failure leaves the store unchanged and the in-process
// result unaffected.
func (c *Cache) persist(key string, res *compiler.Result, p *loop.Program, opts compiler.Options) {
	raw, err := json.Marshal(res.Artifact())
	if err != nil {
		return
	}
	var back compiler.Artifact
	if err := json.Unmarshal(raw, &back); err != nil {
		return
	}
	restored, err := back.Restore(p, opts)
	if err != nil || compiler.EquivalentResults(res, restored) != nil {
		return
	}
	if err := c.st.Put(key, json.RawMessage(raw)); err != nil {
		return
	}
	c.bytes.Add(int64(len(raw)))
}
