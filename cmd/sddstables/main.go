// Command sddstables regenerates the tables and figures of the paper's
// evaluation section. With no flags it runs every experiment at full scale;
// use --experiment to run one (table2, table3, fig12a..fig14b, cachesens,
// compile, ablations) and --scale to shrink the workloads for a quick pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sdds/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sddstables:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sddstables", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "", "experiment id to run (default: all)")
		scale      = fs.Float64("scale", 1.0, "workload scale factor")
		apps       = fs.String("apps", "", "comma-separated application subset (default: all six)")
		seed       = fs.Int64("seed", 1, "simulation seed")
		list       = fs.Bool("list", false, "list experiment ids and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return nil
	}
	cfg := harness.Config{Scale: *scale, Seed: *seed}
	if *apps != "" {
		cfg.Apps = strings.Split(*apps, ",")
	}

	experiments := harness.All()
	if *experiment != "" {
		e, err := harness.ByID(*experiment)
		if err != nil {
			return err
		}
		experiments = []harness.Experiment{e}
	}
	for _, e := range experiments {
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Print(res.Render())
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
