package simdet_test

import (
	"regexp"
	"testing"

	"sdds/internal/analysis"
	"sdds/internal/analysis/analysistest"
	"sdds/internal/analysis/simdet"
)

// TestSimdet checks every reported pattern, every allowed pattern, and the
// //sddsvet:ignore suppression path against the fixture's want comments.
func TestSimdet(t *testing.T) {
	defer overridePackages(t, regexp.MustCompile(`.`))()
	analysistest.Run(t, "testdata/src/simdetbad", simdet.Analyzer)
}

// TestSimdetFaultFixture proves the analyzer rejects nondeterministic hit
// decisions in fault-injector-shaped code (global RNG, wall clock) while
// accepting the real injector's seeded splitmix counter stream.
func TestSimdetFaultFixture(t *testing.T) {
	defer overridePackages(t, regexp.MustCompile(`.`))()
	analysistest.Run(t, "testdata/src/faultbad", simdet.Analyzer)
}

// TestSimdetRestoreFixture proves the analyzer rejects map-iteration-order
// dependence in artifact-restore-shaped code (ranging a deserialized points
// map while building the schedule) while accepting the real restore's
// slice-ordered and collect-then-sort shapes.
func TestSimdetRestoreFixture(t *testing.T) {
	defer overridePackages(t, regexp.MustCompile(`.`))()
	analysistest.Run(t, "testdata/src/restorebad", simdet.Analyzer)
}

// TestSimdetTransitiveCrossPackage is the acceptance fixture for the
// summary engine: simulation code reaching time.Now only through a helper
// package is flagged at the boundary call with the full chain. The scope
// override matches simtrans but not simtranshelper, so the helper is
// outside the simulation cone — exactly the shape of a harness utility
// leaking into model code.
func TestSimdetTransitiveCrossPackage(t *testing.T) {
	defer overridePackages(t, regexp.MustCompile(`simtrans$`))()
	analysistest.Run(t, "testdata/src/simtrans", simdet.Analyzer)
}

// TestSimdetCoversFaultPackage pins the default scope to include the
// fault-injection package and the compile-cache layer: per-site fault
// streams and restored compile artifacts both feed golden-compared results
// exactly like the device models do.
func TestSimdetCoversFaultPackage(t *testing.T) {
	for _, pkg := range []string{
		"sdds/internal/sim", "sdds/internal/fault", "sdds/internal/disk",
		"sdds/internal/compiler", "sdds/internal/compilecache",
	} {
		if !simdet.SimPackages.MatchString(pkg) {
			t.Errorf("SimPackages does not cover %s", pkg)
		}
	}
	if simdet.SimPackages.MatchString("sdds/internal/harness") {
		t.Error("SimPackages must not cover the harness (host-side code)")
	}
}

// TestSimdetScopedToSimPackages proves the default package pattern keeps the
// analyzer away from non-simulation code: the same violation-dense fixture
// yields zero diagnostics when its package path is out of scope.
func TestSimdetScopedToSimPackages(t *testing.T) {
	mod, err := analysis.LoadModule("../../..", "internal/analysis/simdet/testdata/src/simdetbad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(mod, mod.Selected[0], []*analysis.Analyzer{simdet.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("out-of-scope package produced %d diagnostics, want 0: %v", len(diags), diags)
	}
}

func overridePackages(t *testing.T, re *regexp.Regexp) func() {
	t.Helper()
	old := simdet.SimPackages
	simdet.SimPackages = re
	return func() { simdet.SimPackages = old }
}
