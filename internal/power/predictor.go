// Package power implements the disk power-management mechanisms evaluated in
// the paper (§II): the Simple and Prediction-Based spin-down policies, the
// History-Based and Staggered multi-speed policies, plus a Default (no
// management) policy and an Oracle wrapper used for ablations. A policy
// instance attaches to exactly one disk and drives it through the
// disk.Listener hooks and control methods, scheduling its own timers on the
// shared event engine.
package power

// EWMA is the exponentially-weighted moving-average idle-length predictor
// shared by the Prediction-Based and History-Based policies. The paper's
// prediction strategy "assumes that successive idle periods exhibit similar
// behavior"; the EWMA generalizes last-value prediction (alpha = 1) while
// damping outliers.
type EWMA struct {
	alpha float64
	value float64
	seen  bool
}

// NewEWMA returns a predictor with the given smoothing factor in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	return &EWMA{alpha: alpha}
}

// Observe folds a new observation into the average.
func (e *EWMA) Observe(v float64) {
	if !e.seen {
		e.value = v
		e.seen = true
		return
	}
	e.value = e.alpha*v + (1-e.alpha)*e.value
}

// Predict returns the current prediction and whether any observation has
// been made yet.
func (e *EWMA) Predict() (float64, bool) { return e.value, e.seen }

// Reset clears the history.
func (e *EWMA) Reset() { e.value, e.seen = 0, false }
