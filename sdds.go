// Package sdds is the public API of the reproduction of Zhang, Liu &
// Kandemir, "Software-Directed Data Access Scheduling for Reducing Disk
// Energy Consumption" (ICDCS 2012).
//
// The implementation lives in internal/ packages; this facade re-exports
// the surfaces a downstream user composes:
//
//   - the data access scheduler of §IV (Access, Scheduler, Schedule) with
//     I/O-node signatures (Signature, Layout);
//   - the loop-nest program representation the compiler side consumes
//     (Program, Nest, Stmt) and the full compiler pass (Compile);
//   - the simulated cluster and the four §II power policies, for running
//     whole applications end-to-end (Run, ClusterConfig, PolicyConfig);
//   - the six Table III workloads and the evaluation harness that
//     regenerates every table and figure of §V.
//
// Quickstart:
//
//	layout := sdds.Layout{NumNodes: 8, StripeSize: 64 << 10}
//	s, _ := sdds.NewScheduler(sdds.SchedulerParams{
//		NumSlots: 100, NumNodes: 8, Delta: 20, Theta: 4,
//	})
//	schedule, _ := s.Schedule([]*sdds.Access{{
//		ID: 1, Proc: 0, Begin: 0, End: 9, Length: 1,
//		Sig: layout.SignatureFor(0, 256<<10), Orig: 9,
//	}})
//	point, _ := schedule.PointOf(1)
//
// See the examples/ directory for complete programs.
package sdds

import (
	"context"
	"io"

	"sdds/internal/cluster"
	"sdds/internal/compiler"
	"sdds/internal/core"
	"sdds/internal/harness"
	"sdds/internal/loop"
	"sdds/internal/power"
	"sdds/internal/stripe"
	"sdds/internal/workloads"
)

// Scheduling (the paper's contribution, §IV).
type (
	// Access is one I/O call with its slack window and signature.
	Access = core.Access
	// SchedulerParams configures the scheduling algorithms (δ, θ, ...).
	SchedulerParams = core.Params
	// Scheduler runs the basic/extended/θ-constrained algorithms.
	Scheduler = core.Scheduler
	// Schedule holds scheduling points and per-process tables.
	Schedule = core.Schedule
	// ScheduleEntry is one row of a process's scheduling table.
	ScheduleEntry = core.Entry
)

// Striping and signatures (§II, §IV-B).
type (
	// Layout is round-robin file striping over I/O nodes.
	Layout = stripe.Layout
	// Signature is the I/O-node bit vector with the distance metric.
	Signature = stripe.Signature
)

// Program representation and the compiler pass (§IV-A, Fig. 4).
type (
	// Program is a parallel application as loop nests over files.
	Program = loop.Program
	// Nest is one loop nest.
	Nest = loop.Nest
	// Stmt is a statement in a nest body.
	Stmt = loop.Stmt
	// Affine is an affine byte-region descriptor.
	Affine = loop.Affine
	// CompileOptions parameterizes the compiler pass.
	CompileOptions = compiler.Options
	// CompileResult is the pass output (slacks, accesses, schedule).
	CompileResult = compiler.Result
	// TableFile is the serialized per-process scheduling-table bundle the
	// compiler emits and the runtime scheduler loads (Fig. 4).
	TableFile = compiler.TableFile
)

// Whole-system simulation (§III, §V).
type (
	// ClusterConfig describes the simulated system of Fig. 1.
	ClusterConfig = cluster.Config
	// RunResult carries the measurements of one run.
	RunResult = cluster.Result
	// PolicyConfig selects and tunes a §II power policy.
	PolicyConfig = power.Config
	// PolicyKind identifies a power-management mechanism.
	PolicyKind = power.Kind
	// Workload is one of the six Table III applications.
	Workload = workloads.Spec
	// Experiment regenerates one paper table or figure.
	Experiment = harness.Experiment
	// HarnessConfig scopes a harness run.
	HarnessConfig = harness.Config
	// ExperimentResult is one experiment's rendered table.
	ExperimentResult = harness.Result
)

// The canonical run submission model and persistent results (PR 6).
type (
	// Request is the one JSON-serializable description of a cluster run —
	// the same model sddsim flags, sddstables plans, and the sddsd HTTP
	// service all reduce to. Normalize it, then Key()/ContentKey() name
	// the run for caching and the content-addressed store.
	Request = harness.Request
	// RunRecord is the portable, JSON-stable mirror of RunResult that the
	// journal and the service persist and return.
	RunRecord = harness.RunRecord
	// Journal is the crash-safe content-addressed store of completed runs
	// (append-only JSONL; survives restarts; torn tails tolerated).
	Journal = harness.Journal
)

// Parallel experiment execution (the Session API).
type (
	// Session owns a run cache and a bounded worker pool: it plans every
	// distinct cluster configuration an experiment batch needs, simulates
	// each exactly once (concurrent callers share in-flight runs), and
	// reports progress. Create one per batch with NewSession, or rely on
	// the process-wide default behind Experiment.Run.
	Session = harness.Session
	// SessionOptions configures NewSession (worker bound, progress hook).
	SessionOptions = harness.SessionOptions
	// Progress is one run-level progress event.
	Progress = harness.Progress
	// ProgressFunc observes session progress.
	ProgressFunc = harness.ProgressFunc
)

// Power policy kinds (§II).
const (
	PolicyDefault    = power.KindDefault
	PolicySimple     = power.KindSimple
	PolicyPredictive = power.KindPredictive
	PolicyHistory    = power.KindHistory
	PolicyStaggered  = power.KindStaggered
)

// NewScheduler validates params and returns a data access scheduler.
func NewScheduler(p SchedulerParams) (*Scheduler, error) { return core.NewScheduler(p) }

// DefaultSchedulerParams returns the Table II algorithm parameters (δ=20,
// θ=4) for the given problem size.
func DefaultSchedulerParams(numSlots, numNodes int) SchedulerParams {
	return core.DefaultParams(numSlots, numNodes)
}

// DefaultLayout returns the Table II layout: 8 I/O nodes, 64 KB stripes.
func DefaultLayout() Layout { return stripe.DefaultLayout() }

// Compile runs the full compiler pass of Fig. 4: slack analysis
// (polyhedral or profiling) followed by data access scheduling.
func Compile(p *Program, opts CompileOptions) (*CompileResult, error) {
	return compiler.Compile(p, opts)
}

// CompileContext is Compile with cancellation at the pass's phase
// boundaries.
func CompileContext(ctx context.Context, p *Program, opts CompileOptions) (*CompileResult, error) {
	return compiler.CompileContext(ctx, p, opts)
}

// DefaultCompileOptions returns Table II algorithm parameters over the
// default layout for the given process count.
func DefaultCompileOptions(procs int) CompileOptions { return compiler.DefaultOptions(procs) }

// ReadTables parses a serialized scheduling-table bundle.
func ReadTables(r io.Reader) (*TableFile, error) { return compiler.ReadTables(r) }

// Run executes a program on the simulated cluster.
func Run(p *Program, cfg ClusterConfig) (*RunResult, error) { return cluster.Run(p, cfg) }

// RunContext is Run with prompt cancellation: the discrete-event loop
// polls ctx and aborts with its error when cancelled.
func RunContext(ctx context.Context, p *Program, cfg ClusterConfig) (*RunResult, error) {
	return cluster.RunContext(ctx, p, cfg)
}

// NewSession returns a parallel experiment engine with its own run cache.
// A zero SessionOptions uses GOMAXPROCS workers and no progress hook.
func NewSession(o SessionOptions) *Session { return harness.NewSession(o) }

// OpenJournal opens (resume=true) or truncates (resume=false) a
// persistent run store at path. Attach it via SessionOptions.Journal.
func OpenJournal(path string, resume bool) (*Journal, error) {
	return harness.OpenJournal(path, resume)
}

// NewRunRecord snapshots a run result into its portable stored form.
func NewRunRecord(res *RunResult) RunRecord { return harness.NewRunRecord(res) }

// DefaultClusterConfig returns the Table II system configuration.
func DefaultClusterConfig() ClusterConfig { return cluster.DefaultConfig() }

// Workloads returns the six Table III applications in paper order.
func Workloads() []Workload { return workloads.All() }

// WorkloadByName returns one application generator.
func WorkloadByName(name string) (Workload, error) { return workloads.ByName(name) }

// Experiments returns every paper table/figure experiment in order.
func Experiments() []Experiment { return harness.All() }

// ExperimentByID returns one experiment (e.g. "fig12c").
func ExperimentByID(id string) (Experiment, error) { return harness.ByID(id) }
