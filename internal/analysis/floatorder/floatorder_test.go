package floatorder_test

import (
	"regexp"
	"testing"

	"sdds/internal/analysis"
	"sdds/internal/analysis/analysistest"
	"sdds/internal/analysis/floatorder"
)

// TestFloatorder checks the map-range and goroutine reduction reports, the
// order-free allowed patterns, and the //sddsvet:ignore suppression path.
func TestFloatorder(t *testing.T) {
	defer overridePackages(t, regexp.MustCompile(`.`))()
	analysistest.Run(t, "testdata/src/floatorderbad", floatorder.Analyzer)
}

// TestFloatorderScopedToGoldenPackages proves the default package pattern
// keeps the analyzer off non-golden code: the violation-dense fixture yields
// zero diagnostics when its package path is out of scope.
func TestFloatorderScopedToGoldenPackages(t *testing.T) {
	mod, err := analysis.LoadModule("../../..", "internal/analysis/floatorder/testdata/src/floatorderbad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(mod, mod.Selected[0], []*analysis.Analyzer{floatorder.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("out-of-scope package produced %d diagnostics, want 0: %v", len(diags), diags)
	}
}

func overridePackages(t *testing.T, re *regexp.Regexp) func() {
	t.Helper()
	old := floatorder.GoldenPackages
	floatorder.GoldenPackages = re
	return func() { floatorder.GoldenPackages = old }
}
