// Package all registers the complete sddsvet analyzer suite, giving the
// multichecker binary and the integration tests one shared list.
package all

import (
	"sdds/internal/analysis"
	"sdds/internal/analysis/detflow"
	"sdds/internal/analysis/eventretain"
	"sdds/internal/analysis/floatorder"
	"sdds/internal/analysis/hotalloc"
	"sdds/internal/analysis/locksafe"
	"sdds/internal/analysis/simdet"
)

// Analyzers is the full suite in reporting order.
var Analyzers = []*analysis.Analyzer{
	simdet.Analyzer,
	detflow.Analyzer,
	hotalloc.Analyzer,
	eventretain.Analyzer,
	floatorder.Analyzer,
	locksafe.Analyzer,
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}
