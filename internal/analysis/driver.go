package analysis

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// RunAnalyzers executes every analyzer over one loaded package, applying
// //sddsvet:ignore suppression, and returns the surviving diagnostics
// sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	idx := buildIgnoreIndex(pkg)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			PkgPath:   pkg.PkgPath,
			TypesInfo: pkg.Info,
			report: func(d Diagnostic) {
				if !idx.suppressed(d.Analyzer, d.Pos) {
					diags = append(diags, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer // two analyzers, one line
	})
	return diags, nil
}

// Run loads the packages selected by patterns under root, runs every
// analyzer over each, and writes one "file:line:col: analyzer: message"
// line per finding to w (paths relative to root when possible). It returns
// the number of findings.
func Run(w io.Writer, root string, patterns []string, analyzers []*Analyzer) (int, error) {
	pkgs, err := Load(root, patterns...)
	if err != nil {
		return 0, err
	}
	// Positions carry absolute filenames; relativize against the absolute root.
	if abs, err := filepath.Abs(root); err == nil {
		root = abs
	}
	total := 0
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(pkg, analyzers)
		if err != nil {
			return total, err
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			name := pos.Filename
			if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
			fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
			total++
		}
	}
	return total, nil
}
