package probe

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The exported trace groups tracks into four Chrome "processes":
//
//	pid 0  disks          one row per disk: power-state spans + I/O,
//	                      spin and prediction instants (virtual time)
//	pid 1  ionodes        one row per I/O node: storage-cache instants
//	pid 2  client buffer  global-buffer hit/miss instants
//	pid 3  phases         wall-clock spans (plan, compile, simulate)
//	pid 4  faults         one row per fault site (injection instants) plus
//	                      a "retries" row for the degradation retries
//
// Disk/node/buffer timestamps are the engine's virtual microseconds; phase
// spans are wall microseconds since the probe was created. chrome://tracing
// and Perfetto render both, but offsets across the two are meaningless.
const (
	pidDisks  = 0
	pidNodes  = 1
	pidBuffer = 2
	pidPhases = 3
	pidFaults = 4
)

// retryTrack is the faults-process row carrying KindRetry instants, above
// any plausible fault-site id.
const retryTrack = int64(1 << 16)

// ChromeOptions tunes the export.
type ChromeOptions struct {
	// StateName renders a KindDiskState record's arg as the span name
	// (pass a disk.State stringer). Nil falls back to "state <n>".
	StateName func(arg int64) string
	// FaultSiteName renders a KindFault record's id as the instant/track
	// name (pass a fault.Site stringer). Nil falls back to "site <n>".
	FaultSiteName func(id int32) string
}

// traceEvent is one entry of the Chrome trace-event format's JSON array
// (the subset of the spec the exporter emits: M metadata, X complete
// events, i instants).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the object form of the trace-event file.
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the probe's retained records and spans as a
// Chrome trace-event JSON object that chrome://tracing and Perfetto load
// directly: one named track per disk carrying its power-state spans and
// instant events, one per I/O node, one for the client buffer, and one per
// phase-span track.
func WriteChromeTrace(w io.Writer, p *Probe, opts ChromeOptions) error {
	if p == nil {
		return fmt.Errorf("probe: cannot export a nil probe")
	}
	stateName := opts.StateName
	if stateName == nil {
		stateName = func(arg int64) string { return fmt.Sprintf("state %d", arg) }
	}
	siteName := opts.FaultSiteName
	if siteName == nil {
		siteName = func(id int32) string { return fmt.Sprintf("site %d", id) }
	}
	recs := p.Records()
	var events []traceEvent

	// Pass 1: discover tracks and the end-of-trace timestamp.
	diskSeen := map[int32]bool{}
	nodeSeen := map[int32]bool{}
	faultSeen := map[int32]bool{}
	bufferSeen := false
	retrySeen := false
	var maxT int64
	for _, r := range recs {
		if r.T > maxT {
			maxT = r.T
		}
		switch r.Kind {
		case KindDiskState, KindIOIssue, KindIOComplete, KindSpinUp,
			KindSpinDown, KindRPMShift, KindPreActivation, KindWrongPredict:
			diskSeen[r.ID] = true
		case KindCacheHit, KindCacheMiss, KindPrefetch:
			nodeSeen[r.ID] = true
		case KindBufferHit, KindBufferMiss:
			bufferSeen = true
		case KindFault:
			faultSeen[r.ID] = true
		case KindRetry:
			retrySeen = true
		}
	}

	// Metadata: name every process and track, in sorted (deterministic)
	// order so exports diff cleanly.
	meta := func(pid int, tid int64, name string) {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	procMeta := func(pid int, name string) {
		events = append(events, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	if len(diskSeen) > 0 {
		procMeta(pidDisks, "disks")
		for _, id := range sortedIDs(diskSeen) {
			meta(pidDisks, int64(id), fmt.Sprintf("disk %d", id))
		}
	}
	if len(nodeSeen) > 0 {
		procMeta(pidNodes, "ionodes")
		for _, id := range sortedIDs(nodeSeen) {
			meta(pidNodes, int64(id), fmt.Sprintf("ionode %d", id))
		}
	}
	if bufferSeen {
		procMeta(pidBuffer, "client buffer")
		meta(pidBuffer, 0, "global buffer")
	}
	if len(faultSeen) > 0 || retrySeen {
		procMeta(pidFaults, "faults")
		for _, id := range sortedIDs(faultSeen) {
			meta(pidFaults, int64(id), siteName(id))
		}
		if retrySeen {
			meta(pidFaults, retryTrack, "retries")
		}
	}

	// Pass 2: power-state spans (consecutive KindDiskState records per
	// disk) and instant events.
	type openState struct {
		arg   int64
		since int64
		open  bool
	}
	states := map[int32]*openState{}
	closeState := func(id int32, upTo int64) {
		st := states[id]
		if st == nil || !st.open {
			return
		}
		dur := upTo - st.since
		events = append(events, traceEvent{
			Name: stateName(st.arg), Ph: "X", Ts: st.since, Dur: &dur,
			Pid: pidDisks, Tid: int64(id),
		})
		st.open = false
	}
	instant := func(r Record, pid int, tid int64, args map[string]any) {
		events = append(events, traceEvent{
			Name: r.Kind.String(), Ph: "i", Ts: r.T, Pid: pid, Tid: tid,
			S: "t", Args: args,
		})
	}
	for _, r := range recs {
		switch r.Kind {
		case KindDiskState:
			closeState(r.ID, r.T)
			st := states[r.ID]
			if st == nil {
				st = &openState{}
				states[r.ID] = st
			}
			st.arg, st.since, st.open = r.Arg, r.T, true
		case KindIOIssue, KindIOComplete:
			instant(r, pidDisks, int64(r.ID), map[string]any{"bytes": r.Arg})
		case KindSpinUp:
			args := map[string]any{}
			if r.Arg == 1 {
				args["aborted spin-down"] = true
			}
			instant(r, pidDisks, int64(r.ID), args)
		case KindSpinDown, KindPreActivation, KindWrongPredict:
			instant(r, pidDisks, int64(r.ID), nil)
		case KindRPMShift:
			instant(r, pidDisks, int64(r.ID), map[string]any{"target_rpm": r.Arg})
		case KindCacheHit, KindCacheMiss, KindPrefetch:
			instant(r, pidNodes, int64(r.ID), map[string]any{"unit": r.Arg})
		case KindBufferHit, KindBufferMiss:
			instant(r, pidBuffer, 0, map[string]any{"access": r.ID})
		case KindFault:
			events = append(events, traceEvent{
				Name: siteName(r.ID), Ph: "i", Ts: r.T, Pid: pidFaults,
				Tid: int64(r.ID), S: "t", Args: map[string]any{"entity": r.Arg},
			})
		case KindRetry:
			instant(r, pidFaults, retryTrack, map[string]any{"node": r.ID, "attempt": r.Arg})
		}
	}
	// Close trailing state spans at the last record's timestamp so every
	// disk's final state is visible.
	openIDs := make(map[int32]bool, len(states))
	for id, st := range states {
		if st.open {
			openIDs[id] = true
		}
	}
	for _, id := range sortedIDs(openIDs) {
		closeState(id, maxT)
	}

	// Phase spans (wall clock, separate pid).
	p.mu.Lock()
	spans := append([]spanRec(nil), p.spans...)
	p.mu.Unlock()
	if len(spans) > 0 {
		procMeta(pidPhases, "phases")
		tracks := map[int32]bool{}
		var spanMax int64
		for _, s := range spans {
			tracks[s.track] = true
			if s.end > spanMax {
				spanMax = s.end
			}
			if s.start > spanMax {
				spanMax = s.start
			}
		}
		for _, tr := range sortedIDs(tracks) {
			meta(pidPhases, int64(tr), phaseTrackName(tr))
		}
		for _, s := range spans {
			end := s.end
			if end < 0 {
				end = spanMax // still open at export: truncate, don't drop
			}
			dur := end - s.start
			events = append(events, traceEvent{
				Name: s.name, Ph: "X", Ts: s.start, Dur: &dur,
				Pid: pidPhases, Tid: int64(s.track),
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// phaseTrackName names the well-known span tracks.
func phaseTrackName(track int32) string {
	switch track {
	case TrackPlan:
		return "plan"
	case TrackRun:
		return "run"
	default:
		return fmt.Sprintf("worker %d", track-TrackWorkerBase)
	}
}

// sortedIDs returns the map's keys ascending.
func sortedIDs(m map[int32]bool) []int32 {
	out := make([]int32, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
