package stripe_test

import (
	"fmt"

	"sdds/internal/stripe"
)

// ExampleSignature_Distance computes the paper's distance metric
// distance(g1, g2) = n − similarity + difference for the Fig. 9
// signatures.
func ExampleSignature_Distance() {
	g4, _ := stripe.ParseSignature("0100000001000000")
	g6, _ := stripe.ParseSignature("0110000001100000")
	g7, _ := stripe.ParseSignature("1000000010000000")
	fmt.Println(g4.Distance(g6), g4.Distance(g7), g4.Distance(g4))
	// Output: 16 20 14
}

// ExampleLayout_SignatureFor derives the I/O-node set of a byte range under
// the Table II striping (8 nodes, 64 KB units).
func ExampleLayout_SignatureFor() {
	layout := stripe.DefaultLayout()
	sig := layout.SignatureFor(128<<10, 192<<10) // units 2, 3, 4
	fmt.Println(sig.String(), sig.Nodes())
	// Output: 00111000 [2 3 4]
}
