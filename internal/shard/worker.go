package shard

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"sdds/internal/backoff"
	"sdds/internal/harness"
)

// API is the coordinator surface a worker drives. Client implements it
// over the sddsd HTTP endpoints; Local adapts an in-process Coordinator
// (the no-worker-ever-registered fallback and the unit tests).
type API interface {
	Lease(ctx context.Context, worker string) (LeaseResponse, error)
	Renew(ctx context.Context, req RenewRequest) (RenewResponse, error)
	Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error)
}

// localAPI drives a Coordinator in-process.
type localAPI struct{ c *Coordinator }

// Local adapts an in-process Coordinator to the worker API.
func Local(c *Coordinator) API { return localAPI{c} }

func (l localAPI) Lease(_ context.Context, worker string) (LeaseResponse, error) {
	return l.c.Lease(worker), nil
}

func (l localAPI) Renew(_ context.Context, req RenewRequest) (RenewResponse, error) {
	return l.c.Renew(req.Worker, req.ShardID, req.LeaseID), nil
}

func (l localAPI) Complete(_ context.Context, req CompleteRequest) (CompleteResponse, error) {
	return l.c.Complete(req)
}

// Executor runs one canonical request to completion — in practice a
// bounded harness.Session (compile cache and fault/timeout plumbing
// intact) wrapped by the worker binary.
type Executor func(ctx context.Context, req harness.Request) (harness.RunRecord, error)

// Worker leases shards from a coordinator, executes them, and streams
// the per-shard journal records back. It survives coordinator outages
// (jittered capped backoff on every call) and its own crashes (the
// optional per-shard journal lets a restarted worker resume a re-leased
// shard from the requests it had already finished).
type Worker struct {
	// API is the coordinator endpoint. Required.
	API API
	// Exec runs one request. Required.
	Exec Executor
	// Name identifies this worker in leases and events. Required.
	Name string
	// Backoff paces reconnects and completion retries (zero value:
	// backoff.New(200ms, 5s)).
	Backoff backoff.Policy
	// Poll is the sleep between leases when the coordinator reports
	// nothing leasable (default 300ms, jittered by Backoff's source).
	Poll time.Duration
	// ExitWhenDone stops Run cleanly when the coordinator reports the
	// sweep finished; otherwise the worker keeps polling for the next
	// sweep.
	ExitWhenDone bool
	// JournalDir, when non-empty, holds one crash-safe journal per shard
	// ("shard-<id>.jsonl"): each finished request is recorded before the
	// shard completes, so a worker killed mid-shard resumes the re-leased
	// shard from its intact prefix instead of re-simulating everything.
	JournalDir string
	// MaxCompleteRetries bounds completion delivery attempts per shard
	// (default 8); the lease expiry requeues the shard if delivery never
	// lands.
	MaxCompleteRetries int
	// Log, when non-nil, receives worker lifecycle events.
	Log *slog.Logger
}

// Run leases and executes shards until the context ends or (with
// ExitWhenDone) the sweep completes. Transient coordinator errors are
// retried under the backoff policy indefinitely — a worker outliving a
// coordinator restart reconnects rather than dying.
func (w *Worker) Run(ctx context.Context) error {
	if w.API == nil || w.Exec == nil || w.Name == "" {
		return errors.New("shard: worker needs API, Exec, and Name")
	}
	bo := w.Backoff
	if bo.Base == 0 && bo.Cap == 0 {
		bo = backoff.New(200*time.Millisecond, 5*time.Second)
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 300 * time.Millisecond
	}
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, err := w.API.Lease(ctx, w.Name)
		if err != nil {
			failures++
			w.logf("lease failed", "err", err.Error(), "failures", failures)
			if serr := bo.Sleep(ctx, failures-1); serr != nil {
				return serr
			}
			continue
		}
		failures = 0
		switch lease.Status {
		case StatusGranted:
			w.runShard(ctx, bo, lease)
		case StatusAllDone:
			if w.ExitWhenDone {
				w.logf("sweep done, exiting")
				return nil
			}
			if err := sleepCtx(ctx, poll); err != nil {
				return err
			}
		default: // StatusWait and anything unknown: poll again
			if err := sleepCtx(ctx, poll); err != nil {
				return err
			}
		}
	}
}

// runShard executes one leased shard end to end: heartbeat renewal at a
// third of the TTL, per-request execution through Exec (the session pool
// bounds concurrency), optional per-shard journaling, and completion
// delivery with bounded retries. Errors never escape — a failed shard is
// reported to the coordinator (or abandoned to lease expiry), and the
// worker moves on.
func (w *Worker) runShard(ctx context.Context, bo backoff.Policy, lease LeaseResponse) {
	sh := *lease.Shard
	w.logf("shard leased", "shard", sh.ID, "lease", lease.LeaseID, "requests", len(sh.Requests))

	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Heartbeat: renew at TTL/3; a "done" verdict means the shard
	// resolved elsewhere — stop burning cycles on it. A "lost" verdict
	// keeps executing: the work is probably nearly finished and a late
	// completion still wins if it lands first.
	ttl := time.Duration(lease.TTLMS) * time.Millisecond
	interval := ttl / 3
	if interval <= 0 {
		interval = time.Second
	}
	var aborted atomic.Bool
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-t.C:
			}
			resp, err := w.API.Renew(shardCtx, RenewRequest{Worker: w.Name, ShardID: sh.ID, LeaseID: lease.LeaseID})
			if err != nil {
				w.logf("renew failed", "shard", sh.ID, "err", err.Error())
				continue // transient: the next tick retries; expiry is the backstop
			}
			switch resp.Status {
			case StatusDone:
				w.logf("shard resolved elsewhere, aborting", "shard", sh.ID)
				aborted.Store(true)
				cancel()
				return
			case StatusLost:
				w.logf("lease lost, finishing anyway", "shard", sh.ID)
			}
		}
	}()

	results, runErr := w.executeShard(shardCtx, sh)
	cancel()
	hb.Wait()
	if aborted.Load() {
		return // shard resolved elsewhere: nothing to report
	}
	if ctx.Err() != nil {
		return // worker shutting down; lease expiry hands the shard on
	}

	comp := CompleteRequest{Worker: w.Name, ShardID: sh.ID, LeaseID: lease.LeaseID, Results: results}
	if runErr != nil {
		comp.Error = runErr.Error()
		comp.Results = nil
	}
	maxTries := w.MaxCompleteRetries
	if maxTries <= 0 {
		maxTries = 8
	}
	for try := 0; try < maxTries; try++ {
		resp, err := w.API.Complete(ctx, comp)
		if err == nil {
			w.logf("shard complete", "shard", sh.ID, "status", resp.Status, "stored", resp.Stored, "err", comp.Error)
			return
		}
		w.logf("complete delivery failed", "shard", sh.ID, "try", try+1, "err", err.Error())
		if serr := bo.Sleep(ctx, try); serr != nil {
			return
		}
	}
	w.logf("complete delivery abandoned; lease expiry will requeue", "shard", sh.ID)
}

// executeShard runs every request of the shard, resuming from the
// per-shard journal when one is configured. Requests run concurrently —
// the Exec-side session pool bounds actual simulations — and results
// keep shard order. The first execution error poisons the whole shard
// attempt (the coordinator's retry/backoff machinery owns recovery).
func (w *Worker) executeShard(ctx context.Context, sh Shard) ([]RunEntry, error) {
	var (
		journal *harness.Journal
		have    map[string]harness.RunRecord
	)
	if w.JournalDir != "" {
		path := filepath.Join(w.JournalDir, "shard-"+sh.ID+".jsonl")
		j, err := harness.OpenJournalWith(path, true, w.Log)
		if err != nil {
			return nil, fmt.Errorf("shard %s journal: %w", sh.ID, err)
		}
		journal = j
		defer journal.Close()
		have = make(map[string]harness.RunRecord)
		for _, req := range sh.Requests {
			if _, res, ok, err := j.Lookup(req.ContentKey()); err == nil && ok {
				have[req.ContentKey()] = harness.NewRunRecord(res)
			}
		}
		if len(have) > 0 {
			w.logf("shard resumed from journal", "shard", sh.ID, "resumed", len(have))
		}
	}

	results := make([]RunEntry, len(sh.Requests))
	errs := make([]error, len(sh.Requests))
	var wg sync.WaitGroup
	for i, req := range sh.Requests {
		if rec, ok := have[req.ContentKey()]; ok {
			results[i] = RunEntry{Request: req, Result: rec}
			continue
		}
		wg.Add(1)
		go func(i int, req harness.Request) {
			defer wg.Done()
			rec, err := w.Exec(ctx, req)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", req.Key(), err)
				return
			}
			results[i] = RunEntry{Request: req, Result: rec}
			if journal != nil {
				if _, jerr := journal.AppendRecord(req, rec); jerr != nil {
					errs[i] = jerr
				}
			}
		}(i, req)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func (w *Worker) logf(msg string, args ...any) {
	if w.Log != nil {
		w.Log.Info("worker "+msg, append([]any{"worker", w.Name}, args...)...)
	}
}

// sleepCtx sleeps for d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
