package sched

import (
	"testing"

	"sdds/internal/core"
	"sdds/internal/sim"
)

// abortFetcher completes every fetch asynchronously with ok=false,
// modelling a prefetch whose bounded retries were all exhausted.
type abortFetcher struct {
	eng   *sim.Engine
	delay sim.Duration
}

func (f *abortFetcher) Fetch(file int, offset, length int64, done func(sim.Time, bool)) error {
	f.eng.Schedule(f.delay, "abort.fetch", func(now sim.Time) { done(now, false) })
	return nil
}

// TestFailedPrefetchFallsBackToOnDemand pins the degradation contract at
// the scheduler layer: a prefetch that fails after its bounded retries
// releases its reservation and wakes any reader waiting on it with
// ok=false, so the reader degrades to an on-demand read instead of
// hanging on data that will never arrive.
func TestFailedPrefetchFallsBackToOnDemand(t *testing.T) {
	eng := sim.NewEngine(1)
	buf := MustNewGlobalBuffer(1 << 20)
	infos := map[int]AccessInfo{1: {File: 0, Offset: 100, Length: 64, WriterSlot: -1}}
	resolve := func(id int) (AccessInfo, bool) {
		in, ok := infos[id]
		return in, ok
	}
	f := &abortFetcher{eng: eng, delay: 10}
	a, err := NewAgent(0, []core.Entry{mkEntry(1, 0, 9)}, resolve, f, buf, &fakeClock{min: 100})
	if err != nil {
		t.Fatal(err)
	}
	a.Pump(eng.Now())
	if issued, _, _ := a.Stats(); issued != 1 {
		t.Fatalf("issued = %d, want 1", issued)
	}
	// A read races the in-flight prefetch and parks on the pending entry.
	var woken, okFlag bool
	if !buf.WaitConsume(1, func(ok bool) { woken = true; okFlag = ok }) {
		t.Fatal("WaitConsume did not register against the pending entry")
	}
	eng.Run()
	if !woken {
		t.Fatal("waiter never woken after the fetch aborted")
	}
	if okFlag {
		t.Fatal("waiter woken with ok=true for a failed fetch")
	}
	if a.FetchAborts() != 1 {
		t.Fatalf("FetchAborts = %d, want 1", a.FetchAborts())
	}
	if buf.Used() != 0 {
		t.Fatalf("buffer still holds %d bytes after the abort", buf.Used())
	}
	if buf.Resident(1) {
		t.Fatal("aborted entry still resident")
	}
	_, misses, _, dropped := buf.Stats()
	if misses == 0 || dropped == 0 {
		t.Fatalf("abort recorded misses=%d dropped=%d, want both > 0", misses, dropped)
	}
}
