package sched

import (
	"fmt"
	"sort"

	"sdds/internal/core"
	"sdds/internal/sim"
)

// AccessInfo resolves an access id to the byte range it covers — the
// agent's view of the scheduling-table payload.
type AccessInfo struct {
	File   int
	Offset int64
	Length int64
	// WriterSlot is the producer's slot (-1 if the data pre-exists).
	WriterSlot int
}

// Fetcher issues an asynchronous read on behalf of an agent (implemented by
// the cluster executor on top of the MPI-IO middleware). done's ok reports
// whether the data arrived; under fault injection a fetch that exhausted
// every retry completes with ok=false and the agent aborts the prefetch.
type Fetcher interface {
	Fetch(file int, offset, length int64, done func(now sim.Time, ok bool)) error
}

// LocalClock exposes the processes' progress: MinSlot is the minimum local
// slot any process has completed — the "local time" the paper's scheduler
// threads exchange before fetching cross-process data.
type LocalClock interface {
	MinSlot() int
}

// Agent is one process's scheduler thread. It walks the process's
// scheduling table (only the entries moved earlier than their original
// points) and issues prefetches into the shared global buffer.
type Agent struct {
	proc    int
	table   []core.Entry
	resolve func(accessID int) (AccessInfo, bool)
	fetcher Fetcher
	buf     *GlobalBuffer
	clock   LocalClock

	next      int // first table index not yet issued
	localSlot int

	issued, skippedFull, deferredWriter int64
	fetchAborts                         int64
}

// NewAgent builds the agent for proc from its full scheduling table; the
// agent keeps only entries scheduled earlier than their original point
// (§III: "the scheduler only performs data accesses scheduled at much
// earlier iterations than their original points").
func NewAgent(proc int, table []core.Entry, resolve func(int) (AccessInfo, bool), fetcher Fetcher, buf *GlobalBuffer, clock LocalClock) (*Agent, error) {
	if resolve == nil || fetcher == nil || buf == nil || clock == nil {
		return nil, fmt.Errorf("sched: agent %d: nil dependency", proc)
	}
	moved := make([]core.Entry, 0, len(table))
	for _, e := range table {
		if e.Slot < e.Orig {
			moved = append(moved, e)
		}
	}
	sort.SliceStable(moved, func(i, j int) bool { return moved[i].Slot < moved[j].Slot })
	return &Agent{
		proc:    proc,
		table:   moved,
		resolve: resolve,
		fetcher: fetcher,
		buf:     buf,
		clock:   clock,
		next:    0,
	}, nil
}

// Stats returns prefetch counters: issued fetches, skips due to a full
// buffer, and deferrals waiting for a producer.
func (a *Agent) Stats() (issued, skippedFull, deferredWriter int64) {
	return a.issued, a.skippedFull, a.deferredWriter
}

// FetchAborts returns how many issued prefetches completed unsuccessfully
// (injected faults, retries exhausted) and released their reservation.
// Always zero without fault injection.
func (a *Agent) FetchAborts() int64 { return a.fetchAborts }

// PendingEntries returns how many table entries have not been issued yet.
func (a *Agent) PendingEntries() int { return len(a.table) - a.next }

// AdvanceTo records that the agent's process reached local slot `slot` and
// pumps the table. It is also the hook other agents' progress re-triggers
// (a producer advancing may unblock a deferred fetch).
func (a *Agent) AdvanceTo(slot int, now sim.Time) {
	if slot > a.localSlot {
		a.localSlot = slot
	}
	a.Pump(now)
}

// Pump issues every table entry that is due, in order, stopping at the
// first entry that must wait — for its producer's local time or for buffer
// space. Stopping (rather than skipping) preserves the table order and
// implements the paper's "stop fetching when the buffer is full".
//
// Dueness follows the *global* minimum local time rather than the agent's
// own process clock: the scheduler threads synchronize with each other
// (§III), so every process's accesses scheduled at slot s are issued
// together when the slowest process reaches s. This is what converts
// slot-space grouping into temporal grouping at the disks — individual
// process clocks drift apart, and pacing each agent by its own clock would
// smear a scheduled burst over the drift window.
func (a *Agent) Pump(now sim.Time) {
	// A small lead over the global clock keeps accesses with short
	// advances fetchable: with zero lead, the slowest process reaches slot
	// s only after faster owners have already passed nearby original
	// points and the entries would all be dropped as stale.
	const dueLead = 2
	due := a.clock.MinSlot() + dueLead
	for a.next < len(a.table) {
		e := a.table[a.next]
		if e.Slot > due {
			return // not due yet
		}
		info, ok := a.resolve(e.AccessID)
		if !ok {
			a.next++ // unknown access: drop
			continue
		}
		// The prefetch is pointless once the process has passed the
		// original point (the application already read it synchronously).
		if a.localSlot >= e.Orig {
			a.next++
			continue
		}
		// Producer check: fetch only after every process has passed the
		// writer's slot, ensuring the data on disk is final.
		if info.WriterSlot >= 0 && a.clock.MinSlot() <= info.WriterSlot {
			a.deferredWriter++
			return // retry on the next AdvanceTo from any process
		}
		if !a.buf.Reserve(e.AccessID, info.Length) {
			a.skippedFull++
			return // buffer full: stop fetching until space frees
		}
		id := e.AccessID
		if err := a.fetcher.Fetch(info.File, info.Offset, info.Length, func(now sim.Time, ok bool) {
			if !ok {
				// The prefetch failed after every bounded retry: release
				// the reservation and wake any waiting reader as a miss —
				// it falls back to an on-demand read. Producer local-time
				// ordering is untouched: the entry simply behaves as if it
				// was never prefetched.
				a.fetchAborts++
				a.buf.Abort(id)
				return
			}
			if !a.buf.Commit(id) {
				// The read bypassed us; space was already released by
				// TryConsume. Nothing further to do.
				_ = id
			}
		}); err != nil {
			a.buf.Abort(id)
			a.next++
			continue
		}
		a.issued++
		a.next++
	}
}
