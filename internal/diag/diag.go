// Package diag is the simulator's black box: an always-on diagnostics
// capture subsystem that assembles a self-contained, content-addressed
// bundle for any run or sweep — the failing or slow run's canonical
// request (for exact reproduction), the probe flight-recorder dump as a
// Chrome trace, the metrics registry snapshot, the journal tail, fault
// and compile-cache statistics, pprof profiles, and build info — under a
// MANIFEST.json carrying an integrity hash per file.
//
// Capture is triggered automatically by the harness session (run error,
// per-run timeout, worker panic, slow-run watchdog) and on demand by the
// CLIs and the sddsd service. It runs entirely off the simulation hot
// path — a run's result is fully collected before capture begins — so
// capture-on and capture-off runs are bit-identical. The package is
// deliberately independent of the harness: callers hand it serializable
// values (requests, fault stats, journal tails) as opaque JSON payloads.
//
// A bundle is a directory named bundle-<id> (id = the first 12 hex digits
// of the SHA-256 over the sorted per-file hashes), optionally mirrored as
// bundle-<id>.tar.gz. The cmd/sddsdiag inspector validates bundles and
// prints a triage summary; Validate is the shared half of that.
package diag

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"sdds/internal/probe"
)

// ManifestVersion is the bundle layout version recorded in MANIFEST.json.
const ManifestVersion = 1

// ManifestName is the one file every bundle must contain.
const ManifestName = "MANIFEST.json"

// Triggers: what caused a capture. The manifest records one of these.
const (
	TriggerError   = "error"   // the run failed
	TriggerTimeout = "timeout" // the per-run deadline fired
	TriggerPanic   = "panic"   // a worker panicked inside the run
	TriggerSlow    = "slow"    // the slow-run watchdog flagged the run
	TriggerManual  = "manual"  // requested via CLI flag or service API
	TriggerShard   = "shard"   // a sharded sweep poisoned a shard (retries exhausted)
)

// Options configures a Recorder.
type Options struct {
	// Dir is the capture directory; bundles are created inside it. It is
	// created (with parents) if missing. Required.
	Dir string
	// TarGz additionally mirrors every captured bundle as
	// bundle-<id>.tar.gz next to the bundle directory.
	TarGz bool
	// MaxBundles bounds retention: after each capture, the oldest bundles
	// beyond this count are deleted. ≤0 means the default (32).
	MaxBundles int
	// CPUProfile, when positive, records a CPU profile of that duration
	// into each bundle. Off by default: capture should be cheap, and a
	// post-hoc CPU profile mostly samples the capture itself.
	CPUProfile time.Duration
	// SlowMultiplier arms the slow-run watchdog: a run slower than
	// multiplier × the rolling median of recent runs triggers a capture.
	// ≤0 leaves the watchdog disarmed.
	SlowMultiplier float64
	// MinSamples is the number of completed runs the watchdog needs
	// before issuing slow verdicts (default 8).
	MinSamples int
	// Log, when non-nil, receives structured capture events.
	Log *slog.Logger
}

// Recorder owns one capture directory and its retention policy. Methods
// are safe for concurrent use (harness workers capture concurrently). A
// nil *Recorder is the disabled state: every method is a no-op.
type Recorder struct {
	opts Options
	log  *slog.Logger
	wd   *Watchdog

	mu        sync.Mutex
	captured  int64
	failures  int64
	lastID    string
	lastError string
}

// NewRecorder creates (if needed) the capture directory and returns a
// recorder over it.
func NewRecorder(o Options) (*Recorder, error) {
	if o.Dir == "" {
		return nil, fmt.Errorf("diag: Options.Dir is required")
	}
	if o.MaxBundles <= 0 {
		o.MaxBundles = 32
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("diag: %w", err)
	}
	r := &Recorder{opts: o, log: o.Log}
	if o.SlowMultiplier > 0 {
		r.wd = NewWatchdog(o.SlowMultiplier, o.MinSamples)
	}
	return r, nil
}

// Dir returns the capture directory ("" on a nil recorder).
func (r *Recorder) Dir() string {
	if r == nil {
		return ""
	}
	return r.opts.Dir
}

// Watchdog returns the recorder's slow-run watchdog (nil when disarmed or
// on a nil recorder).
func (r *Recorder) Watchdog() *Watchdog {
	if r == nil {
		return nil
	}
	return r.wd
}

// Stats reports lifetime capture counts: bundles written and captures
// that themselves failed.
func (r *Recorder) Stats() (captured, failures int64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.captured, r.failures
}

// Capture describes one capture request: the triggering run's identity
// and whatever evidence the caller has. Every field but Trigger and Key
// is optional — absent evidence simply leaves its file out of the bundle.
type Capture struct {
	// Trigger is one of the Trigger* constants.
	Trigger string
	// Key is the run's human-readable canonical key (Request.Key form).
	Key string
	// ContentKey is the run's content address (Request.ContentKey form).
	ContentKey string
	// Err is the run error, recorded in error.txt and the manifest.
	Err error
	// Request is the canonical run submission, marshaled to request.json.
	// Resubmitting it must reproduce the run exactly.
	Request any
	// Result is the portable run result (harness.RunRecord form),
	// marshaled to result.json; nil for failed runs.
	Result any
	// Metrics is the run's registry snapshot, marshaled to metrics.json.
	Metrics []probe.Metric
	// Faults is the run's fault/degradation block, marshaled to
	// faults.json.
	Faults any
	// CompileCache is the compile-cache counter snapshot, marshaled to
	// compile_cache.json.
	CompileCache any
	// JournalTail is the recent-journal listing, marshaled to
	// journal_tail.json.
	JournalTail any
	// Trace, when non-nil, writes the probe's Chrome trace-event dump to
	// trace.json.
	Trace func(io.Writer) error
	// ElapsedMS and MedianMS record the run's wall time and the
	// watchdog's rolling median at capture time (0 when unknown).
	ElapsedMS int64
	MedianMS  int64
}

// FileEntry is one bundle file in the manifest: its size and SHA-256.
type FileEntry struct {
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// Manifest is the bundle's self-description: trigger context plus an
// integrity entry per file. The bundle ID is the first 12 hex digits of
// the SHA-256 over "name:hash\n" lines sorted by name — equal content
// always produces the same bundle, so repeated captures dedup.
type Manifest struct {
	Version       int         `json:"version"`
	ID            string      `json:"id"`
	Trigger       string      `json:"trigger"`
	Key           string      `json:"key,omitempty"`
	ContentKey    string      `json:"content_key,omitempty"`
	Error         string      `json:"error,omitempty"`
	ElapsedMS     int64       `json:"elapsed_ms,omitempty"`
	MedianMS      int64       `json:"median_ms,omitempty"`
	CreatedUnixMS int64       `json:"created_unix_ms"`
	GoVersion     string      `json:"go_version"`
	Files         []FileEntry `json:"files"`
}

// BundleInfo describes one captured bundle on disk.
type BundleInfo struct {
	ID       string   `json:"id"`
	Path     string   `json:"path"`
	Archive  string   `json:"archive,omitempty"`
	Manifest Manifest `json:"manifest"`
}

// bundleID derives the content address from the manifest's file entries.
func bundleID(files []FileEntry) string {
	lines := make([]string, 0, len(files))
	for _, f := range files {
		lines = append(lines, f.Name+":"+f.SHA256+"\n")
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		io.WriteString(h, l)
	}
	return hex.EncodeToString(h.Sum(nil))[:12]
}

// BundleDirName renders the directory name for a bundle ID.
func BundleDirName(id string) string { return "bundle-" + id }

// Capture assembles one bundle from c. It never panics and reports any
// assembly failure as an error without leaving partial bundles behind
// (assembly happens in a hidden temp directory, renamed into place only
// once the manifest is written). A capture whose content matches an
// existing bundle dedups onto it.
func (r *Recorder) Capture(c Capture) (*BundleInfo, error) {
	if r == nil {
		return nil, nil
	}
	info, err := r.capture(c)
	r.mu.Lock()
	if err != nil {
		r.failures++
		r.lastError = err.Error()
	} else {
		r.captured++
		r.lastID = info.ID
	}
	r.mu.Unlock()
	if r.log != nil {
		if err != nil {
			r.log.Error("diag capture failed", "trigger", c.Trigger, "request_key", c.Key, "err", err.Error())
		} else {
			r.log.Info("diag bundle captured", "trigger", c.Trigger, "request_key", c.Key,
				"bundle", info.ID, "path", info.Path)
		}
	}
	return info, err
}

func (r *Recorder) capture(c Capture) (*BundleInfo, error) {
	if c.Trigger == "" {
		c.Trigger = TriggerManual
	}
	tmp, err := os.MkdirTemp(r.opts.Dir, ".capture-")
	if err != nil {
		return nil, fmt.Errorf("diag: %w", err)
	}
	defer os.RemoveAll(tmp) // no-op once renamed into place

	var entries []FileEntry
	add := func(name string, write func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(tmp, name))
		if err != nil {
			return err
		}
		h := sha256.New()
		cw := &countWriter{w: io.MultiWriter(f, h)}
		werr := write(cw)
		cerr := f.Close()
		if werr != nil {
			return fmt.Errorf("%s: %w", name, werr)
		}
		if cerr != nil {
			return fmt.Errorf("%s: %w", name, cerr)
		}
		entries = append(entries, FileEntry{
			Name:   name,
			Bytes:  cw.n,
			SHA256: hex.EncodeToString(h.Sum(nil)),
		})
		return nil
	}
	addJSON := func(name string, v any) error {
		return add(name, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(v)
		})
	}

	if c.Request != nil {
		if err := addJSON("request.json", c.Request); err != nil {
			return nil, err
		}
	}
	if c.Err != nil {
		if err := add("error.txt", func(w io.Writer) error {
			_, werr := io.WriteString(w, c.Err.Error()+"\n")
			return werr
		}); err != nil {
			return nil, err
		}
	}
	if c.Result != nil {
		if err := addJSON("result.json", c.Result); err != nil {
			return nil, err
		}
	}
	if len(c.Metrics) > 0 {
		if err := addJSON("metrics.json", c.Metrics); err != nil {
			return nil, err
		}
	}
	if c.Faults != nil {
		if err := addJSON("faults.json", c.Faults); err != nil {
			return nil, err
		}
	}
	if c.CompileCache != nil {
		if err := addJSON("compile_cache.json", c.CompileCache); err != nil {
			return nil, err
		}
	}
	if c.JournalTail != nil {
		if err := addJSON("journal_tail.json", c.JournalTail); err != nil {
			return nil, err
		}
	}
	if c.Trace != nil {
		if err := add("trace.json", c.Trace); err != nil {
			return nil, err
		}
	}
	if err := r.addProfiles(add); err != nil {
		return nil, err
	}
	if err := add("buildinfo.txt", func(w io.Writer) error {
		if bi, ok := debug.ReadBuildInfo(); ok {
			if _, werr := io.WriteString(w, bi.String()); werr != nil {
				return werr
			}
		}
		_, werr := fmt.Fprintf(w, "go: %s\nos/arch: %s/%s\n",
			runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return werr
	}); err != nil {
		return nil, err
	}

	id := bundleID(entries)
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	man := Manifest{
		Version:       ManifestVersion,
		ID:            id,
		Trigger:       c.Trigger,
		Key:           c.Key,
		ContentKey:    c.ContentKey,
		ElapsedMS:     c.ElapsedMS,
		MedianMS:      c.MedianMS,
		CreatedUnixMS: time.Now().UnixMilli(), //sddsvet:ignore simdet -- capture timestamp: bundle metadata, never simulation input
		GoVersion:     runtime.Version(),
		Files:         entries,
	}
	if c.Err != nil {
		man.Error = c.Err.Error()
	}
	manData, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("diag: manifest: %w", err)
	}
	manData = append(manData, '\n')
	if err := os.WriteFile(filepath.Join(tmp, ManifestName), manData, 0o644); err != nil {
		return nil, fmt.Errorf("diag: manifest: %w", err)
	}

	final := filepath.Join(r.opts.Dir, BundleDirName(id))
	info := &BundleInfo{ID: id, Path: final, Manifest: man}
	if _, err := os.Stat(final); err == nil {
		// Identical content already captured: dedup onto the existing
		// bundle (its manifest may differ in timestamp; keep the original).
		if existing, rerr := readManifestDir(final); rerr == nil {
			info.Manifest = existing
		}
	} else if err := os.Rename(tmp, final); err != nil {
		return nil, fmt.Errorf("diag: %w", err)
	}
	if r.opts.TarGz {
		arch := final + ".tar.gz"
		if err := writeTarGz(arch, final, info.Manifest); err != nil {
			return nil, err
		}
		info.Archive = arch
	}
	if err := r.prune(); err != nil {
		return nil, err
	}
	return info, nil
}

// addProfiles records the pprof evidence: heap and goroutine always, CPU
// only when the recorder is configured with a sampling window.
func (r *Recorder) addProfiles(add func(string, func(io.Writer) error) error) error {
	if err := add("heap.pprof", func(w io.Writer) error {
		return pprof.Lookup("heap").WriteTo(w, 0)
	}); err != nil {
		return err
	}
	if err := add("goroutine.pprof", func(w io.Writer) error {
		return pprof.Lookup("goroutine").WriteTo(w, 0)
	}); err != nil {
		return err
	}
	if r.opts.CPUProfile <= 0 {
		return nil
	}
	// Only one CPU profile can run per process; if another capture (or
	// the host binary) holds it, skip quietly rather than fail the bundle.
	return add("cpu.pprof", func(w io.Writer) error {
		if err := pprof.StartCPUProfile(w); err != nil {
			return nil
		}
		time.Sleep(r.opts.CPUProfile) //sddsvet:ignore simdet -- deliberate wall-clock sampling window for the CPU profile
		pprof.StopCPUProfile()
		return nil
	})
}

// prune deletes the oldest bundles beyond the retention bound.
func (r *Recorder) prune() error {
	infos, err := r.List()
	if err != nil {
		return err
	}
	// List returns newest-first; everything past MaxBundles goes.
	for _, b := range infos[min(len(infos), r.opts.MaxBundles):] {
		if err := os.RemoveAll(b.Path); err != nil {
			return fmt.Errorf("diag: prune: %w", err)
		}
		os.Remove(b.Path + ".tar.gz") // best-effort: the mirror may not exist
	}
	return nil
}

// List returns the capture directory's bundles, newest first (by manifest
// creation time, then ID). Directories without a readable manifest are
// skipped — half-assembled temp dirs never surface.
func (r *Recorder) List() ([]BundleInfo, error) {
	if r == nil {
		return nil, nil
	}
	return ListDir(r.opts.Dir)
}

// Find resolves a bundle by full ID or unique prefix.
func (r *Recorder) Find(id string) (*BundleInfo, error) {
	if r == nil {
		return nil, fmt.Errorf("diag: capture disabled")
	}
	infos, err := r.List()
	if err != nil {
		return nil, err
	}
	var match *BundleInfo
	for i := range infos {
		if infos[i].ID == id {
			return &infos[i], nil
		}
		if strings.HasPrefix(infos[i].ID, id) {
			if match != nil {
				return nil, fmt.Errorf("diag: bundle id %q is ambiguous", id)
			}
			match = &infos[i]
		}
	}
	if match == nil {
		return nil, fmt.Errorf("diag: no bundle %q", id)
	}
	return match, nil
}

// ListDir lists the bundles under any capture directory, newest first.
func ListDir(dir string) ([]BundleInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("diag: %w", err)
	}
	var out []BundleInfo
	for _, e := range ents {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "bundle-") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		man, err := readManifestDir(path)
		if err != nil {
			continue
		}
		info := BundleInfo{ID: man.ID, Path: path, Manifest: man}
		if _, err := os.Stat(path + ".tar.gz"); err == nil {
			info.Archive = path + ".tar.gz"
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Manifest.CreatedUnixMS != out[j].Manifest.CreatedUnixMS {
			return out[i].Manifest.CreatedUnixMS > out[j].Manifest.CreatedUnixMS
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// readManifestDir parses a bundle directory's manifest.
func readManifestDir(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("diag: %s: %w", dir, err)
	}
	return m, nil
}

// countWriter counts bytes through to w.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
