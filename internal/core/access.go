// Package core implements the paper's primary contribution: the
// compiler-side data access scheduling algorithms of §IV. Given the set of
// I/O accesses of a parallel program — each with its slack window (the
// iterations between the last preceding write of a block and its read), its
// I/O-node signature, its length in scheduling slots and its process id —
// the scheduler picks one scheduling point per access that maximizes
// horizontal and vertical I/O-node reuse, optionally subject to the θ
// performance constraint (§IV-B3). The result is a per-process scheduling
// table consumed by the runtime data access scheduler.
package core

import (
	"fmt"

	"sdds/internal/stripe"
)

// Access is one disk I/O call extracted by the compiler, in the form the
// scheduling algorithms consume (a in Fig. 11).
type Access struct {
	// ID uniquely identifies the access within one scheduling problem.
	ID int
	// Proc is the issuing process (thread) id: at most one access per
	// process may occupy a given slot.
	Proc int
	// Begin and End delimit the slack window [a.b, a.e] in scheduling
	// slots, inclusive. A negative slack must be normalized by the slack
	// analysis to a window of length 1 before reaching the scheduler.
	Begin, End int
	// Length is the number of consecutive slots the access occupies once
	// scheduled (1 in the basic algorithm; ≥1 in the extended one).
	Length int
	// Sig is the set of I/O nodes the access visits.
	Sig stripe.Signature
	// Orig is the access's original issue slot in the untransformed
	// program (the read point). The runtime scheduler prefetches only
	// accesses scheduled earlier than their original point.
	Orig int
}

// SlackLen returns the slack length a.e − a.b + 1 used as the processing
// order key (shortest-first).
func (a *Access) SlackLen() int { return a.End - a.Begin + 1 }

// LatestStart returns the last slot at which the access can start and still
// complete within its slack. When the access is longer than its slack, the
// only choice is Begin (best effort).
func (a *Access) LatestStart() int {
	s := a.End - a.Length + 1
	if s < a.Begin {
		return a.Begin
	}
	return s
}

// Validate reports the first problem with the access, or nil.
func (a *Access) Validate(numSlots, numNodes int) error {
	switch {
	case a.Length < 1:
		return fmt.Errorf("core: access %d: length %d < 1", a.ID, a.Length)
	case a.Begin < 0 || a.End < a.Begin:
		return fmt.Errorf("core: access %d: bad slack [%d,%d]", a.ID, a.Begin, a.End)
	case a.End >= numSlots:
		return fmt.Errorf("core: access %d: slack end %d ≥ slot count %d", a.ID, a.End, numSlots)
	case a.Sig.Len() != numNodes:
		return fmt.Errorf("core: access %d: signature over %d nodes, want %d", a.ID, a.Sig.Len(), numNodes)
	case a.Sig.Empty():
		return fmt.Errorf("core: access %d: empty signature", a.ID)
	}
	return nil
}

// Params configures the scheduler.
type Params struct {
	// NumSlots is the total number of scheduling slots Nt.
	NumSlots int
	// NumNodes is the I/O-node count n (signature width).
	NumNodes int
	// Delta is the vertical reuse range δ (Table II default: 20).
	Delta int
	// Theta caps the number of accesses touching any single I/O node in
	// one slot (Table II default: 4). Zero disables the constraint
	// (§IV-B1/B2 behaviour).
	Theta int
	// RandomTies, when non-nil, selects uniformly among equally good slots
	// using the provided function (the paper chooses randomly); nil keeps
	// the first-found best slot, which makes runs deterministic.
	RandomTies func(n int) int
	// NoWeights disables the σ position weights (ablation: every slot in
	// the vertical range counts fully).
	NoWeights bool
	// Order overrides the processing order (ablation); default is
	// shortest-slack-first as in Fig. 11.
	Order OrderKind
}

// OrderKind selects the order in which accesses are scheduled.
type OrderKind int

// Processing orders. OrderSlack is the paper's; the others exist for the
// ablation benchmarks.
const (
	// OrderSlack processes shortest slack first (Fig. 11 line 4).
	OrderSlack OrderKind = iota
	// OrderInput keeps the input (program) order.
	OrderInput
	// OrderLongestSlack processes longest slack first (anti-heuristic).
	OrderLongestSlack
)

// Validate reports the first parameter problem, or nil.
func (p Params) Validate() error {
	switch {
	case p.NumSlots <= 0:
		return fmt.Errorf("core: NumSlots %d must be positive", p.NumSlots)
	case p.NumNodes <= 0:
		return fmt.Errorf("core: NumNodes %d must be positive", p.NumNodes)
	case p.Delta < 0:
		return fmt.Errorf("core: Delta %d must be ≥ 0", p.Delta)
	case p.Theta < 0:
		return fmt.Errorf("core: Theta %d must be ≥ 0", p.Theta)
	}
	return nil
}

// DefaultParams returns the Table II algorithm parameters (δ=20, θ=4) for
// the given problem size.
func DefaultParams(numSlots, numNodes int) Params {
	return Params{NumSlots: numSlots, NumNodes: numNodes, Delta: 20, Theta: 4}
}

// Weight returns the σ|k| position weight for an offset k slots outside the
// occupied span: σ|k| = 1 − |k|/(δ+1) (Eq. 3), so the occupied span itself
// has weight 1 and weights decay linearly to 0 just past δ.
func Weight(k, delta int) float64 {
	if k < 0 {
		k = -k
	}
	if k > delta {
		return 0
	}
	return 1 - float64(k)/float64(delta+1)
}
