package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"sdds/internal/sim"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewIdleHistogram()
	// One gap per paper bucket plus one overflow.
	gaps := []float64{3, 8, 30, 80, 300, 800, 3000, 8000, 15000, 25000, 35000, 45000, 99999}
	for _, ms := range gaps {
		h.Record(sim.MilliToTime(ms))
	}
	if h.Count() != int64(len(gaps)) {
		t.Fatalf("Count = %d", h.Count())
	}
	cdf := h.CDF()
	if len(cdf) != len(PaperBucketsMs) {
		t.Fatalf("CDF length %d", len(cdf))
	}
	// Each bound should include exactly one more sample.
	for i, p := range cdf {
		want := float64(i+1) / float64(len(gaps))
		if math.Abs(p.Frac-want) > 1e-9 {
			t.Fatalf("CDF[%d] = %v, want %v", i, p.Frac, want)
		}
	}
	if h.FracAtMost(50000) >= 1 {
		t.Fatal("overflow sample included below the last bound")
	}
}

func TestHistogramBoundIsInclusive(t *testing.T) {
	h := NewIdleHistogram()
	h.Record(sim.MilliToTime(5)) // exactly on the first bound
	if got := h.FracAtMost(5); got != 1 {
		t.Fatalf("FracAtMost(5) = %v, want 1 (bounds are inclusive)", got)
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewIdleHistogram()
	if h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram stats nonzero")
	}
	h.Record(sim.MilliToTime(10))
	h.Record(sim.MilliToTime(30))
	if got := h.Mean(); got != sim.MilliToTime(20) {
		t.Fatalf("Mean = %v", got)
	}
	if got := h.Max(); got != sim.MilliToTime(30) {
		t.Fatalf("Max = %v", got)
	}
	h.Record(-1) // ignored
	if h.Count() != 2 {
		t.Fatal("negative gap recorded")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewIdleHistogram(), NewIdleHistogram()
	a.Record(sim.MilliToTime(3))
	b.Record(sim.MilliToTime(700))
	b.Record(sim.MilliToTime(99999))
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if err := a.Merge(NewIdleHistogramWith([]float64{1})); err == nil {
		t.Fatal("merge with mismatched buckets succeeded")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewIdleHistogram()
	h.Record(sim.MilliToTime(3))
	s := h.String()
	if !strings.Contains(s, "1 gaps") || !strings.Contains(s, "≤5ms:100.0%") {
		t.Fatalf("String = %q", s)
	}
}

// Property: a CDF is monotone nondecreasing in [0,1] for any sample set.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(gapsMs []uint32) bool {
		h := NewIdleHistogram()
		for _, g := range gapsMs {
			h.Record(sim.MilliToTime(float64(g % 100000)))
		}
		cdf := h.CDF()
		if !sort.SliceIsSorted(cdf, func(i, j int) bool { return cdf[i].Frac < cdf[j].Frac }) {
			// Equal fractions are fine; check nondecreasing explicitly.
			for i := 1; i < len(cdf); i++ {
				if cdf[i].Frac < cdf[i-1].Frac {
					return false
				}
			}
		}
		for _, p := range cdf {
			if p.Frac < 0 || p.Frac > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyMath(t *testing.T) {
	if got := NormalizedEnergy(80, 100); got != 0.8 {
		t.Fatalf("NormalizedEnergy = %v", got)
	}
	if got := EnergySaving(80, 100); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("EnergySaving = %v", got)
	}
	if NormalizedEnergy(1, 0) != 0 || EnergySaving(1, 0) != 0 {
		t.Fatal("zero baseline must yield 0")
	}
}

func TestDegradationAndImprovement(t *testing.T) {
	if got := Degradation(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("Degradation = %v", got)
	}
	if got := Improvement(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("Improvement = %v", got)
	}
	if Degradation(5, 0) != 0 {
		t.Fatal("zero baseline must yield 0")
	}
}

func TestMeanAndPct(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Pct(0.127); got != "12.7%" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"App", "Energy"}, [][]string{
		{"hf", "3637.4"},
		{"sar", "1227.3"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "App") || !strings.Contains(lines[0], "Energy") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("rule = %q", lines[1])
	}
	// Columns align: "Energy" starts at the same offset in all rows.
	col := strings.Index(lines[0], "Energy")
	if strings.Index(lines[2], "3637.4") != col {
		t.Fatalf("misaligned column:\n%s", out)
	}
}
