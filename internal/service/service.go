// Package service implements sddsd, the resident experiment service: a
// long-lived HTTP/JSON server wrapping harness.Session behind the
// canonical harness.Request submission model. Every run is
// content-addressed (Request.ContentKey) into a persistent store shared
// across process lifetimes, so identical submissions — from any client,
// before or after a restart — dedup onto one simulation. The endpoint
// surface is versioned under /v1: runs, sweeps, run lookup, an SSE
// progress stream, status, doctor, and Prometheus metrics.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"sdds/internal/compilecache"
	"sdds/internal/diag"
	"sdds/internal/harness"
	"sdds/internal/probe"
	"sdds/internal/shard"
	"sdds/internal/store"
)

// latencyBuckets are the fixed run-latency histogram bounds (seconds):
// spanning cache hits (sub-millisecond) through full-scale simulations.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 30, 120, 600}

// Options configures the service.
type Options struct {
	// StorePath is the persistent content-addressed result store (the
	// crash-safe JSONL journal). Required; the service always opens it in
	// resume mode so results survive restarts.
	StorePath string
	// Workers bounds concurrent cluster simulations; ≤0 means GOMAXPROCS.
	Workers int
	// RunTimeout, when positive, bounds each simulation's wall time (the
	// session-wide deadline; per-request TimeoutMS bounds individual calls).
	RunTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: inflight run handlers get this
	// long to finish before the listener is torn down (default 30s).
	DrainTimeout time.Duration
	// Tail is how many recent store entries /v1/doctor reports (default 8).
	Tail int
	// ArtifactPath is the persistent compile-artifact store backing the
	// session's compile cache, so scheduled runs skip recompilation across
	// restarts. Empty derives StorePath + ".artifacts"; "off" disables the
	// compile cache entirely.
	ArtifactPath string
	// CaptureDir, when non-empty, arms diagnostics capture: failing,
	// timed-out, panicking, and watchdog-flagged runs are captured as
	// content-addressed bundles there, and the /v1/bundles endpoints serve
	// them. Empty disables capture (the endpoints then report it so).
	CaptureDir string
	// SlowMultiplier tunes the slow-run watchdog when capture is armed: a
	// run slower than multiplier × the rolling median of recent runs is
	// captured. 0 means the default (4); a negative value disarms only the
	// watchdog, keeping failure capture.
	SlowMultiplier float64
	// Log, when non-nil, receives structured service, session, and store
	// events (JSON slog records with per-run request_key correlation).
	Log *slog.Logger

	// LeaseTTL is how long a shard lease granted to a sddsworker lives
	// without renewal (default 15s).
	LeaseTTL time.Duration
	// ShardSize is the default requests-per-shard for sharded sweeps
	// (default 4); submitters may override per sweep.
	ShardSize int
	// MaxShardAttempts bounds lease grants per shard before it is
	// poisoned (default 5).
	MaxShardAttempts int
	// LocalGrace is how long a sharded sweep waits for any worker to
	// register before degrading to local single-process execution
	// (default 3s; negative disables the fallback entirely).
	LocalGrace time.Duration
}

// Server is the service state: one session, one persistent store, one
// event hub. Create with NewServer, serve with Serve (or mount Handler
// under an existing mux), and Close when done.
type Server struct {
	opts    Options
	journal *harness.Journal
	sess    *harness.Session
	hub     *hub
	start   time.Time
	log     *slog.Logger

	// compile is the persistent compile-artifact cache shared by every
	// scheduled run the session executes; nil when disabled.
	compile *compilecache.Cache

	// diag is the diagnostics recorder behind /v1/bundles and the
	// session's automatic capture; nil when capture is disabled.
	diag *diag.Recorder
	// spanProbe is the session's span-only trace, captured into bundles;
	// nil when capture is disabled.
	spanProbe *probe.Probe

	// reg holds the service's own counters. probe.Registry is single-owner
	// by contract, so every access goes through regMu.
	regMu     sync.Mutex
	reg       *probe.Registry
	submitted probe.Counter
	simulated probe.Counter
	cached    probe.Counter
	failed    probe.Counter
	sweeps    probe.Counter
	// Compile-cache gauges, refreshed from the cache's counters each time
	// the registry is rendered (/v1/metrics, /v1/doctor).
	ccHits     probe.Gauge
	ccMisses   probe.Gauge
	ccRestores probe.Gauge
	ccBytes    probe.Gauge
	ccEntries  probe.Gauge
	// latency is the request-latency histogram (seconds), observed per
	// /v1/runs and sweep cell, cache hits included.
	latency probe.Histogram
	// Diagnostics gauges, refreshed at render time like the compile-cache
	// ones; registered only when capture is armed.
	diagCaptured  probe.Gauge
	diagFailures  probe.Gauge
	wdMedianMS    probe.Gauge
	spanCount     probe.Gauge
	spanContended probe.Gauge

	// Shard-sweep counters, driven by coordinator lifecycle events.
	shardSweeps     probe.Counter
	shardsLeased    probe.Counter
	shardsCompleted probe.Counter
	shardsRequeued  probe.Counter
	shardsDuplicate probe.Counter
	shardsPoisoned  probe.Counter

	// life spans the server's lifetime; the sharded sweeps' local-fallback
	// goroutines hang off it so Close reaps them.
	life     context.Context
	lifeStop context.CancelFunc

	// shardMu guards the active sweep coordinator (one at a time).
	shardMu sync.Mutex
	coord   *shard.Coordinator

	mu       sync.Mutex
	seen     map[string]harness.Request // content key → request, for GET /v1/runs/{key}
	inflight map[string]int             // content key → active submissions
}

// NewServer opens the store and builds the service around a fresh
// session preloaded with every stored result.
func NewServer(o Options) (*Server, error) {
	if o.StorePath == "" {
		return nil, errors.New("service: Options.StorePath is required")
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 30 * time.Second
	}
	if o.Tail <= 0 {
		o.Tail = 8
	}
	if o.ArtifactPath == "" {
		o.ArtifactPath = o.StorePath + ".artifacts"
	}
	j, err := harness.OpenJournalWith(o.StorePath, true, o.Log)
	if err != nil {
		return nil, err
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 15 * time.Second
	}
	if o.ShardSize <= 0 {
		o.ShardSize = 4
	}
	if o.MaxShardAttempts <= 0 {
		o.MaxShardAttempts = 5
	}
	if o.LocalGrace == 0 {
		o.LocalGrace = 3 * time.Second
	}
	s := &Server{
		opts:     o,
		journal:  j,
		hub:      newHub(),
		log:      o.Log,
		reg:      probe.NewRegistry(),
		seen:     make(map[string]harness.Request),
		inflight: make(map[string]int),
	}
	s.life, s.lifeStop = context.WithCancel(context.Background())
	if o.ArtifactPath != "off" {
		s.compile, err = compilecache.Open(o.ArtifactPath)
		if err != nil {
			j.Close()
			return nil, err
		}
	}
	if o.CaptureDir != "" {
		mult := o.SlowMultiplier
		if mult == 0 {
			mult = 4
		}
		s.diag, err = diag.NewRecorder(diag.Options{
			Dir:            o.CaptureDir,
			SlowMultiplier: mult,
			Log:            o.Log,
		})
		if err != nil {
			s.closeStores()
			return nil, err
		}
		s.spanProbe = probe.NewSpanProbe()
	}
	s.submitted = s.reg.Counter("sddsd.runs.submitted")
	s.simulated = s.reg.Counter("sddsd.runs.simulated")
	s.cached = s.reg.Counter("sddsd.runs.cached")
	s.failed = s.reg.Counter("sddsd.runs.failed")
	s.sweeps = s.reg.Counter("sddsd.sweeps.submitted")
	s.ccHits = s.reg.Gauge("compile_cache.hits")
	s.ccMisses = s.reg.Gauge("compile_cache.misses")
	s.ccRestores = s.reg.Gauge("compile_cache.restores")
	s.ccBytes = s.reg.Gauge("compile_cache.bytes")
	s.ccEntries = s.reg.Gauge("compile_cache.entries")
	s.latency = s.reg.Histogram("sddsd.run_latency_seconds", latencyBuckets)
	s.shardSweeps = s.reg.Counter("sddsd.shards.sweeps")
	s.shardsLeased = s.reg.Counter("sddsd.shards.leased")
	s.shardsCompleted = s.reg.Counter("sddsd.shards.completed")
	s.shardsRequeued = s.reg.Counter("sddsd.shards.requeued")
	s.shardsDuplicate = s.reg.Counter("sddsd.shards.duplicate")
	s.shardsPoisoned = s.reg.Counter("sddsd.shards.poisoned")
	if s.diag != nil {
		s.diagCaptured = s.reg.Gauge("diag.bundles_captured")
		s.diagFailures = s.reg.Gauge("diag.capture_failures")
		s.wdMedianMS = s.reg.Gauge("diag.watchdog_median_ms")
		s.spanCount = s.reg.Gauge("probe.spans")
		s.spanContended = s.reg.Gauge("probe.span_contention")
	}
	s.sess = harness.NewSession(harness.SessionOptions{
		Workers:             o.Workers,
		RunTimeout:          o.RunTimeout,
		Journal:             j,
		Progress:            s.onProgress,
		CompileCache:        s.compile,
		DisableCompileCache: s.compile == nil,
		Probe:               s.spanProbe,
		Diag:                s.diag,
		Log:                 o.Log,
	})
	s.start = time.Now() //sddsvet:ignore simdet -- wall-clock service uptime, not simulated time
	return s, nil
}

// onProgress fans session run events into the SSE hub and the service
// counters. The session serializes calls.
func (s *Server) onProgress(p harness.Progress) {
	ev := Event{
		Key:         p.Key,
		Done:        p.Done,
		Total:       p.Total,
		Hits:        p.Hits,
		Hit:         p.Hit,
		FromJournal: p.FromJournal,
		CompileProv: p.CompileProv,
		ElapsedMS:   p.Elapsed.Milliseconds(),
	}
	if p.Err != nil {
		ev.Err = p.Err.Error()
	}
	s.hub.broadcast(ev)
}

// runOne resolves one normalized request through the session, tracking
// it as inflight for GET /v1/runs/{key} and counting the outcome.
func (s *Server) runOne(ctx context.Context, req harness.Request) RunResponse {
	key := req.ContentKey()
	s.mu.Lock()
	s.seen[key] = req
	s.inflight[key]++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		if s.inflight[key]--; s.inflight[key] <= 0 {
			delete(s.inflight, key)
		}
		s.mu.Unlock()
	}()

	s.regMu.Lock()
	s.submitted.Inc()
	s.regMu.Unlock()

	start := time.Now() //sddsvet:ignore simdet -- wall-clock request latency, not simulated time
	res, hit, err := s.sess.RunRequest(ctx, req)
	elapsed := time.Since(start) //sddsvet:ignore simdet -- wall-clock request latency, not simulated time
	resp := RunResponse{
		Key:       key,
		Request:   req,
		Cached:    hit,
		ElapsedMS: elapsed.Milliseconds(),
	}
	s.regMu.Lock()
	switch {
	case err != nil:
		s.failed.Inc()
	case hit:
		s.cached.Inc()
	default:
		s.simulated.Inc()
	}
	s.latency.Observe(elapsed.Seconds())
	s.regMu.Unlock()
	if err != nil {
		resp.Error = err.Error()
		return resp
	}
	rec := harness.NewRunRecord(res)
	resp.Result = &rec
	return resp
}

// Status snapshots the service health surface behind GET /v1/status.
func (s *Server) Status() StatusResponse {
	simulated, hits := s.sess.Stats()
	s.mu.Lock()
	keys := make([]string, 0, len(s.inflight))
	for k := range s.inflight {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	resp := StatusResponse{
		UptimeMS:     time.Since(s.start).Milliseconds(),
		Workers:      s.sess.Workers(),
		InFlight:     s.sess.InFlight(),
		InFlightKeys: keys,
		CacheEntries: s.sess.MemoSize(),
		Preloaded:    s.sess.Preloaded(),
		Simulated:    simulated,
		CacheHits:    hits,
		StoreEntries: s.journal.Len(),
		StoreAppends: s.journal.Appends(),
		StorePath:    s.journal.Path(),
		Subscribers:  s.hub.count(),
		SetupGroups:  s.sess.SetupGroups(),
	}
	if s.compile != nil {
		st := s.sess.CompileCacheStats()
		resp.CompileCache = &st
		resp.ArtifactPath = s.compile.Store().Path()
	}
	if coord := s.activeCoord(); coord != nil {
		snap := coord.Snapshot()
		resp.Shards = &snap
	}
	return resp
}

// Doctor runs the diagnostic checks behind GET /v1/doctor: a store
// integrity scan, worker-pool sanity, store↔cache consistency, the
// journal tail, and the service metrics in Prometheus text form.
func (s *Server) Doctor() DoctorResponse {
	var checks []Check

	rep, err := store.Verify(s.journal.Path())
	switch {
	case err != nil:
		checks = append(checks, Check{Name: "store-integrity", Status: "fail", Detail: err.Error()})
	case rep.TornBytes > 0:
		checks = append(checks, Check{Name: "store-integrity", Status: "warn",
			Detail: fmt.Sprintf("%d torn trailing bytes (recoverable: truncated on next open)", rep.TornBytes)})
	case rep.DupKeys > 0:
		checks = append(checks, Check{Name: "store-integrity", Status: "warn",
			Detail: fmt.Sprintf("%d duplicate keys", rep.DupKeys)})
	default:
		checks = append(checks, Check{Name: "store-integrity", Status: "ok",
			Detail: fmt.Sprintf("%d entries, %d bytes intact", rep.Entries, rep.ValidBytes)})
	}

	inflight, workers := s.sess.InFlight(), s.sess.Workers()
	if inflight > workers {
		checks = append(checks, Check{Name: "worker-pool", Status: "fail",
			Detail: fmt.Sprintf("%d runs in flight exceeds the %d-worker pool", inflight, workers)})
	} else {
		checks = append(checks, Check{Name: "worker-pool", Status: "ok",
			Detail: fmt.Sprintf("%d/%d workers busy", inflight, workers)})
	}

	// Every stored result is either preloaded at startup or appended after
	// a run this process executed, so the cache must cover the store.
	if sl, cl := s.journal.Len(), s.sess.MemoSize(); sl > cl {
		checks = append(checks, Check{Name: "store-cache-consistency", Status: "warn",
			Detail: fmt.Sprintf("store holds %d entries but cache only %d", sl, cl)})
	} else {
		checks = append(checks, Check{Name: "store-cache-consistency", Status: "ok",
			Detail: fmt.Sprintf("cache (%d) covers store (%d)", cl, sl)})
	}

	// Compile-artifact store integrity plus the cache's live counters.
	if s.compile == nil {
		checks = append(checks, Check{Name: "compile-cache", Status: "ok", Detail: "disabled"})
	} else {
		st := s.sess.CompileCacheStats()
		detail := fmt.Sprintf("%d entries, %d hits, %d misses, %d restores, %d artifact bytes",
			st.Entries, st.Hits, st.Misses, st.Restores, st.Bytes)
		arep, err := store.Verify(s.compile.Store().Path())
		switch {
		case err != nil:
			checks = append(checks, Check{Name: "compile-cache", Status: "fail", Detail: err.Error()})
		case arep.TornBytes > 0:
			checks = append(checks, Check{Name: "compile-cache", Status: "warn",
				Detail: fmt.Sprintf("%s; %d torn trailing bytes", detail, arep.TornBytes)})
		default:
			checks = append(checks, Check{Name: "compile-cache", Status: "ok", Detail: detail})
		}
	}

	// Diagnostics capture health: bundles on disk and capture failures.
	var bundles []BundleSummary
	if s.diag == nil {
		checks = append(checks, Check{Name: "diagnostics", Status: "ok", Detail: "capture disabled"})
	} else {
		captured, failures := s.diag.Stats()
		infos, err := s.diag.List()
		switch {
		case err != nil:
			checks = append(checks, Check{Name: "diagnostics", Status: "fail", Detail: err.Error()})
		case failures > 0:
			checks = append(checks, Check{Name: "diagnostics", Status: "warn",
				Detail: fmt.Sprintf("%d capture failures (%d captured, %d bundles in %s)",
					failures, captured, len(infos), s.diag.Dir())})
		default:
			checks = append(checks, Check{Name: "diagnostics", Status: "ok",
				Detail: fmt.Sprintf("%d captured this lifetime, %d bundles in %s",
					captured, len(infos), s.diag.Dir())})
		}
		if n := len(infos); n > s.opts.Tail {
			infos = infos[:s.opts.Tail]
		}
		for _, b := range infos {
			bundles = append(bundles, newBundleSummary(b))
		}
	}

	status := "ok"
	for _, c := range checks {
		if c.Status == "fail" {
			status = "fail"
			break
		}
		if c.Status == "warn" {
			status = "warn"
		}
	}

	tailReqs := s.journal.Tail(s.opts.Tail)
	tail := make([]TailRun, 0, len(tailReqs))
	for _, r := range tailReqs {
		tail = append(tail, TailRun{Key: r.ContentKey(), Request: r})
	}

	return DoctorResponse{
		Status:  status,
		Checks:  checks,
		Store:   rep,
		Tail:    tail,
		Bundles: bundles,
		Metrics: s.metricsText(),
	}
}

// metricsText renders the service registry in Prometheus text form,
// refreshing the compile-cache gauges from the cache's live counters
// first so scrapes always see current values.
func (s *Server) metricsText() string {
	st := s.sess.CompileCacheStats()
	var b strings.Builder
	s.regMu.Lock()
	s.ccHits.Set(float64(st.Hits))
	s.ccMisses.Set(float64(st.Misses))
	s.ccRestores.Set(float64(st.Restores))
	s.ccBytes.Set(float64(st.Bytes))
	s.ccEntries.Set(float64(st.Entries))
	if s.diag != nil {
		captured, failures := s.diag.Stats()
		s.diagCaptured.Set(float64(captured))
		s.diagFailures.Set(float64(failures))
		s.wdMedianMS.Set(float64(s.diag.Watchdog().Median().Milliseconds()))
		s.spanCount.Set(float64(s.spanProbe.SpanCount()))
		s.spanContended.Set(float64(s.spanProbe.SpanContention()))
	}
	s.reg.WritePrometheus(&b)
	s.regMu.Unlock()
	return b.String()
}

// CaptureBundle assembles a manual diagnostics bundle for one resolved
// request: its canonical form, the stored result (from the session cache
// or the persistent store), the service's caches' state, the journal
// tail, and the session trace. It answers POST /v1/bundles.
func (s *Server) CaptureBundle(req harness.Request) (*diag.BundleInfo, error) {
	if s.diag == nil {
		return nil, errors.New("service: diagnostics capture is disabled (start sddsd with -capture-dir)")
	}
	c := diag.Capture{
		Trigger:      diag.TriggerManual,
		Key:          req.Key(),
		ContentKey:   req.ContentKey(),
		Request:      req,
		CompileCache: s.sess.CompileCacheStats(),
		JournalTail:  s.journal.Tail(s.opts.Tail),
	}
	res, rerr, ok := s.sess.Cached(req)
	if !ok {
		// Not resolved this lifetime: the persistent store may still hold it.
		if sreq, sres, found, err := s.journal.Lookup(req.ContentKey()); err == nil && found {
			req, res, ok = sreq, sres, true
		}
	}
	if ok {
		c.Err = rerr
		if res != nil {
			rec := harness.NewRunRecord(res)
			c.Result = rec
			c.Metrics = res.Metrics
			c.Faults = res.Faults
		}
	}
	if p := s.spanProbe; p != nil {
		c.Trace = func(w io.Writer) error {
			return probe.WriteChromeTrace(w, p, probe.ChromeOptions{})
		}
	}
	return s.diag.Capture(c)
}

// Serve runs the HTTP server on ln until ctx is cancelled, then shuts
// down gracefully: the SSE stream is ended (so drain isn't held open by
// long-lived subscribers), inflight run handlers get DrainTimeout to
// finish through the session's context plumbing, and the store is closed
// last so every drained run is durably journaled.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	s.hub.shutdown()
	drainCtx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(drainCtx)
	if cerr := s.closeStores(); err == nil {
		err = cerr
	}
	return err
}

// closeStores stops the sweep-lifetime goroutines and closes the result
// journal and the compile-artifact store.
func (s *Server) closeStores() error {
	s.lifeStop()
	err := s.journal.Close()
	if s.compile != nil {
		if cerr := s.compile.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Close ends the event stream and closes the stores. Serve does this
// itself; Close is for servers mounted via Handler.
func (s *Server) Close() error {
	s.hub.shutdown()
	return s.closeStores()
}
