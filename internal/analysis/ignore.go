package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//sddsvet:ignore simdet -- flush order fixed by sorted keys
//	//sddsvet:ignore hotalloc,simdet -- startup only, once per run
//
// The comma-separated analyzer list may also be "all". The "-- reason" tail
// is the convention (reviewers should see why the pattern is safe); the
// suppression works without it so a missing reason never masks a finding
// the author meant to silence.
//
// ignoreFilePrefix is the file-scoped variant: it suppresses the named
// analyzers everywhere in the file it appears in. Reserve it for files
// whose whole purpose violates a contract (wall-clock capture bundles,
// generated code); prefer line directives everywhere else.
const (
	ignorePrefix     = "//sddsvet:ignore"
	ignoreFilePrefix = "//sddsvet:ignore-file"
)

// Directive is one parsed (analyzer, site) pair from a //sddsvet:ignore or
// //sddsvet:ignore-file comment. A comment naming several analyzers
// produces one Directive per name, so staleness is reported per analyzer:
// in "hotalloc,simdet" the hotalloc half can be stale while the simdet
// half still works.
type Directive struct {
	// Name is one analyzer name from the directive, or "all".
	Name string
	// File and Line locate the directive comment itself.
	File string
	Line int
	Pos  token.Pos
	// FileLevel marks //sddsvet:ignore-file directives.
	FileLevel bool

	used bool
}

// Used reports whether the directive suppressed at least one diagnostic or
// summary-level effect during this run.
func (d *Directive) Used() bool { return d.used }

// IgnoreIndex records, per file and line, which analyzers are suppressed,
// and tracks which directives actually did any suppressing so the audit
// can report the stale ones.
type IgnoreIndex struct {
	fset *token.FileSet
	// byLine maps filename → line → directives covering that line.
	byLine map[string]map[int][]*Directive
	// byFile maps filename → file-level directives.
	byFile map[string][]*Directive
	// all is every directive in the package, in source order.
	all []*Directive
}

// NewIgnoreIndex scans every comment in the package for ignore directives.
// A line directive suppresses matching diagnostics on its own line (as a
// trailing comment) and on the following line (a comment above the flagged
// statement); a file directive suppresses in its whole file.
func NewIgnoreIndex(pkg *Package) *IgnoreIndex {
	idx := &IgnoreIndex{
		fset:   pkg.Fset,
		byLine: make(map[string]map[int][]*Directive),
		byFile: make(map[string][]*Directive),
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				fileLevel := false
				rest, ok := strings.CutPrefix(c.Text, ignoreFilePrefix)
				if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
					fileLevel = true
				} else {
					rest, ok = strings.CutPrefix(c.Text, ignorePrefix)
					if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
						continue
					}
				}
				names := strings.TrimSpace(rest)
				if i := strings.Index(names, "--"); i >= 0 {
					names = strings.TrimSpace(names[:i])
				}
				if names == "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, n := range strings.Split(names, ",") {
					n = strings.TrimSpace(n)
					if n == "" {
						continue
					}
					d := &Directive{
						Name: n, File: pos.Filename, Line: pos.Line,
						Pos: c.Pos(), FileLevel: fileLevel,
					}
					idx.all = append(idx.all, d)
					if fileLevel {
						idx.byFile[pos.Filename] = append(idx.byFile[pos.Filename], d)
						continue
					}
					lines := idx.byLine[pos.Filename]
					if lines == nil {
						lines = make(map[int][]*Directive)
						idx.byLine[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], d)
					lines[pos.Line+1] = append(lines[pos.Line+1], d)
				}
			}
		}
	}
	return idx
}

// Suppressed reports whether a diagnostic from the named analyzer at pos
// is covered by an ignore directive, marking every covering directive as
// used. Every match is marked (not just the first): two stacked
// directives for one diagnostic are both doing their job.
func (idx *IgnoreIndex) Suppressed(analyzer string, pos token.Pos) bool {
	p := idx.fset.Position(pos)
	hit := false
	for _, d := range idx.byLine[p.Filename][p.Line] {
		if d.Name == analyzer || d.Name == "all" {
			d.used = true
			hit = true
		}
	}
	for _, d := range idx.byFile[p.Filename] {
		if d.Name == analyzer || d.Name == "all" {
			d.used = true
			hit = true
		}
	}
	return hit
}

// SuppressedAny reports (and marks) suppression for any of the analyzer
// names. The summary engine uses it where one effect feeds several
// analyzers: a justified wall-clock site is justified for simdet and
// detflow alike.
func (idx *IgnoreIndex) SuppressedAny(analyzers []string, pos token.Pos) bool {
	hit := false
	for _, a := range analyzers {
		if idx.Suppressed(a, pos) {
			hit = true
		}
	}
	return hit
}

// Stale returns the directives that suppressed nothing this run, in
// source order. Only meaningful after the full analyzer suite has run
// over the package (and after any summary-driven analyzer has had the
// chance to consult the package's effects).
func (idx *IgnoreIndex) Stale() []*Directive {
	var out []*Directive
	for _, d := range idx.all {
		if !d.used {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Directives returns every directive in the package in source order
// (tests and tooling).
func (idx *IgnoreIndex) Directives() []*Directive { return idx.all }
