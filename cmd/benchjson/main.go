// Command benchjson converts `go test -bench` output on stdin into a JSON
// object mapping benchmark name to its measured values, e.g.
//
//	go test -bench . -benchmem ./internal/sim | benchjson > BENCH_sim.json
//
// Each benchmark line ("BenchmarkX-8  N  12.3 ns/op  0 B/op  ...") becomes
// an entry {"BenchmarkX": {"iterations": N, "ns/op": 12.3, ...}}; custom
// metrics reported via b.ReportMetric (virtual_J, virtual_s, ...) pass
// through under their unit name. Non-benchmark lines are ignored, so the
// full `go test` stream can be piped in unfiltered. cmd/benchcheck
// compares a later stream against the recorded file.
package main

import (
	"fmt"
	"os"

	"sdds/internal/benchfmt"
)

func main() {
	results, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	out, err := benchfmt.MarshalSorted(results)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if _, err := os.Stdout.Write(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
