// Package floatorder implements the sddsvet analyzer protecting the golden
// test's hex-exact float comparisons. Floating-point addition is not
// associative, so a reduction whose accumulation order is decided by Go's
// randomized map iteration or by goroutine interleaving produces results
// that drift in the last bits between runs — enough to break bit-identical
// virtual energy/time totals even when every individual term is identical.
package floatorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"sdds/internal/analysis"
)

// GoldenPackages selects the packages whose floats reach golden-compared
// output (the cluster results, energy accounting, metrics reports, compiler
// statistics). Tests may override it.
var GoldenPackages = regexp.MustCompile(`^sdds/internal/(cluster|metrics|disk|power|core|compiler|harness)$`)

// Analyzer flags float reductions whose order depends on map iteration or
// goroutine scheduling.
var Analyzer = &analysis.Analyzer{
	Name: "floatorder",
	Doc: "flags float accumulations ordered by map iteration or goroutine " +
		"interleaving in packages that produce golden-compared floats",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !GoldenPackages.MatchString(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			case *ast.GoStmt:
				checkGoStmt(pass, n)
			}
			return true
		})
	}
	return nil
}

// compoundOps are the accumulation operators whose float results depend on
// evaluation order.
var compoundOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true, token.QUO_ASSIGN: true,
}

// checkMapRange flags float compound assignments to loop-external state
// inside a map iteration, except per-key map slots indexed by the loop key
// (each key visited exactly once — order-free).
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	t, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := t.Type.Underlying().(*types.Map); !isMap {
		return
	}
	keyIdent, _ := rng.Key.(*ast.Ident)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || !compoundOps[as.Tok] {
			return true
		}
		for _, lhs := range as.Lhs {
			if !floatAccumulatesOutside(pass, lhs, rng.Pos(), rng.End()) {
				continue
			}
			if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && keyIdent != nil {
				if bt, ok := pass.TypesInfo.Types[idx.X]; ok {
					if _, isMap := bt.Type.Underlying().(*types.Map); isMap {
						ko := analysis.ObjOf(pass.TypesInfo, keyIdent)
						if id, ok := ast.Unparen(idx.Index).(*ast.Ident); ok && ko != nil &&
							analysis.ObjOf(pass.TypesInfo, id) == ko {
							continue
						}
					}
				}
			}
			pass.Reportf(as.Pos(), "float accumulation ordered by map iteration: rounding differs between runs; reduce over sorted keys or justify with //sddsvet:ignore floatorder")
		}
		return true
	})
}

// checkGoStmt flags float accumulation into shared state from inside a
// goroutine: the reduction order follows the scheduler, and the unsynchronized
// update is a data race besides.
func checkGoStmt(pass *analysis.Pass, g *ast.GoStmt) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || !compoundOps[as.Tok] {
			return true
		}
		for _, lhs := range as.Lhs {
			if floatAccumulatesOutside(pass, lhs, lit.Pos(), lit.End()) {
				pass.Reportf(as.Pos(), "float accumulation into shared state from a goroutine: reduction order follows the scheduler; collect per-goroutine partials and reduce deterministically")
			}
		}
		return true
	})
}

// floatAccumulatesOutside reports whether lhs is float-typed and rooted in
// a variable declared outside [lo, hi].
func floatAccumulatesOutside(pass *analysis.Pass, lhs ast.Expr, lo, hi token.Pos) bool {
	t, ok := pass.TypesInfo.Types[lhs]
	if !ok {
		return false
	}
	b, ok := t.Type.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsFloat == 0 {
		return false
	}
	root := analysis.RootIdent(lhs)
	return root != nil && analysis.DeclaredOutside(pass.TypesInfo, root, lo, hi)
}
