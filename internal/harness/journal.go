package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"sdds/internal/cluster"
	"sdds/internal/metrics"
	"sdds/internal/power"
	"sdds/internal/probe"
	"sdds/internal/sim"
)

// journalEntry is one completed cluster run in the crash-safe result
// journal: the full cache key plus a portable mirror of the result. One
// JSON object per line, append-only.
type journalEntry struct {
	App        string
	Policy     string
	Scheduling bool
	Scale      float64
	Seed       int64
	Variant    string `json:",omitempty"`
	Faults     string `json:",omitempty"`
	Result     journalResult
}

// journalResult mirrors cluster.Result with every field exported and
// JSON-serializable. The compiler output is deliberately not journaled
// (it is large and no experiment reads it from session-cached runs); a
// restored result therefore carries Compile == nil.
type journalResult struct {
	ExecTimeUS         int64
	EnergyJ            float64
	NodeEnergyJ        []float64
	Idle               *metrics.HistogramSnapshot
	BufferHits         int64
	BufferMisses       int64
	PrefetchIssued     int64
	StorageCacheHits   int64
	StorageCacheMisses int64
	AgentMoved         int64
	AgentIssued        int64
	AgentBlocked       int64
	AgentDeferred      int64
	DiskRequests       int64
	SpinUps            int64
	RPMShifts          int64
	Metrics            []probe.Metric      `json:",omitempty"`
	Faults             *cluster.FaultStats `json:",omitempty"`
}

// toEntry converts a completed run to its journal form.
func toEntry(key runKey, res *cluster.Result) journalEntry {
	jr := journalResult{
		ExecTimeUS:         int64(res.ExecTime),
		EnergyJ:            res.EnergyJ,
		NodeEnergyJ:        res.NodeEnergyJ,
		BufferHits:         res.BufferHits,
		BufferMisses:       res.BufferMisses,
		PrefetchIssued:     res.PrefetchIssued,
		StorageCacheHits:   res.StorageCacheHits,
		StorageCacheMisses: res.StorageCacheMisses,
		AgentMoved:         res.AgentMoved,
		AgentIssued:        res.AgentIssued,
		AgentBlocked:       res.AgentBlocked,
		AgentDeferred:      res.AgentDeferred,
		DiskRequests:       res.DiskRequests,
		SpinUps:            res.SpinUps,
		RPMShifts:          res.RPMShifts,
		Metrics:            res.Metrics,
		Faults:             res.Faults,
	}
	if res.Idle != nil {
		jr.Idle = res.Idle.Snapshot()
	}
	return journalEntry{
		App:        key.app,
		Policy:     key.kind.String(),
		Scheduling: key.scheduling,
		Scale:      key.scale,
		Seed:       key.seed,
		Variant:    key.variant,
		Faults:     key.faults,
		Result:     jr,
	}
}

// restore converts a journal entry back into a cache key and result.
func (e journalEntry) restore() (runKey, *cluster.Result, error) {
	kind, err := power.ParseKind(e.Policy)
	if err != nil {
		return runKey{}, nil, err
	}
	key := runKey{
		app:        e.App,
		kind:       kind,
		scheduling: e.Scheduling,
		scale:      e.Scale,
		seed:       e.Seed,
		variant:    e.Variant,
		faults:     e.Faults,
	}
	res := &cluster.Result{
		Program:            e.App,
		Policy:             kind,
		Scheduling:         e.Scheduling,
		ExecTime:           sim.Duration(e.Result.ExecTimeUS),
		EnergyJ:            e.Result.EnergyJ,
		NodeEnergyJ:        e.Result.NodeEnergyJ,
		BufferHits:         e.Result.BufferHits,
		BufferMisses:       e.Result.BufferMisses,
		PrefetchIssued:     e.Result.PrefetchIssued,
		StorageCacheHits:   e.Result.StorageCacheHits,
		StorageCacheMisses: e.Result.StorageCacheMisses,
		AgentMoved:         e.Result.AgentMoved,
		AgentIssued:        e.Result.AgentIssued,
		AgentBlocked:       e.Result.AgentBlocked,
		AgentDeferred:      e.Result.AgentDeferred,
		DiskRequests:       e.Result.DiskRequests,
		SpinUps:            e.Result.SpinUps,
		RPMShifts:          e.Result.RPMShifts,
		Metrics:            e.Result.Metrics,
		Faults:             e.Result.Faults,
	}
	if e.Result.Idle != nil {
		h, err := metrics.FromSnapshot(e.Result.Idle)
		if err != nil {
			return runKey{}, nil, err
		}
		res.Idle = h
	}
	return key, res, nil
}

// Journal is a crash-safe append-only record of completed cluster runs:
// one JSON line per run, fsynced after each append so a killed sweep
// loses at most the line being written. Opened in resume mode it reloads
// every intact line — a torn trailing line (the kill point) is dropped —
// and NewSession preloads the entries into the run cache, so a re-run
// completes only the missing configurations.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	entries []journalEntry
	appends int64
}

// OpenJournal opens (or creates) the journal at path. With resume=false
// any existing journal is truncated; with resume=true its intact entries
// are loaded for NewSession to preload, and appends continue after them.
func OpenJournal(path string, resume bool) (*Journal, error) {
	j := &Journal{path: path}
	if !resume {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, fmt.Errorf("harness: journal: %w", err)
		}
		j.f = f
		return j, nil
	}
	entries, validBytes, err := loadJournal(path)
	if err != nil {
		return nil, err
	}
	j.entries = entries
	// Drop any torn trailing line before appending after it: the journal
	// must stay one-JSON-object-per-line.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: journal: %w", err)
	}
	if err := f.Truncate(validBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("harness: journal: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("harness: journal: %w", err)
	}
	j.f = f
	return j, nil
}

// loadJournal parses the intact prefix of a journal file: every complete,
// well-formed line. It returns the entries and the byte length of the
// valid prefix. A missing file is an empty journal.
func loadJournal(path string) ([]journalEntry, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("harness: journal: %w", err)
	}
	defer f.Close()
	var (
		entries []journalEntry
		valid   int64
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			break // torn or corrupt line: keep the intact prefix only
		}
		if _, _, err := e.restore(); err != nil {
			break
		}
		entries = append(entries, e)
		valid += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("harness: journal: %w", err)
	}
	return entries, valid, nil
}

// Len reports how many intact entries resume loaded.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Appends reports how many entries this process has appended.
func (j *Journal) Appends() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appends
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// append writes one completed run and fsyncs, making it durable before
// the session reports the run finished.
func (j *Journal) append(e journalEntry) error {
	buf, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("harness: journal: %w", err)
	}
	buf = append(buf, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("harness: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("harness: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("harness: journal: %w", err)
	}
	j.appends++
	return nil
}

// Close flushes and closes the journal file. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// preload seeds a session's memo with the journal's loaded entries,
// returning how many were installed. Entries that fail to restore are
// skipped (they will simply be re-simulated).
func (j *Journal) preload(memo map[runKey]*memoEntry) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, e := range j.entries {
		key, res, err := e.restore()
		if err != nil {
			continue
		}
		if _, exists := memo[key]; exists {
			continue
		}
		done := make(chan struct{})
		close(done)
		memo[key] = &memoEntry{done: done, res: res}
		n++
	}
	return n
}
