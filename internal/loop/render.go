package loop

import (
	"fmt"
	"strings"
)

// Render prints the program as MPI-IO-style pseudo-code in the shape of the
// paper's Fig. 5 — used by sddsim -describe and the documentation.
func (p *Program) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	for _, f := range p.Files {
		fmt.Fprintf(&b, "MPI_File_open(..., %q, &fh_%s, ...);  // %s\n",
			f.Name, f.Name, byteSize(f.Size))
	}
	for _, n := range p.Nests {
		par := ""
		if n.Parallel {
			par = "  // block-distributed over processes"
		}
		fmt.Fprintf(&b, "for i = 1, %d, 1 {  // %s%s\n", n.Trips, n.Name, par)
		if n.IterCost > 0 {
			fmt.Fprintf(&b, "    compute(%.0f ms);\n", n.IterCost.Milliseconds())
		}
		for _, s := range n.Body {
			guard := ""
			if s.Every > 1 {
				guard = fmt.Sprintf("if (i %% %d == 0) ", s.Every)
			}
			switch s.Kind {
			case StmtRead:
				fmt.Fprintf(&b, "    %sMPI_File_read(fh_%s, %s);%s\n",
					guard, p.fileName(s.File), regionString(s), nonAffineNote(s))
			case StmtWrite:
				fmt.Fprintf(&b, "    %sMPI_File_write(fh_%s, %s);%s\n",
					guard, p.fileName(s.File), regionString(s), nonAffineNote(s))
			case StmtCompute:
				fmt.Fprintf(&b, "    compute(%.0f ms);\n", s.Cost.Milliseconds())
			}
		}
		b.WriteString("}\n")
	}
	for _, f := range p.Files {
		fmt.Fprintf(&b, "MPI_File_close(&fh_%s);\n", f.Name)
	}
	return b.String()
}

func (p *Program) fileName(id int) string {
	if f, ok := p.FileByID(id); ok {
		return f.Name
	}
	return fmt.Sprintf("file%d", id)
}

func regionString(s Stmt) string {
	if s.Custom != nil {
		return "custom(i, p)"
	}
	r := s.Region
	var parts []string
	if r.Base != 0 {
		parts = append(parts, byteSize(r.Base))
	}
	if r.IterCoef != 0 {
		parts = append(parts, fmt.Sprintf("%s*i", byteSize(r.IterCoef)))
	}
	if r.ProcCoef != 0 {
		parts = append(parts, fmt.Sprintf("%s*p", byteSize(r.ProcCoef)))
	}
	off := strings.Join(parts, " + ")
	if off == "" {
		off = "0"
	}
	return fmt.Sprintf("off=%s, len=%s", off, byteSize(r.Len))
}

func nonAffineNote(s Stmt) string {
	if s.Custom != nil {
		return "  // non-affine: profiling tool required"
	}
	return ""
}

// byteSize renders a byte count compactly (KB/MB/GB).
func byteSize(v int64) string {
	switch {
	case v >= 1<<30 && v%(1<<30) == 0:
		return fmt.Sprintf("%dGB", v>>30)
	case v >= 1<<20 && v%(1<<20) == 0:
		return fmt.Sprintf("%dMB", v>>20)
	case v >= 1<<10 && v%(1<<10) == 0:
		return fmt.Sprintf("%dKB", v>>10)
	default:
		return fmt.Sprintf("%dB", v)
	}
}
