// Package workloads defines the six parallel I/O-intensive applications of
// Table III as loop-nest programs. The generators reproduce each
// application's published access-pattern *shape* — phase structure, request
// sizes, compute/I/O interleaving, producer-consumer relationships — scaled
// down so a simulated run finishes in seconds of wall time. The shape is
// what the evaluation depends on: hf and madbench2 are dominated by idle
// periods under 50 ms (Fig. 12(a)), wupwise is the longest-running program,
// madbench2 the shortest, and apsi/madbench2/hf re-read data produced
// earlier in the run (the intra-run slacks the framework exploits). I/O
// calls are sparse in the iteration space (an access every few iterations),
// which is what gives the scheduler room to move them — in the dense limit
// every slot of every process is taken and no reordering is feasible.
package workloads

import (
	"fmt"
	"sort"
	"strings"

	"sdds/internal/loop"
	"sdds/internal/sim"
	"sdds/internal/strutil"
)

// Spec describes one application.
type Spec struct {
	// Name is the identifier used throughout the paper ("hf", "sar", ...).
	Name string
	// Description is the Table III description.
	Description string
	// Build constructs the program; scale multiplies trip counts (1.0 =
	// the default evaluation size; tests use smaller scales).
	Build func(scale float64) *loop.Program
}

// All returns the six applications in Table III order.
func All() []Spec {
	return []Spec{
		{Name: "hf", Description: "Hartree-Fock Method", Build: HF},
		{Name: "sar", Description: "Synthetic Aperture Radar Kernel", Build: SAR},
		{Name: "astro", Description: "Analysis of Astronomical Data", Build: Astro},
		{Name: "apsi", Description: "Pollutant Distribution Modeling", Build: APSI},
		{Name: "madbench2", Description: "Cosmic Microwave Background Radiation Calculation", Build: MadBench2},
		{Name: "wupwise", Description: "Physics/Quantum Chromo-dynamics", Build: Wupwise},
	}
}

// Names returns the application names in Table III order.
func Names() []string {
	specs := All()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// ByName returns the spec for an application name.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	names := Names()
	sort.Strings(names)
	if sug := strutil.Suggest(name, names); len(sug) > 0 {
		return Spec{}, fmt.Errorf("workloads: unknown application %q (did you mean %s?)",
			name, strings.Join(sug, " or "))
	}
	return Spec{}, fmt.Errorf("workloads: unknown application %q (have %v)", name, names)
}

// trips scales a trip count, keeping it a positive multiple of 64 so block
// decomposition over the default 32 processes stays even and Every strides
// up to 8 stay aligned across processes.
func trips(base int, scale float64) int {
	t := int(float64(base) * scale)
	t -= t % 64
	if t < 64 {
		t = 64
	}
	return t
}

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
	gb = int64(1) << 30
)

func ms(v float64) sim.Duration { return sim.MilliToTime(v) }

func sec(v float64) sim.Duration { return sim.Duration(v * float64(sim.Second)) }

// HF builds the Hartree-Fock method: self-consistent-field sweeps over a
// large two-electron integral file with short compute between reads (its
// idle periods are almost all under 50 ms), punctuated by two long
// matrix-diagonalization phases whose sparse density reads repeat at ~90 s
// intervals. The Fock matrix written in the first sweep is re-read in the
// second (intra-run slack).
func HF(scale float64) *loop.Program {
	scf := trips(192000, scale)
	diag := trips(64, scale)
	return &loop.Program{
		Name: "hf",
		Files: []loop.File{
			{ID: 0, Name: "integrals", Size: 4 * gb},
			{ID: 1, Name: "density", Size: 512 * mb},
			{ID: 2, Name: "fock", Size: 512 * mb},
		},
		Nests: []loop.Nest{
			{Name: "load-density", Trips: trips(2048, scale), Parallel: true, IterCost: ms(60),
				Body: []loop.Stmt{
					{Kind: loop.StmtRead, File: 1, Region: loop.Affine{IterCoef: 128 * kb, Len: 128 * kb}, Every: 2},
				}},
			{Name: "scf-sweep-1", Trips: scf, Parallel: true, IterCost: ms(75),
				Body: []loop.Stmt{
					{Kind: loop.StmtRead, File: 0, Region: loop.Affine{IterCoef: 64 * kb, Len: 256 * kb}, Every: 4},
					{Kind: loop.StmtWrite, File: 2, Region: loop.Affine{IterCoef: 4 * kb, Len: 256 * kb}, Every: 64},
				}},
			{Name: "diagonalize-1", Trips: diag, Parallel: true, IterCost: sec(90),
				Body: []loop.Stmt{
					{Kind: loop.StmtRead, File: 1, Region: loop.Affine{IterCoef: 64 * kb, Len: 64 * kb}, Every: 2},
				}},
			{Name: "scf-sweep-2", Trips: scf, Parallel: true, IterCost: ms(75),
				Body: []loop.Stmt{
					{Kind: loop.StmtRead, File: 0, Region: loop.Affine{Base: 32 * kb, IterCoef: 64 * kb, Len: 256 * kb}, Every: 4},
					{Kind: loop.StmtRead, File: 2, Region: loop.Affine{IterCoef: 4 * kb, Len: 256 * kb}, Every: 64},
				}},
			{Name: "diagonalize-2", Trips: diag, Parallel: true, IterCost: sec(90),
				Body: []loop.Stmt{
					{Kind: loop.StmtRead, File: 1, Region: loop.Affine{Base: 256 * mb, IterCoef: 64 * kb, Len: 64 * kb}, Every: 2},
				}},
		},
	}
}

// SAR builds the synthetic aperture radar kernel: streaming reads of raw
// pulse data with FFT compute, an autofocus phase with sparse ~85 s-spaced
// image reads, a backprojection pass re-reading the image it wrote (the
// mid-length idle periods multi-speed disks exploit), and a finalize phase.
// The smallest data set in the study.
func SAR(scale float64) *loop.Program {
	return &loop.Program{
		Name: "sar",
		Files: []loop.File{
			{ID: 0, Name: "pulses", Size: 3 * gb},
			{ID: 1, Name: "image", Size: 3 * gb / 2},
		},
		Nests: []loop.Nest{
			{Name: "form-image", Trips: trips(128000, scale), Parallel: true, IterCost: ms(90),
				Body: []loop.Stmt{
					{Kind: loop.StmtRead, File: 0, Region: loop.Affine{IterCoef: 128 * kb, Len: 512 * kb}, Every: 4},
					{Kind: loop.StmtWrite, File: 1, Region: loop.Affine{IterCoef: 96 * kb, Len: 512 * kb}, Every: 64},
				}},
			{Name: "autofocus", Trips: trips(64, scale), Parallel: true, IterCost: sec(85),
				Body: []loop.Stmt{
					{Kind: loop.StmtRead, File: 1, Region: loop.Affine{IterCoef: 128 * kb, Len: 128 * kb}, Every: 4},
				}},
			{Name: "backproject", Trips: trips(1024, scale), Parallel: true, IterCost: ms(1200),
				Body: []loop.Stmt{
					{Kind: loop.StmtRead, File: 1, Region: loop.Affine{IterCoef: 96 * kb, Len: 256 * kb}, Every: 2},
				}},
			{Name: "finalize", Trips: trips(64, scale), Parallel: true, IterCost: sec(2),
				Body: []loop.Stmt{
					{Kind: loop.StmtWrite, File: 1, Region: loop.Affine{IterCoef: 256 * kb, Len: 256 * kb}, Every: 2},
				}},
		},
	}
}

// Astro builds the astronomical data analysis: a strided catalog scan, a
// long cross-correlation phase with sparse spectra reads, a strided pass
// over the spectra and a reduction that re-reads the correlation results
// written in the first phase. Its moderate-length idle periods are the
// multi-speed policies' domain.
func Astro(scale float64) *loop.Program {
	return &loop.Program{
		Name: "astro",
		Files: []loop.File{
			{ID: 0, Name: "catalog", Size: 4 * gb},
			{ID: 1, Name: "spectra", Size: 2 * gb},
			{ID: 2, Name: "corr", Size: 1 * gb},
		},
		Nests: []loop.Nest{
			{Name: "scan-catalog", Trips: trips(192000, scale), Parallel: true, IterCost: ms(75),
				Body: []loop.Stmt{
					{Kind: loop.StmtRead, File: 0, Region: loop.Affine{IterCoef: 128 * kb, Len: 256 * kb}, Every: 4},
					{Kind: loop.StmtWrite, File: 2, Region: loop.Affine{IterCoef: 16 * kb, Len: 128 * kb}, Every: 64},
				}},
			{Name: "cross-correlate", Trips: trips(64, scale), Parallel: true, IterCost: sec(85),
				Body: []loop.Stmt{
					{Kind: loop.StmtRead, File: 1, Region: loop.Affine{IterCoef: 64 * kb, Len: 64 * kb}, Every: 2},
				}},
			{Name: "scan-spectra", Trips: trips(1024, scale), Parallel: true, IterCost: ms(1100),
				Body: []loop.Stmt{
					// Strided: one 128 KB block out of every 384 KB.
					{Kind: loop.StmtRead, File: 1, Region: loop.Affine{IterCoef: 384 * kb, Len: 128 * kb}, Every: 2},
				}},
			{Name: "reduce", Trips: trips(512, scale), Parallel: true, IterCost: ms(2000),
				Body: []loop.Stmt{
					{Kind: loop.StmtRead, File: 2, Region: loop.Affine{IterCoef: 4 * kb, Len: 128 * kb}, Every: 2},
				}},
		},
	}
}

// APSI builds the pollutant-distribution model (out-of-core SPEC apsi): a
// long initialization with terrain reads at regular ~80 s intervals, then a
// time-step loop in which each step reads the concentration planes the
// previous step wrote — the producer-consumer slacks of §IV-A.
func APSI(scale float64) *loop.Program {
	plane := trips(96000, scale)
	p := &loop.Program{
		Name: "apsi",
		Files: []loop.File{
			{ID: 0, Name: "terrain", Size: 1 * gb},
			{ID: 1, Name: "concentration", Size: 3 * gb},
		},
	}
	p.Nests = append(p.Nests, loop.Nest{
		Name: "init", Trips: trips(64, scale), Parallel: true, IterCost: sec(80),
		Body: []loop.Stmt{
			{Kind: loop.StmtRead, File: 0, Region: loop.Affine{IterCoef: 256 * kb, Len: 256 * kb}, Every: 2},
		},
	})
	for t := 0; t < 3; t++ {
		p.Nests = append(p.Nests, loop.Nest{
			Name: fmt.Sprintf("step-%d", t), Trips: plane, Parallel: true, IterCost: ms(60),
			Body: []loop.Stmt{
				{Kind: loop.StmtRead, File: 1, Region: loop.Affine{IterCoef: 64 * kb, Len: 256 * kb}, Every: 4},
				{Kind: loop.StmtCompute, Cost: ms(20)},
				{Kind: loop.StmtWrite, File: 1, Region: loop.Affine{IterCoef: 64 * kb, Len: 256 * kb}, Every: 8},
			},
		})
	}
	return p
}

// MadBench2 builds the CMB analysis benchmark: back-to-back matrix phases
// that write large intermediates and read them in the next phase with very
// little compute in between — the shortest run and, with hf, the one whose
// idle periods are almost all under 50 ms — plus one short solver phase
// whose idleness sits below the spin-down break-even (spin-down gains
// little here, exactly as in Fig. 12(c)).
func MadBench2(scale float64) *loop.Program {
	phase := trips(96000, scale)
	return &loop.Program{
		Name: "madbench2",
		Files: []loop.File{
			{ID: 0, Name: "S", Size: 2 * gb},
			{ID: 1, Name: "invD", Size: 2 * gb},
			{ID: 2, Name: "W", Size: 1 * gb},
		},
		Nests: []loop.Nest{
			{Name: "dSdC", Trips: phase, Parallel: true, IterCost: ms(50),
				Body: []loop.Stmt{
					{Kind: loop.StmtWrite, File: 0, Region: loop.Affine{IterCoef: 128 * kb, Len: 256 * kb}, Every: 4},
				}},
			{Name: "invD", Trips: phase, Parallel: true, IterCost: ms(50),
				Body: []loop.Stmt{
					{Kind: loop.StmtRead, File: 0, Region: loop.Affine{IterCoef: 128 * kb, Len: 256 * kb}, Every: 4},
					{Kind: loop.StmtWrite, File: 1, Region: loop.Affine{IterCoef: 128 * kb, Len: 256 * kb}, Every: 4},
				}},
			{Name: "W", Trips: phase, Parallel: true, IterCost: ms(50),
				Body: []loop.Stmt{
					{Kind: loop.StmtRead, File: 1, Region: loop.Affine{IterCoef: 128 * kb, Len: 256 * kb}, Every: 4},
					{Kind: loop.StmtRead, File: 0, Region: loop.Affine{IterCoef: 128 * kb, Len: 256 * kb}, Every: 8},
					{Kind: loop.StmtWrite, File: 2, Region: loop.Affine{IterCoef: 64 * kb, Len: 128 * kb}, Every: 8},
				}},
			{Name: "solve", Trips: trips(64, scale), Parallel: true, IterCost: sec(45)},
		},
	}
}

// Wupwise builds the out-of-core QCD code: the largest data set and longest
// run, with two lattice sweeps (read blocks, long BiCGStab compute, write
// back) each followed by a relaxation phase whose gauge reads repeat at
// ~95 s intervals.
func Wupwise(scale float64) *loop.Program {
	sweep := trips(345600, scale)
	relax := trips(64, scale)
	p := &loop.Program{
		Name: "wupwise",
		Files: []loop.File{
			{ID: 0, Name: "lattice", Size: 6 * gb},
			{ID: 1, Name: "gauge", Size: 2 * gb},
		},
	}
	for s := 0; s < 2; s++ {
		p.Nests = append(p.Nests, loop.Nest{
			Name: fmt.Sprintf("sweep-%d", s), Parallel: true, Trips: sweep, IterCost: ms(75),
			Body: []loop.Stmt{
				{Kind: loop.StmtRead, File: 0, Region: loop.Affine{IterCoef: 128 * kb, Len: 256 * kb}, Every: 4},
				{Kind: loop.StmtRead, File: 1, Region: loop.Affine{IterCoef: 64 * kb, Len: 128 * kb}, Every: 8},
				{Kind: loop.StmtWrite, File: 0, Region: loop.Affine{IterCoef: 128 * kb, Len: 256 * kb}, Every: 32},
			},
		})
		p.Nests = append(p.Nests, loop.Nest{
			Name: fmt.Sprintf("relax-%d", s), Parallel: true, Trips: relax, IterCost: sec(95),
			Body: []loop.Stmt{
				{Kind: loop.StmtRead, File: 1, Region: loop.Affine{IterCoef: 32 * kb, Len: 64 * kb}, Every: 2},
			},
		})
	}
	return p
}
