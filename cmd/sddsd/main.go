// Command sddsd is the resident experiment service: a long-lived HTTP
// daemon that accepts canonical run requests (the same harness.Request
// the CLIs build), simulates each distinct configuration exactly once,
// and persists every result in a content-addressed store that survives
// restarts — re-submitting an already-answered sweep simulates nothing.
//
//	sddsd -store results.jsonl -addr 127.0.0.1:8377
//
// Endpoints (all under /v1): POST /runs, POST /sweeps, GET /runs/{key},
// GET /events (SSE progress), GET /status, GET /doctor, GET /metrics
// (Prometheus text), and the sharded-sweep family POST /shards/sweeps,
// /shards/lease, /shards/renew, /shards/complete, GET /shards/status —
// sddsd acts as the lease-based coordinator for sddsworker processes.
// SIGINT/SIGTERM drain inflight runs before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sdds/internal/cliutil"
	"sdds/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sddsd:", err)
		os.Exit(1)
	}
}

func runCtx(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sddsd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8377", "listen address (host:port; port 0 picks a free port)")
		storeArg = fs.String("store", "", "persistent content-addressed result store (JSONL; required)")
		workers  = fs.Int("workers", 0, "concurrent cluster simulations (0 = GOMAXPROCS)")
		timeout  = fs.Duration("timeout", 0, "per-run wall-clock deadline (0 = none)")
		drain    = fs.Duration("drain", 30*time.Second, "graceful-shutdown budget for inflight runs")
		tail     = fs.Int("tail", 8, "recent store entries reported by /v1/doctor")
		addrFile = fs.String("addr-file", "", "write the resolved listen address to this file (for scripts using port 0)")
		artifact = fs.String("artifacts", "", "persistent compile-artifact store (JSONL; default <store>.artifacts, \"off\" disables)")
		leaseTTL = fs.Duration("lease-ttl", 15*time.Second, "shard lease lifetime; a worker silent this long forfeits its shard")
		shardSz  = fs.Int("shard-size", 4, "default requests per shard for sharded sweeps")
		retries  = fs.Int("shard-retries", 5, "lease grants per shard before it is poisoned")
		grace    = fs.Duration("local-grace", 3*time.Second, "wait this long for a worker before running a sharded sweep locally (negative disables the fallback)")
	)
	var df cliutil.DiagFlags
	df.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeArg == "" {
		return fmt.Errorf("-store is required (the persistent result store path)")
	}
	log, closeLog, err := df.NewLogger()
	if err != nil {
		return err
	}
	defer closeLog()
	// The flag spells "<=0 disarms"; the service spells "0 means default".
	// Translate so the flag semantics win.
	watchdog := df.Watchdog
	if watchdog <= 0 {
		watchdog = -1
	}
	srv, err := service.NewServer(service.Options{
		StorePath:        *storeArg,
		Workers:          *workers,
		RunTimeout:       *timeout,
		DrainTimeout:     *drain,
		Tail:             *tail,
		ArtifactPath:     *artifact,
		CaptureDir:       df.CaptureDir,
		SlowMultiplier:   watchdog,
		Log:              log,
		LeaseTTL:         *leaseTTL,
		ShardSize:        *shardSz,
		MaxShardAttempts: *retries,
		LocalGrace:       *grace,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return err
	}
	resolved := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(resolved), 0o644); err != nil {
			ln.Close()
			srv.Close()
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "sddsd: listening on http://%s (store %s)\n", resolved, *storeArg)
	return srv.Serve(ctx, ln)
}
