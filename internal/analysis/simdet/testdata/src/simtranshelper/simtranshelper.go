// Package simtranshelper is the helper side of the cross-package transitive
// fixture: a host-side utility that reads the wall clock. Harmless on its
// own — the violation is simulation code calling into it (see simtrans).
package simtranshelper

import "time"

// Wallclock returns the host time in nanoseconds.
func Wallclock() int64 { return time.Now().UnixNano() }

// Pure is effect-free: calls to it from simulation code must not be
// flagged.
func Pure(n int) int { return n + 1 }
