// Package store implements the persistent content-addressed result store
// behind the harness journal and the sddsd service: an append-only JSONL
// file mapping canonical content keys to JSON values, fsynced per append
// so a killed process loses at most the line being written. Opening an
// existing store loads its intact prefix and truncates a torn trailing
// line, so results survive restarts and re-submitting an already-stored
// key is a pure lookup.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"sync"
)

// line is the on-disk record: one JSON object per line.
type line struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// Store is a crash-safe key→JSON map backed by one append-only file.
// Methods are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	values  map[string]json.RawMessage
	order   []string // keys in append order, for Tail/Each
	appends int64
}

// Open opens (or creates) the store at path. With truncate=true any
// existing content is discarded; otherwise the intact prefix is loaded
// and a torn trailing line (a crash's kill point) is dropped before
// appends continue after it. A path naming a directory is rejected.
func Open(path string, truncate bool) (*Store, error) {
	return OpenWith(path, truncate, nil)
}

// OpenWith is Open with structured logging: when log is non-nil, resume
// recovery (entries loaded, torn tail dropped) is reported on it — the
// torn-tail truncation is the one silent data repair in the whole
// pipeline, and a crashed sweep's operator should see it happen.
func OpenWith(path string, truncate bool, log *slog.Logger) (*Store, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return nil, fmt.Errorf("store: path %s is a directory, want a file", path)
	}
	s := &Store{path: path, values: make(map[string]json.RawMessage)}
	if truncate {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		s.f = f
		return s, nil
	}
	lines, validBytes, err := loadLines(path)
	if err != nil {
		return nil, err
	}
	if log != nil {
		if fi, err := os.Stat(path); err == nil && fi.Size() > validBytes {
			log.Warn("store dropping torn tail", "path", path,
				"torn_bytes", fi.Size()-validBytes, "valid_bytes", validBytes)
		}
		if len(lines) > 0 {
			log.Info("store resumed", "path", path, "entries", len(lines), "bytes", validBytes)
		}
	}
	for _, l := range lines {
		if _, dup := s.values[l.Key]; !dup {
			s.order = append(s.order, l.Key)
		}
		s.values[l.Key] = l.Value
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// The store must stay one-JSON-object-per-line: cut the torn tail
	// before appending after it.
	if err := f.Truncate(validBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s.f = f
	return s, nil
}

// loadLines parses the intact prefix of a store file: every complete,
// well-formed line. It returns the records and the byte length of the
// valid prefix. A missing file is an empty store.
func loadLines(path string) ([]line, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	var (
		lines []line
		valid int64
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		raw := sc.Bytes()
		var l line
		if err := json.Unmarshal(raw, &l); err != nil || l.Key == "" {
			break // torn or corrupt line: keep the intact prefix only
		}
		lines = append(lines, l)
		valid += int64(len(raw)) + 1
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	return lines, valid, nil
}

// Put stores value under key, fsyncing before it returns. Re-putting a
// key with identical bytes is a no-op (the dedup case); a different value
// under an existing key is an error — content-addressed entries are
// immutable, so a mismatch means the key derivation is broken.
func (s *Store) Put(key string, value any) error {
	_, err := s.Add(key, value)
	return err
}

// Add is Put reporting whether the key was newly written: false means an
// identical value was already stored (the dedup no-op). Shard merges and
// double-completion accounting key off the distinction.
func (s *Store) Add(key string, value any) (bool, error) {
	buf, err := json.Marshal(value)
	if err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.values[key]; ok {
		if bytes.Equal(prev, buf) {
			return false, nil
		}
		return false, fmt.Errorf("store: key %s already holds a different value", key)
	}
	if s.f == nil {
		return false, fmt.Errorf("store: %s is closed", s.path)
	}
	rec, err := json.Marshal(line{Key: key, Value: buf})
	if err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	rec = append(rec, '\n')
	if _, err := s.f.Write(rec); err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	s.values[key] = buf
	s.order = append(s.order, key)
	s.appends++
	return true, nil
}

// Get unmarshals the value stored under key into out, reporting whether
// the key exists. A nil out checks existence only.
func (s *Store) Get(key string, out any) (bool, error) {
	s.mu.Lock()
	raw, ok := s.values[key]
	s.mu.Unlock()
	if !ok {
		return false, nil
	}
	if out == nil {
		return true, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return true, fmt.Errorf("store: key %s: %w", key, err)
	}
	return true, nil
}

// Len reports how many distinct keys the store holds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.values)
}

// Appends reports how many entries this process has appended.
func (s *Store) Appends() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appends
}

// Keys returns every stored key, sorted.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.values))
	for k := range s.values {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Tail returns the last n keys in append order (all of them when n
// exceeds the store size).
func (s *Store) Tail(n int) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > len(s.order) {
		n = len(s.order)
	}
	if n <= 0 {
		return nil
	}
	out := make([]string, n)
	copy(out, s.order[len(s.order)-n:])
	return out
}

// Each calls fn for every entry in append order with the raw stored
// bytes, stopping at the first error.
func (s *Store) Each(fn func(key string, value json.RawMessage) error) error {
	s.mu.Lock()
	keys := make([]string, len(s.order))
	copy(keys, s.order)
	values := make([]json.RawMessage, len(keys))
	for i, k := range keys {
		values[i] = s.values[k]
	}
	s.mu.Unlock()
	for i, k := range keys {
		if err := fn(k, values[i]); err != nil {
			return err
		}
	}
	return nil
}

// Path returns the store file path.
func (s *Store) Path() string { return s.path }

// Close flushes and closes the store file. Further puts fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// Report is the result of an offline integrity scan.
type Report struct {
	// Exists reports whether the store file is present at all.
	Exists bool `json:"exists"`
	// Entries counts intact records (duplicate keys counted once each).
	Entries int `json:"entries"`
	// UniqueKeys counts distinct keys among the intact records.
	UniqueKeys int `json:"unique_keys"`
	// DupKeys counts records whose key repeats an earlier record.
	DupKeys int `json:"dup_keys"`
	// Bytes is the file size; ValidBytes the intact prefix length.
	Bytes      int64 `json:"bytes"`
	ValidBytes int64 `json:"valid_bytes"`
	// TornBytes is Bytes-ValidBytes: a non-zero value means the file ends
	// in a torn or corrupt line (recoverable — Open truncates it).
	TornBytes int64 `json:"torn_bytes"`
}

// Verify scans the store file at path without opening it for writing,
// reporting its integrity. Safe to run against a store another process
// has open.
func Verify(path string) (Report, error) {
	var rep Report
	fi, err := os.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return rep, nil
		}
		return rep, fmt.Errorf("store: %w", err)
	}
	if fi.IsDir() {
		return rep, fmt.Errorf("store: path %s is a directory, want a file", path)
	}
	rep.Exists = true
	rep.Bytes = fi.Size()
	lines, validBytes, err := loadLines(path)
	if err != nil {
		return rep, err
	}
	rep.Entries = len(lines)
	rep.ValidBytes = validBytes
	rep.TornBytes = rep.Bytes - validBytes
	seen := make(map[string]bool)
	for _, l := range lines {
		if seen[l.Key] {
			rep.DupKeys++
			continue
		}
		seen[l.Key] = true
	}
	rep.UniqueKeys = len(seen)
	return rep, nil
}
