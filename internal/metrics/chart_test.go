package metrics

import (
	"strings"
	"testing"

	"sdds/internal/disk"
	"sdds/internal/sim"
)

func TestBarChartRender(t *testing.T) {
	c := &BarChart{
		Title:  "Normalized energy",
		Groups: []string{"hf", "sar"},
		Series: []string{"simple", "history"},
		Values: [][]float64{{0.95, 0.84}, {0.97, 0.80}},
	}
	out := c.Render()
	if !strings.Contains(out, "Normalized energy") {
		t.Fatal("title missing")
	}
	for _, want := range []string{"hf/simple", "hf/history", "sar/simple", "sar/history", "95.0%", "80.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Longer bar for higher value.
	lines := strings.Split(out, "\n")
	count := func(s string) int { return strings.Count(s, "#") }
	var simpleBar, historyBar int
	for _, l := range lines {
		if strings.Contains(l, "hf/simple") {
			simpleBar = count(l)
		}
		if strings.Contains(l, "hf/history") {
			historyBar = count(l)
		}
	}
	if simpleBar <= historyBar {
		t.Fatalf("bar lengths not ordered: simple %d ≤ history %d", simpleBar, historyBar)
	}
}

func TestBarChartClamping(t *testing.T) {
	c := &BarChart{
		Groups: []string{"g"},
		Series: []string{"s"},
		Values: [][]float64{{2.5}}, // beyond Max
		Width:  10,
	}
	out := c.Render()
	if strings.Count(out, "#") != 10 {
		t.Fatalf("overflow bar not clamped:\n%s", out)
	}
	c.Values = [][]float64{{-0.5}}
	if out := c.Render(); strings.Count(out, "#") != 0 {
		t.Fatalf("negative bar not clamped:\n%s", out)
	}
}

func TestBarChartRaggedInputSafe(t *testing.T) {
	c := &BarChart{
		Groups: []string{"a", "b"},
		Series: []string{"x", "y"},
		Values: [][]float64{{0.5}}, // missing rows/cols must not panic
	}
	_ = c.Render()
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1, 2, -1})
	runes := []rune(s)
	if len(runes) != 5 {
		t.Fatalf("len = %d", len(runes))
	}
	if runes[0] != '▁' || runes[2] != '█' || runes[3] != '█' || runes[4] != '▁' {
		t.Fatalf("sparkline = %q", s)
	}
}

func TestGapTraceRecordAndReplay(t *testing.T) {
	now := sim.Time(0)
	tr := NewGapTrace(func() sim.Time { return now })
	eng := sim.NewEngine(1)
	d := disk.MustNew(eng, 3, disk.DefaultParams())

	// Gap of 10s ending at t=30s (started at 20s) and 50s ending at 100s.
	now = 30 * sim.Second
	tr.RecordIdle(d, 10*sim.Second)
	now = 100 * sim.Second
	tr.RecordIdle(d, 50*sim.Second)

	if tr.Len(3) != 2 {
		t.Fatalf("Len = %d", tr.Len(3))
	}
	// Query near each start.
	if g, ok := tr.NextIdle(3, 19*sim.Second); !ok || g != 10*sim.Second {
		t.Fatalf("NextIdle(19s) = %v, %v", g, ok)
	}
	if g, ok := tr.NextIdle(3, 52*sim.Second); !ok || g != 50*sim.Second {
		t.Fatalf("NextIdle(52s) = %v, %v", g, ok)
	}
	// Unknown disk.
	if _, ok := tr.NextIdle(9, 0); ok {
		t.Fatal("unknown disk returned a hint")
	}
}

func TestGapTraceNearestStartMatching(t *testing.T) {
	now := sim.Time(0)
	tr := NewGapTrace(func() sim.Time { return now })
	eng := sim.NewEngine(1)
	d := disk.MustNew(eng, 0, disk.DefaultParams())
	// Gaps starting at 10s and 100s.
	now = 20 * sim.Second
	tr.RecordIdle(d, 10*sim.Second)
	now = 130 * sim.Second
	tr.RecordIdle(d, 30*sim.Second)
	// Query at 40s: nearest start is 10s (dist 30) vs 100s (dist 60).
	if g, _ := tr.NextIdle(0, 40*sim.Second); g != 10*sim.Second {
		t.Fatalf("nearest-match failed: %v", g)
	}
	if g, _ := tr.NextIdle(0, 90*sim.Second); g != 30*sim.Second {
		t.Fatalf("nearest-match failed high side: %v", g)
	}
}
