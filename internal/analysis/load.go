package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the import path ("sdds/internal/disk"). Directories
	// outside the module (analyzer testdata) get a synthetic path.
	PkgPath string
	// Dir is the absolute directory the package was loaded from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// loader type-checks module-local packages from source. Standard-library
// imports are delegated to go/importer's source importer (which resolves
// them under GOROOT), so loading needs no network, no module cache, and no
// pre-built export data — the properties that let sddsvet run in a hermetic
// CI container.
type loader struct {
	fset    *token.FileSet
	root    string // module root directory (absolute)
	module  string // module path from go.mod
	std     types.ImporterFrom
	pkgs    map[string]*Package // import path → loaded package
	loading map[string]bool     // cycle guard
}

func newLoader(root string) (*loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &loader{
		fset:    fset,
		root:    root,
		module:  mod,
		std:     std,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// modulePath reads the module declaration from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths are resolved
// to directories under the module root and loaded from source; everything
// else is assumed to be standard library.
func (l *loader) ImportFrom(path, dir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
		pkg, err := l.loadDir(filepath.Join(l.root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, 0)
}

// loadDir parses and type-checks the package in dir, caching by import
// path.
func (l *loader) loadDir(dir, pkgPath string) (*Package, error) {
	if pkg, ok := l.pkgs[pkgPath]; ok {
		return pkg, nil
	}
	if l.loading[pkgPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", pkgPath)
	}
	l.loading[pkgPath] = true
	defer delete(l.loading, pkgPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, err)
	}
	pkg := &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	l.pkgs[pkgPath] = pkg
	return pkg, nil
}

// Module is the result of one load: the packages selected by the patterns
// plus every module-local package pulled in as a type-check dependency. The
// dependency closure is what lets the callsum summary engine follow calls
// across package boundaries, and the shared ignore indexes are what lets
// the stale-suppression audit see every consumer of a directive (direct
// diagnostics and summary-effect suppression alike).
type Module struct {
	// Root is the absolute module root directory.
	Root string
	// Path is the module path from go.mod ("sdds").
	Path string
	// Selected are the packages matched by the load patterns, sorted by
	// import path. Analyzers run over these.
	Selected []*Package

	pkgs map[string]*Package // every loaded module-local package, by path

	mu      sync.Mutex
	facts   map[string]any
	ignores map[string]*IgnoreIndex // PkgPath → shared ignore index
}

// Package returns the loaded package with the given import path —
// selected or dependency — or nil for paths outside the module (stdlib).
func (m *Module) Package(pkgPath string) *Package { return m.pkgs[pkgPath] }

// Packages returns every loaded module-local package sorted by import
// path: the selected set plus type-check dependencies.
func (m *Module) Packages() []*Package {
	out := make([]*Package, 0, len(m.pkgs))
	for _, p := range m.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out
}

// Fact memoizes a module-wide computation under key: the first caller
// builds it, everyone after shares it. The callsum summary engine lives
// here so that every analyzer in a run sees one set of summaries.
func (m *Module) Fact(key string, build func(*Module) any) any {
	m.mu.Lock()
	v, ok := m.facts[key]
	m.mu.Unlock()
	if ok {
		return v
	}
	v = build(m) // built outside the lock: build may recurse into Fact
	m.mu.Lock()
	if prev, ok := m.facts[key]; ok {
		v = prev
	} else {
		m.facts[key] = v
	}
	m.mu.Unlock()
	return v
}

// Ignores returns the package's suppression index, built once and shared:
// the driver consults it to filter diagnostics and the summary engine to
// drop justified intrinsic effects, and both kinds of use count when the
// audit looks for stale directives.
func (m *Module) Ignores(pkg *Package) *IgnoreIndex {
	m.mu.Lock()
	defer m.mu.Unlock()
	idx, ok := m.ignores[pkg.PkgPath]
	if !ok {
		idx = NewIgnoreIndex(pkg)
		m.ignores[pkg.PkgPath] = idx
	}
	return idx
}

// Load type-checks the packages selected by patterns and returns just the
// selected set; see LoadModule for the module-wide view.
func Load(root string, patterns ...string) ([]*Package, error) {
	mod, err := LoadModule(root, patterns...)
	if err != nil {
		return nil, err
	}
	return mod.Selected, nil
}

// LoadModule type-checks the packages selected by patterns, resolved
// relative to root (the module root). Supported patterns are "./..."
// (every package under root), "dir/..." and plain directory paths.
// Directories named testdata, hidden directories, and directories without
// non-test Go files are skipped by the recursive patterns.
func LoadModule(root string, patterns ...string) (*Module, error) {
	l, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	seen := make(map[string]bool)
	addDir := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" || base == "." {
			base = l.root
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(l.root, filepath.FromSlash(base))
		}
		if !recursive {
			addDir(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				addDir(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir, l.pathFor(dir))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return &Module{
		Root:     l.root,
		Path:     l.module,
		Selected: pkgs,
		pkgs:     l.pkgs,
		facts:    make(map[string]any),
		ignores:  make(map[string]*IgnoreIndex),
	}, nil
}

// pathFor maps a directory to its import path: module-relative when under
// the module root, a synthetic slash path otherwise (testdata fixtures).
func (l *loader) pathFor(dir string) string {
	if rel, err := filepath.Rel(l.root, dir); err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		if rel == "." {
			return l.module
		}
		return l.module + "/" + filepath.ToSlash(rel)
	}
	return filepath.ToSlash(dir)
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
