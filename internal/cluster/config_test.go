package cluster

import (
	"bytes"
	"encoding/json"
	"testing"

	"sdds/internal/ionode"
	"sdds/internal/stripe"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.Procs = 0 },
		func(c *Config) { c.Layout = stripe.Layout{} },
		func(c *Config) { c.Node = ionode.Config{} },
		func(c *Config) { c.Net.LinkMBps = 0 },
		func(c *Config) { c.Net.NumNodes = 3 }, // mismatch with layout
		func(c *Config) { c.BufferBytes = 0 },
		func(c *Config) { c.BufferHitTime = -1 },
		func(c *Config) { c.ComputeJitter = 1.5 },
		func(c *Config) { c.ComputeJitter = -0.1 },
	}
	for i, m := range muts {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestNormalizedAlignsSubConfigs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Layout.NumNodes = 4
	cfg.Procs = 16
	n := cfg.normalized()
	if n.Net.NumNodes != 4 || n.Compiler.Procs != 16 || n.Compiler.Layout.NumNodes != 4 {
		t.Fatalf("normalized = net %d, compiler procs %d, layout %d",
			n.Net.NumNodes, n.Compiler.Procs, n.Compiler.Layout.NumNodes)
	}
}

func TestHash01Properties(t *testing.T) {
	seen := map[float64]bool{}
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		v := hash01(1, i%32, i)
		if v < 0 || v >= 1 {
			t.Fatalf("hash01 out of range: %v", v)
		}
		seen[v] = true
		sum += v
	}
	if len(seen) < n*9/10 {
		t.Fatalf("only %d distinct values of %d", len(seen), n)
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Fatalf("mean %v far from 0.5", mean)
	}
	// Deterministic in all arguments.
	if hash01(1, 2, 3) != hash01(1, 2, 3) {
		t.Fatal("hash01 not deterministic")
	}
	if hash01(1, 2, 3) == hash01(2, 2, 3) {
		t.Fatal("hash01 ignores seed")
	}
}

func TestRunWithRAID5Nodes(t *testing.T) {
	cfg := smallConfig()
	cfg.Node.Members = 3
	cfg.Node.Level = ionode.RAID5
	res, err := Run(smallProgram(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyJ <= 0 {
		t.Fatal("no energy recorded")
	}
}

func TestRunWithDifferentNodeCounts(t *testing.T) {
	for _, nodes := range []int{2, 4, 16} {
		cfg := smallConfig()
		cfg.Layout.NumNodes = nodes
		cfg.Net.NumNodes = nodes
		res, err := Run(smallProgram(), cfg)
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if len(res.NodeEnergyJ) != nodes {
			t.Fatalf("nodes=%d: %d energies", nodes, len(res.NodeEnergyJ))
		}
	}
}

func TestJitterChangesTimingButNotWork(t *testing.T) {
	cfg := smallConfig()
	cfg.ComputeJitter = 0
	a, err := Run(smallProgram(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ComputeJitter = 0.3
	b, err := Run(smallProgram(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Application-level I/O volume is timing-independent (disk-request
	// counts vary slightly with stride-prefetch timing).
	if av, bv := a.StorageCacheHits+a.StorageCacheMisses, b.StorageCacheHits+b.StorageCacheMisses; av != bv {
		t.Fatalf("jitter changed node read count: %d vs %d", av, bv)
	}
	if a.ExecTime == b.ExecTime {
		t.Fatal("jitter had no timing effect")
	}
}

func TestSummaryAndJSON(t *testing.T) {
	cfg := smallConfig()
	cfg.Scheduling = true
	res, err := Run(smallProgram(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary()
	if s.Program != "small" || !s.Scheduling || s.EnergyJoule != res.EnergyJ {
		t.Fatalf("summary = %+v", s)
	}
	if len(s.IdleCDF) == 0 || s.IdleCDF[len(s.IdleCDF)-1].Frac > 1 {
		t.Fatalf("bad CDF: %+v", s.IdleCDF)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Program != s.Program || back.EnergyJoule != s.EnergyJoule {
		t.Fatal("JSON round-trip mismatch")
	}
}
