// Command sddsdiag inspects the diagnostics bundles captured by the
// harness session, the CLIs (-capture-dir), and the sddsd service: it
// verifies every file against the MANIFEST.json integrity hashes, checks
// the embedded Chrome trace with the shared probe validator, confirms the
// captured request is strictly replayable, and prints a triage summary.
//
//	sddsdiag bundle-3f2a9c81d4e0           # triage one bundle (dir or .tar.gz)
//	sddsdiag -dir capture/                 # list a capture directory
//	sddsdiag -dir capture/ 3f2a           # resolve an ID prefix, then triage
//
// Exit status is non-zero when any inspected bundle fails validation.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sdds/internal/diag"
	"sdds/internal/harness"
	"sdds/internal/probe"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sddsdiag:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sddsdiag", flag.ContinueOnError)
	dir := fs.String("dir", "", "capture directory: list its bundles, or resolve bundle-ID arguments against it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	targets := fs.Args()
	if *dir != "" && len(targets) == 0 {
		return list(*dir)
	}
	if len(targets) == 0 {
		return fmt.Errorf("usage: sddsdiag [-dir capture-dir] bundle-path-or-id ...")
	}
	bad := 0
	for i, t := range targets {
		if i > 0 {
			fmt.Println()
		}
		path, err := resolve(*dir, t)
		if err != nil {
			return err
		}
		ok, err := triage(path)
		if err != nil {
			return err
		}
		if !ok {
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d bundles failed validation", bad, len(targets))
	}
	return nil
}

// resolve maps an argument to a bundle path: an existing file or directory
// wins; otherwise it is treated as an ID (or unique prefix) under -dir.
func resolve(dir, target string) (string, error) {
	if _, err := os.Stat(target); err == nil {
		return target, nil
	}
	if dir == "" {
		return "", fmt.Errorf("%s: no such bundle (pass -dir to resolve IDs)", target)
	}
	infos, err := diag.ListDir(dir)
	if err != nil {
		return "", err
	}
	var match string
	for _, b := range infos {
		if b.ID == target {
			return b.Path, nil
		}
		if strings.HasPrefix(b.ID, target) {
			if match != "" {
				return "", fmt.Errorf("%s: ambiguous bundle ID in %s", target, dir)
			}
			match = b.Path
		}
	}
	if match == "" {
		return "", fmt.Errorf("%s: no such bundle in %s", target, dir)
	}
	return match, nil
}

// list prints a one-line-per-bundle summary of a capture directory.
func list(dir string) error {
	infos, err := diag.ListDir(dir)
	if err != nil {
		return err
	}
	if len(infos) == 0 {
		fmt.Printf("%s: no bundles\n", dir)
		return nil
	}
	fmt.Printf("%-14s %-8s %-22s %-7s %s\n", "ID", "TRIGGER", "CREATED", "FILES", "KEY")
	for _, b := range infos {
		created := time.UnixMilli(b.Manifest.CreatedUnixMS).UTC().Format("2006-01-02T15:04:05Z")
		fmt.Printf("%-14s %-8s %-22s %-7d %s\n",
			b.ID, b.Manifest.Trigger, created, len(b.Manifest.Files), b.Manifest.Key)
		if b.Manifest.Error != "" {
			fmt.Printf("  error: %s\n", firstLine(b.Manifest.Error))
		}
	}
	return nil
}

// triage validates one bundle and prints its summary. ok reports whether
// the bundle passed every check; err only covers I/O-level failures.
func triage(path string) (ok bool, err error) {
	rep, err := diag.Validate(path)
	if err != nil {
		return false, err
	}
	man := rep.Manifest
	fmt.Printf("bundle:    %s (%s)\n", man.ID, path)
	fmt.Printf("trigger:   %s\n", man.Trigger)
	if man.Key != "" {
		fmt.Printf("run:       %s\n", man.Key)
	}
	if man.Error != "" {
		fmt.Printf("error:     %s\n", firstLine(man.Error))
	}
	if man.ElapsedMS > 0 {
		line := fmt.Sprintf("elapsed:   %d ms", man.ElapsedMS)
		if man.MedianMS > 0 {
			line += fmt.Sprintf(" (rolling median %d ms)", man.MedianMS)
		}
		fmt.Println(line)
	}
	fmt.Printf("created:   %s (%s)\n",
		time.UnixMilli(man.CreatedUnixMS).UTC().Format(time.RFC3339), man.GoVersion)
	var total int64
	for _, f := range man.Files {
		total += f.Bytes
	}
	fmt.Printf("files:     %d (%d bytes)\n", len(man.Files), total)

	problems := append([]string(nil), rep.Problems...)
	problems = append(problems, checkTrace(rep)...)
	problems = append(problems, checkRequest(rep)...)

	if len(problems) == 0 {
		fmt.Println("status:    OK — integrity verified, trace well-formed, request replayable")
		if _, hasReq := rep.Files["request.json"]; hasReq {
			fmt.Println("replay:    resubmit request.json (sddsd POST /v1/runs, or the matching sddsim flags)")
		}
		return true, nil
	}
	fmt.Printf("status:    INVALID (%d problems)\n", len(problems))
	for _, p := range problems {
		fmt.Printf("  - %s\n", p)
	}
	return false, nil
}

// checkTrace runs the shared Chrome-trace validator over trace.json.
func checkTrace(rep *diag.Report) []string {
	data, ok := rep.Files["trace.json"]
	if !ok {
		return nil
	}
	problems, stats, err := probe.CheckChromeTrace(data)
	if err != nil {
		return []string{fmt.Sprintf("trace.json: %v", err)}
	}
	fmt.Printf("trace:     %s\n", stats)
	out := make([]string, 0, len(problems))
	for _, p := range problems {
		out = append(out, "trace.json: "+p)
	}
	return out
}

// checkRequest confirms request.json strictly decodes into the canonical
// harness.Request and survives normalization — i.e. it can be resubmitted
// verbatim to reproduce the run.
func checkRequest(rep *diag.Report) []string {
	data, ok := rep.Files["request.json"]
	if !ok {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req harness.Request
	if err := dec.Decode(&req); err != nil {
		return []string{fmt.Sprintf("request.json: not a canonical request: %v", err)}
	}
	norm, err := req.Normalize()
	if err != nil {
		return []string{fmt.Sprintf("request.json: fails validation: %v", err)}
	}
	fmt.Printf("request:   %s\n", norm.Key())
	if want := rep.Manifest.ContentKey; want != "" && norm.ContentKey() != want {
		return []string{fmt.Sprintf("request.json: content key %s does not match manifest %s",
			norm.ContentKey(), want)}
	}
	return nil
}

// firstLine truncates multi-line error text (panic stacks) for summaries.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " …"
	}
	return s
}
