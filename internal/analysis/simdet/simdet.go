// Package simdet implements the sddsvet analyzer that flags sources of
// nondeterminism inside the simulation packages. The reproduction's headline
// guarantee — bit-identical virtual results for a fixed seed, asserted
// hex-exactly by the cluster golden test — holds only if model code never
// consults wall-clock time, never draws from the globally-seeded RNG, and
// never lets Go's randomized map iteration order decide what happens next.
package simdet

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"sdds/internal/analysis"
	"sdds/internal/analysis/callsum"
)

// SimPackages selects the packages the analyzer applies to: the
// discrete-event engine and every device/executor model whose behaviour
// feeds the golden-compared results. Tests may override it.
var SimPackages = regexp.MustCompile(`^sdds/internal/(sim|cluster|disk|power|sched|ionode|mpiio|netsim|fault|store|service|compiler|compilecache|diag|shard|backoff)$`)

// Analyzer flags time.Now, global math/rand draws, and order-sensitive map
// iteration in simulation packages — at direct sites syntactically, and
// through any call chain leaving the sim-package scope via the callsum
// effect summaries (banned global-rand functions are callsum.GlobalRandFuncs).
var Analyzer = &analysis.Analyzer{
	Name: "simdet",
	Doc: "flags nondeterminism sources in simulation packages: time.Now, " +
		"the global math/rand source, and ranging over maps where the body " +
		"calls into sim state, schedules events, or mutates order-sensitive " +
		"outer state — directly or through calls into non-sim packages",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !SimPackages.MatchString(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			}
			return true
		})
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkTransitive(pass, fd)
			}
		}
	}
	return nil
}

// transitiveKinds are the effects chased across package boundaries.
var transitiveKinds = []callsum.EffectKind{callsum.WallClock, callsum.GlobalRand, callsum.MapOrder}

// checkTransitive reports calls that leave the sim-package scope and reach
// a nondeterminism source any number of levels down. Calls to other sim
// packages are skipped: the callee's own package report covers them, so
// each root cause surfaces once, at the boundary.
func checkTransitive(pass *analysis.Pass, fd *ast.FuncDecl) {
	caller, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sums := callsum.Of(pass.Mod)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || SimPackages.MatchString(fn.Pkg().Path()) {
			return true
		}
		sum := sums.ForFunc(fn)
		if sum == nil {
			return true
		}
		for _, k := range transitiveKinds {
			if sum.Effect(k) == nil {
				continue
			}
			chain := sums.CallChain(caller, call.Pos(), fn, k)
			pass.ReportChain(call.Pos(), chain,
				"%s reached from a simulation package: %s", k, callsum.Render(chain))
		}
		return true
	})
}

// checkCall reports wall-clock and global-RNG calls.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" && fn.Type().(*types.Signature).Recv() == nil {
			pass.Reportf(call.Pos(), "time.Now in a simulation package: model code must use the virtual clock (sim.Engine.Now)")
		}
	case "math/rand", "math/rand/v2":
		if callsum.GlobalRandFuncs[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
			pass.Reportf(call.Pos(), "global math/rand.%s is randomly seeded and breaks run reproducibility: use the engine's seeded RNG (sim.Engine.Rand)", fn.Name())
		}
	}
}

// checkMapRange reports ranging over a map when the loop body does
// something whose outcome depends on iteration order: calling a function or
// method (which may schedule events or mutate sim state), appending to an
// outer slice, or assigning to outer state in a non-commutative way.
//
// Commutative updates keyed by the loop key are allowed without an ignore:
// m2[k] = v and m2[k] += v visit each key exactly once, so iteration order
// cannot change the result. Integer increments/decrements of outer scalars
// are likewise exact and order-free, as are stores of constants and the
// collect-then-sort idiom (appending to a slice that a later sort.* call
// puts into a fixed order).
func checkMapRange(pass *analysis.Pass, f *ast.File, rng *ast.RangeStmt) {
	t, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := t.Type.Underlying().(*types.Map); !isMap {
		return
	}
	keyIdent, _ := rng.Key.(*ast.Ident)

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // deferred work: not executed in iteration order here
		case *ast.CallExpr:
			if fn := analysis.CalleeFunc(pass.TypesInfo, n); fn != nil {
				pass.Reportf(n.Pos(), "call to %s inside map iteration runs in random order; iterate sorted keys or justify with //sddsvet:ignore simdet", fn.Name())
				return false
			}
			// Builtins: append into outer state is order-dependent.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				if root := analysis.RootIdent(n.Args[0]); root != nil &&
					analysis.DeclaredOutside(pass.TypesInfo, root, rng.Pos(), rng.End()) &&
					!callsum.SortedAfter(pass.TypesInfo, f, rng, root) {
					pass.Reportf(n.Pos(), "append to %s inside map iteration produces a randomly-ordered slice; iterate sorted keys", root.Name)
				}
			}
		case *ast.AssignStmt:
			checkAssign(pass, rng, keyIdent, n)
		case *ast.IncDecStmt:
			if callsum.OrderSensitiveStore(pass.TypesInfo, rng, keyIdent, n.X, true) {
				pass.Reportf(n.Pos(), "float update of outer state inside map iteration accumulates in random order")
			}
		}
		return true
	})
}

// checkAssign flags order-sensitive stores to loop-external state. The
// order-sensitivity decision itself (per-key map stores and integer
// compound updates are exempt) lives in callsum and is shared with the
// summary engine's MapOrder intrinsic.
func checkAssign(pass *analysis.Pass, rng *ast.RangeStmt, keyIdent *ast.Ident, as *ast.AssignStmt) {
	if as.Tok == token.DEFINE {
		return
	}
	commutative := as.Tok != token.ASSIGN // compound ops: only floats are order-sensitive
	for i, lhs := range as.Lhs {
		if i < len(as.Rhs) && callsum.IsAppendCall(pass.TypesInfo, as.Rhs[i]) {
			continue // s = append(s, ...) is owned by the append check
		}
		if callsum.ConstantStore(pass.TypesInfo, as, i) {
			continue // same value every iteration: order-free
		}
		if callsum.OrderSensitiveStore(pass.TypesInfo, rng, keyIdent, lhs, commutative) {
			what := "assignment to outer state inside map iteration is last-writer-wins in random order"
			if commutative {
				what = "float accumulation into outer state inside map iteration rounds in random order"
			}
			pass.Reportf(as.Pos(), "%s; iterate sorted keys or justify with //sddsvet:ignore simdet", what)
		}
	}
}
