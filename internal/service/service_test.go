package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sdds/internal/harness"
	"sdds/internal/workloads"
)

// newTestServer builds a service over a store in dir and mounts it on an
// httptest server. Callers own both closes (t.Cleanup handles them).
func newTestServer(t *testing.T, storePath string, workers int) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(Options{StorePath: storePath, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postJSON posts v and decodes the response body into out, returning the
// status code.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// goldenRequests is the 24-config golden matrix of the cluster suite:
// six apps × {default, history-based} × {scheduling off, on} at the
// golden scale and seed.
func goldenRequests() []harness.Request {
	var reqs []harness.Request
	for _, app := range workloads.Names() {
		for _, policy := range []string{"default", "history-based"} {
			for _, sched := range []bool{false, true} {
				reqs = append(reqs, harness.Request{
					App: app, Policy: policy, Scheduling: sched, Scale: 0.05, Seed: 42,
				})
			}
		}
	}
	return reqs
}

// TestServiceRunMatchesDirectSession is the tentpole acceptance test: a
// run submitted over HTTP is byte-identical (as its canonical RunRecord
// JSON) to the same configuration run directly through harness.Session,
// across all 24 golden configs.
func TestServiceRunMatchesDirectSession(t *testing.T) {
	if testing.Short() {
		t.Skip("24 golden simulations; skipped in -short")
	}
	dir := t.TempDir()
	_, ts := newTestServer(t, filepath.Join(dir, "store.jsonl"), 0)
	direct := harness.NewSession(harness.SessionOptions{})
	for _, req := range goldenRequests() {
		var got RunResponse
		if code := postJSON(t, ts.URL+"/v1/runs", req, &got); code != http.StatusOK {
			t.Fatalf("%+v: status %d (%s)", req, code, got.Error)
		}
		if got.Result == nil {
			t.Fatalf("%+v: no result (%s)", req, got.Error)
		}
		res, _, err := direct.RunRequest(context.Background(), req)
		if err != nil {
			t.Fatalf("%+v: direct run: %v", req, err)
		}
		want := harness.NewRunRecord(res)
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := json.Marshal(*got.Result)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("%+v: HTTP result diverges from direct session run\nhttp:   %s\ndirect: %s",
				req, gotJSON, wantJSON)
		}
	}
}

// TestServiceRunValidation pins the 400 surface: malformed JSON, unknown
// fields, and requests that fail Normalize.
func TestServiceRunValidation(t *testing.T) {
	_, ts := newTestServer(t, filepath.Join(t.TempDir(), "store.jsonl"), 1)
	cases := []string{
		`{`,                                  // malformed
		`{"app":"sar","polcy":"x"}`,          // unknown field
		`{"app":"nosuch"}`,                   // unknown app
		`{"app":"sar","policy":"histroy"}`,   // policy typo
		`{"app":"sar","variant":"thetaa=8"}`, // variant typo
	}
	for _, body := range cases {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestServiceRunGetAndStatus exercises the lookup and health surface
// around one run.
func TestServiceRunGetAndStatus(t *testing.T) {
	_, ts := newTestServer(t, filepath.Join(t.TempDir(), "store.jsonl"), 2)
	req := harness.Request{App: "sar", Scale: 0.02, Seed: 7}
	var run RunResponse
	if code := postJSON(t, ts.URL+"/v1/runs", req, &run); code != http.StatusOK {
		t.Fatalf("run status %d", code)
	}
	if run.Cached || run.Result == nil {
		t.Fatalf("first run: cached=%v result=%v", run.Cached, run.Result != nil)
	}

	var again RunResponse
	postJSON(t, ts.URL+"/v1/runs", req, &again)
	if !again.Cached {
		t.Fatal("identical resubmission was not served from cache")
	}

	var got RunResponse
	if code := getJSON(t, ts.URL+"/v1/runs/"+run.Key, &got); code != http.StatusOK {
		t.Fatalf("GET run status %d", code)
	}
	if got.Result == nil || !got.Cached {
		t.Fatalf("GET run: %+v", got)
	}
	if code := getJSON(t, ts.URL+"/v1/runs/deadbeef", nil); code != http.StatusNotFound {
		t.Fatalf("unknown key status %d, want 404", code)
	}

	var st StatusResponse
	if code := getJSON(t, ts.URL+"/v1/status", &st); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if st.Simulated != 1 || st.StoreEntries != 1 || st.InFlight != 0 {
		t.Fatalf("status = %+v", st)
	}

	var doc DoctorResponse
	if code := getJSON(t, ts.URL+"/v1/doctor", &doc); code != http.StatusOK {
		t.Fatalf("doctor status %d", code)
	}
	if doc.Status != "ok" {
		t.Fatalf("doctor = %+v", doc)
	}
	if len(doc.Tail) != 1 || doc.Tail[0].Key != run.Key {
		t.Fatalf("doctor tail = %+v", doc.Tail)
	}
	if !strings.Contains(doc.Metrics, "sddsd_runs_simulated 1") {
		t.Fatalf("doctor metrics missing simulated count:\n%s", doc.Metrics)
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var text bytes.Buffer
	text.ReadFrom(resp.Body)
	if !strings.Contains(text.String(), "# TYPE sddsd_runs_submitted counter") {
		t.Fatalf("metrics endpoint:\n%s", text.String())
	}
}

// TestServiceSweepDedupsWithinAndAcrossRestarts is the persistence
// acceptance test: a sweep resolves each distinct config once, and after
// a restart over the same store an identical sweep simulates zero runs.
func TestServiceSweepDedupsWithinAndAcrossRestarts(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "store.jsonl")
	sw := SweepRequest{
		Apps:       []string{"sar", "hf"},
		Policies:   []string{"default", "history"},
		Scheduling: []bool{false, true},
		Scale:      0.02,
		Seed:       7,
		// One duplicate of a cross-product cell: dedup must fold it in.
		Requests: []harness.Request{{App: "sar", Policy: "default", Scale: 0.02, Seed: 7}},
	}

	s1, ts1 := newTestServer(t, storePath, 4)
	var first SweepResponse
	if code := postJSON(t, ts1.URL+"/v1/sweeps", sw, &first); code != http.StatusOK {
		t.Fatalf("sweep status %d", code)
	}
	if first.Total != 9 || first.Distinct != 8 {
		t.Fatalf("sweep total/distinct = %d/%d, want 9/8", first.Total, first.Distinct)
	}
	if first.Simulated != 8 || first.Failed != 0 {
		t.Fatalf("first sweep: %+v", first)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new server process state over the same store.
	s2, ts2 := newTestServer(t, storePath, 4)
	if s2.sess.Preloaded() != 8 {
		t.Fatalf("restarted service preloaded %d runs, want 8", s2.sess.Preloaded())
	}
	var second SweepResponse
	if code := postJSON(t, ts2.URL+"/v1/sweeps", sw, &second); code != http.StatusOK {
		t.Fatalf("resubmitted sweep status %d", code)
	}
	if second.Simulated != 0 || second.Cached != 8 || second.Failed != 0 {
		t.Fatalf("after restart: simulated=%d cached=%d failed=%d, want 0/8/0",
			second.Simulated, second.Cached, second.Failed)
	}
	// Byte-identity across lifetimes: same key, same recorded result.
	for i, run := range second.Runs {
		a, _ := json.Marshal(first.Runs[i].Result)
		b, _ := json.Marshal(run.Result)
		if first.Runs[i].Key != run.Key || !bytes.Equal(a, b) {
			t.Fatalf("run %d drifted across restart", i)
		}
	}
}

// TestServiceConcurrentClients hammers every endpoint from concurrent
// clients; run under -race this is the data-race acceptance test.
func TestServiceConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, filepath.Join(t.TempDir(), "store.jsonl"), 4)
	apps := []string{"sar", "hf", "astro"}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				req := harness.Request{App: apps[(g+i)%len(apps)], Scale: 0.02, Seed: 7}
				var run RunResponse
				if code := postJSON(t, ts.URL+"/v1/runs", req, &run); code != http.StatusOK {
					errs <- fmt.Errorf("client %d: run status %d (%s)", g, code, run.Error)
					return
				}
				if code := getJSON(t, ts.URL+"/v1/status", nil); code != http.StatusOK {
					errs <- fmt.Errorf("client %d: status %d", g, code)
					return
				}
				if code := getJSON(t, ts.URL+"/v1/runs/"+run.Key, nil); code != http.StatusOK {
					errs <- fmt.Errorf("client %d: get run status %d", g, code)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	var st StatusResponse
	getJSON(t, ts.URL+"/v1/status", &st)
	if st.Simulated != int64(len(apps)) {
		t.Fatalf("simulated %d distinct configs, want %d (dedup broke under concurrency)",
			st.Simulated, len(apps))
	}
}

// TestServiceEventsStream asserts the SSE endpoint delivers run events.
func TestServiceEventsStream(t *testing.T) {
	_, ts := newTestServer(t, filepath.Join(t.TempDir(), "store.jsonl"), 2)
	resp, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	events := make(chan Event, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if data, ok := strings.CutPrefix(line, "data: "); ok {
				var ev Event
				if json.Unmarshal([]byte(data), &ev) == nil {
					events <- ev
				}
			}
		}
	}()
	var run RunResponse
	if code := postJSON(t, ts.URL+"/v1/runs", harness.Request{App: "sar", Scale: 0.02, Seed: 7}, &run); code != http.StatusOK {
		t.Fatalf("run status %d", code)
	}
	select {
	case ev := <-events:
		if ev.Key == "" {
			t.Fatalf("event %+v has no key", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no SSE event within 5s of a completed run")
	}
}

// TestServiceGracefulDrain asserts Serve finishes inflight runs on
// cancellation and closes the store afterwards.
func TestServiceGracefulDrain(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := NewServer(Options{StorePath: storePath, Workers: 2, DrainTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// Launch a run, then cancel the serve context while it may still be
	// inflight; the response must still arrive complete.
	type outcome struct {
		run RunResponse
		err error
	}
	runDone := make(chan outcome, 1)
	go func() {
		body, _ := json.Marshal(harness.Request{App: "sar", Scale: 0.02, Seed: 7})
		resp, err := http.Post(base+"/v1/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			runDone <- outcome{err: err}
			return
		}
		defer resp.Body.Close()
		var run RunResponse
		err = json.NewDecoder(resp.Body).Decode(&run)
		runDone <- outcome{run: run, err: err}
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach the handler
	cancel()
	got := <-runDone
	if got.err != nil {
		t.Fatalf("drained run failed in transit: %v", got.err)
	}
	if got.run.Error != "" || got.run.Result == nil {
		t.Fatalf("drained run: %+v", got.run)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
	// The drained run is durable: a fresh open sees it.
	j, err := harness.OpenJournal(storePath, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 1 {
		t.Fatalf("store holds %d runs after drain, want 1", j.Len())
	}
}

// TestServiceRequiresStorePath pins the constructor contract.
func TestServiceRequiresStorePath(t *testing.T) {
	if _, err := NewServer(Options{}); err == nil {
		t.Fatal("NewServer accepted empty StorePath")
	}
	if _, err := NewServer(Options{StorePath: t.TempDir()}); err == nil {
		t.Fatal("NewServer accepted a directory store path")
	}
}
