package analysis

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// RunAnalyzers executes every analyzer over one loaded package, applying
// //sddsvet:ignore suppression through the module's shared index (so the
// stale-suppression audit sees these uses alongside the summary engine's),
// and returns the surviving diagnostics sorted by position.
func RunAnalyzers(mod *Module, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	idx := mod.Ignores(pkg)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			PkgPath:   pkg.PkgPath,
			TypesInfo: pkg.Info,
			Mod:       mod,
			report: func(d Diagnostic) {
				if !idx.Suppressed(d.Analyzer, d.Pos) {
					diags = append(diags, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer // two analyzers, one line
	})
	return diags, nil
}

// Finding is one externalized diagnostic: position resolved, paths
// relative to the module root, ready for text/JSON/SARIF output and
// baseline matching.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Chain is the interprocedural path from the reported site to the
	// intrinsic effect, outermost first (summary-driven analyzers only).
	Chain []ChainLoc `json:"chain,omitempty"`
	// Baselined marks findings matched by the committed baseline: known,
	// tolerated, and excluded from the failure count.
	Baselined bool `json:"baselined,omitempty"`
}

// ChainLoc is one resolved step of a Finding's call chain.
type ChainLoc struct {
	Func string `json:"func"`
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
	Col  int    `json:"col,omitempty"`
	Note string `json:"note,omitempty"`
}

// Key is the baseline identity of a finding: file, analyzer, and message —
// no line numbers, so unrelated edits above a tolerated finding don't
// un-baseline it. Messages must therefore never embed positions; chains
// carry their positions in the structured form only.
func (f Finding) Key() string {
	return f.File + ": " + f.Analyzer + ": " + f.Message
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// NewFinding resolves one diagnostic against the module root.
func (m *Module) NewFinding(pkg *Package, d Diagnostic) Finding {
	pos := pkg.Fset.Position(d.Pos)
	f := Finding{
		File:     m.RelPath(pos.Filename),
		Line:     pos.Line,
		Col:      pos.Column,
		Analyzer: d.Analyzer,
		Message:  d.Message,
	}
	for _, st := range d.Chain {
		loc := ChainLoc{Func: st.Func, Note: st.Note}
		if st.Pos.IsValid() {
			p := pkg.Fset.Position(st.Pos)
			loc.File, loc.Line, loc.Col = m.RelPath(p.Filename), p.Line, p.Column
		}
		f.Chain = append(f.Chain, loc)
	}
	return f
}

func (m *Module) RelPath(name string) string {
	if rel, err := filepath.Rel(m.Root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}

// SortFindings orders findings by file, line, column, analyzer, message.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
