package cluster

import (
	"context"
	"fmt"

	"sdds/internal/compiler"
	"sdds/internal/disk"
	"sdds/internal/ionode"
	"sdds/internal/loop"
	"sdds/internal/metrics"
	"sdds/internal/mpiio"
	"sdds/internal/netsim"
	"sdds/internal/power"
	"sdds/internal/sched"
	"sdds/internal/sim"
)

// Result is the outcome of one run.
type Result struct {
	Program    string
	Policy     power.Kind
	Scheduling bool

	// ExecTime is when the last process finished.
	ExecTime sim.Duration
	// EnergyJ is total disk energy over the run (all nodes, all members).
	EnergyJ float64
	// NodeEnergyJ breaks energy down per I/O node.
	NodeEnergyJ []float64
	// Idle is the merged idle-period histogram across all disks (Fig. 12).
	Idle *metrics.IdleHistogram

	// Compile is the compiler output (nil when Scheduling is off).
	Compile *compiler.Result

	// Buffer and cache behaviour.
	BufferHits, BufferMisses int64
	PrefetchIssued           int64 // storage-cache stride prefetches
	StorageCacheHits         int64
	StorageCacheMisses       int64

	// Runtime-scheduler agent behaviour.
	AgentMoved    int64 // table entries scheduled earlier than their orig
	AgentIssued   int64 // prefetches actually issued
	AgentBlocked  int64 // stop-fetching occurrences (buffer full)
	AgentDeferred int64 // producer local-time deferrals

	// Disk activity.
	DiskRequests int64
	SpinUps      int64
	RPMShifts    int64
}

// psKey indexes per-process per-slot instance lists.
type psKey struct{ proc, slot int }

// Run executes prog on the configured cluster and returns the
// measurements.
func Run(prog *loop.Program, cfg Config) (*Result, error) {
	return RunContext(context.Background(), prog, cfg)
}

// RunContext executes prog like Run but aborts promptly (returning ctx's
// error) when ctx is cancelled, both during the compiler pass and inside
// the discrete-event loop.
func RunContext(ctx context.Context, prog *loop.Program, cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}

	eng := sim.NewEngine(cfg.Seed)

	// Storage: I/O nodes with per-disk power policies and idle recorders.
	idle := metrics.NewIdleHistogram()
	var recorder disk.IdleRecorder = idle
	if cfg.ExtraIdleRecorder != nil {
		recorder = teeRecorder{idle, cfg.ExtraIdleRecorder}
	}
	nodes := make([]*ionode.Node, cfg.Layout.NumNodes)
	for i := range nodes {
		n, err := ionode.New(eng, i, cfg.Node)
		if err != nil {
			return nil, err
		}
		for _, d := range n.Disks() {
			var pol power.Policy
			var err error
			if cfg.PolicyFactory != nil {
				pol, err = cfg.PolicyFactory(eng)
			} else {
				pol, err = power.New(eng, cfg.Policy)
			}
			if err != nil {
				return nil, err
			}
			pol.Attach(d)
			d.SetIdleRecorder(recorder)
		}
		nodes[i] = n
	}
	net, err := netsim.New(eng, cfg.Net)
	if err != nil {
		return nil, err
	}
	mw, err := mpiio.New(eng, cfg.Layout, nodes, net)
	if err != nil {
		return nil, err
	}
	for _, f := range prog.Files {
		if _, err := mw.Open(f.ID, f.Name, f.Size); err != nil {
			return nil, err
		}
	}

	ex := &executor{
		eng:    eng,
		cfg:    cfg,
		prog:   prog,
		mw:     mw,
		nodes:  nodes,
		slots:  prog.Slots(cfg.Procs),
		ioBy:   make(map[psKey][]loop.IOInstance),
		procAt: make([]int, cfg.Procs),
		finish: make([]sim.Time, cfg.Procs),
	}
	for _, inst := range prog.Instances(cfg.Procs) {
		k := psKey{inst.Proc, inst.Slot}
		ex.ioBy[k] = append(ex.ioBy[k], inst)
	}
	ex.prepareSlotMeta()

	// The framework: compile and stand up the runtime scheduler.
	if cfg.Scheduling {
		comp, err := compiler.CompileContext(ctx, prog, cfg.Compiler)
		if err != nil {
			return nil, err
		}
		ex.comp = comp
		ex.buf = sched.MustNewGlobalBuffer(cfg.BufferBytes)
		resolve := func(id int) (sched.AccessInfo, bool) {
			inst, ok := comp.InstanceOf(id)
			if !ok {
				return sched.AccessInfo{}, false
			}
			return sched.AccessInfo{
				File:       inst.File,
				Offset:     inst.Offset,
				Length:     inst.Length,
				WriterSlot: comp.WriterSlotOf(id),
			}, true
		}
		for p := 0; p < cfg.Procs; p++ {
			agent, err := sched.NewAgent(p, comp.Schedule.Table(p), resolve, ex, ex.buf, ex)
			if err != nil {
				return nil, err
			}
			ex.agents = append(ex.agents, agent)
		}
	}

	// Launch all processes at t=0 and run to completion.
	for p := 0; p < cfg.Procs; p++ {
		p := p
		eng.Schedule(0, "cluster.start", func(now sim.Time) { ex.beginSlot(p, 0, now) })
	}
	end, err := eng.RunContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("cluster: run aborted at %v: %w", end, err)
	}
	if !ex.allDone() {
		return nil, fmt.Errorf("cluster: run stalled at %v with processes unfinished", end)
	}

	// Close trailing idle gaps and collect results.
	execEnd := ex.maxFinish()
	res := &Result{
		Program:     prog.Name,
		Policy:      cfg.Policy.Kind,
		Scheduling:  cfg.Scheduling,
		ExecTime:    execEnd,
		Idle:        idle,
		Compile:     ex.comp,
		NodeEnergyJ: make([]float64, len(nodes)),
	}
	for i, n := range nodes {
		n.FlushIdleGaps(execEnd)
		j := n.EnergyJoules(execEnd)
		res.NodeEnergyJ[i] = j
		res.EnergyJ += j
		st := n.Stats()
		res.StorageCacheHits += st.CacheHits
		res.StorageCacheMisses += st.CacheMisses
		res.PrefetchIssued += st.PrefetchIssued
		for _, d := range n.Disks() {
			ds := d.Stats()
			res.DiskRequests += ds.Completed
			res.SpinUps += ds.SpinUps
			res.RPMShifts += ds.RPMShifts
		}
	}
	if ex.buf != nil {
		hits, misses, _, _ := ex.buf.Stats()
		res.BufferHits, res.BufferMisses = hits, misses
	}
	for p, a := range ex.agents {
		issued, blocked, deferred := a.Stats()
		res.AgentIssued += issued
		res.AgentBlocked += blocked
		res.AgentDeferred += deferred
		res.AgentMoved += int64(len(ex.comp.Schedule.MovedEarlier(p)))
	}
	return res, nil
}

// executor drives the processes through their slots.
type executor struct {
	eng   *sim.Engine
	cfg   Config
	prog  *loop.Program
	mw    *mpiio.Middleware
	nodes []*ionode.Node

	slots  int
	ioBy   map[psKey][]loop.IOInstance
	procAt []int // current slot per process
	finish []sim.Time
	done   int

	// Slot metadata: nest index and per-iteration compute cost.
	slotNest []int
	slotLoc  []int

	// Barrier between nests.
	barrierNest  int
	barrierCount int
	barrierWait  []func(now sim.Time)

	// Framework state.
	comp   *compiler.Result
	buf    *sched.GlobalBuffer
	agents []*sched.Agent
}

// Fetch implements sched.Fetcher on top of the middleware.
func (ex *executor) Fetch(file int, offset, length int64, done func(now sim.Time)) error {
	return ex.mw.Read(file, offset, length, done)
}

// MinSlot implements sched.LocalClock.
func (ex *executor) MinSlot() int {
	min := ex.slots
	for _, s := range ex.procAt {
		if s < min {
			min = s
		}
	}
	return min
}

func (ex *executor) prepareSlotMeta() {
	ex.slotNest = make([]int, ex.slots)
	ex.slotLoc = make([]int, ex.slots)
	s := 0
	for ni := range ex.prog.Nests {
		base := ex.prog.NestSlotOffset(ex.cfg.Procs, ni)
		next := ex.slots
		if ni+1 < len(ex.prog.Nests) {
			next = ex.prog.NestSlotOffset(ex.cfg.Procs, ni+1)
		}
		for ; s < next && s >= base; s++ {
			ex.slotNest[s] = ni
			ex.slotLoc[s] = s - base
		}
	}
}

// computeCost returns the computation time of one slot for a process.
func (ex *executor) computeCost(proc, slot int) sim.Duration {
	ni := ex.slotNest[slot]
	n := ex.prog.Nests[ni]
	iter, ok := ex.prog.IterOf(ex.cfg.Procs, ni, proc, ex.slotLoc[slot])
	if !ok {
		return 0
	}
	cost := n.IterCost
	for _, st := range n.Body {
		if st.Kind == loop.StmtCompute {
			_ = iter
			cost += st.Cost
		}
	}
	if j := ex.cfg.ComputeJitter; j > 0 && cost > 0 {
		// Deterministic per (seed, proc, slot) multiplier in [1−j, 1+j].
		u := hash01(ex.cfg.Seed, proc, slot)
		cost = sim.Duration(float64(cost) * (1 + j*(2*u-1)))
	}
	return cost
}

// hash01 maps (seed, proc, slot) to a uniform value in [0, 1) using a
// split-mix style integer hash — stable across runs with the same seed.
func hash01(seed int64, proc, slot int) float64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(proc)<<32 ^ uint64(slot)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// pumpAgents lets every scheduler agent retry deferred/blocked fetches.
func (ex *executor) pumpAgents(now sim.Time) {
	for _, a := range ex.agents {
		a.Pump(now)
	}
}

// beginSlot starts process p's execution of slot s: nest barrier, agent
// notification, compute, then the slot's I/O in order.
func (ex *executor) beginSlot(p, s int, now sim.Time) {
	if s >= ex.slots {
		ex.finish[p] = now
		ex.done++
		ex.procAt[p] = ex.slots
		ex.pumpAgents(now)
		return
	}
	// Barrier: entering a new nest waits for all processes.
	ni := ex.slotNest[s]
	if ni > ex.barrierNest && ex.slotLoc[s] == 0 {
		ex.barrierCount++
		ex.barrierWait = append(ex.barrierWait, func(t sim.Time) { ex.runSlot(p, s, t) })
		if ex.barrierCount == ex.cfg.Procs {
			ex.barrierNest = ni
			ex.barrierCount = 0
			waiters := ex.barrierWait
			ex.barrierWait = nil
			for _, w := range waiters {
				w := w
				ex.eng.Schedule(0, "cluster.barrier-release", w)
			}
		}
		return
	}
	ex.runSlot(p, s, now)
}

func (ex *executor) runSlot(p, s int, now sim.Time) {
	ex.procAt[p] = s
	if len(ex.agents) > 0 {
		ex.agents[p].AdvanceTo(s, now)
		ex.pumpAgents(now)
	}
	cost := ex.computeCost(p, s)
	ex.eng.Schedule(cost, "cluster.compute", func(t sim.Time) {
		ex.runIO(p, s, 0, t)
	})
}

// runIO executes the i-th I/O instance of (p, s), then advances.
func (ex *executor) runIO(p, s, i int, now sim.Time) {
	insts := ex.ioBy[psKey{p, s}]
	if i >= len(insts) {
		ex.beginSlot(p, s+1, now)
		return
	}
	inst := insts[i]
	next := func(t sim.Time) { ex.runIO(p, s, i+1, t) }
	switch inst.Kind {
	case loop.StmtWrite:
		if err := ex.mw.Write(inst.File, inst.Offset, inst.Length, next); err != nil {
			ex.eng.Schedule(0, "cluster.io-err", next)
		}
	case loop.StmtRead:
		if ex.comp != nil {
			if id, ok := ex.comp.AccessFor(inst); ok {
				// Resident data is a hit; an in-flight prefetch makes the
				// read wait for the delivery instead of duplicating the
				// disk access.
				hit := ex.buf.WaitConsume(id, func() {
					ex.eng.Schedule(ex.cfg.BufferHitTime, "cluster.buffer-hit", func(t sim.Time) {
						ex.pumpAgents(t)
						next(t)
					})
				})
				if hit {
					return
				}
			}
		}
		if err := ex.mw.Read(inst.File, inst.Offset, inst.Length, next); err != nil {
			ex.eng.Schedule(0, "cluster.io-err", next)
		}
	default:
		ex.eng.Schedule(0, "cluster.io-skip", next)
	}
}

func (ex *executor) allDone() bool { return ex.done == ex.cfg.Procs }

func (ex *executor) maxFinish() sim.Time {
	var max sim.Time
	for _, f := range ex.finish {
		if f > max {
			max = f
		}
	}
	return max
}

// teeRecorder fans idle gaps out to two recorders.
type teeRecorder struct {
	a, b disk.IdleRecorder
}

func (t teeRecorder) RecordIdle(d *disk.Disk, gap sim.Duration) {
	t.a.RecordIdle(d, gap)
	t.b.RecordIdle(d, gap)
}
