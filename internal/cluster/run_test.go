package cluster

import (
	"testing"

	"sdds/internal/loop"
	"sdds/internal/power"
	"sdds/internal/sim"
)

// smallProgram: produce-then-consume with a compute gap, sized for fast
// tests.
func smallProgram() *loop.Program {
	return &loop.Program{
		Name:  "small",
		Files: []loop.File{{ID: 0, Name: "a", Size: 8 << 20}, {ID: 1, Name: "b", Size: 8 << 20}},
		Nests: []loop.Nest{
			{Name: "produce", Trips: 64, Parallel: true, IterCost: sim.MilliToTime(5),
				Body: []loop.Stmt{{Kind: loop.StmtWrite, File: 0, Region: loop.Affine{IterCoef: 64 << 10, Len: 64 << 10}}}},
			{Name: "think", Trips: 32, Parallel: true, IterCost: sim.MilliToTime(200),
				Body: []loop.Stmt{{Kind: loop.StmtCompute, Cost: sim.MilliToTime(100)}}},
			{Name: "consume", Trips: 64, Parallel: true, IterCost: sim.MilliToTime(5),
				Body: []loop.Stmt{
					{Kind: loop.StmtRead, File: 0, Region: loop.Affine{IterCoef: 64 << 10, Len: 64 << 10}},
					{Kind: loop.StmtRead, File: 1, Region: loop.Affine{IterCoef: 32 << 10, Len: 32 << 10}, Every: 2},
				}},
		},
	}
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Procs = 8
	return cfg
}

func TestRunDefaultPolicy(t *testing.T) {
	res, err := Run(smallProgram(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime <= 0 {
		t.Fatal("zero exec time")
	}
	if res.EnergyJ <= 0 {
		t.Fatal("zero energy")
	}
	if len(res.NodeEnergyJ) != 8 {
		t.Fatalf("node energies = %d", len(res.NodeEnergyJ))
	}
	var sum float64
	for _, j := range res.NodeEnergyJ {
		if j <= 0 {
			t.Fatal("node with zero energy")
		}
		sum += j
	}
	if diff := sum - res.EnergyJ; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("node energies sum %v != total %v", sum, res.EnergyJ)
	}
	if res.Idle.Count() == 0 {
		t.Fatal("no idle gaps recorded")
	}
	if res.DiskRequests == 0 {
		t.Fatal("no disk requests")
	}
	if res.Compile != nil {
		t.Fatal("compile result present without scheduling")
	}
}

func TestRunValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Procs = 0
	if _, err := Run(smallProgram(), cfg); err == nil {
		t.Fatal("zero procs accepted")
	}
	if _, err := Run(&loop.Program{}, smallConfig()); err == nil {
		t.Fatal("invalid program accepted")
	}
	cfg = smallConfig()
	cfg.BufferBytes = 0
	if _, err := Run(smallProgram(), cfg); err == nil {
		t.Fatal("zero buffer accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := Run(smallProgram(), smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.ExecTime != b.ExecTime || a.EnergyJ != b.EnergyJ || a.DiskRequests != b.DiskRequests {
		t.Fatalf("nondeterministic: %v/%v J=%v/%v", a.ExecTime, b.ExecTime, a.EnergyJ, b.EnergyJ)
	}
}

func TestRunWithScheduling(t *testing.T) {
	cfg := smallConfig()
	cfg.Scheduling = true
	res, err := Run(smallProgram(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compile == nil {
		t.Fatal("no compile result")
	}
	if res.BufferHits == 0 {
		t.Fatal("scheduling produced no buffer hits")
	}
	if res.Compile.Schedule.Len() == 0 {
		t.Fatal("empty schedule")
	}
}

func TestSchedulingLengthensIdlePeriods(t *testing.T) {
	base, err := Run(smallProgram(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.Scheduling = true
	sched, err := Run(smallProgram(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The core claim of the paper: the CDF shifts right — the fraction of
	// short gaps decreases.
	if bf, sf := base.Idle.FracAtMost(100), sched.Idle.FracAtMost(100); sf > bf {
		t.Fatalf("short-gap fraction grew with scheduling: %.3f → %.3f", bf, sf)
	}
	if sched.Idle.Mean() < base.Idle.Mean() {
		t.Fatalf("mean idle gap shrank with scheduling: %v → %v", base.Idle.Mean(), sched.Idle.Mean())
	}
}

func TestPoliciesRunOnAllKinds(t *testing.T) {
	for _, k := range power.AllKinds() {
		cfg := smallConfig()
		cfg.Policy = power.Config{Kind: k}
		res, err := Run(smallProgram(), cfg)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if res.Policy != k {
			t.Fatalf("result policy = %v", res.Policy)
		}
		if res.EnergyJ <= 0 || res.ExecTime <= 0 {
			t.Fatalf("%v: degenerate result", k)
		}
	}
}

func TestBarrierSeparatesNests(t *testing.T) {
	// One process has much more compute in nest 0 than the others
	// (ragged trips); nest 1 must still start together. With barriers, the
	// writer-before-reader slot ordering holds globally, which we check
	// indirectly: a scheduled run never errors and completes.
	p := smallProgram()
	p.Nests[0].Trips = 40 // ragged over 8 procs: chunk 5, last proc shorter
	cfg := smallConfig()
	cfg.Scheduling = true
	if _, err := Run(p, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMultiSpeedReducesEnergyOnThisWorkload(t *testing.T) {
	// Repeating multi-second gaps: sparse reads separated by heavy compute,
	// so the history policy's EWMA learns the gap length and exploits it.
	p := &loop.Program{
		Name:  "gappy",
		Files: []loop.File{{ID: 0, Name: "a", Size: 64 << 20}},
		Nests: []loop.Nest{{
			Name: "sparse", Trips: 160, Parallel: true, IterCost: 3 * sim.Second,
			Body: []loop.Stmt{{Kind: loop.StmtRead, File: 0, Region: loop.Affine{IterCoef: 64 << 10, Len: 64 << 10}}},
		}},
	}
	cfg := smallConfig()
	base, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = power.Config{Kind: power.KindHistory}
	hist, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hist.RPMShifts == 0 {
		t.Fatal("history policy never shifted speeds despite regular long gaps")
	}
	if hist.EnergyJ >= base.EnergyJ {
		t.Fatalf("history-based policy saved nothing: %v ≥ %v J", hist.EnergyJ, base.EnergyJ)
	}
}

func TestChunkConservationWithoutScheduling(t *testing.T) {
	// Without scheduling, every application read reaches the I/O nodes: the
	// storage-cache probe count (hits + misses) must equal the number of
	// stripe chunks the program's read instances decompose into.
	prog := smallProgram()
	cfg := smallConfig()
	res, err := Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var chunks int64
	for _, inst := range prog.Instances(cfg.Procs) {
		if inst.Kind == loop.StmtRead {
			// Offsets wrap at the file size, preserving chunk counts.
			chunks += int64(len(cfg.Layout.Chunks(inst.Offset%(8<<20), inst.Length)))
		}
	}
	if res.StorageCacheHits+res.StorageCacheMisses != chunks {
		t.Fatalf("node read calls %d != expected chunks %d",
			res.StorageCacheHits+res.StorageCacheMisses, chunks)
	}
}
