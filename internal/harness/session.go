package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"sdds/internal/cluster"
	"sdds/internal/compilecache"
	"sdds/internal/diag"
	"sdds/internal/loop"
	"sdds/internal/power"
	"sdds/internal/probe"
	"sdds/internal/workloads"
)

// runSpec couples a cache key with the config mutation it denotes.
type runSpec struct {
	app        string
	kind       power.Kind
	scheduling bool
	variant    string
	mutate     func(*cluster.Config)
}

// defaultSpec is a run under the unmodified Table II cluster config.
func defaultSpec(app string, kind power.Kind, scheduling bool) runSpec {
	return runSpec{app: app, kind: kind, scheduling: scheduling}
}

// variantSpec is a run under a mutated cluster config; tag canonically
// names the mutation (e.g. "nodes=16", "delta=40", "cache=32MB").
func variantSpec(app string, kind power.Kind, scheduling bool, tag string, mutate func(*cluster.Config)) runSpec {
	return runSpec{app: app, kind: kind, scheduling: scheduling, variant: tag, mutate: mutate}
}

// key renders the spec as a canonical Request — the session cache key.
// Two runs with equal keys are guaranteed identical (the simulator is
// deterministic in its inputs), so the session executes each distinct key
// exactly once. Variant tags are canonicalized here (defaults dropped,
// elements sorted), which is what lets experiments share runs (fig14a
// and fig14b both use "theta=N"), lets a sweep point that restates a
// default (cachesens' "cache=64MB") share the unmodified-config run, and
// lets service-submitted and shard-distributed requests share cache
// slots and store entries with in-process plans.
func (sp runSpec) key(c Config) Request {
	v := sp.variant
	if canon, err := canonVariant(v); err == nil {
		v = canon
	}
	return Request{
		App:        sp.app,
		Policy:     sp.kind.String(),
		Scheduling: sp.scheduling,
		Scale:      c.Scale,
		Seed:       c.Seed,
		Variant:    v,
		Faults:     c.Faults.Canon(),
	}
}

// tag renders the spec for progress lines: "sar/history+sched (theta=4)".
func (sp runSpec) tag() string {
	s := sp.app + "/" + sp.kind.String()
	if sp.scheduling {
		s += "+sched"
	}
	if sp.variant != "" {
		s += " (" + sp.variant + ")"
	}
	return s
}

// build resolves the spec to its simulation inputs: the scaled workload
// program and the derived cluster config. It is the single translation
// from the canonical request model to cluster.RunContext arguments —
// Request.BuildRun and the session workers share it.
func (sp runSpec) build(c Config) (*loop.Program, cluster.Config, error) {
	spec, err := workloads.ByName(sp.app)
	if err != nil {
		return nil, cluster.Config{}, err
	}
	prog := spec.Build(c.Scale)
	cfg := cluster.DefaultConfig()
	cfg.Seed = c.Seed
	cfg.Policy = power.Config{Kind: sp.kind}
	cfg.Scheduling = sp.scheduling
	cfg.Faults = c.Faults
	if sp.mutate != nil {
		sp.mutate(&cfg)
	}
	return prog, cfg, nil
}

// simulate builds and executes the spec's cluster run through the
// session's shared-prefix machinery: the run's (app, scale, procs) Setup
// is resolved through the setup cache (built once per sweep group, forked
// per variant) and the compile pass goes through the session's compile
// cache when one is enabled. The session probe is attached so the run's
// compile/simulate spans land in the session trace.
func (s *Session) simulate(ctx context.Context, c Config, sp runSpec) (*cluster.Result, error) {
	prog, cfg, err := sp.build(c)
	if err != nil {
		return nil, err
	}
	cfg.Probe = s.probe
	if s.compileCache != nil {
		cfg.CompileCache = s.compileCache
	}
	setup, err := s.setupFor(ctx, setupKey{app: sp.app, scale: c.Scale, procs: cfg.Procs}, prog)
	if err != nil {
		return nil, err
	}
	return cluster.RunPrepared(ctx, setup, cfg)
}

// panicError is a worker panic converted to a per-run error. It keeps the
// panic value and stack addressable with errors.As, so the diagnostics
// layer can classify the failure as a panic (and capture a bundle tagged
// accordingly) without parsing the message.
type panicError struct {
	tag   string
	value any
	stack []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("harness: run %s panicked: %v\n%s", e.tag, e.value, e.stack)
}

// safeSimulate runs the spec's simulation, converting a panic anywhere in
// the compile or event loop into a per-run error carrying the stack. One
// misbehaving configuration then fails only its own run; sibling runs on
// the worker pool complete normally.
func (s *Session) safeSimulate(ctx context.Context, c Config, sp runSpec) (res *cluster.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &panicError{tag: sp.tag(), value: r, stack: debug.Stack()}
		}
	}()
	return s.simulate(ctx, c, sp)
}

// setupKey identifies one shared pre-simulation snapshot: sweep variants
// that agree on workload, scale and process count fork off one Setup.
type setupKey struct {
	app   string
	scale float64
	procs int
}

// setupEntry is a singleflight cell for one Setup build.
type setupEntry struct {
	done  chan struct{}
	setup *cluster.Setup
	err   error
}

// setupFor resolves the shared Setup for key through the session's setup
// cache: the first run of a sweep group builds it, every sibling variant
// waits and then forks off the same immutable snapshot. Build errors are
// deterministic properties of (app, scale, procs) and are cached like
// results.
func (s *Session) setupFor(ctx context.Context, key setupKey, prog *loop.Program) (*cluster.Setup, error) {
	s.setupMu.Lock()
	if e, ok := s.setups[key]; ok {
		s.setupMu.Unlock()
		select {
		case <-e.done:
			return e.setup, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &setupEntry{done: make(chan struct{})}
	s.setups[key] = e
	s.setupMu.Unlock()
	e.setup, e.err = cluster.NewSetup(prog, key.procs)
	close(e.done)
	return e.setup, e.err
}

// Progress is one run-level progress event, delivered after each planned
// run of a Prime/Run/RunAll call resolves.
type Progress struct {
	// Done and Total count resolved vs. planned runs of the current call.
	Done, Total int
	// Hits counts runs of the current call resolved from the session cache
	// (including waits on a run another experiment had in flight).
	Hits int
	// Key names the run, e.g. "sar/history+sched (theta=4)".
	Key string
	// Elapsed is the wall-clock duration of this run (≈0 on a cache hit).
	Elapsed time.Duration
	// Hit reports whether this run was a cache hit.
	Hit bool
	// Err is the run's error, if it failed (cancellation included).
	Err error
	// Metrics is the run's counter/gauge snapshot (nil when the run
	// failed). Cache hits carry the metrics of the original execution.
	Metrics []probe.Metric
	// FromJournal reports whether a hit was served from an entry a resumed
	// journal preloaded (a cross-process store hit) rather than from a run
	// this session executed.
	FromJournal bool
	// CompileProv names where the run's compile pass came from
	// ("compiled", "memo", "restored", "uncacheable"); empty for
	// scheduling-off runs and journal-restored results (the journal does
	// not record compiler output).
	CompileProv string
}

// ProgressFunc observes session progress. Calls are serialized; the
// callback must not invoke Prime/Run/RunAll on the same session.
type ProgressFunc func(Progress)

// SessionOptions configures NewSession.
type SessionOptions struct {
	// Workers bounds concurrent cluster simulations; ≤0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, receives a run-level event stream.
	Progress ProgressFunc
	// Probe, when non-nil, records session phase spans (plan derivation,
	// per-run execution) and is handed to every cluster run so compile and
	// simulate phases appear in the same trace. Because the worker pool is
	// concurrent it must be span-only (probe.NewSpanProbe); a ring-bearing
	// probe would race on record storage.
	Probe *probe.Probe
	// RunTimeout, when positive, bounds each cluster simulation's wall
	// time. A run that exceeds it fails with an error wrapping
	// context.DeadlineExceeded — and, unlike a parent cancellation, the
	// failure is cached: the deadline is a property of the configuration
	// at this timeout, so waiters and retries see the same verdict.
	RunTimeout time.Duration
	// Journal, when non-nil, records every successfully simulated run
	// (fsynced per append) and seeds the session cache with the entries a
	// resumed journal loaded, so an interrupted sweep re-executes only the
	// missing configurations.
	Journal *Journal
	// CompileCache, when non-nil, is the shared compile-artifact cache
	// every scheduled run resolves its compile pass through — share one
	// across sessions (or back it with a persistent store) to reuse
	// artifacts beyond this session's lifetime. When nil the session
	// creates its own in-process cache.
	CompileCache *compilecache.Cache
	// DisableCompileCache compiles every scheduled run inline (the
	// pre-cache behaviour); for A/B measurement and ablation.
	DisableCompileCache bool
	// Diag, when non-nil, arms automatic diagnostics capture: every run
	// that fails, times out, or panics — and, when the recorder's
	// slow-run watchdog is armed, every run far slower than the rolling
	// median — is captured as a content-addressed bundle. Capture happens
	// after the run's result is fully collected, so it cannot perturb
	// simulation output; capture failures are logged, never surfaced as
	// run errors.
	Diag *diag.Recorder
	// Log, when non-nil, receives one structured event per executed run
	// (request_key, elapsed_ms, outcome) plus capture events. Per-run,
	// not per-simulation-event: the probe hot path stays allocation-free.
	Log *slog.Logger
}

// Session owns a run cache and a bounded worker pool for executing
// experiments. Methods are safe for concurrent use: overlapping
// Run/RunAll calls share the cache, and singleflight deduplication
// guarantees each distinct configuration is simulated at most once per
// session regardless of interleaving.
//
// A Session replaces the former package-global run memo; create one per
// logical batch of experiments (or use DefaultSession for the
// compatibility entry points).
type Session struct {
	workers    int
	progress   ProgressFunc
	probe      *probe.Probe   // span-only session trace; nil when untraced
	sem        chan struct{}  // worker-pool slots; len == workers
	runTimeout time.Duration  // per-run deadline; 0 = none
	journal    *Journal       // crash-safe result journal; nil = none
	diag       *diag.Recorder // diagnostics capture; nil = disabled
	log        *slog.Logger   // per-run structured log; nil = silent

	progMu sync.Mutex // serializes RunRequest progress emissions

	mu        sync.Mutex
	memo      map[Request]*memoEntry
	preloaded int // runs seeded from a resumed journal

	// compileCache memoizes compile artifacts across the worker pool (and,
	// when store-backed, across processes); nil when disabled.
	compileCache *compilecache.Cache
	// setups shares the pre-simulation Setup per (app, scale, procs).
	setupMu sync.Mutex
	setups  map[setupKey]*setupEntry

	simulated atomic.Int64 // cluster runs actually executed
	hits      atomic.Int64 // cache hits (completed or in-flight)
}

// memoEntry is a singleflight cell: the first goroutine to claim a key
// simulates it; everyone else waits on done.
type memoEntry struct {
	done chan struct{}
	res  *cluster.Result
	err  error
	// preloaded marks entries seeded from a resumed journal, so hits on
	// them report store provenance instead of in-process provenance.
	preloaded bool
}

// errAbandoned marks an entry whose owner was cancelled before the
// simulation ran; waiters retry (and re-claim) instead of inheriting the
// owner's cancellation.
var errAbandoned = errors.New("harness: run abandoned by cancelled owner")

// NewSession returns a Session with its own empty run cache.
func NewSession(o SessionOptions) *Session {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	s := &Session{
		workers:    w,
		progress:   o.Progress,
		probe:      o.Probe,
		sem:        make(chan struct{}, w),
		runTimeout: o.RunTimeout,
		journal:    o.Journal,
		diag:       o.Diag,
		log:        o.Log,
		memo:       make(map[Request]*memoEntry),
		setups:     make(map[setupKey]*setupEntry),
	}
	if !o.DisableCompileCache {
		if o.CompileCache != nil {
			s.compileCache = o.CompileCache
		} else {
			s.compileCache = compilecache.New()
		}
	}
	if o.Journal != nil {
		s.preloaded = o.Journal.preload(s.memo)
	}
	return s
}

// CompileCacheStats snapshots the session's compile-cache counters; the
// zero Stats when the cache is disabled.
func (s *Session) CompileCacheStats() compilecache.Stats {
	if s.compileCache == nil {
		return compilecache.Stats{}
	}
	return s.compileCache.Stats()
}

// SetupGroups reports how many distinct (app, scale, procs) setup
// snapshots the session has built — the sweep groups sharing a
// pre-simulation fork point.
func (s *Session) SetupGroups() int {
	s.setupMu.Lock()
	defer s.setupMu.Unlock()
	return len(s.setups)
}

// Preloaded reports how many runs the session cache was seeded with from
// a resumed journal.
func (s *Session) Preloaded() int { return s.preloaded }

var (
	defaultOnce sync.Once
	defaultSess *Session
)

// DefaultSession returns the lazily-created process-wide session backing
// the compatibility entry points (Experiment.Run, Table3, MemoSize, ...).
// New code should create its own Session with NewSession.
func DefaultSession() *Session {
	defaultOnce.Do(func() { defaultSess = NewSession(SessionOptions{}) })
	return defaultSess
}

// Workers reports the worker-pool bound.
func (s *Session) Workers() int { return s.workers }

// MemoSize reports how many distinct configurations the session has
// resolved (or has in flight).
func (s *Session) MemoSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.memo)
}

// Stats reports lifetime counters: cluster simulations actually executed
// and cache hits served.
func (s *Session) Stats() (simulated, hits int64) {
	return s.simulated.Load(), s.hits.Load()
}

// runOutcome reports how run resolved a spec: served from the session
// cache or simulated fresh, and — for hits — whether the entry came from
// a resumed journal rather than a run this session executed.
type runOutcome struct {
	hit         bool
	fromJournal bool
}

// run resolves one spec through the cache, simulating it under a worker
// slot if this call is the first to want it.
func (s *Session) run(ctx context.Context, c Config, sp runSpec) (*cluster.Result, runOutcome, error) {
	key := sp.key(c)
	for {
		if err := ctx.Err(); err != nil {
			return nil, runOutcome{}, err
		}
		s.mu.Lock()
		if e, ok := s.memo[key]; ok {
			s.mu.Unlock()
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, runOutcome{}, ctx.Err()
			}
			if errors.Is(e.err, errAbandoned) {
				continue // owner cancelled before simulating; re-claim
			}
			s.hits.Add(1)
			return e.res, runOutcome{hit: true, fromJournal: e.preloaded}, e.err
		}
		e := &memoEntry{done: make(chan struct{})}
		s.memo[key] = e
		s.mu.Unlock()
		res, err := s.execute(ctx, c, sp, key, e)
		return res, runOutcome{}, err
	}
}

// execute runs a claimed entry under a worker-pool slot.
func (s *Session) execute(ctx context.Context, c Config, sp runSpec, key Request, e *memoEntry) (*cluster.Result, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.abandon(key, e)
		return nil, ctx.Err()
	}
	defer func() { <-s.sem }()
	if err := ctx.Err(); err != nil {
		s.abandon(key, e)
		return nil, err
	}
	runCtx := ctx
	cancel := func() {}
	if s.runTimeout > 0 {
		runCtx, cancel = context.WithTimeout(ctx, s.runTimeout)
	}
	start := time.Now() //sddsvet:ignore detflow -- wall-clock run timing for the watchdog and log, not simulated time
	res, err := s.safeSimulate(runCtx, c, sp)
	elapsed := time.Since(start) //sddsvet:ignore detflow -- wall-clock run timing for the watchdog and log, not simulated time
	cancel()
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		if ctx.Err() != nil {
			// Cancellation is a property of this call's context, not of the
			// configuration; don't poison the cache with it. And it says
			// nothing about the run, so no diagnostics are captured either.
			s.abandon(key, e)
			return nil, err
		}
		// The per-run deadline fired: that IS a property of the
		// configuration (at this timeout), so cache the failure — waiters
		// and retries should see the same verdict, not re-simulate.
		err = fmt.Errorf("harness: run %s exceeded the %v per-run deadline: %w", sp.tag(), s.runTimeout, err)
	}
	e.res, e.err = res, err
	close(e.done)
	s.simulated.Add(1)
	s.finishRun(key, res, err, elapsed)
	if err == nil && s.journal != nil {
		if jerr := s.journal.append(key, res); jerr != nil {
			// The run itself succeeded and stays cached; surface the
			// journal failure to this caller so the sweep stops cleanly
			// (a dead journal cannot protect a crash-resume).
			return res, jerr
		}
	}
	return res, err
}

// finishRun is the diagnostics tail of every executed (non-abandoned)
// run: it classifies the outcome, logs it, feeds the slow-run watchdog,
// and captures a bundle when the outcome warrants one. It runs strictly
// after the run's result is final — nothing here can influence what the
// caller or the cache sees.
func (s *Session) finishRun(key Request, res *cluster.Result, err error, elapsed time.Duration) {
	trigger := ""
	var median time.Duration
	if err == nil {
		if slow, m := s.diag.Watchdog().Observe(elapsed); slow {
			trigger, median = diag.TriggerSlow, m
		}
	} else {
		var pe *panicError
		switch {
		case errors.As(err, &pe):
			trigger = diag.TriggerPanic
		case errors.Is(err, context.DeadlineExceeded):
			trigger = diag.TriggerTimeout
		default:
			trigger = diag.TriggerError
		}
	}
	if s.log != nil {
		if err != nil {
			s.log.Error("run failed", "request_key", key.Key(), "trigger", trigger,
				"elapsed_ms", elapsed.Milliseconds(), "err", err.Error())
		} else {
			attrs := []any{"request_key", key.Key(), "elapsed_ms", elapsed.Milliseconds()}
			if res != nil {
				attrs = append(attrs, "compile", res.CompileProvenance.String())
			}
			if trigger == diag.TriggerSlow {
				attrs = append(attrs, "slow", true, "median_ms", median.Milliseconds())
			}
			s.log.Info("run complete", attrs...)
		}
	}
	if trigger != "" && s.diag != nil {
		s.captureRun(trigger, key, res, err, elapsed, median)
	}
}

// captureRun assembles the diagnostics capture for one run: the canonical
// request (resubmitting it reproduces the run exactly — the simulator is
// deterministic in its inputs), the result evidence when there is any,
// the session's caches' state, the journal tail, and the session trace.
// Capture errors are the recorder's to log; a failed capture never fails
// the run it was documenting.
func (s *Session) captureRun(trigger string, key Request, res *cluster.Result, err error, elapsed, median time.Duration) {
	c := diag.Capture{
		Trigger:      trigger,
		Key:          key.Key(),
		ContentKey:   key.ContentKey(),
		Err:          err,
		Request:      key.canonical(),
		CompileCache: s.CompileCacheStats(),
		ElapsedMS:    elapsed.Milliseconds(),
		MedianMS:     median.Milliseconds(),
	}
	if res != nil {
		c.Result = NewRunRecord(res)
		c.Metrics = res.Metrics
		c.Faults = res.Faults
	}
	if s.journal != nil {
		c.JournalTail = s.journal.Tail(8)
	}
	if p := s.probe; p != nil {
		c.Trace = func(w io.Writer) error {
			return probe.WriteChromeTrace(w, p, probe.ChromeOptions{})
		}
	}
	s.diag.Capture(c)
}

// abandon releases a claimed-but-unsimulated entry so other waiters can
// re-claim the key under their own contexts.
func (s *Session) abandon(key Request, e *memoEntry) {
	s.mu.Lock()
	delete(s.memo, key)
	s.mu.Unlock()
	e.err = errAbandoned
	close(e.done)
}

// planFor derives the complete distinct run plan the experiments need, in
// deterministic order (first experiment to need a key wins its slot).
func planFor(exps []Experiment, c Config) []runSpec {
	seen := make(map[Request]bool)
	var out []runSpec
	for _, e := range exps {
		if e.plan == nil {
			continue
		}
		for _, sp := range e.plan(c) {
			k := sp.key(c)
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, sp)
		}
	}
	return out
}

// Prime derives the run plan for the experiments and executes it over the
// worker pool, warming the session cache so the experiments themselves
// resolve from memory. It returns the first run error (cancellation
// included); the cache keeps whatever completed.
func (s *Session) Prime(ctx context.Context, exps []Experiment, c Config) error {
	c = c.withDefaults()
	planSpan := s.probe.StartSpan(probe.TrackPlan, "derive run plan")
	specs := planFor(exps, c)
	planSpan.End()
	if len(specs) == 0 {
		return ctx.Err()
	}
	var (
		pmu      sync.Mutex
		done     int
		hits     int
		firstErr error
	)
	total := len(specs)
	work := make(chan runSpec)
	var wg sync.WaitGroup
	n := s.workers
	if n > total {
		n = total
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		track := probe.TrackWorkerBase + int32(i)
		go func() {
			defer wg.Done()
			for sp := range work {
				start := time.Now() //sddsvet:ignore detflow -- wall-clock progress telemetry, not simulated time
				runSpan := s.probe.StartSpan(track, sp.tag())
				res, out, err := s.run(ctx, c, sp)
				runSpan.End()
				pmu.Lock()
				done++
				if out.hit {
					hits++
				}
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if s.progress != nil {
					p := Progress{
						Done: done, Total: total, Hits: hits,
						Key: sp.tag(), Elapsed: time.Since(start), //sddsvet:ignore detflow -- wall-clock progress telemetry, not simulated time
						Hit: out.hit, FromJournal: out.fromJournal, Err: err,
					}
					if res != nil {
						p.Metrics = res.Metrics
						p.CompileProv = res.CompileProvenance.String()
					}
					s.progress(p)
				}
				pmu.Unlock()
			}
		}()
	}
feed:
	for _, sp := range specs {
		select {
		case work <- sp:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Run executes one experiment: it primes the experiment's run plan in
// parallel, then renders the result (which resolves from the cache).
func (s *Session) Run(ctx context.Context, e Experiment, c Config) (*Result, error) {
	if e.run == nil {
		return nil, fmt.Errorf("harness: experiment %q has no run function", e.ID)
	}
	c = c.withDefaults()
	if err := s.Prime(ctx, []Experiment{e}, c); err != nil {
		return nil, fmt.Errorf("%s: %w", e.ID, err)
	}
	return e.run(ctx, s, c)
}

// RunAll derives the union plan of all the experiments up front, executes
// it over the worker pool, then renders each experiment in order. On error
// it returns the results completed so far alongside the error.
func (s *Session) RunAll(ctx context.Context, exps []Experiment, c Config) ([]*Result, error) {
	c = c.withDefaults()
	if err := s.Prime(ctx, exps, c); err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(exps))
	for _, e := range exps {
		r, err := e.run(ctx, s, c)
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// RunRequest resolves one canonical Request through the session cache and
// worker pool: a cached key returns immediately, an in-flight key waits on
// the existing execution, and a new key simulates under a worker slot
// (journaled when the session has a store attached). The bool reports
// whether the run was served from cache. A positive Request.TimeoutMS
// bounds this call's wall time without poisoning the cache — unlike the
// session-wide RunTimeout, it is a property of the caller, not of the
// configuration.
func (s *Session) RunRequest(ctx context.Context, req Request) (*cluster.Result, bool, error) {
	sp, c, err := req.plan()
	if err != nil {
		return nil, false, err
	}
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	start := time.Now() //sddsvet:ignore detflow -- wall-clock progress telemetry, not simulated time
	res, out, err := s.run(ctx, c, sp)
	if s.progress != nil {
		p := Progress{
			Done: 1, Total: 1,
			Key: sp.tag(), Elapsed: time.Since(start), //sddsvet:ignore detflow -- wall-clock progress telemetry, not simulated time
			Hit: out.hit, FromJournal: out.fromJournal, Err: err,
		}
		if out.hit {
			p.Hits = 1
		}
		if res != nil {
			p.Metrics = res.Metrics
			p.CompileProv = res.CompileProvenance.String()
		}
		s.progMu.Lock()
		s.progress(p)
		s.progMu.Unlock()
	}
	return res, out.hit, err
}

// Cached reports the session's resolved verdict for req, if it has one:
// the result (or the cached failure) and true, without executing or
// waiting on anything. An unknown or still-in-flight key returns false.
func (s *Session) Cached(req Request) (*cluster.Result, error, bool) {
	sp, c, err := req.plan()
	if err != nil {
		return nil, err, false
	}
	s.mu.Lock()
	e, ok := s.memo[sp.key(c)]
	s.mu.Unlock()
	if !ok {
		return nil, nil, false
	}
	select {
	case <-e.done:
	default:
		return nil, nil, false // still simulating
	}
	if errors.Is(e.err, errAbandoned) {
		return nil, nil, false
	}
	return e.res, e.err, true
}

// InFlight reports how many claimed configurations are still simulating.
func (s *Session) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.memo {
		select {
		case <-e.done:
		default:
			n++
		}
	}
	return n
}
