package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"sdds/internal/harness"
	"sdds/internal/shard"
)

// newShardServer builds a service with the sharded-sweep options under
// test (local fallback disabled unless the test wants it) and mounts it
// on an httptest server.
func newShardServer(t *testing.T, o Options) (*Server, *httptest.Server) {
	t.Helper()
	if o.StorePath == "" {
		o.StorePath = filepath.Join(t.TempDir(), "store.jsonl")
	}
	s, err := NewServer(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// sessionExec adapts a harness session to the worker executor.
func sessionExec(sess *harness.Session) shard.Executor {
	return func(ctx context.Context, req harness.Request) (harness.RunRecord, error) {
		res, _, err := sess.RunRequest(ctx, req)
		if err != nil {
			return harness.RunRecord{}, err
		}
		return harness.NewRunRecord(res), nil
	}
}

// TestShardEndpointsNoSweep pins the no-active-sweep surface: workers
// wait on lease, drop shards on renew, status is inactive — and a
// completion arriving after a coordinator restart is still committed
// straight to the store, never thrown away.
func TestShardEndpointsNoSweep(t *testing.T) {
	s, ts := newShardServer(t, Options{LocalGrace: -1, Workers: 1})
	ctx := context.Background()
	cl := &shard.Client{BaseURL: ts.URL}

	lease, err := cl.Lease(ctx, "w1")
	if err != nil || lease.Status != shard.StatusWait {
		t.Fatalf("lease with no sweep: %+v, %v", lease, err)
	}
	renew, err := cl.Renew(ctx, shard.RenewRequest{Worker: "w1", ShardID: "x", LeaseID: "x#1"})
	if err != nil || renew.Status != shard.StatusDone {
		t.Fatalf("renew with no sweep: %+v, %v", renew, err)
	}
	snap, err := cl.Status(ctx)
	if err != nil || snap.Active {
		t.Fatalf("status with no sweep: %+v, %v", snap, err)
	}

	// Orphaned completion: committed to the store anyway.
	req, err := harness.Request{App: "sar", Scale: 0.02, Seed: 7}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	comp, err := cl.Complete(ctx, shard.CompleteRequest{
		Worker: "w1", ShardID: "x", LeaseID: "x#1",
		Results: []shard.RunEntry{{Request: req, Result: harness.RunRecord{EnergyJ: 3}}},
	})
	if err != nil || comp.Status != shard.StatusDuplicate || comp.Stored != 1 {
		t.Fatalf("orphaned completion: %+v, %v", comp, err)
	}
	if s.journal.Len() != 1 {
		t.Fatalf("store holds %d entries, want the orphaned result", s.journal.Len())
	}
}

// TestShardSubmitValidation pins submit-side rejections: empty plans,
// invalid requests, and double submission while a sweep is active.
func TestShardSubmitValidation(t *testing.T) {
	_, ts := newShardServer(t, Options{LocalGrace: -1, Workers: 1})
	ctx := context.Background()
	cl := &shard.Client{BaseURL: ts.URL}

	if _, err := cl.Submit(ctx, shard.SubmitRequest{}); err == nil {
		t.Fatal("empty plan accepted")
	}
	if _, err := cl.Submit(ctx, shard.SubmitRequest{
		Requests: []harness.Request{{App: "nosuch"}},
	}); err == nil {
		t.Fatal("invalid request accepted")
	}
	req, err := harness.Request{App: "sar", Scale: 0.02, Seed: 7}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cl.Submit(ctx, shard.SubmitRequest{Requests: []harness.Request{req}})
	if err != nil || sub.Shards != 1 {
		t.Fatalf("submit: %+v, %v", sub, err)
	}
	// The sweep is active (no worker will drain it): resubmission conflicts.
	if _, err := cl.Submit(ctx, shard.SubmitRequest{Requests: []harness.Request{req}}); err == nil {
		t.Fatal("second submit accepted while a sweep is active")
	} else if !strings.Contains(err.Error(), "already active") {
		t.Fatalf("conflict error: %v", err)
	}
}

// TestShardedGoldenByteIdentical is the tentpole acceptance test: the 24
// golden configs executed as a sharded sweep by two workers — each with
// its own session, talking HTTP to the coordinator — merge back
// byte-identical (as canonical RunRecord JSON) to direct single-process
// session runs.
func TestShardedGoldenByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("48 golden simulations; skipped in -short")
	}
	_, ts := newShardServer(t, Options{LocalGrace: -1, LeaseTTL: 30 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	cl := &shard.Client{BaseURL: ts.URL}

	golden := goldenRequests()
	sub, err := cl.Submit(ctx, shard.SubmitRequest{Requests: golden, ShardSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Requests != 24 || sub.Shards != 8 {
		t.Fatalf("submit summary: %+v", sub)
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		w := &shard.Worker{
			API:          cl,
			Exec:         sessionExec(harness.NewSession(harness.SessionOptions{})),
			Name:         fmt.Sprintf("w%d", i+1),
			Poll:         50 * time.Millisecond,
			ExitWhenDone: true,
			JournalDir:   t.TempDir(),
		}
		wg.Add(1)
		go func(i int, w *shard.Worker) {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}(i, w)
	}
	snap, err := cl.WaitDone(ctx, 100*time.Millisecond)
	if err != nil {
		t.Fatalf("sweep failed: %v (%+v)", err, snap)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i+1, err)
		}
	}
	if snap.Completed != 8 || snap.Stored != 24 || len(snap.Workers) != 2 {
		t.Fatalf("final snapshot: %+v", snap)
	}

	direct := harness.NewSession(harness.SessionOptions{})
	for _, req := range golden {
		norm, err := req.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		_, rec, err := cl.Run(ctx, norm.ContentKey())
		if err != nil {
			t.Fatalf("%s: collecting merged result: %v", norm.Key(), err)
		}
		res, _, err := direct.RunRequest(ctx, req)
		if err != nil {
			t.Fatalf("%s: direct run: %v", norm.Key(), err)
		}
		want, err := json.Marshal(harness.NewRunRecord(res))
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: sharded result diverges from direct run\nsharded: %s\ndirect:  %s",
				norm.Key(), got, want)
		}
	}
}

// TestShardChaosKillWorker is the chaos acceptance test: a worker
// holding a shard dies mid-execution (its context is cut, heartbeats
// stop, the lease expires), a second worker picks the shard up, and the
// merged results are still byte-identical to direct runs — with the
// requeue visible in the coordinator counters.
func TestShardChaosKillWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("golden simulations; skipped in -short")
	}
	_, ts := newShardServer(t, Options{LocalGrace: -1, LeaseTTL: 500 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	cl := &shard.Client{BaseURL: ts.URL}

	reqs := goldenRequests()[:4]
	if _, err := cl.Submit(ctx, shard.SubmitRequest{Requests: reqs, ShardSize: 2}); err != nil {
		t.Fatal(err)
	}

	// The victim's Exec never finishes: it blocks until the worker's
	// context is cut — the in-process stand-in for SIGKILL mid-simulation.
	victimCtx, killVictim := context.WithCancel(ctx)
	defer killVictim()
	victim := &shard.Worker{
		API:  cl,
		Name: "victim",
		Poll: 20 * time.Millisecond,
		Exec: func(ctx context.Context, _ harness.Request) (harness.RunRecord, error) {
			<-ctx.Done()
			return harness.RunRecord{}, ctx.Err()
		},
	}
	victimExited := make(chan struct{})
	go func() {
		defer close(victimExited)
		victim.Run(victimCtx)
	}()

	// Wait until the victim actually holds a lease, then kill it.
	for {
		snap, err := cl.Status(ctx)
		if err != nil {
			t.Fatal(err)
		}
		leased := false
		for _, sh := range snap.Shards {
			if sh.Worker == "victim" && sh.State == string(shard.Leased) {
				leased = true
			}
		}
		if leased {
			break
		}
		if ctx.Err() != nil {
			t.Fatal("victim never leased a shard")
		}
		time.Sleep(10 * time.Millisecond)
	}
	killVictim()
	<-victimExited

	rescuer := &shard.Worker{
		API:          cl,
		Exec:         sessionExec(harness.NewSession(harness.SessionOptions{})),
		Name:         "rescuer",
		Poll:         20 * time.Millisecond,
		ExitWhenDone: true,
	}
	if err := rescuer.Run(ctx); err != nil {
		t.Fatalf("rescuer: %v", err)
	}
	snap, err := cl.WaitDone(ctx, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("sweep failed: %v (%+v)", err, snap)
	}
	if snap.Requeues < 1 {
		t.Fatalf("no requeue recorded after worker death: %+v", snap)
	}
	if snap.Stored != len(reqs) || snap.Completed != 2 {
		t.Fatalf("final snapshot: %+v", snap)
	}

	direct := harness.NewSession(harness.SessionOptions{})
	for _, req := range reqs {
		norm, _ := req.Normalize()
		_, rec, err := cl.Run(ctx, norm.ContentKey())
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := direct.RunRequest(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(harness.NewRunRecord(res))
		got, _ := json.Marshal(rec)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: post-chaos result diverges from direct run\nsharded: %s\ndirect:  %s",
				norm.Key(), got, want)
		}
	}
}

// TestShardLocalFallback pins graceful degradation: with no worker ever
// registering, the sweep completes through the in-process fallback
// worker after the grace period.
func TestShardLocalFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a run; skipped in -short")
	}
	_, ts := newShardServer(t, Options{LocalGrace: 50 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cl := &shard.Client{BaseURL: ts.URL}

	req, err := harness.Request{App: "sar", Scale: 0.02, Seed: 7}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Submit(ctx, shard.SubmitRequest{Requests: []harness.Request{req}}); err != nil {
		t.Fatal(err)
	}
	snap, err := cl.WaitDone(ctx, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("fallback sweep failed: %v (%+v)", err, snap)
	}
	// The fallback executes through the server's own session, which
	// journals results itself — the coordinator's commit then dedups, so
	// Stored stays 0 while the store gains the entry.
	if snap.Completed != 1 || len(snap.Workers) != 1 || snap.Workers[0] != "local-fallback" {
		t.Fatalf("fallback snapshot: %+v", snap)
	}
	if _, _, err := cl.Run(ctx, req.ContentKey()); err != nil {
		t.Fatalf("merged result missing: %v", err)
	}
}

// TestShardSmokeBinary is the end-to-end process-level chaos test behind
// `make shard-smoke`: build the real sddsd and sddsworker binaries,
// start the coordinator and a victim worker, SIGKILL the victim
// mid-shard, start a second worker, and require the sweep to finish with
// the requeue visible and the merged store byte-identical to direct
// in-process runs of the same plan.
func TestShardSmokeBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon and workers; skipped in -short")
	}
	if runtime.GOOS == "windows" {
		t.Skip("signal-driven chaos test")
	}
	dir := t.TempDir()
	sddsd := filepath.Join(dir, "sddsd")
	worker := filepath.Join(dir, "sddsworker")
	for _, b := range [][2]string{{sddsd, "sdds/cmd/sddsd"}, {worker, "sdds/cmd/sddsworker"}} {
		if out, err := exec.Command("go", "build", "-o", b[0], b[1]).CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", b[1], err, out)
		}
	}

	storePath := filepath.Join(dir, "store.jsonl")
	addrFile := filepath.Join(dir, "addr")
	daemon := exec.Command(sddsd,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-store", storePath,
		"-workers", "2",
		"-lease-ttl", "1s",
		"-local-grace", "-1s")
	var daemonErr bytes.Buffer
	daemon.Stderr = &daemonErr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	daemonExited := make(chan error, 1)
	go func() { daemonExited <- daemon.Wait() }()
	defer func() {
		daemon.Process.Signal(syscall.SIGTERM)
		select {
		case <-daemonExited:
		case <-time.After(30 * time.Second):
			daemon.Process.Kill()
			<-daemonExited
		}
	}()

	var base string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(20 * time.Millisecond) {
		if buf, err := os.ReadFile(addrFile); err == nil && len(buf) > 0 {
			base = "http://" + strings.TrimSpace(string(buf))
			break
		}
	}
	if base == "" {
		t.Fatalf("daemon never wrote %s\n%s", addrFile, daemonErr.String())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	cl := &shard.Client{BaseURL: base}

	// One big shard: the victim leases all of it, guaranteeing the kill
	// lands mid-shard and forces a requeue.
	plan := goldenRequests()[:8]
	sub, err := cl.Submit(ctx, shard.SubmitRequest{Requests: plan, ShardSize: len(plan)})
	if err != nil || sub.Shards != 1 {
		t.Fatalf("submit: %+v, %v", sub, err)
	}

	startWorker := func(name string) *exec.Cmd {
		cmd := exec.Command(worker,
			"-coordinator", base,
			"-name", name,
			"-workers", "2",
			"-journal-dir", filepath.Join(dir, name))
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	victim := startWorker("victim")
	victimExited := make(chan error, 1)
	go func() { victimExited <- victim.Wait() }()

	// SIGKILL the victim the moment it holds the shard.
	for {
		snap, err := cl.Status(ctx)
		if err != nil {
			t.Fatal(err)
		}
		leased := false
		for _, sh := range snap.Shards {
			if sh.Worker == "victim" && sh.State == string(shard.Leased) {
				leased = true
			}
		}
		if leased {
			break
		}
		if ctx.Err() != nil {
			t.Fatalf("victim never leased the shard\n%s", daemonErr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	victim.Process.Kill()
	<-victimExited

	rescuer := startWorker("rescuer")
	rescuerExited := make(chan error, 1)
	go func() { rescuerExited <- rescuer.Wait() }()
	rescuerDone := false
	defer func() {
		if !rescuerDone {
			rescuer.Process.Kill()
			<-rescuerExited
		}
	}()

	snap, err := cl.WaitDone(ctx, 200*time.Millisecond)
	if err != nil {
		t.Fatalf("sweep failed: %v (%+v)\n%s", err, snap, daemonErr.String())
	}
	if snap.Requeues < 1 {
		t.Fatalf("no requeue after SIGKILL: %+v", snap)
	}
	if snap.Stored != len(plan) || snap.Completed != 1 {
		t.Fatalf("final snapshot: %+v", snap)
	}
	select {
	case err := <-rescuerExited:
		rescuerDone = true
		if err != nil {
			t.Fatalf("rescuer exited uncleanly: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("rescuer did not exit after the sweep finished")
	}

	// Fingerprint diff: every merged result must match a direct in-process
	// run byte for byte.
	direct := harness.NewSession(harness.SessionOptions{})
	for _, req := range plan {
		norm, _ := req.Normalize()
		_, rec, err := cl.Run(ctx, norm.ContentKey())
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := direct.RunRequest(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(harness.NewRunRecord(res))
		got, _ := json.Marshal(rec)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: sharded store diverges from direct run\nsharded: %s\ndirect:  %s",
				norm.Key(), got, want)
		}
	}
}
