package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sdds/internal/cluster"
	"sdds/internal/fault"
	"sdds/internal/loop"
	"sdds/internal/power"
	"sdds/internal/strutil"
	"sdds/internal/workloads"
)

// Request is the canonical, JSON-serializable description of one cluster
// simulation: everything that determines the result, and nothing else. It
// is the single submission model shared by the CLIs (via internal/cliutil),
// the sddsd HTTP service, the session run cache, and the persistent result
// store — a run is content-addressed by Key/ContentKey, so two requests
// that normalize equally always dedup onto one simulation.
//
// The zero values of Policy, Scale and Seed normalize to the Table II
// defaults ("default", 1.0, 1). Variant is a canonical config-mutation tag
// in the grammar of ParseVariant ("" = the unmodified Table II cluster);
// Faults is a canonical fault-injection spec in the grammar of
// fault.ParseSpec ("" = no injection).
type Request struct {
	// App names one of the six Table III applications.
	App string `json:"app"`
	// Policy is the power policy name ("default", "simple",
	// "prediction-based", "history-based", "staggered"; short forms accepted
	// and canonicalized by Normalize).
	Policy string `json:"policy,omitempty"`
	// Scheduling enables the compiler-directed scheduling framework.
	Scheduling bool `json:"scheduling,omitempty"`
	// Scale multiplies workload trip counts (0 → 1.0, the full size).
	Scale float64 `json:"scale,omitempty"`
	// Seed feeds the cluster simulation (0 → 1).
	Seed int64 `json:"seed,omitempty"`
	// Variant is the canonical cluster-config mutation tag, e.g. "theta=8"
	// or "nodes=16,procs=64" (see ParseVariant).
	Variant string `json:"variant,omitempty"`
	// Faults is the canonical fault-injection spec (fault.ParseSpec form).
	Faults string `json:"faults,omitempty"`
	// TimeoutMS, when positive, bounds the run's wall-clock time. It is an
	// execution knob, not part of the canonical key: a run that completes
	// is the same result under any timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// policyNames are the accepted -policy spellings, for did-you-mean
// suggestions when parsing fails.
var policyNames = []string{
	"default", "simple", "prediction", "prediction-based",
	"history", "history-based", "staggered",
}

// Normalize returns the request in canonical form: defaults applied,
// policy/variant/faults rendered canonically. Two requests describing the
// same simulation normalize to equal values (TimeoutMS aside), which is
// what makes Key content-addressing sound. It reports the first
// validation problem — unknown app or policy (with suggestions), malformed
// variant or fault spec — as an error.
func (r Request) Normalize() (Request, error) {
	if r.App == "" {
		return r, fmt.Errorf("harness: request has no app (have %v)", workloads.Names())
	}
	if _, err := workloads.ByName(r.App); err != nil {
		return r, err
	}
	if r.Policy == "" {
		r.Policy = power.KindDefault.String()
	} else {
		kind, err := power.ParseKind(r.Policy)
		if err != nil {
			if sug := strutil.Suggest(r.Policy, policyNames); len(sug) > 0 {
				return r, fmt.Errorf("harness: unknown policy %q (did you mean %s?)",
					r.Policy, strings.Join(sug, " or "))
			}
			return r, err
		}
		r.Policy = kind.String()
	}
	if r.Scale == 0 {
		r.Scale = 1.0
	}
	if r.Scale < 0 {
		return r, fmt.Errorf("harness: scale %v must be positive", r.Scale)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	variant, err := canonVariant(r.Variant)
	if err != nil {
		return r, err
	}
	r.Variant = variant
	fc, err := fault.ParseSpec(r.Faults)
	if err != nil {
		return r, err
	}
	r.Faults = fc.Canon()
	if r.TimeoutMS < 0 {
		return r, fmt.Errorf("harness: negative timeout %dms", r.TimeoutMS)
	}
	return r, nil
}

// Validate reports the first problem with the request, or nil.
func (r Request) Validate() error {
	_, err := r.Normalize()
	return err
}

// canonical strips the execution-only fields, leaving exactly the cache
// identity. The session memo and the content key both use this form.
func (r Request) canonical() Request {
	r.TimeoutMS = 0
	return r
}

// Key renders the request's canonical identity as one readable line:
//
//	app=sar|policy=history-based|sched=true|scale=1|seed=1|variant=theta=8|faults=
//
// Equal keys mean bit-identical results (the simulator is deterministic in
// its inputs). The request must be normalized first; Key does not
// normalize.
func (r Request) Key() string {
	r = r.canonical()
	return strings.Join([]string{
		"app=" + r.App,
		"policy=" + r.Policy,
		"sched=" + strconv.FormatBool(r.Scheduling),
		"scale=" + strconv.FormatFloat(r.Scale, 'g', -1, 64),
		"seed=" + strconv.FormatInt(r.Seed, 10),
		"variant=" + r.Variant,
		"faults=" + r.Faults,
	}, "|")
}

// ContentKey is the content address of the request's result: the SHA-256
// of Key in hex. It names the run in the persistent store and in the
// service's /v1/runs/{key} URLs.
func (r Request) ContentKey() string {
	sum := sha256.Sum256([]byte(r.Key()))
	return hex.EncodeToString(sum[:])
}

// Tag renders the request for progress lines, e.g.
// "sar/history-based+sched (theta=8)".
func (r Request) Tag() string {
	sp, _, err := r.plan()
	if err != nil {
		return r.App + "/" + r.Policy
	}
	return sp.tag()
}

// plan resolves a request into the session's execution form: the run spec
// (with the variant's config mutation attached) and the harness config.
// The returned pair round-trips: sp.key(c) == r.canonical() after
// normalization, which is what lets service-submitted requests share cache
// slots and store entries with in-process experiment plans.
func (r Request) plan() (runSpec, Config, error) {
	r, err := r.Normalize()
	if err != nil {
		return runSpec{}, Config{}, err
	}
	kind, err := power.ParseKind(r.Policy)
	if err != nil {
		return runSpec{}, Config{}, err
	}
	mutate, err := ParseVariant(r.Variant)
	if err != nil {
		return runSpec{}, Config{}, err
	}
	fc, err := fault.ParseSpec(r.Faults)
	if err != nil {
		return runSpec{}, Config{}, err
	}
	sp := runSpec{app: r.App, kind: kind, scheduling: r.Scheduling, variant: r.Variant, mutate: mutate}
	c := Config{Scale: r.Scale, Seed: r.Seed, Faults: fc}
	return sp, c, nil
}

// BuildRun resolves the request to its simulation inputs: the scaled
// workload program and the fully-derived cluster config. It is the one
// translation from the canonical request model to cluster.RunContext
// arguments — the session's workers and direct runners (sddsim) share it.
func (r Request) BuildRun() (*loop.Program, cluster.Config, error) {
	sp, c, err := r.plan()
	if err != nil {
		return nil, cluster.Config{}, err
	}
	return sp.build(c)
}

// Variant grammar
//
// A variant tag canonically names a deviation from the Table II cluster
// config: a comma-separated list of elements, each "key=value" (or the
// bare flag "pacache"), sorted, with elements equal to the defaults
// dropped. The same grammar backs the in-process experiment sweeps
// (fig13c tags "nodes=16", fig14a tags "theta=8", cachesens tags
// "cache=32MB") and externally-submitted requests, so both address the
// same store entries.

// variantKeys lists the grammar's keys for did-you-mean suggestions.
var variantKeys = []string{"cache", "delta", "nodes", "pacache", "procs", "theta"}

// variantElem is one parsed element: its canonical rendering plus the
// config mutation it denotes. A defaulted element renders as "".
type variantElem struct {
	canon  string
	mutate func(*cluster.Config)
}

// parseVariantElem parses one element of a variant tag.
func parseVariantElem(field string) (variantElem, error) {
	key, val, hasVal := strings.Cut(field, "=")
	key = strings.TrimSpace(key)
	val = strings.TrimSpace(val)
	def := cluster.DefaultConfig()
	intVal := func() (int, error) {
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("harness: variant %s=%q: want a non-negative integer", key, val)
		}
		return n, nil
	}
	switch key {
	case "pacache":
		if hasVal && val != "true" {
			return variantElem{}, fmt.Errorf("harness: variant pacache takes no value (got %q)", val)
		}
		return variantElem{canon: "pacache", mutate: func(cfg *cluster.Config) {
			cfg.Node.PowerAwareCache = true
		}}, nil
	case "procs":
		n, err := intVal()
		if err != nil {
			return variantElem{}, err
		}
		if n == def.Procs {
			return variantElem{}, nil
		}
		return variantElem{canon: "procs=" + strconv.Itoa(n), mutate: func(cfg *cluster.Config) {
			cfg.Procs = n
		}}, nil
	case "nodes":
		n, err := intVal()
		if err != nil {
			return variantElem{}, err
		}
		if n == def.Layout.NumNodes {
			return variantElem{}, nil
		}
		return variantElem{canon: "nodes=" + strconv.Itoa(n), mutate: func(cfg *cluster.Config) {
			cfg.Layout.NumNodes = n
			cfg.Net.NumNodes = n
		}}, nil
	case "delta":
		n, err := intVal()
		if err != nil {
			return variantElem{}, err
		}
		if n == def.Compiler.Delta {
			return variantElem{}, nil
		}
		return variantElem{canon: "delta=" + strconv.Itoa(n), mutate: func(cfg *cluster.Config) {
			cfg.Compiler.Delta = n
		}}, nil
	case "theta":
		n, err := intVal()
		if err != nil {
			return variantElem{}, err
		}
		if n == def.Compiler.Theta {
			return variantElem{}, nil
		}
		return variantElem{canon: "theta=" + strconv.Itoa(n), mutate: func(cfg *cluster.Config) {
			cfg.Compiler.Theta = n
		}}, nil
	case "cache":
		b, err := parseCacheBytes(val)
		if err != nil {
			return variantElem{}, err
		}
		if b == def.Node.CacheBytes {
			return variantElem{}, nil
		}
		return variantElem{canon: "cache=" + renderCacheBytes(b), mutate: func(cfg *cluster.Config) {
			cfg.Node.CacheBytes = b
		}}, nil
	}
	if sug := strutil.Suggest(key, variantKeys); len(sug) > 0 {
		return variantElem{}, fmt.Errorf("harness: unknown variant key %q (did you mean %s?)",
			key, strings.Join(sug, " or "))
	}
	return variantElem{}, fmt.Errorf("harness: unknown variant key %q (have %v)", key, variantKeys)
}

// parseCacheBytes accepts a byte count or an "MB"-suffixed size ("32MB").
func parseCacheBytes(val string) (int64, error) {
	s := val
	mb := false
	if cut, ok := strings.CutSuffix(s, "MB"); ok {
		s, mb = cut, true
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("harness: variant cache=%q: want bytes or an MB size like 32MB", val)
	}
	if mb {
		n <<= 20
	}
	return n, nil
}

// renderCacheBytes renders whole megabytes as "NMB", else raw bytes —
// matching the tags the cachesens sweep has always used.
func renderCacheBytes(b int64) string {
	if b%(1<<20) == 0 {
		return strconv.FormatInt(b>>20, 10) + "MB"
	}
	return strconv.FormatInt(b, 10)
}

// parseVariantElems parses a tag into its live elements (defaulted ones
// dropped), sorted canonically.
func parseVariantElems(tag string) ([]variantElem, error) {
	tag = strings.TrimSpace(tag)
	if tag == "" {
		return nil, nil
	}
	var elems []variantElem
	seen := make(map[string]bool)
	for _, field := range strings.Split(tag, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		e, err := parseVariantElem(field)
		if err != nil {
			return nil, err
		}
		if e.canon == "" {
			continue // element restates a default: canonically absent
		}
		key, _, _ := strings.Cut(e.canon, "=")
		if seen[key] {
			return nil, fmt.Errorf("harness: variant key %q repeated in %q", key, tag)
		}
		seen[key] = true
		elems = append(elems, e)
	}
	sort.Slice(elems, func(i, j int) bool { return elems[i].canon < elems[j].canon })
	return elems, nil
}

// canonVariant re-renders a variant tag in canonical form: elements
// sorted, values normalized, defaults dropped.
func canonVariant(tag string) (string, error) {
	elems, err := parseVariantElems(tag)
	if err != nil {
		return "", err
	}
	parts := make([]string, len(elems))
	for i, e := range elems {
		parts[i] = e.canon
	}
	return strings.Join(parts, ","), nil
}

// ParseVariant resolves a variant tag into the cluster-config mutation it
// denotes (nil for the empty tag). Supported elements: procs=N, nodes=N,
// delta=N, theta=N (0 = unbounded), cache=SIZE (bytes or "32MB"), and the
// bare flag pacache (power-aware storage-cache replacement).
func ParseVariant(tag string) (func(*cluster.Config), error) {
	elems, err := parseVariantElems(tag)
	if err != nil {
		return nil, err
	}
	if len(elems) == 0 {
		return nil, nil
	}
	return func(cfg *cluster.Config) {
		for _, e := range elems {
			e.mutate(cfg)
		}
	}, nil
}

// VariantOverrides captures the cluster-config knobs a client may deviate
// from the Table II defaults, for building a canonical variant tag from
// CLI flags or API parameters. Zero values mean "leave at the default".
type VariantOverrides struct {
	// Procs overrides the client (compute) node count (default 32).
	Procs int
	// Nodes overrides the I/O node count (default 8).
	Nodes int
	// Delta overrides the vertical reuse range δ (default 20).
	Delta int
	// Theta overrides the per-node concurrency cap θ (default 4); -1 means
	// unbounded (θ=0).
	Theta int
	// CacheBytes overrides the per-node storage-cache capacity (default
	// 64 MB).
	CacheBytes int64
	// PACache enables power-aware storage-cache replacement.
	PACache bool
}

// Tag renders the overrides as a canonical variant tag ("" when every
// field is at its default).
func (o VariantOverrides) Tag() string {
	var parts []string
	if o.Procs > 0 {
		parts = append(parts, "procs="+strconv.Itoa(o.Procs))
	}
	if o.Nodes > 0 {
		parts = append(parts, "nodes="+strconv.Itoa(o.Nodes))
	}
	if o.Delta > 0 {
		parts = append(parts, "delta="+strconv.Itoa(o.Delta))
	}
	if o.Theta == -1 {
		parts = append(parts, "theta=0")
	} else if o.Theta > 0 {
		parts = append(parts, "theta="+strconv.Itoa(o.Theta))
	}
	if o.CacheBytes > 0 {
		parts = append(parts, "cache="+renderCacheBytes(o.CacheBytes))
	}
	if o.PACache {
		parts = append(parts, "pacache")
	}
	tag, err := canonVariant(strings.Join(parts, ","))
	if err != nil {
		// Every branch above emits grammar-valid elements; a failure here is
		// a programming error, not user input.
		panic("harness: VariantOverrides produced an unparseable tag: " + err.Error())
	}
	return tag
}
