package probe

import (
	"testing"
)

func TestNilProbeIsInert(t *testing.T) {
	var p *Probe
	p.Emit(KindIOIssue, 1, 10, 64) // must not panic
	if p.Len() != 0 || p.Emitted() != 0 || p.Dropped() != 0 || p.Capacity() != 0 {
		t.Fatal("nil probe reports non-zero state")
	}
	if got := p.Records(); got != nil {
		t.Fatalf("nil probe records = %v", got)
	}
	sp := p.StartSpan(0, "noop")
	sp.End() // must not panic
	if p.SpanCount() != 0 {
		t.Fatal("nil probe recorded a span")
	}
}

func TestSpanProbeHasNoRing(t *testing.T) {
	p := NewSpanProbe()
	p.Emit(KindIOIssue, 1, 10, 64)
	if p.Len() != 0 || p.Capacity() != 0 {
		t.Fatal("span probe accepted ring records")
	}
	sp := p.StartSpan(TrackPlan, "plan")
	sp.End()
	if p.SpanCount() != 1 {
		t.Fatalf("spans = %d, want 1", p.SpanCount())
	}
}

func TestEmitAndRecordsInOrder(t *testing.T) {
	p := NewProbe(1024)
	for i := 0; i < 10; i++ {
		p.Emit(KindIOIssue, int32(i), int64(i*100), int64(i))
	}
	recs := p.Records()
	if len(recs) != 10 {
		t.Fatalf("len = %d, want 10", len(recs))
	}
	for i, r := range recs {
		if r.ID != int32(i) || r.T != int64(i*100) || r.Arg != int64(i) || r.Kind != KindIOIssue {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if p.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", p.Dropped())
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	p := NewProbe(1) // rounds up to the 1024 minimum
	n := p.Capacity()
	total := n + 37
	for i := 0; i < total; i++ {
		p.Emit(KindDiskState, 0, int64(i), int64(i))
	}
	if got := p.Len(); got != n {
		t.Fatalf("len = %d, want %d", got, n)
	}
	if got := p.Dropped(); got != uint64(37) {
		t.Fatalf("dropped = %d, want 37", got)
	}
	recs := p.Records()
	if recs[0].T != 37 {
		t.Fatalf("oldest retained T = %d, want 37 (flight-recorder keeps the tail)", recs[0].T)
	}
	if recs[len(recs)-1].T != int64(total-1) {
		t.Fatalf("newest T = %d, want %d", recs[len(recs)-1].T, total-1)
	}
}

func TestCapacityRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 1024}, {1000, 1024}, {1025, 2048}, {1 << 16, 1 << 16},
	} {
		if got := NewProbe(tc.ask).Capacity(); got != tc.want {
			t.Errorf("NewProbe(%d).Capacity() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	p := NewProbe(1024)
	sp := p.StartSpan(TrackRun, "compile")
	sp.End()
	first := p.spans[0].end
	sp.End()
	if p.spans[0].end != first {
		t.Fatal("second End moved the span end")
	}
	if first < 0 {
		t.Fatal("End did not close the span")
	}
}

func TestSpansConcurrent(t *testing.T) {
	p := NewSpanProbe()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				p.StartSpan(int32(g), "s").End()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := p.SpanCount(); got != 800 {
		t.Fatalf("spans = %d, want 800", got)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("disk.spin_ups")
	c.Inc()
	c.Add(2)
	g := r.Gauge("disk.queue_high_water")
	g.Observe(3)
	g.Observe(1) // lower: ignored
	r.Gauge("buffer.hit_ratio").Set(0.5)
	if v := r.Value("disk.spin_ups"); v != 3 {
		t.Fatalf("spin_ups = %v, want 3", v)
	}
	if v := r.Value("disk.queue_high_water"); v != 3 {
		t.Fatalf("high water = %v, want 3", v)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
	// Re-registering a name returns the same slot.
	r.Counter("disk.spin_ups").Inc()
	if v := r.Value("disk.spin_ups"); v != 4 {
		t.Fatalf("after re-register = %v, want 4", v)
	}
}

func TestNilRegistryHandles(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Observe(1)
	r.Gauge("y").Set(2)
	if r.Len() != 0 || r.Snapshot() != nil || r.Value("x") != 0 {
		t.Fatal("nil registry not inert")
	}
}

// BenchmarkEmit is the enabled hot path: must be 0 allocs/op.
func BenchmarkEmit(b *testing.B) {
	p := NewProbe(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Emit(KindDiskState, 3, int64(i), 4)
	}
}

// BenchmarkEmitDisabled is the nil-probe path every emit site pays when
// tracing is off: a single predictable branch.
func BenchmarkEmitDisabled(b *testing.B) {
	var p *Probe
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Emit(KindDiskState, 3, int64(i), 4)
	}
}
