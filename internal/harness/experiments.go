package harness

import (
	"context"
	"fmt"
	"time"

	"sdds/internal/cluster"
	"sdds/internal/compiler"
	"sdds/internal/core"
	"sdds/internal/disk"
	"sdds/internal/metrics"
	"sdds/internal/power"
	"sdds/internal/sim"
	"sdds/internal/stripe"
	"sdds/internal/workloads"
)

// table2 dumps the default configuration, mirroring Table II.
func table2(ctx context.Context, s *Session, c Config) (*Result, error) {
	cfg := cluster.DefaultConfig()
	p := cfg.Node.DiskParams
	rows := [][]string{
		{"Number of Client (Compute) Nodes", fmt.Sprintf("%d", cfg.Procs)},
		{"Number of I/O nodes", fmt.Sprintf("%d", cfg.Layout.NumNodes)},
		{"Stripe Size", fmt.Sprintf("%dKB", cfg.Layout.StripeSize>>10)},
		{"RAID Level", cfg.Node.Level.String()},
		{"Disks per I/O node", fmt.Sprintf("%d", cfg.Node.Members)},
		{"Individual Disk Capacity", fmt.Sprintf("%.0fGB", p.CapacityGB)},
		{"Storage Cache Capacity", fmt.Sprintf("%dMB (per I/O node)", cfg.Node.CacheBytes>>20)},
		{"Maximum Disk Rotation Speed", fmt.Sprintf("%d RPM", p.MaxRPM)},
		{"Idle Power", fmt.Sprintf("%.1fW (at %d RPM)", p.IdlePowerW, p.MaxRPM)},
		{"Active (R/W) Power", fmt.Sprintf("%.1fW (at %d RPM)", p.ActivePowerW, p.MaxRPM)},
		{"Seek Power", fmt.Sprintf("%.1fW (at %d RPM)", p.SeekPowerW, p.MaxRPM)},
		{"Standby Power", fmt.Sprintf("%.1fW", p.StandbyPowerW)},
		{"Spin-up Power", fmt.Sprintf("%.1fW", p.SpinUpPowerW)},
		{"Spin-up Time", fmt.Sprintf("%.0fsecs", p.SpinUpTime.Seconds())},
		{"Spin-down Time", fmt.Sprintf("%.0fsecs", p.SpinDownTime.Seconds())},
		{"Disk-Arm Scheduling", "Elevator"},
		{"Minimum Disk Rotation Speed", fmt.Sprintf("%d RPM", p.MinRPM)},
		{"RPM Step-Size", fmt.Sprintf("%d", p.RPMStep)},
		{"delta", fmt.Sprintf("%d iterations (slots)", cfg.Compiler.Delta)},
		{"theta", fmt.Sprintf("%d", cfg.Compiler.Theta)},
	}
	return &Result{ID: "table2", Title: "Main experimental parameters",
		Headers: []string{"Parameter", "Value"}, Rows: rows}, nil
}

// table3 reports per-application execution time and disk energy under the
// Default Scheme (no power management) — the baseline every other number is
// normalized against.
func table3(ctx context.Context, s *Session, c Config) (*Result, error) {
	base, err := runBaselines(ctx, s, c)
	if err != nil {
		return nil, err
	}
	rows := make([][]string, 0, len(c.Apps))
	for _, app := range c.Apps {
		spec, _ := workloads.ByName(app)
		res := base.byApp[app]
		rows = append(rows, []string{
			app, spec.Description,
			fmt.Sprintf("%.1f", res.ExecTime.Seconds()/60),
			fmt.Sprintf("%.1f", res.EnergyJ),
		})
	}
	return &Result{ID: "table3", Title: "Application programs",
		Headers: []string{"Name", "Brief Description", "Exec Time (minutes)", "Disk Energy (Joule)"},
		Rows:    rows}, nil
}

// cdfResult renders per-app idle CDFs at the paper's bucket bounds.
func cdfResult(ctx context.Context, s *Session, id, title string, c Config, scheduling bool) (*Result, error) {
	headers := []string{"Idleness (msec)"}
	headers = append(headers, c.Apps...)
	hists := make([]*metrics.IdleHistogram, len(c.Apps))
	for i, app := range c.Apps {
		res, err := runOne(ctx, s, c, app, power.KindDefault, scheduling)
		if err != nil {
			return nil, err
		}
		hists[i] = res.Idle
	}
	var rows [][]string
	for bi, bound := range metrics.PaperBucketsMs {
		row := []string{fmt.Sprintf("%.0f", bound)}
		for _, h := range hists {
			row = append(row, metrics.Pct(h.CDF()[bi].Frac))
		}
		rows = append(rows, row)
	}
	var mean100, mean5000 float64
	for _, h := range hists {
		mean100 += h.FracAtMost(100)
		mean5000 += h.FracAtMost(5000)
	}
	notes := []string{fmt.Sprintf("average: %s of idle periods ≤100ms, %s ≤5s (paper without scheme: 86.4%% and 96.5%%)",
		metrics.Pct(mean100/float64(len(hists))), metrics.Pct(mean5000/float64(len(hists))))}
	return &Result{ID: id, Title: title, Headers: headers, Rows: rows, Notes: notes}, nil
}

func fig12a(ctx context.Context, s *Session, c Config) (*Result, error) {
	return cdfResult(ctx, s, "fig12a", "CDF of idle periods without the scheme", c, false)
}

func fig12b(ctx context.Context, s *Session, c Config) (*Result, error) {
	return cdfResult(ctx, s, "fig12b", "CDF of idle periods with the scheme", c, true)
}

// energyResult renders normalized energy per app × policy.
func energyResult(ctx context.Context, s *Session, id, title string, c Config, scheduling bool) (*Result, error) {
	base, err := runBaselines(ctx, s, c)
	if err != nil {
		return nil, err
	}
	kinds := power.ManagedKinds()
	headers := []string{"App"}
	for _, k := range kinds {
		headers = append(headers, k.String())
	}
	rows := make([][]string, 0, len(c.Apps))
	avg := make([]float64, len(kinds))
	values := make([][]float64, 0, len(c.Apps))
	for _, app := range c.Apps {
		row := []string{app}
		vals := make([]float64, 0, len(kinds))
		for ki, k := range kinds {
			res, err := runOne(ctx, s, c, app, k, scheduling)
			if err != nil {
				return nil, err
			}
			norm := metrics.NormalizedEnergy(res.EnergyJ, base.byApp[app].EnergyJ)
			avg[ki] += 1 - norm
			row = append(row, metrics.Pct(norm))
			vals = append(vals, norm)
		}
		rows = append(rows, row)
		values = append(values, vals)
	}
	series := make([]string, len(kinds))
	for ki, k := range kinds {
		series[ki] = k.String()
	}
	chart := &metrics.BarChart{Title: title, Groups: c.Apps, Series: series, Values: values}
	note := "average savings:"
	for ki, k := range kinds {
		note += fmt.Sprintf(" %s %s", k, metrics.Pct(avg[ki]/float64(len(c.Apps))))
	}
	paper := "paper without scheme: simple 4.7%, prediction 6.3%, history 15.6%, staggered 9.8%"
	if scheduling {
		paper = "paper with scheme: simple 9.4%, prediction 14.2%, history 29.2%, staggered 25.9%"
	}
	return &Result{ID: id, Title: title, Headers: headers, Rows: rows,
		Notes: []string{note, paper}, Chart: chart}, nil
}

func fig12c(ctx context.Context, s *Session, c Config) (*Result, error) {
	return energyResult(ctx, s, "fig12c", "Normalized energy consumption without the scheme", c, false)
}

func fig12d(ctx context.Context, s *Session, c Config) (*Result, error) {
	return energyResult(ctx, s, "fig12d", "Normalized energy consumption with the scheme", c, true)
}

// degradationResult renders performance degradation per app × policy.
func degradationResult(ctx context.Context, s *Session, id, title string, c Config, scheduling bool) (*Result, error) {
	base, err := runBaselines(ctx, s, c)
	if err != nil {
		return nil, err
	}
	kinds := power.ManagedKinds()
	headers := []string{"App"}
	for _, k := range kinds {
		headers = append(headers, k.String())
	}
	rows := make([][]string, 0, len(c.Apps))
	avg := make([]float64, len(kinds))
	for _, app := range c.Apps {
		row := []string{app}
		for ki, k := range kinds {
			res, err := runOne(ctx, s, c, app, k, scheduling)
			if err != nil {
				return nil, err
			}
			d := metrics.Degradation(res.ExecTime, base.byApp[app].ExecTime)
			avg[ki] += d
			row = append(row, metrics.Pct(d))
		}
		rows = append(rows, row)
	}
	note := "average degradation:"
	for ki, k := range kinds {
		note += fmt.Sprintf(" %s %s", k, metrics.Pct(avg[ki]/float64(len(c.Apps))))
	}
	return &Result{ID: id, Title: title, Headers: headers, Rows: rows, Notes: []string{note}}, nil
}

func fig13a(ctx context.Context, s *Session, c Config) (*Result, error) {
	return degradationResult(ctx, s, "fig13a", "Performance degradation without the scheme", c, false)
}

func fig13b(ctx context.Context, s *Session, c Config) (*Result, error) {
	return degradationResult(ctx, s, "fig13b", "Performance degradation with the scheme", c, true)
}

// extraSavings computes the additional energy reduction the scheme brings
// over the history-based policy alone, for one app under a tagged cluster
// config variant. Both runs resolve through the session cache.
func extraSavings(ctx context.Context, s *Session, c Config, app, tag string, mutate func(*cluster.Config)) (float64, error) {
	without, _, err := s.run(ctx, c, variantSpec(app, power.KindHistory, false, tag, mutate))
	if err != nil {
		return 0, err
	}
	with, _, err := s.run(ctx, c, variantSpec(app, power.KindHistory, true, tag, mutate))
	if err != nil {
		return 0, err
	}
	return metrics.EnergySaving(with.EnergyJ, without.EnergyJ), nil
}

// sweepDef declares a parameter sweep once, so its run plan and its
// rendering derive from the same table: the extra savings of the scheme
// (over history-based) across the values, averaged over the apps.
type sweepDef struct {
	id, title, param string
	values           []string
	mutate           func(cfg *cluster.Config, vi int)
}

// tagOf canonically names one sweep point (shared across experiments:
// fig14a and fig14b both tag "theta=N").
func (d sweepDef) tagOf(vi int) string { return d.param + "=" + d.values[vi] }

// specs plans both scheme-off and scheme-on runs of every sweep point.
func (d sweepDef) specs(c Config) []runSpec {
	out := make([]runSpec, 0, 2*len(c.Apps)*len(d.values))
	for _, app := range c.Apps {
		for vi := range d.values {
			vi := vi
			m := func(cfg *cluster.Config) { d.mutate(cfg, vi) }
			out = append(out,
				variantSpec(app, power.KindHistory, false, d.tagOf(vi), m),
				variantSpec(app, power.KindHistory, true, d.tagOf(vi), m))
		}
	}
	return out
}

// run renders the sweep table.
func (d sweepDef) run(ctx context.Context, s *Session, c Config) (*Result, error) {
	headers := append([]string{"App"}, d.values...)
	rows := make([][]string, 0, len(c.Apps))
	avg := make([]float64, len(d.values))
	for _, app := range c.Apps {
		row := []string{app}
		for vi := range d.values {
			vi := vi
			sav, err := extraSavings(ctx, s, c, app, d.tagOf(vi),
				func(cfg *cluster.Config) { d.mutate(cfg, vi) })
			if err != nil {
				return nil, err
			}
			avg[vi] += sav
			row = append(row, metrics.Pct(sav))
		}
		rows = append(rows, row)
	}
	note := fmt.Sprintf("average extra reduction by %s:", d.param)
	for vi, v := range d.values {
		note += fmt.Sprintf(" %s=%s %s", d.param, v, metrics.Pct(avg[vi]/float64(len(c.Apps))))
	}
	return &Result{ID: d.id, Title: d.title, Headers: headers, Rows: rows, Notes: []string{note}}, nil
}

var fig13cNodes = []int{2, 4, 8, 16, 32}

var fig13cDef = sweepDef{
	id: "fig13c", title: "Energy reduction as the number of I/O nodes varies",
	param: "nodes", values: []string{"2", "4", "8", "16", "32"},
	mutate: func(cfg *cluster.Config, vi int) {
		cfg.Layout = stripe.Layout{NumNodes: fig13cNodes[vi], StripeSize: cfg.Layout.StripeSize}
		cfg.Net.NumNodes = fig13cNodes[vi]
	},
}

var fig13dDeltas = []int{5, 10, 20, 40, 80}

var fig13dDef = sweepDef{
	id: "fig13d", title: "Energy reduction as the value of delta varies",
	param: "delta", values: []string{"5", "10", "20", "40", "80"},
	mutate: func(cfg *cluster.Config, vi int) { cfg.Compiler.Delta = fig13dDeltas[vi] },
}

var fig14aThetas = []int{2, 4, 6, 8}

var fig14aDef = sweepDef{
	id: "fig14a", title: "Energy reduction as the value of theta varies",
	param: "theta", values: []string{"2", "4", "6", "8"},
	mutate: func(cfg *cluster.Config, vi int) { cfg.Compiler.Theta = fig14aThetas[vi] },
}

var cacheSensCaps = []int64{32 << 20, 64 << 20, 256 << 20}

var cacheSensDef = sweepDef{
	id: "cachesens", title: "Extra energy reduction vs storage-cache capacity",
	param: "cache", values: []string{"32MB", "64MB", "256MB"},
	mutate: func(cfg *cluster.Config, vi int) { cfg.Node.CacheBytes = cacheSensCaps[vi] },
}

// planFig14b plans the scheme-on θ sweep points; they share tags (and thus
// cached runs) with fig14a's sweep.
func planFig14b(c Config) []runSpec {
	out := make([]runSpec, 0, len(c.Apps)*len(fig14aThetas))
	for _, app := range c.Apps {
		for vi := range fig14aDef.values {
			vi := vi
			out = append(out, variantSpec(app, power.KindHistory, true, fig14aDef.tagOf(vi),
				func(cfg *cluster.Config) { fig14aDef.mutate(cfg, vi) }))
		}
	}
	return out
}

// fig14b sweeps θ for performance improvement of raising θ relative to the
// most constrained setting (θ=2), with the scheme on.
func fig14b(ctx context.Context, s *Session, c Config) (*Result, error) {
	headers := []string{"App"}
	for _, th := range fig14aThetas {
		headers = append(headers, fmt.Sprintf("%d", th))
	}
	rows := make([][]string, 0, len(c.Apps))
	for _, app := range c.Apps {
		times := make([]float64, len(fig14aThetas))
		for vi := range fig14aThetas {
			vi := vi
			res, _, err := s.run(ctx, c, variantSpec(app, power.KindHistory, true, fig14aDef.tagOf(vi),
				func(cfg *cluster.Config) { fig14aDef.mutate(cfg, vi) }))
			if err != nil {
				return nil, err
			}
			times[vi] = res.ExecTime.Seconds()
		}
		row := []string{app}
		for _, t := range times {
			row = append(row, metrics.Pct((times[0]-t)/times[0]))
		}
		rows = append(rows, row)
	}
	return &Result{ID: "fig14b", Title: "Performance improvement as theta varies (vs theta=2)",
		Headers: headers, Rows: rows}, nil
}

// compileCost measures the wall-clock cost of the compiler pass per app
// (the paper reports ~1.4 s worst case, ~40% over the baseline compile).
func compileCost(ctx context.Context, s *Session, c Config) (*Result, error) {
	rows := make([][]string, 0, len(c.Apps))
	for _, app := range c.Apps {
		spec, err := workloads.ByName(app)
		if err != nil {
			return nil, err
		}
		prog := spec.Build(c.Scale)
		start := time.Now() //sddsvet:ignore detflow -- measures real compile wall time: the experiment's deliverable, not golden-compared
		res, err := compiler.CompileContext(ctx, prog, compiler.DefaultOptions(32))
		if err != nil {
			return nil, err
		}
		wall := time.Since(start) //sddsvet:ignore detflow -- measures real compile wall time: the experiment's deliverable, not golden-compared
		rows = append(rows, []string{
			app,
			fmt.Sprintf("%d", len(res.Accesses)),
			fmt.Sprintf("%d", res.Program.Slots(32)),
			fmt.Sprintf("%.3fs", wall.Seconds()),
			fmt.Sprintf("%v", res.UsedProfiler),
		})
	}
	return &Result{ID: "compile", Title: "Scheduling pass cost",
		Headers: []string{"App", "Accesses", "Slots", "Wall time", "Profiler"},
		Rows:    rows}, nil
}

// ablations quantifies the design choices of §IV-B on the scheduling
// algorithm itself (no cluster simulation): processing order, σ weights,
// and the vertical reuse range, measured by packed node-slot activations
// (lower = tighter grouping).
func ablations(ctx context.Context, s *Session, c Config) (*Result, error) {
	type variant struct {
		name   string
		mutate func(*compiler.Options)
	}
	variants := []variant{
		{"paper (slack order, weights, delta=20)", nil},
		{"input order", func(o *compiler.Options) { o.Order = core.OrderInput }},
		{"longest-slack first", func(o *compiler.Options) { o.Order = core.OrderLongestSlack }},
		{"no position weights", func(o *compiler.Options) { o.NoWeights = true }},
		{"delta=0 (horizontal only)", func(o *compiler.Options) { o.Delta = 0 }},
		{"coalesced d=8 (Sec. IV-A)", func(o *compiler.Options) { o.CoalesceD = 8 }},
	}
	headers := []string{"Variant"}
	headers = append(headers, c.Apps...)
	rows := make([][]string, 0, len(variants))
	for _, v := range variants {
		row := []string{v.name}
		for _, app := range c.Apps {
			spec, err := workloads.ByName(app)
			if err != nil {
				return nil, err
			}
			prog := spec.Build(c.Scale)
			opts := compiler.DefaultOptions(32)
			if v.mutate != nil {
				v.mutate(&opts)
			}
			res, err := compiler.CompileContext(ctx, prog, opts)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", res.Schedule.NodeActivations()))
		}
		rows = append(rows, row)
	}
	return &Result{ID: "ablations", Title: "Scheduler design ablations (node-slot activations; lower = tighter grouping)",
		Headers: headers, Rows: rows}, nil
}

// planOracle plans the history-based pass of the oracle comparison (its
// trace-recording and replay passes are stateful and run inline).
func planOracle(c Config) []runSpec {
	out := make([]runSpec, 0, len(c.Apps))
	for _, app := range c.Apps {
		out = append(out, defaultSpec(app, power.KindHistory, false))
	}
	return out
}

// oracle compares the history-based policy against an oracle multi-speed
// policy fed the true idle lengths recorded in a first pass — an upper
// bound on what better prediction could buy (ablation beyond the paper).
// The trace-recording and replay passes are coupled through shared state,
// so they bypass the run cache and execute inline.
func oracle(ctx context.Context, s *Session, c Config) (*Result, error) {
	headers := []string{"App", "default (J)", "history (J)", "oracle (J)", "history saving", "oracle saving"}
	rows := make([][]string, 0, len(c.Apps))
	for _, app := range c.Apps {
		spec, err := workloads.ByName(app)
		if err != nil {
			return nil, err
		}
		// Pass 1: Default Scheme, recording the gap trace.
		var trace *metrics.GapTrace
		cfg := cluster.DefaultConfig()
		cfg.Seed = c.Seed
		var eng0 *sim.Engine // captured by the factory below
		cfg.PolicyFactory = func(eng *sim.Engine) (power.Policy, error) {
			if trace == nil {
				eng0 = eng
				trace = metrics.NewGapTrace(func() sim.Time { return eng0.Now() })
			}
			return power.New(eng, power.Config{Kind: power.KindDefault})
		}
		cfg.ExtraIdleRecorder = traceHolder{&trace}
		base, err := cluster.RunContext(ctx, spec.Build(c.Scale), cfg)
		if err != nil {
			return nil, err
		}
		// Pass 2a: history (cache-resolved; also in the experiment plan).
		hist, err := runOne(ctx, s, c, app, power.KindHistory, false)
		if err != nil {
			return nil, err
		}
		// Pass 2b: oracle replaying the recorded gaps.
		cfgO := cluster.DefaultConfig()
		cfgO.Seed = c.Seed
		cfgO.PolicyFactory = func(eng *sim.Engine) (power.Policy, error) {
			return power.NewOracle(eng, power.Config{}, trace), nil
		}
		orc, err := cluster.RunContext(ctx, spec.Build(c.Scale), cfgO)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			app,
			fmt.Sprintf("%.0f", base.EnergyJ),
			fmt.Sprintf("%.0f", hist.EnergyJ),
			fmt.Sprintf("%.0f", orc.EnergyJ),
			metrics.Pct(metrics.EnergySaving(hist.EnergyJ, base.EnergyJ)),
			metrics.Pct(metrics.EnergySaving(orc.EnergyJ, base.EnergyJ)),
		})
	}
	return &Result{ID: "oracle", Title: "Oracle prediction upper bound (ablation)",
		Headers: headers, Rows: rows}, nil
}

// traceHolder defers recorder resolution until the trace exists (the
// factory creates it on first use).
type traceHolder struct{ t **metrics.GapTrace }

func (h traceHolder) RecordIdle(d *disk.Disk, gap sim.Duration) {
	if *h.t != nil {
		(*h.t).RecordIdle(d, gap)
	}
}

// palruMutate turns on the power-aware storage-cache replacement.
func palruMutate(cfg *cluster.Config) { cfg.Node.PowerAwareCache = true }

// planPALRU plans the LRU (default config) and PA-LRU (variant) runs under
// the simple spin-down policy.
func planPALRU(c Config) []runSpec {
	out := make([]runSpec, 0, 2*len(c.Apps))
	for _, app := range c.Apps {
		out = append(out,
			defaultSpec(app, power.KindSimple, false),
			variantSpec(app, power.KindSimple, false, "pacache", palruMutate))
	}
	return out
}

// palruCache compares the plain LRU storage cache against the power-aware
// PA-LRU variant (eviction avoids blocks whose disk sleeps) under the
// simple spin-down policy — the related-work direction (§VI) implemented
// as an extension.
func palruCache(ctx context.Context, s *Session, c Config) (*Result, error) {
	headers := []string{"App", "LRU (J)", "PA-LRU (J)", "delta"}
	rows := make([][]string, 0, len(c.Apps))
	for _, app := range c.Apps {
		lru, err := runOne(ctx, s, c, app, power.KindSimple, false)
		if err != nil {
			return nil, err
		}
		pal, _, err := s.run(ctx, c, variantSpec(app, power.KindSimple, false, "pacache", palruMutate))
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			app,
			fmt.Sprintf("%.0f", lru.EnergyJ),
			fmt.Sprintf("%.0f", pal.EnergyJ),
			metrics.Pct(metrics.EnergySaving(pal.EnergyJ, lru.EnergyJ)),
		})
	}
	return &Result{ID: "palru", Title: "Power-aware storage-cache replacement (extension)",
		Headers: headers, Rows: rows}, nil
}
