// Command benchjson converts `go test -bench` output on stdin into a JSON
// object mapping benchmark name to its measured values, e.g.
//
//	go test -bench . -benchmem ./internal/sim | benchjson > BENCH_sim.json
//
// Each benchmark line ("BenchmarkX-8  N  12.3 ns/op  0 B/op  ...") becomes
// an entry {"BenchmarkX": {"iterations": N, "ns/op": 12.3, ...}}; custom
// metrics reported via b.ReportMetric (virtual_J, virtual_s, ...) pass
// through under their unit name. Non-benchmark lines are ignored, so the
// full `go test` stream can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	results := make(map[string]map[string]float64)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, vals, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		results[name] = vals
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	out, err := marshalSorted(results)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if _, err := os.Stdout.Write(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine extracts one benchmark result. The format is the fixed testing
// package shape: name, iteration count, then (value, unit) pairs.
func parseLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	iters, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return "", nil, false
	}
	name := fields[0]
	// Drop the -GOMAXPROCS suffix so names are stable across machines.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	vals := map[string]float64{"iterations": iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		vals[fields[i+1]] = v
	}
	return name, vals, true
}

// marshalSorted renders the results with deterministic key order so the
// committed BENCH_sim.json diffs cleanly between runs.
func marshalSorted(results map[string]map[string]float64) ([]byte, error) {
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, n := range names {
		keys := make([]string, 0, len(results[n]))
		for k := range results[n] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		nameJSON, _ := json.Marshal(n)
		b.WriteString("  ")
		b.Write(nameJSON)
		b.WriteString(": {")
		for j, k := range keys {
			kJSON, _ := json.Marshal(k)
			if j > 0 {
				b.WriteString(", ")
			}
			b.Write(kJSON)
			fmt.Fprintf(&b, ": %g", results[n][k])
		}
		if i+1 < len(names) {
			b.WriteString("},\n")
		} else {
			b.WriteString("}\n")
		}
	}
	b.WriteString("}\n")
	return []byte(b.String()), nil
}
