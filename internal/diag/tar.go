package diag

import (
	"archive/tar"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// writeTarGz mirrors a bundle directory as a deterministic .tar.gz: file
// entries sorted by name, a fixed mode, and the manifest's creation time
// as every entry's ModTime — so the same bundle content always produces
// the same archive bytes regardless of filesystem timestamps.
func writeTarGz(dst, bundleDir string, man Manifest) error {
	ents, err := os.ReadDir(bundleDir)
	if err != nil {
		return fmt.Errorf("diag: %w", err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	tmp := dst + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("diag: %w", err)
	}
	defer os.Remove(tmp) // no-op after the rename
	gz := gzip.NewWriter(f)
	tw := tar.NewWriter(gz)
	mod := time.UnixMilli(man.CreatedUnixMS).UTC()
	base := filepath.Base(bundleDir)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(bundleDir, name))
		if err != nil {
			f.Close()
			return fmt.Errorf("diag: %w", err)
		}
		hdr := &tar.Header{
			Name:    base + "/" + name,
			Mode:    0o644,
			Size:    int64(len(data)),
			ModTime: mod,
			Format:  tar.FormatPAX,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			f.Close()
			return fmt.Errorf("diag: %w", err)
		}
		if _, err := tw.Write(data); err != nil {
			f.Close()
			return fmt.Errorf("diag: %w", err)
		}
	}
	if err := tw.Close(); err != nil {
		f.Close()
		return fmt.Errorf("diag: %w", err)
	}
	if err := gz.Close(); err != nil {
		f.Close()
		return fmt.Errorf("diag: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("diag: %w", err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		return fmt.Errorf("diag: %w", err)
	}
	return nil
}

// readTarGz loads a bundle archive into memory as name → content,
// stripping the single top-level bundle directory from entry names.
func readTarGz(path string) (map[string][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("diag: %w", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("diag: %s: %w", path, err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	files := make(map[string][]byte)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("diag: %s: %w", path, err)
		}
		if hdr.Typeflag != tar.TypeReg {
			continue
		}
		name := hdr.Name
		if i := strings.IndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		if name == "" || strings.Contains(name, "/") {
			return nil, fmt.Errorf("diag: %s: unexpected entry %q", path, hdr.Name)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			return nil, fmt.Errorf("diag: %s: %w", path, err)
		}
		files[name] = data
	}
	return files, nil
}
