package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeStore creates a store file at path holding the given key→value
// pairs (values are JSON literals).
func writeStore(t *testing.T, path string, pairs [][2]string) {
	t.Helper()
	s, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range pairs {
		var v any
		v = kv[1]
		if err := s.Put(kv[0], v); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// tearTail truncates the file mid-way through its final line, simulating
// a writer SIGKILLed during an append.
func tearTail(t *testing.T, path string) int64 {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut inside the last line: drop the trailing newline plus a few bytes.
	cut := int64(len(buf) - 5)
	if cut <= 0 {
		t.Fatalf("store file too small to tear: %d bytes", len(buf))
	}
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}
	return cut
}

// TestMergeShardJournals merges three shard journals — one of them with
// its final record torn mid-write — into one canonical store and asserts
// the intact records all land exactly once, overlap dedups, and the torn
// tail is tolerated and reported rather than failing the merge.
func TestMergeShardJournals(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "shard-a.jsonl")
	b := filepath.Join(dir, "shard-b.jsonl")
	c := filepath.Join(dir, "shard-c.jsonl")
	writeStore(t, a, [][2]string{{"k1", "v1"}, {"k2", "v2"}})
	// b overlaps a on k2 (the double-completion case) and adds k3, k4; its
	// final record (k4) is then torn mid-write.
	writeStore(t, b, [][2]string{{"k2", "v2"}, {"k3", "v3"}, {"k4", "v4"}})
	tearTail(t, b)
	// c never started: a missing journal merges as empty.

	// Verify must see the tear as recoverable, not an error.
	rep, err := Verify(b)
	if err != nil {
		t.Fatalf("Verify(torn shard): %v", err)
	}
	if rep.TornBytes == 0 {
		t.Fatal("Verify(torn shard): want TornBytes > 0")
	}
	if rep.Entries != 2 {
		t.Fatalf("Verify(torn shard): %d intact entries, want 2", rep.Entries)
	}

	dst, err := Open(filepath.Join(dir, "merged.jsonl"), true)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	st, err := Merge(dst, a, b, c)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if st.Files != 3 {
		t.Errorf("Files = %d, want 3", st.Files)
	}
	if st.Added != 3 || st.Dups != 1 {
		t.Errorf("Added = %d, Dups = %d, want 3 added (k1,k2,k3) and 1 dup (k2)", st.Added, st.Dups)
	}
	if st.TornBytes == 0 {
		t.Error("TornBytes = 0, want the torn tail reported")
	}
	want := []string{"k1", "k2", "k3"}
	got := dst.Keys()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("merged keys = %v, want %v", got, want)
	}
	var v string
	if ok, err := dst.Get("k2", &v); err != nil || !ok || v != "v2" {
		t.Errorf("merged k2 = %q, %v, %v", v, ok, err)
	}

	// Idempotence: re-merging adds nothing.
	st2, err := Merge(dst, a, b)
	if err != nil {
		t.Fatalf("re-Merge: %v", err)
	}
	if st2.Added != 0 || st2.Dups != 4 {
		t.Errorf("re-merge Added = %d, Dups = %d, want 0 and 4", st2.Added, st2.Dups)
	}
}

// TestMergeConflict pins that two shards disagreeing on a content key —
// the determinism invariant broken — fail the merge with the source and
// key named.
func TestMergeConflict(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	writeStore(t, a, [][2]string{{"k1", "v1"}})
	writeStore(t, b, [][2]string{{"k1", "DIFFERENT"}})
	dst, err := Open(filepath.Join(dir, "merged.jsonl"), true)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	_, err = Merge(dst, a, b)
	if err == nil {
		t.Fatal("Merge of conflicting values succeeded, want error")
	}
	if !strings.Contains(err.Error(), "k1") || !strings.Contains(err.Error(), b) {
		t.Errorf("conflict error %q does not name the key and source", err)
	}
}
