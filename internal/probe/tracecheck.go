package probe

import (
	"encoding/json"
	"fmt"
)

// CheckChromeTrace validates Chrome trace-event JSON bytes against the
// subset of the trace-event format this repo emits (WriteChromeTrace's
// output shape). It returns one problem line per violation and a one-line
// event-count summary. It is the shared assertion behind cmd/tracecheck
// and the sddsdiag bundle inspector: the exporter's unit tests check
// structure in-process, this checks the actual bytes a user would load
// into chrome://tracing.
//
// Checks: the bytes are a JSON object with a traceEvents array; every
// event has a phase in {M, X, i}; complete (X) spans carry dur ≥ 0 and
// ts ≥ 0; instants carry ts ≥ 0; metadata names at least one thread_name
// track.
func CheckChromeTrace(data []byte) (problems []string, stats string, err error) {
	type traceEvent struct {
		Name  string          `json:"name"`
		Phase string          `json:"ph"`
		TS    *float64        `json:"ts"`
		Dur   *float64        `json:"dur"`
		PID   *int            `json:"pid"`
		TID   *int            `json:"tid"`
		Args  json.RawMessage `json:"args"`
	}
	var tf struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		return nil, "", fmt.Errorf("not a trace-event JSON object: %w", err)
	}
	if tf.TraceEvents == nil {
		return nil, "", fmt.Errorf("no traceEvents array")
	}
	var spans, instants, meta, threadNames int
	for i, ev := range tf.TraceEvents {
		at := func(format string, args ...any) {
			problems = append(problems, fmt.Sprintf("event %d (%s): ", i, ev.Name)+fmt.Sprintf(format, args...))
		}
		if ev.PID == nil || ev.TID == nil {
			at("missing pid/tid")
		}
		switch ev.Phase {
		case "M":
			meta++
			if ev.Name == "thread_name" {
				threadNames++
				var a struct {
					Name string `json:"name"`
				}
				if json.Unmarshal(ev.Args, &a) != nil || a.Name == "" {
					at("thread_name metadata without args.name")
				}
			}
		case "X":
			spans++
			if ev.TS == nil || *ev.TS < 0 {
				at("complete span without ts >= 0")
			}
			if ev.Dur == nil || *ev.Dur < 0 {
				at("complete span without dur >= 0")
			}
			if ev.Name == "" {
				at("unnamed span")
			}
		case "i":
			instants++
			if ev.TS == nil || *ev.TS < 0 {
				at("instant without ts >= 0")
			}
			if ev.Name == "" {
				at("unnamed instant")
			}
		default:
			at("unexpected phase %q", ev.Phase)
		}
	}
	if len(tf.TraceEvents) == 0 {
		problems = append(problems, "traceEvents is empty")
	}
	if threadNames == 0 {
		problems = append(problems, "no thread_name metadata: tracks would be anonymous")
	}
	stats = fmt.Sprintf("%d events: %d spans, %d instants, %d metadata, %d named tracks",
		len(tf.TraceEvents), spans, instants, meta, threadNames)
	return problems, stats, nil
}
