package backoff

import (
	"context"
	"testing"
	"time"
)

// TestDelayGrowthAndCap pins the jitter-free schedule: geometric growth
// from Base saturating exactly at Cap.
func TestDelayGrowthAndCap(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Cap: 160 * time.Millisecond, Factor: 2, Jitter: 0}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		160 * time.Millisecond,
		160 * time.Millisecond, // capped
		160 * time.Millisecond,
	}
	for attempt, w := range want {
		if got := p.Delay(attempt); got != w {
			t.Errorf("attempt %d: delay %v, want %v", attempt, got, w)
		}
	}
	// Huge attempt counts must not overflow past the cap.
	if got := p.Delay(10_000); got != 160*time.Millisecond {
		t.Errorf("attempt 10000: delay %v, want cap", got)
	}
	if got := p.Delay(-3); got != p.Delay(0) {
		t.Errorf("negative attempt: delay %v, want attempt-0 delay", got)
	}
}

// TestDelayJitterBounds draws many jittered delays from a seeded source
// and asserts every one lands inside [(1-Jitter)·d, d].
func TestDelayJitterBounds(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: 0.5}.WithSource(42)
	for attempt := 0; attempt < 6; attempt++ {
		pre := Policy{Base: p.Base, Cap: p.Cap, Factor: p.Factor}.Delay(attempt)
		lo := time.Duration(float64(pre) * 0.5)
		for i := 0; i < 200; i++ {
			d := p.Delay(attempt)
			if d < lo || d > pre {
				t.Fatalf("attempt %d draw %d: delay %v outside [%v, %v]", attempt, i, d, lo, pre)
			}
		}
	}
}

// TestDelaySeededReproducible pins that equal seeds yield equal delay
// sequences (what keeps retry-timing tests deterministic) and different
// seeds actually jitter.
func TestDelaySeededReproducible(t *testing.T) {
	a := New(10*time.Millisecond, time.Second).WithSource(7)
	b := New(10*time.Millisecond, time.Second).WithSource(7)
	var diverged bool
	c := New(10*time.Millisecond, time.Second).WithSource(8)
	for i := 0; i < 32; i++ {
		da, db, dc := a.Delay(i%6), b.Delay(i%6), c.Delay(i%6)
		if da != db {
			t.Fatalf("draw %d: same seed diverged (%v vs %v)", i, da, db)
		}
		if da != dc {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds produced identical 32-draw sequences")
	}
}

// TestSleepHonoursContext asserts Sleep returns promptly with the
// context's error when cancelled mid-delay.
func TestSleepHonoursContext(t *testing.T) {
	p := Policy{Base: time.Hour, Cap: time.Hour, Factor: 2}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Sleep(ctx, 0) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Sleep returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return after cancellation")
	}
	// Zero-delay sleeps return immediately without arming a timer.
	if err := (Policy{}).Sleep(context.Background(), 0); err != nil {
		t.Fatalf("zero-delay Sleep: %v", err)
	}
}
