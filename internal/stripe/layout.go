package stripe

import "fmt"

// Layout describes round-robin striping of a file over the I/O nodes: byte
// ranges map to stripe units of StripeSize bytes, unit k living on node
// (k + FirstNode) mod NumNodes. The paper uses 64 KB units over 8 nodes
// (Table II).
type Layout struct {
	NumNodes   int
	StripeSize int64
	// FirstNode lets different files start their round-robin at different
	// nodes (PVFS distributes file starts), which spreads signatures.
	FirstNode int
}

// DefaultLayout returns the Table II layout: 8 I/O nodes, 64 KB stripes.
func DefaultLayout() Layout { return Layout{NumNodes: 8, StripeSize: 64 << 10} }

// Validate reports the first configuration problem, or nil.
func (l Layout) Validate() error {
	switch {
	case l.NumNodes <= 0:
		return fmt.Errorf("stripe: NumNodes %d must be positive", l.NumNodes)
	case l.StripeSize <= 0:
		return fmt.Errorf("stripe: StripeSize %d must be positive", l.StripeSize)
	case l.FirstNode < 0 || l.FirstNode >= l.NumNodes:
		return fmt.Errorf("stripe: FirstNode %d out of [0,%d)", l.FirstNode, l.NumNodes)
	}
	return nil
}

// NodeOf returns the I/O node holding stripe unit k.
func (l Layout) NodeOf(k int64) int {
	return int((k + int64(l.FirstNode)) % int64(l.NumNodes))
}

// UnitOf returns the stripe unit containing byte offset.
func (l Layout) UnitOf(offset int64) int64 { return offset / l.StripeSize }

// Chunk is the portion of an access that lands on one I/O node, expressed
// in that node's local coordinates: Unit is the global stripe-unit index
// (which the node can translate to a local block), Offset the byte offset
// inside the unit.
type Chunk struct {
	Node   int
	Unit   int64
	Offset int64
	Length int64
}

// Chunks splits the byte range [offset, offset+length) into per-stripe-unit
// chunks in file order. A non-positive length yields nil.
func (l Layout) Chunks(offset, length int64) []Chunk {
	if length <= 0 || offset < 0 {
		return nil
	}
	first := l.UnitOf(offset)
	last := l.UnitOf(offset + length - 1)
	out := make([]Chunk, 0, last-first+1)
	for u := first; u <= last; u++ {
		start := u * l.StripeSize
		end := start + l.StripeSize
		lo := offset
		if start > lo {
			lo = start
		}
		hi := offset + length
		if end < hi {
			hi = end
		}
		out = append(out, Chunk{
			Node:   l.NodeOf(u),
			Unit:   u,
			Offset: lo - start,
			Length: hi - lo,
		})
	}
	return out
}

// SignatureFor returns the I/O-node signature of the byte range — the set D
// of nodes a data access visits, "calculated based on the stripe size"
// (§IV-B).
func (l Layout) SignatureFor(offset, length int64) Signature {
	s := NewSignature(l.NumNodes)
	if length <= 0 || offset < 0 {
		return s
	}
	first := l.UnitOf(offset)
	last := l.UnitOf(offset + length - 1)
	if last-first+1 >= int64(l.NumNodes) {
		// The range wraps the whole ring.
		for i := 0; i < l.NumNodes; i++ {
			s.Set(i)
		}
		return s
	}
	for u := first; u <= last; u++ {
		s.Set(l.NodeOf(u))
	}
	return s
}
