package eventretain_test

import (
	"testing"

	"sdds/internal/analysis"
	"sdds/internal/analysis/analysistest"
	"sdds/internal/analysis/eventretain"
)

// TestEventretain covers every retention kind (field, global, element,
// append), the retained-handle and safe-local allowed paths, local-taint
// tracking, and the //sddsvet:ignore suppression path.
func TestEventretain(t *testing.T) {
	analysistest.Run(t, "testdata/src/eventretainbad", eventretain.Analyzer)
}

// TestEventretainSkipsEnginePackage proves the engine's own package is out
// of scope: its queue and free list legitimately hold events, and the
// analyzer must not flag its internals.
func TestEventretainSkipsEnginePackage(t *testing.T) {
	mod, err := analysis.LoadModule("../../..", "internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(mod, mod.Selected[0], []*analysis.Analyzer{eventretain.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("internal/sim produced %d diagnostics, want 0: %v", len(diags), diags)
	}
}
