package harness

import (
	"fmt"

	"sdds/internal/cluster"
)

// PlanRequests derives the complete distinct run plan of the experiments
// as canonical Requests, in deterministic order (the first experiment to
// need a key wins its slot — the same order Prime executes). This is the
// partitionable form of the plan: a sharded sweep coordinator hands
// slices of it to workers, and because every element is canonical, the
// shard contents are content-addressed and stable across processes.
func PlanRequests(exps []Experiment, c Config) []Request {
	c = c.withDefaults()
	specs := planFor(exps, c)
	out := make([]Request, len(specs))
	for i, sp := range specs {
		out[i] = sp.key(c)
	}
	return out
}

// Install seeds the session cache with an externally-produced result —
// one a sharded worker simulated and the coordinator merged back. The
// request is normalized first; the result is installed as a resolved,
// journal-provenance entry so later Run/RunRequest calls hit it without
// simulating. An existing entry (resolved or in flight) wins: Install
// reports false and changes nothing, mirroring the store's first-write-
// wins semantics. The session's own journal is NOT appended — installed
// results were already durably recorded by whoever produced them.
func (s *Session) Install(req Request, res *cluster.Result) (bool, error) {
	norm, err := req.Normalize()
	if err != nil {
		return false, err
	}
	if res == nil {
		return false, fmt.Errorf("harness: install %s: nil result", norm.Key())
	}
	key := norm.canonical()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.memo[key]; exists {
		return false, nil
	}
	done := make(chan struct{})
	close(done)
	s.memo[key] = &memoEntry{done: done, res: res, preloaded: true}
	s.preloaded++
	return true, nil
}
