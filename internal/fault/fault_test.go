package fault

import (
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Config){
		func(c *Config) { c.Rates[SiteDiskRead] = -0.1 },
		func(c *Config) { c.Rates[SiteNetDrop] = 1.5 },
		func(c *Config) { c.Rates[SiteNodeStall] = nan() },
		func(c *Config) { c.RetryLatencyUS = -1 },
		func(c *Config) { c.NodeStallUS = -5 },
		func(c *Config) { c.MaxRetries = 0 },
	}
	for i, m := range muts {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

func TestParseSpecRoundTrip(t *testing.T) {
	cfg, err := ParseSpec("read=0.01, net-drop=0.005, seed=7, retries=5, stall-lat=9000")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Rates[SiteDiskRead] != 0.01 || cfg.Rates[SiteNetDrop] != 0.005 {
		t.Fatalf("rates = %v", cfg.Rates)
	}
	if cfg.Seed != 7 || cfg.MaxRetries != 5 || cfg.NodeStallUS != 9000 {
		t.Fatalf("knobs = %+v", cfg)
	}
	// Unset knobs keep their defaults.
	if cfg.RemapLatencyUS != DefaultConfig().RemapLatencyUS {
		t.Fatalf("remap latency = %d", cfg.RemapLatencyUS)
	}
	// Equal configs render the same canonical string; field order in the
	// spec must not matter.
	cfg2, err := ParseSpec("seed=7,retries=5,net-drop=0.005,stall-lat=9000,read=0.01")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Canon() != cfg2.Canon() {
		t.Fatalf("canonical forms differ:\n%s\n%s", cfg.Canon(), cfg2.Canon())
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus=0.1",       // unknown site
		"read",            // not key=value
		"read=zero",       // unparsable rate
		"read=2",          // out-of-range rate
		"retries=0",       // invalid bound
		"retry-lat=-5",    // negative latency
		"retries=maybe",   // unparsable int
		"spinup-lat=nope", // unparsable knob
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestParseSpecEmptyMeansNoInjection(t *testing.T) {
	cfg, err := ParseSpec("   ")
	if err != nil || cfg != nil {
		t.Fatalf("empty spec = %v, %v; want nil, nil", cfg, err)
	}
	if cfg.Canon() != "" {
		t.Fatalf("nil config canon = %q", cfg.Canon())
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Enabled() || in.Hit(SiteDiskRead) || in.MaxRetries() != 0 {
		t.Fatal("nil injector not inert")
	}
	if in.Stats().Total() != 0 || in.RetryLatencyUS() != 0 || in.NodeStallUS() != 0 {
		t.Fatal("nil injector accessors not zero")
	}
	if NewInjector(nil, 1) != nil {
		t.Fatal("NewInjector(nil) != nil")
	}
}

func TestZeroRateSiteNeverAdvancesState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rates[SiteNetDrop] = 0.5
	in := NewInjector(&cfg, 42)
	before := in.state
	for i := 0; i < 1000; i++ {
		if in.Hit(SiteDiskRead) {
			t.Fatal("zero-rate site fired")
		}
	}
	if in.state != before {
		t.Fatal("zero-rate draws advanced stream state")
	}
	// The enabled site's stream advances exactly once per draw.
	in.Hit(SiteNetDrop)
	if in.state[SiteNetDrop] == before[SiteNetDrop] {
		t.Fatal("enabled draw did not advance its stream")
	}
	if in.state[SiteDiskRead] != before[SiteDiskRead] {
		t.Fatal("enabled draw leaked into another site's stream")
	}
}

func TestDeterministicAcrossInjectors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rates[SiteDiskRead] = 0.3
	cfg.Rates[SiteNetDrop] = 0.05
	draw := func() []bool {
		in := NewInjector(&cfg, 42)
		out := make([]bool, 0, 2000)
		for i := 0; i < 1000; i++ {
			out = append(out, in.Hit(SiteDiskRead), in.Hit(SiteNetDrop))
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identical injectors", i)
		}
	}
}

func TestSeedsProduceDistinctStreams(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rates[SiteDiskRead] = 0.5
	pattern := func(runSeed int64) string {
		in := NewInjector(&cfg, runSeed)
		var b strings.Builder
		for i := 0; i < 200; i++ {
			if in.Hit(SiteDiskRead) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	if pattern(1) == pattern(2) {
		t.Fatal("different run seeds produced identical fault patterns")
	}
	cfg2 := cfg
	cfg2.Seed = 99
	in2 := NewInjector(&cfg2, 1)
	var b strings.Builder
	for i := 0; i < 200; i++ {
		if in2.Hit(SiteDiskRead) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	if pattern(1) == b.String() {
		t.Fatal("different fault seeds produced identical fault patterns")
	}
}

func TestRateOneAlwaysFires(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rates[SiteSpinUpFail] = 1.0
	in := NewInjector(&cfg, 3)
	for i := 0; i < 100; i++ {
		if !in.Hit(SiteSpinUpFail) {
			t.Fatal("rate-1 site failed to fire")
		}
	}
	if in.Stats().Count(SiteSpinUpFail) != 100 {
		t.Fatalf("count = %d", in.Stats().Count(SiteSpinUpFail))
	}
}

func TestRateIsApproximatelyHonoured(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rates[SiteNetDup] = 0.1
	in := NewInjector(&cfg, 7)
	const n = 100_000
	for i := 0; i < n; i++ {
		in.Hit(SiteNetDup)
	}
	got := float64(in.Stats().Count(SiteNetDup)) / n
	if got < 0.09 || got > 0.11 {
		t.Fatalf("empirical rate %.4f for configured 0.1", got)
	}
	if total := in.Stats().Total(); total != in.Stats().Count(SiteNetDup) {
		t.Fatalf("Total %d != site count", total)
	}
}

func TestSiteStrings(t *testing.T) {
	if SiteDiskRead.String() != "read" || SiteNodeStall.String() != "stall" {
		t.Fatal("site names drifted from spec keys")
	}
	if Site(200).String() != "invalid" {
		t.Fatal("out-of-range site must stringify invalid")
	}
	if NumSites() != 8 {
		t.Fatalf("NumSites = %d", NumSites())
	}
	if (Stats{}).Count(Site(200)) != 0 {
		t.Fatal("out-of-range Count must be 0")
	}
}
