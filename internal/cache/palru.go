package cache

import (
	"container/list"
	"fmt"
)

// PALRU is a power-aware variant of the block LRU, after the PA-LRU idea
// of Zhu et al. [43] that the paper's related-work section discusses:
// when evicting, it prefers (within a bounded look-ahead from the LRU end)
// blocks whose home disk is currently active, keeping blocks that would
// require waking a sleeping or slowed disk to refetch. Used by the I/O
// node's storage cache in the cache-policy ablation.
type PALRU struct {
	capacity int64
	used     int64
	order    *list.List
	items    map[Key]*list.Element

	// active reports whether the disk holding a block is awake (cheap to
	// refetch from). Blocks of sleeping disks are protected.
	active func(Key) bool
	// lookahead bounds how far from the LRU end the eviction scan may
	// search for an active-disk victim before falling back to strict LRU.
	lookahead int

	hits, misses, evictions, protections int64
}

// NewPALRU builds a power-aware cache. active may be nil (degenerates to
// plain LRU); lookahead ≤ 0 defaults to 8.
func NewPALRU(capacity int64, active func(Key) bool, lookahead int) (*PALRU, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: capacity %d must be positive", capacity)
	}
	if lookahead <= 0 {
		lookahead = 8
	}
	return &PALRU{
		capacity:  capacity,
		order:     list.New(),
		items:     make(map[Key]*list.Element),
		active:    active,
		lookahead: lookahead,
	}, nil
}

// Capacity returns the byte budget.
func (c *PALRU) Capacity() int64 { return c.capacity }

// Used returns resident bytes.
func (c *PALRU) Used() int64 { return c.used }

// Len returns resident block count.
func (c *PALRU) Len() int { return len(c.items) }

// Stats returns hit/miss/eviction counters.
func (c *PALRU) Stats() (hits, misses, evictions int64) {
	return c.hits, c.misses, c.evictions
}

// Protections counts evictions redirected away from sleeping disks.
func (c *PALRU) Protections() int64 { return c.protections }

// Contains reports residency without promotion.
func (c *PALRU) Contains(k Key) bool {
	_, ok := c.items[k]
	return ok
}

// Get probes and promotes.
func (c *PALRU) Get(k Key) (int64, bool) {
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return 0, false
	}
	c.hits++
	c.order.MoveToFront(el)
	e, _ := el.Value.(*entry)
	if e == nil {
		return 0, false
	}
	return e.size, true
}

// Put inserts or refreshes a block, evicting power-aware victims to fit.
func (c *PALRU) Put(k Key, size int64) (evicted []Key, ok bool) {
	if size <= 0 || size > c.capacity {
		return nil, false
	}
	if el, exists := c.items[k]; exists {
		e, _ := el.Value.(*entry)
		if e != nil {
			c.used += size - e.size
			e.size = size
		}
		c.order.MoveToFront(el)
	} else {
		c.items[k] = c.order.PushFront(&entry{key: k, size: size})
		c.used += size
	}
	for c.used > c.capacity {
		el := c.pickVictim(k)
		if el == nil {
			break
		}
		e, _ := el.Value.(*entry)
		if e == nil {
			break
		}
		c.order.Remove(el)
		delete(c.items, e.key)
		c.used -= e.size
		c.evictions++
		evicted = append(evicted, e.key)
	}
	return evicted, true
}

// pickVictim scans up to lookahead entries from the LRU end, returning the
// first whose disk is active; with none found it falls back to the strict
// LRU entry. The just-inserted key is never chosen.
func (c *PALRU) pickVictim(justInserted Key) *list.Element {
	var fallback *list.Element
	scanned := 0
	for el := c.order.Back(); el != nil && scanned < c.lookahead; el = el.Prev() {
		e, ok := el.Value.(*entry)
		if !ok || e.key == justInserted {
			continue
		}
		scanned++
		if fallback == nil {
			fallback = el
		}
		if c.active == nil || c.active(e.key) {
			if el != fallback {
				c.protections++
			}
			return el
		}
	}
	return fallback
}

// Remove invalidates a block.
func (c *PALRU) Remove(k Key) bool {
	el, ok := c.items[k]
	if !ok {
		return false
	}
	e, _ := el.Value.(*entry)
	c.order.Remove(el)
	delete(c.items, k)
	if e != nil {
		c.used -= e.size
	}
	return true
}
