// Command tracecheck validates a Chrome trace-event JSON file (the output
// of `sddsim -trace` or `sddstables -trace`) against the subset of the
// trace-event format this repo emits. It is the assertion half of `make
// trace-smoke`: the exporter's unit tests check structure in-process, this
// checks the actual bytes a user would load into chrome://tracing.
//
//	tracecheck trace.json
//
// The validation itself lives in probe.CheckChromeTrace, shared with the
// sddsdiag bundle inspector. Exit status 1 on any violation, with one line
// per problem.
package main

import (
	"fmt"
	"os"

	"sdds/internal/probe"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: tracecheck <trace.json>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	problems, stats, err := check(data)
	if err != nil {
		return err
	}
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, "tracecheck:", p)
	}
	if len(problems) > 0 {
		return fmt.Errorf("%d problems in %s", len(problems), args[0])
	}
	fmt.Printf("%s: ok (%s)\n", args[0], stats)
	return nil
}

// check delegates to the shared validator; kept as a local name so the
// command's tests exercise exactly what main runs.
func check(data []byte) (problems []string, stats string, err error) {
	return probe.CheckChromeTrace(data)
}
