// Package disk models a server-class hard disk at the fidelity the paper's
// evaluation needs: seek/rotation/transfer mechanics, an elevator request
// queue, a power-state machine with spin-up/spin-down and multi-speed (DRPM)
// rotational transitions, and exact per-state energy integration.
//
// The default parameters reproduce Table II of the paper: a 100 GB,
// 12,000 RPM disk with 17.1 W idle, 36.6 W active, 32.1 W seek, 7.2 W
// standby and 44.8 W spin-up power, 16 s spin-up and 10 s spin-down times,
// and multi-speed operation from 3,600 RPM in 1,200 RPM steps with the
// quadratic power model Π = K·ω²/R (Eq. 1).
package disk

import (
	"fmt"

	"sdds/internal/sim"
)

// Params configures a disk model. The zero value is not usable; start from
// DefaultParams.
type Params struct {
	// Geometry.
	CapacityGB         float64 // advertised capacity
	SectorSize         int     // bytes per sector
	SectorsPerCylinder int     // sectors in one cylinder (all surfaces)

	// Mechanics at maximum RPM.
	MaxRPM          int
	MinRPM          int // lowest multi-speed level
	RPMStep         int // granularity of multi-speed levels
	SeekBase        sim.Duration
	SeekFactor      float64      // µs added per sqrt(cylinder distance)
	MaxTransferMBps float64      // media rate at MaxRPM; scales linearly with RPM
	RPMStepTime     sim.Duration // time to shift one RPM step (no service meanwhile)

	// Power (Watts) at maximum RPM. Idle/Active/Seek scale quadratically
	// with RPM per Eq. 1; Standby and transition powers are constant.
	IdlePowerW     float64
	ActivePowerW   float64
	SeekPowerW     float64
	StandbyPowerW  float64
	SpinUpPowerW   float64
	SpinDownPowerW float64

	SpinUpTime   sim.Duration
	SpinDownTime sim.Duration

	// Bus between the I/O node and this disk (Ultra-3 SCSI in the paper).
	BusMBps float64
}

// DefaultParams returns the Table II disk configuration.
func DefaultParams() Params {
	return Params{
		CapacityGB:         100,
		SectorSize:         512,
		SectorsPerCylinder: 1024,
		MaxRPM:             12000,
		MinRPM:             3600,
		RPMStep:            1200,
		SeekBase:           sim.MilliToTime(1.0),
		SeekFactor:         25.0, // ≈4.5 ms average seek over 20k cylinders
		MaxTransferMBps:    65,
		RPMStepTime:        sim.MilliToTime(25), // per 1,200-RPM step (DRPM-class fast transitions)

		IdlePowerW:     17.1,
		ActivePowerW:   36.6,
		SeekPowerW:     32.1,
		StandbyPowerW:  7.2,
		SpinUpPowerW:   44.8,
		SpinDownPowerW: 14.0,
		SpinUpTime:     16 * sim.Second,
		SpinDownTime:   10 * sim.Second,
		BusMBps:        160, // Ultra-3 SCSI
	}
}

// Validate reports the first configuration problem, or nil.
func (p Params) Validate() error {
	switch {
	case p.CapacityGB <= 0:
		return fmt.Errorf("disk: capacity %.1f GB must be positive", p.CapacityGB)
	case p.SectorSize <= 0:
		return fmt.Errorf("disk: sector size %d must be positive", p.SectorSize)
	case p.SectorsPerCylinder <= 0:
		return fmt.Errorf("disk: sectors per cylinder %d must be positive", p.SectorsPerCylinder)
	case p.MaxRPM <= 0:
		return fmt.Errorf("disk: max RPM %d must be positive", p.MaxRPM)
	case p.MinRPM <= 0 || p.MinRPM > p.MaxRPM:
		return fmt.Errorf("disk: min RPM %d must be in (0, %d]", p.MinRPM, p.MaxRPM)
	case p.RPMStep <= 0:
		return fmt.Errorf("disk: RPM step %d must be positive", p.RPMStep)
	case (p.MaxRPM-p.MinRPM)%p.RPMStep != 0:
		return fmt.Errorf("disk: RPM range %d..%d not divisible by step %d", p.MinRPM, p.MaxRPM, p.RPMStep)
	case p.MaxTransferMBps <= 0:
		return fmt.Errorf("disk: transfer rate %.1f MB/s must be positive", p.MaxTransferMBps)
	case p.SpinUpTime <= 0 || p.SpinDownTime <= 0:
		return fmt.Errorf("disk: spin-up/down times must be positive")
	case p.IdlePowerW <= 0 || p.ActivePowerW <= 0 || p.SeekPowerW <= 0:
		return fmt.Errorf("disk: operating powers must be positive")
	case p.StandbyPowerW < 0 || p.SpinUpPowerW <= 0 || p.SpinDownPowerW <= 0:
		return fmt.Errorf("disk: standby/transition powers invalid")
	case p.BusMBps <= 0:
		return fmt.Errorf("disk: bus rate %.1f MB/s must be positive", p.BusMBps)
	}
	return nil
}

// Levels returns the available rotational speeds, fastest first.
func (p Params) Levels() []int {
	n := (p.MaxRPM-p.MinRPM)/p.RPMStep + 1
	levels := make([]int, 0, n)
	for rpm := p.MaxRPM; rpm >= p.MinRPM; rpm -= p.RPMStep {
		levels = append(levels, rpm)
	}
	return levels
}

// TotalSectors returns the number of addressable sectors.
func (p Params) TotalSectors() int64 {
	return int64(p.CapacityGB * 1e9 / float64(p.SectorSize))
}

// Cylinders returns the number of cylinders implied by the geometry.
func (p Params) Cylinders() int64 {
	c := p.TotalSectors() / int64(p.SectorsPerCylinder)
	if c < 1 {
		return 1
	}
	return c
}

// scale returns the quadratic power-scaling factor (rpm/max)² from Eq. 1.
func (p Params) scale(rpm int) float64 {
	r := float64(rpm) / float64(p.MaxRPM)
	return r * r
}

// IdlePowerAt returns idle power at the given rotational speed.
func (p Params) IdlePowerAt(rpm int) float64 { return p.IdlePowerW * p.scale(rpm) }

// ActivePowerAt returns read/write power at the given rotational speed.
func (p Params) ActivePowerAt(rpm int) float64 { return p.ActivePowerW * p.scale(rpm) }

// SeekPowerAt returns seek power at the given rotational speed.
func (p Params) SeekPowerAt(rpm int) float64 { return p.SeekPowerW * p.scale(rpm) }

// TransferRateAt returns the media rate in bytes/µs at the given speed. The
// media rate scales linearly with RPM (fixed bit density, slower linear
// velocity).
func (p Params) TransferRateAt(rpm int) float64 {
	bytesPerSec := p.MaxTransferMBps * 1e6 * float64(rpm) / float64(p.MaxRPM)
	return bytesPerSec / 1e6 // bytes per microsecond
}

// FullRotation returns the duration of one platter revolution at rpm.
func (p Params) FullRotation(rpm int) sim.Duration {
	if rpm <= 0 {
		return 0
	}
	return sim.Duration(60.0 * 1e6 / float64(rpm))
}

// SeekTime returns the head-movement time for a seek across dist cylinders.
func (p Params) SeekTime(dist int64) sim.Duration {
	if dist <= 0 {
		return 0
	}
	return p.SeekBase + sim.Duration(p.SeekFactor*sqrtInt(dist))
}

// UpShiftFactor scales upward transitions relative to RPMStepTime:
// accelerating the spindle fights inertia with bounded motor torque, while
// decelerating largely coasts — the asymmetry behind the paper's remark
// that recovery from a very low speed "can be very long".
const UpShiftFactor = 4

// RPMShiftTime returns the time to move between two speeds (one step at a
// time, no service in between). Upward shifts cost UpShiftFactor× more per
// step than downward ones.
func (p Params) RPMShiftTime(from, to int) sim.Duration {
	d := from - to
	up := false
	if d < 0 {
		d = -d
		up = true
	}
	t := sim.Duration(d/p.RPMStep) * p.RPMStepTime
	if up {
		t *= UpShiftFactor
	}
	return t
}

// ClampRPM snaps an arbitrary speed to the nearest valid level in
// [MinRPM, MaxRPM].
func (p Params) ClampRPM(rpm int) int {
	if rpm >= p.MaxRPM {
		return p.MaxRPM
	}
	if rpm <= p.MinRPM {
		return p.MinRPM
	}
	// Snap to grid anchored at MinRPM.
	k := (rpm - p.MinRPM + p.RPMStep/2) / p.RPMStep
	return p.MinRPM + k*p.RPMStep
}

// sqrtInt is an integer-domain Newton square root returning float64; it
// avoids importing math for one call site and is exact enough for seek
// curves.
func sqrtInt(v int64) float64 {
	if v <= 0 {
		return 0
	}
	x := float64(v)
	// Newton iterations from a decent initial guess.
	g := x / 2
	if g < 1 {
		g = 1
	}
	for i := 0; i < 20; i++ {
		g = (g + x/g) / 2
	}
	return g
}
