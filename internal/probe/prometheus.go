package probe

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry snapshot in the Prometheus text
// exposition format (version 0.0.4): a # TYPE line per metric — counters
// stay counters, high-water gauges become gauges, and fixed-bucket
// histograms render as cumulative _bucket{le="..."} series with _sum and
// _count. Metric names are sanitized to the Prometheus charset (runs of
// other characters collapse to "_"). Output is sorted by name, so two
// snapshots of equal registries render identically.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type row struct {
		name string
		text string
	}
	rows := make([]row, 0, len(r.values)+len(r.hists))
	for i, n := range r.names {
		name := promName(n)
		typ := "counter"
		if r.isGauge[i] {
			typ = "gauge"
		}
		rows = append(rows, row{name: name,
			text: fmt.Sprintf("# TYPE %s %s\n%s %g\n", name, typ, name, r.values[i])})
	}
	for _, h := range r.hists {
		name := promName(h.name)
		var b strings.Builder
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		cum := uint64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum)
		}
		cum += h.counts[len(h.bounds)]
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(&b, "%s_sum %g\n", name, h.sum)
		fmt.Fprintf(&b, "%s_count %d\n", name, h.count)
		rows = append(rows, row{name: name, text: b.String()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, rw := range rows {
		if _, err := io.WriteString(w, rw.text); err != nil {
			return err
		}
	}
	return nil
}

// promFloat renders a histogram bucket bound the way Prometheus clients
// conventionally do: shortest round-trip decimal.
func promFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// promName maps a registry metric name ("disk.spinups", "sweep/runs") to
// the Prometheus charset [a-zA-Z0-9_:].
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	pendingSep := false
	for _, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			pendingSep = b.Len() > 0
			continue
		}
		if pendingSep {
			b.WriteByte('_')
			pendingSep = false
		}
		b.WriteRune(c)
	}
	if b.Len() == 0 {
		return "metric"
	}
	out := b.String()
	if out[0] >= '0' && out[0] <= '9' {
		out = "_" + out
	}
	return out
}
