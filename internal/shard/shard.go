// Package shard implements fault-tolerant distribution of a sweep's run
// plan: the deterministically-ordered plan is partitioned into
// content-keyed shards, a lease-based Coordinator hands shards to
// workers under expiring heartbeat-renewed leases, and Worker executes
// them against any coordinator endpoint (in-process or the sddsd HTTP
// API via Client).
//
// The robustness contract is exactly-once results from at-least-once
// execution: a shard whose lease expires (crashed, stalled, or
// partitioned worker) is requeued and may execute again, but every
// result lands in a content-addressed store whose first-write-wins,
// identical-bytes-dedup semantics make re-execution invisible — killing
// workers at arbitrary points cannot change a single output byte,
// because the simulator is deterministic in its inputs and the store
// refuses conflicting writes.
package shard

import (
	"crypto/sha256"
	"encoding/hex"

	"sdds/internal/harness"
)

// Shard is one content-keyed slice of a sweep plan: a contiguous run of
// the deterministically-ordered canonical requests. Its ID is derived
// from the member content keys, so the same plan always partitions into
// the same shards, across processes and sweep resubmissions.
type Shard struct {
	ID       string            `json:"id"`
	Requests []harness.Request `json:"requests"`
}

// NewShard builds a shard over the given canonical requests, deriving
// its content-keyed ID.
func NewShard(reqs []harness.Request) Shard {
	h := sha256.New()
	for _, r := range reqs {
		h.Write([]byte(r.ContentKey()))
		h.Write([]byte{'\n'})
	}
	sum := h.Sum(nil)
	return Shard{ID: hex.EncodeToString(sum[:8]), Requests: reqs}
}

// Partition slices the plan into shards of at most size requests each,
// preserving plan order (size <= 0 defaults to 4). Requests must already
// be canonical and distinct — PlanRequests and the service's sweep
// expansion both guarantee it.
func Partition(reqs []harness.Request, size int) []Shard {
	if size <= 0 {
		size = 4
	}
	var out []Shard
	for start := 0; start < len(reqs); start += size {
		end := start + size
		if end > len(reqs) {
			end = len(reqs)
		}
		out = append(out, NewShard(reqs[start:end]))
	}
	return out
}
