package disk

import (
	"errors"
	"fmt"

	"sdds/internal/fault"
	"sdds/internal/probe"
	"sdds/internal/sim"
)

// Op distinguishes reads from writes.
type Op int

// Request operations.
const (
	OpRead Op = iota + 1
	OpWrite
)

// String returns "read" or "write".
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return "invalid"
	}
}

// Request is one disk I/O. Done, if non-nil, is invoked when the media
// transfer completes — successfully or not: a transient injected fault
// surfaces as a non-nil Err on the completed request, and the submitter
// decides whether to resubmit. Submit clears Err, so reusing a request
// object for a retry needs no extra bookkeeping.
type Request struct {
	Op     Op
	Sector int64
	Bytes  int64
	Done   func(now sim.Time, r *Request)

	// Err is set before Done fires when the transfer failed (ErrTransient
	// under fault injection); nil on success.
	Err error

	// Filled in by the disk.
	Arrival  sim.Time
	Start    sim.Time // service start (seek begin)
	Finish   sim.Time // media transfer end
	cylinder int64
	media    sim.Duration // transfer duration, fixed at service start
}

// QueueDelay returns how long the request waited before service began.
func (r *Request) QueueDelay() sim.Duration { return r.Start - r.Arrival }

// Latency returns total request latency (arrival to completion).
func (r *Request) Latency() sim.Duration { return r.Finish - r.Arrival }

// Listener receives power-management hooks from a disk. Implementations are
// the power policies; hooks run synchronously inside the disk's event
// handlers on the engine goroutine.
type Listener interface {
	// RequestArrived fires on every request submission, before service is
	// attempted. The policy may issue control calls (SpinUp, SetTargetRPM)
	// from inside the hook.
	RequestArrived(d *Disk, now sim.Time)
	// IdleStarted fires when service completes and the queue is empty.
	IdleStarted(d *Disk, now sim.Time)
}

// IdleRecorder receives the length of every closed idle gap (completion of
// the last request to arrival of the next), the quantity whose CDF the paper
// plots in Fig. 12.
type IdleRecorder interface {
	RecordIdle(d *Disk, gap sim.Duration)
}

// Stats aggregates per-disk service counters.
type Stats struct {
	Arrived      int64
	Completed    int64
	BytesRead    int64
	BytesWritten int64
	QueueDelay   sim.Duration
	ServiceTime  sim.Duration
	SpinUps      int64
	SpinDowns    int64
	RPMShifts    int64
	IdleGaps     int64
	// QueueHighWater is the deepest the waiting queue ever got (excluding
	// the request in service).
	QueueHighWater int64
	// Fault-injection counters (all zero without an injector).
	TransientErrors int64 // completions that surfaced ErrTransient
	BadSectorRemaps int64 // transfers that paid the remap penalty
	SpinUpFailures  int64 // spin-up attempts that aborted and re-issued
	SpinUpDelays    int64 // spin-ups that paid the extra delay
}

// Control errors returned to power policies.
var (
	// ErrNotIdle is returned when a control action needs an idle disk.
	ErrNotIdle = errors.New("disk: not idle")
	// ErrNotStandby is returned by SpinUp when the disk is not stopped.
	ErrNotStandby = errors.New("disk: not in standby")
)

// ErrTransient marks an injected transient media error on a completed
// request: the transfer consumed its full service time but delivered
// nothing, and the submitter should retry.
var ErrTransient = errors.New("disk: transient media error")

// Disk is the device model. All methods must be called from the engine
// goroutine (i.e. inside event handlers).
type Disk struct {
	ID     int
	params Params
	eng    *sim.Engine

	state     State
	rpm       int
	targetRPM int
	rampFirst bool // serve only after reaching targetRPM

	queue   *elevator
	current *Request
	headCyl int64

	account  *EnergyAccount
	listener Listener
	recorder IdleRecorder

	idleGapOpen  bool
	idleGapStart sim.Time
	wantUp       bool       // spin up again once an in-flight spin-down completes
	transStart   sim.Time   // start of the in-flight spin transition
	transEvent   *sim.Event // completion event of the in-flight transition
	upSince      sim.Time   // when an upward RPM target became pending
	shiftTo      int        // speed the in-flight shift lands on

	// Callbacks bound once at construction so the service path schedules
	// without allocating a closure per event.
	transferCb sim.ArgHandler
	completeCb sim.ArgHandler
	spunUpFn   sim.Handler
	shiftedFn  sim.Handler
	standbyFn  sim.Handler
	spinFailFn sim.Handler

	// pr is the engine's flight recorder, cached at construction. Nil when
	// tracing is off; probe.Emit is nil-safe.
	pr *probe.Probe

	// flt is the engine's fault injector, cached at construction like the
	// probe. Nil when injection is off; Injector methods are nil-safe.
	flt *fault.Injector
	// spinFails counts consecutive failed spin-up attempts so a re-issue
	// storm is bounded by the injector's MaxRetries.
	spinFails int

	stats Stats
}

// New returns a disk spinning at full speed in the idle state.
func New(eng *sim.Engine, id int, p Params) (*Disk, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d := &Disk{
		ID:        id,
		params:    p,
		eng:       eng,
		state:     StateIdle,
		rpm:       p.MaxRPM,
		targetRPM: p.MaxRPM,
		queue:     newElevator(),
		pr:        eng.Probe(),
		flt:       eng.Faults(),
	}
	d.account = NewEnergyAccount(eng.Now(), StateIdle, p.IdlePowerAt(d.rpm))
	d.transferCb = d.onTransfer
	d.completeCb = d.onComplete
	d.spunUpFn = d.onSpunUp
	d.shiftedFn = d.onShifted
	d.standbyFn = d.onStandby
	d.spinFailFn = d.onSpinFail
	d.openIdleGap(eng.Now())
	return d, nil
}

// MustNew is New, panicking on invalid parameters (for tests and examples).
func MustNew(eng *sim.Engine, id int, p Params) *Disk {
	d, err := New(eng, id, p)
	if err != nil {
		panic(err)
	}
	return d
}

// Params returns the disk's configuration.
func (d *Disk) Params() Params { return d.params }

// State returns the current power/activity state.
func (d *Disk) State() State { return d.state }

// RPM returns the current rotational speed (the speed being left, during a
// shift).
func (d *Disk) RPM() int { return d.rpm }

// TargetRPM returns the commanded rotational speed.
func (d *Disk) TargetRPM() int { return d.targetRPM }

// QueueLen returns the number of waiting requests (excluding any in
// service).
func (d *Disk) QueueLen() int { return d.queue.Len() }

// Busy reports whether a request is in service.
func (d *Disk) Busy() bool { return d.current != nil }

// Stats returns a copy of the service counters.
func (d *Disk) Stats() Stats { return d.stats }

// Energy returns the energy account (live; use its methods with the current
// time).
func (d *Disk) Energy() *EnergyAccount { return d.account }

// SetListener installs the power-policy hook receiver (may be nil).
func (d *Disk) SetListener(l Listener) { d.listener = l }

// SetIdleRecorder installs the idle-gap recorder (may be nil).
func (d *Disk) SetIdleRecorder(r IdleRecorder) { d.recorder = r }

// setState transitions the power state and re-bases energy accounting.
func (d *Disk) setState(now sim.Time, s State, drawW float64) {
	d.state = s
	d.account.SetDraw(now, s, drawW)
	d.pr.Emit(probe.KindDiskState, int32(d.ID), int64(now), int64(s))
}

func (d *Disk) openIdleGap(now sim.Time) {
	d.idleGapOpen = true
	d.idleGapStart = now
}

func (d *Disk) closeIdleGap(now sim.Time) {
	if !d.idleGapOpen {
		return
	}
	d.idleGapOpen = false
	d.stats.IdleGaps++
	if d.recorder != nil {
		d.recorder.RecordIdle(d, now-d.idleGapStart)
	}
}

// Submit enqueues a request. Service begins immediately if the disk is
// ready; otherwise the request waits for the spindle (spin-up, RPM shift) or
// for queued predecessors.
func (d *Disk) Submit(r *Request) error {
	if r.Bytes <= 0 {
		return fmt.Errorf("disk %d: request bytes %d must be positive", d.ID, r.Bytes)
	}
	if r.Sector < 0 || r.Sector >= d.params.TotalSectors() {
		return fmt.Errorf("disk %d: sector %d out of range [0,%d)", d.ID, r.Sector, d.params.TotalSectors())
	}
	now := d.eng.Now()
	r.Arrival = now
	r.Err = nil
	r.cylinder = r.Sector / int64(d.params.SectorsPerCylinder)
	d.stats.Arrived++
	d.closeIdleGap(now)
	d.queue.Push(r)
	if depth := int64(d.queue.Len()); depth > d.stats.QueueHighWater {
		d.stats.QueueHighWater = depth
	}
	d.pr.Emit(probe.KindIOIssue, int32(d.ID), int64(now), r.Bytes)
	if d.listener != nil {
		d.listener.RequestArrived(d, now)
	}
	d.tryService(now)
	return nil
}

// tryService starts the next piece of work if the disk is able.
func (d *Disk) tryService(now sim.Time) {
	if d.current != nil {
		return
	}
	switch d.state {
	case StateSpinningDown:
		// A waiting request aborts the spin-down: the spindle reverses
		// from its current (partial) speed, so the recovery time is
		// proportional to how far the deceleration got.
		if d.queue.Len() > 0 {
			d.abortSpinDown(now)
		}
		return
	case StateSpinningUp, StateShiftingRPM:
		return // transition-complete handler will call back
	case StateStandby:
		if d.queue.Len() > 0 {
			d.beginSpinUp(now)
		}
		return
	case StateIdle:
		// An upward shift runs once the queue is empty, when the policy
		// demanded ramp-before-service, or after it has been deferred for
		// maxUpDefer — multi-speed disks serve at the current speed, but a
		// busy disk must not be trapped below the speed it needs to drain
		// its queue.
		if d.targetRPM > d.rpm &&
			(d.rampFirst || d.queue.Len() == 0 || now-d.upSince > maxUpDefer) {
			d.beginShift(now)
			return
		}
		// A pending downward ramp runs when idle (or when the policy
		// demanded ramp-before-service).
		if d.targetRPM < d.rpm && (d.rampFirst || d.queue.Len() == 0) {
			d.beginShift(now)
			return
		}
		if d.queue.Len() > 0 {
			d.beginRequest(now)
		}
	}
}

// beginRequest pops the elevator and runs seek → rotate → transfer.
//
//sddsvet:hotpath
func (d *Disk) beginRequest(now sim.Time) {
	r := d.queue.Pop(d.headCyl)
	if r == nil {
		return
	}
	d.current = r
	r.Start = now
	d.stats.QueueDelay += r.QueueDelay()

	dist := r.cylinder - d.headCyl
	if dist < 0 {
		dist = -dist
	}
	seek := d.params.SeekTime(dist)
	// Average rotational latency: half a revolution at the current speed.
	rot := d.params.FullRotation(d.rpm) / 2
	media := sim.Duration(float64(r.Bytes) / d.params.TransferRateAt(d.rpm))
	bus := sim.Duration(float64(r.Bytes) / (d.params.BusMBps * 1e6 / 1e6))
	if bus > media {
		media = bus // bus-limited transfer
	}
	// A bad-sector remap pays the redirection penalty on top of the
	// transfer: the sector is relocated, served, and the request succeeds.
	if d.flt.Hit(fault.SiteBadSector) {
		media += sim.Duration(d.flt.RemapLatencyUS())
		d.stats.BadSectorRemaps++
		d.pr.Emit(probe.KindFault, int32(fault.SiteBadSector), int64(now), int64(d.ID))
	}
	r.media = media
	d.headCyl = r.cylinder

	d.setState(now, StateSeeking, d.params.SeekPowerAt(d.rpm))
	d.eng.ScheduleArg(seek+rot, "disk.transfer", d.transferCb, r)
}

// onTransfer fires when seek+rotation finish: the media transfer begins at
// the power draw of the speed the disk is spinning at now.
//
//sddsvet:hotpath
func (d *Disk) onTransfer(t sim.Time, arg any) {
	r := arg.(*Request)
	d.setState(t, StateTransferring, d.params.ActivePowerAt(d.rpm))
	d.eng.ScheduleArg(r.media, "disk.complete", d.completeCb, r)
}

func (d *Disk) onComplete(t sim.Time, arg any) {
	d.completeRequest(t, arg.(*Request))
}

//sddsvet:hotpath
func (d *Disk) completeRequest(now sim.Time, r *Request) {
	r.Finish = now
	d.current = nil
	d.stats.Completed++
	d.pr.Emit(probe.KindIOComplete, int32(d.ID), int64(now), r.Bytes)
	d.stats.ServiceTime += now - r.Start
	// Transient media error: the transfer burned its service time but
	// delivered nothing. Surface it on the request and let the submitter
	// decide whether to resubmit (ionode retries with backoff).
	if (r.Op == OpRead && d.flt.Hit(fault.SiteDiskRead)) ||
		(r.Op == OpWrite && d.flt.Hit(fault.SiteDiskWrite)) {
		r.Err = ErrTransient
		d.stats.TransientErrors++
		site := fault.SiteDiskRead
		if r.Op == OpWrite {
			site = fault.SiteDiskWrite
		}
		d.pr.Emit(probe.KindFault, int32(site), int64(now), int64(d.ID))
	} else if r.Op == OpRead {
		d.stats.BytesRead += r.Bytes
	} else {
		d.stats.BytesWritten += r.Bytes
	}
	if d.queue.Len() > 0 {
		d.setState(now, StateIdle, d.params.IdlePowerAt(d.rpm))
		if r.Done != nil {
			r.Done(now, r)
		}
		d.tryService(now)
		return
	}
	// Queue drained: enter idle, open the gap, notify the policy.
	d.setState(now, StateIdle, d.params.IdlePowerAt(d.rpm))
	d.openIdleGap(now)
	if r.Done != nil {
		r.Done(now, r)
	}
	if d.listener != nil && d.current == nil && d.queue.Len() == 0 {
		d.listener.IdleStarted(d, now)
	}
	// The Done callback or the policy may have queued new work or commanded
	// a shift.
	d.tryService(now)
}

// SpinDown transitions an idle disk to standby. It fails with ErrNotIdle if
// the disk is serving, has queued work, or is already transitioning.
func (d *Disk) SpinDown() error {
	now := d.eng.Now()
	if d.state != StateIdle || d.current != nil || d.queue.Len() > 0 {
		return fmt.Errorf("%w: state=%v queue=%d", ErrNotIdle, d.state, d.queue.Len()) //sddsvet:ignore hotalloc -- error path: rejected transitions only
	}
	d.stats.SpinDowns++
	d.pr.Emit(probe.KindSpinDown, int32(d.ID), int64(now), 0)
	d.wantUp = false
	d.transStart = now
	d.setState(now, StateSpinningDown, d.params.SpinDownPowerW)
	d.transEvent = d.eng.Schedule(d.params.SpinDownTime, "disk.standby", d.standbyFn)
	return nil
}

func (d *Disk) onStandby(t sim.Time) {
	d.transEvent = nil
	d.setState(t, StateStandby, d.params.StandbyPowerW)
	d.rpm = 0
	if d.wantUp || d.queue.Len() > 0 {
		d.beginSpinUp(t)
	}
}

// abortSpinDown reverses an in-flight spin-down: the spin-up time is
// proportional to how far the spindle had decelerated.
//
//sddsvet:hotpath
func (d *Disk) abortSpinDown(now sim.Time) {
	if d.state != StateSpinningDown {
		return
	}
	if d.transEvent != nil {
		d.transEvent.Cancel()
		d.transEvent = nil
	}
	frac := float64(now-d.transStart) / float64(d.params.SpinDownTime)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	// The spindle coasts down: rotational speed decays slowly at first, so
	// the kinetic energy (∝ ω², Eq. 1) to recover grows quadratically with
	// deceleration progress, plus a fixed head-reload cost.
	const headReload = 300 * sim.Millisecond
	up := headReload + sim.Duration(frac*frac*float64(d.params.SpinUpTime))
	d.stats.SpinUps++
	d.pr.Emit(probe.KindSpinUp, int32(d.ID), int64(now), 1)
	d.wantUp = false
	d.setState(now, StateSpinningUp, d.params.SpinUpPowerW)
	d.eng.ScheduleFunc(up, "disk.abort-up", d.spunUpFn)
}

// onSpunUp completes both a normal spin-up and an aborted spin-down: the
// spindle lands at full speed, ready to serve.
func (d *Disk) onSpunUp(t sim.Time) {
	d.rpm = d.params.MaxRPM
	d.targetRPM = d.params.MaxRPM
	d.spinFails = 0
	d.setState(t, StateIdle, d.params.IdlePowerAt(d.rpm))
	d.tryService(t)
}

// SpinUp starts acceleration back to full speed. In standby it begins
// immediately; during a spin-down it aborts the deceleration and reverses
// from the partial speed; otherwise it returns ErrNotStandby.
func (d *Disk) SpinUp() error {
	switch d.state {
	case StateStandby:
		d.beginSpinUp(d.eng.Now())
		return nil
	case StateSpinningDown:
		d.abortSpinDown(d.eng.Now())
		return nil
	default:
		return fmt.Errorf("%w: state=%v", ErrNotStandby, d.state)
	}
}

//sddsvet:hotpath
func (d *Disk) beginSpinUp(now sim.Time) {
	d.stats.SpinUps++
	d.pr.Emit(probe.KindSpinUp, int32(d.ID), int64(now), 0)
	d.wantUp = false
	d.setState(now, StateSpinningUp, d.params.SpinUpPowerW)
	// Injected spin-up failure: the attempt aborts partway (half the nominal
	// acceleration time at spin-up power) and must be re-issued. Bounded by
	// MaxRetries consecutive failures so the spindle always comes up.
	if d.spinFails < d.flt.MaxRetries() && d.flt.Hit(fault.SiteSpinUpFail) {
		d.spinFails++
		d.stats.SpinUpFailures++
		d.pr.Emit(probe.KindFault, int32(fault.SiteSpinUpFail), int64(now), int64(d.ID))
		d.eng.ScheduleFunc(d.params.SpinUpTime/2, "disk.spinfail", d.spinFailFn)
		return
	}
	up := d.params.SpinUpTime
	// Injected spin-up delay: acceleration succeeds but takes longer.
	if d.flt.Hit(fault.SiteSpinUpDelay) {
		up += sim.Duration(d.flt.SpinUpDelayUS())
		d.stats.SpinUpDelays++
		d.pr.Emit(probe.KindFault, int32(fault.SiteSpinUpDelay), int64(now), int64(d.ID))
	}
	d.eng.ScheduleFunc(up, "disk.spunup", d.spunUpFn)
}

// onSpinFail lands a failed spin-up attempt back in standby and re-issues
// the spin-up (tryService path when work is queued, direct re-issue
// otherwise — the attempt was commanded, so the command stands).
func (d *Disk) onSpinFail(t sim.Time) {
	d.rpm = 0
	d.setState(t, StateStandby, d.params.StandbyPowerW)
	d.beginSpinUp(t)
}

// SetTargetRPM commands a rotational-speed change. rampFirst makes the disk
// finish the shift before serving queued or future requests (the staggered
// policy's return-to-full); otherwise requests are served at the current
// speed and the shift happens when the disk is idle (the history policy's
// low-speed service). The speed snaps to the nearest valid level.
func (d *Disk) SetTargetRPM(rpm int, rampFirst bool) error {
	if !d.state.Spinning() {
		return fmt.Errorf("%w: state=%v", ErrNotStandby, d.state) //sddsvet:ignore hotalloc -- error path: rejected transitions only
	}
	prev := d.targetRPM
	d.targetRPM = d.params.ClampRPM(rpm)
	d.rampFirst = rampFirst
	if d.targetRPM > d.rpm && prev <= d.rpm {
		d.upSince = d.eng.Now()
	}
	if d.state == StateIdle && d.current == nil && d.targetRPM != d.rpm {
		if d.rampFirst || d.queue.Len() == 0 {
			d.beginShift(d.eng.Now())
		}
	}
	return nil
}

//sddsvet:hotpath
func (d *Disk) beginShift(now sim.Time) {
	from, to := d.rpm, d.targetRPM
	if from == to {
		return
	}
	d.stats.RPMShifts++
	d.pr.Emit(probe.KindRPMShift, int32(d.ID), int64(now), int64(to))
	hi := from
	if to > hi {
		hi = to
	}
	// A speed transition draws slightly more than idling at the higher of
	// the two speeds (DRPM's transition model): deceleration is nearly
	// free, acceleration costs the differential kinetic energy.
	d.setState(now, StateShiftingRPM, 1.2*d.params.IdlePowerAt(hi))
	d.shiftTo = to
	d.eng.ScheduleFunc(d.params.RPMShiftTime(from, to), "disk.shifted", d.shiftedFn)
}

// onShifted lands on the speed the in-flight shift was computed for
// (d.shiftTo — only one shift is ever in flight); a target that moved
// mid-shift is handled by tryService.
func (d *Disk) onShifted(t sim.Time) {
	d.rpm = d.shiftTo
	d.setState(t, StateIdle, d.params.IdlePowerAt(d.rpm))
	// The target may have moved again while shifting (staggered step-down
	// interrupted by a ramp command) — tryService handles both another
	// shift and pending work.
	d.tryService(t)
}

// FlushIdleGap closes a trailing open idle gap at end-of-run so the final
// quiet period is counted in the CDF, matching how a finite simulation
// window truncates the last gap.
func (d *Disk) FlushIdleGap(now sim.Time) {
	d.closeIdleGap(now)
}

// maxUpDefer bounds how long an upward RPM shift may be postponed by a busy
// queue before it takes priority over service.
const maxUpDefer = 500 * sim.Millisecond
