package metrics

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders grouped horizontal bars in plain text — the harness's
// stand-in for the paper's bar figures (Figs. 12(c)/(d), 13, 14). Values
// are fractions (e.g. normalized energy); one row per (group, series).
type BarChart struct {
	Title  string
	Groups []string    // e.g. application names
	Series []string    // e.g. policy names
	Values [][]float64 // [group][series], fractions in [0, Max]
	// Max is the full-scale value (default 1.0).
	Max float64
	// Width is the bar width in characters (default 40).
	Width int
}

// Render draws the chart.
func (c *BarChart) Render() string {
	maxV := c.Max
	if maxV <= 0 {
		maxV = 1.0
	}
	width := c.Width
	if width <= 0 {
		width = 40
	}
	labelW := 0
	for _, g := range c.Groups {
		for _, s := range c.Series {
			if n := len(g) + len(s) + 1; n > labelW {
				labelW = n
			}
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for gi, g := range c.Groups {
		if gi >= len(c.Values) {
			break
		}
		for si, s := range c.Series {
			if si >= len(c.Values[gi]) {
				break
			}
			v := c.Values[gi][si]
			frac := v / maxV
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			n := int(math.Round(frac * float64(width)))
			label := fmt.Sprintf("%s/%s", g, s)
			fmt.Fprintf(&b, "%-*s |%s%s| %s\n",
				labelW, label,
				strings.Repeat("#", n), strings.Repeat(" ", width-n),
				Pct(v))
		}
		if gi < len(c.Groups)-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Sparkline renders a series of fractions (0..1) as a compact one-line
// profile — used for CDF quick-looks in logs.
func Sparkline(fracs []float64) string {
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, f := range fracs {
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		i := int(f * float64(len(levels)-1))
		b.WriteRune(levels[i])
	}
	return b.String()
}
