// Package metrics provides the measurement plumbing for the evaluation:
// idle-period histograms and CDFs with the paper's bucket boundaries
// (Fig. 12(a)/(b)), energy normalization and performance-degradation math
// (Figs. 12(c)/(d) and 13), and plain-text table rendering for the harness.
package metrics

import (
	"fmt"
	"strings"

	"sdds/internal/disk"
	"sdds/internal/sim"
)

// PaperBucketsMs are the idleness bucket upper bounds (milliseconds) used on
// the x axis of Fig. 12; the final +Inf bucket corresponds to "50,000+".
var PaperBucketsMs = []float64{5, 10, 50, 100, 500, 1000, 5000, 10000, 20000, 30000, 40000, 50000}

// IdleHistogram accumulates idle-gap durations into fixed buckets, keeping
// memory constant regardless of run length.
type IdleHistogram struct {
	boundsMs []float64
	counts   []int64 // len(boundsMs)+1; last is the overflow bucket
	total    int64
	sum      sim.Duration
	max      sim.Duration
}

// NewIdleHistogram returns a histogram over the paper's buckets.
func NewIdleHistogram() *IdleHistogram { return NewIdleHistogramWith(PaperBucketsMs) }

// NewIdleHistogramWith returns a histogram over custom ascending bucket
// bounds in milliseconds.
func NewIdleHistogramWith(boundsMs []float64) *IdleHistogram {
	b := make([]float64, len(boundsMs))
	copy(b, boundsMs)
	return &IdleHistogram{boundsMs: b, counts: make([]int64, len(b)+1)}
}

// Record adds one idle gap.
func (h *IdleHistogram) Record(gap sim.Duration) {
	if gap < 0 {
		return
	}
	ms := gap.Milliseconds()
	i := 0
	for i < len(h.boundsMs) && ms > h.boundsMs[i] {
		i++
	}
	h.counts[i]++
	h.total++
	h.sum += gap
	if gap > h.max {
		h.max = gap
	}
}

// RecordIdle implements disk.IdleRecorder so a histogram can be installed
// directly on a disk.
func (h *IdleHistogram) RecordIdle(_ *disk.Disk, gap sim.Duration) { h.Record(gap) }

var _ disk.IdleRecorder = (*IdleHistogram)(nil)

// Count returns the number of recorded gaps.
func (h *IdleHistogram) Count() int64 { return h.total }

// Mean returns the mean gap, or 0 with no samples.
func (h *IdleHistogram) Mean() sim.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / sim.Duration(h.total)
}

// Max returns the largest recorded gap.
func (h *IdleHistogram) Max() sim.Duration { return h.max }

// Merge folds other into h. Bucket layouts must match.
func (h *IdleHistogram) Merge(other *IdleHistogram) error {
	if len(other.counts) != len(h.counts) {
		return fmt.Errorf("metrics: merging histograms with %d and %d buckets", len(h.counts), len(other.counts))
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
	return nil
}

// HistogramSnapshot is the portable form of an IdleHistogram: every field
// exported and JSON-serializable, so run results can round-trip through
// the harness's crash-safe journal.
type HistogramSnapshot struct {
	BoundsMs []float64
	Counts   []int64
	Total    int64
	SumUS    int64 // summed gap time, microseconds
	MaxUS    int64 // longest gap, microseconds
}

// Snapshot exports the histogram's full state.
func (h *IdleHistogram) Snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{
		BoundsMs: make([]float64, len(h.boundsMs)),
		Counts:   make([]int64, len(h.counts)),
		Total:    h.total,
		SumUS:    int64(h.sum),
		MaxUS:    int64(h.max),
	}
	copy(s.BoundsMs, h.boundsMs)
	copy(s.Counts, h.counts)
	return s
}

// FromSnapshot reconstructs a histogram from its portable form. It rejects
// snapshots whose count slice does not match the bucket bounds.
func FromSnapshot(s *HistogramSnapshot) (*IdleHistogram, error) {
	if s == nil {
		return nil, fmt.Errorf("metrics: nil histogram snapshot")
	}
	if len(s.Counts) != len(s.BoundsMs)+1 {
		return nil, fmt.Errorf("metrics: snapshot has %d counts for %d bounds", len(s.Counts), len(s.BoundsMs))
	}
	h := NewIdleHistogramWith(s.BoundsMs)
	copy(h.counts, s.Counts)
	h.total = s.Total
	h.sum = sim.Duration(s.SumUS)
	h.max = sim.Duration(s.MaxUS)
	return h, nil
}

// CDFPoint is one point of the cumulative distribution: the fraction of
// gaps at most BoundMs milliseconds long.
type CDFPoint struct {
	BoundMs float64
	Frac    float64
}

// CDF returns the cumulative distribution over the bucket bounds (the
// overflow bucket brings the last implicit point to 1.0 and is omitted).
func (h *IdleHistogram) CDF() []CDFPoint {
	out := make([]CDFPoint, len(h.boundsMs))
	var cum int64
	for i, b := range h.boundsMs {
		cum += h.counts[i]
		frac := 0.0
		if h.total > 0 {
			frac = float64(cum) / float64(h.total)
		}
		out[i] = CDFPoint{BoundMs: b, Frac: frac}
	}
	return out
}

// FracAtMost returns the fraction of gaps with length ≤ ms. ms must be one
// of the bucket bounds; other values are rounded up to the next bound.
func (h *IdleHistogram) FracAtMost(ms float64) float64 {
	if h.total == 0 {
		return 0
	}
	var cum int64
	for i, b := range h.boundsMs {
		cum += h.counts[i]
		if ms <= b {
			return float64(cum) / float64(h.total)
		}
	}
	return 1
}

// String renders the CDF compactly for logs.
func (h *IdleHistogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "idle CDF (%d gaps):", h.total)
	for _, p := range h.CDF() {
		fmt.Fprintf(&b, " ≤%gms:%.1f%%", p.BoundMs, p.Frac*100)
	}
	return b.String()
}
