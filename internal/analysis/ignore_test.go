package analysis_test

import (
	"go/token"
	"testing"

	"sdds/internal/analysis"
)

// TestIgnoreIndexEdgeCases drives the ignore index over the ignoreedge
// fixture: stacked directives (above-line and trailing forms covering the
// same line) are both marked used; one comma-list directive suppresses two
// different analyzers' diagnostics on the same line; a file-level
// directive covers the whole file; and everything that suppressed nothing
// comes back from Stale.
func TestIgnoreIndexEdgeCases(t *testing.T) {
	mod, err := analysis.LoadModule("../..", "internal/analysis/testdata/src/ignoreedge")
	if err != nil {
		t.Fatal(err)
	}
	pkg := mod.Selected[0]
	idx := analysis.NewIgnoreIndex(pkg)

	posOf := func(name string) token.Pos {
		t.Helper()
		obj := pkg.Types.Scope().Lookup(name)
		if obj == nil {
			t.Fatalf("no top-level object %q in fixture", name)
		}
		return obj.Pos()
	}

	// File-level: covers a line nowhere near the directive.
	if !idx.Suppressed("hotalloc", posOf("now")) {
		t.Error("file-level hotalloc directive did not cover a distant line")
	}
	// Stacked: both the above-line and the trailing directive cover stamp's
	// line; one Suppressed call must mark both used.
	if !idx.Suppressed("simdet", posOf("stamp")) {
		t.Error("stacked simdet directives did not cover the stamp line")
	}
	// Multi-diagnostic line: the comma-list directive answers for both
	// analyzers.
	if !idx.Suppressed("simdet", posOf("reduce")) {
		t.Error("simdet half of the comma-list directive did not cover reduce")
	}
	if !idx.Suppressed("floatorder", posOf("reduce")) {
		t.Error("floatorder half of the comma-list directive did not cover reduce")
	}
	// An analyzer nobody named stays unsuppressed.
	if idx.Suppressed("eventretain", posOf("reduce")) {
		t.Error("eventretain suppressed without any directive naming it")
	}

	// Every simdet directive (stacked pair + comma-list half) is now used.
	for _, d := range idx.Directives() {
		if d.Name == "simdet" && !d.Used() {
			t.Errorf("simdet directive at %s:%d not marked used", d.File, d.Line)
		}
	}
	// Only the deliberately-stale detflow directive is left.
	stale := idx.Stale()
	if len(stale) != 1 || stale[0].Name != "detflow" {
		names := make([]string, 0, len(stale))
		for _, d := range stale {
			names = append(names, d.Name)
		}
		t.Errorf("Stale() = %v, want exactly [detflow]", names)
	}
}
