package netsim

import (
	"testing"

	"sdds/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(8).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{LatencyOneWay: -1, LinkMBps: 1, NumNodes: 1},
		{LinkMBps: 0, NumNodes: 1},
		{LinkMBps: 1, NumNodes: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated", i)
		}
	}
}

func TestTransferLatencyAndBandwidth(t *testing.T) {
	eng := sim.NewEngine(1)
	n := MustNew(eng, Config{LatencyOneWay: 100, LinkMBps: 1, NumNodes: 2})
	var at sim.Time
	if err := n.Transfer(0, 1000, func(now sim.Time) { at = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// 1000 bytes at 1 MB/s = 1000 µs occupancy + 100 µs latency.
	if at != 1100 {
		t.Fatalf("delivery at %v, want 1100", at)
	}
	tr, by := n.Stats()
	if tr != 1 || by != 1000 {
		t.Fatalf("stats = %d, %d", tr, by)
	}
}

func TestTransfersSerializeOnOneLink(t *testing.T) {
	eng := sim.NewEngine(1)
	n := MustNew(eng, Config{LatencyOneWay: 0, LinkMBps: 1, NumNodes: 1})
	var first, second sim.Time
	_ = n.Transfer(0, 1000, func(now sim.Time) { first = now })
	_ = n.Transfer(0, 1000, func(now sim.Time) { second = now })
	eng.Run()
	if first != 1000 || second != 2000 {
		t.Fatalf("deliveries at %v, %v; want 1000, 2000 (serialized)", first, second)
	}
}

func TestTransfersParallelAcrossLinks(t *testing.T) {
	eng := sim.NewEngine(1)
	n := MustNew(eng, Config{LatencyOneWay: 0, LinkMBps: 1, NumNodes: 2})
	var a, b sim.Time
	_ = n.Transfer(0, 1000, func(now sim.Time) { a = now })
	_ = n.Transfer(1, 1000, func(now sim.Time) { b = now })
	eng.Run()
	if a != 1000 || b != 1000 {
		t.Fatalf("deliveries at %v, %v; want both 1000 (parallel links)", a, b)
	}
}

func TestTransferValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	n := MustNew(eng, DefaultConfig(2))
	if err := n.Transfer(2, 10, func(sim.Time) {}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := n.Transfer(-1, 10, func(sim.Time) {}); err == nil {
		t.Fatal("negative node accepted")
	}
	if err := n.Transfer(0, -1, func(sim.Time) {}); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestZeroByteTransferIsLatencyOnly(t *testing.T) {
	eng := sim.NewEngine(1)
	n := MustNew(eng, Config{LatencyOneWay: 42, LinkMBps: 1, NumNodes: 1})
	var at sim.Time
	_ = n.Transfer(0, 0, func(now sim.Time) { at = now })
	eng.Run()
	if at != 42 {
		t.Fatalf("delivery at %v, want 42", at)
	}
}
