GO ?= go

.PHONY: ci vet build test race smoke bench

ci: vet build race smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race instrumentation slows the full-scale cluster simulations well past
# the default 10m per-package test timeout; give them room.
race:
	$(GO) test -race -timeout 90m ./...

# A tiny end-to-end sddstables run: plans, simulates and renders every
# experiment at 5% scale on two apps through the parallel session engine.
smoke:
	$(GO) run ./cmd/sddstables -scale 0.05 -apps sar,madbench2 -progress=false

bench:
	$(GO) test -bench . -benchtime 1x ./...
