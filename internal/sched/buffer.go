// Package sched implements the runtime data access scheduler of §III: one
// light-weight scheduler agent per client process issues the prefetches the
// compiler's scheduling table calls for, into a global buffer collectively
// shared by all agents. Application reads probe the buffer first; a hit
// returns immediately and invalidates the entry. Agents stop fetching while
// the buffer is full, and never fetch a block before its producer process
// has passed the write point ("local time" synchronization).
package sched

import (
	"fmt"

	"sdds/internal/probe"
)

// entryState tracks a buffer entry's lifecycle.
type entryState int

const (
	statePending entryState = iota + 1 // reserved, fetch in flight
	stateReady                         // data resident, awaiting its read
)

// GlobalBuffer is the bounded client-side buffer shared by all scheduler
// agents. Space is reserved at fetch-issue time so in-flight prefetches
// cannot oversubscribe it.
type GlobalBuffer struct {
	capacity int64
	used     int64
	entries  map[int]bufEntry // access ID → entry

	hits, misses, inserted, dropped int64

	// Flight recorder, installed by SetProbe. now supplies the virtual
	// timestamp for each record (the buffer itself is clockless).
	pr  *probe.Probe
	now func() int64
}

// SetProbe attaches a flight recorder; now supplies the virtual time each
// hit/miss record is stamped with. A nil probe disables emission.
func (b *GlobalBuffer) SetProbe(pr *probe.Probe, now func() int64) {
	b.pr = pr
	b.now = now
}

// emit records one buffer hit/miss. The pr check keeps the now() call off
// the untraced path.
func (b *GlobalBuffer) emit(k probe.Kind, id int) {
	if b.pr == nil {
		return
	}
	b.pr.Emit(k, int32(id), b.now(), 0)
}

type bufEntry struct {
	bytes   int64
	state   entryState
	waiters []func(ok bool)
}

// NewGlobalBuffer returns a buffer with the given byte capacity.
func NewGlobalBuffer(capacity int64) (*GlobalBuffer, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("sched: buffer capacity %d must be positive", capacity)
	}
	return &GlobalBuffer{capacity: capacity, entries: make(map[int]bufEntry)}, nil
}

// MustNewGlobalBuffer panics on error.
func MustNewGlobalBuffer(capacity int64) *GlobalBuffer {
	b, err := NewGlobalBuffer(capacity)
	if err != nil {
		panic(err)
	}
	return b
}

// Capacity returns the byte budget.
func (b *GlobalBuffer) Capacity() int64 { return b.capacity }

// Used returns reserved plus resident bytes.
func (b *GlobalBuffer) Used() int64 { return b.used }

// Stats returns hit/miss/insert/drop counters.
func (b *GlobalBuffer) Stats() (hits, misses, inserted, dropped int64) {
	return b.hits, b.misses, b.inserted, b.dropped
}

// Reserve claims space for access id before its fetch is issued. It fails
// (without side effects) when the buffer is full — the agent then stops
// fetching until space frees — or when the id is already present.
func (b *GlobalBuffer) Reserve(id int, bytes int64) bool {
	if bytes <= 0 || bytes > b.capacity {
		return false
	}
	if _, exists := b.entries[id]; exists {
		return false
	}
	if b.used+bytes > b.capacity {
		return false
	}
	b.used += bytes
	b.entries[id] = bufEntry{bytes: bytes, state: statePending}
	return true
}

// Commit marks a reserved entry resident (fetch completed). If application
// reads are already waiting on the entry (WaitConsume), the entry is
// delivered to the first waiter immediately — consumed and invalidated —
// and any others are woken as misses. It reports whether the entry (still)
// existed.
func (b *GlobalBuffer) Commit(id int) bool {
	e, ok := b.entries[id]
	if !ok || e.state != statePending {
		return false
	}
	b.inserted++
	if len(e.waiters) > 0 {
		delete(b.entries, id)
		b.used -= e.bytes
		b.hits++
		b.emit(probe.KindBufferHit, id)
		for _, w := range e.waiters {
			w(true)
		}
		return true
	}
	e.state = stateReady
	b.entries[id] = e
	return true
}

// WaitConsume handles an application read racing an in-flight prefetch:
// when the entry for id is pending, onReady is registered to fire at
// Commit — with ok=true, counting as a hit — or at Abort — with ok=false,
// the fetch failed and the waiter must fall back to an on-demand read —
// and WaitConsume returns true. When the entry is ready it is consumed
// immediately, onReady(true) fires synchronously and it returns true.
// Otherwise it returns false (a plain miss) without side effects beyond
// the miss counter.
func (b *GlobalBuffer) WaitConsume(id int, onReady func(ok bool)) bool {
	e, ok := b.entries[id]
	if !ok {
		b.misses++
		b.emit(probe.KindBufferMiss, id)
		return false
	}
	if e.state == stateReady {
		delete(b.entries, id)
		b.used -= e.bytes
		b.hits++
		b.emit(probe.KindBufferHit, id)
		onReady(true)
		return true
	}
	e.waiters = append(e.waiters, onReady)
	b.entries[id] = e
	return true
}

// Abort releases a reservation (fetch failed or became useless). Waiters
// registered by WaitConsume are woken with ok=false — they count as misses
// and degrade to on-demand reads rather than hanging on data that will
// never arrive.
func (b *GlobalBuffer) Abort(id int) {
	e, ok := b.entries[id]
	if !ok {
		return
	}
	delete(b.entries, id)
	b.used -= e.bytes
	b.dropped++
	if len(e.waiters) > 0 {
		b.misses += int64(len(e.waiters))
		b.emit(probe.KindBufferMiss, id)
		for _, w := range e.waiters {
			w(false)
		}
	}
}

// TryConsume is the application-side probe: on a hit it invalidates the
// entry, frees its space and returns true ("if it is a hit, the data are
// returned ... and the entry is invalidated"). A pending entry is NOT a hit
// — the application does not wait for in-flight prefetches; it bypasses
// them, and the buffer releases the pending entry on Commit.
func (b *GlobalBuffer) TryConsume(id int) bool {
	e, ok := b.entries[id]
	if !ok {
		b.misses++
		b.emit(probe.KindBufferMiss, id)
		return false
	}
	if e.state == statePending {
		// Bypassed: mark it dead by deleting now; the in-flight Commit
		// will find nothing and the agent aborts the space below.
		delete(b.entries, id)
		b.used -= e.bytes
		b.misses++
		b.dropped++
		b.emit(probe.KindBufferMiss, id)
		return false
	}
	delete(b.entries, id)
	b.used -= e.bytes
	b.hits++
	b.emit(probe.KindBufferHit, id)
	return true
}

// Resident reports whether id is ready in the buffer (diagnostics).
func (b *GlobalBuffer) Resident(id int) bool {
	e, ok := b.entries[id]
	return ok && e.state == stateReady
}
