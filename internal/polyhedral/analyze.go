// Package polyhedral implements the affine slack analysis of §IV-A — the
// role the Omega library plays in the paper. For programs whose I/O regions
// are affine functions of the outer loop iteration and the process id, it
// computes, for every read instance, the latest preceding write instance
// touching an overlapping byte range, in closed form: the overlap condition
// is a pair of linear inequalities in the writer's iteration, solved per
// (write statement, writer process) pair without enumerating iterations.
// Its output is bit-identical to the profiling tool's on affine programs.
package polyhedral

import (
	"fmt"
	"sort"

	"sdds/internal/loop"
)

// ErrNonAffine is returned when the program contains non-affine I/O
// statements; callers fall back to the profiling tool (§IV-A).
type ErrNonAffine struct {
	Nest, Stmt int
}

func (e *ErrNonAffine) Error() string {
	return fmt.Sprintf("polyhedral: nest %d stmt %d is non-affine; use the profiling tool", e.Nest, e.Stmt)
}

// writeStmt is a flattened affine write statement with its placement data.
type writeStmt struct {
	nest     int
	stmt     int
	region   loop.Affine
	every    int
	trips    int
	parallel bool
	chunk    int // per-proc iterations
	slotBase int
}

// Analyze computes read slacks for an affine program (same contract as
// trace.Profile).
func Analyze(p *loop.Program, procs int) ([]loop.Slack, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var writes []writeStmt
	for ni, n := range p.Nests {
		for si, s := range n.Body {
			if s.Kind == loop.StmtCompute {
				continue
			}
			if !s.IsAffine() {
				return nil, &ErrNonAffine{Nest: ni, Stmt: si}
			}
			if s.Kind == loop.StmtWrite {
				writes = append(writes, writeStmt{
					nest: ni, stmt: si, region: s.Region, every: s.Every,
					trips: n.Trips, parallel: n.Parallel, chunk: chunkOf(n, procs),
					slotBase: p.NestSlotOffset(procs, ni),
				})
			}
		}
	}

	var out []loop.Slack
	byFile := indexWrites(p, writes)

	for _, inst := range p.Instances(procs) {
		if inst.Kind != loop.StmtRead {
			continue
		}
		w := lastWriter(byFile[inst.File], procs, inst)
		begin := 0
		if w >= 0 {
			begin = w + 1
		}
		if begin > inst.Slot {
			begin = inst.Slot
		}
		out = append(out, loop.Slack{Inst: inst, Begin: begin, End: inst.Slot, WriterSlot: w})
	}
	sort.SliceStable(out, func(a, b int) bool {
		x, y := out[a].Inst, out[b].Inst
		if x.Slot != y.Slot {
			return x.Slot < y.Slot
		}
		if x.Proc != y.Proc {
			return x.Proc < y.Proc
		}
		if x.Nest != y.Nest {
			return x.Nest < y.Nest
		}
		return x.Stmt < y.Stmt
	})
	return out, nil
}

func chunkOf(n loop.Nest, procs int) int {
	if !n.Parallel {
		return n.Trips
	}
	return (n.Trips + procs - 1) / procs
}

func indexWrites(p *loop.Program, writes []writeStmt) map[int][]writeStmt {
	byFile := make(map[int][]writeStmt)
	for _, w := range writes {
		file := p.Nests[w.nest].Body[w.stmt].File
		byFile[file] = append(byFile[file], w)
	}
	return byFile
}

// lastWriter returns the maximum slot < inst.Slot at which any instance of
// the file's write statements overlaps the read's byte range, or -1.
func lastWriter(writes []writeStmt, procs int, inst loop.IOInstance) int {
	r0 := inst.Offset
	r1 := inst.Offset + inst.Length
	best := -1
	for _, w := range writes {
		for q := 0; q < procs; q++ {
			// Writer q's iteration range.
			lo, hi := 0, w.trips-1
			if w.parallel {
				lo = q * w.chunk
				hi = (q+1)*w.chunk - 1
				if hi >= w.trips {
					hi = w.trips - 1
				}
				if lo > hi {
					continue
				}
			}
			// Overlap in j: wb + wc·j + wp·q < r1  AND  wb + wc·j + wp·q + wl > r0.
			base := w.region.Base + w.region.ProcCoef*int64(q)
			jlo, jhi, any := solveOverlap(base, w.region.IterCoef, w.region.Len, r0, r1, int64(lo), int64(hi))
			if !any {
				continue
			}
			// Slot of iteration j: slotBase + (j − lo) for parallel blocks,
			// slotBase + j for serial nests (lo = 0 there).
			// Constraint slot(j) < inst.Slot bounds j from above.
			localBase := w.slotBase - lo
			maxJBySlot := int64(inst.Slot - 1 - localBase)
			if jhi > maxJBySlot {
				jhi = maxJBySlot
			}
			if jhi < jlo {
				continue
			}
			// Honor the statement's Every stride: largest j ≤ jhi with
			// j % every == 0.
			j := jhi
			if w.every > 1 {
				j = jhi - jhi%int64(w.every)
				if j < jlo {
					continue
				}
				// With IterCoef possibly nonzero the overlap window may
				// exclude this aligned j; walk down stride by stride.
				ok := false
				for ; j >= jlo; j -= int64(w.every) {
					o := base + w.region.IterCoef*j
					if o < r1 && o+w.region.Len > r0 {
						ok = true
						break
					}
				}
				if !ok {
					continue
				}
			}
			slot := localBase + int(j)
			if slot > best {
				best = slot
			}
		}
	}
	return best
}

// solveOverlap returns the j range within [jmin, jmax] where
// base + c·j < r1 and base + c·j + l > r0, and whether it is non-empty.
func solveOverlap(base, c, l, r0, r1, jmin, jmax int64) (int64, int64, bool) {
	if c == 0 {
		if base < r1 && base+l > r0 {
			return jmin, jmax, jmin <= jmax
		}
		return 0, 0, false
	}
	// c·j < r1 − base        → j < (r1 − base)/c
	// c·j > r0 − l − base    → j > (r0 − l − base)/c
	hiBound := r1 - base     // exclusive numerator
	loBound := r0 - l - base // exclusive numerator
	var lo, hi int64
	if c > 0 {
		hi = ceilDiv(hiBound, c) - 1  // j ≤ ceil(hiBound/c) − 1  ⇔ c·j < hiBound
		lo = floorDiv(loBound, c) + 1 // j ≥ floor(loBound/c) + 1 ⇔ c·j > loBound
	} else {
		// A negative coefficient flips both inequalities.
		lo = floorDiv(hiBound, c) + 1 // c·j < hiBound ⇔ j > hiBound/c
		hi = ceilDiv(loBound, c) - 1  // c·j > loBound ⇔ j < loBound/c
	}
	if lo < jmin {
		lo = jmin
	}
	if hi > jmax {
		hi = jmax
	}
	return lo, hi, lo <= hi
}

// floorDiv is floor(a/b) for b ≠ 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// ceilDiv is ceil(a/b) for b ≠ 0.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}
