package polyhedral

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"sdds/internal/loop"
	"sdds/internal/sim"
	"sdds/internal/trace"
)

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct{ a, b, fl, ce int64 }{
		{7, 2, 3, 4}, {-7, 2, -4, -3}, {7, -2, -4, -3}, {-7, -2, 3, 4},
		{6, 3, 2, 2}, {-6, 3, -2, -2}, {0, 5, 0, 0},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.fl {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.fl)
		}
		if got := ceilDiv(c.a, c.b); got != c.ce {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ce)
		}
	}
}

func TestSolveOverlap(t *testing.T) {
	// Writer regions [100j, 100j+100); read range [250, 450) → j ∈ {2,3,4}
	// minus non-overlap: j=2 gives [200,300) overlap ✓; j=4 gives [400,500) ✓.
	lo, hi, ok := solveOverlap(0, 100, 100, 250, 450, 0, 10)
	if !ok || lo != 2 || hi != 4 {
		t.Fatalf("solveOverlap = [%d,%d] %v, want [2,4]", lo, hi, ok)
	}
	// Constant region that overlaps: full j range.
	lo, hi, ok = solveOverlap(300, 0, 50, 250, 450, 3, 7)
	if !ok || lo != 3 || hi != 7 {
		t.Fatalf("constant overlap = [%d,%d] %v", lo, hi, ok)
	}
	// Constant region that misses.
	if _, _, ok := solveOverlap(1000, 0, 50, 250, 450, 0, 9); ok {
		t.Fatal("non-overlapping constant region matched")
	}
	// Negative coefficient: offset 1000 − 100j, len 100; read [250, 450)
	// → 1000−100j < 450 → j > 5.5 → j ≥ 6; 1100−100j > 250 → j < 8.5 → j ≤ 8.
	lo, hi, ok = solveOverlap(1000, -100, 100, 250, 450, 0, 20)
	if !ok || lo != 6 || hi != 8 {
		t.Fatalf("negative coef = [%d,%d] %v, want [6,8]", lo, hi, ok)
	}
}

func TestAnalyzeRejectsNonAffine(t *testing.T) {
	p := &loop.Program{
		Files: []loop.File{{ID: 0, Name: "f", Size: 1 << 20}},
		Nests: []loop.Nest{{Trips: 4, Body: []loop.Stmt{{
			Kind: loop.StmtRead, File: 0,
			Custom: func(i, proc int) (int64, int64) { return int64(i * i), 64 },
		}}}},
	}
	_, err := Analyze(p, 2)
	var na *ErrNonAffine
	if !errors.As(err, &na) {
		t.Fatalf("err = %v, want ErrNonAffine", err)
	}
	if na.Nest != 0 || na.Stmt != 0 {
		t.Fatalf("ErrNonAffine = %+v", na)
	}
}

// randomAffineProgram builds a random but valid affine program mixing
// parallel/serial nests, writes/reads, strides and proc-dependent regions.
func randomAffineProgram(rng *rand.Rand) *loop.Program {
	numNests := 2 + rng.Intn(3)
	p := &loop.Program{
		Name:  "rand",
		Files: []loop.File{{ID: 0, Name: "a", Size: 1 << 30}, {ID: 1, Name: "b", Size: 1 << 30}},
	}
	for n := 0; n < numNests; n++ {
		nest := loop.Nest{
			Trips:    4 + rng.Intn(12),
			Parallel: rng.Intn(3) > 0,
			IterCost: sim.Duration(rng.Intn(1000)),
		}
		numStmts := 1 + rng.Intn(3)
		for s := 0; s < numStmts; s++ {
			kind := loop.StmtRead
			if rng.Intn(2) == 0 {
				kind = loop.StmtWrite
			}
			stmt := loop.Stmt{
				Kind: kind,
				File: rng.Intn(2),
				Region: loop.Affine{
					Base:     int64(rng.Intn(4)) * 512,
					IterCoef: int64(rng.Intn(5)-2) * 512, // −1024..1024, may be 0 or negative
					ProcCoef: int64(rng.Intn(3)) * 4096,
					Len:      int64(1+rng.Intn(8)) * 256,
				},
				Every: rng.Intn(3), // 0, 1, or 2
			}
			if stmt.Region.IterCoef < 0 {
				// Keep offsets nonnegative over the trip range.
				stmt.Region.Base += -stmt.Region.IterCoef * int64(nest.Trips)
			}
			nest.Body = append(nest.Body, stmt)
		}
		p.Nests = append(p.Nests, nest)
	}
	return p
}

// TestPropertyMatchesProfiler is the package's key correctness property:
// on any affine program the closed-form analysis must produce exactly the
// slacks the profiling tool derives by execution.
func TestPropertyMatchesProfiler(t *testing.T) {
	f := func(seed int64, procsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomAffineProgram(rng)
		procs := int(procsRaw%7) + 1
		want, err := trace.Profile(p, procs)
		if err != nil {
			return false
		}
		got, err := Analyze(p, procs)
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				t.Logf("seed=%d procs=%d mismatch at %d:\n got %+v\nwant %+v", seed, procs, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeMatchesProfilerOnMatmulShape(t *testing.T) {
	// The Fig. 5 matrix-multiplication shape: U and V read, W written.
	blocks := int64(8)
	blockBytes := int64(64 << 10)
	p := &loop.Program{
		Name: "matmul",
		Files: []loop.File{
			{ID: 0, Name: "U", Size: blocks * blockBytes},
			{ID: 1, Name: "V", Size: blocks * blockBytes},
			{ID: 2, Name: "W", Size: blocks * blocks * blockBytes},
		},
		Nests: []loop.Nest{{
			Trips: int(blocks * blocks), Parallel: true,
			Body: []loop.Stmt{
				{Kind: loop.StmtRead, File: 0, Region: loop.Affine{IterCoef: 0, Len: blockBytes}, Every: int(blocks)},
				{Kind: loop.StmtRead, File: 1, Region: loop.Affine{IterCoef: blockBytes, Len: blockBytes}},
				{Kind: loop.StmtCompute, Cost: sim.MilliToTime(5)},
				{Kind: loop.StmtWrite, File: 2, Region: loop.Affine{IterCoef: blockBytes, Len: blockBytes}},
			},
		}},
	}
	// V's offsets wrap beyond the file in this sketch; size it up instead.
	p.Files[1].Size = blocks * blocks * blockBytes
	for _, procs := range []int{1, 4, 8} {
		want, err := trace.Profile(p, procs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Analyze(p, procs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("procs=%d: %d vs %d slacks", procs, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("procs=%d: slack %d differs:\n got %+v\nwant %+v", procs, i, got[i], want[i])
			}
		}
	}
}

func BenchmarkAnalyze(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := randomAffineProgram(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(p, 8); err != nil {
			b.Fatal(err)
		}
	}
}
