package shard

import "sdds/internal/harness"

// Wire types for the /v1/shards endpoints. The coordinator (inside
// sddsd) and the worker/submitter clients share these structs, so the
// two sides cannot drift.

// Lease statuses.
const (
	// StatusGranted: the response carries a shard and a lease.
	StatusGranted = "granted"
	// StatusWait: nothing leasable right now (no active sweep, every
	// pending shard backoff-gated, or everything leased out) — poll again.
	StatusWait = "wait"
	// StatusAllDone: the active sweep is finished; idle-exit workers stop.
	StatusAllDone = "done"
)

// Renew statuses.
const (
	// StatusOK: the lease was renewed; keep working.
	StatusOK = "ok"
	// StatusLost: the lease expired and the shard was requeued (possibly
	// re-leased elsewhere). The worker may keep executing — a late
	// completion still wins if it lands first — but must expect Duplicate.
	StatusLost = "lost"
	// StatusDone: the shard is already terminal; abort the work.
	StatusDone = "done"
)

// Complete statuses.
const (
	// StatusAccepted: this completion resolved the shard.
	StatusAccepted = "accepted"
	// StatusDuplicate: the shard was already resolved (or this stale
	// failure no longer matters); the results deduped against the store.
	StatusDuplicate = "duplicate"
)

// RunEntry is one completed run on the wire: the canonical request and
// its portable result record — exactly what the journal persists.
type RunEntry struct {
	Request harness.Request   `json:"request"`
	Result  harness.RunRecord `json:"result"`
}

// LeaseRequest asks the coordinator for the next shard.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse grants a shard under a lease, or reports wait/done.
type LeaseResponse struct {
	Status  string `json:"status"`
	Shard   *Shard `json:"shard,omitempty"`
	LeaseID string `json:"lease_id,omitempty"`
	// TTLMS is the lease duration; renew well before it elapses.
	TTLMS int64 `json:"ttl_ms,omitempty"`
}

// RenewRequest heartbeats a held lease.
type RenewRequest struct {
	Worker  string `json:"worker"`
	ShardID string `json:"shard_id"`
	LeaseID string `json:"lease_id"`
}

// RenewResponse reports the lease's fate.
type RenewResponse struct {
	Status string `json:"status"`
}

// CompleteRequest delivers a shard's outcome: every per-request journal
// record on success, or the first execution error.
type CompleteRequest struct {
	Worker  string     `json:"worker"`
	ShardID string     `json:"shard_id"`
	LeaseID string     `json:"lease_id"`
	Error   string     `json:"error,omitempty"`
	Results []RunEntry `json:"results,omitempty"`
}

// CompleteResponse acknowledges a completion.
type CompleteResponse struct {
	Status string `json:"status"`
	// Stored counts results newly written to the canonical store (0 for a
	// duplicate completion — every byte already landed).
	Stored int `json:"stored"`
}

// SubmitRequest starts a sharded sweep: the canonical request list
// (already expanded; the coordinator dedups and drops store-resolved
// entries) and the shard size.
type SubmitRequest struct {
	Requests  []harness.Request `json:"requests"`
	ShardSize int               `json:"shard_size,omitempty"`
}

// SubmitResponse summarizes the accepted sweep.
type SubmitResponse struct {
	// Requests counts distinct submitted requests; Resumed of those were
	// already in the store and never sharded; Shards covers the rest.
	Requests int `json:"requests"`
	Resumed  int `json:"resumed"`
	Shards   int `json:"shards"`
}

// ShardStatus is one shard's row in a status snapshot.
type ShardStatus struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Worker   string `json:"worker,omitempty"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error,omitempty"`
}

// Snapshot is the coordinator's observable state (GET /v1/shards/status).
type Snapshot struct {
	// Active reports whether a sweep has been submitted this lifetime.
	Active bool `json:"active"`
	// Done reports every shard terminal (Completed + Failed == Total).
	Done bool `json:"done"`
	// Err is the terminal error when any shard was poisoned.
	Err       string `json:"err,omitempty"`
	Total     int    `json:"total"`
	Pending   int    `json:"pending"`
	Leased    int    `json:"leased"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	// Requests/Resumed mirror the submit summary.
	Requests int `json:"requests"`
	Resumed  int `json:"resumed"`
	// Requeues counts lease expiries; Duplicates counts late double
	// completions deduped; Stored counts results committed to the store.
	Requeues   int `json:"requeues"`
	Duplicates int `json:"duplicates"`
	Stored     int `json:"stored"`
	// Workers lists every worker name seen, sorted.
	Workers []string `json:"workers,omitempty"`
	// Shards lists non-terminal and failed shards (terminal successes are
	// elided to keep the snapshot small).
	Shards []ShardStatus `json:"shards,omitempty"`
}
