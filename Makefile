GO ?= go

.PHONY: ci vet build test race smoke bench

ci: vet build race smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race instrumentation slows the full-scale cluster simulations well past
# the default 10m per-package test timeout; give them room.
race:
	$(GO) test -race -timeout 90m ./...

# A tiny end-to-end sddstables run: plans, simulates and renders every
# experiment at 5% scale on two apps through the parallel session engine.
smoke:
	$(GO) run ./cmd/sddstables -scale 0.05 -apps sar,madbench2 -progress=false

# Perf trajectory: engine microbenchmarks (steady-state schedule+fire, the
# container/heap baseline they are measured against) plus a fig12c-shape
# experiment and a full scheduled cluster run, all with -benchmem, written
# as BENCH_sim.json (benchmark name → ns/op, B/op, allocs/op, custom
# virtual_* metrics) so future PRs can diff ns/event and allocs/event.
bench:
	{ $(GO) test -bench . -benchmem -run '^$$' ./internal/sim && \
	  $(GO) test -bench '^(BenchmarkFig12c|BenchmarkEndToEndScheduledRun)$$' \
	    -benchmem -benchtime 1x -run '^$$' . ; } | $(GO) run ./cmd/benchjson > BENCH_sim.json
	@cat BENCH_sim.json
