package callsum

import (
	"go/ast"
	"go/token"
	"go/types"

	"sdds/internal/analysis"
)

// SimPackage is the import path of the discrete-event engine; *sim.Event
// retention is tracked against it and the engine's own free-list
// bookkeeping is exempt. A var so fixture tests can rebind it.
var SimPackage = "sdds/internal/sim"

// GlobalRandFuncs are the package-level math/rand (and v2) functions
// drawing from the globally-seeded source. Deterministic constructors
// (New, NewSource, NewZipf) stay allowed. Shared with simdet.
var GlobalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 additions.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

// allocStrings / allocStrconv are the string-building stdlib helpers whose
// every call allocates its result.
var allocStrings = map[string]bool{
	"Join": true, "Repeat": true, "Split": true, "SplitN": true,
	"Fields": true, "Replace": true, "ReplaceAll": true,
	"ToUpper": true, "ToLower": true, "Title": true, "Map": true,
}

var allocStrconv = map[string]bool{
	"FormatFloat": true, "FormatInt": true, "FormatUint": true,
	"Itoa": true, "Quote": true, "AppendQuote": true,
}

// callSite is one resolved static call to a module-local function,
// annotated with the lock-held context it happens under.
type callSite struct {
	pos    token.Pos
	callee *types.Func
	held   []string // lock identities held at the call
	async  bool     // inside a `go` statement's body
}

// funcFacts pairs a function's in-progress summary with the call sites the
// package-level fixpoint still has to merge.
type funcFacts struct {
	sum   *Summary
	calls []callSite
}

type walker struct {
	s   *Summaries
	pkg *analysis.Package
	ign *analysis.IgnoreIndex
	fd  *ast.FuncDecl
	f   *funcFacts

	held    []string // lock identities currently held (linear approximation)
	async   bool     // inside a `go` body: blocking doesn't block the caller
	noBlock int      // >0 inside select comm clauses: their ops don't block
}

func (s *Summaries) walkFunc(pkg *analysis.Package, ign *analysis.IgnoreIndex, fd *ast.FuncDecl, fn *types.Func) *funcFacts {
	w := &walker{
		s: s, pkg: pkg, ign: ign, fd: fd,
		f: &funcFacts{sum: &Summary{Fn: fn, Hotpath: analysis.IsHotpath(fd)}},
	}
	w.walk(fd.Body)
	return w.f
}

func (w *walker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			w.goStmt(n)
			return false
		case *ast.DeferStmt:
			if w.isUnlockCall(n.Call) {
				return false // deferred unlock: the lock stays held to return
			}
			return true
		case *ast.SelectStmt:
			w.selectStmt(n)
			return false
		case *ast.SendStmt:
			w.blocker(n.Pos(), "channel send")
		case *ast.UnaryExpr:
			switch n.Op {
			case token.ARROW:
				w.blocker(n.Pos(), "channel receive")
			case token.AND:
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					w.intrinsic(Alloc, n.Pos(), "&composite literal allocates")
					return false // don't double-count the literal itself
				}
			}
		case *ast.RangeStmt:
			if t, ok := w.pkg.Info.Types[n.X]; ok {
				switch t.Type.Underlying().(type) {
				case *types.Chan:
					w.blocker(n.Pos(), "range over channel")
				case *types.Map:
					w.mapOrder(n)
				}
			}
		case *ast.CallExpr:
			w.call(n)
		case *ast.FuncLit:
			if analysis.Captures(w.pkg.Info, n) {
				w.intrinsic(Alloc, n.Pos(), "capturing closure allocates")
			}
		case *ast.CompositeLit:
			if t, ok := w.pkg.Info.Types[n]; ok {
				switch t.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					w.intrinsic(Alloc, n.Pos(), "slice/map literal allocates")
				}
			}
		case *ast.AssignStmt:
			w.assign(n)
		}
		return true
	})
}

// goStmt walks a goroutine body in a fresh held-lock context: its blocking
// doesn't block the spawning function, but effects and held-blocking
// inside it are still the function's doing.
func (w *walker) goStmt(n *ast.GoStmt) {
	savedHeld, savedAsync := w.held, w.async
	w.held, w.async = nil, true
	if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
		if analysis.Captures(w.pkg.Info, lit) {
			w.intrinsic(Alloc, lit.Pos(), "capturing closure allocates")
		}
		w.walk(lit.Body)
	} else {
		w.call(n.Call)
	}
	w.held, w.async = savedHeld, savedAsync
	for _, arg := range n.Call.Args {
		w.walk(arg) // arguments are evaluated synchronously, locks held
	}
}

// selectStmt: a select with a default never blocks; its comm operations
// (the sends/receives in the case headers) are non-blocking by
// construction either way, so they're walked under noBlock.
func (w *walker) selectStmt(n *ast.SelectStmt) {
	hasDefault := false
	for _, c := range n.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		w.blocker(n.Pos(), "select without default")
	}
	for _, c := range n.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm != nil {
			w.noBlock++
			w.walk(cc.Comm)
			w.noBlock--
		}
		for _, st := range cc.Body {
			w.walk(st)
		}
	}
}

// intrinsic records a leaf effect, unless an ignore directive at the site
// justifies it (the check runs even when the effect is already set, so
// every suppressing directive is marked used for the stale audit).
func (w *walker) intrinsic(k EffectKind, pos token.Pos, detail string) {
	if w.ign.SuppressedAny(suppressors[k], pos) {
		return
	}
	if w.f.sum.effects[k] != nil {
		return
	}
	w.f.sum.effects[k] = &Cause{Pos: pos, Detail: detail}
}

// blocker records a may-block site: Blocks for the synchronous context,
// HeldBlocks for every lock currently held.
func (w *walker) blocker(pos token.Pos, detail string) {
	if w.noBlock > 0 {
		return
	}
	if w.ign.SuppressedAny([]string{"locksafe"}, pos) {
		return
	}
	sum := w.f.sum
	if !w.async && sum.Blocks == nil {
		sum.Blocks = &Cause{Pos: pos, Detail: detail}
	}
	for _, id := range w.held {
		if sum.HeldBlocks[id] == nil {
			sum.setHeldBlock(id, &Cause{Pos: pos, Detail: detail})
		}
	}
}

func (w *walker) call(call *ast.CallExpr) {
	fn := analysis.CalleeFunc(w.pkg.Info, call)
	if fn == nil {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := w.pkg.Info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "new":
					w.intrinsic(Alloc, call.Pos(), "new(...) allocates")
				case "make":
					w.intrinsic(Alloc, call.Pos(), "make(...) allocates")
				}
			}
		}
		return
	}
	if fn.Pkg() == nil {
		return
	}
	if fn.Pkg().Path() == "sync" && w.syncCall(call, fn) {
		return
	}
	if w.s.mod.Package(fn.Pkg().Path()) != nil {
		w.f.calls = append(w.f.calls, callSite{
			pos:    call.Pos(),
			callee: fn,
			held:   append([]string(nil), w.held...),
			async:  w.async,
		})
		return
	}
	w.external(call, fn)
}

// syncCall interprets the sync package: mutex acquire/release drives the
// held set and the Locks summary; WaitGroup/Cond Wait are blockers.
func (w *walker) syncCall(call *ast.CallExpr, fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		id := w.lockID(call)
		switch fn.Name() {
		case "Lock", "RLock":
			if id != "" && !w.ign.SuppressedAny([]string{"locksafe"}, call.Pos()) {
				if w.f.sum.Locks[id] == nil {
					w.f.sum.setLock(id, &Cause{Pos: call.Pos(), Detail: "acquires " + id})
				}
				w.held = append(w.held[:len(w.held):len(w.held)], id)
			}
			return true
		case "Unlock", "RUnlock":
			for i := len(w.held) - 1; i >= 0; i-- {
				if w.held[i] == id {
					w.held = append(w.held[:i:i], w.held[i+1:]...)
					break
				}
			}
			return true
		}
	case "WaitGroup", "Cond":
		if fn.Name() == "Wait" {
			w.blocker(call.Pos(), "sync."+named.Obj().Name()+".Wait")
			return true
		}
	}
	return false
}

// isUnlockCall reports whether call is a mutex Unlock/RUnlock (the deferred
// form that keeps the lock held to function end).
func (w *walker) isUnlockCall(call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(w.pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	return fn.Name() == "Unlock" || fn.Name() == "RUnlock"
}

// lockID names the mutex a Lock/Unlock call operates on:
// "pkgpath.Type.field" for struct fields, "pkgpath.var" for package-level
// mutexes, "" for locals and anything unresolvable.
func (w *walker) lockID(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		t, ok := w.pkg.Info.Types[recv.X]
		if !ok {
			return ""
		}
		tt := t.Type
		if ptr, ok := tt.(*types.Pointer); ok {
			tt = ptr.Elem()
		}
		named, ok := tt.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + recv.Sel.Name
	case *ast.Ident:
		v, ok := analysis.ObjOf(w.pkg.Info, recv).(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return ""
		}
		return v.Pkg().Path() + "." + v.Name()
	}
	return ""
}

// external classifies calls into packages outside the module.
func (w *walker) external(call *ast.CallExpr, fn *types.Func) {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // stdlib methods: none classified
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "time":
		switch name {
		case "Now", "Since", "Until", "After", "Tick":
			w.intrinsic(WallClock, call.Pos(), "time."+name)
		case "Sleep":
			w.intrinsic(WallClock, call.Pos(), "time.Sleep")
			w.blocker(call.Pos(), "time.Sleep")
		}
	case "math/rand", "math/rand/v2":
		if GlobalRandFuncs[name] {
			w.intrinsic(GlobalRand, call.Pos(), "global math/rand."+name)
		}
	case "fmt":
		w.intrinsic(Alloc, call.Pos(), "fmt."+name+" allocates")
	case "encoding/json":
		w.intrinsic(Alloc, call.Pos(), "json."+name+" allocates")
	case "errors":
		if name == "New" || name == "Join" {
			w.intrinsic(Alloc, call.Pos(), "errors."+name+" allocates")
		}
	case "strings":
		if allocStrings[name] {
			w.intrinsic(Alloc, call.Pos(), "strings."+name+" allocates")
		}
	case "strconv":
		if allocStrconv[name] {
			w.intrinsic(Alloc, call.Pos(), "strconv."+name+" allocates")
		}
	case "sort":
		if name == "Slice" || name == "SliceStable" {
			w.intrinsic(Alloc, call.Pos(), "sort."+name+" allocates")
		}
	}
}

// mapOrder scans a map-range body for order-sensitive mutation of outer
// state — the conservative subset (appends, last-writer-wins stores, float
// accumulation) shared with simdet's direct check; bare calls inside map
// ranges stay a simdet-only, sim-package-only rule.
func (w *walker) mapOrder(rng *ast.RangeStmt) {
	info := w.pkg.Info
	keyIdent, _ := rng.Key.(*ast.Ident)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // deferred work: not executed in iteration order here
		case *ast.CallExpr:
			if IsAppendCall(info, n) && len(n.Args) > 0 {
				if root := analysis.RootIdent(n.Args[0]); root != nil &&
					analysis.DeclaredOutside(info, root, rng.Pos(), rng.End()) &&
					!SortedAfter(info, w.fd, rng, root) {
					w.intrinsic(MapOrder, n.Pos(), "append to "+root.Name+" in map-iteration order")
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			commutative := n.Tok != token.ASSIGN
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) && IsAppendCall(info, n.Rhs[i]) {
					continue // owned by the append arm
				}
				if ConstantStore(info, n, i) {
					continue // same value every iteration: order-free
				}
				if OrderSensitiveStore(info, rng, keyIdent, lhs, commutative) {
					w.intrinsic(MapOrder, n.Pos(), "order-sensitive store in map iteration")
				}
			}
		case *ast.IncDecStmt:
			if OrderSensitiveStore(info, rng, keyIdent, n.X, true) {
				w.intrinsic(MapOrder, n.Pos(), "float update in map-iteration order")
			}
		}
		return true
	})
}

// assign records *sim.Event retention: a non-retained event (a parameter,
// or the result of Engine.Schedule/ScheduleAt) stored into a field,
// element, or package-level variable. The engine's own package is exempt —
// the free list stores events by design.
func (w *walker) assign(as *ast.AssignStmt) {
	if w.pkg.PkgPath == SimPackage {
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		t, ok := w.pkg.Info.Types[as.Rhs[i]]
		if !ok || !analysis.IsPointerTo(t.Type, SimPackage, "Event") {
			continue
		}
		if !retainingLval(w.pkg.Info, lhs) {
			continue
		}
		if src := w.retainSource(as.Rhs[i]); src != "" {
			w.intrinsic(RetainEvent, as.Pos(), "stores *sim.Event ("+src+")")
		}
	}
}

// retainingLval reports whether the store target outlives the enclosing
// call frame: a field, an element, or a package-level variable.
func retainingLval(info *types.Info, lhs ast.Expr) bool {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.Ident:
		v, ok := analysis.ObjOf(info, l).(*types.Var)
		return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
	}
	return false
}

// retainSource describes why the stored event is non-retained: "" means the
// flow isn't tracked here (eventretain's per-function analysis is the
// precise check for local flows).
func (w *walker) retainSource(rhs ast.Expr) string {
	switch r := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		fn := analysis.CalleeFunc(w.pkg.Info, r)
		if fn != nil && (fn.Name() == "Schedule" || fn.Name() == "ScheduleAt") &&
			analysis.IsMethodOn(fn, SimPackage, "Engine") {
			return "from Engine." + fn.Name()
		}
	case *ast.Ident:
		if v, ok := analysis.ObjOf(w.pkg.Info, r).(*types.Var); ok && w.fd.Type.Params != nil {
			for _, field := range w.fd.Type.Params.List {
				for _, pn := range field.Names {
					if w.pkg.Info.Defs[pn] == v {
						return "parameter " + v.Name()
					}
				}
			}
		}
	}
	return ""
}

// ---------------------------------------------------------------------------
// Shared order-sensitivity helpers (used by simdet's direct check too).

// IsAppendCall reports whether e is a call to the builtin append.
func IsAppendCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || analysis.CalleeFunc(info, call) != nil {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append"
}

// SortedAfter reports whether the slice rooted at root is passed to a
// sort.* or slices.Sort* call after the map range ends: the
// collect-then-sort idiom fixes the order before anyone can observe it.
// scope is any node enclosing both the range and the sort call (the
// function body or the whole file) — object identity on root confines the
// match to the right function. The comparator is assumed total; sorting on
// a non-unique key would still leave ties in random relative order.
func SortedAfter(info *types.Info, scope ast.Node, rng *ast.RangeStmt, root *ast.Ident) bool {
	obj := analysis.ObjOf(info, root)
	if obj == nil || scope == nil {
		return false
	}
	sorted := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		fn := analysis.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if r := analysis.RootIdent(call.Args[0]); r != nil && analysis.ObjOf(info, r) == obj {
			sorted = true
		}
		return true
	})
	return sorted
}

// ConstantStore reports whether as's i-th assignment stores a constant with
// plain `=`: every iteration writes the same value, so iteration order
// cannot be observed through it.
func ConstantStore(info *types.Info, as *ast.AssignStmt, i int) bool {
	if as.Tok != token.ASSIGN || i >= len(as.Rhs) {
		return false
	}
	tv, ok := info.Types[as.Rhs[i]]
	return ok && tv.Value != nil
}

// OrderSensitiveStore decides whether storing through lhs inside the map
// range can observe iteration order. commutativeOp marks += style updates,
// which are exact (and therefore allowed) on integers but not on floats.
// Per-key stores into an outer map indexed by the loop key touch each slot
// exactly once and are order-free for both forms.
func OrderSensitiveStore(info *types.Info, rng *ast.RangeStmt, keyIdent *ast.Ident, lhs ast.Expr, commutativeOp bool) bool {
	root := analysis.RootIdent(lhs)
	if root == nil || root.Name == "_" {
		return false
	}
	if !analysis.DeclaredOutside(info, root, rng.Pos(), rng.End()) {
		return false
	}
	if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && keyIdent != nil {
		if baseT, ok := info.Types[idx.X]; ok {
			if _, isMap := baseT.Type.Underlying().(*types.Map); isMap {
				ko := analysis.ObjOf(info, keyIdent)
				if id, ok := ast.Unparen(idx.Index).(*ast.Ident); ok && ko != nil &&
					analysis.ObjOf(info, id) == ko {
					return false
				}
			}
		}
	}
	if commutativeOp {
		if t, ok := info.Types[lhs]; ok {
			if b, ok := t.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat == 0 {
				return false
			}
		}
	}
	return true
}
