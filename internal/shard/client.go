package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"sdds/internal/backoff"
	"sdds/internal/harness"
)

// Client drives the sddsd /v1/shards endpoints (and the run-lookup
// endpoint the submitter uses to collect merged results). Transient
// transport errors and 5xx responses are retried under a jittered capped
// backoff, so a worker survives a coordinator restart and a submitter
// survives a flaky link.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8377".
	BaseURL string
	// HTTP is the transport; nil means a 30s-timeout client.
	HTTP *http.Client
	// Backoff paces retries (zero value: backoff.New(200ms, 5s)).
	Backoff backoff.Policy
	// Retries bounds attempts per call (default 5).
	Retries int
}

// httpError is a non-2xx response; 5xx values are retryable.
type httpError struct {
	status int
	body   string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("http %d: %s", e.status, e.body)
}

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// do issues one request with retries: transport errors and 5xx retry
// under backoff, 4xx fail fast (the request itself is wrong).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	bo := c.Backoff
	if bo.Base == 0 && bo.Cap == 0 {
		bo = backoff.New(200*time.Millisecond, 5*time.Second)
	}
	retries := c.Retries
	if retries <= 0 {
		retries = 5
	}
	var lastErr error
	for try := 0; try < retries; try++ {
		if try > 0 {
			if err := bo.Sleep(ctx, try-1); err != nil {
				return err
			}
		}
		lastErr = c.once(ctx, method, path, in, out)
		if lastErr == nil {
			return nil
		}
		var he *httpError
		if errors.As(lastErr, &he) && he.status < 500 {
			return lastErr // client error: retrying cannot help
		}
		if ctx.Err() != nil {
			return lastErr
		}
	}
	return fmt.Errorf("shard: %s %s failed after %d attempts: %w", method, path, retries, lastErr)
}

func (c *Client) once(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimSuffix(c.BaseURL, "/")+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg := strings.TrimSpace(string(buf))
		var er struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(buf, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return &httpError{status: resp.StatusCode, body: msg}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(buf, out)
}

// Lease implements API over HTTP.
func (c *Client) Lease(ctx context.Context, worker string) (LeaseResponse, error) {
	var out LeaseResponse
	err := c.do(ctx, http.MethodPost, "/v1/shards/lease", LeaseRequest{Worker: worker}, &out)
	return out, err
}

// Renew implements API over HTTP.
func (c *Client) Renew(ctx context.Context, req RenewRequest) (RenewResponse, error) {
	var out RenewResponse
	err := c.do(ctx, http.MethodPost, "/v1/shards/renew", req, &out)
	return out, err
}

// Complete implements API over HTTP. Safe to retry: completions dedup.
func (c *Client) Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	var out CompleteResponse
	err := c.do(ctx, http.MethodPost, "/v1/shards/complete", req, &out)
	return out, err
}

// Submit starts a sharded sweep on the coordinator.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (SubmitResponse, error) {
	var out SubmitResponse
	err := c.do(ctx, http.MethodPost, "/v1/shards/sweeps", req, &out)
	return out, err
}

// Status snapshots the coordinator.
func (c *Client) Status(ctx context.Context) (Snapshot, error) {
	var out Snapshot
	err := c.do(ctx, http.MethodGet, "/v1/shards/status", nil, &out)
	return out, err
}

// WaitDone polls Status until the sweep is done or ctx ends, returning
// the final snapshot. A sweep that finished with poisoned shards returns
// the snapshot and an error carrying the coordinator's verdict.
func (c *Client) WaitDone(ctx context.Context, poll time.Duration) (Snapshot, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		snap, err := c.Status(ctx)
		if err != nil {
			return snap, err
		}
		if snap.Done {
			if snap.Err != "" {
				return snap, fmt.Errorf("shard: sweep finished with failures: %s", snap.Err)
			}
			return snap, nil
		}
		if err := sleepCtx(ctx, poll); err != nil {
			return snap, err
		}
	}
}

// Run fetches one merged result by content key from the coordinator's
// canonical store (GET /v1/runs/{key}).
func (c *Client) Run(ctx context.Context, contentKey string) (harness.Request, harness.RunRecord, error) {
	var out struct {
		Request harness.Request    `json:"request"`
		Result  *harness.RunRecord `json:"result"`
		Error   string             `json:"error"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/runs/"+contentKey, nil, &out); err != nil {
		return harness.Request{}, harness.RunRecord{}, err
	}
	if out.Error != "" {
		return out.Request, harness.RunRecord{}, fmt.Errorf("shard: run %s: %s", contentKey, out.Error)
	}
	if out.Result == nil {
		return out.Request, harness.RunRecord{}, fmt.Errorf("shard: run %s: no result", contentKey)
	}
	return out.Request, *out.Result, nil
}
