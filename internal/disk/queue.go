package disk

import "sort"

// elevator implements the SCAN (elevator) disk-arm scheduling discipline
// from Table II: pending requests are served in cylinder order, continuing
// in the current sweep direction and reversing at the last request.
type elevator struct {
	pending []*Request
	up      bool // current sweep direction: toward higher cylinders
}

func newElevator() *elevator { return &elevator{up: true} }

// Len returns the number of queued requests.
func (q *elevator) Len() int { return len(q.pending) }

// Push inserts a request keeping the slice cylinder-sorted.
func (q *elevator) Push(r *Request) {
	i := sort.Search(len(q.pending), func(i int) bool {
		return q.pending[i].cylinder >= r.cylinder
	})
	q.pending = append(q.pending, nil)
	copy(q.pending[i+1:], q.pending[i:])
	q.pending[i] = r
}

// Pop removes and returns the next request to serve given the head position,
// or nil when empty. It continues the current sweep, reversing direction
// when the sweep is exhausted.
func (q *elevator) Pop(headCyl int64) *Request {
	n := len(q.pending)
	if n == 0 {
		return nil
	}
	// Index of first request at or above the head.
	i := sort.Search(n, func(i int) bool { return q.pending[i].cylinder >= headCyl }) //sddsvet:ignore hotalloc -- sort.Search predicate does not escape: no per-call heap allocation
	var pick int
	if q.up {
		if i < n {
			pick = i
		} else {
			q.up = false
			pick = n - 1
		}
	} else {
		if i > 0 {
			pick = i - 1
			// A request exactly at the head belongs to the downward
			// sweep too.
			if i < n && q.pending[i].cylinder == headCyl {
				pick = i
			}
		} else {
			q.up = true
			pick = 0
		}
	}
	r := q.pending[pick]
	q.pending = append(q.pending[:pick], q.pending[pick+1:]...)
	return r
}
