package harness

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"sdds/internal/probe"
)

// stressExperiments is a fully-plannable overlapping experiment set (no
// inline, uncached passes): the policy figures share the baselines, fig13a
// shares fig12c's whole plan.
func stressExperiments(t *testing.T) []Experiment {
	t.Helper()
	var exps []Experiment
	for _, id := range []string{"table3", "fig12a", "fig12b", "fig12c", "fig13a"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	return exps
}

func renderAll(results []*Result) string {
	var b strings.Builder
	for _, r := range results {
		b.WriteString(r.Render())
	}
	return b.String()
}

// TestSessionParallelMatchesSerial asserts the parallel engine is
// invisible in the output: a 1-worker session and an 8-worker session
// produce byte-identical tables.
func TestSessionParallelMatchesSerial(t *testing.T) {
	exps := stressExperiments(t)
	cfg := tiny()

	serial, err := NewSession(SessionOptions{Workers: 1}).RunAll(context.Background(), exps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewSession(SessionOptions{Workers: 8}).RunAll(context.Background(), exps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderAll(parallel), renderAll(serial); got != want {
		t.Fatalf("parallel output diverges from serial:\n--- parallel ---\n%s\n--- serial ---\n%s", got, want)
	}
}

// TestSessionConcurrentStress runs overlapping experiment batches on ONE
// session from several goroutines (meaningful under -race) and asserts
// (a) every goroutine sees the same tables as a serial run (determinism
// despite scheduling order) and (b) the session simulated exactly the
// planned distinct-key count — singleflight deduplication let nothing run
// twice.
func TestSessionConcurrentStress(t *testing.T) {
	exps := stressExperiments(t)
	cfg := tiny()

	serial, err := NewSession(SessionOptions{Workers: 1}).RunAll(context.Background(), exps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(serial)

	s := NewSession(SessionOptions{Workers: 4})
	const goroutines = 4
	outs := make([]string, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Overlap: each goroutine starts the batch at a different
			// experiment so plans interleave mid-flight.
			rot := append(append([]Experiment{}, exps[g%len(exps):]...), exps[:g%len(exps)]...)
			results, err := s.RunAll(context.Background(), rot, cfg)
			if err != nil {
				errs[g] = err
				return
			}
			byID := make(map[string]*Result, len(results))
			for _, r := range results {
				byID[r.ID] = r
			}
			ordered := make([]*Result, 0, len(exps))
			for _, e := range exps {
				ordered = append(ordered, byID[e.ID])
			}
			outs[g] = renderAll(ordered)
		}()
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if outs[g] != want {
			t.Fatalf("goroutine %d output diverges from serial run", g)
		}
	}

	planned := len(planFor(exps, cfg.withDefaults()))
	if got := s.MemoSize(); got != planned {
		t.Fatalf("MemoSize = %d, want planned distinct-key count %d", got, planned)
	}
	simulated, hits := s.Stats()
	if simulated != int64(planned) {
		t.Fatalf("simulated %d configurations, want exactly %d (duplicate simulations)", simulated, planned)
	}
	if hits == 0 {
		t.Fatal("no cache hits despite overlapping batches")
	}
}

// TestSessionPlanDedup checks cross-experiment plan deduplication:
// fig14b's θ sweep points are a subset of fig14a's.
func TestSessionPlanDedup(t *testing.T) {
	c := tiny().withDefaults()
	a, _ := ByID("fig14a")
	b, _ := ByID("fig14b")
	na := len(planFor([]Experiment{a}, c))
	nb := len(planFor([]Experiment{b}, c))
	both := len(planFor([]Experiment{a, b}, c))
	if nb == 0 || na == 0 {
		t.Fatalf("empty plans: fig14a=%d fig14b=%d", na, nb)
	}
	if both != na {
		t.Fatalf("union plan = %d, want %d (fig14b [%d specs] must dedup into fig14a's plan)", both, na, nb)
	}
	// fig13a shares fig12c's entire plan.
	c12, _ := ByID("fig12c")
	c13, _ := ByID("fig13a")
	if n := len(planFor([]Experiment{c12, c13}, c)); n != len(planFor([]Experiment{c12}, c)) {
		t.Fatalf("fig13a added %d specs beyond fig12c's plan", n-len(planFor([]Experiment{c12}, c)))
	}
}

// TestSessionCancellation checks both the pre-cancelled fast path and
// prompt mid-run abort.
func TestSessionCancellation(t *testing.T) {
	exps := stressExperiments(t)
	cfg := tiny()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewSession(SessionOptions{Workers: 2})
	if _, err := s.RunAll(ctx, exps, cfg); err == nil {
		t.Fatal("RunAll accepted a cancelled context")
	}
	if n := s.MemoSize(); n != 0 {
		t.Fatalf("cancelled run left %d memo entries", n)
	}

	// Mid-run: cancel shortly after start; RunAll must return quickly.
	ctx2, cancel2 := context.WithCancel(context.Background())
	s2 := NewSession(SessionOptions{Workers: 2})
	done := make(chan error, 1)
	go func() {
		_, err := s2.RunAll(ctx2, exps, Config{Scale: 0.1, Apps: []string{"wupwise"}, Seed: 1})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel2()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled mid-run yet RunAll returned nil")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunAll did not abort promptly after cancellation")
	}
}

// TestSessionProgressEvents checks the observability hook: one event per
// planned run, Done climbing to Total, hits flagged on re-resolution.
func TestSessionProgressEvents(t *testing.T) {
	e, err := ByID("table3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := tiny()
	var mu sync.Mutex
	var events []Progress
	s := NewSession(SessionOptions{Workers: 2, Progress: func(p Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	}})
	if _, err := s.Run(context.Background(), e, cfg); err != nil {
		t.Fatal(err)
	}
	planned := len(planFor([]Experiment{e}, cfg.withDefaults()))
	if len(events) != planned {
		t.Fatalf("%d progress events, want %d", len(events), planned)
	}
	last := events[len(events)-1]
	if last.Done != planned || last.Total != planned {
		t.Fatalf("final event = %+v, want Done=Total=%d", last, planned)
	}
	// A second run of the same experiment resolves purely from cache.
	events = events[:0]
	if _, err := s.Run(context.Background(), e, cfg); err != nil {
		t.Fatal(err)
	}
	for _, p := range events {
		if !p.Hit {
			t.Fatalf("expected all-hit rerun, got %+v", p)
		}
	}
	if _, hits := s.Stats(); hits == 0 {
		t.Fatal("no hits recorded on rerun")
	}
}

// TestSessionProbeAndMetrics checks the tracing hooks: every executed run
// carries its metrics snapshot in Progress, and the session's span probe
// collects the plan span, per-run worker spans, and the cluster runner's
// simulate spans without racing (the worker pool is concurrent).
func TestSessionProbeAndMetrics(t *testing.T) {
	e, err := ByID("table3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := tiny()
	pr := probe.NewSpanProbe()
	var mu sync.Mutex
	var events []Progress
	s := NewSession(SessionOptions{Workers: 2, Probe: pr, Progress: func(p Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	}})
	if _, err := s.Run(context.Background(), e, cfg); err != nil {
		t.Fatal(err)
	}
	for _, p := range events {
		if p.Err == nil && len(p.Metrics) == 0 {
			t.Fatalf("run %q delivered no metrics", p.Key)
		}
		for _, m := range p.Metrics {
			if m.Name == "exec.time_s" && m.Value <= 0 {
				t.Fatalf("run %q exec.time_s = %v", p.Key, m.Value)
			}
		}
	}
	// Spans: plan + one per run + simulate per executed run, all closed.
	if n := pr.SpanCount(); n < 1+len(events) {
		t.Fatalf("span count = %d, want >= %d (plan + per-run)", n, 1+len(events))
	}
	if pr.Emitted() != 0 {
		t.Fatal("span-only probe must not record ring events")
	}
}
