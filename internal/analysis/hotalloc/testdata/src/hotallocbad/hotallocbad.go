// Package hotallocbad is the hotalloc analyzer fixture. It imports the real
// sim engine so method resolution runs against the actual
// sdds/internal/sim.Engine type.
package hotallocbad

import (
	"encoding/json"

	"sdds/internal/probe"
	"sdds/internal/sim"
)

type server struct {
	eng     *sim.Engine
	tickFn  sim.Handler
	pending int
}

func newServer() *server {
	s := &server{eng: sim.NewEngine(1)}
	s.tickFn = s.onTick
	return s
}

func (s *server) onTick(now sim.Time) { s.pending-- }

func capturingSchedule(s *server) {
	s.eng.ScheduleFunc(1, "bad", func(now sim.Time) { // want `capturing closure passed to Engine\.ScheduleFunc`
		s.pending++
	})
	s.eng.ScheduleArg(1, "bad", func(now sim.Time, arg any) { // want `capturing closure passed to Engine\.ScheduleArg`
		s.pending = int(now)
	}, nil)
}

func preBoundSchedule(s *server) {
	s.eng.ScheduleFunc(1, "ok", s.tickFn)              // pre-bound handler: allowed
	s.eng.ScheduleFunc(1, "ok", func(now sim.Time) {}) // non-capturing literal: no allocation
	// Handle-returning Schedule is the cancellable-timer (cold) path; its
	// closures are not the analyzer's business.
	s.eng.Schedule(1, "ok", func(now sim.Time) { s.onTick(now) })
}

func ignoredCapture(s *server) {
	//sddsvet:ignore hotalloc -- fixture: startup-only site, once per run
	s.eng.ScheduleFunc(0, "start", func(now sim.Time) { s.pending++ })
}

//sddsvet:hotpath
func (s *server) hotServe(now sim.Time) {
	fn := func(t sim.Time) { s.pending-- } // want `capturing closure in hotpath function hotServe`
	_ = fn
	p := new(server) // want `new\(\.\.\.\) in hotpath function hotServe`
	_ = p
	q := &server{eng: s.eng} // want `&composite literal in hotpath function hotServe`
	_ = q
	buf := make([]int, 4) // want `make\(\.\.\.\) in hotpath function hotServe`
	_ = buf
	fns := []sim.Handler{s.tickFn} // want `slice/map literal in hotpath function hotServe`
	_ = fns
}

//sddsvet:hotpath
func (s *server) hotClean(now sim.Time) {
	s.pending++
	s.eng.ScheduleFunc(1, "ok", s.tickFn)
	//sddsvet:ignore hotalloc -- fixture: cold error path inside a hot function
	msg := []int{1}
	_ = msg
}

func coldAllocs() *server {
	// Not annotated: construction-time allocation is fine.
	return &server{eng: sim.NewEngine(7)}
}

// hotDeep allocates only through helpers, two levels down: nothing in its
// own body allocates, so only the summary engine can flag it — with the
// full chain from the call site to the make at the leaf.
//
//sddsvet:hotpath
func (s *server) hotDeep(now sim.Time) {
	growBatch(s) // want `call allocates on the hot path: hotallocbad\.server\.hotDeep → hotallocbad\.growBatch → hotallocbad\.newBatch → make\(\.\.\.\) allocates`
	noteIdle(s)
}

func growBatch(s *server) {
	_ = newBatch()
}

func newBatch() []int {
	return make([]int, 0, 16)
}

// noteIdle is allocation-free all the way down: calling it from a hotpath
// function is fine.
func noteIdle(s *server) {
	s.pending++
}

// --- probe emit path ---------------------------------------------------
// The tracing layer's Probe.Emit carries //sddsvet:hotpath; these fixtures
// pin down what the analyzer must allow on that path (value struct writes
// into a preallocated ring, the nil-checked Emit call itself) and what it
// must flag (per-event record boxing, closures capturing the probe).

type emitter struct {
	eng  *sim.Engine
	pr   *probe.Probe
	ring []probe.Record
	next int
}

//sddsvet:hotpath
func (e *emitter) emitClean(now sim.Time) {
	// A value composite literal stored into the preallocated ring does not
	// allocate — this is exactly Probe.Emit's body shape.
	e.ring[e.next&(len(e.ring)-1)] = probe.Record{T: int64(now), Kind: probe.KindIOIssue, ID: 3}
	e.next++
	e.pr.Emit(probe.KindIOComplete, 3, int64(now), 0)
}

//sddsvet:hotpath
func (e *emitter) emitBoxed(now sim.Time) {
	r := &probe.Record{T: int64(now)} // want `&composite literal in hotpath function emitBoxed`
	_ = r
	batch := []probe.Record{{T: int64(now)}} // want `slice/map literal in hotpath function emitBoxed`
	_ = batch
	grown := make([]probe.Record, 0, 1) // want `make\(\.\.\.\) in hotpath function emitBoxed`
	_ = grown
}

// --- (de)serialization on the hot path ---------------------------------
// The compile-artifact cache (de)serializes compiler results through
// encoding/json — once per process, in the restore/store layer. Those
// calls must never migrate into a //sddsvet:hotpath function: every
// Marshal reflects over the value and allocates the output buffer.

type cacheEntry struct {
	key  string
	blob []byte
}

//sddsvet:hotpath
func (e *emitter) hotSerialize(entry *cacheEntry) {
	blob, err := json.Marshal(entry.key) // want `encoding/json\.Marshal in hotpath function hotSerialize`
	_, _ = blob, err
	err = json.Unmarshal(entry.blob, &entry.key) // want `encoding/json\.Unmarshal in hotpath function hotSerialize`
	_ = err
}

// coldSerialize is the restore/store layer's shape: unannotated, runs once
// per process, allowed.
func coldSerialize(entry *cacheEntry) error {
	blob, err := json.Marshal(entry.key)
	if err != nil {
		return err
	}
	return json.Unmarshal(blob, &entry.key)
}

func emitViaSchedule(e *emitter) {
	// Wrapping an emit in a capturing closure per scheduled event rebuilds
	// the allocation the de-closured path removed.
	e.eng.ScheduleFunc(1, "bad", func(now sim.Time) { // want `capturing closure passed to Engine\.ScheduleFunc`
		e.pr.Emit(probe.KindSpinUp, 0, int64(now), 0)
	})
}
