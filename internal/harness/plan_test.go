package harness

import (
	"context"
	"testing"

	"sdds/internal/cluster"
)

// TestPlanRequestsCanonicalAndStable pins the partitionable plan form:
// deterministic order across derivations, every element canonical, and
// content keys distinct (the dedup invariant shards rely on).
func TestPlanRequestsCanonicalAndStable(t *testing.T) {
	c := Config{Scale: 0.05, Seed: 42}
	a := PlanRequests(All(), c)
	b := PlanRequests(All(), c)
	if len(a) == 0 {
		t.Fatal("PlanRequests returned an empty plan")
	}
	if len(a) != len(b) {
		t.Fatalf("plan lengths differ across derivations: %d vs %d", len(a), len(b))
	}
	seen := make(map[string]bool)
	for i, r := range a {
		if r != b[i] {
			t.Fatalf("plan order diverged at %d: %v vs %v", i, r, b[i])
		}
		norm, err := r.Normalize()
		if err != nil {
			t.Fatalf("plan element %d invalid: %v", i, err)
		}
		if norm != r {
			t.Errorf("plan element %d not canonical: %v normalizes to %v", i, r, norm)
		}
		key := r.ContentKey()
		if seen[key] {
			t.Errorf("plan element %d repeats content key %s", i, key)
		}
		seen[key] = true
	}
}

// TestInstallSeedsCache pins Install semantics: the installed result is
// served as a journal-provenance cache hit, a second install of the same
// key is a first-wins no-op, and an invalid request is rejected.
func TestInstallSeedsCache(t *testing.T) {
	s := NewSession(SessionOptions{})
	req := Request{App: "sar", Policy: "history", Scheduling: true, Scale: 0.05, Seed: 42}
	res := &cluster.Result{Program: "sar", EnergyJ: 123.5}

	added, err := s.Install(req, res)
	if err != nil || !added {
		t.Fatalf("Install = %v, %v, want true, nil", added, err)
	}
	if s.Preloaded() != 1 {
		t.Errorf("Preloaded = %d, want 1", s.Preloaded())
	}
	// Second install (even via a differently-spelled but equal request)
	// must not replace the entry.
	other := &cluster.Result{Program: "sar", EnergyJ: 999}
	added, err = s.Install(Request{App: "sar", Policy: "history-based", Scheduling: true, Scale: 0.05, Seed: 42}, other)
	if err != nil || added {
		t.Fatalf("re-Install = %v, %v, want false, nil", added, err)
	}

	got, hit, err := s.RunRequest(context.Background(), req)
	if err != nil {
		t.Fatalf("RunRequest: %v", err)
	}
	if !hit || got != res {
		t.Fatalf("RunRequest hit=%v res=%p, want the installed result %p", hit, got, res)
	}
	if cres, cerr, ok := s.Cached(req); !ok || cerr != nil || cres != res {
		t.Fatalf("Cached = %p, %v, %v, want installed result", cres, cerr, ok)
	}

	if _, err := s.Install(Request{App: "no-such-app"}, res); err == nil {
		t.Error("Install of invalid request succeeded, want error")
	}
	if _, err := s.Install(req, nil); err == nil {
		t.Error("Install of nil result succeeded, want error")
	}
}
