package analysis_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"sdds/internal/analysis"
	"sdds/internal/analysis/all"
)

// TestSARIFStructure is the structural validator for the -sarif output: it
// decodes the emitted log as generic JSON and checks the SARIF 2.1.0
// invariants code-review tooling relies on — version, schema, one run with
// a named driver, unique rule ids, every result resolving to a declared
// rule, region positions 1-based, chains as relatedLocations, and
// baselined findings downgraded to note/unchanged.
func TestSARIFStructure(t *testing.T) {
	findings := []analysis.Finding{
		{
			File: "internal/disk/disk.go", Line: 3, Col: 7,
			Analyzer: "hotalloc", Message: "call allocates on the hot path",
			Chain: []analysis.ChainLoc{
				{Func: "disk.Disk.transfer", File: "internal/disk/disk.go", Line: 3, Col: 7},
				{Func: "ionode.flushBatch", File: "internal/ionode/node.go", Line: 9, Col: 2, Note: "fmt.Sprintf allocates"},
			},
		},
		{
			File: "internal/core/table.go", Line: 5, Col: 1,
			Analyzer: "ignoreaudit", Message: "stale directive", Baselined: true,
		},
	}
	var buf bytes.Buffer
	if err := analysis.WriteSARIF(&buf, findings, all.Analyzers); err != nil {
		t.Fatal(err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID        string `json:"ruleId"`
				Level         string `json:"level"`
				BaselineState string `json:"baselineState"`
				Message       struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region *struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				RelatedLocations []struct {
					Message *struct {
						Text string `json:"text"`
					} `json:"message"`
				} `json:"relatedLocations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("emitted SARIF is not valid JSON: %v", err)
	}

	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if log.Schema == "" {
		t.Error("$schema missing")
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "sddsvet" {
		t.Errorf("driver name = %q, want sddsvet", run.Tool.Driver.Name)
	}

	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription.Text == "" {
			t.Errorf("rule %+v missing id or description", r)
		}
		if ruleIDs[r.ID] {
			t.Errorf("duplicate rule id %q", r.ID)
		}
		ruleIDs[r.ID] = true
	}
	for _, a := range all.Analyzers {
		if !ruleIDs[a.Name] {
			t.Errorf("analyzer %s has no rule entry", a.Name)
		}
	}
	if !ruleIDs["ignoreaudit"] {
		t.Error("no synthetic rule for the audit finding")
	}

	if len(run.Results) != len(findings) {
		t.Fatalf("got %d results, want %d", len(run.Results), len(findings))
	}
	for i, res := range run.Results {
		if !ruleIDs[res.RuleID] {
			t.Errorf("result %d ruleId %q not declared in rules", i, res.RuleID)
		}
		if res.Message.Text == "" {
			t.Errorf("result %d has empty message", i)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result %d has %d locations, want 1", i, len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" {
			t.Errorf("result %d location has no uri", i)
		}
		if loc.Region == nil || loc.Region.StartLine < 1 {
			t.Errorf("result %d region missing or startLine < 1", i)
		}
	}

	if got := run.Results[0]; got.Level != "error" || got.BaselineState != "new" {
		t.Errorf("new finding: level=%q baselineState=%q, want error/new", got.Level, got.BaselineState)
	}
	if got := run.Results[1]; got.Level != "note" || got.BaselineState != "unchanged" {
		t.Errorf("baselined finding: level=%q baselineState=%q, want note/unchanged", got.Level, got.BaselineState)
	}

	rel := run.Results[0].RelatedLocations
	if len(rel) != 2 {
		t.Fatalf("chain finding has %d relatedLocations, want 2", len(rel))
	}
	if rel[1].Message == nil || rel[1].Message.Text != "ionode.flushBatch — fmt.Sprintf allocates" {
		t.Errorf("leaf relatedLocation label = %+v, want func — note form", rel[1].Message)
	}
}
