package harness

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"sdds/internal/power"
)

// TestRequestNormalizeDefaults pins the zero-value defaults: policy
// "default", scale 1.0, seed 1.
func TestRequestNormalizeDefaults(t *testing.T) {
	r, err := Request{App: "sar"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	want := Request{App: "sar", Policy: "default", Scale: 1.0, Seed: 1}
	if r != want {
		t.Fatalf("normalized %+v, want %+v", r, want)
	}
}

// TestRequestNormalizeCanonicalizesPolicy asserts short policy forms
// normalize to the canonical names, and unknown ones get suggestions.
func TestRequestNormalizeCanonicalizesPolicy(t *testing.T) {
	r, err := Request{App: "sar", Policy: "history"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if r.Policy != "history-based" {
		t.Fatalf("policy %q, want history-based", r.Policy)
	}
	_, err = Request{App: "sar", Policy: "histroy"}.Normalize()
	if err == nil || !strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("want did-you-mean error, got %v", err)
	}
}

// TestRequestNormalizeRejects pins the validation failures.
func TestRequestNormalizeRejects(t *testing.T) {
	cases := []Request{
		{},                                       // no app
		{App: "nosuch"},                          // unknown app
		{App: "sar", Scale: -1},                  // negative scale
		{App: "sar", Variant: "thetaa=8"},        // unknown variant key
		{App: "sar", Variant: "theta=-3"},        // bad variant value
		{App: "sar", Faults: "nonsense"},         // bad fault spec
		{App: "sar", TimeoutMS: -5},              // negative timeout
		{App: "sar", Variant: "theta=8,theta=8"}, // repeated key
	}
	for _, r := range cases {
		if err := r.Validate(); err == nil {
			t.Errorf("%+v validated, want error", r)
		}
	}
}

// TestRequestKeyMatchesSessionKey asserts the round-trip at the heart of
// the redesign: a normalized request plans into (runSpec, Config) whose
// session cache key is the request itself, so service-submitted requests
// and in-process experiment plans share cache slots and store entries.
func TestRequestKeyMatchesSessionKey(t *testing.T) {
	reqs := []Request{
		{App: "sar"},
		{App: "hf", Policy: "history", Scheduling: true, Scale: 0.05, Seed: 42},
		{App: "astro", Policy: "prediction-based", Variant: "nodes=16,theta=8"},
		{App: "sar", Faults: "read=0.01,seed=7", Seed: 3},
		{App: "wupwise", Variant: "cache=32MB,pacache", TimeoutMS: 5000},
	}
	for _, r := range reqs {
		norm, err := r.Normalize()
		if err != nil {
			t.Fatalf("%+v: %v", r, err)
		}
		sp, c, err := r.plan()
		if err != nil {
			t.Fatalf("%+v: %v", r, err)
		}
		if got, want := sp.key(c), norm.canonical(); got != want {
			t.Errorf("plan key %+v, want %+v", got, want)
		}
	}
}

// TestRequestVariantCanonicalization pins the variant grammar: unsorted
// and default-restating tags collapse to one canonical form.
func TestRequestVariantCanonicalization(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"theta=4", ""},          // the default, canonically absent
		{"procs=32,nodes=8", ""}, // all defaults
		{"theta=8", "theta=8"},
		{"theta=8,nodes=16", "nodes=16,theta=8"}, // sorted
		{"cache=33554432", "cache=32MB"},         // bytes render as MB
		{"cache=100", "cache=100"},               // non-MB stays bytes
		{"theta=0", "theta=0"},                   // unbounded, not default
		{"pacache,delta=40", "delta=40,pacache"},
	}
	for _, tc := range cases {
		got, err := canonVariant(tc.in)
		if err != nil {
			t.Fatalf("%q: %v", tc.in, err)
		}
		if got != tc.want {
			t.Errorf("canonVariant(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestVariantOverridesTag pins the flag→tag rendering, including the
// theta=-1 "unbounded" convention.
func TestVariantOverridesTag(t *testing.T) {
	cases := []struct {
		o    VariantOverrides
		want string
	}{
		{VariantOverrides{}, ""},
		{VariantOverrides{Theta: 4}, ""}, // the default
		{VariantOverrides{Theta: -1}, "theta=0"},
		{VariantOverrides{Nodes: 16, Theta: 8}, "nodes=16,theta=8"},
		{VariantOverrides{CacheBytes: 32 << 20, PACache: true}, "cache=32MB,pacache"},
	}
	for _, tc := range cases {
		if got := tc.o.Tag(); got != tc.want {
			t.Errorf("%+v.Tag() = %q, want %q", tc.o, got, tc.want)
		}
	}
}

// TestRequestKeyStability pins the rendered key and content key for one
// request. This is the persistent store's address format: changing it
// silently orphans every stored result.
func TestRequestKeyStability(t *testing.T) {
	r, err := Request{App: "sar", Policy: "history", Scheduling: true, Scale: 0.05, Seed: 42}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	wantKey := "app=sar|policy=history-based|sched=true|scale=0.05|seed=42|variant=|faults="
	if got := r.Key(); got != wantKey {
		t.Fatalf("Key() = %q, want %q", got, wantKey)
	}
	// TimeoutMS is an execution knob, not identity.
	r2 := r
	r2.TimeoutMS = 30000
	if r2.Key() != r.Key() || r2.ContentKey() != r.ContentKey() {
		t.Fatal("TimeoutMS leaked into the content key")
	}
	if len(r.ContentKey()) != 64 {
		t.Fatalf("ContentKey() = %q, want 64 hex chars", r.ContentKey())
	}
}

// TestRequestJSONRoundTrip asserts the wire form round-trips through
// encoding/json without drift.
func TestRequestJSONRoundTrip(t *testing.T) {
	r := Request{App: "sar", Policy: "history-based", Scheduling: true,
		Scale: 0.05, Seed: 42, Variant: "theta=8", Faults: "read=0.01", TimeoutMS: 1000}
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Fatalf("round-trip drifted: %+v vs %+v", back, r)
	}
}

// TestSessionRunRequest asserts RunRequest resolves through the same
// cache as plan-driven runs: the second identical request is a hit, and
// Cached sees the verdict.
func TestSessionRunRequest(t *testing.T) {
	s := NewSession(SessionOptions{Workers: 2})
	req := Request{App: "sar", Policy: "default", Scale: 0.02, Seed: 7}
	if _, _, ok := s.Cached(req); ok {
		t.Fatal("Cached hit before any run")
	}
	res, hit, err := s.RunRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first run reported as cache hit")
	}
	res2, hit2, err := s.RunRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 || res2 != res {
		t.Fatal("second identical request did not hit the cache")
	}
	cres, cerr, ok := s.Cached(req)
	if !ok || cerr != nil || cres != res {
		t.Fatalf("Cached() = (%v, %v, %v), want the run", cres, cerr, ok)
	}
	if s.InFlight() != 0 {
		t.Fatalf("InFlight() = %d after completion", s.InFlight())
	}
	// A plan-driven run of the same config must also hit.
	sp := defaultSpec("sar", power.KindDefault, false)
	_, out3, err := s.run(context.Background(), Config{Scale: 0.02, Seed: 7}.withDefaults(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if !out3.hit {
		t.Fatal("plan-driven run of the same config missed the request's cache slot")
	}
}
