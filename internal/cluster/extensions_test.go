package cluster

import (
	"testing"

	"sdds/internal/disk"
	"sdds/internal/metrics"
	"sdds/internal/power"
	"sdds/internal/sim"
)

func TestRunWithPolicyFactory(t *testing.T) {
	cfg := smallConfig()
	built := 0
	cfg.PolicyFactory = func(eng *sim.Engine) (power.Policy, error) {
		built++
		return power.New(eng, power.Config{Kind: power.KindStaggered})
	}
	res, err := Run(smallProgram(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantDisks := cfg.Layout.NumNodes * cfg.Node.Members
	if built != wantDisks {
		t.Fatalf("factory built %d policies, want %d (one per disk)", built, wantDisks)
	}
	if res.EnergyJ <= 0 {
		t.Fatal("degenerate result")
	}
}

func TestRunWithExtraIdleRecorder(t *testing.T) {
	cfg := smallConfig()
	extra := metrics.NewIdleHistogram()
	cfg.ExtraIdleRecorder = extra
	res, err := Run(smallProgram(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if extra.Count() == 0 {
		t.Fatal("extra recorder saw no gaps")
	}
	if extra.Count() != res.Idle.Count() {
		t.Fatalf("tee mismatch: extra %d vs built-in %d", extra.Count(), res.Idle.Count())
	}
}

func TestRunWithGapTraceAndOracle(t *testing.T) {
	// Pass 1: record the true gaps under the Default Scheme.
	cfg := smallConfig()
	var eng0 *sim.Engine
	var trace *metrics.GapTrace
	cfg.PolicyFactory = func(eng *sim.Engine) (power.Policy, error) {
		if trace == nil {
			eng0 = eng
			trace = metrics.NewGapTrace(func() sim.Time { return eng0.Now() })
		}
		return power.New(eng, power.Config{Kind: power.KindDefault})
	}
	cfg.ExtraIdleRecorder = lateRecorder{&trace}
	base, err := Run(smallProgram(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if trace == nil || base.Idle.Count() == 0 {
		t.Fatal("trace not captured")
	}
	// Pass 2: oracle replay must not error and must not use more energy
	// than the default scheme by more than noise.
	cfg2 := smallConfig()
	cfg2.PolicyFactory = func(eng *sim.Engine) (power.Policy, error) {
		return power.NewOracle(eng, power.Config{}, trace), nil
	}
	orc, err := Run(smallProgram(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if orc.EnergyJ > base.EnergyJ*1.05 {
		t.Fatalf("oracle used more energy than default: %v vs %v", orc.EnergyJ, base.EnergyJ)
	}
}

type lateRecorder struct{ t **metrics.GapTrace }

func (l lateRecorder) RecordIdle(d *disk.Disk, gap sim.Duration) {
	if *l.t != nil {
		(*l.t).RecordIdle(d, gap)
	}
}

func TestRunWithPowerAwareCache(t *testing.T) {
	cfg := smallConfig()
	cfg.Node.PowerAwareCache = true
	cfg.Policy = power.Config{Kind: power.KindSimple}
	res, err := Run(smallProgram(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyJ <= 0 || res.StorageCacheHits+res.StorageCacheMisses == 0 {
		t.Fatal("degenerate PA-LRU run")
	}
}
