package all

import (
	"sdds/internal/analysis"
	"sdds/internal/analysis/callsum"
)

// AuditName is the pseudo-analyzer name under which stale-suppression
// findings are reported. It is not a registered analyzer (there is nothing
// to run per package); it exists so audit findings flow through the same
// Finding/baseline/output machinery as everything else.
const AuditName = "ignoreaudit"

// SuiteOptions configures RunSuite.
type SuiteOptions struct {
	// Audit enables the stale-suppression audit. Only sound when the full
	// analyzer suite runs: under a -run subset, directives for the skipped
	// analyzers are legitimately unused and would be misreported as stale.
	Audit bool
}

// RunSuite runs the analyzers over every selected package of mod and
// returns the findings in position order.
//
// With opts.Audit, effect summaries are forced for every selected package
// up front — a //sddsvet:ignore whose only job is keeping a justified
// intrinsic out of a summary (a warm-up allocation, an observability
// wall-clock read) is "used" even if no analyzer ever consults that
// summary — and every directive that still suppressed nothing is reported
// as an AuditName finding.
func RunSuite(mod *analysis.Module, analyzers []*analysis.Analyzer, opts SuiteOptions) ([]analysis.Finding, error) {
	if opts.Audit {
		sums := callsum.Of(mod)
		for _, pkg := range mod.Selected {
			sums.ForPackage(pkg)
		}
	}
	var findings []analysis.Finding
	for _, pkg := range mod.Selected {
		diags, err := analysis.RunAnalyzers(mod, pkg, analyzers)
		if err != nil {
			return nil, err
		}
		for _, d := range diags {
			findings = append(findings, mod.NewFinding(pkg, d))
		}
	}
	if opts.Audit {
		for _, pkg := range mod.Selected {
			for _, d := range mod.Ignores(pkg).Stale() {
				kind := "//sddsvet:ignore"
				if d.FileLevel {
					kind = "//sddsvet:ignore-file"
				}
				findings = append(findings, analysis.Finding{
					File:     mod.RelPath(d.File),
					Line:     d.Line,
					Col:      1,
					Analyzer: AuditName,
					Message:  "stale " + kind + " " + d.Name + ": suppresses no diagnostic or summary effect; delete it",
				})
			}
		}
	}
	analysis.SortFindings(findings)
	return findings, nil
}
