// Package simdet implements the sddsvet analyzer that flags sources of
// nondeterminism inside the simulation packages. The reproduction's headline
// guarantee — bit-identical virtual results for a fixed seed, asserted
// hex-exactly by the cluster golden test — holds only if model code never
// consults wall-clock time, never draws from the globally-seeded RNG, and
// never lets Go's randomized map iteration order decide what happens next.
package simdet

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"sdds/internal/analysis"
)

// SimPackages selects the packages the analyzer applies to: the
// discrete-event engine and every device/executor model whose behaviour
// feeds the golden-compared results. Tests may override it.
var SimPackages = regexp.MustCompile(`^sdds/internal/(sim|cluster|disk|power|sched|ionode|mpiio|netsim|fault|store|service|compiler|compilecache)$`)

// bannedRandFuncs are the package-level math/rand functions drawing from
// the global source (randomly seeded since Go 1.20). Deterministic
// constructors (New, NewSource, NewZipf) stay allowed: model code must use
// the engine's seeded RNG via sim.Engine.Rand.
var bannedRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 additions.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

// Analyzer flags time.Now, global math/rand draws, and order-sensitive map
// iteration in simulation packages.
var Analyzer = &analysis.Analyzer{
	Name: "simdet",
	Doc: "flags nondeterminism sources in simulation packages: time.Now, " +
		"the global math/rand source, and ranging over maps where the body " +
		"calls into sim state, schedules events, or mutates order-sensitive " +
		"outer state",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !SimPackages.MatchString(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCall reports wall-clock and global-RNG calls.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" && fn.Type().(*types.Signature).Recv() == nil {
			pass.Reportf(call.Pos(), "time.Now in a simulation package: model code must use the virtual clock (sim.Engine.Now)")
		}
	case "math/rand", "math/rand/v2":
		if bannedRandFuncs[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
			pass.Reportf(call.Pos(), "global math/rand.%s is randomly seeded and breaks run reproducibility: use the engine's seeded RNG (sim.Engine.Rand)", fn.Name())
		}
	}
}

// checkMapRange reports ranging over a map when the loop body does
// something whose outcome depends on iteration order: calling a function or
// method (which may schedule events or mutate sim state), appending to an
// outer slice, or assigning to outer state in a non-commutative way.
//
// Commutative updates keyed by the loop key are allowed without an ignore:
// m2[k] = v and m2[k] += v visit each key exactly once, so iteration order
// cannot change the result. Integer increments/decrements of outer scalars
// are likewise exact and order-free.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	t, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := t.Type.Underlying().(*types.Map); !isMap {
		return
	}
	keyIdent, _ := rng.Key.(*ast.Ident)

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // deferred work: not executed in iteration order here
		case *ast.CallExpr:
			if fn := analysis.CalleeFunc(pass.TypesInfo, n); fn != nil {
				pass.Reportf(n.Pos(), "call to %s inside map iteration runs in random order; iterate sorted keys or justify with //sddsvet:ignore simdet", fn.Name())
				return false
			}
			// Builtins: append into outer state is order-dependent.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				if root := analysis.RootIdent(n.Args[0]); root != nil &&
					analysis.DeclaredOutside(pass.TypesInfo, root, rng.Pos(), rng.End()) {
					pass.Reportf(n.Pos(), "append to %s inside map iteration produces a randomly-ordered slice; iterate sorted keys", root.Name)
				}
			}
		case *ast.AssignStmt:
			checkAssign(pass, rng, keyIdent, n)
		case *ast.IncDecStmt:
			if isOrderSensitiveStore(pass, rng, keyIdent, n.X, true) {
				pass.Reportf(n.Pos(), "float update of outer state inside map iteration accumulates in random order")
			}
		}
		return true
	})
}

// checkAssign flags order-sensitive stores to loop-external state.
func checkAssign(pass *analysis.Pass, rng *ast.RangeStmt, keyIdent *ast.Ident, as *ast.AssignStmt) {
	if as.Tok == token.DEFINE {
		return
	}
	commutative := as.Tok != token.ASSIGN // compound ops: only floats are order-sensitive
	for i, lhs := range as.Lhs {
		if i < len(as.Rhs) && isAppendCall(pass, as.Rhs[i]) {
			continue // s = append(s, ...) is owned by the append check
		}
		if isOrderSensitiveStore(pass, rng, keyIdent, lhs, commutative) {
			what := "assignment to outer state inside map iteration is last-writer-wins in random order"
			if commutative {
				what = "float accumulation into outer state inside map iteration rounds in random order"
			}
			pass.Reportf(as.Pos(), "%s; iterate sorted keys or justify with //sddsvet:ignore simdet", what)
		}
	}
}

// isAppendCall reports whether e is a call to the builtin append.
func isAppendCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || analysis.CalleeFunc(pass.TypesInfo, call) != nil {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append"
}

// isOrderSensitiveStore decides whether storing through lhs inside the map
// range can observe iteration order. commutativeOp marks += style updates,
// which are exact (and therefore allowed) on integers but not on floats.
func isOrderSensitiveStore(pass *analysis.Pass, rng *ast.RangeStmt, keyIdent *ast.Ident, lhs ast.Expr, commutativeOp bool) bool {
	root := analysis.RootIdent(lhs)
	if root == nil || root.Name == "_" {
		return false
	}
	if !analysis.DeclaredOutside(pass.TypesInfo, root, rng.Pos(), rng.End()) {
		return false
	}
	// Per-key stores into an outer map, indexed by the loop key itself,
	// touch each slot exactly once: order-free for = and for compound ops.
	if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && keyIdent != nil {
		if baseT, ok := pass.TypesInfo.Types[idx.X]; ok {
			if _, isMap := baseT.Type.Underlying().(*types.Map); isMap {
				ko := analysis.ObjOf(pass.TypesInfo, keyIdent)
				if id, ok := ast.Unparen(idx.Index).(*ast.Ident); ok && ko != nil &&
					analysis.ObjOf(pass.TypesInfo, id) == ko {
					return false
				}
			}
		}
	}
	if commutativeOp {
		// += and friends: only floating-point accumulation drifts with
		// order (rounding); integer arithmetic is exact.
		if t, ok := pass.TypesInfo.Types[lhs]; ok {
			if b, ok := t.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat == 0 {
				return false
			}
		}
	}
	return true
}
