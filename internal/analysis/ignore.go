package analysis

import (
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//sddsvet:ignore simdet -- flush order fixed by sorted keys
//	//sddsvet:ignore hotalloc,simdet -- startup only, once per run
//
// The comma-separated analyzer list may also be "all". The "-- reason" tail
// is the convention (reviewers should see why the pattern is safe); the
// suppression works without it so a missing reason never masks a finding
// the author meant to silence.
const ignorePrefix = "//sddsvet:ignore"

// ignoreIndex records, per file and line, which analyzers are suppressed.
type ignoreIndex struct {
	fset *token.FileSet
	// byFile maps filename → line → analyzer names ("all" wildcards).
	byFile map[string]map[int][]string
}

// buildIgnoreIndex scans every comment in the package for ignore
// directives. A directive suppresses matching diagnostics on its own line
// (trailing comment) and on the following line (comment above the flagged
// statement).
func buildIgnoreIndex(pkg *Package) *ignoreIndex {
	idx := &ignoreIndex{fset: pkg.Fset, byFile: make(map[string]map[int][]string)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				names := strings.TrimSpace(rest)
				if i := strings.Index(names, "--"); i >= 0 {
					names = strings.TrimSpace(names[:i])
				}
				if names == "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := idx.byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					idx.byFile[pos.Filename] = lines
				}
				for _, n := range strings.Split(names, ",") {
					n = strings.TrimSpace(n)
					if n == "" {
						continue
					}
					lines[pos.Line] = append(lines[pos.Line], n)
					lines[pos.Line+1] = append(lines[pos.Line+1], n)
				}
			}
		}
	}
	return idx
}

// suppressed reports whether a diagnostic from the named analyzer at pos is
// covered by an ignore directive.
func (idx *ignoreIndex) suppressed(analyzer string, pos token.Pos) bool {
	p := idx.fset.Position(pos)
	for _, n := range idx.byFile[p.Filename][p.Line] {
		if n == analyzer || n == "all" {
			return true
		}
	}
	return false
}
